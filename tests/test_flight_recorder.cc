#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/active_ops.h"
#include "obs/crash_dump.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace rdfdb::obs {
namespace {

// ---------------------------------------------------------------------
// Active-operation registry
// ---------------------------------------------------------------------

TEST(ActiveOps, GuardRegistersAndReleases) {
  const size_t before = ActiveOpCount();
  {
    ActiveOpGuard guard(OpKind::kQuery, "(?s ?p ?o)");
    ASSERT_TRUE(guard.registered());
    EXPECT_EQ(ActiveOpCount(), before + 1);
    std::vector<ActiveOpInfo> ops = ActiveOpsSnapshot();
    bool found = false;
    for (const ActiveOpInfo& op : ops) {
      if (op.id != guard.id()) continue;
      found = true;
      EXPECT_EQ(op.kind, OpKind::kQuery);
      EXPECT_EQ(op.detail, "(?s ?p ?o)");
      EXPECT_GE(op.age_ns, 0);
      EXPECT_GT(op.start_unix_ns, 0);
      EXPECT_NE(op.tid, 0u);
    }
    EXPECT_TRUE(found);
  }
  EXPECT_EQ(ActiveOpCount(), before);
}

TEST(ActiveOps, DetailTruncatedToSlotCapacity) {
  const std::string longdetail(4 * kActiveOpDetailBytes, 'x');
  ActiveOpGuard guard(OpKind::kBulkLoad, longdetail);
  for (const ActiveOpInfo& op : ActiveOpsSnapshot()) {
    if (op.id != guard.id()) continue;
    EXPECT_EQ(op.detail.size(), kActiveOpDetailBytes - 1);
    EXPECT_EQ(op.detail, longdetail.substr(0, kActiveOpDetailBytes - 1));
  }
}

TEST(ActiveOps, SummaryExcludesTheAskingOp) {
  ActiveOpGuard self(OpKind::kQuery, "the slow query itself");
  ActiveOpGuard other(OpKind::kBulkLoad, "concurrent load");
  const std::string summary = ActiveOpsSummaryExcluding(self.id());
  EXPECT_NE(summary.find("bulkload:1"), std::string::npos) << summary;
  EXPECT_EQ(summary.find("query"), std::string::npos) << summary;
}

TEST(ActiveOps, LiveCpuAndAllocDeltasAreSane) {
  ActiveOpGuard guard(OpKind::kQuery, "busy");
  // Do some attributable work on this thread.
  std::string sink;
  for (int i = 0; i < 1000; ++i) sink += std::to_string(i);
  for (const ActiveOpInfo& op : ActiveOpsSnapshot()) {
    if (op.id != guard.id()) continue;
    EXPECT_GE(op.cpu_ns, 0);
    // Alloc deltas come from this thread's counter block, so the loop
    // above must be visible.
    EXPECT_GT(op.alloc_bytes, 0u);
    EXPECT_GT(op.allocs, 0u);
  }
}

TEST(ActiveOps, RenderActivityzIsWellFormedJson) {
  ActiveOpGuard guard(OpKind::kCheckpoint, "snap.\"v1\"");
  const std::string json = RenderActivityz();
  EXPECT_NE(json.find("\"active\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"registered_total\":"), std::string::npos);
  EXPECT_NE(json.find("\"checkpoint\""), std::string::npos) << json;
  // The quote inside the detail string must be escaped.
  EXPECT_NE(json.find("snap.\\\"v1\\\""), std::string::npos) << json;
}

// Seqlock torture: writers churn guards while readers snapshot. The
// assertion is that every observed op is internally consistent (valid
// kind, bounded age) — a torn read would show garbage kinds/details.
TEST(ActiveOps, SeqlockSurvivesConcurrentChurn) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&stop, w] {
      while (!stop.load(std::memory_order_relaxed)) {
        ActiveOpGuard guard(w % 2 == 0 ? OpKind::kQuery : OpKind::kBulkLoad,
                            "churn-" + std::to_string(w));
        (void)guard;
      }
    });
  }
  std::atomic<uint64_t> observed{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&stop, &observed] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const ActiveOpInfo& op : ActiveOpsSnapshot()) {
          observed.fetch_add(1, std::memory_order_relaxed);
          EXPECT_GE(static_cast<uint32_t>(op.kind), 1u);
          EXPECT_LE(static_cast<uint32_t>(op.kind), 5u);
          EXPECT_LT(op.detail.size(), kActiveOpDetailBytes);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GT(ActiveOpsRegistered(), 0u);
}

// ---------------------------------------------------------------------
// Flight recorder: ring, reductions, render/parse
// ---------------------------------------------------------------------

class FlightRecorderTest : public ::testing::Test {
 protected:
  FlightRecorder::Options BaseOptions() {
    FlightRecorder::Options options;
    options.registry = &registry_;
    // A long thread interval: tests drive sampling via SampleNow() so
    // the ring contents are deterministic.
    options.sample_interval_ms = 60'000;
    return options;
  }

  MetricsRegistry registry_;
};

TEST_F(FlightRecorderTest, StartValidatesOptions) {
  FlightRecorder::Options options;  // no registry
  EXPECT_FALSE(FlightRecorder::Start(std::move(options)).ok());
  FlightRecorder::Options bad_interval = BaseOptions();
  bad_interval.sample_interval_ms = 0;
  EXPECT_FALSE(FlightRecorder::Start(std::move(bad_interval)).ok());
  FlightRecorder::Options bad_capacity = BaseOptions();
  bad_capacity.history_capacity = 0;
  EXPECT_FALSE(FlightRecorder::Start(std::move(bad_capacity)).ok());
}

TEST_F(FlightRecorderTest, RingWrapsAtCapacity) {
  Counter* work = registry_.RegisterCounter("test_work_total", "test");
  FlightRecorder::Options options = BaseOptions();
  options.history_capacity = 5;
  auto recorder = FlightRecorder::Start(std::move(options));
  ASSERT_TRUE(recorder.ok());
  for (int i = 0; i < 9; ++i) {
    work->Inc();
    (*recorder)->SampleNow();
  }
  const std::vector<HistoryPoint> history = (*recorder)->History();
  EXPECT_EQ(history.size(), 5u);
  EXPECT_GE((*recorder)->samples(), 9u);
  // Oldest-first ordering.
  for (size_t i = 1; i < history.size(); ++i) {
    EXPECT_GE(history[i].unix_ms, history[i - 1].unix_ms);
  }
}

TEST_F(FlightRecorderTest, ReducesCountersGaugesAndHistograms) {
  Counter* c = registry_.RegisterCounter("test_ops_total", "test");
  Gauge* g = registry_.RegisterGauge("test_depth", "test");
  Histogram* h = registry_.RegisterHistogram("test_latency_ns", "test",
                                             DefaultLatencyBucketsNs());
  auto recorder = FlightRecorder::Start(BaseOptions());
  ASSERT_TRUE(recorder.ok());

  c->Inc(100);
  g->Set(42);
  for (int i = 1; i <= 100; ++i) h->Observe(i * 1000);
  (*recorder)->SampleNow();

  const std::vector<HistoryPoint> history = (*recorder)->History();
  ASSERT_FALSE(history.empty());
  const HistoryPoint& point = history.back();
  ASSERT_TRUE(point.series.count("test_ops_total.rate"));
  EXPECT_GT(point.series.at("test_ops_total.rate"), 0.0);
  ASSERT_TRUE(point.series.count("test_depth"));
  EXPECT_EQ(point.series.at("test_depth"), 42.0);
  ASSERT_TRUE(point.series.count("test_latency_ns.p50"));
  ASSERT_TRUE(point.series.count("test_latency_ns.p95"));
  ASSERT_TRUE(point.series.count("test_latency_ns.p99"));
  EXPECT_GT(point.series.at("test_latency_ns.p99"),
            point.series.at("test_latency_ns.p50") * 0.99);
  ASSERT_TRUE(point.series.count("test_latency_ns.rate"));
  // The synthetic active-op series is always present.
  ASSERT_TRUE(point.series.count("rdfdb_active_ops"));
}

TEST_F(FlightRecorderTest, HealthSignalSeriesLandInTheRing) {
  // The PR 7 degraded-health signals: retention age (a plain gauge, so
  // it flows through the registry reduction) and event-log drop rates
  // (synthetic, from the attached EventLog's counters).
  Gauge* age = registry_.RegisterGauge("rdfdb_version_retention_age_seconds",
                                       "test retention age");
  age->Set(17);
  std::ostringstream sink;
  EventLog::Options log_options;
  log_options.sink = &sink;
  auto log = EventLog::Open(std::move(log_options));
  ASSERT_TRUE(log.ok());
  (*log)->Append("test", "x");

  FlightRecorder::Options options = BaseOptions();
  options.events = log->get();
  auto recorder = FlightRecorder::Start(std::move(options));
  ASSERT_TRUE(recorder.ok());
  (*recorder)->SampleNow();

  const std::vector<HistoryPoint> history = (*recorder)->History();
  ASSERT_FALSE(history.empty());
  const HistoryPoint& point = history.back();
  ASSERT_TRUE(point.series.count("rdfdb_version_retention_age_seconds"));
  EXPECT_EQ(point.series.at("rdfdb_version_retention_age_seconds"), 17.0);
  ASSERT_TRUE(point.series.count("rdfdb_event_log_appended_total.rate"));
  ASSERT_TRUE(point.series.count("rdfdb_event_log_dropped_total.rate"));
}

TEST_F(FlightRecorderTest, BackgroundSamplerTicksOnItsOwn) {
  FlightRecorder::Options options = BaseOptions();
  options.sample_interval_ms = 10;
  auto recorder = FlightRecorder::Start(std::move(options));
  ASSERT_TRUE(recorder.ok());
  for (int i = 0; i < 200 && (*recorder)->samples() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE((*recorder)->samples(), 3u);
}

TEST_F(FlightRecorderTest, RenderParseRoundtrip) {
  Counter* c = registry_.RegisterCounter("test_rt_total", "test");
  Gauge* g = registry_.RegisterGauge("test_rt_depth", "test");
  auto recorder = FlightRecorder::Start(BaseOptions());
  ASSERT_TRUE(recorder.ok());
  for (int i = 0; i < 4; ++i) {
    c->Inc(7);
    g->Set(i);
    (*recorder)->SampleNow();
  }

  const std::string text = (*recorder)->RenderHistoryText();
  auto parsed = ParseHistoryText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  EXPECT_EQ(parsed->interval_ms, (*recorder)->sample_interval_ms());
  EXPECT_EQ(parsed->t_unix_ms.size(), 4u);
  ASSERT_TRUE(parsed->series.count("test_rt_depth"));
  const std::vector<double>& depth = parsed->series.at("test_rt_depth");
  ASSERT_EQ(depth.size(), 4u);
  EXPECT_EQ(depth[0], 0.0);
  EXPECT_EQ(depth[3], 3.0);

  const std::string json = (*recorder)->RenderHistoryJson();
  EXPECT_NE(json.find("\"interval_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"points\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test_rt_depth\""), std::string::npos);
}

TEST_F(FlightRecorderTest, SeriesAppearingMidRingParsesAsMissing) {
  auto recorder = FlightRecorder::Start(BaseOptions());
  ASSERT_TRUE(recorder.ok());
  (*recorder)->SampleNow();
  // A gauge registered after the first sample has no value there.
  Gauge* late = registry_.RegisterGauge("test_late_gauge", "test");
  late->Set(5);
  (*recorder)->SampleNow();

  auto parsed = ParseHistoryText((*recorder)->RenderHistoryText());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->series.count("test_late_gauge"));
  const std::vector<double>& values = parsed->series.at("test_late_gauge");
  ASSERT_EQ(values.size(), 2u);
  EXPECT_TRUE(std::isnan(values[0]));
  EXPECT_EQ(values[1], 5.0);
}

TEST(ParseHistoryText, RejectsMalformedInput) {
  EXPECT_FALSE(ParseHistoryText("").ok());
  EXPECT_FALSE(ParseHistoryText("not a history\n").ok());
  EXPECT_FALSE(ParseHistoryText("flight_history v2\ninterval_ms 5\n").ok());
  // Declared three points but the series row carries two values.
  EXPECT_FALSE(ParseHistoryText("flight_history v1\ninterval_ms 1000\n"
                                "points 3\nt_unix_ms 1 2 3\nseries_a 1 2\n")
                   .ok());
}

TEST(ParseHistoryText, AcceptsTheDocumentedShape) {
  auto parsed = ParseHistoryText(
      "flight_history v1\ninterval_ms 250\npoints 3\n"
      "t_unix_ms 1000 1250 1500\nfoo.rate 1 2.5 -\nbar - - 9\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->interval_ms, 250);
  ASSERT_EQ(parsed->t_unix_ms.size(), 3u);
  EXPECT_EQ(parsed->t_unix_ms[2], 1500);
  EXPECT_EQ(parsed->series.at("foo.rate")[1], 2.5);
  EXPECT_TRUE(std::isnan(parsed->series.at("foo.rate")[2]));
  EXPECT_TRUE(std::isnan(parsed->series.at("bar")[0]));
  EXPECT_EQ(parsed->series.at("bar")[2], 9.0);
}

TEST(Sparkline, ScalesToSeriesRangeAndSkipsNaN) {
  EXPECT_EQ(Sparkline({}), "");
  EXPECT_EQ(Sparkline({3.0, 3.0, 3.0}), "▁▁▁");  // flat series
  EXPECT_EQ(Sparkline({0.0, 7.0}), "▁█");
  const std::string with_gap =
      Sparkline({0.0, std::nan(""), 7.0});
  EXPECT_EQ(with_gap, "▁ █");
}

TEST(FlightRecorderDefaults, CoverAtLeastThirtySecondsOfHistory) {
  EXPECT_GE(kDefaultSampleIntervalMs * static_cast<int64_t>(
                kDefaultHistoryCapacity),
            30'000);
}

// ---------------------------------------------------------------------
// Black box integration (live-process side; crash side is
// test_crash_dump.cc)
// ---------------------------------------------------------------------

TEST_F(FlightRecorderTest, BlackBoxMirrorsHistoryAndEvents) {
  const std::string path =
      ::testing::TempDir() + "/flight_recorder_bb.bin";
  Gauge* g = registry_.RegisterGauge("test_bb_gauge", "test");
  std::ostringstream sink;
  EventLog::Options log_options;
  log_options.sink = &sink;
  auto log = EventLog::Open(std::move(log_options));
  ASSERT_TRUE(log.ok());
  (*log)->Append("test", "\"note\":\"remembered\"");

  FlightRecorder::Options options = BaseOptions();
  options.events = log->get();
  options.black_box_path = path;
  auto recorder = FlightRecorder::Start(std::move(options));
  ASSERT_TRUE(recorder.ok());
  ASSERT_NE((*recorder)->black_box(), nullptr);
  g->Set(123);
  (*recorder)->SampleNow();
  (*recorder)->SampleNow();

  // Read the file back the way rdfdb_postmortem would. The process is
  // alive, so the dump is "incomplete" (no crash record) but the
  // pre-serialized regions must already be in place.
  auto pm = ReadBlackBox(path);
  ASSERT_TRUE(pm.ok()) << pm.status().ToString();
  EXPECT_FALSE(pm->complete);
  EXPECT_EQ(pm->signo, 0);
  auto parsed = ParseHistoryText(pm->history_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->t_unix_ms.size(), 2u);
  ASSERT_TRUE(parsed->series.count("test_bb_gauge"));
  EXPECT_EQ(parsed->series.at("test_bb_gauge").back(), 123.0);
  EXPECT_NE(pm->events_tail.find("remembered"), std::string::npos)
      << pm->events_tail;
}

}  // namespace
}  // namespace rdfdb::obs
