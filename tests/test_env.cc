#include "storage/env.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace rdfdb::storage {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/rdfdb_env_test.dat";
    path2_ = ::testing::TempDir() + "/rdfdb_env_test2.dat";
    std::remove(path_.c_str());
    std::remove(path2_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(path2_.c_str());
  }

  std::string path_;
  std::string path2_;
};

TEST_F(EnvTest, WriteReadRoundTrip) {
  Env* env = Env::Default();
  {
    auto file = env->NewWritableFile(path_, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("hello ").ok());
    ASSERT_TRUE((*file)->Append("world").ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  EXPECT_TRUE(env->FileExists(path_));
  auto contents = env->ReadFileToString(path_);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello world");
  auto size = env->GetFileSize(path_);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 11u);
}

TEST_F(EnvTest, AppendModeContinuesExistingFile) {
  Env* env = Env::Default();
  {
    auto file = env->NewWritableFile(path_, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("abc").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  {
    auto file = env->NewWritableFile(path_, /*truncate=*/false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("def").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  EXPECT_EQ(*env->ReadFileToString(path_), "abcdef");
}

TEST_F(EnvTest, RenameReplacesAtomically) {
  Env* env = Env::Default();
  auto write = [&](const std::string& p, const std::string& data) {
    auto file = env->NewWritableFile(p, true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(data).ok());
    ASSERT_TRUE((*file)->Close().ok());
  };
  write(path_, "old");
  write(path2_, "new");
  ASSERT_TRUE(env->RenameFile(path2_, path_).ok());
  EXPECT_EQ(*env->ReadFileToString(path_), "new");
  EXPECT_FALSE(env->FileExists(path2_));
  ASSERT_TRUE(env->SyncDir(DirName(path_)).ok());
}

TEST_F(EnvTest, TruncateShrinks) {
  Env* env = Env::Default();
  {
    auto file = env->NewWritableFile(path_, true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("0123456789").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  ASSERT_TRUE(env->TruncateFile(path_, 4).ok());
  EXPECT_EQ(*env->ReadFileToString(path_), "0123");
}

TEST_F(EnvTest, MissingFileErrors) {
  Env* env = Env::Default();
  EXPECT_FALSE(env->FileExists(path_));
  EXPECT_TRUE(env->ReadFileToString(path_).status().IsIOError());
  EXPECT_TRUE(env->GetFileSize(path_).status().IsIOError());
  EXPECT_TRUE(env->RemoveFile(path_).IsIOError());
}

TEST_F(EnvTest, PathHelpers) {
  EXPECT_EQ(DirName("/a/b/c.txt"), "/a/b");
  EXPECT_EQ(DirName("c.txt"), ".");
  EXPECT_EQ(DirName("/c.txt"), "/");
  EXPECT_EQ(BaseName("/a/b/c.txt"), "c.txt");
  EXPECT_EQ(BaseName("c.txt"), "c.txt");
}

// --- FaultInjectingEnv --------------------------------------------------

TEST_F(EnvTest, CrashAfterBytesTearsTheWrite) {
  FaultInjectingEnv env;
  auto file = env.NewWritableFile(path_, true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("0123").ok());
  env.CrashAfterBytes(3);
  // 10-byte append, 3-byte budget: the torn 3-byte prefix lands.
  EXPECT_FALSE((*file)->Append("abcdefghij").ok());
  EXPECT_TRUE(env.crashed());
  // Frozen: everything mutating now fails...
  EXPECT_FALSE((*file)->Append("x").ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE(env.NewWritableFile(path2_, true).ok());
  EXPECT_FALSE(env.RenameFile(path_, path2_).ok());
  // ...but reads still work (the test inspects the post-crash disk).
  EXPECT_EQ(*env.ReadFileToString(path_), "0123abc");
}

TEST_F(EnvTest, CrashAfterOpsFreezesBeforeTheOp) {
  FaultInjectingEnv env;
  auto file = env.NewWritableFile(path_, true);  // op 1
  ASSERT_TRUE(file.ok());
  env.CrashAfterOps(1);
  ASSERT_TRUE((*file)->Append("one").ok());   // op 2: allowed
  EXPECT_FALSE((*file)->Append("two").ok());  // op 3: crash, not executed
  EXPECT_TRUE(env.crashed());
  EXPECT_EQ(*env.ReadFileToString(path_), "one");
}

TEST_F(EnvTest, FailOnceIsTransient) {
  FaultInjectingEnv env;
  auto file = env.NewWritableFile(path_, true);
  ASSERT_TRUE(file.ok());
  env.FailOnce(1);
  EXPECT_FALSE((*file)->Append("lost").ok());  // injected failure, no write
  EXPECT_FALSE(env.crashed());
  EXPECT_TRUE((*file)->Append("kept").ok());  // env still alive
  EXPECT_EQ(*env.ReadFileToString(path_), "kept");
}

TEST_F(EnvTest, DropUnsyncedOnCrashKeepsOnlySyncedPrefix) {
  FaultInjectingEnv env;
  env.set_drop_unsynced_on_crash(true);
  auto file = env.NewWritableFile(path_, true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("durable").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("-in-page-cache").ok());  // never synced
  env.CrashAfterOps(0);
  EXPECT_FALSE((*file)->Append("x").ok());  // crash fires here
  EXPECT_TRUE(env.crashed());
  // The unsynced suffix evaporated with the "page cache".
  EXPECT_EQ(*env.ReadFileToString(path_), "durable");
}

TEST_F(EnvTest, ResetUnfreezes) {
  FaultInjectingEnv env;
  env.CrashAfterOps(0);
  EXPECT_FALSE(env.NewWritableFile(path_, true).ok());
  EXPECT_TRUE(env.crashed());
  env.Reset();
  EXPECT_FALSE(env.crashed());
  auto file = env.NewWritableFile(path_, true);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append("ok").ok());
}

TEST_F(EnvTest, ReopenedAppendFileCountsExistingBytesAsSynced) {
  FaultInjectingEnv env;
  env.set_drop_unsynced_on_crash(true);
  {
    auto file = env.NewWritableFile(path_, true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("persisted").ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  auto file = env.NewWritableFile(path_, /*truncate=*/false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("+unsynced").ok());
  env.CrashAfterOps(0);
  EXPECT_FALSE((*file)->Sync().ok());
  // Pre-existing bytes survive; only the unsynced new tail is dropped.
  EXPECT_EQ(*env.ReadFileToString(path_), "persisted");
}

}  // namespace
}  // namespace rdfdb::storage
