#include "query/rules_index.h"

#include <gtest/gtest.h>

#include <set>

#include "rdf/vocab.h"

namespace rdfdb::query {
namespace {

using rdf::RdfStore;
using rdf::Term;
using rdf::ValueId;

TEST(TripleSetTest, AddDeduplicates) {
  TripleSet set;
  EXPECT_TRUE(set.Add({1, 2, 3, 3}));
  EXPECT_FALSE(set.Add({1, 2, 3, 3}));
  EXPECT_TRUE(set.Add({1, 2, 4, 4}));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.Contains(1, 2, 3));
  EXPECT_FALSE(set.Contains(1, 2, 5));
}

TEST(TripleSetTest, MatchByEachPosition) {
  TripleSet set;
  set.Add({1, 10, 100, 100});
  set.Add({1, 11, 101, 101});
  set.Add({2, 10, 100, 100});
  auto count = [&](std::optional<ValueId> s, std::optional<ValueId> p,
                   std::optional<ValueId> o) {
    size_t n = 0;
    set.Match(s, p, o, [&](const IdTriple&) {
      ++n;
      return true;
    });
    return n;
  };
  EXPECT_EQ(count(1, std::nullopt, std::nullopt), 2u);
  EXPECT_EQ(count(std::nullopt, 10, std::nullopt), 2u);
  EXPECT_EQ(count(std::nullopt, std::nullopt, 100), 2u);
  EXPECT_EQ(count(1, 10, std::nullopt), 1u);
  EXPECT_EQ(count(std::nullopt, std::nullopt, std::nullopt), 3u);
  EXPECT_EQ(count(9, std::nullopt, std::nullopt), 0u);
}

TEST(TripleSetTest, MatchEarlyStop) {
  TripleSet set;
  for (int i = 0; i < 10; ++i) set.Add({1, 2, i, i});
  size_t n = 0;
  set.Match(1, std::nullopt, std::nullopt, [&](const IdTriple&) {
    return ++n < 3;
  });
  EXPECT_EQ(n, 3u);
}

class EntailmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateRdfModel("kb", "kbdata", "triple").ok());
    model_ = *store_.GetModelId("kb");
  }

  void Add(const std::string& s, const std::string& p,
           const std::string& o) {
    ASSERT_TRUE(store_.InsertTriple("kb", s, p, o).ok());
  }

  bool Inferred(const TripleSet& set, const std::string& s,
                const std::string& p, const std::string& o) {
    auto s_id = store_.values().Lookup(Term::Uri(s));
    auto p_id = store_.values().Lookup(Term::Uri(p));
    auto o_id = store_.values().Lookup(Term::Uri(o));
    if (!s_id || !p_id || !o_id) return false;
    return set.Contains(*s_id, *p_id, *o_id);
  }

  RdfStore store_;
  rdf::ModelId model_ = 0;
};

TEST_F(EntailmentTest, Rdfs9SubClassInstances) {
  Add("ex:Dog", std::string(rdf::kRdfsSubClassOf), "ex:Animal");
  Add("ex:rex", std::string(rdf::kRdfType), "ex:Dog");
  ModelSource base(&store_, {model_});
  std::vector<const Rulebase*> rbs{&BuiltinRdfsRulebase()};
  size_t rounds = 0;
  auto inferred = ComputeEntailment(&store_, base, rbs, &rounds);
  ASSERT_TRUE(inferred.ok());
  EXPECT_TRUE(
      Inferred(*inferred, "ex:rex", std::string(rdf::kRdfType),
               "ex:Animal"));
  EXPECT_GE(rounds, 2u);  // at least one productive round + fixpoint check
}

TEST_F(EntailmentTest, Rdfs11SubClassTransitivity) {
  Add("ex:A", std::string(rdf::kRdfsSubClassOf), "ex:B");
  Add("ex:B", std::string(rdf::kRdfsSubClassOf), "ex:C");
  Add("ex:C", std::string(rdf::kRdfsSubClassOf), "ex:D");
  ModelSource base(&store_, {model_});
  std::vector<const Rulebase*> rbs{&BuiltinRdfsRulebase()};
  auto inferred = ComputeEntailment(&store_, base, rbs, nullptr);
  ASSERT_TRUE(inferred.ok());
  // Transitive closure needs chained rounds: A subClassOf D.
  EXPECT_TRUE(Inferred(*inferred, "ex:A",
                       std::string(rdf::kRdfsSubClassOf), "ex:D"));
}

TEST_F(EntailmentTest, Rdfs2DomainAndRdfs3Range) {
  Add("ex:hasPet", std::string(rdf::kRdfsDomain), "ex:Person");
  Add("ex:hasPet", std::string(rdf::kRdfsRange), "ex:Animal");
  Add("ex:alice", "ex:hasPet", "ex:rex");
  ModelSource base(&store_, {model_});
  std::vector<const Rulebase*> rbs{&BuiltinRdfsRulebase()};
  auto inferred = ComputeEntailment(&store_, base, rbs, nullptr);
  ASSERT_TRUE(inferred.ok());
  EXPECT_TRUE(Inferred(*inferred, "ex:alice",
                       std::string(rdf::kRdfType), "ex:Person"));
  EXPECT_TRUE(Inferred(*inferred, "ex:rex", std::string(rdf::kRdfType),
                       "ex:Animal"));
}

TEST_F(EntailmentTest, Rdfs3SkipsLiteralObjects) {
  Add("ex:name", std::string(rdf::kRdfsRange), "ex:NameClass");
  ASSERT_TRUE(store_.InsertTriple("kb", "ex:alice", "ex:name",
                                  "\"Alice\"")
                  .ok());
  ModelSource base(&store_, {model_});
  std::vector<const Rulebase*> rbs{&BuiltinRdfsRulebase()};
  auto inferred = ComputeEntailment(&store_, base, rbs, nullptr);
  ASSERT_TRUE(inferred.ok());
  // No triple with a literal subject was inferred.
  for (const IdTriple& t : inferred->triples()) {
    auto code = store_.values().GetTypeCode(t.s);
    ASSERT_TRUE(code.ok());
    EXPECT_TRUE(*code == "UR" || *code == "BN");
  }
}

TEST_F(EntailmentTest, Rdfs7SubPropertyInheritance) {
  Add("ex:hasMother", std::string(rdf::kRdfsSubPropertyOf),
      "ex:hasParent");
  Add("ex:bob", "ex:hasMother", "ex:carol");
  ModelSource base(&store_, {model_});
  std::vector<const Rulebase*> rbs{&BuiltinRdfsRulebase()};
  auto inferred = ComputeEntailment(&store_, base, rbs, nullptr);
  ASSERT_TRUE(inferred.ok());
  EXPECT_TRUE(Inferred(*inferred, "ex:bob", "ex:hasParent", "ex:carol"));
}

TEST_F(EntailmentTest, UserRuleWithFilterAndConstants) {
  Add("ex:jim", "ex:score", "ex:ignored");
  ASSERT_TRUE(store_.InsertTriple(
                  "kb", "ex:jim", "ex:age",
                  "\"30\"^^<http://www.w3.org/2001/XMLSchema#int>")
                  .ok());
  ASSERT_TRUE(store_.InsertTriple(
                  "kb", "ex:kid", "ex:age",
                  "\"10\"^^<http://www.w3.org/2001/XMLSchema#int>")
                  .ok());
  Rulebase rb("adults");
  Rule rule;
  rule.name = "adult_rule";
  rule.antecedent = "(?x ex:age ?a)";
  rule.filter = "?a >= 18";
  rule.consequent = "(?x rdf:type ex:Adult)";
  rule.aliases = {{"ex", "ex:"}};
  // Note: 'ex:age' has no alias expansion ("ex" maps to "ex:")...
  rule.aliases = {};
  ASSERT_TRUE(rb.AddRule(rule).ok());

  ModelSource base(&store_, {model_});
  std::vector<const Rulebase*> rbs{&rb};
  auto inferred = ComputeEntailment(&store_, base, rbs, nullptr);
  ASSERT_TRUE(inferred.ok());
  EXPECT_TRUE(Inferred(*inferred, "ex:jim", std::string(rdf::kRdfType),
                       "ex:Adult"));
  EXPECT_FALSE(Inferred(*inferred, "ex:kid", std::string(rdf::kRdfType),
                        "ex:Adult"));
}

TEST_F(EntailmentTest, NoRulesMeansNoInference) {
  Add("ex:a", "ex:b", "ex:c");
  ModelSource base(&store_, {model_});
  auto inferred = ComputeEntailment(&store_, base, {}, nullptr);
  ASSERT_TRUE(inferred.ok());
  EXPECT_EQ(inferred->size(), 0u);
}

TEST_F(EntailmentTest, InferredExcludesBaseTriples) {
  // rdfs9 would re-derive an already-present triple; it must not appear
  // in the inferred set.
  Add("ex:Dog", std::string(rdf::kRdfsSubClassOf), "ex:Animal");
  Add("ex:rex", std::string(rdf::kRdfType), "ex:Dog");
  Add("ex:rex", std::string(rdf::kRdfType), "ex:Animal");  // pre-asserted
  ModelSource base(&store_, {model_});
  std::vector<const Rulebase*> rbs{&BuiltinRdfsRulebase()};
  auto inferred = ComputeEntailment(&store_, base, rbs, nullptr);
  ASSERT_TRUE(inferred.ok());
  EXPECT_FALSE(
      Inferred(*inferred, "ex:rex", std::string(rdf::kRdfType),
               "ex:Animal"));
}

TEST_F(EntailmentTest, RulesIndexBuildPersistsTable) {
  Add("ex:Dog", std::string(rdf::kRdfsSubClassOf), "ex:Animal");
  Add("ex:rex", std::string(rdf::kRdfType), "ex:Dog");
  std::vector<const Rulebase*> rbs{&BuiltinRdfsRulebase()};
  auto index = RulesIndex::Build(&store_, "rix", {"kb"}, rbs);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->name(), "rix");
  EXPECT_GT((*index)->inferred_count(), 0u);
  EXPECT_GE((*index)->rounds(), 2u);
  // Pre-computed triples are persisted as the paper describes.
  storage::Table* table = store_.database().GetTable("MDSYS", "RDFI_RIX");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->row_count(), (*index)->inferred_count());
}

TEST_F(EntailmentTest, RulesIndexCovers) {
  std::vector<const Rulebase*> rbs{&BuiltinRdfsRulebase()};
  auto index = RulesIndex::Build(&store_, "rix", {"kb"}, rbs);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE((*index)->Covers({"kb"}, {"RDFS"}));
  EXPECT_TRUE((*index)->Covers({"KB"}, {"rdfs"}));  // case-insensitive
  EXPECT_FALSE((*index)->Covers({"kb", "other"}, {"RDFS"}));
  EXPECT_FALSE((*index)->Covers({"kb"}, {"RDFS", "extra"}));
  EXPECT_FALSE((*index)->Covers({"kb"}, {}));
}

TEST_F(EntailmentTest, RulesIndexUnknownModelFails) {
  std::vector<const Rulebase*> rbs{&BuiltinRdfsRulebase()};
  EXPECT_TRUE(RulesIndex::Build(&store_, "rix", {"ghost"}, rbs)
                  .status()
                  .IsNotFound());
}

TEST_F(EntailmentTest, EvalPatternsJoinsAcrossPatterns) {
  Add("ex:a", "ex:knows", "ex:b");
  Add("ex:b", "ex:knows", "ex:c");
  Add("ex:c", "ex:knows", "ex:d");
  ModelSource base(&store_, {model_});
  auto patterns = ParsePatterns("(?x ex:knows ?y) (?y ex:knows ?z)", {});
  ASSERT_TRUE(patterns.ok());
  size_t solutions = 0;
  Status st = EvalPatterns(store_, *patterns, nullptr, base,
                           [&](const IdBindings& binding) {
                             EXPECT_EQ(binding.size(), 3u);
                             ++solutions;
                             return true;
                           });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(solutions, 2u);  // a-b-c and b-c-d
}

TEST_F(EntailmentTest, EvalPatternsRepeatedVariableMustMatch) {
  Add("ex:x", "ex:p", "ex:x");
  Add("ex:x", "ex:p", "ex:y");
  ModelSource base(&store_, {model_});
  auto patterns = ParsePatterns("(?a ex:p ?a)", {});
  size_t solutions = 0;
  ASSERT_TRUE(EvalPatterns(store_, *patterns, nullptr, base,
                           [&](const IdBindings&) {
                             ++solutions;
                             return true;
                           })
                  .ok());
  EXPECT_EQ(solutions, 1u);  // only the self-loop
}

TEST(PlanPatternOrderTest, ConstantRichPatternsFirst) {
  auto patterns = ParsePatterns(
      "(?x ex:knows ?y) (?x ex:name \"Alice\") (?y ?p ?z)", {});
  ASSERT_TRUE(patterns.ok());
  std::vector<size_t> order = PlanPatternOrder(*patterns);
  ASSERT_EQ(order.size(), 3u);
  // The (?x ex:name "Alice") pattern has two constants -> runs first.
  EXPECT_EQ(order[0], 1u);
  // The fully-variable pattern runs last.
  EXPECT_EQ(order[2], 2u);
}

TEST(PlanPatternOrderTest, PrefersConnectedPatterns) {
  // After picking the selective pattern on ?a, the planner must pick
  // the pattern sharing ?a before the disconnected one on ?c.
  auto patterns = ParsePatterns(
      "(?c ex:p ?d) (?a ex:knows ?c) (?a ex:name \"Alice\")", {});
  ASSERT_TRUE(patterns.ok());
  std::vector<size_t> order = PlanPatternOrder(*patterns);
  EXPECT_EQ(order[0], 2u);  // two constants
  EXPECT_EQ(order[1], 1u);  // shares ?a with the first pick
  EXPECT_EQ(order[2], 0u);  // joined via ?c only after step 2
}

TEST_F(EntailmentTest, ReorderingDoesNotChangeResults) {
  // Random-ish chain data; evaluate a 3-pattern query with and without
  // the planner and compare solution sets.
  for (int i = 0; i < 30; ++i) {
    Add("ex:n" + std::to_string(i), "ex:knows",
        "ex:n" + std::to_string((i * 7 + 3) % 30));
    Add("ex:n" + std::to_string(i), "ex:team",
        "ex:t" + std::to_string(i % 3));
  }
  ModelSource base(&store_, {model_});
  auto patterns = ParsePatterns(
      "(?x ex:knows ?y) (?y ex:knows ?z) (?z ex:team ex:t1)", {});
  ASSERT_TRUE(patterns.ok());

  auto collect = [&](bool reorder) {
    std::set<std::string> out;
    EvalOptions options;
    options.reorder_patterns = reorder;
    Status st = EvalPatterns(store_, *patterns, nullptr, base,
                             [&](const IdBindings& b) {
                               std::string key;
                               for (const auto& [var, id] : b) {
                                 key += var + "=" +
                                        std::to_string(id) + ";";
                               }
                               out.insert(key);
                               return true;
                             },
                             options);
    EXPECT_TRUE(st.ok());
    return out;
  };
  std::set<std::string> with = collect(true);
  std::set<std::string> without = collect(false);
  EXPECT_EQ(with, without);
  EXPECT_FALSE(with.empty());
}

TEST_F(EntailmentTest, EvalPatternsUnknownConstantYieldsNothing) {
  Add("ex:a", "ex:b", "ex:c");
  ModelSource base(&store_, {model_});
  auto patterns = ParsePatterns("(?x ex:never ?y)", {});
  size_t solutions = 0;
  ASSERT_TRUE(EvalPatterns(store_, *patterns, nullptr, base,
                           [&](const IdBindings&) {
                             ++solutions;
                             return true;
                           })
                  .ok());
  EXPECT_EQ(solutions, 0u);
}

}  // namespace
}  // namespace rdfdb::query
