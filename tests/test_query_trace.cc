// QueryTrace (EXPLAIN ANALYZE) assertions: the per-pattern scan/emit
// counts, the chosen plan, and the dictionary/filter/DISTINCT tallies
// must be exact on a deterministic dataset.

#include <gtest/gtest.h>

#include <vector>

#include "gen/ic_dataset.h"
#include "obs/trace.h"
#include "query/inference.h"
#include "query/match.h"

namespace rdfdb::query {
namespace {

class QueryTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateRdfModel("m", "mdata", "triple").ok());
    Insert("urn:s1", "urn:type", "urn:Protein");
    Insert("urn:s2", "urn:type", "urn:Protein");
    Insert("urn:s1", "urn:name", "\"alpha\"");
    Insert("urn:s2", "urn:name", "\"alpha\"");
    Insert("urn:s3", "urn:name", "\"gamma\"");
  }

  void Insert(const std::string& s, const std::string& p,
              const std::string& o) {
    ASSERT_TRUE(store_.InsertTriple("m", s, p, o).ok());
  }

  Result<MatchResult> Run(const std::string& query, MatchOptions options,
                          const std::string& filter = "") {
    return SdoRdfMatch(&store_, nullptr, query, {"m"}, {}, {}, filter,
                       options);
  }

  rdf::RdfStore store_;
};

TEST_F(QueryTraceTest, PerPatternScanAndEmitCounts) {
  obs::QueryTrace trace;
  MatchOptions options;
  options.trace = &trace;
  auto result =
      Run("(?s urn:type urn:Protein) (?s urn:name ?n)", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count(), 2u);

  // The planner keeps the selective type pattern (2 candidate rows)
  // ahead of the name pattern (3 candidate rows).
  EXPECT_TRUE(trace.reordered);
  EXPECT_EQ(trace.plan_order, (std::vector<size_t>{0, 1}));
  ASSERT_EQ(trace.patterns.size(), 2u);
  EXPECT_EQ(trace.patterns[0].pattern_index, 0u);
  EXPECT_EQ(trace.patterns[0].text, "(?s <urn:type> <urn:Protein>)");
  EXPECT_EQ(trace.patterns[0].rows_scanned, 2u);
  EXPECT_EQ(trace.patterns[0].rows_emitted, 2u);
  // Second step: one probe per bound ?s, each yielding one name row.
  EXPECT_EQ(trace.patterns[1].pattern_index, 1u);
  EXPECT_EQ(trace.patterns[1].rows_scanned, 2u);
  EXPECT_EQ(trace.patterns[1].rows_emitted, 2u);

  // Constant resolution: urn:type + urn:Protein + urn:name (the
  // planner's own probes are not traced).
  EXPECT_EQ(trace.value_lookups, 3u);
  EXPECT_EQ(trace.value_lookup_misses, 0u);
  EXPECT_FALSE(trace.dead_constant);
  EXPECT_EQ(trace.rows_emitted, 2u);
  // Two rows, two columns each.
  EXPECT_EQ(trace.value_resolutions, 4u);

  EXPECT_GT(trace.total_ns, 0);
  EXPECT_GE(trace.total_ns, trace.exec_ns);
  EXPECT_GT(trace.exec_ns, 0);

  std::string text = trace.ToString();
  EXPECT_NE(text.find("query trace: 2 pattern(s)"), std::string::npos);
  EXPECT_NE(text.find("scanned=2"), std::string::npos);
}

TEST_F(QueryTraceTest, DistinctDropsCounted) {
  obs::QueryTrace trace;
  MatchOptions options;
  options.trace = &trace;
  options.projection = {"n"};
  options.distinct = true;
  auto result = Run("(?s urn:name ?n)", options);
  ASSERT_TRUE(result.ok());
  // alpha, alpha, gamma -> two distinct rows, one drop.
  EXPECT_EQ(result->row_count(), 2u);
  EXPECT_EQ(trace.distinct_drops, 1u);
  EXPECT_EQ(trace.rows_emitted, 2u);
}

TEST_F(QueryTraceTest, FilterEvaluationsAndRejectionsCounted) {
  obs::QueryTrace trace;
  MatchOptions options;
  options.trace = &trace;
  auto result = Run("(?s urn:name ?n)", options, "?n = \"alpha\"");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count(), 2u);
  EXPECT_EQ(trace.filter_evaluations, 3u);
  EXPECT_EQ(trace.filter_rejections, 1u);  // gamma
}

TEST_F(QueryTraceTest, DeadConstantShortCircuits) {
  obs::QueryTrace trace;
  MatchOptions options;
  options.trace = &trace;
  auto result = Run("(?s urn:never_inserted ?n)", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count(), 0u);
  EXPECT_TRUE(trace.dead_constant);
  EXPECT_EQ(trace.value_lookup_misses, 1u);
  ASSERT_EQ(trace.patterns.size(), 1u);
  EXPECT_EQ(trace.patterns[0].rows_scanned, 0u);
  EXPECT_EQ(trace.patterns[0].rows_emitted, 0u);
}

TEST_F(QueryTraceTest, TraceIsResetPerQuery) {
  obs::QueryTrace trace;
  MatchOptions options;
  options.trace = &trace;
  ASSERT_TRUE(
      Run("(?s urn:type urn:Protein) (?s urn:name ?n)", options).ok());
  ASSERT_EQ(trace.patterns.size(), 2u);
  // Reusing the same trace must not accumulate across queries.
  ASSERT_TRUE(Run("(?s urn:name ?n)", options).ok());
  ASSERT_EQ(trace.patterns.size(), 1u);
  EXPECT_EQ(trace.rows_emitted, 3u);
}

TEST_F(QueryTraceTest, ParallelTraceMatchesSequential) {
  // Without an early stop, the parallel executor's ordered chunk merge
  // must reproduce the sequential counters exactly.
  obs::QueryTrace sequential;
  MatchOptions options;
  options.trace = &sequential;
  auto seq_result =
      Run("(?s urn:type urn:Protein) (?s urn:name ?n)", options);
  ASSERT_TRUE(seq_result.ok());
  EXPECT_EQ(sequential.exec_threads, 1u);

  obs::QueryTrace parallel;
  options.trace = &parallel;
  options.threads = 2;
  options.chunk_frames = 1;  // force one outer frame per chunk
  auto par_result =
      Run("(?s urn:type urn:Protein) (?s urn:name ?n)", options);
  ASSERT_TRUE(par_result.ok());
  EXPECT_EQ(par_result->row_count(), seq_result->row_count());

  EXPECT_EQ(parallel.exec_threads, 2u);
  EXPECT_EQ(parallel.exec_chunks, 2u);
  EXPECT_EQ(parallel.plan_order, sequential.plan_order);
  ASSERT_EQ(parallel.patterns.size(), sequential.patterns.size());
  for (size_t i = 0; i < parallel.patterns.size(); ++i) {
    EXPECT_EQ(parallel.patterns[i].rows_scanned,
              sequential.patterns[i].rows_scanned);
    EXPECT_EQ(parallel.patterns[i].rows_emitted,
              sequential.patterns[i].rows_emitted);
  }
  EXPECT_EQ(parallel.value_lookups, sequential.value_lookups);
  EXPECT_EQ(parallel.rows_emitted, sequential.rows_emitted);
  EXPECT_EQ(parallel.value_resolutions, sequential.value_resolutions);
  EXPECT_NE(parallel.ToString().find("parallel: 2 thread(s), 2 chunk(s)"),
            std::string::npos);
}

TEST_F(QueryTraceTest, ParallelTraceCarriesPerWorkerActivity) {
  obs::QueryTrace trace;
  MatchOptions options;
  options.trace = &trace;
  options.threads = 2;
  options.chunk_frames = 1;
  auto result = Run("(?s urn:type urn:Protein) (?s urn:name ?n)", options);
  ASSERT_TRUE(result.ok());

  // Chunk-to-worker assignment is scheduling-dependent, but every chunk
  // and every row must be accounted to exactly one worker.
  ASSERT_FALSE(trace.exec_workers.empty());
  size_t chunks = 0;
  size_t rows = 0;
  for (const obs::ExecWorkerTrace& worker : trace.exec_workers) {
    EXPECT_GE(worker.worker, 1u);
    EXPECT_LE(worker.worker, trace.exec_threads);
    EXPECT_GT(worker.chunks, 0u);  // idle workers are omitted
    EXPECT_GE(worker.busy_ns, 0);
    chunks += worker.chunks;
    rows += worker.rows_emitted;
  }
  EXPECT_EQ(chunks, trace.exec_chunks);
  EXPECT_EQ(rows, trace.rows_emitted);
  EXPECT_NE(trace.ToString().find("worker "), std::string::npos);

  // The sequential path reports no per-worker breakdown.
  obs::QueryTrace sequential;
  options.trace = &sequential;
  options.threads = 1;
  ASSERT_TRUE(Run("(?s urn:name ?n)", options).ok());
  EXPECT_TRUE(sequential.exec_workers.empty());
}

TEST_F(QueryTraceTest, ParallelFilterCountersMatchSequential) {
  obs::QueryTrace sequential;
  MatchOptions options;
  options.trace = &sequential;
  ASSERT_TRUE(
      Run("(?s urn:name ?n) (?s ?p ?o)", options, "?n = \"alpha\"").ok());

  obs::QueryTrace parallel;
  options.trace = &parallel;
  options.threads = 4;
  options.chunk_frames = 1;
  ASSERT_TRUE(
      Run("(?s urn:name ?n) (?s ?p ?o)", options, "?n = \"alpha\"").ok());
  EXPECT_GT(parallel.exec_chunks, 1u);
  EXPECT_EQ(parallel.filter_evaluations, sequential.filter_evaluations);
  EXPECT_EQ(parallel.filter_rejections, sequential.filter_rejections);
  EXPECT_EQ(parallel.rows_emitted, sequential.rows_emitted);
}

TEST_F(QueryTraceTest, QueryMetricsEmittedIntoRegistry) {
  MatchOptions options;
  ASSERT_TRUE(Run("(?s urn:name ?n)", options).ok());
  ASSERT_TRUE(Run("(?s urn:name ?n)", options).ok());
  const obs::Counter* queries =
      store_.metrics_registry().FindCounter("rdfdb_query_total");
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->Value(), 2u);
  const obs::Counter* rows =
      store_.metrics_registry().FindCounter("rdfdb_query_rows_total");
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->Value(), 6u);
  const obs::Histogram* latency =
      store_.metrics_registry().FindHistogram("rdfdb_query_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 2u);
}

TEST(QueryTraceInferenceTest, OnTheFlyEntailmentAndRulesIndexFlag) {
  rdf::RdfStore store;
  auto scenario = gen::BuildIcScenario(&store);
  ASSERT_TRUE(scenario.ok());
  InferenceEngine engine(&store);
  ASSERT_TRUE(engine.CreateRulebase("intel_rb").ok());
  Rule rule;
  rule.name = "intel_rule";
  rule.antecedent = "(?x gov:terrorAction \"bombing\")";
  rule.consequent = "(gov:files gov:terrorSuspect ?x)";
  rule.aliases = scenario->aliases;
  ASSERT_TRUE(engine.InsertRule("intel_rb", rule).ok());

  obs::QueryTrace trace;
  MatchOptions options;
  options.trace = &trace;
  auto on_the_fly = SdoRdfMatch(
      &store, &engine, "(gov:files gov:terrorSuspect ?name)",
      {"cia", "dhs", "fbi"}, {"RDFS", "intel_rb"}, scenario->aliases, "",
      options);
  ASSERT_TRUE(on_the_fly.ok());
  EXPECT_FALSE(trace.used_rules_index);
  EXPECT_GE(trace.inference_rounds, 1u);
  EXPECT_GE(trace.inferred_triples, 1u);
  EXPECT_GT(trace.infer_ns, 0);

  // The per-rule derivation counter was registered and bumped.
  const obs::Counter* rule_counter = store.metrics_registry().FindCounter(
      "rdfdb_inference_rule_intel_rb_intel_rule_derived_total");
  ASSERT_NE(rule_counter, nullptr);
  EXPECT_GE(rule_counter->Value(), 1u);

  // With a covering index the flag flips and its stats are reported.
  ASSERT_TRUE(engine
                  .CreateRulesIndex("rix", {"cia", "dhs", "fbi"},
                                    {"RDFS", "intel_rb"})
                  .ok());
  auto indexed = SdoRdfMatch(
      &store, &engine, "(gov:files gov:terrorSuspect ?name)",
      {"cia", "dhs", "fbi"}, {"RDFS", "intel_rb"}, scenario->aliases, "",
      options);
  ASSERT_TRUE(indexed.ok());
  EXPECT_TRUE(trace.used_rules_index);
  EXPECT_GE(trace.inferred_triples, 1u);
  EXPECT_EQ(on_the_fly->row_count(), indexed->row_count());
}

}  // namespace
}  // namespace rdfdb::query
