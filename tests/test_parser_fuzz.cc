// Randomized robustness tests for every text parser in the library:
// arbitrary byte noise and mutated valid inputs must produce a clean
// Status (never a crash or hang), and serialize-then-parse must always
// succeed.

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "dburi/dburi.h"
#include "query/filter.h"
#include "query/sparql_pattern.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"

namespace rdfdb {
namespace {

/// Random bytes biased toward the parsers' structural characters.
std::string NoiseString(Random* rng, size_t max_len) {
  static const char kMeaningful[] =
      "<>\"\\^^@?_:() \t.#/ABCdef0123-+~%";
  std::string out;
  size_t len = rng->Uniform(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    if (rng->Bernoulli(0.7)) {
      out.push_back(
          kMeaningful[rng->Uniform(sizeof(kMeaningful) - 1)]);
    } else {
      out.push_back(static_cast<char>(rng->Uniform(256)));
    }
  }
  return out;
}

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, ApiTermParserNeverCrashes) {
  Random rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    std::string input = NoiseString(&rng, 64);
    auto result = rdf::ParseApiTerm(input);
    if (result.ok()) {
      // Whatever parses must serialize and re-parse to the same term.
      auto back = rdf::ParseApiTerm(result->ToNTriples());
      ASSERT_TRUE(back.ok()) << input;
      EXPECT_EQ(*back, *result) << input;
    }
  }
}

TEST_P(ParserFuzzTest, NTriplesParserNeverCrashes) {
  Random rng(GetParam() + 1);
  for (int i = 0; i < 2000; ++i) {
    std::string line = NoiseString(&rng, 96);
    auto result = rdf::ParseNTriplesLine(line);
    if (result.ok() && result->has_value()) {
      std::string serialized = rdf::ToNTriplesLine(**result);
      auto back = rdf::ParseNTriplesLine(serialized);
      ASSERT_TRUE(back.ok()) << line << " -> " << serialized;
      ASSERT_TRUE(back->has_value());
      EXPECT_EQ(**back, **result) << serialized;
    }
  }
}

TEST_P(ParserFuzzTest, PatternParserNeverCrashes) {
  Random rng(GetParam() + 2);
  for (int i = 0; i < 1000; ++i) {
    std::string query = NoiseString(&rng, 80);
    auto result = query::ParsePatterns(query, {});
    (void)result;  // ok or clean error — either is fine
  }
}

TEST_P(ParserFuzzTest, FilterParserNeverCrashes) {
  Random rng(GetParam() + 3);
  for (int i = 0; i < 1000; ++i) {
    std::string expr = NoiseString(&rng, 64);
    auto result = query::ParseFilter(expr);
    if (result.ok()) {
      // Evaluation against empty bindings must also be safe.
      (void)(*result)->Evaluate({});
    }
  }
}

TEST_P(ParserFuzzTest, DBUriParserNeverCrashes) {
  Random rng(GetParam() + 4);
  for (int i = 0; i < 2000; ++i) {
    std::string uri = NoiseString(&rng, 64);
    auto result = dburi::Parse(uri);
    if (result.ok()) {
      // Round trip through canonical form.
      auto back = dburi::Parse(result->ToString());
      ASSERT_TRUE(back.ok()) << uri;
    }
  }
}

TEST_P(ParserFuzzTest, MutatedValidNTriplesHandled) {
  Random rng(GetParam() + 5);
  const std::string valid =
      "<http://s> <http://p> \"value\"^^<http://dt> .";
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = valid;
    size_t mutations = 1 + rng.Uniform(4);
    for (size_t m = 0; m < mutations; ++m) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1,
                         static_cast<char>(rng.Uniform(128)));
      }
      if (mutated.empty()) mutated = ".";
    }
    auto result = rdf::ParseNTriplesLine(mutated);
    (void)result;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace rdfdb
