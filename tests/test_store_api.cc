// Tests for the extended SDO_RDF-style API surface (GetTripleId,
// GetModelStats, CheckConsistency) and cross-cutting store invariants
// checked over randomized workloads.

#include <gtest/gtest.h>

#include <set>

#include "gen/uniprot_gen.h"
#include "rdf/bulk_load.h"
#include "rdf/rdf_store.h"
#include "rdf/vocab.h"

namespace rdfdb::rdf {
namespace {

class StoreApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateRdfModel("cia", "ciadata", "triple").ok());
  }

  RdfStore store_;
};

TEST_F(StoreApiTest, GetTripleId) {
  auto triple = store_.InsertTriple("cia", "gov:files",
                                    "gov:terrorSuspect", "id:JohnDoe");
  ASSERT_TRUE(triple.ok());
  auto id = store_.GetTripleId("cia", "gov:files", "gov:terrorSuspect",
                               "id:JohnDoe");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, triple->rdf_t_id());
  EXPECT_TRUE(store_.GetTripleId("cia", "gov:files", "gov:terrorSuspect",
                                 "id:Ghost")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(store_.GetTripleId("ghost", "gov:a", "gov:b", "gov:c")
                  .status()
                  .IsNotFound());
}

TEST_F(StoreApiTest, ModelStatsCountsEverything) {
  ASSERT_TRUE(store_.InsertTriple("cia", "gov:files", "gov:terrorSuspect",
                                  "id:JohnDoe")
                  .ok());
  ASSERT_TRUE(store_.InsertTriple("cia", "gov:files", "gov:terrorSuspect",
                                  "id:JaneDoe")
                  .ok());
  auto base = store_.GetTripleId("cia", "gov:files", "gov:terrorSuspect",
                                 "id:JohnDoe");
  ASSERT_TRUE(store_.ReifyTriple("cia", *base).ok());
  ASSERT_TRUE(store_.AssertImplied("cia", "gov:Interpol", "gov:source",
                                   "gov:files", "gov:terrorSuspect",
                                   "id:JohnDoeJr")
                  .ok());

  auto stats = store_.GetModelStats("cia");
  ASSERT_TRUE(stats.ok());
  // 2 facts + 1 reif + 1 implied base + 1 reif + 1 assertion = 6.
  EXPECT_EQ(stats->triples, 6u);
  EXPECT_EQ(stats->reified_statements, 2u);
  EXPECT_EQ(stats->implied_statements, 1u);
  EXPECT_EQ(stats->distinct_predicates, 3u);  // terrorSuspect, rdf:type,
                                              // gov:source
  EXPECT_GE(stats->distinct_subjects, 4u);
  EXPECT_TRUE(store_.GetModelStats("ghost").status().IsNotFound());
}

TEST_F(StoreApiTest, EmptyModelStats) {
  auto stats = store_.GetModelStats("cia");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->triples, 0u);
  EXPECT_EQ(stats->distinct_subjects, 0u);
}

TEST_F(StoreApiTest, ConsistencyHoldsThroughMutations) {
  EXPECT_TRUE(store_.CheckConsistency().ok());
  ASSERT_TRUE(store_.InsertTriple("cia", "gov:a", "gov:p", "gov:b").ok());
  ASSERT_TRUE(store_.InsertTriple("cia", "gov:b", "gov:p", "gov:c").ok());
  EXPECT_TRUE(store_.CheckConsistency().ok());
  ASSERT_TRUE(store_.DeleteTriple("cia", "gov:a", "gov:p", "gov:b").ok());
  EXPECT_TRUE(store_.CheckConsistency().ok());
  ASSERT_TRUE(store_.DropRdfModel("cia").ok());
  EXPECT_TRUE(store_.CheckConsistency().ok());
}

TEST_F(StoreApiTest, ModelAccessGrants) {
  // The cia model was created without an owner -> public.
  auto open = store_.CanSelectModel("cia", "anyone");
  ASSERT_TRUE(open.ok());
  EXPECT_TRUE(*open);

  // An owned model restricts SELECT to the owner until granted.
  ASSERT_TRUE(
      store_.CreateRdfModel("secret", "secretdata", "triple", "cia_user")
          .ok());
  EXPECT_TRUE(*store_.CanSelectModel("secret", "cia_user"));
  EXPECT_FALSE(*store_.CanSelectModel("secret", "fbi_user"));
  ASSERT_TRUE(store_.GrantSelectOnModel("secret", "fbi_user").ok());
  EXPECT_TRUE(*store_.CanSelectModel("secret", "fbi_user"));
  EXPECT_FALSE(*store_.CanSelectModel("secret", "dhs_user"));
  EXPECT_TRUE(store_.GrantSelectOnModel("ghost", "x").IsNotFound());
  EXPECT_TRUE(store_.CanSelectModel("ghost", "x").status().IsNotFound());
}

// ---- Randomized property sweep ----------------------------------------

class RandomWorkloadTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomWorkloadTest, LoadExportReloadPreservesModel) {
  gen::UniProtOptions options;
  options.target_triples = 1500;
  options.seed = GetParam();
  gen::UniProtDataset dataset = gen::GenerateUniProt(options);

  RdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  auto stats = BulkLoad(&store, "m", dataset.triples);
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(store.CheckConsistency().ok());

  // Export and reload into a fresh store.
  auto exported = ExportModel(store, "m");
  ASSERT_TRUE(exported.ok());
  EXPECT_EQ(exported->size(), stats->new_links);

  RdfStore second;
  ASSERT_TRUE(second.CreateRdfModel("m", "mdata", "triple").ok());
  auto reload = BulkLoad(&second, "m", *exported);
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->new_links, exported->size());
  EXPECT_EQ(reload->reused_links, 0u);  // export had no duplicates
  ASSERT_TRUE(second.CheckConsistency().ok());

  // Model-level statistics agree.
  auto s1 = store.GetModelStats("m");
  auto s2 = second.GetModelStats("m");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s1->triples, s2->triples);
  EXPECT_EQ(s1->distinct_subjects, s2->distinct_subjects);
  EXPECT_EQ(s1->distinct_predicates, s2->distinct_predicates);
  EXPECT_EQ(s1->distinct_objects, s2->distinct_objects);
}

TEST_P(RandomWorkloadTest, DeleteEverythingLeavesCleanStore) {
  gen::UniProtOptions options;
  options.target_triples = 600;
  options.seed = GetParam() + 50;
  gen::UniProtDataset dataset = gen::GenerateUniProt(options);

  RdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  ASSERT_TRUE(BulkLoad(&store, "m", dataset.triples).ok());

  // Delete every triple, then verify nothing is left anywhere.
  ModelId model = *store.GetModelId("m");
  std::vector<LinkRow> rows;
  store.links().ScanModel(model, [&](const LinkRow& row) {
    rows.push_back(row);
    return true;
  });
  for (const LinkRow& row : rows) {
    ASSERT_TRUE(store.links()
                    .Delete(model, row.start_node_id, row.p_value_id,
                            row.end_node_id, /*force=*/true)
                    .ok());
  }
  EXPECT_EQ(store.links().TotalTripleCount(), 0u);
  EXPECT_EQ(store.network().link_count(), 0u);
  EXPECT_EQ(store.network().node_count(), 0u);
  EXPECT_TRUE(store.CheckConsistency().ok());
}

TEST_P(RandomWorkloadTest, ValueDedupInvariant) {
  gen::UniProtOptions options;
  options.target_triples = 1000;
  options.seed = GetParam() + 99;
  gen::UniProtDataset dataset = gen::GenerateUniProt(options);

  RdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  ASSERT_TRUE(BulkLoad(&store, "m", dataset.triples).ok());

  // No two rdf_value$ rows may carry the same (name, type, datatype,
  // lang) key — the "uniquely stored" invariant.
  std::set<std::string> keys;
  bool duplicates = false;
  store.values().table().Scan(
      [&](storage::RowId, const storage::Row& row) {
        std::string key;
        for (size_t col : {1u, 2u, 3u, 4u}) {
          key += row[col].ToString() + "\x1f";
        }
        if (!keys.insert(key).second) duplicates = true;
        return true;
      });
  EXPECT_FALSE(duplicates);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace rdfdb::rdf
