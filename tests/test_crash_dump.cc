// Fork-based death tests for the crash black box: a child process
// installs the crash handler, gets itself into a realistic mid-flight
// state (loaded store, a query thread registered in the active-op
// table, flight recorder sampling into the box), then dies on a real
// signal. The parent validates both the process disposition (the
// handler must re-raise, so the child dies of the original signal) and
// the dump a debugger-less operator would read with rdfdb_postmortem.

#include "obs/crash_dump.h"

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>

#include "obs/active_ops.h"
#include "obs/flight_recorder.h"
#include "query/match.h"
#include "rdf/rdf_store.h"

// The sanitizers install their own SEGV/ABRT machinery and intercept
// allocation inside signal handlers; crashing on purpose under them
// tests the sanitizer, not the black box. Skip there.
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RDFDB_CRASH_TESTS_DISABLED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RDFDB_CRASH_TESTS_DISABLED 1
#endif

namespace rdfdb::obs {
namespace {

enum class CrashMode { kSegv, kAbort, kTerminate };

// Child body. Never returns: ends in a fatal signal (or _exit with a
// setup-failure code the parent reports as a test failure).
[[noreturn]] void CrashVictim(const std::string& box_path, CrashMode mode) {
  rdf::RdfStore store;
  if (!store.CreateRdfModel("m", "m_app", "triple").ok()) _exit(11);
  for (int i = 0; i < 512; ++i) {
    if (!store
             .InsertTriple("m", "<urn:s" + std::to_string(i) + ">",
                           "<urn:p" + std::to_string(i % 5) + ">",
                           "\"v" + std::to_string(i) + "\"")
             .ok()) {
      _exit(12);
    }
  }

  FlightRecorder::Options recorder_options;
  recorder_options.registry = &store.metrics_registry();
  recorder_options.sample_interval_ms = 60'000;
  recorder_options.black_box_path = box_path;
  auto recorder = FlightRecorder::Start(std::move(recorder_options));
  if (!recorder.ok()) _exit(13);

  if (!InstallCrashHandler((*recorder)->black_box())) _exit(14);

  // Query thread: a long-lived registered op (the kind SdoRdfMatch's
  // own RAII guard creates) plus real queries in flight, so the frozen
  // table shows what a production crash would show.
  std::atomic<bool> started{false};
  std::atomic<bool> stop{false};
  std::thread query_thread([&store, &started, &stop] {
    ActiveOpGuard op(OpKind::kQuery, "(?s ?p ?o) crash window");
    started.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_relaxed)) {
      query::MatchOptions options;
      options.limit = 64;
      if (!query::SdoRdfMatch(&store, nullptr, "(?s ?p ?o)", {"m"}, {}, {},
                              "", options)
               .ok()) {
        break;
      }
    }
  });
  while (!started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // Two snapshots into the box so the post-mortem also carries history.
  (*recorder)->SampleNow();
  (*recorder)->SampleNow();

  switch (mode) {
    case CrashMode::kSegv:
      *reinterpret_cast<volatile int*>(1) = 0;
      break;
    case CrashMode::kAbort:
      std::abort();
    case CrashMode::kTerminate:
      std::terminate();
  }
  _exit(15);  // unreachable: the crash above must be fatal
}

class CrashDumpDeathTest : public ::testing::Test {
 protected:
  // Forks, crashes the child in `mode`, asserts it died of
  // `expected_signal`, and returns the parsed dump.
  PostMortem CrashAndRead(CrashMode mode, int expected_signal) {
    const std::string path = ::testing::TempDir() + "/crash_bb_" +
                             std::to_string(static_cast<int>(mode)) + ".bin";
    ::unlink(path.c_str());
    const pid_t pid = ::fork();
    if (pid == 0) {
      CrashVictim(path, mode);  // noreturn
    }
    EXPECT_GT(pid, 0);
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFSIGNALED(status))
        << "child exited with " << WEXITSTATUS(status)
        << " instead of dying on a signal";
    if (WIFSIGNALED(status)) {
      EXPECT_EQ(WTERMSIG(status), expected_signal);
    }
    auto pm = ReadBlackBox(path);
    EXPECT_TRUE(pm.ok()) << pm.status().ToString();
    return pm.ok() ? *pm : PostMortem{};
  }
};

TEST_F(CrashDumpDeathTest, SegvDuringQueryYieldsCompleteDump) {
#ifdef RDFDB_CRASH_TESTS_DISABLED
  GTEST_SKIP() << "crash death tests disabled under sanitizers";
#endif
  const PostMortem pm = CrashAndRead(CrashMode::kSegv, SIGSEGV);
  EXPECT_TRUE(pm.complete);
  EXPECT_EQ(pm.signo, SIGSEGV);
  EXPECT_EQ(pm.fault_addr, 1u);
  EXPECT_GT(pm.crash_unix_ns, 0);
  EXPECT_NE(pm.fault_tid, 0u);
  // The faulting backtrace, both raw and symbolized.
  EXPECT_GT(pm.frames.size(), 0u);
  EXPECT_FALSE(pm.symbolized_stack.empty());

  // The frozen active-op table names the in-flight query.
  ASSERT_FALSE(pm.ops.empty());
  bool saw_query = false;
  for (const ActiveOpInfo& op : pm.ops) {
    if (op.kind == OpKind::kQuery &&
        op.detail.find("crash window") != std::string::npos) {
      saw_query = true;
      EXPECT_GE(op.age_ns, 0);
    }
  }
  EXPECT_TRUE(saw_query);

  // Pre-serialized history survived and parses.
  auto parsed = ParseHistoryText(pm.history_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->t_unix_ms.size(), 2u);

  // And the human rendering mentions the essentials.
  const std::string report = RenderPostMortem(pm);
  EXPECT_NE(report.find("SIGSEGV"), std::string::npos);
  EXPECT_NE(report.find("crash window"), std::string::npos) << report;
  EXPECT_NE(report.find("complete"), std::string::npos);
}

TEST_F(CrashDumpDeathTest, AbortIsCapturedWithBacktrace) {
#ifdef RDFDB_CRASH_TESTS_DISABLED
  GTEST_SKIP() << "crash death tests disabled under sanitizers";
#endif
  const PostMortem pm = CrashAndRead(CrashMode::kAbort, SIGABRT);
  EXPECT_TRUE(pm.complete);
  EXPECT_EQ(pm.signo, SIGABRT);
  EXPECT_GT(pm.frames.size(), 0u);
  EXPECT_FALSE(pm.ops.empty());
}

TEST_F(CrashDumpDeathTest, UncaughtTerminateIsAttributed) {
#ifdef RDFDB_CRASH_TESTS_DISABLED
  GTEST_SKIP() << "crash death tests disabled under sanitizers";
#endif
  // std::terminate → our terminate handler records signo = -1, then
  // aborts with the default disposition, so the process dies of
  // SIGABRT but the dump names std::terminate as the cause.
  const PostMortem pm = CrashAndRead(CrashMode::kTerminate, SIGABRT);
  EXPECT_TRUE(pm.complete);
  EXPECT_EQ(pm.signo, -1);
  EXPECT_NE(RenderPostMortem(pm).find("std::terminate"), std::string::npos);
}

TEST(BlackBoxFile, RejectsGarbageAndTruncation) {
  const std::string path = ::testing::TempDir() + "/bb_garbage.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a black box", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadBlackBox(path).ok());
  EXPECT_FALSE(ReadBlackBox(::testing::TempDir() + "/bb_missing.bin").ok());
}

TEST(BlackBoxFile, OpenCreatesArmedEmptyBox) {
  const std::string path = ::testing::TempDir() + "/bb_armed.bin";
  auto box = BlackBox::OpenOrCreate(path);
  ASSERT_TRUE(box.ok()) << box.status().ToString();
  (*box)->WriteEventsTail("{\"event\":\"x\"}\n");
  (*box)->Sync();
  auto pm = ReadBlackBox(path);
  ASSERT_TRUE(pm.ok()) << pm.status().ToString();
  EXPECT_FALSE(pm->complete);
  EXPECT_EQ(pm->signo, 0);
  EXPECT_TRUE(pm->frames.empty());
  EXPECT_NE(pm->events_tail.find("\"event\":\"x\""), std::string::npos);
}

}  // namespace
}  // namespace rdfdb::obs
