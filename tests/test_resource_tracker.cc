#include "obs/resource_tracker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace rdfdb::obs {
namespace {

// Defeat C++14 allocation elision: GCC is allowed to drop a paired
// new/delete entirely (even past a volatile store of the pointer, since
// elided storage may be provided "by other means"). An asm operand with
// a memory clobber makes the pointer escape for real, so the calls must
// reach the replaced operator new/delete the tracker hooks.
template <typename T>
T* Escape(T* p) {
  asm volatile("" : : "g"(p) : "memory");
  return p;
}

TEST(ResourceTrackerTest, GlobalLedgerTracksNewAndDelete) {
  const uint64_t live_before = TrackedHeapBytes();
  const uint64_t allocs_before = TrackedAllocations();
  auto* block = Escape(new char[1 << 16]);
  EXPECT_GE(TrackedHeapBytes(), live_before + (1 << 16));
  EXPECT_GE(TrackedAllocations(), allocs_before + 1);
  const uint64_t frees_before = TrackedFrees();
  delete[] block;
  EXPECT_GE(TrackedFrees(), frees_before + 1);
  // Live bytes return to (at least close to) where they started; the
  // exact value can move if the runtime allocates in between, but the
  // 64 KiB block must be gone.
  EXPECT_LT(TrackedHeapBytes(), live_before + (1 << 16));
}

TEST(ResourceTrackerTest, ThreadCountersAreMonotonicAndPerThread) {
  const uint64_t bytes_before = ThreadAllocatedBytes();
  const uint64_t count_before = ThreadAllocationCount();
  delete[] Escape(new char[4096]);
  EXPECT_GE(ThreadAllocatedBytes(), bytes_before + 4096);
  EXPECT_GE(ThreadAllocationCount(), count_before + 1);

  // Another thread's allocations must not appear in this thread's
  // monotonic totals.
  const uint64_t mine = ThreadAllocatedBytes();
  std::thread other([] {
    delete[] Escape(new char[1 << 20]);
  });
  other.join();
  EXPECT_LT(ThreadAllocatedBytes() - mine, 1u << 20);
}

TEST(ResourceTrackerTest, ScopeAttributesExactAllocationDelta) {
  // The scope sees exactly what happens between construction and the
  // Usage() call: nothing → zero; one 8 KiB block → >= 8 KiB and
  // exactly the allocations made inside.
  ResourceScope idle("test_idle");
  const ResourceUsage nothing = idle.Usage();
  EXPECT_EQ(nothing.bytes_allocated, 0u);
  EXPECT_EQ(nothing.allocations, 0u);

  ResourceScope scope("test_exact");
  auto* block = Escape(new char[8192]);
  const ResourceUsage usage = scope.Usage();
  EXPECT_GE(usage.bytes_allocated, 8192u);
  EXPECT_EQ(usage.allocations, 1u);
  delete[] block;
  // Frees do not reduce a scope's allocated-bytes attribution (the
  // counters are monotonic by design).
  EXPECT_GE(scope.Usage().bytes_allocated, 8192u);
}

TEST(ResourceTrackerTest, ScopeMeasuresCpuTime) {
  ResourceScope scope("test_cpu");
  // Burn CPU deterministically; volatile prevents the loop folding.
  volatile uint64_t acc = 0;
  for (uint64_t i = 0; i < 20'000'000; ++i) acc = acc + i;
  const ResourceUsage usage = scope.Usage();
  EXPECT_GT(usage.cpu_ns, 0);
}

TEST(ResourceTrackerTest, NestedScopesAreInclusive) {
  ResourceScope outer("test_outer");
  {
    ResourceScope inner("test_inner");
    delete[] Escape(new char[2048]);
    EXPECT_GE(inner.Usage().bytes_allocated, 2048u);
  }
  // The outer scope sees the inner scope's traffic too.
  EXPECT_GE(outer.Usage().bytes_allocated, 2048u);
}

TEST(ResourceTrackerTest, SinkReceivesUsageOnDestruction) {
  ResourceUsage sink;
  {
    ResourceScope scope("test_sink", &sink);
    delete[] Escape(new char[1024]);
  }
  EXPECT_GE(sink.bytes_allocated, 1024u);
  EXPECT_EQ(sink.allocations, 1u);

  // operator+= accumulates.
  ResourceUsage total;
  total += sink;
  total += sink;
  EXPECT_EQ(total.allocations, 2u);
  EXPECT_EQ(total.bytes_allocated, 2 * sink.bytes_allocated);
}

TEST(ResourceTrackerTest, RegistryAggregatesClosedScopesByLabel) {
  ResetScopeStats();
  for (int i = 0; i < 3; ++i) {
    ResourceScope scope("test_registry_label");
    delete[] Escape(new char[512]);
  }
  bool found = false;
  for (const ScopeStats& stats : ScopeStatsSnapshot()) {
    if (stats.label == "test_registry_label") {
      found = true;
      EXPECT_EQ(stats.scopes, 3u);
      EXPECT_EQ(stats.allocations, 3u);
      EXPECT_GE(stats.bytes_allocated, 3 * 512u);
    }
  }
  EXPECT_TRUE(found);

  ResetScopeStats();
  EXPECT_TRUE(ScopeStatsSnapshot().empty());
}

TEST(ResourceTrackerTest, SnapshotIsSortedByBytesDescending) {
  ResetScopeStats();
  {
    ResourceScope small("test_small");
    delete[] Escape(new char[256]);
  }
  {
    ResourceScope big("test_big");
    delete[] Escape(new char[1 << 18]);
  }
  const std::vector<ScopeStats> stats = ScopeStatsSnapshot();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].label, "test_big");
  EXPECT_EQ(stats[1].label, "test_small");
  ResetScopeStats();
}

TEST(ResourceTrackerTest, RenderAlloczIsWellFormedJson) {
  ResetScopeStats();
  {
    ResourceScope scope("test_allocz");
    delete[] Escape(new char[333]);
  }
  const std::string json = RenderAllocz();
  EXPECT_NE(json.find("\"heap_live_bytes\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"allocations_total\""), std::string::npos);
  EXPECT_NE(json.find("\"scopes\""), std::string::npos);
  EXPECT_NE(json.find("\"test_allocz\""), std::string::npos);
  ResetScopeStats();
}

TEST(ResourceTrackerTest, HooksAreThreadSafeUnderContention) {
  // Hammer the allocator hooks from several threads; the ledger's
  // alloc/free counters must balance for what we did here.
  constexpr int kThreads = 8;
  constexpr int kRounds = 5000;
  const uint64_t allocs_before = TrackedAllocations();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      ResourceScope scope("test_contention");
      for (int i = 0; i < kRounds; ++i) {
        delete[] Escape(new char[64]);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GE(TrackedAllocations() - allocs_before,
            static_cast<uint64_t>(kThreads) * kRounds);
}

}  // namespace
}  // namespace rdfdb::obs
