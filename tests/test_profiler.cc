#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "query/match.h"
#include "rdf/rdf_store.h"

namespace rdfdb::obs {
namespace {

/// Spin until `deadline`, keeping the process CPU clock (and therefore
/// the SIGPROF timer) advancing.
void BurnCpuUntil(std::chrono::steady_clock::time_point deadline) {
  volatile uint64_t acc = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 4096; ++i) acc = acc + static_cast<uint64_t>(i);
  }
}

/// Every non-empty line must be "frame(;frame)* count" with a positive
/// count and no embedded spaces in the frame part.
void ExpectWellFormedCollapsed(const std::string& collapsed) {
  std::istringstream in(collapsed);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    const std::string stack = line.substr(0, space);
    const std::string count = line.substr(space + 1);
    ASSERT_FALSE(count.empty()) << line;
    for (char c : count) EXPECT_TRUE(std::isdigit(c)) << line;
    EXPECT_GT(std::stoull(count), 0u) << line;
    // Sanitization: frames never contain spaces (replaced with '_').
    EXPECT_EQ(stack.find(' '), std::string::npos) << line;
    // No empty frames (";;" would break flamegraph.pl).
    EXPECT_EQ(stack.find(";;"), std::string::npos) << line;
    EXPECT_NE(stack.front(), ';') << line;
    EXPECT_NE(stack.back(), ';') << line;
  }
  EXPECT_GT(lines, 0u) << "no stacks in collapsed output";
}

TEST(ProfilerTest, StartStopLifecycle) {
  EXPECT_FALSE(ProfilerRunning());
  ASSERT_TRUE(StartProfiler(100));
  EXPECT_TRUE(ProfilerRunning());
  EXPECT_EQ(ProfilerHz(), 100);
  // Double start is rejected, the original capture keeps running.
  EXPECT_FALSE(StartProfiler(50));
  EXPECT_EQ(ProfilerHz(), 100);
  StopProfiler();
  EXPECT_FALSE(ProfilerRunning());
  StopProfiler();  // idempotent
  EXPECT_FALSE(ProfilerRunning());
  ResetProfile();
}

TEST(ProfilerTest, CapturesSamplesProportionalToCpuBurned) {
  ResetProfile();
  ASSERT_TRUE(StartProfiler(250));
  BurnCpuUntil(std::chrono::steady_clock::now() +
               std::chrono::milliseconds(400));
  StopProfiler();
  // 250 Hz of process-CPU sampling over ~0.4 s of spinning: expect a
  // healthy number of samples even on a loaded CI machine. The timer
  // fires on CPU time, so a starved process just takes longer to exit
  // the burn loop — the bound stays safe.
  EXPECT_GE(ProfilerSampleCount(), 20u);
  const std::string collapsed = CollapsedProfile();
  ExpectWellFormedCollapsed(collapsed);
  ResetProfile();
  EXPECT_EQ(ProfilerSampleCount(), 0u);
  EXPECT_TRUE(CollapsedProfile().empty());
}

TEST(ProfilerTest, IdleProcessProducesNoSamples) {
  ResetProfile();
  ASSERT_TRUE(StartProfiler(100));
  // Sleeping burns (almost) no CPU, so the CPU-time timer barely
  // advances: allow a few stray samples from the runtime, not 100/s.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  StopProfiler();
  EXPECT_LE(ProfilerSampleCount(), 5u);
  ResetProfile();
}

TEST(ProfilerTest, ProfileForSecondsStartsAndStops) {
  ResetProfile();
  std::atomic<bool> stop{false};
  std::thread burner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      BurnCpuUntil(std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(10));
    }
  });
  const std::string collapsed = ProfileForSeconds(0.4);
  stop.store(true, std::memory_order_relaxed);
  burner.join();
  EXPECT_FALSE(ProfilerRunning());  // window mode stops the profiler
  ExpectWellFormedCollapsed(collapsed);
  ResetProfile();
}

TEST(ProfilerTest, AlwaysOnModeSurvivesAWindowCapture) {
  ResetProfile();
  ASSERT_TRUE(StartAlwaysOn());
  EXPECT_EQ(ProfilerHz(), kAlwaysOnHz);
  std::atomic<bool> stop{false};
  std::thread burner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      BurnCpuUntil(std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(10));
    }
  });
  (void)ProfileForSeconds(0.2);
  stop.store(true, std::memory_order_relaxed);
  burner.join();
  // The always-on capture is still armed after the window.
  EXPECT_TRUE(ProfilerRunning());
  EXPECT_EQ(ProfilerHz(), kAlwaysOnHz);
  StopProfiler();
  ResetProfile();
}

// The signal-safety stress: SIGPROF lands on threads that are busy
// inside the store's query path (allocating, taking locks, touching
// hash maps). Run under TSan/ASan in tools/run_tsan.sh and CI — any
// malloc-in-handler or data race on the rings surfaces here.
TEST(ProfilerTest, SignalSafeUnderConcurrentQueries) {
  rdf::RdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("p", "p_app", "triple").ok());
  for (int i = 0; i < 512; ++i) {
    ASSERT_TRUE(store
                    .InsertTriple("p", "<urn:s" + std::to_string(i % 64) + ">",
                                  "<urn:p" + std::to_string(i % 7) + ">",
                                  "\"v" + std::to_string(i) + "\"")
                    .ok());
  }

  ResetProfile();
  ASSERT_TRUE(StartProfiler(500));
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      query::MatchOptions options;
      options.limit = 128;
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = query::SdoRdfMatch(&store, nullptr, "(?s ?p ?o)",
                                         {"p"}, {}, {}, "", options);
        if (!result.ok()) return;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  StopProfiler();

  EXPECT_GT(ProfilerSampleCount(), 0u);
  ExpectWellFormedCollapsed(CollapsedProfile());
  ResetProfile();
}

}  // namespace
}  // namespace rdfdb::obs
