// Corrupt-input corpus: truncated, bit-flipped, and length-attacked
// snapshot/log/manifest files must produce Status errors — never a
// crash, unbounded allocation, or hang. Runs under ASan via
// tools/run_asan.sh.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/crc32c.h"
#include "rdf/redo_log.h"
#include "storage/database.h"
#include "storage/env.h"
#include "storage/snapshot.h"

namespace rdfdb {
namespace {

using rdf::CheckpointManifest;
using rdf::LoggedRdfStore;
using rdf::RdfStore;
using rdf::ReplayOptions;
using rdf::ReplayRedoLog;
using rdf::VerifyRedoLog;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Re-create the 24-byte snapshot footer for a (possibly tampered)
/// payload so envelope-valid structural attacks reach the parser.
std::string FooterFor(uint32_t table_count, const std::string& payload) {
  std::string footer;
  AppendU32(&footer, table_count);
  AppendU64(&footer, payload.size());
  AppendU32(&footer, Crc32c(payload));
  AppendU32(&footer, 1);           // footer version
  AppendU32(&footer, 0x52444246);  // "RDBF"
  return footer;
}

constexpr size_t kFooterSize = 24;

class CorruptRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-case directories: ctest runs each case as its own process,
    // possibly in parallel, and a shared path makes the cases race.
    const std::string case_name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    base_ = ::testing::TempDir() + "/rdfdb_corrupt_" + case_name + "_base";
    victim_ = ::testing::TempDir() + "/rdfdb_corrupt_" + case_name + "_victim";
    RemoveAll();

    // Build a real store: checkpoint (=> generation snapshot +
    // manifest) plus post-checkpoint log records.
    auto db = LoggedRdfStore::Open(base_, base_ + ".log");
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRdfModel("m", "mdata", "triple").ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*db)
                      ->InsertTriple("m", "ex:s" + std::to_string(i % 5),
                                     "ex:p" + std::to_string(i % 3),
                                     "ex:o" + std::to_string(i))
                      .ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE((*db)
                      ->InsertTriple("m", "ex:post", "ex:p",
                                     "ex:tail" + std::to_string(i))
                      .ok());
    }
    snapshot_bytes_ =
        ReadFile(LoggedRdfStore::GenerationFileName(base_, 1));
    manifest_bytes_ = ReadFile(LoggedRdfStore::ManifestPath(base_));
    log_bytes_ = ReadFile(base_ + ".log");
    ASSERT_GT(snapshot_bytes_.size(), kFooterSize);
    ASSERT_FALSE(manifest_bytes_.empty());
    ASSERT_FALSE(log_bytes_.empty());
  }

  void TearDown() override { RemoveAll(); }

  void RemoveAll() {
    auto rm = [](const std::string& p) { std::remove(p.c_str()); };
    rm(base_);
    rm(base_ + ".log");
    rm(LoggedRdfStore::ManifestPath(base_));
    for (uint64_t gen = 1; gen <= 4; ++gen) {
      rm(LoggedRdfStore::GenerationFileName(base_, gen));
    }
    rm(victim_);
  }

  std::string base_, victim_;
  std::string snapshot_bytes_, manifest_bytes_, log_bytes_;
};

TEST_F(CorruptRecoveryTest, TruncatedSnapshotRejected) {
  const size_t sizes[] = {0,
                          1,
                          kFooterSize - 1,
                          snapshot_bytes_.size() / 2,
                          snapshot_bytes_.size() - kFooterSize,
                          snapshot_bytes_.size() - 1};
  for (size_t size : sizes) {
    WriteFile(victim_, snapshot_bytes_.substr(0, size));
    storage::Database db("ORADB");
    Status status = storage::LoadSnapshotFromFile(victim_, &db);
    EXPECT_TRUE(status.IsCorruption())
        << "truncated to " << size << ": " << status.ToString();
    EXPECT_FALSE(storage::VerifySnapshotFile(victim_).ok());
  }
}

TEST_F(CorruptRecoveryTest, BitFlippedSnapshotRejected) {
  // Every byte of the file is covered by the payload CRC or by a
  // checked footer field, so every flip must be detected.
  const size_t step =
      std::max<size_t>(1, snapshot_bytes_.size() / 150);
  for (size_t i = 0; i < snapshot_bytes_.size(); i += step) {
    std::string bad = snapshot_bytes_;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    WriteFile(victim_, bad);
    storage::Database db("ORADB");
    Status status = storage::LoadSnapshotFromFile(victim_, &db);
    EXPECT_TRUE(status.IsCorruption())
        << "flip at byte " << i << " undetected: " << status.ToString();
  }
}

TEST_F(CorruptRecoveryTest, SnapshotLengthFieldAttacksFailFast) {
  // Envelope-valid payloads with hostile interior length/count fields:
  // the parser must reject them via its allocation bounds, not after
  // allocating gigabytes. Payload header: magic, version, table_count.
  auto attack = [&](const std::string& payload, uint32_t table_count) {
    WriteFile(victim_, payload + FooterFor(table_count, payload));
    storage::Database db("ORADB");
    Status status = storage::LoadSnapshotFromFile(victim_, &db);
    EXPECT_TRUE(status.IsCorruption()) << status.ToString();
  };

  {  // implausible table count
    std::string p;
    AppendU32(&p, 0x52444244);
    AppendU32(&p, 1);
    AppendU32(&p, 0xFFFFFFFFu);
    attack(p, 0xFFFFFFFFu);
  }
  {  // schema-name length far beyond the bytes present
    std::string p;
    AppendU32(&p, 0x52444244);
    AppendU32(&p, 1);
    AppendU32(&p, 1);            // one table
    AppendU32(&p, 0x7FFFFFF0u);  // name length: ~2 GB
    p += "x";
    attack(p, 1);
  }
  {  // implausible column count behind valid names
    std::string p;
    AppendU32(&p, 0x52444244);
    AppendU32(&p, 1);
    AppendU32(&p, 1);
    AppendU32(&p, 1);
    p += "S";  // schema name
    AppendU32(&p, 1);
    p += "T";                    // table name
    AppendU32(&p, 0xFFFFFFFFu);  // column count
    attack(p, 1);
  }
  {  // huge string cell length inside row data is capped by stream size
    std::string p;
    AppendU32(&p, 0x52444244);
    AppendU32(&p, 1);
    AppendU32(&p, 1);
    AppendU32(&p, 1);
    p += "S";
    AppendU32(&p, 1);
    p += "T";
    AppendU32(&p, 1);  // one column
    AppendU32(&p, 1);
    p += "C";          // column name
    AppendU32(&p, 3);  // ValueType::kString tag
    AppendU32(&p, 1);  // nullable
    AppendU32(&p, 1);  // one row
    AppendU32(&p, 3);  // cell tag: string
    AppendU32(&p, 0x60000000u);  // 1.5 GB cell
    attack(p, 1);
  }
}

TEST_F(CorruptRecoveryTest, SnapshotTrailingJunkRejected) {
  std::string payload =
      snapshot_bytes_.substr(0, snapshot_bytes_.size() - kFooterSize);
  std::string junk_payload = payload + "JUNK-AFTER-TABLES";
  // Footer is consistent with the junk-extended payload, so only the
  // parse-consumed-everything check can catch it.
  uint32_t table_count = 0;
  std::memcpy(&table_count, payload.data() + 8, sizeof(table_count));
  WriteFile(victim_, junk_payload + FooterFor(table_count, junk_payload));
  storage::Database db("ORADB");
  Status status = storage::LoadSnapshotFromFile(victim_, &db);
  EXPECT_TRUE(status.IsCorruption());
  EXPECT_NE(status.ToString().find("trailing junk"), std::string::npos)
      << status.ToString();
}

TEST_F(CorruptRecoveryTest, BitFlippedLogNeverCrashesSometimesTolerated) {
  // A flip in the *final* record is torn-tail-tolerated by design;
  // anywhere else replay must fail with Corruption (or skip a
  // stale-looking record). Whatever the flip, it must never crash,
  // hang, or return success with a record count above the original.
  const size_t original_records = 8u;  // post-checkpoint inserts
  const size_t step = std::max<size_t>(1, log_bytes_.size() / 120);
  size_t detected = 0;
  for (size_t i = 0; i < log_bytes_.size(); i += step) {
    std::string bad = log_bytes_;
    bad[i] = static_cast<char>(bad[i] ^ 0x08);
    WriteFile(victim_, bad);
    ReplayOptions opts;
    opts.truncate_torn_tail = false;
    auto stats = VerifyRedoLog(victim_, opts);
    if (!stats.ok()) {
      EXPECT_TRUE(stats.status().IsCorruption())
          << "flip at " << i << ": " << stats.status().ToString();
      ++detected;
    } else {
      EXPECT_LE(stats->records, original_records) << "flip at " << i;
    }
  }
  // The vast majority of flips hit CRC-covered record bodies mid-log.
  EXPECT_GT(detected, 0u);
}

TEST_F(CorruptRecoveryTest, MidLogTruncationIsATornTail) {
  // Cutting the log mid-record leaves a torn *final* record: replay
  // applies every complete record and drops the tail — by contract,
  // not a Corruption.
  size_t second_nl = log_bytes_.find('\n', log_bytes_.find('\n') + 1);
  ASSERT_NE(second_nl, std::string::npos);
  WriteFile(victim_, log_bytes_.substr(0, second_nl + 10));
  ReplayOptions opts;
  opts.truncate_torn_tail = false;
  auto stats = VerifyRedoLog(victim_, opts);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->torn_tail);
  EXPECT_EQ(stats->records, 2u);
  // VerifyRedoLog is read-only: the torn bytes must still be there.
  EXPECT_EQ(ReadFile(victim_).size(), second_nl + 10);
}

TEST_F(CorruptRecoveryTest, ManifestCorruptionRejected) {
  const std::string manifest_path = LoggedRdfStore::ManifestPath(base_);
  // Bit flips anywhere in the manifest are caught by its CRC line (or
  // by field validation for flips inside the crc line itself).
  for (size_t i = 0; i < manifest_bytes_.size(); ++i) {
    std::string bad = manifest_bytes_;
    bad[i] = static_cast<char>(bad[i] ^ 0x04);
    WriteFile(manifest_path, bad);
    auto read = rdf::ReadManifest(manifest_path);
    EXPECT_FALSE(read.ok()) << "flip at byte " << i;
    // A corrupt recovery root fails the whole open — it must not
    // silently fall back to an empty store.
    EXPECT_FALSE(LoggedRdfStore::Open(base_, base_ + ".log").ok())
        << "flip at byte " << i;
  }
  WriteFile(manifest_path, "not a manifest at all\n");
  EXPECT_TRUE(
      rdf::ReadManifest(manifest_path).status().IsCorruption());
  WriteFile(manifest_path, "");
  EXPECT_FALSE(rdf::ReadManifest(manifest_path).ok());
  // Restore and prove the corpus base is genuinely recoverable.
  WriteFile(manifest_path, manifest_bytes_);
  auto recovered = LoggedRdfStore::Open(base_, base_ + ".log");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->store().links().TotalTripleCount(), 28u);
  EXPECT_TRUE((*recovered)->store().CheckConsistency().ok());
}

TEST_F(CorruptRecoveryTest, SeqTamperingRejected) {
  // Renumber a mid-log record (keeping its CRC valid — CRC covers the
  // body, not the seq): the continuity check must catch it.
  size_t first_nl = log_bytes_.find('\n');
  size_t second_nl = log_bytes_.find('\n', first_nl + 1);
  ASSERT_NE(second_nl, std::string::npos);
  std::string line2 =
      log_bytes_.substr(first_nl + 1, second_nl - first_nl - 1);
  size_t tab = line2.find('\t');
  std::string tampered = log_bytes_.substr(0, first_nl + 1) + "99" +
                         line2.substr(tab) +
                         log_bytes_.substr(second_nl);
  WriteFile(victim_, tampered);
  auto stats = VerifyRedoLog(victim_);
  EXPECT_TRUE(stats.status().IsCorruption()) << stats.status().ToString();
  EXPECT_NE(stats.status().ToString().find("seq gap"), std::string::npos);
}

TEST_F(CorruptRecoveryTest, PristineFilesVerifyClean) {
  auto info = storage::VerifySnapshotFile(
      LoggedRdfStore::GenerationFileName(base_, 1));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_GT(info->table_count, 0u);
  auto log_stats = VerifyRedoLog(base_ + ".log");
  ASSERT_TRUE(log_stats.ok()) << log_stats.status().ToString();
  EXPECT_EQ(log_stats->records, 8u);  // post-checkpoint inserts
  EXPECT_FALSE(log_stats->torn_tail);
  auto manifest = rdf::ReadManifest(LoggedRdfStore::ManifestPath(base_));
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->generation, 1u);
}

}  // namespace
}  // namespace rdfdb
