// Integration tests: the paper's three experiments run end-to-end at
// small scale, checking *correctness parity* between the RDF object
// store and the Jena2 baseline (the benchmarks measure the timing).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/jena2_store.h"
#include "gen/uniprot_gen.h"
#include "gen/workload.h"
#include "ndm/analysis.h"
#include "rdf/app_table.h"
#include "rdf/rdf_store.h"
#include "rdf/vocab.h"

namespace rdfdb {
namespace {

using baseline::Jena2Store;
using gen::GenerateUniProt;
using gen::LoadUniProtIntoJena2;
using gen::LoadUniProtIntoOracle;
using gen::UniProtDataset;
using gen::UniProtOptions;
using rdf::ApplicationTable;
using rdf::RdfStore;
using rdf::SdoRdfTripleS;
using rdf::Term;

class UniProtIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    UniProtOptions options;
    options.target_triples = 4000;
    dataset_ = new UniProtDataset(GenerateUniProt(options));

    store_ = new RdfStore();
    auto load = LoadUniProtIntoOracle(store_, "uniprot", "uniprot4k",
                                      *dataset_);
    ASSERT_TRUE(load.ok()) << load.status().ToString();

    jena_db_ = new storage::Database("JENADB");
    jena_ = new Jena2Store(jena_db_);
    ASSERT_TRUE(LoadUniProtIntoJena2(jena_, "uniprot", *dataset_).ok());
  }

  static void TearDownTestSuite() {
    delete jena_;
    delete jena_db_;
    delete store_;
    delete dataset_;
    jena_ = nullptr;
    jena_db_ = nullptr;
    store_ = nullptr;
    dataset_ = nullptr;
  }

  static UniProtDataset* dataset_;
  static RdfStore* store_;
  static storage::Database* jena_db_;
  static Jena2Store* jena_;
};

UniProtDataset* UniProtIntegrationTest::dataset_ = nullptr;
RdfStore* UniProtIntegrationTest::store_ = nullptr;
storage::Database* UniProtIntegrationTest::jena_db_ = nullptr;
Jena2Store* UniProtIntegrationTest::jena_ = nullptr;

TEST_F(UniProtIntegrationTest, ExperimentIParityMemberVsDirectJoin) {
  // Experiment I (Fig 9): the member-function query and the direct
  // storage-table join return the same rows.
  auto table = ApplicationTable::Attach(store_, "UP", "uniprot4k");
  ASSERT_TRUE(table.ok());

  // Member-function path.
  std::set<std::string> via_member;
  for (const SdoRdfTripleS& triple :
       table->FindBySubject(gen::kProbeSubject)) {
    auto full = triple.GetTriple();
    ASSERT_TRUE(full.ok());
    via_member.insert(full->ToString());
  }

  // Direct join over rdf_value$ x3 |x| rdf_link$ (Fig 9's second query).
  std::set<std::string> via_join;
  auto subject_id =
      store_->values().Lookup(Term::Uri(gen::kProbeSubject));
  ASSERT_TRUE(subject_id.has_value());
  rdf::ModelId model = *store_->GetModelId("uniprot");
  for (const rdf::LinkRow& row :
       store_->links().Match(model, *subject_id, std::nullopt,
                             std::nullopt)) {
    std::string s = *store_->values().GetText(row.start_node_id);
    std::string p = *store_->values().GetText(row.p_value_id);
    std::string o = *store_->values().GetText(row.end_node_id);
    via_join.insert("(" + s + ", " + p + ", " + o + ")");
  }

  EXPECT_EQ(via_member, via_join);
  EXPECT_EQ(via_member.size(), 24u);  // Table 1's row count
}

TEST_F(UniProtIntegrationTest, ExperimentIIParityOracleVsJena2) {
  // Experiment II (Table 1): the same subject query on both systems
  // returns the same statements.
  auto table = ApplicationTable::Attach(store_, "UP", "uniprot4k");
  ASSERT_TRUE(table.ok());
  std::set<std::string> oracle_rows;
  for (const SdoRdfTripleS& triple :
       table->FindBySubject(gen::kProbeSubject)) {
    auto full = triple.GetTriple();
    ASSERT_TRUE(full.ok());
    oracle_rows.insert(full->subject + "|" + full->property + "|" +
                       full->object);
  }

  auto jena_rows = jena_->ListStatements(
      "uniprot", Term::Uri(gen::kProbeSubject), std::nullopt, std::nullopt);
  ASSERT_TRUE(jena_rows.ok());
  std::set<std::string> jena_set;
  for (const rdf::NTriple& t : *jena_rows) {
    jena_set.insert(t.subject.ToDisplayString() + "|" +
                    t.predicate.ToDisplayString() + "|" +
                    t.object.ToDisplayString());
  }
  EXPECT_EQ(oracle_rows, jena_set);
  EXPECT_EQ(oracle_rows.size(), 24u);
}

TEST_F(UniProtIntegrationTest, ExperimentIIIParityIsReified) {
  // Experiment III (Table 2, Fig 11): true and false probes agree on
  // both systems.
  auto oracle_true = store_->IsReified(
      "uniprot", gen::kProbeSubject, std::string(rdf::kRdfsSeeAlso),
      gen::kProbeReifiedTarget);
  ASSERT_TRUE(oracle_true.ok());
  EXPECT_TRUE(*oracle_true);
  auto oracle_false = store_->IsReified(
      "uniprot", gen::kProbeSubject, std::string(rdf::kRdfsSeeAlso),
      gen::kProbeUnreifiedTarget);
  ASSERT_TRUE(oracle_false.ok());
  EXPECT_FALSE(*oracle_false);

  EXPECT_TRUE(*jena_->IsReified("uniprot", dataset_->reified_probe));
  EXPECT_FALSE(*jena_->IsReified("uniprot", dataset_->unreified_probe));
}

TEST_F(UniProtIntegrationTest, AllReifiedStatementsVisibleOnBothSystems) {
  size_t checked = 0;
  for (size_t i = 0; i < dataset_->reified.size(); i += 13) {
    const rdf::NTriple& base = dataset_->reified[i].base;
    auto oracle = store_->IsReified("uniprot",
                                    base.subject.ToDisplayString(),
                                    base.predicate.ToDisplayString(),
                                    base.object.ToDisplayString());
    ASSERT_TRUE(oracle.ok());
    EXPECT_TRUE(*oracle) << i;
    EXPECT_TRUE(*jena_->IsReified("uniprot", base)) << i;
    ++checked;
  }
  EXPECT_GT(checked, 5u);
}

TEST_F(UniProtIntegrationTest, ReificationStorageRatio) {
  // §7.3: streamlined reification = 1 row per reified statement where
  // the quad scheme stores 4.
  rdf::ModelId model = *store_->GetModelId("uniprot");
  auto type_id =
      store_->values().Lookup(Term::Uri(std::string(rdf::kRdfType)));
  auto stmt_id =
      store_->values().Lookup(Term::Uri(std::string(rdf::kRdfStatement)));
  ASSERT_TRUE(type_id.has_value());
  ASSERT_TRUE(stmt_id.has_value());
  size_t streamlined_rows = 0;
  store_->links().ScanModel(model, [&](const rdf::LinkRow& row) {
    if (row.p_value_id == *type_id && row.end_node_id == *stmt_id) {
      ++streamlined_rows;
    }
    return true;
  });
  // One row per *distinct* reified statement.
  std::set<std::string> distinct;
  for (const auto& r : dataset_->reified) {
    distinct.insert(rdf::ToNTriplesLine(r.base));
  }
  EXPECT_EQ(streamlined_rows, distinct.size());
  // Naive quad storage would use 4x the rows.
  EXPECT_EQ(streamlined_rows * 4, distinct.size() * 4);
}

TEST_F(UniProtIntegrationTest, ValueDeduplicationHolds) {
  // "Nodes in the RDF network are uniquely stored": distinct values in
  // rdf_value$ are far fewer than 3 x triples.
  size_t triples = store_->links().TotalTripleCount();
  size_t values = store_->values().value_count();
  EXPECT_LT(values, triples * 2);
  EXPECT_GT(values, 100u);
}

TEST_F(UniProtIntegrationTest, NetworkAnalysisOverLoadedData) {
  // "RDF data ... analyzed as networks": the probe protein reaches its
  // cross-references in one hop, and the network is non-trivially
  // connected.
  auto probe_id = store_->values().Lookup(Term::Uri(gen::kProbeSubject));
  ASSERT_TRUE(probe_id.has_value());
  auto target_id =
      store_->values().Lookup(Term::Uri(gen::kProbeReifiedTarget));
  ASSERT_TRUE(target_id.has_value());
  ndm::PathResult path =
      ndm::ShortestPath(store_->network(), *probe_id, *target_id);
  ASSERT_TRUE(path.found);
  EXPECT_EQ(path.links.size(), 1u);

  auto within = ndm::WithinCost(store_->network(), *probe_id, 1.0);
  EXPECT_GE(within.size(), 24u);  // itself + its objects (some shared)
  EXPECT_GT(ndm::ConnectedComponentCount(store_->network()), 1u);
}

TEST_F(UniProtIntegrationTest, SnapshotRoundTripAtScale) {
  std::string path = ::testing::TempDir() + "/rdfdb_integration_snap.bin";
  ASSERT_TRUE(store_->Save(path).ok());
  auto reopened = RdfStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->links().TotalTripleCount(),
            store_->links().TotalTripleCount());
  EXPECT_EQ((*reopened)->values().value_count(),
            store_->values().value_count());
  auto still = (*reopened)->IsReified(
      "uniprot", gen::kProbeSubject, std::string(rdf::kRdfsSeeAlso),
      gen::kProbeReifiedTarget);
  ASSERT_TRUE(still.ok());
  EXPECT_TRUE(*still);
  std::remove(path.c_str());
}

TEST_F(UniProtIntegrationTest, AppTableRowsCoverDatasetPlusAssertions) {
  auto table = ApplicationTable::Attach(store_, "UP", "uniprot4k");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->row_count(),
            dataset_->triples.size() + dataset_->reified.size());
}

}  // namespace
}  // namespace rdfdb
