#include "rdf/bulk_load.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

namespace rdfdb::rdf {
namespace {

Term U(const std::string& uri) { return Term::Uri(uri); }

class BulkLoadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateRdfModel("m", "mdata", "triple").ok());
  }

  RdfStore store_;
};

TEST_F(BulkLoadTest, LoadsStatements) {
  std::vector<NTriple> statements = {
      {U("http://a"), U("http://p"), U("http://b")},
      {U("http://a"), U("http://p"), Term::PlainLiteral("v")},
      {Term::BlankNode("x"), U("http://q"), U("http://a")},
  };
  auto stats = BulkLoad(&store_, "m", statements);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->statements, 3u);
  EXPECT_EQ(stats->new_links, 3u);
  EXPECT_EQ(stats->reused_links, 0u);
  EXPECT_EQ(stats->app_rows, 0u);
  EXPECT_EQ(store_.links().TotalTripleCount(), 3u);
}

TEST_F(BulkLoadTest, DuplicatesReuseLinks) {
  std::vector<NTriple> statements = {
      {U("http://a"), U("http://p"), U("http://b")},
      {U("http://a"), U("http://p"), U("http://b")},
  };
  auto stats = BulkLoad(&store_, "m", statements);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->new_links, 1u);
  EXPECT_EQ(stats->reused_links, 1u);
  EXPECT_EQ(store_.links().TotalTripleCount(), 1u);
}

TEST_F(BulkLoadTest, PopulatesApplicationTable) {
  auto table = ApplicationTable::Create(&store_, "APP", "mdata");
  ASSERT_TRUE(table.ok());
  std::vector<NTriple> statements = {
      {U("http://a"), U("http://p"), U("http://b")},
      {U("http://c"), U("http://p"), U("http://d")},
  };
  auto stats = BulkLoad(&store_, "m", statements, &*table);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->app_rows, 2u);
  EXPECT_EQ(table->row_count(), 2u);
  // Row ids continue across loads.
  auto more = BulkLoad(&store_, "m",
                       {{U("http://e"), U("http://p"), U("http://f")}},
                       &*table);
  ASSERT_TRUE(more.ok());
  EXPECT_EQ(table->row_count(), 3u);
}

TEST_F(BulkLoadTest, UnknownModelFails) {
  EXPECT_TRUE(BulkLoad(&store_, "ghost", {}).status().IsNotFound());
}

TEST_F(BulkLoadTest, ExportRoundTrip) {
  std::vector<NTriple> statements = {
      {U("http://a"), U("http://p"), U("http://b")},
      {U("http://a"), U("http://p"),
       Term::TypedLiteral("5", "http://www.w3.org/2001/XMLSchema#int")},
      {U("http://a"), U("http://p"), Term::PlainLiteralLang("hei", "no")},
  };
  ASSERT_TRUE(BulkLoad(&store_, "m", statements).ok());
  auto exported = ExportModel(store_, "m");
  ASSERT_TRUE(exported.ok());
  ASSERT_EQ(exported->size(), statements.size());
  // Order is not guaranteed; compare as sets of serialized lines.
  auto lines = [](const std::vector<NTriple>& ts) {
    std::vector<std::string> out;
    for (const NTriple& t : ts) out.push_back(ToNTriplesLine(t));
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(lines(*exported), lines(statements));
}

TEST_F(BulkLoadTest, ExportBlankNodesUseInternalLabels) {
  ASSERT_TRUE(BulkLoad(&store_, "m",
                       {{Term::BlankNode("x"), U("http://p"),
                         U("http://o")}})
                  .ok());
  auto exported = ExportModel(store_, "m");
  ASSERT_TRUE(exported.ok());
  ASSERT_EQ(exported->size(), 1u);
  EXPECT_TRUE((*exported)[0].subject.is_blank());
  // Internal labels are model-qualified, so reloading into another model
  // cannot capture the original model's nodes.
  EXPECT_NE((*exported)[0].subject.lexical(), "x");
}

TEST_F(BulkLoadTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/rdfdb_bulk.nt";
  std::vector<NTriple> statements = {
      {U("http://a"), U("http://p"), U("http://b")},
      {U("http://c"), U("http://q"), Term::PlainLiteral("text value")},
  };
  ASSERT_TRUE(WriteNTriplesFile(path, statements).ok());
  auto stats = BulkLoadFile(&store_, "m", path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->new_links, 2u);

  std::string out_path = ::testing::TempDir() + "/rdfdb_bulk_out.nt";
  ASSERT_TRUE(ExportModelToFile(store_, "m", out_path).ok());
  auto reparsed = ParseNTriplesFile(out_path);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->size(), 2u);
  std::remove(path.c_str());
  std::remove(out_path.c_str());
}

TEST_F(BulkLoadTest, ExportUnknownModelFails) {
  EXPECT_TRUE(ExportModel(store_, "ghost").status().IsNotFound());
}

// ---- Pipelined-loader identity to the sequential loader ---------------

/// Render every central-schema table (plus the id sequences) into one
/// canonical string, so two stores can be compared for bit-identical
/// state: same VALUE_ID / LINK_ID assignment, same COST, CONTEXT,
/// REIF_LINK, same rdf_node$ and blank-node mapping rows.
std::string DumpStoreState(RdfStore* store) {
  std::string out;
  for (const char* name :
       {"RDF_VALUE$", "RDF_BLANK_NODE$", "RDF_LINK$", "RDF_NODE$"}) {
    const storage::Table* table = store->database().GetTable("MDSYS", name);
    out += std::string(name) + "\n";
    if (table == nullptr) continue;
    table->Scan([&](storage::RowId rid, const storage::Row& row) {
      out += std::to_string(rid);
      for (const storage::Value& v : row) {
        out += "|" + v.ToString();
      }
      out += "\n";
      return true;
    });
  }
  for (const char* seq : {"RDF_VALUE_SEQ", "RDF_LINK_SEQ"}) {
    storage::Sequence* s = store->database().GetSequence("MDSYS", seq);
    out += std::string(seq) + "=" +
           (s == nullptr ? "-" : std::to_string(s->Peek())) + "\n";
  }
  return out;
}

/// A workload that exercises every identity-sensitive path: duplicate
/// statements (COST), duplicates spanning chunk boundaries, typed
/// literals whose canonical form differs from the lexical form,
/// language-tagged literals, and blank nodes.
std::vector<NTriple> MixedStatements(size_t n) {
  std::vector<NTriple> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string k = std::to_string(i % 37);
    switch (i % 5) {
      case 0:
        out.push_back({U("http://s" + k), U("http://p"), U("http://o" + k)});
        break;
      case 1:  // "07" canonicalizes to "7" — exercises canon interning
        out.push_back(
            {U("http://s" + k), U("http://age"),
             Term::TypedLiteral("0" + k,
                                "http://www.w3.org/2001/XMLSchema#int")});
        break;
      case 2:
        out.push_back({Term::BlankNode("b" + k), U("http://q"),
                       Term::PlainLiteralLang("v" + k, "en")});
        break;
      case 3:  // repeats exactly (i % 37 cycles) — duplicate statements
        out.push_back({U("http://dup"), U("http://p"), U("http://dup-o")});
        break;
      default:
        out.push_back({U("http://s" + k), U("http://r"),
                       Term::PlainLiteral("text " + k)});
        break;
    }
  }
  return out;
}

TEST(BulkLoadIdentityTest, PipelinedMatchesSequentialBitForBit) {
  const std::vector<NTriple> statements = MixedStatements(500);

  RdfStore reference;
  ASSERT_TRUE(reference.CreateRdfModel("m", "mdata", "triple").ok());
  auto ref_table = ApplicationTable::Create(&reference, "APP", "mdata");
  ASSERT_TRUE(ref_table.ok());
  auto ref_stats = BulkLoadSequential(&reference, "m", statements,
                                      &*ref_table);
  ASSERT_TRUE(ref_stats.ok());
  const std::string ref_state = DumpStoreState(&reference);

  for (unsigned threads : {1u, 2u, 8u}) {
    RdfStore store;
    ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
    auto table = ApplicationTable::Create(&store, "APP", "mdata");
    ASSERT_TRUE(table.ok());
    BulkLoadOptions options;
    options.threads = threads;
    options.batch_size = 64;  // force many chunks
    auto stats = BulkLoad(&store, "m", statements, &*table, options);
    ASSERT_TRUE(stats.ok()) << "threads=" << threads;
    EXPECT_EQ(stats->statements, ref_stats->statements);
    EXPECT_EQ(stats->new_links, ref_stats->new_links);
    EXPECT_EQ(stats->reused_links, ref_stats->reused_links);
    EXPECT_EQ(stats->app_rows, ref_stats->app_rows);
    EXPECT_EQ(table->row_count(), ref_table->row_count());
    EXPECT_EQ(DumpStoreState(&store), ref_state) << "threads=" << threads;
  }
}

TEST(BulkLoadIdentityTest, FileLoadMatchesSequentialBitForBit) {
  const std::vector<NTriple> statements = MixedStatements(300);
  std::string path = ::testing::TempDir() + "/rdfdb_identity.nt";
  ASSERT_TRUE(WriteNTriplesFile(path, statements).ok());

  RdfStore reference;
  ASSERT_TRUE(reference.CreateRdfModel("m", "mdata", "triple").ok());
  ASSERT_TRUE(BulkLoadSequential(&reference, "m", statements).ok());
  const std::string ref_state = DumpStoreState(&reference);

  for (unsigned threads : {1u, 2u, 8u}) {
    RdfStore store;
    ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
    BulkLoadOptions options;
    options.threads = threads;
    options.batch_size = 16;
    auto stats = BulkLoadFile(&store, "m", path, nullptr, options);
    ASSERT_TRUE(stats.ok()) << "threads=" << threads;
    EXPECT_EQ(DumpStoreState(&store), ref_state) << "threads=" << threads;
  }
  std::remove(path.c_str());
}

TEST_F(BulkLoadTest, DuplicateCostAccumulatesAcrossChunkBoundaries) {
  // One triple repeated 50 times with 8-statement chunks: every chunk
  // after the first sees it as pre-existing, within-chunk repeats fold
  // into the group count.
  std::vector<NTriple> statements(
      50, NTriple{U("http://a"), U("http://p"), U("http://b")});
  BulkLoadOptions options;
  options.threads = 2;
  options.batch_size = 8;
  auto stats = BulkLoad(&store_, "m", statements, nullptr, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->new_links, 1u);
  EXPECT_EQ(stats->reused_links, 49u);
  ASSERT_EQ(store_.links().TotalTripleCount(), 1u);
  auto model_id = store_.GetModelId("m");
  ASSERT_TRUE(model_id.ok());
  store_.links().ScanModel(*model_id, [&](const LinkRow& row) {
    EXPECT_EQ(row.cost, 50);
    return true;
  });
}

TEST_F(BulkLoadTest, ImpliedRowUpgradesToDirectUnderBulkLoad) {
  auto model_id = store_.GetModelId("m");
  ASSERT_TRUE(model_id.ok());
  ASSERT_TRUE(store_
                  .InsertParsedTriple(*model_id, U("http://a"), U("http://p"),
                                      U("http://b"), TripleContext::kImplied)
                  .ok());
  BulkLoadOptions options;
  options.threads = 2;
  options.batch_size = 4;
  ASSERT_TRUE(BulkLoad(&store_, "m",
                       {{U("http://a"), U("http://p"), U("http://b")}},
                       nullptr, options)
                  .ok());
  store_.links().ScanModel(*model_id, [&](const LinkRow& row) {
    EXPECT_EQ(row.context, TripleContext::kDirect);
    EXPECT_EQ(row.cost, 2);
    return true;
  });
}

TEST(BulkLoadIdentityTest, BlankNodesStayModelScoped) {
  RdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m1", "d1", "t").ok());
  ASSERT_TRUE(store.CreateRdfModel("m2", "d2", "t").ok());
  std::vector<NTriple> statements = {
      {Term::BlankNode("x"), U("http://p"), U("http://o")},
  };
  BulkLoadOptions options;
  options.threads = 2;
  ASSERT_TRUE(BulkLoad(&store, "m1", statements, nullptr, options).ok());
  ASSERT_TRUE(BulkLoad(&store, "m2", statements, nullptr, options).ok());
  auto id1 = store.GetModelId("m1");
  auto id2 = store.GetModelId("m2");
  ASSERT_TRUE(id1.ok() && id2.ok());
  auto blank1 = store.values().LookupBlank(*id1, "x");
  auto blank2 = store.values().LookupBlank(*id2, "x");
  ASSERT_TRUE(blank1.has_value());
  ASSERT_TRUE(blank2.has_value());
  EXPECT_NE(*blank1, *blank2)
      << "same label in different models must not unify";
}

TEST_F(BulkLoadTest, MalformedLineInLaterChunkReportsAbsoluteLineNumber) {
  std::string path = ::testing::TempDir() + "/rdfdb_malformed.nt";
  {
    std::ofstream out(path, std::ios::trunc);
    for (int i = 1; i <= 30; ++i) {
      if (i == 23) {
        out << "<http://bad> <http://p> missing-terminator\n";
      } else {
        out << "<http://s" << i << "> <http://p> <http://o" << i << "> .\n";
      }
    }
  }
  BulkLoadOptions options;
  options.threads = 2;
  options.batch_size = 4;  // the bad line is deep inside a later chunk
  auto stats = BulkLoadFile(&store_, "m", path, nullptr, options);
  ASSERT_FALSE(stats.ok());
  EXPECT_NE(stats.status().message().find("line 23"), std::string::npos)
      << stats.status().message();
  std::remove(path.c_str());
}

TEST_F(BulkLoadTest, PipelinedRejectsLiteralSubjects) {
  std::vector<NTriple> statements = {
      {U("http://a"), U("http://p"), U("http://b")},
      {Term::PlainLiteral("nope"), U("http://p"), U("http://b")},
  };
  BulkLoadOptions options;
  options.threads = 2;
  options.batch_size = 1;
  auto stats = BulkLoad(&store_, "m", statements, nullptr, options);
  EXPECT_TRUE(stats.status().IsInvalidArgument());
}

}  // namespace
}  // namespace rdfdb::rdf
