#include "rdf/bulk_load.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

namespace rdfdb::rdf {
namespace {

Term U(const std::string& uri) { return Term::Uri(uri); }

class BulkLoadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateRdfModel("m", "mdata", "triple").ok());
  }

  RdfStore store_;
};

TEST_F(BulkLoadTest, LoadsStatements) {
  std::vector<NTriple> statements = {
      {U("http://a"), U("http://p"), U("http://b")},
      {U("http://a"), U("http://p"), Term::PlainLiteral("v")},
      {Term::BlankNode("x"), U("http://q"), U("http://a")},
  };
  auto stats = BulkLoad(&store_, "m", statements);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->statements, 3u);
  EXPECT_EQ(stats->new_links, 3u);
  EXPECT_EQ(stats->reused_links, 0u);
  EXPECT_EQ(stats->app_rows, 0u);
  EXPECT_EQ(store_.links().TotalTripleCount(), 3u);
}

TEST_F(BulkLoadTest, DuplicatesReuseLinks) {
  std::vector<NTriple> statements = {
      {U("http://a"), U("http://p"), U("http://b")},
      {U("http://a"), U("http://p"), U("http://b")},
  };
  auto stats = BulkLoad(&store_, "m", statements);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->new_links, 1u);
  EXPECT_EQ(stats->reused_links, 1u);
  EXPECT_EQ(store_.links().TotalTripleCount(), 1u);
}

TEST_F(BulkLoadTest, PopulatesApplicationTable) {
  auto table = ApplicationTable::Create(&store_, "APP", "mdata");
  ASSERT_TRUE(table.ok());
  std::vector<NTriple> statements = {
      {U("http://a"), U("http://p"), U("http://b")},
      {U("http://c"), U("http://p"), U("http://d")},
  };
  auto stats = BulkLoad(&store_, "m", statements, &*table);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->app_rows, 2u);
  EXPECT_EQ(table->row_count(), 2u);
  // Row ids continue across loads.
  auto more = BulkLoad(&store_, "m",
                       {{U("http://e"), U("http://p"), U("http://f")}},
                       &*table);
  ASSERT_TRUE(more.ok());
  EXPECT_EQ(table->row_count(), 3u);
}

TEST_F(BulkLoadTest, UnknownModelFails) {
  EXPECT_TRUE(BulkLoad(&store_, "ghost", {}).status().IsNotFound());
}

TEST_F(BulkLoadTest, ExportRoundTrip) {
  std::vector<NTriple> statements = {
      {U("http://a"), U("http://p"), U("http://b")},
      {U("http://a"), U("http://p"),
       Term::TypedLiteral("5", "http://www.w3.org/2001/XMLSchema#int")},
      {U("http://a"), U("http://p"), Term::PlainLiteralLang("hei", "no")},
  };
  ASSERT_TRUE(BulkLoad(&store_, "m", statements).ok());
  auto exported = ExportModel(store_, "m");
  ASSERT_TRUE(exported.ok());
  ASSERT_EQ(exported->size(), statements.size());
  // Order is not guaranteed; compare as sets of serialized lines.
  auto lines = [](const std::vector<NTriple>& ts) {
    std::vector<std::string> out;
    for (const NTriple& t : ts) out.push_back(ToNTriplesLine(t));
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(lines(*exported), lines(statements));
}

TEST_F(BulkLoadTest, ExportBlankNodesUseInternalLabels) {
  ASSERT_TRUE(BulkLoad(&store_, "m",
                       {{Term::BlankNode("x"), U("http://p"),
                         U("http://o")}})
                  .ok());
  auto exported = ExportModel(store_, "m");
  ASSERT_TRUE(exported.ok());
  ASSERT_EQ(exported->size(), 1u);
  EXPECT_TRUE((*exported)[0].subject.is_blank());
  // Internal labels are model-qualified, so reloading into another model
  // cannot capture the original model's nodes.
  EXPECT_NE((*exported)[0].subject.lexical(), "x");
}

TEST_F(BulkLoadTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/rdfdb_bulk.nt";
  std::vector<NTriple> statements = {
      {U("http://a"), U("http://p"), U("http://b")},
      {U("http://c"), U("http://q"), Term::PlainLiteral("text value")},
  };
  ASSERT_TRUE(WriteNTriplesFile(path, statements).ok());
  auto stats = BulkLoadFile(&store_, "m", path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->new_links, 2u);

  std::string out_path = ::testing::TempDir() + "/rdfdb_bulk_out.nt";
  ASSERT_TRUE(ExportModelToFile(store_, "m", out_path).ok());
  auto reparsed = ParseNTriplesFile(out_path);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->size(), 2u);
  std::remove(path.c_str());
  std::remove(out_path.c_str());
}

TEST_F(BulkLoadTest, ExportUnknownModelFails) {
  EXPECT_TRUE(ExportModel(store_, "ghost").status().IsNotFound());
}

}  // namespace
}  // namespace rdfdb::rdf
