#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "obs/metrics_snapshot.h"
#include "obs/store_metrics.h"
#include "rdf/bulk_load.h"
#include "rdf/concurrent_store.h"
#include "rdf/rdf_store.h"
#include "rdf/redo_log.h"

namespace rdfdb::obs {
namespace {

TEST(CounterTest, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAddAndSetMax) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.SetMax(5);  // below current: no change
  EXPECT_EQ(g.Value(), 7);
  g.SetMax(12);
  EXPECT_EQ(g.Value(), 12);
}

TEST(HistogramTest, BucketAssignmentIsByUpperBound) {
  Histogram h({10, 100, 1000});
  h.Observe(5);
  h.Observe(10);  // boundary value lands in its own bucket (le semantics)
  h.Observe(50);
  h.Observe(5000);  // past the last bound: +Inf bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5065u);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 0u);
  EXPECT_EQ(h.BucketCount(3), 1u);  // +Inf
}

TEST(HistogramTest, DefaultLatencyBucketsCoverMicrosToSeconds) {
  std::vector<uint64_t> bounds = DefaultLatencyBucketsNs();
  ASSERT_EQ(bounds.size(), 11u);
  EXPECT_EQ(bounds.front(), 1000u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_EQ(bounds[i], bounds[i - 1] * 4);
  }
  EXPECT_GT(bounds.back(), 1000000000u);  // past one second
}

TEST(QuantileTest, InterpolatesWithinTheLandingBucket) {
  // Disjoint counts, one more slot than bounds (+Inf last).
  EXPECT_DOUBLE_EQ(QuantileFromBuckets({100}, {4, 0}, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(QuantileFromBuckets({100}, {4, 0}, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(QuantileFromBuckets({10, 20}, {0, 10, 0}, 0.5), 15.0);
  // Spanning buckets: 2 in [0,10], 2 in (10,100].
  EXPECT_DOUBLE_EQ(QuantileFromBuckets({10, 100}, {2, 2, 0}, 0.25), 5.0);
  EXPECT_DOUBLE_EQ(QuantileFromBuckets({10, 100}, {2, 2, 0}, 0.75), 55.0);
}

TEST(QuantileTest, InfBucketClampsToLastFiniteBound) {
  EXPECT_DOUBLE_EQ(QuantileFromBuckets({10}, {0, 5}, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(QuantileFromBuckets({10, 40}, {1, 0, 9}, 0.99), 40.0);
}

TEST(QuantileTest, EmptyHistogramIsZero) {
  EXPECT_DOUBLE_EQ(QuantileFromBuckets({10, 100}, {0, 0, 0}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(QuantileFromBuckets({}, {0}, 0.5), 0.0);
}

TEST(QuantileTest, LiveInstrumentConvenience) {
  Histogram h({10, 100});
  h.Observe(3);
  h.Observe(7);
  h.Observe(40);
  h.Observe(60);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.25), 5.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.75), 55.0);
}

TEST(RegistryTest, RegistrationIsIdempotentPerKind) {
  MetricsRegistry registry;
  Counter* a = registry.RegisterCounter("rdfdb_test_total", "help");
  Counter* b = registry.RegisterCounter("rdfdb_test_total", "other help");
  EXPECT_EQ(a, b);
  // Same name as another kind: rejected.
  EXPECT_EQ(registry.RegisterGauge("rdfdb_test_total", "help"), nullptr);
  EXPECT_EQ(registry.FindCounter("rdfdb_test_total"), a);
  EXPECT_EQ(registry.FindGauge("rdfdb_test_total"), nullptr);
  EXPECT_EQ(registry.FindCounter("rdfdb_absent_total"), nullptr);
}

TEST(RegistryTest, PrometheusRendering) {
  MetricsRegistry registry;
  Counter* c = registry.RegisterCounter("rdfdb_events_total", "Events seen");
  Gauge* g = registry.RegisterGauge("rdfdb_depth", "Queue depth");
  Histogram* h =
      registry.RegisterHistogram("rdfdb_latency_ns", "Latency", {10, 100});
  c->Inc(3);
  g->Set(7);
  h->Observe(5);
  h->Observe(50);
  h->Observe(500);

  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP rdfdb_events_total Events seen"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rdfdb_events_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("rdfdb_events_total 3"), std::string::npos);
  EXPECT_NE(text.find("rdfdb_depth 7"), std::string::npos);
  // Buckets are cumulative in the exposition format.
  EXPECT_NE(text.find("rdfdb_latency_ns_bucket{le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rdfdb_latency_ns_bucket{le=\"100\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("rdfdb_latency_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("rdfdb_latency_ns_sum 555"), std::string::npos);
  EXPECT_NE(text.find("rdfdb_latency_ns_count 3"), std::string::npos);
}

TEST(RegistryTest, JsonRendering) {
  MetricsRegistry registry;
  registry.RegisterCounter("rdfdb_events_total", "Events")->Inc(2);
  registry.RegisterHistogram("rdfdb_latency_ns", "Latency", {10})
      ->Observe(4);
  std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"rdfdb_events_total\": {\"type\": \"counter\", "
                      "\"value\": 2}"),
            std::string::npos);
  EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("{\"le\": \"+Inf\", \"count\": 1}"),
            std::string::npos);
}

TEST(RegistryTest, DumpsCarryQuantileEstimates) {
  MetricsRegistry registry;
  Histogram* h =
      registry.RegisterHistogram("rdfdb_latency_ns", "Latency", {10, 100});
  for (int i = 0; i < 4; ++i) h->Observe(5);
  std::string text = registry.RenderPrometheus();
  // Summary-style quantile lines derived from the buckets.
  EXPECT_NE(text.find("rdfdb_latency_ns{quantile=\"0.5\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rdfdb_latency_ns{quantile=\"0.99\"}"),
            std::string::npos);
  std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"p50\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(SnapshotTest, DeltasAndIntervalQuantilesAreExact) {
  MetricsRegistry registry;
  Counter* c = registry.RegisterCounter("rdfdb_ticks_total", "t");
  Gauge* g = registry.RegisterGauge("rdfdb_depth", "d");
  Histogram* h = registry.RegisterHistogram("rdfdb_lat_ns", "l", {10, 20});
  c->Inc(5);
  h->Observe(5);  // pre-interval observation must not leak into deltas

  MetricsSnapshot prev = TakeMetricsSnapshot(registry);
  EXPECT_EQ(prev.Counter("rdfdb_ticks_total"), 5);
  EXPECT_EQ(prev.Counter("rdfdb_absent"), 0);

  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  c->Inc(7);
  g->Set(3);
  h->Observe(15);
  MetricsSnapshot cur = TakeMetricsSnapshot(registry);

  EXPECT_EQ(cur.Counter("rdfdb_ticks_total") -
                prev.Counter("rdfdb_ticks_total"),
            7);
  EXPECT_EQ(cur.Gauge("rdfdb_depth"), 3);
  EXPECT_GT(CounterRate(prev, cur, "rdfdb_ticks_total"), 0.0);
  EXPECT_DOUBLE_EQ(CounterRate(prev, cur, "rdfdb_absent"), 0.0);
  // Only the in-interval observation (15, in (10,20]) counts.
  EXPECT_EQ(IntervalCount(prev, cur, "rdfdb_lat_ns"), 1u);
  EXPECT_DOUBLE_EQ(IntervalQuantile(prev, cur, "rdfdb_lat_ns", 0.5), 15.0);

  std::string text = RenderIntervalText(prev, cur);
  EXPECT_NE(text.find("rdfdb_ticks_total"), std::string::npos) << text;
  EXPECT_NE(text.find("+7"), std::string::npos);
  EXPECT_NE(text.find("rdfdb_lat_ns"), std::string::npos);
  EXPECT_NE(text.find("n=1"), std::string::npos);
  // A counter that did not move is not reported.
  registry.RegisterCounter("rdfdb_idle_total", "i");
  EXPECT_EQ(RenderIntervalText(prev, cur).find("rdfdb_idle_total"),
            std::string::npos);
}

TEST(SnapshotTest, VarzJsonCarriesRatesAndExtras) {
  MetricsRegistry registry;
  Counter* c = registry.RegisterCounter("rdfdb_ticks_total", "t");
  MetricsSnapshot prev = TakeMetricsSnapshot(registry);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  c->Inc(2);
  MetricsSnapshot cur = TakeMetricsSnapshot(registry);
  std::string json = RenderVarzJson(registry, prev, cur, 1.5,
                                    ",\"custom\": 9");
  EXPECT_NE(json.find("\"uptime_seconds\": 1.5"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"rates\""), std::string::npos);
  EXPECT_NE(json.find("\"rdfdb_ticks_total\""), std::string::npos);
  EXPECT_NE(json.find("\"custom\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
}

// Concurrent hammering: totals must be exact (no lost updates). This is
// the test tools/run_tsan.sh runs under ThreadSanitizer.
TEST(ConcurrencyTest, CountersHistogramsAndGaugesAreExactUnderContention) {
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("rdfdb_hammer_total", "h");
  Gauge* gauge = registry.RegisterGauge("rdfdb_hammer_peak", "h");
  Histogram* hist = registry.RegisterHistogram("rdfdb_hammer_ns", "h",
                                               DefaultLatencyBucketsNs());

  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Inc();
        hist->Observe(i);
        gauge->SetMax(static_cast<int64_t>(t * kPerThread + i));
        if (i % 1000 == 0) {
          // Dump concurrently with the writers: must not crash or tear.
          (void)registry.RenderPrometheus();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(hist->count(), kThreads * kPerThread);
  // Sum of 0..kPerThread-1 per thread.
  EXPECT_EQ(hist->sum(), kThreads * (kPerThread * (kPerThread - 1) / 2));
  EXPECT_EQ(gauge->Value(),
            static_cast<int64_t>((kThreads - 1) * kPerThread + kPerThread -
                                 1));
  // Disjoint bucket counts must add back up to the total count.
  const Histogram* found = registry.FindHistogram("rdfdb_hammer_ns");
  ASSERT_NE(found, nullptr);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i <= found->bounds().size(); ++i) {
    bucket_total += found->BucketCount(i);
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(StoreMetricsTest, RdfStoreWiresAllHotPaths) {
  rdf::RdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  StoreMetrics* m = store.metrics();
  ASSERT_NE(m, nullptr);

  auto first = store.InsertTriple("m", "urn:s", "urn:p", "urn:o");
  ASSERT_TRUE(first.ok());
  auto dup = store.InsertTriple("m", "urn:s", "urn:p", "urn:o");
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(m->link_inserts->Value(), 1u);
  EXPECT_EQ(m->link_duplicates->Value(), 1u);
  EXPECT_GT(m->value_inserts->Value(), 0u);
  EXPECT_GT(m->value_lookups->Value(), 0u);

  auto reified = store.IsReified("m", "urn:s", "urn:p", "urn:o");
  ASSERT_TRUE(reified.ok());
  EXPECT_FALSE(*reified);
  EXPECT_GE(m->reif_checks->Value(), 1u);

  // The model-stats fast path must not alter counters' meaning: the
  // triple count comes from the partition counter either way.
  auto full = store.GetModelStats("m");
  ASSERT_TRUE(full.ok());
  rdf::RdfStore::ModelStatsOptions cheap;
  cheap.distinct_counts = false;
  auto counts_only = store.GetModelStats("m", cheap);
  ASSERT_TRUE(counts_only.ok());
  EXPECT_EQ(full->triples, counts_only->triples);
  EXPECT_EQ(counts_only->distinct_subjects, 0u);

  std::string text = store.metrics_registry().RenderPrometheus();
  EXPECT_NE(text.find("rdfdb_link_inserts_total 1"), std::string::npos);
  EXPECT_NE(text.find("rdfdb_link_duplicates_total 1"), std::string::npos);
}

TEST(StoreMetricsTest, ConcurrentStoreExposesDumps) {
  rdf::ConcurrentRdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  ASSERT_TRUE(store.InsertTriple("m", "urn:s", "urn:p", "urn:o").ok());
  EXPECT_NE(store.MetricsText().find("rdfdb_link_inserts_total 1"),
            std::string::npos);
  EXPECT_NE(store.MetricsJson().find("\"rdfdb_link_inserts_total\""),
            std::string::npos);
}

TEST(StatsToStringTest, BulkLoadStatsRenders) {
  rdf::BulkLoadStats stats;
  stats.statements = 1000;
  stats.new_links = 990;
  stats.chunks = 2;
  stats.total_ns = 5000000;
  std::string text = stats.ToString();
  EXPECT_NE(text.find("bulk load:"), std::string::npos);
  EXPECT_NE(text.find("1000"), std::string::npos);
}

TEST(StatsToStringTest, ReplayStatsRenders) {
  rdf::ReplayStats stats;
  stats.records = 12;
  stats.inserts = 10;
  stats.replay_ns = 3000000;
  std::string text = stats.ToString();
  EXPECT_NE(text.find("replay:"), std::string::npos);
  EXPECT_NE(text.find("12"), std::string::npos);
}

}  // namespace
}  // namespace rdfdb::obs
