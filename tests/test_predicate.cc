#include "storage/predicate.h"

#include <gtest/gtest.h>

namespace rdfdb::storage {
namespace {

Row MakeRow(int64_t id, const std::string& name) {
  return Row{Value::Int64(id), Value::String(name)};
}

TEST(PredicateTest, Equality) {
  PredicatePtr p = Eq(0, Value::Int64(5));
  EXPECT_TRUE(p->Evaluate(MakeRow(5, "a")));
  EXPECT_FALSE(p->Evaluate(MakeRow(6, "a")));
}

TEST(PredicateTest, AllComparisonOps) {
  Row row = MakeRow(5, "m");
  EXPECT_TRUE(Compare(0, CompareOp::kNe, Value::Int64(4))->Evaluate(row));
  EXPECT_TRUE(Compare(0, CompareOp::kLt, Value::Int64(6))->Evaluate(row));
  EXPECT_TRUE(Compare(0, CompareOp::kLe, Value::Int64(5))->Evaluate(row));
  EXPECT_TRUE(Compare(0, CompareOp::kGt, Value::Int64(4))->Evaluate(row));
  EXPECT_TRUE(Compare(0, CompareOp::kGe, Value::Int64(5))->Evaluate(row));
  EXPECT_FALSE(Compare(0, CompareOp::kLt, Value::Int64(5))->Evaluate(row));
  EXPECT_FALSE(Compare(0, CompareOp::kGt, Value::Int64(5))->Evaluate(row));
}

TEST(PredicateTest, StringComparison) {
  PredicatePtr p = Compare(1, CompareOp::kGt, Value::String("a"));
  EXPECT_TRUE(p->Evaluate(MakeRow(0, "b")));
  EXPECT_FALSE(p->Evaluate(MakeRow(0, "a")));
}

TEST(PredicateTest, NullsMakeComparisonsFalse) {
  Row row{Value::Null(), Value::String("x")};
  EXPECT_FALSE(Eq(0, Value::Int64(0))->Evaluate(row));
  EXPECT_FALSE(Compare(0, CompareOp::kNe, Value::Int64(0))->Evaluate(row));
}

TEST(PredicateTest, IsNull) {
  Row row{Value::Null(), Value::String("x")};
  EXPECT_TRUE(IsNull(0)->Evaluate(row));
  EXPECT_FALSE(IsNull(1)->Evaluate(row));
}

TEST(PredicateTest, OutOfRangeColumnIsFalse) {
  Row row = MakeRow(1, "a");
  EXPECT_FALSE(Eq(9, Value::Int64(1))->Evaluate(row));
}

TEST(PredicateTest, AndOrNot) {
  Row row = MakeRow(5, "m");
  PredicatePtr five = Eq(0, Value::Int64(5));
  PredicatePtr m = Eq(1, Value::String("m"));
  PredicatePtr other = Eq(1, Value::String("z"));
  EXPECT_TRUE(And(five, m)->Evaluate(row));
  EXPECT_FALSE(And(five, other)->Evaluate(row));
  EXPECT_TRUE(Or(other, m)->Evaluate(row));
  EXPECT_FALSE(Or(other, Not(five))->Evaluate(row));
  EXPECT_TRUE(Not(other)->Evaluate(row));
}

TEST(PredicateTest, EmptyAndIsTrueEmptyOrIsFalse) {
  Row row = MakeRow(1, "a");
  EXPECT_TRUE(And(std::vector<PredicatePtr>{})->Evaluate(row));
  EXPECT_FALSE(Or(std::vector<PredicatePtr>{})->Evaluate(row));
}

TEST(PredicateTest, TrueConstant) {
  EXPECT_TRUE(True()->Evaluate(MakeRow(0, "")));
}

TEST(PredicateTest, ToStringRendersStructure) {
  PredicatePtr p = And(Eq(0, Value::Int64(1)),
                       Not(Eq(1, Value::String("x"))));
  std::string s = p->ToString();
  EXPECT_NE(s.find("col[0] = '1'"), std::string::npos);
  EXPECT_NE(s.find("NOT"), std::string::npos);
  EXPECT_NE(s.find("AND"), std::string::npos);
}

}  // namespace
}  // namespace rdfdb::storage
