#include "common/random.h"

#include <gtest/gtest.h>

#include <set>

namespace rdfdb {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomTest, UniformStaysInBound) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RandomTest, UniformCoversAllValues) {
  Random rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of -2..2 hit
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliEdges) {
  Random rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RandomTest, SkewedFavorsSmallRanks) {
  Random rng(19);
  int low = 0, high = 0;
  for (int i = 0; i < 10000; ++i) {
    uint64_t r = rng.Skewed(1000);
    EXPECT_LT(r, 1000u);
    if (r < 10) ++low;
    if (r >= 500) ++high;
  }
  // Harmonic weighting: the first 10 ranks should be far more popular
  // than the top half combined.
  EXPECT_GT(low, high);
}

TEST(RandomTest, SkewedDegenerateBounds) {
  Random rng(21);
  EXPECT_EQ(rng.Skewed(0), 0u);
  EXPECT_EQ(rng.Skewed(1), 0u);
}

TEST(RandomTest, IdentifierShapeAndDeterminism) {
  Random a(23), b(23);
  std::string ia = a.Identifier(8);
  std::string ib = b.Identifier(8);
  EXPECT_EQ(ia, ib);
  EXPECT_EQ(ia.size(), 8u);
  for (char c : ia) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

}  // namespace
}  // namespace rdfdb
