#include "rdf/link_store.h"

#include <gtest/gtest.h>

#include "rdf/vocab.h"

namespace rdfdb::rdf {
namespace {

class LinkStoreTest : public ::testing::Test {
 protected:
  LinkStoreTest() : values_(&db_), links_(&db_, &net_) {}

  ValueId V(const std::string& uri) {
    return *values_.LookupOrInsert(Term::Uri(uri));
  }

  storage::Database db_{"ORADB"};
  ndm::LogicalNetwork net_;
  ValueStore values_;
  LinkStore links_;
};

TEST_F(LinkStoreTest, InsertCreatesLinkAndNodes) {
  ValueId s = V("s"), p = V("p"), o = V("o");
  auto outcome = links_.Insert(1, s, p, o, o, "STANDARD",
                               TripleContext::kDirect, false);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->inserted);
  EXPECT_GT(outcome->row.link_id, 0);
  EXPECT_EQ(outcome->row.cost, 1);
  EXPECT_EQ(links_.TripleCount(1), 1u);
  // NDM network mirrors the triple.
  EXPECT_TRUE(net_.HasNode(s));
  EXPECT_TRUE(net_.HasNode(o));
  EXPECT_TRUE(net_.HasLink(outcome->row.link_id));
  EXPECT_EQ(net_.GetLink(outcome->row.link_id)->label, p);
  // rdf_node$ rows exist too.
  EXPECT_EQ(db_.GetTable("MDSYS", "RDF_NODE$")->row_count(), 2u);
}

TEST_F(LinkStoreTest, DuplicateInsertIncrementsCost) {
  // "COST: the number of times the triple is stored in an application
  // table. The triple is only stored once in the rdf_link$ table."
  ValueId s = V("s"), p = V("p"), o = V("o");
  auto first = links_.Insert(1, s, p, o, o, "STANDARD",
                             TripleContext::kDirect, false);
  auto second = links_.Insert(1, s, p, o, o, "STANDARD",
                              TripleContext::kDirect, false);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->inserted);
  EXPECT_EQ(second->row.link_id, first->row.link_id);
  EXPECT_EQ(second->row.cost, 2);
  EXPECT_EQ(links_.TripleCount(1), 1u);
  EXPECT_EQ(net_.link_count(), 1u);
}

TEST_F(LinkStoreTest, SameTripleDifferentModelsIsSeparate) {
  ValueId s = V("s"), p = V("p"), o = V("o");
  (void)links_.Insert(1, s, p, o, o, "STANDARD", TripleContext::kDirect,
                      false);
  auto other = links_.Insert(2, s, p, o, o, "STANDARD",
                             TripleContext::kDirect, false);
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(other->inserted);
  EXPECT_EQ(links_.TripleCount(1), 1u);
  EXPECT_EQ(links_.TripleCount(2), 1u);
  // Nodes are shared (stored once), links are per-triple.
  EXPECT_EQ(net_.node_count(), 2u);
  EXPECT_EQ(net_.link_count(), 2u);
}

TEST_F(LinkStoreTest, ImpliedUpgradesToDirect) {
  // "If the triple is subsequently entered into the database as a fact,
  // the CONTEXT for this triple is changed from I to D."
  ValueId s = V("s"), p = V("p"), o = V("o");
  auto implied = links_.Insert(1, s, p, o, o, "STANDARD",
                               TripleContext::kImplied, false);
  EXPECT_EQ(implied->row.context, TripleContext::kImplied);
  auto direct = links_.Insert(1, s, p, o, o, "STANDARD",
                              TripleContext::kDirect, false);
  EXPECT_EQ(direct->row.context, TripleContext::kDirect);
  // And a Direct triple never downgrades.
  auto still = links_.Insert(1, s, p, o, o, "STANDARD",
                             TripleContext::kImplied, false);
  EXPECT_EQ(still->row.context, TripleContext::kDirect);
}

TEST_F(LinkStoreTest, ReifLinkFlagIsSticky) {
  ValueId s = V("s"), p = V("p"), o = V("o");
  (void)links_.Insert(1, s, p, o, o, "STANDARD", TripleContext::kDirect,
                      false);
  auto second = links_.Insert(1, s, p, o, o, "STANDARD",
                              TripleContext::kDirect, true);
  EXPECT_TRUE(second->row.reif_link);
  auto third = links_.Insert(1, s, p, o, o, "STANDARD",
                             TripleContext::kDirect, false);
  EXPECT_TRUE(third->row.reif_link);
}

TEST_F(LinkStoreTest, FindAndGet) {
  ValueId s = V("s"), p = V("p"), o = V("o");
  auto outcome = links_.Insert(1, s, p, o, o, "STANDARD",
                               TripleContext::kDirect, false);
  auto found = links_.Find(1, s, p, o);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->link_id, outcome->row.link_id);
  EXPECT_FALSE(links_.Find(2, s, p, o).has_value());
  EXPECT_FALSE(links_.Find(1, o, p, s).has_value());
  auto got = links_.Get(outcome->row.link_id);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->start_node_id, s);
  EXPECT_TRUE(links_.Get(999999).status().IsNotFound());
}

TEST_F(LinkStoreTest, MatchByPositions) {
  ValueId s1 = V("s1"), s2 = V("s2"), p1 = V("p1"), p2 = V("p2"),
          o1 = V("o1"), o2 = V("o2");
  (void)links_.Insert(1, s1, p1, o1, o1, "STANDARD",
                      TripleContext::kDirect, false);
  (void)links_.Insert(1, s1, p2, o2, o2, "STANDARD",
                      TripleContext::kDirect, false);
  (void)links_.Insert(1, s2, p2, o2, o2, "STANDARD",
                      TripleContext::kDirect, false);

  EXPECT_EQ(links_.Match(1, s1, std::nullopt, std::nullopt).size(), 2u);
  EXPECT_EQ(links_.Match(1, std::nullopt, p2, std::nullopt).size(), 2u);
  EXPECT_EQ(links_.Match(1, std::nullopt, std::nullopt, o2).size(), 2u);
  EXPECT_EQ(links_.Match(1, s1, p2, std::nullopt).size(), 1u);
  EXPECT_EQ(links_.Match(1, std::nullopt, std::nullopt, std::nullopt).size(),
            3u);
  EXPECT_TRUE(links_.Match(2, std::nullopt, std::nullopt, std::nullopt)
                  .empty());
  EXPECT_TRUE(links_.Match(1, s2, p1, std::nullopt).empty());
}

TEST_F(LinkStoreTest, MatchEachStreamsAndStopsEarly) {
  ValueId s = V("s"), p = V("p");
  for (int i = 0; i < 10; ++i) {
    ValueId o = V("o" + std::to_string(i));
    (void)links_.Insert(1, s, p, o, o, "STANDARD",
                        TripleContext::kDirect, false);
  }
  size_t visited = 0;
  links_.MatchEach(1, s, std::nullopt, std::nullopt,
                   [&](const LinkRow&) { return ++visited < 3; });
  EXPECT_EQ(visited, 3u);
  // Streaming and materializing agree on the full result.
  size_t streamed = 0;
  links_.MatchEach(1, s, std::nullopt, std::nullopt,
                   [&](const LinkRow&) {
                     ++streamed;
                     return true;
                   });
  EXPECT_EQ(streamed,
            links_.Match(1, s, std::nullopt, std::nullopt).size());
}

TEST_F(LinkStoreTest, MatchUsesCanonicalObject) {
  ValueId s = V("s"), p = V("p");
  ValueId o_raw =
      *values_.LookupOrInsert(Term::TypedLiteral("+025", "xsd-int"));
  ValueId o_canon =
      *values_.LookupOrInsert(Term::TypedLiteral("25", "xsd-int"));
  (void)links_.Insert(1, s, p, o_raw, o_canon, "STANDARD",
                      TripleContext::kDirect, false);
  auto hits = links_.Match(1, std::nullopt, std::nullopt, o_canon);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].end_node_id, o_raw);
  EXPECT_TRUE(links_.Match(1, std::nullopt, std::nullopt, o_raw).empty());
}

TEST_F(LinkStoreTest, DeleteDecrementsCostThenRemoves) {
  ValueId s = V("s"), p = V("p"), o = V("o");
  (void)links_.Insert(1, s, p, o, o, "STANDARD", TripleContext::kDirect,
                      false);
  (void)links_.Insert(1, s, p, o, o, "STANDARD", TripleContext::kDirect,
                      false);
  ASSERT_TRUE(links_.Delete(1, s, p, o).ok());
  EXPECT_EQ(links_.TripleCount(1), 1u);  // still referenced once
  EXPECT_EQ(links_.Find(1, s, p, o)->cost, 1);
  ASSERT_TRUE(links_.Delete(1, s, p, o).ok());
  EXPECT_EQ(links_.TripleCount(1), 0u);
  EXPECT_FALSE(links_.Find(1, s, p, o).has_value());
  EXPECT_TRUE(links_.Delete(1, s, p, o).IsNotFound());
}

TEST_F(LinkStoreTest, DeleteRemovesOrphanedNodesOnly) {
  // "The nodes attached to this link are not removed if there are other
  // links connected to them."
  ValueId s = V("s"), p = V("p"), o1 = V("o1"), o2 = V("o2");
  (void)links_.Insert(1, s, p, o1, o1, "STANDARD", TripleContext::kDirect,
                      false);
  (void)links_.Insert(1, s, p, o2, o2, "STANDARD", TripleContext::kDirect,
                      false);
  ASSERT_TRUE(links_.Delete(1, s, p, o1).ok());
  EXPECT_TRUE(net_.HasNode(s));    // still used by the second triple
  EXPECT_FALSE(net_.HasNode(o1));  // orphaned -> removed
  EXPECT_TRUE(net_.HasNode(o2));
  EXPECT_EQ(db_.GetTable("MDSYS", "RDF_NODE$")->row_count(), 2u);
}

TEST_F(LinkStoreTest, ForceDeleteIgnoresCost) {
  ValueId s = V("s"), p = V("p"), o = V("o");
  (void)links_.Insert(1, s, p, o, o, "STANDARD", TripleContext::kDirect,
                      false);
  (void)links_.Insert(1, s, p, o, o, "STANDARD", TripleContext::kDirect,
                      false);
  ASSERT_TRUE(links_.Delete(1, s, p, o, /*force=*/true).ok());
  EXPECT_FALSE(links_.Find(1, s, p, o).has_value());
}

TEST_F(LinkStoreTest, DeleteModelRemovesEverything) {
  ValueId s = V("s"), p = V("p"), o = V("o");
  (void)links_.Insert(1, s, p, o, o, "STANDARD", TripleContext::kDirect,
                      false);
  (void)links_.Insert(1, o, p, s, s, "STANDARD", TripleContext::kDirect,
                      false);
  (void)links_.Insert(2, s, p, o, o, "STANDARD", TripleContext::kDirect,
                      false);
  ASSERT_TRUE(links_.DeleteModel(1).ok());
  EXPECT_EQ(links_.TripleCount(1), 0u);
  EXPECT_EQ(links_.TripleCount(2), 1u);
  EXPECT_EQ(net_.link_count(), 1u);
}

TEST_F(LinkStoreTest, ScanModel) {
  ValueId s = V("s"), p = V("p");
  for (int i = 0; i < 5; ++i) {
    (void)links_.Insert(3, s, p, V("o" + std::to_string(i)),
                        V("o" + std::to_string(i)), "STANDARD",
                        TripleContext::kDirect, false);
  }
  size_t count = 0;
  links_.ScanModel(3, [&](const LinkRow& row) {
    EXPECT_EQ(row.model_id, 3);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 5u);
  // Early stop.
  count = 0;
  links_.ScanModel(3, [&](const LinkRow&) { return ++count < 2; });
  EXPECT_EQ(count, 2u);
}

TEST(ClassifyPredicateTest, LinkTypes) {
  EXPECT_EQ(ClassifyPredicate(std::string(kRdfType)), "RDF_TYPE");
  EXPECT_EQ(ClassifyPredicate(std::string(kRdfNs) + "_1"), "RDF_MEMBER");
  EXPECT_EQ(ClassifyPredicate(std::string(kRdfLi)), "RDF_MEMBER");
  EXPECT_EQ(ClassifyPredicate(std::string(kRdfSubject)), "RDF_*");
  EXPECT_EQ(ClassifyPredicate("http://www.us.gov#terrorSuspect"),
            "STANDARD");
}

}  // namespace
}  // namespace rdfdb::rdf
