#include "rdf/container.h"

#include <gtest/gtest.h>

#include "rdf/vocab.h"

namespace rdfdb::rdf {
namespace {

class ContainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateRdfModel("class", "classdata", "triple").ok());
  }

  RdfStore store_;
};

TEST_F(ContainerTest, CreateBagWithMembers) {
  // The paper's example: "to illustrate that a class has several
  // students".
  std::vector<Term> students = {
      Term::Uri("http://ex/students/alice"),
      Term::Uri("http://ex/students/bob"),
      Term::Uri("http://ex/students/carol"),
  };
  auto bag = CreateContainer(&store_, "class", ContainerKind::kBag,
                             "students001", students);
  ASSERT_TRUE(bag.ok());
  EXPECT_TRUE(bag->is_blank());

  // Stored triples: rdf:type + 3 membership triples.
  ModelId model = *store_.GetModelId("class");
  EXPECT_EQ(store_.links().TripleCount(model), 4u);

  auto kind = GetContainerKind(store_, "class", *bag);
  ASSERT_TRUE(kind.ok());
  ASSERT_TRUE(kind->has_value());
  EXPECT_EQ(**kind, ContainerKind::kBag);

  auto members = ContainerMembers(store_, "class", *bag);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(*members, students);
}

TEST_F(ContainerTest, MembershipTriplesAreRdfMemberLinkType) {
  auto bag = CreateContainer(&store_, "class", ContainerKind::kBag, "b",
                             {Term::Uri("http://ex/m1")});
  ASSERT_TRUE(bag.ok());
  ModelId model = *store_.GetModelId("class");
  size_t member_links = 0;
  store_.links().ScanModel(model, [&](const LinkRow& row) {
    if (row.link_type == "RDF_MEMBER") ++member_links;
    return true;
  });
  EXPECT_EQ(member_links, 1u);
}

TEST_F(ContainerTest, SeqAndAltKinds) {
  auto seq = CreateContainer(&store_, "class", ContainerKind::kSeq, "s",
                             {Term::PlainLiteral("first")});
  ASSERT_TRUE(seq.ok());
  auto alt = CreateContainer(&store_, "class", ContainerKind::kAlt, "a",
                             {Term::PlainLiteral("choice")});
  ASSERT_TRUE(alt.ok());
  EXPECT_EQ(**GetContainerKind(store_, "class", *seq), ContainerKind::kSeq);
  EXPECT_EQ(**GetContainerKind(store_, "class", *alt), ContainerKind::kAlt);
}

TEST_F(ContainerTest, EmptyContainer) {
  auto bag =
      CreateContainer(&store_, "class", ContainerKind::kBag, "empty", {});
  ASSERT_TRUE(bag.ok());
  auto members = ContainerMembers(store_, "class", *bag);
  ASSERT_TRUE(members.ok());
  EXPECT_TRUE(members->empty());
}

TEST_F(ContainerTest, AppendAssignsNextIndex) {
  auto bag = CreateContainer(&store_, "class", ContainerKind::kBag, "b",
                             {Term::Uri("http://ex/m1")});
  ASSERT_TRUE(bag.ok());
  auto idx2 = AppendContainerMember(&store_, "class", *bag,
                                    Term::Uri("http://ex/m2"));
  ASSERT_TRUE(idx2.ok());
  EXPECT_EQ(*idx2, 2);
  auto idx3 = AppendContainerMember(&store_, "class", *bag,
                                    Term::PlainLiteral("a literal member"));
  ASSERT_TRUE(idx3.ok());
  EXPECT_EQ(*idx3, 3);
  auto members = ContainerMembers(store_, "class", *bag);
  ASSERT_TRUE(members.ok());
  ASSERT_EQ(members->size(), 3u);
  EXPECT_EQ((*members)[2].lexical(), "a literal member");
}

TEST_F(ContainerTest, MembersOrderedByIndexNotInsertion) {
  // Build a container manually with out-of-order membership indexes.
  ModelId model = *store_.GetModelId("class");
  Term bag = Term::BlankNode("manual");
  ASSERT_TRUE(store_
                  .InsertParsedTriple(model, bag,
                                      Term::Uri(std::string(kRdfType)),
                                      Term::Uri(std::string(kRdfBag)))
                  .ok());
  ASSERT_TRUE(store_
                  .InsertParsedTriple(model, bag,
                                      Term::Uri(std::string(kRdfNs) + "_3"),
                                      Term::Uri("http://ex/third"))
                  .ok());
  ASSERT_TRUE(store_
                  .InsertParsedTriple(model, bag,
                                      Term::Uri(std::string(kRdfNs) + "_1"),
                                      Term::Uri("http://ex/first"))
                  .ok());
  auto members = ContainerMembers(store_, "class", bag);
  ASSERT_TRUE(members.ok());
  ASSERT_EQ(members->size(), 2u);  // gap at _2 is fine
  EXPECT_EQ((*members)[0].lexical(), "http://ex/first");
  EXPECT_EQ((*members)[1].lexical(), "http://ex/third");
  // Append continues after the highest index.
  auto next = AppendContainerMember(&store_, "class", bag,
                                    Term::Uri("http://ex/fourth"));
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 4);
}

TEST_F(ContainerTest, NonContainerQueries) {
  ASSERT_TRUE(
      store_.InsertTriple("class", "http://ex/x", "http://ex/p", "v").ok());
  auto kind =
      GetContainerKind(store_, "class", Term::Uri("http://ex/x"));
  ASSERT_TRUE(kind.ok());
  EXPECT_FALSE(kind->has_value());
  // Unknown term.
  auto members = ContainerMembers(store_, "class", Term::BlankNode("ghost"));
  EXPECT_TRUE(members.status().IsNotFound());
  EXPECT_TRUE(AppendContainerMember(&store_, "class",
                                    Term::BlankNode("ghost"),
                                    Term::PlainLiteral("x"))
                  .status()
                  .IsNotFound());
}

TEST_F(ContainerTest, ContainersAreModelScoped) {
  ASSERT_TRUE(store_.CreateRdfModel("other", "otherdata", "triple").ok());
  auto bag = CreateContainer(&store_, "class", ContainerKind::kBag, "b",
                             {Term::Uri("http://ex/m")});
  ASSERT_TRUE(bag.ok());
  // The same blank label in another model is a different node.
  auto members = ContainerMembers(store_, "other", *bag);
  EXPECT_TRUE(members.status().IsNotFound());
}

TEST(ContainerClassUriTest, MapsToVocabulary) {
  EXPECT_EQ(ContainerClassUri(ContainerKind::kBag), kRdfBag);
  EXPECT_EQ(ContainerClassUri(ContainerKind::kSeq), kRdfSeq);
  EXPECT_EQ(ContainerClassUri(ContainerKind::kAlt), kRdfAlt);
}

}  // namespace
}  // namespace rdfdb::rdf
