#include "query/rulebase.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace rdfdb::query {
namespace {

Rule IntelRule() {
  // The paper's intel_rule: anyone who performs 'bombing' is a suspect.
  Rule rule;
  rule.name = "intel_rule";
  rule.antecedent = "(?x gov:terrorAction \"bombing\")";
  rule.consequent = "(gov:files gov:terrorSuspect ?x)";
  rule.aliases = {{"gov", "http://www.us.gov#"}};
  return rule;
}

TEST(RuleValidationTest, PaperIntelRuleIsValid) {
  EXPECT_TRUE(ValidateRule(IntelRule()).ok());
}

TEST(RuleValidationTest, RequiresName) {
  Rule rule = IntelRule();
  rule.name = "";
  EXPECT_TRUE(ValidateRule(rule).IsInvalidArgument());
}

TEST(RuleValidationTest, RejectsBadAntecedent) {
  Rule rule = IntelRule();
  rule.antecedent = "not a pattern";
  EXPECT_TRUE(ValidateRule(rule).IsInvalidArgument());
}

TEST(RuleValidationTest, RejectsBadConsequent) {
  Rule rule = IntelRule();
  rule.consequent = "(?x ?y)";
  EXPECT_TRUE(ValidateRule(rule).IsInvalidArgument());
}

TEST(RuleValidationTest, RejectsMultipleConsequents) {
  Rule rule = IntelRule();
  rule.consequent = "(?x gov:a ?x) (?x gov:b ?x)";
  EXPECT_TRUE(ValidateRule(rule).IsInvalidArgument());
}

TEST(RuleValidationTest, RejectsUnboundConsequentVariable) {
  Rule rule = IntelRule();
  rule.consequent = "(gov:files gov:terrorSuspect ?unbound)";
  Status st = ValidateRule(rule);
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("unbound"), std::string::npos);
}

TEST(RuleValidationTest, RejectsBadFilter) {
  Rule rule = IntelRule();
  rule.filter = "?x =";
  EXPECT_TRUE(ValidateRule(rule).IsInvalidArgument());
}

TEST(RuleValidationTest, AcceptsFilterAndMultiPatternAntecedent) {
  Rule rule;
  rule.name = "r";
  rule.antecedent = "(?x gov:age ?a) (?x gov:knows ?y)";
  rule.filter = "?a > 18";
  rule.consequent = "(?x gov:adultKnows ?y)";
  rule.aliases = {{"gov", "http://www.us.gov#"}};
  EXPECT_TRUE(ValidateRule(rule).ok());
}

TEST(RulebaseTest, AddRuleAndDuplicateDetection) {
  Rulebase rb("intel_rb");
  EXPECT_EQ(rb.name(), "intel_rb");
  ASSERT_TRUE(rb.AddRule(IntelRule()).ok());
  EXPECT_EQ(rb.rules().size(), 1u);
  EXPECT_TRUE(rb.AddRule(IntelRule()).IsAlreadyExists());
  Rule other = IntelRule();
  other.name = "other_rule";
  EXPECT_TRUE(rb.AddRule(other).ok());
  EXPECT_EQ(rb.rules().size(), 2u);
}

TEST(RulebaseTest, InvalidRuleNotAdded) {
  Rulebase rb("rb");
  Rule bad = IntelRule();
  bad.antecedent = "(broken";
  EXPECT_FALSE(rb.AddRule(bad).ok());
  EXPECT_TRUE(rb.rules().empty());
}

TEST(RdfsRulebaseTest, ContainsExpectedRules) {
  const Rulebase& rdfs = BuiltinRdfsRulebase();
  EXPECT_EQ(rdfs.name(), kRdfsRulebaseName);
  std::vector<std::string> names;
  for (const Rule& rule : rdfs.rules()) names.push_back(rule.name);
  for (const char* expected :
       {"rdfs2", "rdfs3", "rdfs5", "rdfs6", "rdfs7", "rdfs8", "rdfs9",
        "rdfs10", "rdfs11", "rdfs12", "rdfs13"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected),
              names.end())
        << expected;
  }
}

TEST(RdfsRulebaseTest, AllRulesValid) {
  for (const Rule& rule : BuiltinRdfsRulebase().rules()) {
    EXPECT_TRUE(ValidateRule(rule).ok()) << rule.name;
  }
}

TEST(RdfsRulebaseTest, SingletonInstance) {
  EXPECT_EQ(&BuiltinRdfsRulebase(), &BuiltinRdfsRulebase());
}

}  // namespace
}  // namespace rdfdb::query
