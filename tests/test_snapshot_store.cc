// SnapshotRdfStore: lock-free snapshot reads.
//
// Three layers of coverage:
//   1. Functional mirrors — every read on a pinned StoreVersion returns
//      exactly what the live RdfStore returns (results AND error texts).
//   2. Randomized differential — a seeded op stream drives the snapshot
//      store and the locked ConcurrentRdfStore oracle in lockstep;
//      after every mutation the read APIs (IsTriple / IsReified /
//      GetTripleId / GetModelStats / SDO_RDF_MATCH) must agree,
//      which also proves read-your-writes at each publish boundary.
//   3. Concurrency — repeatable reads under a held pin, linearizable
//      visibility across a release/acquire watermark, epoch-based
//      version reclamation, and a many-reader/one-writer hammer at
//      several thread counts (run under TSan via tools/run_tsan.sh).

#include "rdf/snapshot_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "query/match.h"
#include "rdf/concurrent_store.h"

namespace rdfdb::rdf {
namespace {

TEST(SnapshotStoreTest, BasicOperationsWork) {
  SnapshotRdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  auto triple = store.InsertTriple("m", "gov:a", "gov:p", "gov:b");
  ASSERT_TRUE(triple.ok());
  EXPECT_TRUE(*store.IsTriple("m", "gov:a", "gov:p", "gov:b"));
  auto id = store.GetTripleId("m", "gov:a", "gov:p", "gov:b");
  ASSERT_TRUE(id.ok());
  auto resolved = store.ResolveTriple(*id);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->subject, "gov:a");
  ASSERT_TRUE(store.ReifyTriple("m", *id).ok());
  EXPECT_TRUE(*store.IsReified("m", "gov:a", "gov:p", "gov:b"));
  ASSERT_TRUE(store.DeleteTriple("m", "gov:a", "gov:p", "gov:b").ok());
  EXPECT_FALSE(*store.IsTriple("m", "gov:a", "gov:p", "gov:b"));
}

TEST(SnapshotStoreTest, ReadYourWrites) {
  // Every mutation publishes before returning, so a snapshot taken
  // right after the call must already see the new state.
  SnapshotRdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  for (int i = 0; i < 64; ++i) {
    std::string subject = "gov:s" + std::to_string(i);
    ASSERT_TRUE(store.InsertTriple("m", subject, "gov:p", "gov:o").ok());
    auto snap = store.Snapshot();
    auto seen = snap->IsTriple("m", subject, "gov:p", "gov:o");
    ASSERT_TRUE(seen.ok());
    EXPECT_TRUE(*seen) << "write " << i << " not visible after publish";
  }
  ASSERT_TRUE(store.DeleteTriple("m", "gov:s0", "gov:p", "gov:o").ok());
  EXPECT_FALSE(*store.IsTriple("m", "gov:s0", "gov:p", "gov:o"));
}

TEST(SnapshotStoreTest, ErrorTextsMirrorRdfStore) {
  SnapshotRdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  auto snap = store.Snapshot();

  RdfStore plain;
  ASSERT_TRUE(plain.CreateRdfModel("m", "mdata", "triple").ok());

  auto model_a = snap->GetModelId("nope");
  auto model_b = plain.GetModelId("nope");
  ASSERT_FALSE(model_a.ok());
  ASSERT_FALSE(model_b.ok());
  EXPECT_EQ(model_a.status().ToString(), model_b.status().ToString());

  auto id_a = snap->GetTripleId("m", "gov:a", "gov:p", "gov:b");
  auto id_b = plain.GetTripleId("m", "gov:a", "gov:p", "gov:b");
  ASSERT_FALSE(id_a.ok());
  ASSERT_FALSE(id_b.ok());
  EXPECT_EQ(id_a.status().ToString(), id_b.status().ToString());

  auto resolve_a = snap->ResolveTriple(987654);
  auto resolve_b = plain.ResolveTriple(987654);
  ASSERT_FALSE(resolve_a.ok());
  ASSERT_FALSE(resolve_b.ok());
  EXPECT_EQ(resolve_a.status().ToString(), resolve_b.status().ToString());
}

TEST(SnapshotStoreTest, MatchRunsAgainstPinnedVersion) {
  SnapshotRdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  ASSERT_TRUE(store.InsertTriple("m", "gov:a", "gov:p", "gov:b").ok());
  ASSERT_TRUE(store.InsertTriple("m", "gov:a", "gov:p", "gov:c").ok());
  ASSERT_TRUE(store.InsertTriple("m", "gov:x", "gov:q", "gov:b").ok());

  auto snap = store.Snapshot();
  auto result = query::SdoRdfMatch(snap.view(), "(gov:a gov:p ?o)", {"m"},
                                   {}, "");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->row_count(), 2u);

  // Mutations after the pin must not leak into the pinned view.
  ASSERT_TRUE(store.InsertTriple("m", "gov:a", "gov:p", "gov:d").ok());
  auto again = query::SdoRdfMatch(snap.view(), "(gov:a gov:p ?o)", {"m"},
                                  {}, "");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->row_count(), 2u);
  auto fresh = query::SdoRdfMatch(store.Snapshot().view(),
                                  "(gov:a gov:p ?o)", {"m"}, {}, "");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->row_count(), 3u);
}

// ---------------------------------------------------------------------------
// Randomized differential: SnapshotRdfStore vs the locked oracle.
// ---------------------------------------------------------------------------

struct DiffUniverse {
  std::vector<std::string> subjects;
  std::vector<std::string> predicates;
  std::vector<std::string> objects;
};

DiffUniverse SmallUniverse() {
  DiffUniverse u;
  for (int i = 0; i < 8; ++i) u.subjects.push_back("gov:s" + std::to_string(i));
  for (int i = 0; i < 3; ++i) u.predicates.push_back("gov:p" + std::to_string(i));
  for (int i = 0; i < 5; ++i) u.objects.push_back("gov:o" + std::to_string(i));
  return u;
}

TEST(SnapshotStoreTest, RandomizedDifferentialAgainstLockedOracle) {
  const DiffUniverse universe = SmallUniverse();
  std::mt19937_64 rng(20260808);

  SnapshotRdfStore snapshot_store;
  ConcurrentRdfStore oracle;
  ASSERT_TRUE(snapshot_store.CreateRdfModel("m", "mdata", "triple").ok());
  ASSERT_TRUE(oracle.CreateRdfModel("m", "mdata", "triple").ok());

  auto pick = [&](const std::vector<std::string>& pool) -> const std::string& {
    return pool[rng() % pool.size()];
  };

  for (int step = 0; step < 400; ++step) {
    const std::string& s = pick(universe.subjects);
    const std::string& p = pick(universe.predicates);
    const std::string& o = pick(universe.objects);
    switch (rng() % 4) {
      case 0:
      case 1: {  // insert (weighted up so the store actually grows)
        auto a = snapshot_store.InsertTriple("m", s, p, o);
        auto b = oracle.InsertTriple("m", s, p, o);
        ASSERT_EQ(a.ok(), b.ok()) << "step " << step;
        break;
      }
      case 2: {  // delete
        Status a = snapshot_store.DeleteTriple("m", s, p, o);
        Status b = oracle.DeleteTriple("m", s, p, o);
        ASSERT_EQ(a.ok(), b.ok()) << "step " << step;
        break;
      }
      case 3: {  // reify (when the triple exists)
        auto id_a = snapshot_store.GetTripleId("m", s, p, o);
        auto id_b = oracle.GetTripleId("m", s, p, o);
        ASSERT_EQ(id_a.ok(), id_b.ok()) << "step " << step;
        if (id_a.ok()) {
          auto a = snapshot_store.ReifyTriple("m", *id_a);
          auto b = oracle.ReifyTriple("m", *id_b);
          ASSERT_EQ(a.ok(), b.ok()) << "step " << step;
        }
        break;
      }
    }

    // Read-your-writes + full agreement after EVERY mutation: probe a
    // random sample of the universe on both stores.
    auto snap = snapshot_store.Snapshot();
    for (int probe = 0; probe < 4; ++probe) {
      const std::string& ps = pick(universe.subjects);
      const std::string& pp = pick(universe.predicates);
      const std::string& po = pick(universe.objects);
      auto is_a = snap->IsTriple("m", ps, pp, po);
      auto is_b = oracle.IsTriple("m", ps, pp, po);
      ASSERT_TRUE(is_a.ok() && is_b.ok());
      ASSERT_EQ(*is_a, *is_b) << "step " << step << " IsTriple(" << ps
                              << "," << pp << "," << po << ")";
      auto reif_a = snap->IsReified("m", ps, pp, po);
      auto reif_b = oracle.IsReified("m", ps, pp, po);
      ASSERT_TRUE(reif_a.ok() && reif_b.ok());
      ASSERT_EQ(*reif_a, *reif_b) << "step " << step;
      auto id_a = snap->GetTripleId("m", ps, pp, po);
      auto id_b = oracle.GetTripleId("m", ps, pp, po);
      ASSERT_EQ(id_a.ok(), id_b.ok()) << "step " << step;
      if (id_a.ok()) {
        ASSERT_EQ(*id_a, *id_b) << "step " << step;
      }
    }

    if (step % 25 == 0) {
      auto stats_a = snap->GetModelStats("m");
      auto stats_b = oracle.GetModelStats("m");
      ASSERT_TRUE(stats_a.ok() && stats_b.ok());
      EXPECT_EQ(stats_a->triples, stats_b->triples) << "step " << step;
      EXPECT_EQ(stats_a->reified_statements, stats_b->reified_statements);
      EXPECT_EQ(stats_a->distinct_subjects, stats_b->distinct_subjects);
      EXPECT_EQ(stats_a->distinct_predicates, stats_b->distinct_predicates);
      EXPECT_EQ(stats_a->distinct_objects, stats_b->distinct_objects);

      // Full SDO_RDF_MATCH differential: the snapshot path (compiled
      // executor over the pinned leaf scan) vs the locked store.
      const std::string query = "(?s " + universe.predicates[0] + " ?o)";
      auto rows_a = query::SdoRdfMatch(snap.view(), query, {"m"}, {}, "");
      auto rows_b = oracle.WithWriteLock([&](RdfStore& live) {
        return query::SdoRdfMatch(&live, nullptr, query, {"m"}, {}, {}, "");
      });
      ASSERT_TRUE(rows_a.ok() && rows_b.ok());
      ASSERT_EQ(rows_a->row_count(), rows_b->row_count()) << "step " << step;
      for (size_t r = 0; r < rows_a->row_count(); ++r) {
        EXPECT_EQ(rows_a->Get(r, "s"), rows_b->Get(r, "s"));
        EXPECT_EQ(rows_a->Get(r, "o"), rows_b->Get(r, "o"));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Concurrency: visibility, repeatable reads, reclamation, stress.
// ---------------------------------------------------------------------------

TEST(SnapshotStoreTest, PinnedSnapshotIsRepeatable) {
  SnapshotRdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  ASSERT_TRUE(store.InsertTriple("m", "gov:a", "gov:p", "gov:b").ok());

  auto pinned = store.Snapshot();
  const uint64_t pinned_seq = pinned->sequence();

  ASSERT_TRUE(store.InsertTriple("m", "gov:new", "gov:p", "gov:b").ok());
  ASSERT_TRUE(store.DeleteTriple("m", "gov:a", "gov:p", "gov:b").ok());

  // The pinned view is frozen: the old triple is still there, the new
  // one is not, and the sequence number did not move.
  EXPECT_EQ(pinned->sequence(), pinned_seq);
  EXPECT_TRUE(*pinned->IsTriple("m", "gov:a", "gov:p", "gov:b"));
  EXPECT_FALSE(*pinned->IsTriple("m", "gov:new", "gov:p", "gov:b"));

  auto fresh = store.Snapshot();
  EXPECT_GT(fresh->sequence(), pinned_seq);
  EXPECT_FALSE(*fresh->IsTriple("m", "gov:a", "gov:p", "gov:b"));
  EXPECT_TRUE(*fresh->IsTriple("m", "gov:new", "gov:p", "gov:b"));
}

TEST(SnapshotStoreTest, EpochReclamationFreesRetiredVersions) {
  SnapshotRdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());

  {
    auto pinned = store.Snapshot();
    // Each insert publishes a version; the pin blocks the sweep, so
    // superseded versions pile up on the retire list.
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(store
                      .InsertTriple("m", "gov:s" + std::to_string(i),
                                    "gov:p", "gov:o")
                      .ok());
    }
    EXPECT_GT(store.RetiredOutstanding(), 0u);
    EXPECT_GT(store.OldestPinLag(), 0u);
  }

  // Pin released: the next publish's sweep reclaims everything retired.
  ASSERT_TRUE(store.InsertTriple("m", "gov:last", "gov:p", "gov:o").ok());
  EXPECT_EQ(store.RetiredOutstanding(), 0u);
  EXPECT_EQ(store.OldestPinLag(), 0u);
}

TEST(SnapshotStoreTest, WatermarkVisibilityAcrossThreads) {
  // Linearizable visibility at the version boundary: the writer inserts
  // statement k and only then release-stores k as the watermark. Any
  // reader that acquire-loads watermark w must find statements 0..w in
  // its snapshot — publish happens inside the mutation call, strictly
  // before the watermark store.
  SnapshotRdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());

  constexpr int kStatements = 300;
  std::atomic<int> watermark{-1};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    for (int k = 0; k < kStatements; ++k) {
      auto inserted = store.InsertTriple("m", "gov:w" + std::to_string(k),
                                         "gov:p", "gov:o");
      if (!inserted.ok()) {
        failures.fetch_add(1);
        return;
      }
      watermark.store(k, std::memory_order_release);
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      int last_seen = -1;
      while (last_seen < kStatements - 1) {
        int w = watermark.load(std::memory_order_acquire);
        if (w < 0) continue;
        auto snap = store.Snapshot();
        // Check the watermark statement itself plus a stride of
        // earlier ones (all must be visible in this one snapshot).
        for (int k = w; k >= 0; k -= 37) {
          auto seen = snap->IsTriple("m", "gov:w" + std::to_string(k),
                                     "gov:p", "gov:o");
          if (!seen.ok() || !*seen) failures.fetch_add(1);
        }
        last_seen = w;
      }
    });
  }

  writer.join();
  for (std::thread& thread : readers) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

void HammerReadersOneWriter(int reader_threads) {
  SnapshotRdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  ASSERT_TRUE(store.InsertTriple("m", "gov:anchor", "gov:p", "gov:o").ok());
  auto anchor_id = store.GetTripleId("m", "gov:anchor", "gov:p", "gov:o");
  ASSERT_TRUE(anchor_id.ok());
  ASSERT_TRUE(store.ReifyTriple("m", *anchor_id).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < reader_threads; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto snap = store.Snapshot();
        auto anchor = snap->IsTriple("m", "gov:anchor", "gov:p", "gov:o");
        if (!anchor.ok() || !*anchor) failures.fetch_add(1);
        auto reified = snap->IsReified("m", "gov:anchor", "gov:p", "gov:o");
        if (!reified.ok() || !*reified) failures.fetch_add(1);
        auto stats = snap->GetModelStats("m");
        if (!stats.ok() || stats->triples == 0) failures.fetch_add(1);
        auto rows = query::SdoRdfMatch(snap.view(),
                                       "(gov:anchor gov:p ?o)", {"m"}, {},
                                       "");
        if (!rows.ok() || rows->row_count() == 0) failures.fetch_add(1);
      }
    });
  }

  std::thread writer([&] {
    for (int i = 0; i < 400; ++i) {
      std::string subject = "gov:w" + std::to_string(i);
      if (!store.InsertTriple("m", subject, "gov:p", "gov:o").ok()) {
        failures.fetch_add(1);
      }
      if (i % 3 == 0 &&
          !store.DeleteTriple("m", subject, "gov:p", "gov:o").ok()) {
        failures.fetch_add(1);
      }
    }
    stop.store(true, std::memory_order_release);
  });

  writer.join();
  for (std::thread& thread : readers) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // Post-condition on a final snapshot: anchor + its streamlined
  // reification row + 400 writes - 134 deletes (i % 3 == 0 in [0, 400)).
  auto stats = store.GetModelStats("m");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->triples, 1u + 1u + 400u - 134u);

  // Every pin is released; one more publish sweeps the retire list dry.
  ASSERT_TRUE(store.InsertTriple("m", "gov:fin", "gov:p", "gov:o").ok());
  EXPECT_EQ(store.RetiredOutstanding(), 0u);
}

TEST(SnapshotStoreTest, Stress1Reader) { HammerReadersOneWriter(1); }
TEST(SnapshotStoreTest, Stress2Readers) { HammerReadersOneWriter(2); }
TEST(SnapshotStoreTest, Stress8Readers) { HammerReadersOneWriter(8); }

TEST(SnapshotStoreTest, ApplyBatchPublishesOnce) {
  SnapshotRdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  const uint64_t before = store.PublishedVersions();
  Status batched = store.Apply([](RdfStore& live) {
    for (int i = 0; i < 100; ++i) {
      auto inserted = live.InsertTriple("m", "gov:b" + std::to_string(i),
                                        "gov:p", "gov:o");
      if (!inserted.ok()) return inserted.status();
    }
    return Status::OK();
  });
  ASSERT_TRUE(batched.ok());
  EXPECT_EQ(store.PublishedVersions(), before + 1);
  auto stats = store.GetModelStats("m");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->triples, 100u);
}

TEST(SnapshotStoreTest, PublishMetricsAreRecorded) {
  SnapshotRdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  ASSERT_TRUE(store.InsertTriple("m", "gov:a", "gov:p", "gov:b").ok());
  std::string rendered = store.metrics_registry().RenderPrometheus();
  EXPECT_NE(rendered.find("rdfdb_versions_published_total"),
            std::string::npos);
  EXPECT_NE(rendered.find("rdfdb_publish_ns"), std::string::npos);
  EXPECT_NE(rendered.find("rdfdb_retired_versions_outstanding"),
            std::string::npos);
  EXPECT_NE(rendered.find("rdfdb_oldest_pinned_epoch_lag"),
            std::string::npos);
}

}  // namespace
}  // namespace rdfdb::rdf
