#include "rdf/codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <set>
#include <string>
#include <vector>

namespace rdfdb::rdf::codec {
namespace {

// ---- Varint ---------------------------------------------------------------

TEST(VarintTest, RoundTripBoundaries) {
  const std::vector<uint32_t> values = {
      0,          1,          0x7f,       0x80,        0x3fff,
      0x4000,     0x1fffff,   0x200000,   0xfffffff,   0x10000000,
      0x7fffffff, 0x80000000, 0xfffffffe, 0xffffffff};
  for (uint32_t v : values) {
    std::vector<uint8_t> buf;
    PutVarint32(&buf, v);
    EXPECT_EQ(buf.size(), VarintLength(v));
    uint32_t decoded = 0;
    const uint8_t* end = GetVarint32(buf.data(), &decoded);
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(end, buf.data() + buf.size());
  }
}

TEST(VarintTest, FuzzRoundTripConcatenated) {
  std::mt19937 rng(7);
  std::vector<uint32_t> values;
  std::vector<uint8_t> buf;
  for (int i = 0; i < 10000; ++i) {
    // Mix magnitudes so every byte-length occurs.
    int shift = static_cast<int>(rng() % 32);
    uint32_t v = static_cast<uint32_t>(rng()) >> shift;
    values.push_back(v);
    PutVarint32(&buf, v);
  }
  const uint8_t* p = buf.data();
  for (uint32_t expected : values) {
    uint32_t v = 0;
    p = GetVarint32(p, &v);
    ASSERT_EQ(v, expected);
  }
  EXPECT_EQ(p, buf.data() + buf.size());
}

// ---- PostingList ----------------------------------------------------------

std::vector<uint32_t> MakeAscending(std::mt19937* rng, size_t n,
                                    uint32_t max_gap) {
  std::vector<uint32_t> out;
  uint32_t cur = (*rng)() % 3;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(cur);
    cur += 1 + (*rng)() % max_gap;
  }
  return out;
}

TEST(PostingListTest, EmptyList) {
  PostingList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  PostingList::Cursor cur(list);
  EXPECT_TRUE(cur.AtEnd());
  EXPECT_FALSE(cur.SkipTo(0));
  EXPECT_TRUE(list.ToVector().empty());
}

TEST(PostingListTest, SingleElement) {
  for (uint32_t v : {0u, 1u, 127u, 128u, 0xffffffffu}) {
    PostingList list;
    list.Append(v);
    EXPECT_EQ(list.size(), 1u);
    EXPECT_EQ(list.back(), v);
    PostingList::Cursor cur(list);
    ASSERT_FALSE(cur.AtEnd());
    EXPECT_EQ(cur.Value(), v);
    cur.Next();
    EXPECT_TRUE(cur.AtEnd());

    PostingList::Cursor skip(list);
    EXPECT_TRUE(skip.SkipTo(v));
    EXPECT_EQ(skip.Value(), v);
    if (v > 0) {
      PostingList::Cursor skip2(list);
      EXPECT_TRUE(skip2.SkipTo(v - 1));
      EXPECT_EQ(skip2.Value(), v);
    }
    if (v < std::numeric_limits<uint32_t>::max()) {
      PostingList::Cursor skip3(list);
      EXPECT_FALSE(skip3.SkipTo(v + 1));
    }
  }
}

TEST(PostingListTest, SequentialRoundTrip) {
  PostingList list;
  std::vector<uint32_t> expected;
  for (uint32_t i = 0; i < 1000; ++i) {
    list.Append(i * 3);
    expected.push_back(i * 3);
  }
  EXPECT_EQ(list.ToVector(), expected);
  // Sequential ids delta-encode to ~1 byte each.
  EXPECT_LT(list.EncodedBytes(), expected.size() * 2);
}

TEST(PostingListTest, FourByteBoundaryValues) {
  // Values straddling every varint length boundary, including the
  // 5-byte encodings near 2^32.
  PostingList list;
  std::vector<uint32_t> expected = {0,          0x7f,       0x80,
                                    0x3fff,     0x4000,     0x1fffff,
                                    0x200000,   0xfffffff,  0x10000000,
                                    0x7fffffff, 0x80000000, 0xffffffff};
  for (uint32_t v : expected) list.Append(v);
  EXPECT_EQ(list.ToVector(), expected);
  for (uint32_t v : expected) {
    PostingList::Cursor cur(list);
    ASSERT_TRUE(cur.SkipTo(v));
    EXPECT_EQ(cur.Value(), v);
  }
}

TEST(PostingListTest, FuzzRoundTripAndSkip) {
  std::mt19937 rng(42);
  for (int round = 0; round < 30; ++round) {
    size_t n = 1 + rng() % 2000;
    uint32_t max_gap = 1 + rng() % 1000;
    std::vector<uint32_t> values = MakeAscending(&rng, n, max_gap);
    PostingList list;
    for (uint32_t v : values) list.Append(v);
    ASSERT_EQ(list.ToVector(), values);

    // Random SkipTo targets, validated against std::lower_bound.
    for (int probe = 0; probe < 50; ++probe) {
      uint32_t target = values[rng() % values.size()] + rng() % max_gap;
      PostingList::Cursor cur(list);
      auto it = std::lower_bound(values.begin(), values.end(), target);
      if (it == values.end()) {
        EXPECT_FALSE(cur.SkipTo(target));
      } else {
        ASSERT_TRUE(cur.SkipTo(target));
        EXPECT_EQ(cur.Value(), *it);
      }
    }

    // Monotone forward skipping from a moving cursor (the intersection
    // access pattern): never rewind, always land on lower_bound.
    PostingList::Cursor cur(list);
    uint32_t target = 0;
    while (true) {
      target += 1 + rng() % (max_gap * 4);
      auto it = std::lower_bound(values.begin(), values.end(), target);
      if (it == values.end()) {
        EXPECT_FALSE(cur.SkipTo(target));
        break;
      }
      ASSERT_TRUE(cur.SkipTo(target));
      ASSERT_EQ(cur.Value(), *it);
    }
  }
}

TEST(PostingListTest, GallopingIntersection) {
  // Intersect a dense list with a sparse one; verify against sets.
  std::mt19937 rng(99);
  std::vector<uint32_t> dense = MakeAscending(&rng, 5000, 3);
  std::vector<uint32_t> sparse;
  for (uint32_t v : dense) {
    if (rng() % 50 == 0) sparse.push_back(v);
  }
  PostingList dense_list, sparse_list;
  for (uint32_t v : dense) dense_list.Append(v);
  for (uint32_t v : sparse) sparse_list.Append(v);

  std::vector<uint32_t> got;
  PostingList::Cursor a(sparse_list);
  PostingList::Cursor b(dense_list);
  while (!a.AtEnd() && b.SkipTo(a.Value())) {
    if (b.Value() == a.Value()) got.push_back(a.Value());
    a.Next();
    if (a.AtEnd()) break;
  }
  EXPECT_EQ(got, sparse);
}

// ---- FrontCodedPack -------------------------------------------------------

TEST(FrontCodedPackTest, EmptyPack) {
  FrontCodedPackBuilder builder;
  FrontCodedPack pack = builder.Build();
  EXPECT_TRUE(pack.empty());
  EXPECT_EQ(pack.size(), 0u);
}

TEST(FrontCodedPackTest, SingleString) {
  FrontCodedPackBuilder builder;
  EXPECT_EQ(builder.Add("http://example.org/a"), 0u);
  FrontCodedPack pack = builder.Build();
  ASSERT_EQ(pack.size(), 1u);
  EXPECT_EQ(pack.Get(0), "http://example.org/a");
}

TEST(FrontCodedPackTest, EmptyStringMembers) {
  FrontCodedPackBuilder builder;
  builder.Add("");
  builder.Add("");
  builder.Add("a");
  builder.Add("ab");
  FrontCodedPack pack = builder.Build();
  EXPECT_EQ(pack.Get(0), "");
  EXPECT_EQ(pack.Get(1), "");
  EXPECT_EQ(pack.Get(2), "a");
  EXPECT_EQ(pack.Get(3), "ab");
}

TEST(FrontCodedPackTest, AdversarialSharedPrefixes) {
  // Each string is a prefix of the next; then a sudden full reset; then
  // strings that share everything but the last byte.
  std::vector<std::string> strings;
  std::string grow = "urn:lsid:uniprot.org:uniprot:";
  for (int i = 0; i < 40; ++i) {
    grow.push_back(static_cast<char>('A' + (i % 26)));
    strings.push_back(grow);
  }
  strings.push_back("completely-different");
  for (int i = 0; i < 40; ++i) {
    std::string s = "http://purl.uniprot.org/core/annotation#0000";
    s.back() = static_cast<char>('0' + (i % 10));
    s[s.size() - 2] = static_cast<char>('0' + (i / 10));
    strings.push_back(s);
  }
  std::sort(strings.begin(), strings.end());
  strings.erase(std::unique(strings.begin(), strings.end()), strings.end());

  FrontCodedPackBuilder builder;
  for (const std::string& s : strings) builder.Add(s);
  FrontCodedPack pack = builder.Build();
  ASSERT_EQ(pack.size(), strings.size());
  for (uint32_t i = 0; i < pack.size(); ++i) {
    EXPECT_EQ(pack.Get(i), strings[i]) << "index " << i;
  }
}

TEST(FrontCodedPackTest, CompressesSortedUris) {
  std::vector<std::string> strings;
  for (int i = 0; i < 1000; ++i) {
    strings.push_back("http://purl.uniprot.org/core/protein/P" +
                      std::to_string(100000 + i));
  }
  std::sort(strings.begin(), strings.end());
  size_t raw = 0;
  for (const std::string& s : strings) raw += s.size();

  FrontCodedPackBuilder builder;
  for (const std::string& s : strings) builder.Add(s);
  FrontCodedPack pack = builder.Build();
  EXPECT_LT(pack.ApproxBytes(), raw / 2) << "front coding should at least "
                                            "halve sorted shared-prefix URIs";
  for (uint32_t i = 0; i < pack.size(); ++i) {
    ASSERT_EQ(pack.Get(i), strings[i]);
  }
}

TEST(FrontCodedPackTest, FuzzRandomStrings) {
  std::mt19937 rng(1234);
  for (int round = 0; round < 20; ++round) {
    size_t n = rng() % 300;
    std::vector<std::string> strings;
    strings.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      size_t len = rng() % 60;
      std::string s;
      for (size_t j = 0; j < len; ++j) {
        // Small alphabet to force accidental shared prefixes, and
        // embedded NUL bytes to prove binary safety.
        s.push_back(static_cast<char>("ab\0xyz"[rng() % 6]));
      }
      strings.push_back(std::move(s));
    }
    bool sorted = (round % 2) == 0;
    if (sorted) std::sort(strings.begin(), strings.end());

    FrontCodedPackBuilder builder;
    for (const std::string& s : strings) builder.Add(s);
    FrontCodedPack pack = builder.Build();
    ASSERT_EQ(pack.size(), strings.size());
    for (uint32_t i = 0; i < pack.size(); ++i) {
      ASSERT_EQ(pack.Get(i), strings[i])
          << "round " << round << " index " << i;
    }
  }
}

}  // namespace
}  // namespace rdfdb::rdf::codec
