#include "rdf/rdf_store.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "ndm/analysis.h"
#include "rdf/reification.h"
#include "rdf/vocab.h"

namespace rdfdb::rdf {
namespace {

class RdfStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateRdfModel("cia", "ciadata", "triple").ok());
  }

  RdfStore store_;
};

TEST_F(RdfStoreTest, InsertRequiresExistingModel) {
  // "A check is first made to ensure that the RDF graph exists."
  auto result = store_.InsertTriple("nope", "gov:files",
                                    "gov:terrorSuspect", "id:JohnDoe");
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(RdfStoreTest, InsertReturnsAllFiveIds) {
  auto triple = store_.InsertTriple("cia", "gov:files",
                                    "gov:terrorSuspect", "id:JohnDoe");
  ASSERT_TRUE(triple.ok());
  EXPECT_GT(triple->rdf_t_id(), 0);
  EXPECT_GT(triple->rdf_m_id(), 0);
  EXPECT_GT(triple->rdf_s_id(), 0);
  EXPECT_GT(triple->rdf_p_id(), 0);
  EXPECT_GT(triple->rdf_o_id(), 0);
}

TEST_F(RdfStoreTest, RepeatedTripleSharesAllIds) {
  // Figure 6: the repeated triple shares the same RDF_S_ID, RDF_P_ID and
  // RDF_O_ID — and in the same model, even the same RDF_T_ID.
  auto a = store_.InsertTriple("cia", "gov:files", "gov:terrorSuspect",
                               "id:JohnDoe");
  auto b = store_.InsertTriple("cia", "gov:files", "gov:terrorSuspect",
                               "id:JohnDoe");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->rdf_t_id(), b->rdf_t_id());
  EXPECT_EQ(a->rdf_s_id(), b->rdf_s_id());
  EXPECT_EQ(a->rdf_p_id(), b->rdf_p_id());
  EXPECT_EQ(a->rdf_o_id(), b->rdf_o_id());
}

TEST_F(RdfStoreTest, CrossModelValueSharing) {
  // Figure 6: CIA and DHS rows for the same triple share VALUE_IDs but
  // have different RDF_T_ID and RDF_M_ID.
  ASSERT_TRUE(store_.CreateRdfModel("dhs", "dhsdata", "triple").ok());
  auto cia = store_.InsertTriple("cia", "gov:files", "gov:terrorSuspect",
                                 "id:JohnDoe");
  auto dhs = store_.InsertTriple("dhs", "gov:files", "gov:terrorSuspect",
                                 "id:JohnDoe");
  ASSERT_TRUE(cia.ok());
  ASSERT_TRUE(dhs.ok());
  EXPECT_EQ(cia->rdf_s_id(), dhs->rdf_s_id());
  EXPECT_EQ(cia->rdf_p_id(), dhs->rdf_p_id());
  EXPECT_EQ(cia->rdf_o_id(), dhs->rdf_o_id());
  EXPECT_NE(cia->rdf_t_id(), dhs->rdf_t_id());
  EXPECT_NE(cia->rdf_m_id(), dhs->rdf_m_id());
}

TEST_F(RdfStoreTest, MemberFunctionsResolveText) {
  auto triple = store_.InsertTriple("cia", "gov:files",
                                    "gov:terrorSuspect", "id:JohnDoe");
  ASSERT_TRUE(triple.ok());
  EXPECT_EQ(*triple->GetSubject(), "gov:files");
  EXPECT_EQ(*triple->GetProperty(), "gov:terrorSuspect");
  EXPECT_EQ(*triple->GetObject(), "id:JohnDoe");
  auto full = triple->GetTriple();
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->subject, "gov:files");
  EXPECT_EQ(full->ToString(),
            "(gov:files, gov:terrorSuspect, id:JohnDoe)");
}

TEST_F(RdfStoreTest, GetObjectReturnsLongLiteral) {
  std::string big(kLongLiteralThreshold + 100, 'L');
  auto triple =
      store_.InsertTriple("cia", "gov:doc", "gov:body", "\"" + big + "\"");
  ASSERT_TRUE(triple.ok());
  EXPECT_EQ(*triple->GetObject(), big);
}

TEST_F(RdfStoreTest, IsTriple) {
  ASSERT_TRUE(store_.InsertTriple("cia", "gov:files", "gov:terrorSuspect",
                                  "id:JohnDoe")
                  .ok());
  EXPECT_TRUE(*store_.IsTriple("cia", "gov:files", "gov:terrorSuspect",
                               "id:JohnDoe"));
  EXPECT_FALSE(*store_.IsTriple("cia", "gov:files", "gov:terrorSuspect",
                                "id:Nobody"));
  EXPECT_FALSE(*store_.IsTriple("cia", "id:JohnDoe", "gov:terrorSuspect",
                                "gov:files"));
}

TEST_F(RdfStoreTest, ReifyStoresSingleStreamlinedTriple) {
  // §5: one new triple per reification — <DBUri, rdf:type, rdf:Statement>.
  auto base = store_.InsertTriple("cia", "gov:files", "gov:terrorSuspect",
                                  "id:JohnDoe");
  ASSERT_TRUE(base.ok());
  size_t before = store_.links().TripleCount(base->rdf_m_id());
  auto reif = store_.ReifyTriple("cia", base->rdf_t_id());
  ASSERT_TRUE(reif.ok());
  EXPECT_EQ(store_.links().TripleCount(base->rdf_m_id()), before + 1);

  // The stored triple's subject is the DBUri; REIF_LINK is Y.
  EXPECT_EQ(*reif->GetSubject(), DBUriForLink(base->rdf_t_id()));
  EXPECT_EQ(*reif->GetProperty(), std::string(kRdfType));
  EXPECT_EQ(*reif->GetObject(), std::string(kRdfStatement));
  auto row = store_.links().Get(reif->rdf_t_id());
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(row->reif_link);
}

TEST_F(RdfStoreTest, ReifyUnknownTripleFails) {
  EXPECT_TRUE(store_.ReifyTriple("cia", 424242).status().IsNotFound());
}

TEST_F(RdfStoreTest, IsReified) {
  auto base = store_.InsertTriple("cia", "gov:files", "gov:terrorSuspect",
                                  "id:JohnDoe");
  ASSERT_TRUE(base.ok());
  EXPECT_FALSE(*store_.IsReified("cia", "gov:files", "gov:terrorSuspect",
                                 "id:JohnDoe"));
  ASSERT_TRUE(store_.ReifyTriple("cia", base->rdf_t_id()).ok());
  EXPECT_TRUE(*store_.IsReified("cia", "gov:files", "gov:terrorSuspect",
                                "id:JohnDoe"));
  // Unknown triple: false, not an error.
  EXPECT_FALSE(*store_.IsReified("cia", "gov:files", "gov:terrorSuspect",
                                 "id:Ghost"));
}

TEST_F(RdfStoreTest, AssertAboutReifiesOnDemand) {
  // §5.1: MI5 said <gov:files, gov:terrorSuspect, id:JohnDoe>.
  auto base = store_.InsertTriple("cia", "gov:files", "gov:terrorSuspect",
                                  "id:JohnDoe");
  ASSERT_TRUE(base.ok());
  auto assertion = store_.AssertAboutTriple("cia", "gov:MI5", "gov:source",
                                            base->rdf_t_id());
  ASSERT_TRUE(assertion.ok());
  // The assertion's object is the DBUri of the base triple.
  EXPECT_EQ(*assertion->GetObject(), DBUriForLink(base->rdf_t_id()));
  // Reification happened implicitly.
  EXPECT_TRUE(*store_.IsReified("cia", "gov:files", "gov:terrorSuspect",
                                "id:JohnDoe"));
  // A second assertion reuses the existing reification: total triples =
  // base + reification + 2 assertions.
  ASSERT_TRUE(store_.AssertAboutTriple("cia", "gov:CIA", "gov:source",
                                       base->rdf_t_id())
                  .ok());
  EXPECT_EQ(store_.links().TripleCount(base->rdf_m_id()), 4u);
}

TEST_F(RdfStoreTest, AssertImpliedMarksContextI) {
  // §5.2: "Interpol said that JohnDoeJr is a terrorSuspect" — the base
  // triple is an implied statement, not a fact.
  auto assertion = store_.AssertImplied("cia", "gov:Interpol", "gov:source",
                                        "gov:files", "gov:terrorSuspect",
                                        "id:JohnDoeJr");
  ASSERT_TRUE(assertion.ok());
  auto base_row = store_.links().Get(
      LinkIdFromDBUri(*assertion->GetObject()).value());
  ASSERT_TRUE(base_row.ok());
  EXPECT_EQ(base_row->context, TripleContext::kImplied);
  EXPECT_TRUE(*store_.IsReified("cia", "gov:files", "gov:terrorSuspect",
                                "id:JohnDoeJr"));

  // "If the triple is subsequently entered into the database as a fact,
  // the CONTEXT for this triple is changed from I to D."
  ASSERT_TRUE(store_.InsertTriple("cia", "gov:files", "gov:terrorSuspect",
                                  "id:JohnDoeJr")
                  .ok());
  auto upgraded = store_.links().Get(base_row->link_id);
  EXPECT_EQ(upgraded->context, TripleContext::kDirect);
}

TEST_F(RdfStoreTest, AssertImpliedOnExistingFactKeepsDirect) {
  ASSERT_TRUE(store_.InsertTriple("cia", "gov:files", "gov:terrorSuspect",
                                  "id:JohnDoe")
                  .ok());
  auto assertion = store_.AssertImplied("cia", "gov:Interpol", "gov:source",
                                        "gov:files", "gov:terrorSuspect",
                                        "id:JohnDoe");
  ASSERT_TRUE(assertion.ok());
  auto base_row = store_.links().Get(
      LinkIdFromDBUri(*assertion->GetObject()).value());
  EXPECT_EQ(base_row->context, TripleContext::kDirect);
}

TEST_F(RdfStoreTest, ReificationStorageIsOneQuarterOfQuad) {
  // §7.3: "Reification in Oracle requires only 25% of the storage
  // required by naive implementations, which store the entire
  // reification quad." One row vs four.
  auto base = store_.InsertTriple("cia", "gov:files", "gov:terrorSuspect",
                                  "id:JohnDoe");
  size_t before = store_.links().TotalTripleCount();
  ASSERT_TRUE(store_.ReifyTriple("cia", base->rdf_t_id()).ok());
  size_t streamlined_rows = store_.links().TotalTripleCount() - before;
  EXPECT_EQ(streamlined_rows, 1u);
  EXPECT_EQ(streamlined_rows * 4, 4u);  // naive quad would be 4 rows
}

TEST_F(RdfStoreTest, DeleteTriple) {
  ASSERT_TRUE(store_.InsertTriple("cia", "gov:files", "gov:terrorSuspect",
                                  "id:JohnDoe")
                  .ok());
  ASSERT_TRUE(store_.DeleteTriple("cia", "gov:files", "gov:terrorSuspect",
                                  "id:JohnDoe")
                  .ok());
  EXPECT_FALSE(*store_.IsTriple("cia", "gov:files", "gov:terrorSuspect",
                                "id:JohnDoe"));
  EXPECT_TRUE(store_.DeleteTriple("cia", "gov:files", "gov:terrorSuspect",
                                  "id:Ghost")
                  .IsNotFound());
}

TEST_F(RdfStoreTest, CanonicalObjectSharesCanonId) {
  auto raw = store_.InsertTriple(
      "cia", "gov:x", "gov:age",
      "\"+025\"^^<http://www.w3.org/2001/XMLSchema#int>");
  ASSERT_TRUE(raw.ok());
  auto row = store_.links().Get(raw->rdf_t_id());
  ASSERT_TRUE(row.ok());
  // END != CANON_END because "+025" is not canonical.
  EXPECT_NE(row->end_node_id, row->canon_end_node_id);
  auto canon_term = store_.TermForValueId(row->canon_end_node_id);
  EXPECT_EQ(canon_term->lexical(), "25");
}

TEST_F(RdfStoreTest, BlankNodeSubjectsWork) {
  auto triple = store_.InsertTriple("cia", "_:b1", "gov:knows",
                                    "id:JohnDoe");
  ASSERT_TRUE(triple.ok());
  EXPECT_TRUE(*store_.IsTriple("cia", "_:b1", "gov:knows", "id:JohnDoe"));
}

TEST_F(RdfStoreTest, NetworkExposedForAnalysis) {
  // §1: "allowing RDF data to be managed as objects and analyzed as
  // networks."
  auto a = store_.InsertTriple("cia", "id:A", "gov:knows", "id:B");
  ASSERT_TRUE(store_.InsertTriple("cia", "id:B", "gov:knows", "id:C").ok());
  ASSERT_TRUE(a.ok());
  ndm::PathResult path =
      ndm::ShortestPath(store_.network(), a->rdf_s_id(),
                        *store_.values().Lookup(Term::Uri("id:C")));
  ASSERT_TRUE(path.found);
  EXPECT_EQ(path.links.size(), 2u);
}

TEST_F(RdfStoreTest, DropModelRemovesTriples) {
  ASSERT_TRUE(store_.InsertTriple("cia", "gov:a", "gov:b", "gov:c").ok());
  ASSERT_TRUE(store_.DropRdfModel("cia").ok());
  EXPECT_TRUE(store_.GetModelId("cia").status().IsNotFound());
  EXPECT_EQ(store_.links().TotalTripleCount(), 0u);
}

TEST_F(RdfStoreTest, SaveAndOpenRoundTrip) {
  auto base = store_.InsertTriple("cia", "gov:files", "gov:terrorSuspect",
                                  "id:JohnDoe");
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(store_.ReifyTriple("cia", base->rdf_t_id()).ok());
  ASSERT_TRUE(store_.InsertTriple("cia", "_:b1", "gov:knows", "id:JohnDoe")
                  .ok());

  std::string path = ::testing::TempDir() + "/rdfdb_store_test.bin";
  ASSERT_TRUE(store_.Save(path).ok());
  auto reopened = RdfStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  RdfStore& loaded = **reopened;

  EXPECT_TRUE(*loaded.IsTriple("cia", "gov:files", "gov:terrorSuspect",
                               "id:JohnDoe"));
  EXPECT_TRUE(*loaded.IsReified("cia", "gov:files", "gov:terrorSuspect",
                                "id:JohnDoe"));
  EXPECT_EQ(loaded.links().TotalTripleCount(),
            store_.links().TotalTripleCount());
  EXPECT_EQ(loaded.network().link_count(),
            store_.network().link_count());
  // Pattern scans are served from the id-native quad cache, which must
  // be rebuilt after the raw-row snapshot copy — point lookups passing
  // while wildcard scans return nothing is exactly the regression this
  // guards against.
  {
    size_t matched = 0;
    loaded.links().MatchEachIds(
        *loaded.GetModelId("cia"), std::nullopt, std::nullopt, std::nullopt,
        [&](ValueId, ValueId, ValueId, ValueId) {
          ++matched;
          return true;
        });
    EXPECT_EQ(matched, loaded.links().TotalTripleCount());
  }
  // New inserts continue from fresh sequence values (no id collisions).
  auto fresh = loaded.InsertTriple("cia", "gov:new", "gov:p", "gov:o");
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT(fresh->rdf_t_id(), base->rdf_t_id());
  // Views were rebuilt.
  EXPECT_NE(loaded.database().GetView("MDSYS", "RDFM_CIA"), nullptr);
  std::remove(path.c_str());
}

TEST_F(RdfStoreTest, InvalidTermsRejected) {
  EXPECT_FALSE(store_.InsertTriple("cia", "\"literal\"", "gov:p", "o").ok());
  EXPECT_FALSE(store_.InsertTriple("cia", "gov:s", "_:blank", "o").ok());
  EXPECT_FALSE(store_.InsertTriple("cia", "", "gov:p", "o").ok());
}

}  // namespace
}  // namespace rdfdb::rdf
