#include "common/string_util.h"

#include <gtest/gtest.h>

namespace rdfdb {
namespace {

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_TRUE(StartsWith("hello", "hello"));
  EXPECT_FALSE(StartsWith("hello", "hello!"));
  EXPECT_FALSE(StartsWith("", "x"));
}

TEST(StringUtilTest, EndsWith) {
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_TRUE(EndsWith("hello", ""));
  EXPECT_FALSE(EndsWith("hello", "he"));
  EXPECT_FALSE(EndsWith("o", "lo"));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("nochange"), "nochange");
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a   b\tc \n"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"only"}, ","), "only");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC1!"), "abc1!");
  EXPECT_EQ(ToUpper("AbC1!"), "ABC1!");
  EXPECT_EQ(ToUpper(""), "");
}

TEST(StringUtilTest, ParseInt64Valid) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-17", &v));
  EXPECT_EQ(v, -17);
  EXPECT_TRUE(ParseInt64("+25", &v));
  EXPECT_EQ(v, 25);
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
}

TEST(StringUtilTest, ParseInt64Invalid) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("x12", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64(" 5", &v));
}

TEST(StringUtilTest, ParseDoubleValid) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_TRUE(ParseDouble("7", &v));
  EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(StringUtilTest, ParseDoubleInvalid) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
}

}  // namespace
}  // namespace rdfdb
