#include "obs/stats_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "obs/active_ops.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/resource_tracker.h"
#include "obs/slow_query_log.h"
#include "obs/span_timeline.h"
#include "query/match.h"
#include "rdf/rdf_store.h"

namespace rdfdb::obs {
namespace {

class StatsServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateRdfModel("m", "mdata", "triple").ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(store_
                      .InsertTriple("m", "<urn:s" + std::to_string(i) + ">",
                                    "<urn:p>", "\"v\"")
                      .ok());
    }
  }

  StatsServer::Sources FullSources() {
    StatsServer::Sources sources;
    sources.registry = &store_.metrics_registry();
    sources.slow_queries = &slow_;
    sources.timeline = &timeline_;
    return sources;
  }

  rdf::RdfStore store_;
  SlowQueryLog slow_{/*threshold_ns=*/0};
  Timeline timeline_;
};

TEST_F(StatsServerTest, HandleRoutesAllEndpoints) {
  // Drive one traced query through the store so every surface has data.
  store_.set_slow_query_log(&slow_);
  store_.set_timeline(&timeline_);
  query::MatchOptions options;
  ASSERT_TRUE(query::SdoRdfMatch(&store_, nullptr, "(?s <urn:p> ?o)",
                                 {"m"}, {}, {}, "", options)
                  .ok());

  StatsServer server(FullSources());

  StatsServer::Response health = server.Handle("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  StatsServer::Response metrics = server.Handle("/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(metrics.body.find("rdfdb_link_inserts_total 8"),
            std::string::npos);

  StatsServer::Response varz = server.Handle("/varz");
  EXPECT_EQ(varz.status, 200);
  EXPECT_NE(varz.content_type.find("application/json"), std::string::npos);
  EXPECT_NE(varz.body.find("\"uptime_seconds\""), std::string::npos);
  EXPECT_NE(varz.body.find("\"metrics\""), std::string::npos);
  EXPECT_NE(varz.body.find("\"slow_queries_captured\""), std::string::npos);

  StatsServer::Response slow = server.Handle("/slow");
  EXPECT_EQ(slow.status, 200);
  EXPECT_NE(slow.body.find("(?s <urn:p> ?o)"), std::string::npos);

  StatsServer::Response trace = server.Handle("/timeline");
  EXPECT_EQ(trace.status, 200);
  EXPECT_NE(trace.body.find("\"traceEvents\""), std::string::npos);

  StatsServer::Response missing = server.Handle("/nope");
  EXPECT_EQ(missing.status, 404);
}

TEST_F(StatsServerTest, DetachedSurfacesReturn404) {
  StatsServer::Sources sources;
  sources.registry = &store_.metrics_registry();
  StatsServer server(sources);
  EXPECT_EQ(server.Handle("/slow").status, 404);
  EXPECT_EQ(server.Handle("/timeline").status, 404);
  EXPECT_EQ(server.Handle("/metrics").status, 200);
}

TEST_F(StatsServerTest, VarzRatesReflectActivityBetweenScrapes) {
  StatsServer server(FullSources());
  (void)server.Handle("/varz");  // establish the previous snapshot
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  query::MatchOptions options;
  ASSERT_TRUE(query::SdoRdfMatch(&store_, nullptr, "(?s <urn:p> ?o)",
                                 {"m"}, {}, {}, "", options)
                  .ok());
  StatsServer::Response varz = server.Handle("/varz");
  EXPECT_NE(varz.body.find("\"rdfdb_query_total\""), std::string::npos)
      << varz.body;
}

// Real sockets: an ephemeral-port listener must answer a GET over
// loopback with a well-formed HTTP response.
TEST_F(StatsServerTest, ServesHealthzOverLoopback) {
  StatsServer server(FullSources());
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_NE(server.port(), 0);
  std::thread serving([&] { server.ServeOne(); });

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char request[] = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(fd, request, sizeof(request) - 1, 0),
            static_cast<ssize_t>(sizeof(request) - 1));
  std::string response;
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  serving.join();
  server.Stop();

  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_NE(response.find("ok\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length:"), std::string::npos);
}

TEST_F(StatsServerTest, QueryStringIsStrippedFromRouting) {
  StatsServer server(FullSources());
  StatsServer::Response resp = server.Handle("/metrics?format=prometheus");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("rdfdb_link_inserts_total"), std::string::npos);
  EXPECT_EQ(server.Handle("/nope?x=1").status, 404);
}

TEST_F(StatsServerTest, ProfilezCapturesCollapsedStacksUnderLoad) {
  StatsServer server(FullSources());
  std::atomic<bool> stop{false};
  std::thread burner([&] {
    volatile uint64_t acc = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 4096; ++i) acc = acc + static_cast<uint64_t>(i);
    }
  });
  StatsServer::Response resp = server.Handle("/profilez?seconds=0.3");
  stop.store(true, std::memory_order_relaxed);
  burner.join();

  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.content_type.find("text/plain"), std::string::npos);
  ASSERT_FALSE(resp.body.empty());
  // Every line is flamegraph collapsed format: "frame(;frame)* count".
  std::istringstream in(resp.body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    for (size_t i = space + 1; i < line.size(); ++i) {
      EXPECT_TRUE(std::isdigit(line[i])) << line;
    }
  }
}

TEST_F(StatsServerTest, AlloczReportsLedgerAndScopes) {
  StatsServer server(FullSources());
  {
    ResourceScope scope("statsz_test_scope");
    delete[] new char[1024];
  }
  StatsServer::Response resp = server.Handle("/allocz");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.content_type.find("application/json"), std::string::npos);
  EXPECT_NE(resp.body.find("\"heap_live_bytes\""), std::string::npos)
      << resp.body;
  EXPECT_NE(resp.body.find("\"scopes\""), std::string::npos);
  EXPECT_NE(resp.body.find("statsz_test_scope"), std::string::npos);
}

TEST_F(StatsServerTest, HealthzDegradesOnEpochLagGauge) {
  MetricsRegistry registry;
  Gauge* lag = registry.RegisterGauge("rdfdb_oldest_pinned_epoch_lag",
                                      "test epoch lag");
  StatsServer::Sources sources;
  sources.registry = &registry;
  sources.unhealthy_epoch_lag = 100;
  StatsServer server(sources);

  EXPECT_EQ(server.Handle("/healthz").status, 200);
  lag->Set(5000);
  StatsServer::Response resp = server.Handle("/healthz");
  EXPECT_EQ(resp.status, 503);
  EXPECT_NE(resp.body.find("degraded:"), std::string::npos) << resp.body;
  EXPECT_NE(resp.body.find("epoch_lag=5000"), std::string::npos) << resp.body;
  lag->Set(0);
  EXPECT_EQ(server.Handle("/healthz").status, 200);
}

TEST_F(StatsServerTest, HealthzDegradesOnRetainedVersionAge) {
  MetricsRegistry registry;
  Gauge* age = registry.RegisterGauge("rdfdb_version_retention_age_seconds",
                                      "test retention age");
  StatsServer::Sources sources;
  sources.registry = &registry;
  StatsServer server(sources);

  age->Set(30);  // below the default 60 s threshold
  EXPECT_EQ(server.Handle("/healthz").status, 200);
  age->Set(120);
  StatsServer::Response resp = server.Handle("/healthz");
  EXPECT_EQ(resp.status, 503);
  EXPECT_NE(resp.body.find("retention_age_seconds=120"), std::string::npos)
      << resp.body;

  // A raised threshold makes the same reading healthy.
  StatsServer::Sources relaxed;
  relaxed.registry = &registry;
  relaxed.unhealthy_retention_age_seconds = 1000.0;
  StatsServer lenient(relaxed);
  EXPECT_EQ(lenient.Handle("/healthz").status, 200);
}

TEST_F(StatsServerTest, HealthzCountsOnlyNewEventLogDrops) {
  std::ostringstream out;
  EventLog::Options options;
  options.sink = &out;
  options.capacity = 1;  // one slot: a burst overwhelms the drainer
  auto log = EventLog::Open(std::move(options));
  ASSERT_TRUE(log.ok());

  auto force_drops = [&] {
    const uint64_t before = (*log)->dropped();
    for (int i = 0; i < 1000000 && (*log)->dropped() == before; ++i) {
      (*log)->Append("test", "spam");
    }
    return (*log)->dropped() > before;
  };
  // Drops that happened before the server existed are history.
  ASSERT_TRUE(force_drops());

  StatsServer::Sources sources;
  sources.registry = &store_.metrics_registry();
  sources.events = log->get();
  StatsServer server(sources);
  EXPECT_EQ(server.Handle("/healthz").status, 200);

  ASSERT_TRUE(force_drops());
  StatsServer::Response resp = server.Handle("/healthz");
  EXPECT_EQ(resp.status, 503);
  EXPECT_NE(resp.body.find("event_log_drops="), std::string::npos)
      << resp.body;
  // The check consumed the watermark: with no further drops, healthy.
  EXPECT_EQ(server.Handle("/healthz").status, 200);
}

TEST_F(StatsServerTest, ActivityzListsRegisteredOperations) {
  StatsServer server(FullSources());
  ActiveOpGuard guard(OpKind::kBulkLoad, "statsz bulk op");
  StatsServer::Response resp = server.Handle("/activityz");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.content_type.find("application/json"), std::string::npos);
  EXPECT_NE(resp.body.find("\"bulkload\""), std::string::npos) << resp.body;
  EXPECT_NE(resp.body.find("statsz bulk op"), std::string::npos) << resp.body;
  EXPECT_NE(resp.body.find("\"registered_total\""), std::string::npos);
}

TEST_F(StatsServerTest, HistoryzRequiresAnAttachedRecorder) {
  StatsServer without(FullSources());
  EXPECT_EQ(without.Handle("/historyz").status, 404);

  FlightRecorder::Options options;
  options.registry = &store_.metrics_registry();
  options.sample_interval_ms = 60'000;  // driven manually below
  auto recorder = FlightRecorder::Start(std::move(options));
  ASSERT_TRUE(recorder.ok());
  (*recorder)->SampleNow();

  StatsServer::Sources sources = FullSources();
  sources.recorder = recorder->get();
  StatsServer server(sources);
  StatsServer::Response resp = server.Handle("/historyz");
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"interval_ms\":"), std::string::npos)
      << resp.body;
  EXPECT_NE(resp.body.find("\"t_unix_ms\""), std::string::npos);
}

// A client that connects and then never finishes its request head must
// be dropped by the per-connection receive timeout instead of wedging
// the single-threaded serve loop for every scraper behind it.
TEST_F(StatsServerTest, StallingClientTimesOutWithoutBlockingOthers) {
  StatsServer::Sources sources = FullSources();
  sources.io_timeout_ms = 100;
  StatsServer server(sources);
  ASSERT_TRUE(server.Start(0).ok());
  // Two accepts: the staller first, then the well-behaved client.
  std::thread serving([&] {
    server.ServeOne();
    server.ServeOne();
  });

  auto connect_client = [&]() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  };

  const auto start = std::chrono::steady_clock::now();
  const int staller = connect_client();
  // A partial request line with no CRLF, then silence.
  ASSERT_EQ(::send(staller, "GET /he", 7, 0), 7);

  // The healthy client queued behind the staller still gets served.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const int fd = connect_client();
  const char request[] = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::send(fd, request, sizeof(request) - 1, 0),
            static_cast<ssize_t>(sizeof(request) - 1));
  std::string response;
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  // Bounded by the 100 ms timeout, not the default 5 s (generous
  // margin for slow CI).
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            3000);

  // The staller was closed without any response bytes.
  std::string stalled;
  while ((n = ::recv(staller, buf, sizeof(buf), 0)) > 0) {
    stalled.append(buf, static_cast<size_t>(n));
  }
  ::close(staller);
  EXPECT_TRUE(stalled.empty()) << stalled;

  serving.join();
  server.Stop();
}

TEST_F(StatsServerTest, RefreshHookRunsBeforeGaugeEndpoints) {
  int calls = 0;
  StatsServer::Sources sources;
  sources.registry = &store_.metrics_registry();
  sources.refresh = [&calls] { ++calls; };
  StatsServer server(sources);

  (void)server.Handle("/metrics");
  EXPECT_EQ(calls, 1);
  (void)server.Handle("/healthz");
  EXPECT_EQ(calls, 2);
  (void)server.Handle("/varz");
  EXPECT_EQ(calls, 3);
  // Endpoints that don't read derived gauges skip the refresh.
  (void)server.Handle("/allocz");
  EXPECT_EQ(calls, 3);
}

namespace {

// Raw byte-level exchange against a served StatsServer (the hardening
// paths only exist on the socket side of ServeOne).
std::string RawExchange(uint16_t port, const std::string& bytes) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

}  // namespace

TEST_F(StatsServerTest, OversizedRequestHeadGets413) {
  StatsServer server(FullSources());
  ASSERT_TRUE(server.Start(0).ok());
  std::thread serving([&] { server.ServeOne(); });
  // A request line that never terminates within the cap: the server
  // must answer 413 instead of buffering without limit.
  std::string huge = "GET /";
  huge.append(32 * 1024, 'a');  // over the 16 KiB cap, no CRLF yet
  huge += " HTTP/1.1\r\n\r\n";
  std::string response = RawExchange(server.port(), huge);
  serving.join();
  server.Stop();
  EXPECT_NE(response.find("HTTP/1.1 413"), std::string::npos)
      << response.substr(0, 120);
}

TEST_F(StatsServerTest, MalformedRequestLineGets400) {
  StatsServer server(FullSources());
  ASSERT_TRUE(server.Start(0).ok());
  std::thread serving([&] { server.ServeOne(); });
  std::string response = RawExchange(server.port(), "GET nope\r\n\r\n");
  serving.join();
  server.Stop();
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
}

TEST_F(StatsServerTest, ExtraHealthHookFeedsHealthz) {
  StatsServer::Sources sources;
  sources.registry = &store_.metrics_registry();
  std::string signal;
  sources.extra_health = [&signal] { return signal; };
  StatsServer server(sources);

  EXPECT_EQ(server.Handle("/healthz").status, 200);
  signal = "shed_fraction=0.80 queue_depth=64";
  StatsServer::Response resp = server.Handle("/healthz");
  EXPECT_EQ(resp.status, 503);
  EXPECT_NE(resp.body.find("shed_fraction=0.80"), std::string::npos)
      << resp.body;
  signal.clear();
  EXPECT_EQ(server.Handle("/healthz").status, 200);
}

}  // namespace
}  // namespace rdfdb::obs
