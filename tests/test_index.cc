#include "storage/index.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace rdfdb::storage {
namespace {

ValueKey K(int64_t v) { return ValueKey{Value::Int64(v)}; }

class IndexKindTest : public ::testing::TestWithParam<IndexKind> {
 protected:
  std::unique_ptr<Index> Make(bool unique) {
    return MakeIndex(GetParam(), "idx", KeyExtractor::Columns({0}), unique);
  }
};

TEST_P(IndexKindTest, InsertAndFind) {
  auto index = Make(false);
  ASSERT_TRUE(index->Insert(K(1), 10).ok());
  ASSERT_TRUE(index->Insert(K(1), 11).ok());
  ASSERT_TRUE(index->Insert(K(2), 20).ok());
  std::vector<RowId> hits = index->Find(K(1));
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<RowId>{10, 11}));
  EXPECT_EQ(index->Find(K(2)), std::vector<RowId>{20});
  EXPECT_TRUE(index->Find(K(3)).empty());
  EXPECT_EQ(index->entry_count(), 3u);
}

TEST_P(IndexKindTest, UniqueViolation) {
  auto index = Make(true);
  ASSERT_TRUE(index->Insert(K(1), 10).ok());
  EXPECT_TRUE(index->Insert(K(1), 11).IsAlreadyExists());
  EXPECT_EQ(index->entry_count(), 1u);
}

TEST_P(IndexKindTest, Erase) {
  auto index = Make(false);
  ASSERT_TRUE(index->Insert(K(1), 10).ok());
  ASSERT_TRUE(index->Insert(K(1), 11).ok());
  index->Erase(K(1), 10);
  EXPECT_EQ(index->Find(K(1)), std::vector<RowId>{11});
  EXPECT_EQ(index->entry_count(), 1u);
  index->Erase(K(1), 11);
  EXPECT_TRUE(index->Find(K(1)).empty());
  // Erasing a missing entry is a no-op.
  index->Erase(K(1), 99);
  index->Erase(K(42), 1);
  EXPECT_EQ(index->entry_count(), 0u);
}

TEST_P(IndexKindTest, InsertRowUsesExtractor) {
  auto index = Make(false);
  Row row{Value::Int64(7), Value::String("x")};
  ASSERT_TRUE(index->InsertRow(row, 3).ok());
  EXPECT_EQ(index->Find(K(7)), std::vector<RowId>{3});
  index->EraseRow(row, 3);
  EXPECT_TRUE(index->Find(K(7)).empty());
}

TEST_P(IndexKindTest, ApproxBytesGrows) {
  auto index = Make(false);
  size_t empty = index->ApproxBytes();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(index->Insert(K(i), i).ok());
  }
  EXPECT_GT(index->ApproxBytes(), empty);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, IndexKindTest,
                         ::testing::Values(IndexKind::kHash,
                                           IndexKind::kOrdered),
                         [](const auto& info) {
                           return info.param == IndexKind::kHash ? "Hash"
                                                                 : "Ordered";
                         });

TEST(OrderedIndexTest, RangeScan) {
  OrderedIndex index("rng", KeyExtractor::Columns({0}), false);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(index.Insert(K(i), 100 + i).ok());
  }
  std::vector<RowId> hits = index.FindRange(K(3), K(6));
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<RowId>{103, 104, 105, 106}));
  EXPECT_TRUE(index.FindRange(K(20), K(30)).empty());
}

TEST(OrderedIndexTest, RangeScanInclusiveBounds) {
  OrderedIndex index("rng", KeyExtractor::Columns({0}), false);
  ASSERT_TRUE(index.Insert(K(5), 1).ok());
  EXPECT_EQ(index.FindRange(K(5), K(5)), std::vector<RowId>{1});
}

TEST(KeyExtractorTest, ColumnsExtractsInOrder) {
  KeyExtractor e = KeyExtractor::Columns({2, 0});
  Row row{Value::Int64(1), Value::String("b"), Value::String("c")};
  ValueKey key = e.Extract(row);
  ASSERT_EQ(key.size(), 2u);
  EXPECT_EQ(key[0].as_string(), "c");
  EXPECT_EQ(key[1].as_int64(), 1);
}

TEST(KeyExtractorTest, MissingColumnYieldsNull) {
  KeyExtractor e = KeyExtractor::Columns({5});
  Row row{Value::Int64(1)};
  ValueKey key = e.Extract(row);
  ASSERT_EQ(key.size(), 1u);
  EXPECT_TRUE(key[0].is_null());
}

TEST(KeyExtractorTest, FunctionBasedIndexKey) {
  // Models Oracle's function-based index: key derived from a computation.
  KeyExtractor e = KeyExtractor::Function(
      [](const Row& row) {
        return ValueKey{Value::Int64(row[0].as_int64() * 2)};
      },
      "double(col0)");
  Row row{Value::Int64(21)};
  EXPECT_EQ(e.Extract(row)[0].as_int64(), 42);
  EXPECT_EQ(e.description(), "double(col0)");
}

TEST(KeyExtractorTest, ColumnsDescription) {
  EXPECT_EQ(KeyExtractor::Columns({1, 3}).description(), "columns(1,3)");
}

}  // namespace
}  // namespace rdfdb::storage
