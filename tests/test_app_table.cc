#include "rdf/app_table.h"

#include <gtest/gtest.h>

namespace rdfdb::rdf {
namespace {

class AppTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateRdfModel("cia", "ciadata", "triple").ok());
    auto table = ApplicationTable::Create(&store_, "APP", "ciadata");
    ASSERT_TRUE(table.ok());
    table_ = std::make_unique<ApplicationTable>(*table);
  }

  SdoRdfTripleS Insert(int64_t id, const std::string& s,
                       const std::string& p, const std::string& o) {
    auto triple = store_.InsertTriple("cia", s, p, o);
    EXPECT_TRUE(triple.ok());
    EXPECT_TRUE(table_->Insert(id, *triple).ok());
    return *triple;
  }

  RdfStore store_;
  std::unique_ptr<ApplicationTable> table_;
};

TEST_F(AppTableTest, InsertAndScan) {
  Insert(1, "gov:files", "gov:terrorSuspect", "id:JohnDoe");
  Insert(2, "gov:files", "gov:terrorSuspect", "id:JaneDoe");
  EXPECT_EQ(table_->row_count(), 2u);
  std::vector<int64_t> ids;
  table_->Scan([&](int64_t id, const SdoRdfTripleS& triple) {
    ids.push_back(id);
    EXPECT_TRUE(triple.valid());
    return true;
  });
  EXPECT_EQ(ids, (std::vector<int64_t>{1, 2}));
}

TEST_F(AppTableTest, FindBySubjectWithoutIndexScans) {
  Insert(1, "gov:files", "gov:terrorSuspect", "id:JohnDoe");
  Insert(2, "id:JimDoe", "gov:terrorAction", "bombing");
  EXPECT_FALSE(table_->HasSubjectIndex());
  auto hits = table_->FindBySubject("gov:files");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(*hits[0].GetObject(), "id:JohnDoe");
  EXPECT_TRUE(table_->FindBySubject("gov:nothing").empty());
}

TEST_F(AppTableTest, FunctionBasedSubjectIndex) {
  // §7.2: CREATE INDEX ... ON table (triple.GET_SUBJECT()).
  Insert(1, "gov:files", "gov:terrorSuspect", "id:JohnDoe");
  Insert(2, "gov:files", "gov:terrorSuspect", "id:JaneDoe");
  Insert(3, "id:JimDoe", "gov:terrorAction", "bombing");
  ASSERT_TRUE(table_->CreateSubjectIndex().ok());
  EXPECT_TRUE(table_->HasSubjectIndex());
  auto hits = table_->FindBySubject("gov:files");
  EXPECT_EQ(hits.size(), 2u);
  // Index stays correct for rows inserted after creation.
  Insert(4, "gov:files", "gov:knows", "id:JimDoe");
  EXPECT_EQ(table_->FindBySubject("gov:files").size(), 3u);
}

TEST_F(AppTableTest, IndexedAndScanResultsAgree) {
  for (int i = 0; i < 20; ++i) {
    Insert(i, "id:subj" + std::to_string(i % 4), "gov:p",
           "id:obj" + std::to_string(i));
  }
  auto scanned = table_->FindBySubject("id:subj2");
  ASSERT_TRUE(table_->CreateSubjectIndex().ok());
  auto indexed = table_->FindBySubject("id:subj2");
  ASSERT_EQ(scanned.size(), indexed.size());
  EXPECT_EQ(scanned.size(), 5u);
}

TEST_F(AppTableTest, PropertyAndObjectIndexes) {
  Insert(1, "gov:a", "gov:p1", "id:x");
  Insert(2, "gov:b", "gov:p1", "id:y");
  Insert(3, "gov:c", "gov:p2", "id:x");
  ASSERT_TRUE(table_->CreatePropertyIndex().ok());
  ASSERT_TRUE(table_->CreateObjectIndex().ok());
  EXPECT_EQ(table_->FindByProperty("gov:p1").size(), 2u);
  EXPECT_EQ(table_->FindByObject("id:x").size(), 2u);
  EXPECT_TRUE(table_->FindByObject("id:zzz").empty());
}

TEST_F(AppTableTest, DropIndexFallsBackToScan) {
  Insert(1, "gov:a", "gov:p", "id:x");
  ASSERT_TRUE(table_->CreateSubjectIndex().ok());
  ASSERT_TRUE(table_->DropSubjectIndex().ok());
  EXPECT_FALSE(table_->HasSubjectIndex());
  EXPECT_EQ(table_->FindBySubject("gov:a").size(), 1u);
  EXPECT_TRUE(table_->DropSubjectIndex().IsNotFound());
}

TEST_F(AppTableTest, DuplicateIndexCreationFails) {
  ASSERT_TRUE(table_->CreateSubjectIndex().ok());
  EXPECT_TRUE(table_->CreateSubjectIndex().IsAlreadyExists());
}

TEST_F(AppTableTest, AttachSeesExistingRows) {
  Insert(1, "gov:a", "gov:p", "id:x");
  auto attached = ApplicationTable::Attach(&store_, "APP", "ciadata");
  ASSERT_TRUE(attached.ok());
  EXPECT_EQ(attached->row_count(), 1u);
  EXPECT_TRUE(
      ApplicationTable::Attach(&store_, "APP", "ghost").status().IsNotFound());
}

TEST_F(AppTableTest, RepeatedTripleInMultipleRows) {
  // The paper: "the triple is only stored once in the rdf_link$ table,
  // but may exist in several rows in a user's application table."
  SdoRdfTripleS a = Insert(1, "gov:files", "gov:terrorSuspect",
                           "id:JohnDoe");
  SdoRdfTripleS b = Insert(2, "gov:files", "gov:terrorSuspect",
                           "id:JohnDoe");
  EXPECT_EQ(a.rdf_t_id(), b.rdf_t_id());
  EXPECT_EQ(table_->row_count(), 2u);
  EXPECT_EQ(store_.links().Get(a.rdf_t_id())->cost, 2);
  EXPECT_EQ(table_->FindBySubject("gov:files").size(), 2u);
}

TEST_F(AppTableTest, FindByObjectHandlesLiterals) {
  Insert(1, "id:JimDoe", "gov:terrorAction", "bombing");
  ASSERT_TRUE(table_->CreateObjectIndex().ok());
  EXPECT_EQ(table_->FindByObject("bombing").size(), 1u);
}

}  // namespace
}  // namespace rdfdb::rdf
