// rdfdb_serve end-to-end: admission control (shed 503 + Retry-After),
// deadline enforcement (504 with partial-progress stats), bounded
// request parsing (400/413), the /healthz overload signal, graceful
// drain with no lost acked writes, read-your-writes through the
// snapshot store, and client-abandon cancellation.

#include "server/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "query/match.h"
#include "rdf/bulk_load.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "rdf/snapshot_store.h"
#include "server/admission.h"
#include "server/http.h"

namespace rdfdb::server {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// A two-pattern cross join over `rows` subjects: large enough that a
// single-digit-millisecond deadline reliably fires mid-join.
constexpr size_t kRows = 512;

std::string HeavyQueryTarget() {
  return "/query?q=" +
         PercentEncode("(?a <http://t.example/p> ?x) "
                       "(?b <http://t.example/p> ?y)") +
         "&model=m";
}

std::string CheapQueryTarget() {
  return "/query?q=" + PercentEncode("(?s ?p ?o)") + "&model=m&limit=4";
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateRdfModel("m", "m_app", "triple").ok());
    std::vector<rdf::NTriple> statements;
    for (size_t i = 0; i < kRows; ++i) {
      rdf::NTriple t;
      t.subject = rdf::Term::Uri("http://t.example/s" + std::to_string(i));
      t.predicate = rdf::Term::Uri("http://t.example/p");
      t.object = rdf::Term::PlainLiteral("v" + std::to_string(i));
      statements.push_back(std::move(t));
    }
    ASSERT_TRUE(store_
                    .Apply([&](rdf::RdfStore& live) {
                      return rdf::BulkLoad(&live, "m", statements).status();
                    })
                    .ok());
  }

  std::unique_ptr<RdfServer> StartServer(RdfServerOptions options) {
    options.port = 0;  // ephemeral
    auto server = std::make_unique<RdfServer>(&store_, options);
    EXPECT_TRUE(server->Start().ok());
    EXPECT_NE(server->port(), 0);
    return server;
  }

  Result<HttpClientResponse> Get(
      uint16_t port, const std::string& target,
      const std::vector<std::pair<std::string, std::string>>& headers = {}) {
    return HttpRoundTrip("127.0.0.1", port, "GET", target, headers, "");
  }

  // Raw byte-level request for malformed-input tests; returns the full
  // response text ("" on connect failure).
  std::string Raw(uint16_t port, const std::string& bytes) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return "";
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return "";
    }
    SendAll(fd, bytes);
    ::shutdown(fd, SHUT_WR);
    std::string response;
    char buf[1024];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
      response.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return response;
  }

  rdf::SnapshotRdfStore store_;
};

TEST_F(ServerTest, QueryInsertReifyRoundTrip) {
  auto server = StartServer({});
  auto rows = Get(server->port(), CheapQueryTarget());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->status, 200);
  EXPECT_NE(rows->body.find("\"columns\""), std::string::npos);
  EXPECT_NE(rows->body.find("\"row_count\": 4"), std::string::npos);

  // Read-your-writes: an acked insert is visible to the next query.
  auto ack = HttpRoundTrip(
      "127.0.0.1", server->port(), "POST", "/insert?model=m", {},
      "<http://t.example/new> <http://t.example/q> \"fresh\" .\n");
  ASSERT_TRUE(ack.ok());
  ASSERT_EQ(ack->status, 200) << ack->body;
  EXPECT_NE(ack->body.find("\"inserted\": 1"), std::string::npos);

  auto readback = Get(
      server->port(),
      "/query?q=" + PercentEncode("(?s <http://t.example/q> ?o)") +
          "&model=m");
  ASSERT_TRUE(readback.ok());
  EXPECT_EQ(readback->status, 200);
  EXPECT_NE(readback->body.find("\"row_count\": 1"), std::string::npos)
      << readback->body;
  EXPECT_NE(readback->body.find("fresh"), std::string::npos);
}

TEST_F(ServerTest, StatsSurfaceIsDelegated) {
  auto server = StartServer({});
  auto health = Get(server->port(), "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
  auto metrics = Get(server->port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("rdfdb_server_accepted_total"),
            std::string::npos);
  auto missing = Get(server->port(), "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
}

TEST_F(ServerTest, DeadlineExceededReturns504WithPartialStats) {
  auto server = StartServer({});
  auto resp =
      Get(server->port(), HeavyQueryTarget(), {{"X-Deadline-Ms", "2"}});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 504) << resp->body;
  EXPECT_NE(resp->body.find("\"error\": \"deadline exceeded\""),
            std::string::npos)
      << resp->body;
  // Partial-progress stats from the query trace ride along.
  EXPECT_NE(resp->body.find("\"partial\""), std::string::npos);
  EXPECT_NE(resp->body.find("\"rows_scanned\""), std::string::npos);
  EXPECT_GE(server->metrics().deadline_exceeded->Value(), 1u);
}

TEST_F(ServerTest, ClientDeadlineIsClampedToServerMax) {
  RdfServerOptions options;
  options.max_deadline_ms = 5;  // server-side ceiling
  auto server = StartServer(options);
  // The client asks for a minute; the clamp makes the heavy join fail.
  auto resp = Get(server->port(), HeavyQueryTarget(),
                  {{"X-Deadline-Ms", "60000"}});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 504) << resp->body;
}

TEST_F(ServerTest, ShedWhenAdmissionQueueIsFull) {
  RdfServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.max_deadline_ms = 5000;
  options.default_deadline_ms = 3000;
  auto server = StartServer(options);

  // Occupy the single worker with a heavy query, then stuff the queue.
  std::atomic<int> slow_status{0};
  std::thread slow([&] {
    auto resp = Get(server->port(), HeavyQueryTarget(),
                    {{"X-Deadline-Ms", "3000"}});
    slow_status.store(resp.ok() ? resp->status : -1);
  });
  std::this_thread::sleep_for(milliseconds(100));
  std::thread queued([&] {
    (void)Get(server->port(), HeavyQueryTarget(),
              {{"X-Deadline-Ms", "3000"}});
  });
  std::this_thread::sleep_for(milliseconds(100));

  // Worker busy + queue occupied: this one must be shed immediately.
  const auto t0 = steady_clock::now();
  auto shed = Get(server->port(), CheapQueryTarget());
  const auto elapsed = steady_clock::now() - t0;
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->status, 503) << shed->body;
  EXPECT_NE(shed->body.find("\"error\": \"overloaded\""), std::string::npos);
  EXPECT_EQ(shed->headers.count("retry-after"), 1u);
  // Refusal is immediate — it never waited on the busy worker.
  EXPECT_LT(elapsed, milliseconds(1000));
  EXPECT_GE(server->metrics().shed->Value(), 1u);

  slow.join();
  queued.join();
  EXPECT_TRUE(slow_status.load() == 200 || slow_status.load() == 504);
}

TEST_F(ServerTest, MalformedRequestGets400) {
  auto server = StartServer({});
  std::string resp = Raw(server->port(), "GET\r\n\r\n");
  EXPECT_NE(resp.find("400"), std::string::npos) << resp;
  resp = Raw(server->port(), "GET nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(resp.find("400"), std::string::npos) << resp;
}

TEST_F(ServerTest, OversizedHeadAndBodyGet413) {
  RdfServerOptions options;
  options.http_limits.max_head_bytes = 512;
  options.http_limits.max_body_bytes = 1024;
  auto server = StartServer(options);

  std::string huge_head = "GET / HTTP/1.1\r\nX-Pad: ";
  huge_head.append(2048, 'a');
  huge_head += "\r\n\r\n";
  std::string resp = Raw(server->port(), huge_head);
  EXPECT_NE(resp.find("413"), std::string::npos) << resp.substr(0, 120);

  auto big_body = HttpRoundTrip("127.0.0.1", server->port(), "POST",
                                "/insert?model=m", {},
                                std::string(4096, 'x'));
  ASSERT_TRUE(big_body.ok());
  EXPECT_EQ(big_body->status, 413);
}

TEST_F(ServerTest, UnknownModelGets404AndBadPatternGets400) {
  auto server = StartServer({});
  auto missing = Get(server->port(),
                     "/query?q=" + PercentEncode("(?s ?p ?o)") + "&model=zz");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404) << missing->body;
  auto bad = Get(server->port(), "/query?q=%28broken&model=m");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400) << bad->body;
  auto no_query = Get(server->port(), "/query?model=m");
  ASSERT_TRUE(no_query.ok());
  EXPECT_EQ(no_query->status, 400);
}

TEST_F(ServerTest, HealthzDegradesUnderSustainedShedding) {
  RdfServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.unhealthy_shed_min = 4;
  options.unhealthy_shed_fraction = 0.3;
  auto server = StartServer(options);

  // Hold the worker, fill the queue, then generate a burst of sheds.
  std::thread slow([&] {
    (void)Get(server->port(), HeavyQueryTarget(),
              {{"X-Deadline-Ms", "2000"}});
  });
  std::this_thread::sleep_for(milliseconds(100));
  std::thread queued([&] {
    (void)Get(server->port(), HeavyQueryTarget(),
              {{"X-Deadline-Ms", "2000"}});
  });
  std::this_thread::sleep_for(milliseconds(100));
  int sheds = 0;
  for (int i = 0; i < 12; ++i) {
    auto resp = Get(server->port(), CheapQueryTarget());
    if (resp.ok() && resp->status == 503) ++sheds;
  }
  ASSERT_GE(sheds, 4);

  // The signal is rate-based over *complete* seconds, so let the
  // current bucket close before asserting.
  std::this_thread::sleep_for(milliseconds(1100));
  EXPECT_FALSE(server->OverloadSignal().empty());
  slow.join();
  queued.join();

  // Sustained-shedding state is visible on the wire as a 503 /healthz.
  HttpRequest health_req;
  health_req.method = "GET";
  health_req.target = "/healthz";
  health_req.path = "/healthz";
  HttpResponse health = server->Handle(health_req, nullptr);
  EXPECT_EQ(health.status, 503);
  EXPECT_NE(health.body.find("shed_fraction"), std::string::npos)
      << health.body;
}

TEST_F(ServerTest, GracefulDrainKeepsAckedWrites) {
  RdfServerOptions options;
  options.workers = 2;
  auto server = StartServer(options);

  // Ack a batch of writes, then drain with a request still in flight.
  int acked = 0;
  for (int i = 0; i < 16; ++i) {
    auto ack = HttpRoundTrip(
        "127.0.0.1", server->port(), "POST", "/insert?model=m", {},
        "<http://t.example/w" + std::to_string(i) +
            "> <http://t.example/w> \"w\" .\n");
    ASSERT_TRUE(ack.ok());
    if (ack->status == 200) ++acked;
  }
  ASSERT_EQ(acked, 16);

  std::atomic<bool> inflight_responded{false};
  std::thread inflight([&] {
    auto resp = Get(server->port(), HeavyQueryTarget(),
                    {{"X-Deadline-Ms", "1000"}});
    inflight_responded.store(resp.ok() &&
                             (resp->status == 200 || resp->status == 504));
  });
  std::this_thread::sleep_for(milliseconds(50));
  server->Shutdown();
  inflight.join();
  // The admitted request was served to completion (or its deadline),
  // not dropped.
  EXPECT_TRUE(inflight_responded.load());

  // After the drain the listener is gone...
  auto refused = Get(server->port(), CheapQueryTarget());
  EXPECT_FALSE(refused.ok());
  // ...and every acked write survived, checked against the store
  // directly (no lost acked writes).
  auto pin = store_.Snapshot();
  auto rows = query::SdoRdfMatch(pin.view(),
                                 "(?s <http://t.example/w> ?o)", {"m"}, {},
                                 "");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->row_count(), 16u);
}

TEST_F(ServerTest, ClientDisconnectCancelsInflightWork) {
  RdfServerOptions options;
  options.watch_interval_ms = 5;
  options.max_deadline_ms = 10'000;
  auto server = StartServer(options);

  // Send a heavy query, then vanish without reading the response.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET " + HeavyQueryTarget() +
                              " HTTP/1.1\r\nHost: x\r\n"
                              "X-Deadline-Ms: 8000\r\n\r\n";
  SendAll(fd, request);
  std::this_thread::sleep_for(milliseconds(100));  // let it start running
  ::close(fd);  // abandon

  // The watcher must detect the hang-up and cancel long before the
  // 8-second deadline would.
  const auto give_up = steady_clock::now() + milliseconds(4000);
  while (server->metrics().cancelled->Value() == 0 &&
         steady_clock::now() < give_up) {
    std::this_thread::sleep_for(milliseconds(20));
  }
  EXPECT_GE(server->metrics().cancelled->Value(), 1u);
}

TEST(AdmissionQueueTest, BoundedPushPopShutdown) {
  AdmissionQueue queue(2);
  EXPECT_TRUE(queue.TryPush({3, steady_clock::now()}));
  EXPECT_TRUE(queue.TryPush({4, steady_clock::now()}));
  EXPECT_FALSE(queue.TryPush({5, steady_clock::now()}));  // full → shed
  EXPECT_EQ(queue.depth(), 2u);

  auto first = queue.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->fd, 3);

  queue.Shutdown();
  EXPECT_FALSE(queue.TryPush({6, steady_clock::now()}));
  // Already-admitted work still drains after shutdown...
  auto second = queue.Pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->fd, 4);
  // ...then Pop reports exhaustion instead of blocking.
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(ShedWindowTest, RatesCoverCompleteSecondsOnly) {
  ShedWindow window(/*window_seconds=*/5);
  for (int i = 0; i < 10; ++i) window.Record(/*shed=*/true);
  uint64_t admitted = 0, shed = 0;
  window.Rates(&admitted, &shed);
  // The current second is still open; nothing is reported yet.
  EXPECT_EQ(shed, 0u);
  std::this_thread::sleep_for(milliseconds(1100));
  window.Rates(&admitted, &shed);
  EXPECT_EQ(shed, 10u);
}

}  // namespace
}  // namespace rdfdb::server
