#include "storage/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace rdfdb::storage {
namespace {

Schema MixedSchema() {
  return Schema({
      ColumnDef{"ID", ValueType::kInt64, false},
      ColumnDef{"NAME", ValueType::kString, true},
      ColumnDef{"SCORE", ValueType::kDouble, true},
      ColumnDef{"BODY", ValueType::kClob, true},
  });
}

TEST(SnapshotTest, RoundTripPreservesTablesAndRows) {
  Database src;
  Table* table = *src.CreateTable("S", "T", MixedSchema());
  (void)*table->Insert({Value::Int64(1), Value::String("a"),
                        Value::Double(1.5), Value::Clob("blob")});
  (void)*table->Insert({Value::Int64(2), Value::Null(), Value::Null(),
                        Value::Null()});

  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(src, buffer).ok());

  Database dst;
  ASSERT_TRUE(LoadSnapshot(buffer, &dst).ok());
  Table* loaded = dst.GetTable("S", "T");
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->row_count(), 2u);
  const Row* row = loaded->Get(0);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[0].as_int64(), 1);
  EXPECT_EQ((*row)[1].as_string(), "a");
  EXPECT_DOUBLE_EQ((*row)[2].as_double(), 1.5);
  EXPECT_EQ((*row)[3].as_clob(), "blob");
  const Row* row2 = loaded->Get(1);
  EXPECT_TRUE((*row2)[1].is_null());
}

TEST(SnapshotTest, RoundTripPreservesSchemaTypes) {
  Database src;
  (void)*src.CreateTable("S", "T", MixedSchema());
  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(src, buffer).ok());
  Database dst;
  ASSERT_TRUE(LoadSnapshot(buffer, &dst).ok());
  const Schema& schema = dst.GetTable("S", "T")->schema();
  EXPECT_EQ(schema.num_columns(), 4u);
  EXPECT_EQ(schema.column(0).type, ValueType::kInt64);
  EXPECT_FALSE(schema.column(0).nullable);
  EXPECT_EQ(schema.column(3).type, ValueType::kClob);
  EXPECT_TRUE(schema.column(3).nullable);
}

TEST(SnapshotTest, MultipleTables) {
  Database src;
  (void)*src.CreateTable("A", "T1", MixedSchema());
  Table* t2 = *src.CreateTable("B", "T2", MixedSchema());
  (void)*t2->Insert({Value::Int64(9), Value::Null(), Value::Null(),
                     Value::Null()});
  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(src, buffer).ok());
  Database dst;
  ASSERT_TRUE(LoadSnapshot(buffer, &dst).ok());
  EXPECT_EQ(dst.TableNames(),
            (std::vector<std::string>{"A.T1", "B.T2"}));
  EXPECT_EQ(dst.GetTable("B", "T2")->row_count(), 1u);
}

TEST(SnapshotTest, SkipsTombstonedRows) {
  Database src;
  Table* table = *src.CreateTable("S", "T", MixedSchema());
  RowId doomed = *table->Insert({Value::Int64(1), Value::Null(),
                                 Value::Null(), Value::Null()});
  (void)*table->Insert({Value::Int64(2), Value::Null(), Value::Null(),
                        Value::Null()});
  ASSERT_TRUE(table->Delete(doomed).ok());

  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(src, buffer).ok());
  Database dst;
  ASSERT_TRUE(LoadSnapshot(buffer, &dst).ok());
  EXPECT_EQ(dst.GetTable("S", "T")->row_count(), 1u);
}

TEST(SnapshotTest, RejectsGarbage) {
  std::stringstream buffer("this is not a snapshot");
  Database dst;
  EXPECT_TRUE(LoadSnapshot(buffer, &dst).IsCorruption());
}

TEST(SnapshotTest, RejectsTruncatedStream) {
  Database src;
  Table* table = *src.CreateTable("S", "T", MixedSchema());
  (void)*table->Insert({Value::Int64(1), Value::String("abcdef"),
                        Value::Null(), Value::Null()});
  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(src, buffer).ok());
  std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  Database dst;
  EXPECT_FALSE(LoadSnapshot(truncated, &dst).ok());
}

TEST(SnapshotTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/rdfdb_snapshot_test.bin";
  Database src;
  Table* table = *src.CreateTable("S", "T", MixedSchema());
  (void)*table->Insert({Value::Int64(3), Value::String("file"),
                        Value::Null(), Value::Null()});
  ASSERT_TRUE(SaveSnapshotToFile(src, path).ok());
  Database dst;
  ASSERT_TRUE(LoadSnapshotFromFile(path, &dst).ok());
  EXPECT_EQ(dst.GetTable("S", "T")->row_count(), 1u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsIOError) {
  Database dst;
  EXPECT_TRUE(
      LoadSnapshotFromFile("/nonexistent/nope.bin", &dst).IsIOError());
}

}  // namespace
}  // namespace rdfdb::storage
