#include "obs/span_timeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <string>
#include <vector>

#include "query/match.h"
#include "rdf/bulk_load.h"
#include "rdf/rdf_store.h"

namespace rdfdb::obs {
namespace {

// Minimal JSON well-formedness check (objects, arrays, strings,
// numbers, literals) — enough to prove the Chrome-trace export would
// load, without a JSON dependency.
bool SkipJsonValue(const std::string& s, size_t& i);

void SkipWs(const std::string& s, size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                          s[i] == '\r')) {
    ++i;
  }
}

bool SkipJsonString(const std::string& s, size_t& i) {
  if (i >= s.size() || s[i] != '"') return false;
  for (++i; i < s.size(); ++i) {
    if (s[i] == '\\') {
      ++i;
    } else if (s[i] == '"') {
      ++i;
      return true;
    }
  }
  return false;
}

bool SkipJsonValue(const std::string& s, size_t& i) {
  SkipWs(s, i);
  if (i >= s.size()) return false;
  if (s[i] == '"') return SkipJsonString(s, i);
  if (s[i] == '{') {
    ++i;
    SkipWs(s, i);
    if (i < s.size() && s[i] == '}') return ++i, true;
    while (true) {
      SkipWs(s, i);
      if (!SkipJsonString(s, i)) return false;  // key
      SkipWs(s, i);
      if (i >= s.size() || s[i] != ':') return false;
      ++i;
      if (!SkipJsonValue(s, i)) return false;
      SkipWs(s, i);
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == '}') return ++i, true;
      return false;
    }
  }
  if (s[i] == '[') {
    ++i;
    SkipWs(s, i);
    if (i < s.size() && s[i] == ']') return ++i, true;
    while (true) {
      if (!SkipJsonValue(s, i)) return false;
      SkipWs(s, i);
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == ']') return ++i, true;
      return false;
    }
  }
  // number / true / false / null
  const size_t start = i;
  while (i < s.size() &&
         (std::isalnum(static_cast<unsigned char>(s[i])) || s[i] == '-' ||
          s[i] == '+' || s[i] == '.')) {
    ++i;
  }
  return i > start;
}

bool IsValidJson(const std::string& s) {
  size_t i = 0;
  if (!SkipJsonValue(s, i)) return false;
  SkipWs(s, i);
  return i == s.size();
}

// Spans on one lane come from one logical thread of control, so any two
// must nest (one contains the other) or be disjoint — never partially
// overlap. A small slack absorbs clock granularity at the boundaries.
void ExpectLaneSpansNest(const std::vector<SpanEvent>& spans) {
  std::map<uint32_t, std::vector<const SpanEvent*>> lanes;
  for (const SpanEvent& span : spans) lanes[span.lane].push_back(&span);
  constexpr int64_t kSlackNs = 1000;
  for (const auto& [lane, list] : lanes) {
    for (size_t a = 0; a < list.size(); ++a) {
      for (size_t b = a + 1; b < list.size(); ++b) {
        const int64_t a0 = list[a]->start_ns;
        const int64_t a1 = a0 + list[a]->dur_ns;
        const int64_t b0 = list[b]->start_ns;
        const int64_t b1 = b0 + list[b]->dur_ns;
        const bool disjoint = b0 >= a1 - kSlackNs || a0 >= b1 - kSlackNs;
        const bool a_in_b = a0 >= b0 - kSlackNs && a1 <= b1 + kSlackNs;
        const bool b_in_a = b0 >= a0 - kSlackNs && b1 <= a1 + kSlackNs;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << "lane " << lane << ": spans " << list[a]->name << " ["
            << a0 << "," << a1 << ") and " << list[b]->name << " [" << b0
            << "," << b1 << ") partially overlap";
      }
    }
  }
}

TEST(TimelineTest, RecordsSpansAndCountsDropsPastCapacity) {
  Timeline timeline(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    SpanEvent span;
    span.name = "s";
    span.category = "test";
    span.start_ns = i * 100;
    span.dur_ns = 50;
    timeline.Record(std::move(span));
  }
  EXPECT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline.dropped(), 2u);
  // The retained prefix is the oldest spans (the interesting part of an
  // overflowing capture).
  EXPECT_EQ(timeline.Spans()[0].start_ns, 0);
  timeline.Clear();
  EXPECT_EQ(timeline.size(), 0u);
}

TEST(TimelineTest, TimelineScopeRecordsAndNullIsNoop) {
  Timeline timeline;
  {
    TimelineScope outer(&timeline, "outer", "test", /*lane=*/0);
    TimelineScope inner(&timeline, "inner", "test", /*lane=*/0, "d=1");
  }
  { TimelineScope noop(nullptr, "x", "test"); }  // must not crash
  std::vector<SpanEvent> spans = timeline.Spans();
  ASSERT_EQ(spans.size(), 2u);
  // Inner scope destructs first.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].detail, "d=1");
  ExpectLaneSpansNest(spans);
}

TEST(TimelineTest, ChromeTraceJsonIsWellFormed) {
  Timeline timeline;
  {
    TimelineScope span(&timeline, "alpha", "test", /*lane=*/2,
                       "weird \"detail\"\\path");
  }
  std::string json = timeline.ToChromeTraceJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

TEST(TimelineTest, EmptyTimelineStillExportsValidJson) {
  Timeline timeline;
  std::string json = timeline.ToChromeTraceJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
}

// End-to-end: bulk load + parallel query through a store with a
// timeline attached. The export must be valid JSON and spans must nest
// per lane — the determinism contract behind "same skew, same picture".
TEST(TimelineTest, StorePipelinesRecordNestedSpans) {
  Timeline timeline;
  rdf::RdfStore store;
  store.set_timeline(&timeline);
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());

  std::vector<rdf::NTriple> triples;
  for (int i = 0; i < 6000; ++i) {
    triples.push_back({rdf::Term::Uri("urn:s" + std::to_string(i % 500)),
                       rdf::Term::Uri("urn:p" + std::to_string(i % 7)),
                       rdf::Term::PlainLiteral("v" + std::to_string(i))});
  }
  ASSERT_TRUE(rdf::BulkLoad(&store, "m", triples).ok());

  query::MatchOptions options;
  options.threads = 2;
  options.chunk_frames = 64;
  auto result = query::SdoRdfMatch(&store, nullptr,
                                   "(?s <urn:p1> ?o) (?s <urn:p2> ?o2)",
                                   {"m"}, {}, {}, "", options);
  ASSERT_TRUE(result.ok());

  std::vector<SpanEvent> spans = timeline.Spans();
  ASSERT_FALSE(spans.empty());
  auto has = [&](const char* name) {
    return std::any_of(spans.begin(), spans.end(), [&](const SpanEvent& s) {
      return std::string(s.name) == name;
    });
  };
  EXPECT_TRUE(has("chunk_prepare"));  // bulk-load worker lane
  EXPECT_TRUE(has("chunk_consume"));  // bulk-load consumer lane
  EXPECT_TRUE(has("query"));          // whole SdoRdfMatch
  EXPECT_TRUE(has("outer_scan"));     // parallel executor phase A
  EXPECT_TRUE(has("chunk_join"));     // parallel executor workers

  // Worker spans landed on worker lanes, not the consumer lane.
  EXPECT_TRUE(std::any_of(spans.begin(), spans.end(), [](const SpanEvent& s) {
    return std::string(s.name) == "chunk_join" && s.lane >= 1;
  }));

  ExpectLaneSpansNest(spans);
  EXPECT_TRUE(IsValidJson(timeline.ToChromeTraceJson()));
}

}  // namespace
}  // namespace rdfdb::obs
