#include "storage/table.h"

#include <gtest/gtest.h>

namespace rdfdb::storage {
namespace {

Schema TwoCol() {
  return Schema({
      ColumnDef{"ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"NAME", ValueType::kString, /*nullable=*/true},
  });
}

Row R(int64_t id, const std::string& name) {
  return Row{Value::Int64(id), Value::String(name)};
}

TEST(TableTest, InsertAssignsDenseRowIds) {
  Table t("T", TwoCol());
  EXPECT_EQ(*t.Insert(R(1, "a")), 0);
  EXPECT_EQ(*t.Insert(R(2, "b")), 1);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, InsertValidatesSchema) {
  Table t("T", TwoCol());
  EXPECT_TRUE(t.Insert({Value::String("bad"), Value::Null()})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(t.Insert({Value::Null(), Value::Null()})
                  .status()
                  .IsInvalidArgument());  // NOT NULL
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(TableTest, GetReturnsRowOrNull) {
  Table t("T", TwoCol());
  RowId id = *t.Insert(R(7, "x"));
  ASSERT_NE(t.Get(id), nullptr);
  EXPECT_EQ((*t.Get(id))[0].as_int64(), 7);
  EXPECT_EQ(t.Get(99), nullptr);
  EXPECT_EQ(t.Get(-1), nullptr);
}

TEST(TableTest, DeleteTombstones) {
  Table t("T", TwoCol());
  RowId a = *t.Insert(R(1, "a"));
  RowId b = *t.Insert(R(2, "b"));
  ASSERT_TRUE(t.Delete(a).ok());
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.Get(a), nullptr);
  EXPECT_NE(t.Get(b), nullptr);
  EXPECT_TRUE(t.Delete(a).IsNotFound());  // double delete
}

TEST(TableTest, UpdateReplacesRow) {
  Table t("T", TwoCol());
  RowId id = *t.Insert(R(1, "old"));
  ASSERT_TRUE(t.Update(id, R(1, "new")).ok());
  EXPECT_EQ((*t.Get(id))[1].as_string(), "new");
  EXPECT_TRUE(t.Update(42, R(1, "x")).IsNotFound());
}

TEST(TableTest, UpdateCell) {
  Table t("T", TwoCol());
  RowId id = *t.Insert(R(1, "a"));
  ASSERT_TRUE(t.UpdateCell(id, 1, Value::String("z")).ok());
  EXPECT_EQ((*t.Get(id))[1].as_string(), "z");
  EXPECT_TRUE(t.UpdateCell(id, 9, Value::Null()).IsInvalidArgument());
}

TEST(TableTest, ScanVisitsLiveRowsOnly) {
  Table t("T", TwoCol());
  RowId a = *t.Insert(R(1, "a"));
  (void)*t.Insert(R(2, "b"));
  ASSERT_TRUE(t.Delete(a).ok());
  int count = 0;
  t.Scan([&](RowId, const Row& row) {
    EXPECT_EQ(row[0].as_int64(), 2);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST(TableTest, ScanEarlyStop) {
  Table t("T", TwoCol());
  for (int i = 0; i < 10; ++i) (void)*t.Insert(R(i, "x"));
  int count = 0;
  t.Scan([&](RowId, const Row&) { return ++count < 3; });
  EXPECT_EQ(count, 3);
}

TEST(TableTest, SelectByPredicate) {
  Table t("T", TwoCol());
  for (int i = 0; i < 10; ++i) (void)*t.Insert(R(i, i % 2 ? "odd" : "even"));
  auto hits = t.Select(*Eq(1, Value::String("odd")));
  EXPECT_EQ(hits.size(), 5u);
}

TEST(TableTest, IndexMaintainedAcrossMutations) {
  Table t("T", TwoCol());
  ASSERT_TRUE(t.CreateIndex("by_name", IndexKind::kHash,
                            KeyExtractor::Columns({1}), false)
                  .ok());
  RowId a = *t.Insert(R(1, "x"));
  (void)*t.Insert(R(2, "x"));
  EXPECT_EQ((*t.FindByIndex("by_name", {Value::String("x")})).size(), 2u);

  ASSERT_TRUE(t.Update(a, R(1, "y")).ok());
  EXPECT_EQ((*t.FindByIndex("by_name", {Value::String("x")})).size(), 1u);
  EXPECT_EQ((*t.FindByIndex("by_name", {Value::String("y")})).size(), 1u);

  ASSERT_TRUE(t.Delete(a).ok());
  EXPECT_TRUE((*t.FindByIndex("by_name", {Value::String("y")})).empty());
}

TEST(TableTest, InsertBatchAssignsIdsInInputOrder) {
  Table t("T", TwoCol());
  (void)*t.Insert(R(0, "pre"));
  auto ids = t.InsertBatch({R(1, "a"), R(2, "b"), R(3, "c")});
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<RowId>{1, 2, 3}));
  EXPECT_EQ(t.row_count(), 4u);
  EXPECT_EQ((*t.Get(2))[1].as_string(), "b");
}

TEST(TableTest, InsertBatchRollsBackOnUniqueViolation) {
  Table t("T", TwoCol());
  ASSERT_TRUE(t.CreateIndex("by_id", IndexKind::kHash,
                            KeyExtractor::Columns({0}), /*unique=*/true)
                  .ok());
  (void)*t.Insert(R(1, "existing"));
  // Third row collides with the pre-existing id; the whole batch must
  // unwind, including the rows and index entries staged before it.
  auto ids = t.InsertBatch({R(2, "a"), R(3, "b"), R(1, "dup")});
  EXPECT_FALSE(ids.ok());
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_TRUE((*t.FindByIndex("by_id", {Value::Int64(2)})).empty());
  EXPECT_TRUE((*t.FindByIndex("by_id", {Value::Int64(3)})).empty());
  EXPECT_EQ((*t.FindByIndex("by_id", {Value::Int64(1)})).size(), 1u);
  // The table still accepts inserts afterwards, with dense ids.
  EXPECT_EQ(*t.Insert(R(4, "after")), 1);
}

TEST(TableTest, InsertBatchValidatesBeforeStaging) {
  Table t("T", TwoCol());
  auto ids = t.InsertBatch({R(1, "a"), {Value::Null(), Value::Null()}});
  EXPECT_TRUE(ids.status().IsInvalidArgument());
  EXPECT_EQ(t.row_count(), 0u);
}

TEST(TableTest, CreateIndexBackfills) {
  Table t("T", TwoCol());
  for (int i = 0; i < 5; ++i) (void)*t.Insert(R(i, "same"));
  ASSERT_TRUE(t.CreateIndex("late", IndexKind::kHash,
                            KeyExtractor::Columns({1}), false)
                  .ok());
  EXPECT_EQ((*t.FindByIndex("late", {Value::String("same")})).size(), 5u);
}

TEST(TableTest, DuplicateIndexNameRejected) {
  Table t("T", TwoCol());
  ASSERT_TRUE(t.CreateIndex("i", IndexKind::kHash,
                            KeyExtractor::Columns({0}), false)
                  .ok());
  EXPECT_TRUE(t.CreateIndex("i", IndexKind::kHash,
                            KeyExtractor::Columns({1}), false)
                  .IsAlreadyExists());
}

TEST(TableTest, UniqueIndexRejectsDuplicateInsert) {
  Table t("T", TwoCol());
  ASSERT_TRUE(t.CreateIndex("uniq", IndexKind::kHash,
                            KeyExtractor::Columns({0}), true)
                  .ok());
  ASSERT_TRUE(t.Insert(R(1, "a")).ok());
  auto dup = t.Insert(R(1, "b"));
  EXPECT_TRUE(dup.status().IsAlreadyExists());
  EXPECT_EQ(t.row_count(), 1u);  // failed insert left no row behind
}

TEST(TableTest, UniqueBackfillDetectsExistingDuplicates) {
  Table t("T", TwoCol());
  (void)*t.Insert(R(1, "a"));
  (void)*t.Insert(R(1, "b"));
  EXPECT_TRUE(t.CreateIndex("uniq", IndexKind::kHash,
                            KeyExtractor::Columns({0}), true)
                  .IsAlreadyExists());
}

TEST(TableTest, UpdateUniqueViolationRollsBack) {
  Table t("T", TwoCol());
  ASSERT_TRUE(t.CreateIndex("uniq", IndexKind::kHash,
                            KeyExtractor::Columns({0}), true)
                  .ok());
  RowId a = *t.Insert(R(1, "a"));
  (void)*t.Insert(R(2, "b"));
  // Updating row a to key 2 collides with row b: the update must fail
  // and leave row a fully intact (row data, index entries).
  EXPECT_TRUE(t.Update(a, R(2, "a")).IsAlreadyExists());
  EXPECT_EQ((*t.Get(a))[0].as_int64(), 1);
  EXPECT_EQ((*t.FindByIndex("uniq", {Value::Int64(1)})).size(), 1u);
  EXPECT_EQ((*t.FindByIndex("uniq", {Value::Int64(2)})).size(), 1u);
  // The rolled-back row can still be updated to a free key.
  EXPECT_TRUE(t.Update(a, R(3, "a")).ok());
  EXPECT_EQ((*t.FindByIndex("uniq", {Value::Int64(3)})).size(), 1u);
}

TEST(TableTest, DropIndex) {
  Table t("T", TwoCol());
  ASSERT_TRUE(t.CreateIndex("a", IndexKind::kHash,
                            KeyExtractor::Columns({0}), false)
                  .ok());
  ASSERT_TRUE(t.CreateIndex("b", IndexKind::kHash,
                            KeyExtractor::Columns({1}), false)
                  .ok());
  ASSERT_TRUE(t.DropIndex("a").ok());
  EXPECT_EQ(t.GetIndex("a"), nullptr);
  // Remaining index still works after the positional shift.
  (void)*t.Insert(R(1, "x"));
  EXPECT_EQ((*t.FindByIndex("b", {Value::String("x")})).size(), 1u);
  EXPECT_TRUE(t.DropIndex("a").IsNotFound());
}

TEST(TableTest, FindByMissingIndexFails) {
  Table t("T", TwoCol());
  EXPECT_TRUE(t.FindByIndex("nope", {Value::Int64(1)})
                  .status()
                  .IsNotFound());
}

TEST(TableTest, OrderedIndexRangeThroughTable) {
  Table t("T", TwoCol());
  ASSERT_TRUE(t.CreateIndex("ord", IndexKind::kOrdered,
                            KeyExtractor::Columns({0}), false)
                  .ok());
  for (int i = 0; i < 20; ++i) (void)*t.Insert(R(i, "v"));
  const auto* ordered =
      dynamic_cast<const OrderedIndex*>(t.GetIndex("ord"));
  ASSERT_NE(ordered, nullptr);
  auto hits = ordered->FindRange({Value::Int64(5)}, {Value::Int64(8)});
  EXPECT_EQ(hits.size(), 4u);
  // Range stays correct after deletes.
  ASSERT_TRUE(t.Delete(hits.front()).ok());
  EXPECT_EQ(ordered->FindRange({Value::Int64(5)}, {Value::Int64(8)}).size(),
            3u);
}

TEST(TablePartitionTest, MustBeDeclaredOnEmptyTable) {
  Table t("T", TwoCol());
  (void)*t.Insert(R(1, "a"));
  EXPECT_TRUE(t.SetPartitionColumn(0).IsInvalidArgument());
}

TEST(TablePartitionTest, PartitionColumnOutOfRange) {
  Table t("T", TwoCol());
  EXPECT_TRUE(t.SetPartitionColumn(7).IsInvalidArgument());
}

TEST(TablePartitionTest, ScanPartitionVisitsOnlyMatchingRows) {
  Table t("T", TwoCol());
  ASSERT_TRUE(t.SetPartitionColumn(0).ok());
  for (int i = 0; i < 30; ++i) (void)*t.Insert(R(i % 3, "r"));
  size_t visited = t.ScanPartition(Value::Int64(1),
                                   [&](RowId, const Row& row) {
                                     EXPECT_EQ(row[0].as_int64(), 1);
                                     return true;
                                   });
  EXPECT_EQ(visited, 10u);
  EXPECT_EQ(t.PartitionRowCount(Value::Int64(0)), 10u);
  EXPECT_EQ(t.PartitionRowCount(Value::Int64(9)), 0u);
}

TEST(TablePartitionTest, UnpartitionedFallbackScansAll) {
  Table t("T", TwoCol());
  for (int i = 0; i < 6; ++i) (void)*t.Insert(R(i % 2, "r"));
  size_t visited =
      t.ScanPartition(Value::Int64(1), [&](RowId, const Row&) {
        return true;
      });
  EXPECT_EQ(visited, 6u);  // full scan: caller filters
}

TEST(TablePartitionTest, DeleteUpdatesPartition) {
  Table t("T", TwoCol());
  ASSERT_TRUE(t.SetPartitionColumn(0).ok());
  RowId id = *t.Insert(R(5, "a"));
  EXPECT_EQ(t.PartitionRowCount(Value::Int64(5)), 1u);
  ASSERT_TRUE(t.Delete(id).ok());
  EXPECT_EQ(t.PartitionRowCount(Value::Int64(5)), 0u);
}

TEST(TablePartitionTest, UpdateMovesBetweenPartitions) {
  Table t("T", TwoCol());
  ASSERT_TRUE(t.SetPartitionColumn(0).ok());
  RowId id = *t.Insert(R(1, "a"));
  ASSERT_TRUE(t.Update(id, R(2, "a")).ok());
  EXPECT_EQ(t.PartitionRowCount(Value::Int64(1)), 0u);
  EXPECT_EQ(t.PartitionRowCount(Value::Int64(2)), 1u);
}

TEST(TableAccountingTest, BytesTrackMutations) {
  Table t("T", TwoCol());
  size_t empty = t.ApproxDataBytes();
  RowId id = *t.Insert(R(1, std::string(1000, 'x')));
  size_t after_insert = t.ApproxDataBytes();
  EXPECT_GT(after_insert, empty + 900);
  ASSERT_TRUE(t.Delete(id).ok());
  EXPECT_EQ(t.ApproxDataBytes(), empty);
}

TEST(TableAccountingTest, TotalBytesIncludeIndexes) {
  Table t("T", TwoCol());
  for (int i = 0; i < 50; ++i) (void)*t.Insert(R(i, "v"));
  size_t without = t.ApproxTotalBytes();
  ASSERT_TRUE(t.CreateIndex("i", IndexKind::kHash,
                            KeyExtractor::Columns({0}), false)
                  .ok());
  EXPECT_GT(t.ApproxTotalBytes(), without);
}

}  // namespace
}  // namespace rdfdb::storage
