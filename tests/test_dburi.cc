#include "dburi/dburi.h"

#include <gtest/gtest.h>

namespace rdfdb::dburi {
namespace {

using storage::ColumnDef;
using storage::Database;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

TEST(DBUriParseTest, RowForm) {
  auto uri = Parse("/ORADB/MDSYS/RDF_LINK$/ROW[LINK_ID=2051]");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->db, "ORADB");
  EXPECT_EQ(uri->schema, "MDSYS");
  EXPECT_EQ(uri->table, "RDF_LINK$");
  EXPECT_EQ(uri->key_column, "LINK_ID");
  EXPECT_EQ(uri->key_value, "2051");
  EXPECT_TRUE(uri->addresses_row());
  EXPECT_TRUE(uri->target_column.empty());
}

TEST(DBUriParseTest, TableForm) {
  auto uri = Parse("/ORADB/MDSYS/RDF_VALUE$");
  ASSERT_TRUE(uri.ok());
  EXPECT_FALSE(uri->addresses_row());
}

TEST(DBUriParseTest, ColumnForm) {
  auto uri = Parse("/ORADB/APP/T/ROW[ID=3]/NAME");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->target_column, "NAME");
}

TEST(DBUriParseTest, RoundTripsThroughToString) {
  const char* cases[] = {
      "/ORADB/MDSYS/RDF_LINK$/ROW[LINK_ID=2051]",
      "/ORADB/MDSYS/RDF_VALUE$",
      "/ORADB/APP/T/ROW[ID=3]/NAME",
  };
  for (const char* text : cases) {
    auto uri = Parse(text);
    ASSERT_TRUE(uri.ok()) << text;
    EXPECT_EQ(uri->ToString(), text);
  }
}

TEST(DBUriParseTest, Malformed) {
  const char* cases[] = {
      "",
      "no-slash",
      "/ORADB",
      "/ORADB/MDSYS",
      "/ORADB//T",
      "/ORADB/MDSYS/T/ROW[novalue]",
      "/ORADB/MDSYS/T/ROW[=v]",
      "/ORADB/MDSYS/T/ROW[k=]",
      "/ORADB/MDSYS/T/notrow",
      "/ORADB/MDSYS/T/ROW[k=v]/COL/EXTRA",
      "/ORADB/MDSYS/T/ROW[k=v]/",
  };
  for (const char* text : cases) {
    EXPECT_FALSE(Parse(text).ok()) << text;
    EXPECT_FALSE(IsDBUri(text)) << text;
  }
}

TEST(DBUriParseTest, ForRowBuilder) {
  DBUri uri = DBUri::ForRow("ORADB", "MDSYS", "RDF_LINK$", "LINK_ID", "7");
  EXPECT_EQ(uri.ToString(), "/ORADB/MDSYS/RDF_LINK$/ROW[LINK_ID=7]");
}

class ResolverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = *db_.CreateTable(
        "APP", "PEOPLE",
        Schema({ColumnDef{"ID", ValueType::kInt64, false},
                ColumnDef{"NAME", ValueType::kString, false}}));
    (void)*table_->Insert({Value::Int64(1), Value::String("alice")});
    (void)*table_->Insert({Value::Int64(2), Value::String("bob")});
  }

  Database db_{"ORADB"};
  Table* table_ = nullptr;
};

TEST_F(ResolverTest, ResolvesRowByScan) {
  Resolver resolver(&db_);
  auto uri = Parse("/ORADB/APP/PEOPLE/ROW[ID=2]");
  ASSERT_TRUE(uri.ok());
  auto row_id = resolver.ResolveRow(*uri);
  ASSERT_TRUE(row_id.ok());
  auto row = resolver.FetchRow(*uri);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].as_string(), "bob");
}

TEST_F(ResolverTest, ResolvesRowThroughIndex) {
  ASSERT_TRUE(table_->CreateIndex("people_id_idx",
                                  storage::IndexKind::kHash,
                                  storage::KeyExtractor::Columns({0}), true)
                  .ok());
  Resolver resolver(&db_);
  auto uri = Parse("/ORADB/APP/PEOPLE/ROW[ID=1]");
  auto row = resolver.FetchRow(*uri);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].as_string(), "alice");
}

TEST_F(ResolverTest, FetchText) {
  Resolver resolver(&db_);
  auto uri = Parse("/ORADB/APP/PEOPLE/ROW[ID=1]/NAME");
  auto text = resolver.FetchText(*uri);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "alice");
}

TEST_F(ResolverTest, FetchTextRequiresColumnForm) {
  Resolver resolver(&db_);
  auto uri = Parse("/ORADB/APP/PEOPLE/ROW[ID=1]");
  EXPECT_TRUE(resolver.FetchText(*uri).status().IsInvalidArgument());
}

TEST_F(ResolverTest, StringKeyedLookup) {
  Resolver resolver(&db_);
  auto uri = Parse("/ORADB/APP/PEOPLE/ROW[NAME=bob]/ID");
  auto text = resolver.FetchText(*uri);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "2");
}

TEST_F(ResolverTest, Errors) {
  Resolver resolver(&db_);
  EXPECT_TRUE(resolver.ResolveRow(*Parse("/OTHERDB/APP/PEOPLE/ROW[ID=1]"))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(resolver.ResolveRow(*Parse("/ORADB/APP/MISSING/ROW[ID=1]"))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(resolver.ResolveRow(*Parse("/ORADB/APP/PEOPLE/ROW[NOPE=1]"))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(resolver.ResolveRow(*Parse("/ORADB/APP/PEOPLE/ROW[ID=99]"))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(resolver.ResolveRow(*Parse("/ORADB/APP/PEOPLE"))
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace rdfdb::dburi
