#include "query/filter.h"

#include <gtest/gtest.h>

namespace rdfdb::query {
namespace {

Bindings B() {
  Bindings b;
  b.emplace("name", rdf::Term::Uri("http://www.us.id#JohnDoe"));
  b.emplace("age", rdf::Term::TypedLiteral(
                       "25", "http://www.w3.org/2001/XMLSchema#int"));
  b.emplace("city", rdf::Term::PlainLiteral("Brooklyn"));
  return b;
}

bool Eval(const std::string& expr) {
  auto f = ParseFilter(expr);
  EXPECT_TRUE(f.ok()) << expr << ": " << f.status().ToString();
  return (*f)->Evaluate(B());
}

TEST(FilterTest, EmptyFilterIsTrue) {
  EXPECT_TRUE(Eval(""));
  EXPECT_TRUE(Eval("   "));
}

TEST(FilterTest, StringEquality) {
  EXPECT_TRUE(Eval("?city = \"Brooklyn\""));
  EXPECT_FALSE(Eval("?city = \"Trenton\""));
  EXPECT_TRUE(Eval("?city != \"Trenton\""));
  EXPECT_TRUE(Eval("?city <> \"Trenton\""));
}

TEST(FilterTest, UriComparedByDisplayText) {
  EXPECT_TRUE(Eval("?name = \"http://www.us.id#JohnDoe\""));
}

TEST(FilterTest, NumericComparisons) {
  EXPECT_TRUE(Eval("?age = 25"));
  EXPECT_TRUE(Eval("?age > 20"));
  EXPECT_TRUE(Eval("?age >= 25"));
  EXPECT_TRUE(Eval("?age < 30"));
  EXPECT_TRUE(Eval("?age <= 25"));
  EXPECT_FALSE(Eval("?age > 25"));
  // Numeric semantics, not lexicographic: "100" > "25" numerically.
  EXPECT_TRUE(Eval("?age < 100"));
}

TEST(FilterTest, VariableToVariable) {
  EXPECT_TRUE(Eval("?name != ?city"));
  EXPECT_FALSE(Eval("?name = ?city"));
  EXPECT_TRUE(Eval("?age = ?age"));
}

TEST(FilterTest, UnboundVariableIsFalse) {
  EXPECT_FALSE(Eval("?ghost = \"x\""));
  EXPECT_FALSE(Eval("?ghost != \"x\""));  // unbound: no comparison holds
}

TEST(FilterTest, BooleanConnectives) {
  EXPECT_TRUE(Eval("?age > 20 AND ?city = \"Brooklyn\""));
  EXPECT_FALSE(Eval("?age > 20 AND ?city = \"Trenton\""));
  EXPECT_TRUE(Eval("?age > 99 OR ?city = \"Brooklyn\""));
  EXPECT_FALSE(Eval("?age > 99 OR ?city = \"Trenton\""));
  EXPECT_TRUE(Eval("NOT ?age > 99"));
  EXPECT_FALSE(Eval("NOT ?age = 25"));
}

TEST(FilterTest, KeywordsCaseInsensitive) {
  EXPECT_TRUE(Eval("?age > 20 and ?city = \"Brooklyn\""));
  EXPECT_TRUE(Eval("?age > 99 or ?city = \"Brooklyn\""));
  EXPECT_TRUE(Eval("not ?age > 99"));
}

TEST(FilterTest, ParenthesesAndPrecedence) {
  // AND binds tighter than OR.
  EXPECT_TRUE(Eval("?age = 0 AND ?age = 1 OR ?city = \"Brooklyn\""));
  EXPECT_FALSE(Eval("?age = 0 AND (?age = 1 OR ?city = \"Brooklyn\")"));
  EXPECT_TRUE(Eval("(?age = 25)"));
  EXPECT_TRUE(Eval("NOT (?age = 1 OR ?age = 2)"));
}

TEST(FilterTest, BareTokenOperand) {
  EXPECT_TRUE(Eval("?city = Brooklyn"));
}

TEST(FilterTest, EscapedStringLiteral) {
  Bindings b;
  b.emplace("v", rdf::Term::PlainLiteral("say \"hi\""));
  auto f = ParseFilter("?v = \"say \\\"hi\\\"\"");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE((*f)->Evaluate(b));
}

TEST(FilterTest, MalformedFilters) {
  const char* cases[] = {
      "?x =",            // missing rhs
      "= \"x\"",         // missing lhs
      "?x ? \"y\"",      // bad operator
      "(?x = 1",         // missing ')'
      "?x = 1 extra",    // trailing tokens (no operator)
      "? = 1",           // empty variable
      "\"unterminated",  // bad string
      "AND",             // operand expected
  };
  for (const char* expr : cases) {
    EXPECT_FALSE(ParseFilter(expr).ok()) << expr;
  }
}

TEST(FilterTest, LoneOperatorCharactersRejected) {
  // Regression: a lone '!' used to loop forever in the lexer.
  EXPECT_FALSE(ParseFilter("!").ok());
  EXPECT_FALSE(ParseFilter("?x ! 1").ok());
  EXPECT_FALSE(ParseFilter("!!!!").ok());
}

TEST(FilterTest, ChainedConnectives) {
  EXPECT_TRUE(Eval("?age = 25 AND ?city = \"Brooklyn\" AND ?age < 26"));
  EXPECT_TRUE(Eval("?age = 1 OR ?age = 2 OR ?age = 25"));
}

}  // namespace
}  // namespace rdfdb::query
