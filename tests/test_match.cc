#include "query/match.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/ic_dataset.h"

namespace rdfdb::query {
namespace {

using gen::BuildIcScenario;
using gen::IcScenario;

class MatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto scenario = BuildIcScenario(&store_);
    ASSERT_TRUE(scenario.ok());
    scenario_ = *scenario;
    engine_ = std::make_unique<InferenceEngine>(&store_);
  }

  std::set<std::string> Names(const MatchResult& result) {
    std::set<std::string> names;
    for (size_t i = 0; i < result.row_count(); ++i) {
      names.insert(result.Get(i, "name"));
    }
    return names;
  }

  rdf::RdfStore store_;
  IcScenario scenario_;
  std::unique_ptr<InferenceEngine> engine_;
};

TEST_F(MatchTest, SingleModelQuery) {
  auto result = SdoRdfMatch(&store_, nullptr,
                            "(gov:files gov:terrorSuspect ?name)", {"cia"},
                            {}, scenario_.aliases, "");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->columns(), std::vector<std::string>{"name"});
  EXPECT_EQ(Names(*result),
            (std::set<std::string>{"http://www.us.id#JohnDoe",
                                   "http://www.us.id#JaneDoe"}));
}

TEST_F(MatchTest, CrossModelUnionDeduplicatesNothing) {
  // JohnDoe appears in all three models; the union yields one row per
  // matching triple (3 for JohnDoe + 1 for JaneDoe).
  auto result = SdoRdfMatch(&store_, nullptr,
                            "(gov:files gov:terrorSuspect ?name)",
                            {"cia", "dhs", "fbi"}, {}, scenario_.aliases,
                            "");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count(), 4u);
  EXPECT_EQ(Names(*result).size(), 2u);
}

TEST_F(MatchTest, LiteralObjectPattern) {
  auto result =
      SdoRdfMatch(&store_, nullptr, "(?x gov:terrorAction \"bombing\")",
                  {"dhs"}, {}, scenario_.aliases, "");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->row_count(), 1u);
  EXPECT_EQ(result->Get(0, "x"), "http://www.us.id#JimDoe");
}

TEST_F(MatchTest, InferenceWithIntelRulebase) {
  // Figure 8 end-to-end: rulebase + rules index + cross-model query.
  ASSERT_TRUE(engine_->CreateRulebase("intel_rb").ok());
  Rule rule;
  rule.name = "intel_rule";
  rule.antecedent = "(?x gov:terrorAction \"bombing\")";
  rule.consequent = "(gov:files gov:terrorSuspect ?x)";
  rule.aliases = scenario_.aliases;
  ASSERT_TRUE(engine_->InsertRule("intel_rb", rule).ok());
  auto index = engine_->CreateRulesIndex(
      "rdfs_rix_intel", {"cia", "dhs", "fbi"}, {"RDFS", "intel_rb"});
  ASSERT_TRUE(index.ok());

  auto result = SdoRdfMatch(&store_, engine_.get(),
                            "(gov:files gov:terrorSuspect ?name)",
                            {"cia", "dhs", "fbi"}, {"RDFS", "intel_rb"},
                            scenario_.aliases, "");
  ASSERT_TRUE(result.ok());
  // "Through inference ... JimDoe is now considered a terror suspect.
  // Known terror suspects JohnDoe and JaneDoe are also returned."
  EXPECT_EQ(Names(*result),
            (std::set<std::string>{"http://www.us.id#JohnDoe",
                                   "http://www.us.id#JaneDoe",
                                   "http://www.us.id#JimDoe"}));
}

TEST_F(MatchTest, InferenceWorksWithoutIndexOnTheFly) {
  ASSERT_TRUE(engine_->CreateRulebase("intel_rb").ok());
  Rule rule;
  rule.name = "intel_rule";
  rule.antecedent = "(?x gov:terrorAction \"bombing\")";
  rule.consequent = "(gov:files gov:terrorSuspect ?x)";
  rule.aliases = scenario_.aliases;
  ASSERT_TRUE(engine_->InsertRule("intel_rb", rule).ok());
  // No CreateRulesIndex call: match must compute entailment itself.
  auto result = SdoRdfMatch(&store_, engine_.get(),
                            "(gov:files gov:terrorSuspect ?name)",
                            {"cia", "dhs", "fbi"}, {"RDFS", "intel_rb"},
                            scenario_.aliases, "");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Names(*result).size(), 3u);
}

TEST_F(MatchTest, JoinWithRelationalTable) {
  // The SELECT in Figure 8 joins match output to ic.address.
  auto result = SdoRdfMatch(&store_, nullptr,
                            "(gov:files gov:terrorSuspect ?name)",
                            {"cia", "dhs", "fbi"}, {}, scenario_.aliases,
                            "");
  ASSERT_TRUE(result.ok());
  const storage::Index* index =
      scenario_.address_table->GetIndex("addr_name_idx");
  std::set<std::string> locations;
  for (size_t i = 0; i < result->row_count(); ++i) {
    auto rows = index->Find(
        {storage::Value::String(result->Get(i, "name"))});
    for (storage::RowId rid : rows) {
      locations.insert(
          (*scenario_.address_table->Get(rid))[1].as_string());
    }
  }
  EXPECT_EQ(locations, (std::set<std::string>{"Brooklyn, NY"}));
}

TEST_F(MatchTest, MultiPatternJoin) {
  auto result = SdoRdfMatch(
      &store_, nullptr,
      "(gov:files gov:terrorSuspect ?name) (?name gov:enteredCountry ?d)",
      {"cia", "fbi"}, {}, scenario_.aliases, "");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->columns(),
            (std::vector<std::string>{"name", "d"}));
  // JohnDoe entered on June-20-2000 (fbi model); suspect rows come from
  // cia and fbi -> two solutions, same display values.
  ASSERT_GE(result->row_count(), 1u);
  for (size_t i = 0; i < result->row_count(); ++i) {
    EXPECT_EQ(result->Get(i, "name"), "http://www.us.id#JohnDoe");
    EXPECT_EQ(result->Get(i, "d"), "June-20-2000");
  }
}

TEST_F(MatchTest, FilterRestrictsRows) {
  auto result = SdoRdfMatch(&store_, nullptr,
                            "(gov:files gov:terrorSuspect ?name)",
                            {"cia"}, {}, scenario_.aliases,
                            "?name != \"http://www.us.id#JohnDoe\"");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Names(*result),
            (std::set<std::string>{"http://www.us.id#JaneDoe"}));
}

TEST_F(MatchTest, VariablePredicate) {
  auto result = SdoRdfMatch(&store_, nullptr, "(id:JimDoe ?p ?o)", {"dhs"},
                            {}, scenario_.aliases, "");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->row_count(), 1u);
  EXPECT_EQ(result->Get(0, "p"), "http://www.us.gov#terrorAction");
  EXPECT_EQ(result->Get(0, "o"), "bombing");
}

TEST_F(MatchTest, CanonicalLiteralMatching) {
  // The CANON_END_NODE_ID machinery end-to-end: a query constant in one
  // lexical form matches a stored triple in another.
  ASSERT_TRUE(
      store_
          .InsertTriple("cia", "http://www.us.id#JohnDoe",
                        "http://www.us.gov#age", "\"+025\"^^xsd:int")
          .ok());
  auto result = SdoRdfMatch(
      &store_, nullptr, "(?who gov:age \"25\"^^xsd:int)", {"cia"}, {},
      scenario_.aliases, "");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->row_count(), 1u);
  EXPECT_EQ(result->Get(0, "who"), "http://www.us.id#JohnDoe");
  // Bound object variables carry the canonical form.
  auto bound = SdoRdfMatch(&store_, nullptr,
                           "(id:JohnDoe gov:age ?age)", {"cia"}, {},
                           scenario_.aliases, "");
  ASSERT_TRUE(bound.ok());
  ASSERT_EQ(bound->row_count(), 1u);
  EXPECT_EQ(bound->Get(0, "age"), "25");
}

TEST_F(MatchTest, FilterOnNumericTypedLiteral) {
  // InsertTriple takes full URIs; alias expansion is a query-side
  // convenience.
  ASSERT_TRUE(store_
                  .InsertTriple("cia", "http://www.us.id#JohnDoe",
                                "http://www.us.gov#age",
                                "\"34\"^^xsd:int")
                  .ok());
  ASSERT_TRUE(store_
                  .InsertTriple("cia", "http://www.us.id#JaneDoe",
                                "http://www.us.gov#age",
                                "\"9\"^^xsd:int")
                  .ok());
  auto result = SdoRdfMatch(&store_, nullptr, "(?who gov:age ?age)",
                            {"cia"}, {}, scenario_.aliases, "?age > 18");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->row_count(), 1u);
  EXPECT_EQ(result->Get(0, "who"), "http://www.us.id#JohnDoe");
}

TEST_F(MatchTest, ErrorCases) {
  EXPECT_TRUE(SdoRdfMatch(&store_, nullptr, "(?x ?p ?o)", {}, {},
                          scenario_.aliases, "")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SdoRdfMatch(&store_, nullptr, "(?x ?p ?o)", {"ghost"}, {},
                          scenario_.aliases, "")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(SdoRdfMatch(&store_, nullptr, "not a query", {"cia"}, {},
                          scenario_.aliases, "")
                  .status()
                  .IsInvalidArgument());
  // Rulebases without an engine.
  EXPECT_TRUE(SdoRdfMatch(&store_, nullptr, "(?x ?p ?o)", {"cia"},
                          {"RDFS"}, scenario_.aliases, "")
                  .status()
                  .IsInvalidArgument());
  // Unknown rulebase.
  EXPECT_TRUE(SdoRdfMatch(&store_, engine_.get(), "(?x ?p ?o)", {"cia"},
                          {"ghost_rb"}, scenario_.aliases, "")
                  .status()
                  .IsNotFound());
}

TEST_F(MatchTest, ResultAccessors) {
  auto result = SdoRdfMatch(&store_, nullptr,
                            "(gov:files gov:terrorSuspect ?name)", {"cia"},
                            {}, scenario_.aliases, "");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ColumnIndex("name"), 0);
  EXPECT_EQ(result->ColumnIndex("ghost"), -1);
  EXPECT_EQ(result->Get(0, "ghost"), "");
  EXPECT_EQ(result->Get(99, "name"), "");
  std::string rendered = result->ToString();
  EXPECT_NE(rendered.find("?name"), std::string::npos);
  EXPECT_NE(rendered.find("JohnDoe"), std::string::npos);
}

TEST_F(MatchTest, ProjectionDistinctAndLimit) {
  MatchOptions options;
  options.projection = {"name"};
  options.distinct = true;
  // JohnDoe appears in 3 models, JaneDoe in 1: DISTINCT collapses to 2.
  auto result = SdoRdfMatch(&store_, nullptr,
                            "(?src gov:terrorSuspect ?name)",
                            {"cia", "dhs", "fbi"}, {}, scenario_.aliases,
                            "", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->columns(), std::vector<std::string>{"name"});
  EXPECT_EQ(result->row_count(), 2u);

  // LIMIT caps the row count.
  MatchOptions limited;
  limited.limit = 1;
  auto one = SdoRdfMatch(&store_, nullptr,
                         "(?src gov:terrorSuspect ?name)",
                         {"cia", "dhs", "fbi"}, {}, scenario_.aliases, "",
                         limited);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->row_count(), 1u);

  // Unknown projection variable is an error.
  MatchOptions bad;
  bad.projection = {"ghost"};
  EXPECT_TRUE(SdoRdfMatch(&store_, nullptr,
                          "(?src gov:terrorSuspect ?name)", {"cia"}, {},
                          scenario_.aliases, "", bad)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(MatchTest, EngineRulebaseManagement) {
  EXPECT_TRUE(engine_->CreateRulebase("rb1").ok());
  EXPECT_TRUE(engine_->CreateRulebase("rb1").IsAlreadyExists());
  EXPECT_TRUE(engine_->CreateRulebase("RDFS").IsAlreadyExists());
  EXPECT_EQ(engine_->RulebaseNames(), std::vector<std::string>{"rb1"});
  // The rule table exists (the paper's mdsys.rdfr_<rb>).
  EXPECT_NE(store_.database().GetTable("MDSYS", "RDFR_RB1"), nullptr);
  ASSERT_TRUE(engine_->DropRulebase("rb1").ok());
  EXPECT_TRUE(engine_->DropRulebase("rb1").IsNotFound());
  EXPECT_EQ(store_.database().GetTable("MDSYS", "RDFR_RB1"), nullptr);
}

TEST_F(MatchTest, EngineRuleRowsPersisted) {
  ASSERT_TRUE(engine_->CreateRulebase("intel_rb").ok());
  Rule rule;
  rule.name = "intel_rule";
  rule.antecedent = "(?x gov:terrorAction \"bombing\")";
  rule.filter = "";
  rule.consequent = "(gov:files gov:terrorSuspect ?x)";
  rule.aliases = scenario_.aliases;
  ASSERT_TRUE(engine_->InsertRule("intel_rb", rule).ok());
  storage::Table* table =
      store_.database().GetTable("MDSYS", "RDFR_INTEL_RB");
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->row_count(), 1u);
  // Invalid rules are rejected and not persisted.
  Rule bad = rule;
  bad.name = "bad";
  bad.consequent = "(?unbound gov:p ?x)";
  EXPECT_FALSE(engine_->InsertRule("intel_rb", bad).ok());
  EXPECT_EQ(table->row_count(), 1u);
  EXPECT_TRUE(engine_->InsertRule("ghost", rule).IsNotFound());
}

TEST_F(MatchTest, RulesIndexIsASnapshotUntilRebuilt) {
  // CREATE_RULES_INDEX "pre-computes triples": like the paper's index it
  // reflects the data at build time. New base triples still flow into
  // results (the base source is live); new *entailments* require a
  // rebuild.
  ASSERT_TRUE(engine_->CreateRulebase("intel_rb").ok());
  Rule rule;
  rule.name = "intel_rule";
  rule.antecedent = "(?x gov:terrorAction \"bombing\")";
  rule.consequent = "(gov:files gov:terrorSuspect ?x)";
  rule.aliases = scenario_.aliases;
  ASSERT_TRUE(engine_->InsertRule("intel_rb", rule).ok());
  ASSERT_TRUE(engine_
                  ->CreateRulesIndex("rix", {"cia", "dhs", "fbi"},
                                     {"intel_rb"})
                  .ok());

  // A new bomber inserted after the index was built.
  ASSERT_TRUE(store_
                  .InsertTriple("dhs", "http://www.us.id#NewGuy",
                                "http://www.us.gov#terrorAction",
                                "bombing")
                  .ok());
  auto stale = SdoRdfMatch(&store_, engine_.get(),
                           "(gov:files gov:terrorSuspect ?name)",
                           {"cia", "dhs", "fbi"}, {"intel_rb"},
                           scenario_.aliases, "");
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(Names(*stale).count("http://www.us.id#NewGuy"), 0u);

  // Rebuild picks the new entailment up.
  ASSERT_TRUE(engine_->DropRulesIndex("rix").ok());
  ASSERT_TRUE(engine_
                  ->CreateRulesIndex("rix", {"cia", "dhs", "fbi"},
                                     {"intel_rb"})
                  .ok());
  auto fresh = SdoRdfMatch(&store_, engine_.get(),
                           "(gov:files gov:terrorSuspect ?name)",
                           {"cia", "dhs", "fbi"}, {"intel_rb"},
                           scenario_.aliases, "");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(Names(*fresh).count("http://www.us.id#NewGuy"), 1u);
}

TEST_F(MatchTest, EngineRulesIndexManagement) {
  auto index = engine_->CreateRulesIndex("rix", {"cia"}, {"RDFS"});
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(engine_->CreateRulesIndex("rix", {"cia"}, {"RDFS"})
                  .status()
                  .IsAlreadyExists());
  EXPECT_EQ(engine_->FindCoveringIndex({"cia"}, {"RDFS"}), *index);
  EXPECT_EQ(engine_->FindCoveringIndex({"dhs"}, {"RDFS"}), nullptr);
  ASSERT_TRUE(engine_->DropRulesIndex("rix").ok());
  EXPECT_EQ(engine_->FindCoveringIndex({"cia"}, {"RDFS"}), nullptr);
  EXPECT_TRUE(engine_->DropRulesIndex("rix").IsNotFound());
}

}  // namespace
}  // namespace rdfdb::query
