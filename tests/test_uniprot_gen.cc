#include "gen/uniprot_gen.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "rdf/vocab.h"

namespace rdfdb::gen {
namespace {

UniProtOptions Opts(size_t triples, uint64_t seed = 42) {
  UniProtOptions options;
  options.target_triples = triples;
  options.seed = seed;
  return options;
}

TEST(UniProtGenTest, HitsApproximateTripleTarget) {
  for (size_t target : {1000u, 5000u, 20000u}) {
    UniProtDataset dataset = GenerateUniProt(Opts(target));
    EXPECT_GE(dataset.triple_count(), target);
    EXPECT_LT(dataset.triple_count(), target + 40);  // one protein overshoot
  }
}

TEST(UniProtGenTest, DeterministicForSameSeed) {
  UniProtDataset a = GenerateUniProt(Opts(2000, 7));
  UniProtDataset b = GenerateUniProt(Opts(2000, 7));
  ASSERT_EQ(a.triple_count(), b.triple_count());
  for (size_t i = 0; i < a.triples.size(); i += 97) {
    EXPECT_EQ(a.triples[i], b.triples[i]) << i;
  }
  ASSERT_EQ(a.reified_count(), b.reified_count());
}

TEST(UniProtGenTest, DifferentSeedsDiffer) {
  UniProtDataset a = GenerateUniProt(Opts(2000, 1));
  UniProtDataset b = GenerateUniProt(Opts(2000, 2));
  bool any_diff = a.triple_count() != b.triple_count();
  for (size_t i = 24; !any_diff && i < a.triples.size() &&
                      i < b.triples.size();
       ++i) {
    if (!(a.triples[i] == b.triples[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(UniProtGenTest, ProbeSubjectHasExactly24Statements) {
  // Table 1: the subject query returns 24 rows at every dataset size.
  for (size_t target : {1000u, 10000u}) {
    UniProtDataset dataset = GenerateUniProt(Opts(target));
    EXPECT_EQ(dataset.probe_subject, kProbeSubject);
    size_t count = 0;
    for (const rdf::NTriple& t : dataset.triples) {
      if (t.subject.is_uri() && t.subject.lexical() == kProbeSubject) {
        ++count;
      }
    }
    EXPECT_EQ(count, 24u) << "target " << target;
  }
}

TEST(UniProtGenTest, ProbeStatementsPresent) {
  UniProtDataset dataset = GenerateUniProt(Opts(1000));
  EXPECT_EQ(dataset.reified_probe.subject.lexical(), kProbeSubject);
  EXPECT_EQ(dataset.reified_probe.object.lexical(), kProbeReifiedTarget);
  EXPECT_EQ(dataset.unreified_probe.object.lexical(),
            kProbeUnreifiedTarget);
  // The reified probe is in the reified list; the unreified one is not.
  bool probe_reified = false, false_probe_reified = false;
  for (const ReifiedStatement& r : dataset.reified) {
    if (r.base == dataset.reified_probe) probe_reified = true;
    if (r.base == dataset.unreified_probe) false_probe_reified = true;
  }
  EXPECT_TRUE(probe_reified);
  EXPECT_FALSE(false_probe_reified);
}

TEST(UniProtGenTest, ReifiedFractionMatchesPaperShape) {
  // ~5% of statements reified (659/10k ... 247002/5M in the paper).
  UniProtDataset dataset = GenerateUniProt(Opts(10000));
  double fraction = static_cast<double>(dataset.reified_count()) /
                    static_cast<double>(dataset.triple_count());
  EXPECT_GT(fraction, 0.03);
  EXPECT_LT(fraction, 0.07);
}

TEST(UniProtGenTest, ReifiedStatementsComeFromDataset) {
  UniProtDataset dataset = GenerateUniProt(Opts(3000));
  std::set<std::string> keys;
  for (const rdf::NTriple& t : dataset.triples) {
    keys.insert(t.subject.ToNTriples() + "|" + t.predicate.ToNTriples() +
                "|" + t.object.ToNTriples());
  }
  for (const ReifiedStatement& r : dataset.reified) {
    EXPECT_EQ(keys.count(r.base.subject.ToNTriples() + "|" +
                         r.base.predicate.ToNTriples() + "|" +
                         r.base.object.ToNTriples()),
              1u);
    EXPECT_FALSE(r.curator_uri.empty());
  }
}

TEST(UniProtGenTest, ValueReuseProfile) {
  // Cross-references draw from shared pools: distinct objects must be
  // far fewer than seeAlso statements (the paper's node-reuse premise).
  UniProtDataset dataset = GenerateUniProt(Opts(20000));
  size_t see_also = 0;
  std::unordered_set<std::string> targets;
  for (const rdf::NTriple& t : dataset.triples) {
    if (t.predicate.lexical() == rdf::kRdfsSeeAlso) {
      ++see_also;
      targets.insert(t.object.lexical());
    }
  }
  ASSERT_GT(see_also, 1000u);
  EXPECT_LT(targets.size(), see_also / 2);
}

TEST(UniProtGenTest, ContainsExpectedTermVariety) {
  UniProtDataset dataset = GenerateUniProt(Opts(5000));
  bool typed = false, lang = false, blank_subject = false,
       container_member = false, bag = false;
  for (const rdf::NTriple& t : dataset.triples) {
    if (t.object.is_typed_literal()) typed = true;
    if (!t.object.language().empty()) lang = true;
    if (t.subject.is_blank()) blank_subject = true;
    if (rdf::IsContainerMembershipProperty(t.predicate.lexical())) {
      container_member = true;
    }
    if (t.object.is_uri() && t.object.lexical() == rdf::kRdfBag) {
      bag = true;
    }
  }
  EXPECT_TRUE(typed);
  EXPECT_TRUE(lang);
  EXPECT_TRUE(blank_subject);
  EXPECT_TRUE(container_member);
  EXPECT_TRUE(bag);
}

TEST(UniProtGenTest, AllTriplesWellFormed) {
  UniProtDataset dataset = GenerateUniProt(Opts(2000));
  for (const rdf::NTriple& t : dataset.triples) {
    EXPECT_FALSE(t.subject.is_literal());
    EXPECT_TRUE(t.predicate.is_uri());
    EXPECT_FALSE(t.subject.lexical().empty());
    EXPECT_FALSE(t.predicate.lexical().empty());
  }
}

}  // namespace
}  // namespace rdfdb::gen
