#include "storage/value.h"

#include <gtest/gtest.h>

namespace rdfdb::storage {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value::Int64(42).as_int64(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::String("abc").as_string(), "abc");
  EXPECT_EQ(Value::Clob("long text").as_clob(), "long text");
}

TEST(ValueTest, TextWorksForStringAndClob) {
  EXPECT_EQ(Value::String("s").text(), "s");
  EXPECT_EQ(Value::Clob("c").text(), "c");
}

TEST(ValueTest, NumericWidens) {
  EXPECT_DOUBLE_EQ(Value::Int64(3).numeric(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Double(3.5).numeric(), 3.5);
}

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Int64(2)), 0);
  EXPECT_GT(Value::Int64(5).Compare(Value::Int64(2)), 0);
  EXPECT_EQ(Value::Int64(5).Compare(Value::Int64(5)), 0);
  EXPECT_LT(Value::String("a").Compare(Value::String("b")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, CompareAcrossNumericTypes) {
  EXPECT_EQ(Value::Int64(5).Compare(Value::Double(5.0)), 0);
  EXPECT_LT(Value::Int64(5).Compare(Value::Double(5.5)), 0);
  EXPECT_GT(Value::Double(6.0).Compare(Value::Int64(5)), 0);
}

TEST(ValueTest, CrossTypeOrdering) {
  // NULL < numeric < string < clob
  EXPECT_LT(Value::Null().Compare(Value::Int64(0)), 0);
  EXPECT_LT(Value::Int64(999).Compare(Value::String("")), 0);
  EXPECT_LT(Value::String("zzz").Compare(Value::Clob("")), 0);
}

TEST(ValueTest, NullsCompareEqual) {
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_TRUE(Value::Null() == Value::Null());
}

TEST(ValueTest, LargeIntegersCompareExactly) {
  // Values above 2^53 lose precision in double space.
  int64_t big = (1LL << 60) + 1;
  EXPECT_GT(Value::Int64(big).Compare(Value::Int64(big - 1)), 0);
}

TEST(ValueTest, EqualityOperators) {
  EXPECT_TRUE(Value::String("a") == Value::String("a"));
  EXPECT_TRUE(Value::String("a") != Value::String("b"));
  EXPECT_TRUE(Value::Int64(1) < Value::Int64(2));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(5).Hash(), Value::Double(5.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_NE(Value::String("abc").Hash(), Value::Clob("abc").Hash());
}

TEST(ValueTest, ApproxBytesGrowsWithPayload) {
  EXPECT_GT(Value::String(std::string(100, 'x')).ApproxBytes(),
            Value::String("x").ApproxBytes());
  EXPECT_GE(Value::Int64(1).ApproxBytes(), sizeof(Value));
}

TEST(ValueTest, DoubleToStringRoundTrips) {
  EXPECT_EQ(Value::Int64(-7).ToString(), "-7");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
}

TEST(ValueKeyTest, HashAndEquality) {
  ValueKey a{Value::Int64(1), Value::String("x")};
  ValueKey b{Value::Int64(1), Value::String("x")};
  ValueKey c{Value::Int64(1), Value::String("y")};
  EXPECT_TRUE(ValueKeyEq{}(a, b));
  EXPECT_FALSE(ValueKeyEq{}(a, c));
  EXPECT_EQ(ValueKeyHash{}(a), ValueKeyHash{}(b));
}

TEST(ValueKeyTest, DifferentLengthsUnequal) {
  ValueKey a{Value::Int64(1)};
  ValueKey b{Value::Int64(1), Value::Int64(2)};
  EXPECT_FALSE(ValueKeyEq{}(a, b));
  EXPECT_TRUE(ValueKeyLess{}(a, b));  // prefix sorts first
}

TEST(ValueKeyTest, LexicographicOrder) {
  ValueKey a{Value::Int64(1), Value::Int64(5)};
  ValueKey b{Value::Int64(1), Value::Int64(9)};
  ValueKey c{Value::Int64(2), Value::Int64(0)};
  EXPECT_TRUE(ValueKeyLess{}(a, b));
  EXPECT_TRUE(ValueKeyLess{}(b, c));
  EXPECT_FALSE(ValueKeyLess{}(c, a));
}

TEST(ValueTypeTest, Names) {
  EXPECT_STREQ(ValueTypeName(ValueType::kNull), "NULL");
  EXPECT_STREQ(ValueTypeName(ValueType::kInt64), "INT64");
  EXPECT_STREQ(ValueTypeName(ValueType::kDouble), "DOUBLE");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "STRING");
  EXPECT_STREQ(ValueTypeName(ValueType::kClob), "CLOB");
}

}  // namespace
}  // namespace rdfdb::storage
