#include "obs/slow_query_log.h"

#include <gtest/gtest.h>

#include <string>

#include "query/match.h"
#include "rdf/rdf_store.h"

namespace rdfdb::obs {
namespace {

SlowQueryLog::Entry MakeEntry(const std::string& query, int64_t total_ns) {
  SlowQueryLog::Entry entry;
  entry.query = query;
  entry.models = "m";
  entry.rows = 1;
  entry.total_ns = total_ns;
  return entry;
}

TEST(SlowQueryLogTest, RingEvictsOldestAndKeepsCapturedTotal) {
  SlowQueryLog log(/*threshold_ns=*/0, /*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    log.Record(MakeEntry("q" + std::to_string(i), 1000 + i));
  }
  EXPECT_EQ(log.captured(), 5u);
  std::vector<SlowQueryLog::Entry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  // Oldest first, and the two oldest captures were evicted.
  EXPECT_EQ(entries[0].query, "q2");
  EXPECT_EQ(entries[1].query, "q3");
  EXPECT_EQ(entries[2].query, "q4");
  // Capture ids stay monotonic across eviction.
  EXPECT_LT(entries[0].id, entries[1].id);
  EXPECT_LT(entries[1].id, entries[2].id);
}

TEST(SlowQueryLogTest, RenderingsCarryQueryAndLatency) {
  SlowQueryLog log(/*threshold_ns=*/0);
  SlowQueryLog::Entry entry = MakeEntry("(?s ?p ?o)", 5000000);
  entry.trace.rows_emitted = 1;
  entry.trace.total_ns = 5000000;
  log.Record(std::move(entry));
  EXPECT_NE(log.ToString().find("(?s ?p ?o)"), std::string::npos);
  std::string json = log.ToJson();
  EXPECT_NE(json.find("\"query\": \"(?s ?p ?o)\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"total_ns\": 5000000"), std::string::npos) << json;
}

class SlowQueryCaptureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateRdfModel("m", "mdata", "triple").ok());
    for (int i = 0; i < 64; ++i) {
      ASSERT_TRUE(store_
                      .InsertTriple("m", "<urn:s" + std::to_string(i) + ">",
                                    "<urn:p>", "\"v\"")
                      .ok());
    }
  }

  Result<query::MatchResult> RunQuery() {
    query::MatchOptions options;
    return query::SdoRdfMatch(&store_, nullptr, "(?s <urn:p> ?o)", {"m"},
                              {}, {}, "", options);
  }

  rdf::RdfStore store_;
};

// Threshold 0: every query is "slow" — the capture must carry the full
// trace even though the caller asked for none.
TEST_F(SlowQueryCaptureTest, ZeroThresholdCapturesEveryQueryWithTrace) {
  SlowQueryLog log(/*threshold_ns=*/0, /*capacity=*/4);
  store_.set_slow_query_log(&log);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(RunQuery().ok());
  }
  EXPECT_EQ(log.captured(), 6u);
  std::vector<SlowQueryLog::Entry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 4u);  // ring capacity
  for (const SlowQueryLog::Entry& entry : entries) {
    EXPECT_EQ(entry.query, "(?s <urn:p> ?o)");
    EXPECT_EQ(entry.models, "m");
    EXPECT_EQ(entry.rows, 64u);
    // The retained trace is the full EXPLAIN ANALYZE payload.
    EXPECT_EQ(entry.trace.rows_emitted, 64u);
    ASSERT_EQ(entry.trace.patterns.size(), 1u);
    EXPECT_EQ(entry.trace.patterns[0].rows_emitted, 64u);
    EXPECT_GT(entry.trace.total_ns, 0);
    EXPECT_EQ(entry.total_ns, entry.trace.total_ns);
  }
}

// A threshold far above any realistic latency: nothing is captured, and
// the store stays usable (the fast path is gated, not the query).
TEST_F(SlowQueryCaptureTest, HugeThresholdCapturesNothing) {
  SlowQueryLog log(/*threshold_ns=*/int64_t{1} << 60);
  store_.set_slow_query_log(&log);
  for (int i = 0; i < 4; ++i) {
    auto result = RunQuery();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->row_count(), 64u);
  }
  EXPECT_EQ(log.captured(), 0u);
  EXPECT_TRUE(log.Entries().empty());
}

// A caller-supplied trace must still be honoured (not clobbered by the
// capture machinery), and the captured entry equals it.
TEST_F(SlowQueryCaptureTest, CallerTraceAndCaptureCoexist) {
  SlowQueryLog log(/*threshold_ns=*/0);
  store_.set_slow_query_log(&log);
  QueryTrace trace;
  query::MatchOptions options;
  options.trace = &trace;
  auto result = query::SdoRdfMatch(&store_, nullptr, "(?s <urn:p> ?o)",
                                   {"m"}, {}, {}, "", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(trace.rows_emitted, 64u);
  std::vector<SlowQueryLog::Entry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].trace.rows_emitted, trace.rows_emitted);
  EXPECT_EQ(entries[0].total_ns, trace.total_ns);
}

// Detached log: queries trace nothing and capture nothing.
TEST_F(SlowQueryCaptureTest, DetachedStoreCapturesNothing) {
  ASSERT_EQ(store_.slow_query_log(), nullptr);
  ASSERT_TRUE(RunQuery().ok());
}

}  // namespace
}  // namespace rdfdb::obs
