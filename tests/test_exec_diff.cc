// Differential tests for the compiled streaming join executor: on
// randomized 1–5-pattern queries (star and chain shapes, filters,
// DISTINCT, LIMIT) over generated UniProt data, the compiled executor —
// sequential and parallel at several thread counts and chunk sizes —
// must produce exactly the legacy materializing join's rows, in the
// same order.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "gen/uniprot_gen.h"
#include "gen/workload.h"
#include "query/match.h"
#include "rdf/bulk_load.h"
#include "rdf/ntriples.h"
#include "rdf/rdf_store.h"
#include "rdf/term.h"

namespace rdfdb::query {
namespace {

constexpr char kModel[] = "diff";

struct SampledTriple {
  rdf::Term s, p, o;
};

/// Store + term-level triple sample shared by every test (loading the
/// workload once keeps the whole suite fast).
struct DiffData {
  rdf::RdfStore store;
  std::vector<SampledTriple> triples;
  /// Indexes into `triples` grouped by subject lexical (star shapes).
  std::unordered_map<std::string, std::vector<size_t>> by_subject;
  /// Literal display strings safe to embed in filter text.
  std::vector<std::string> literal_pool;
};

DiffData* SharedData() {
  static DiffData* data = [] {
    auto* d = new DiffData();
    gen::UniProtOptions gen_options;
    gen_options.target_triples = 3000;
    gen::UniProtDataset dataset = gen::GenerateUniProt(gen_options);
    auto load = gen::LoadUniProtIntoOracle(&d->store, kModel, "diff_app",
                                           dataset);
    if (!load.ok()) {
      ADD_FAILURE() << "workload load failed: " << load.status().ToString();
      return d;
    }
    d->store.links().ScanModel(
        load->model.model_id, [&](const rdf::LinkRow& row) {
          auto s = d->store.TermForValueId(row.start_node_id);
          auto p = d->store.TermForValueId(row.p_value_id);
          auto o = d->store.TermForValueId(row.end_node_id);
          if (s.ok() && p.ok() && o.ok()) {
            d->by_subject[s->lexical()].push_back(d->triples.size());
            d->triples.push_back(SampledTriple{*s, *p, *o});
          }
          return true;
        });
    for (const SampledTriple& t : d->triples) {
      if (!t.o.is_literal()) continue;
      const std::string& text = t.o.ToDisplayString();
      if (text.size() > 40 || text.find('"') != std::string::npos ||
          text.find('\\') != std::string::npos) {
        continue;
      }
      d->literal_pool.push_back(text);
    }
    return d;
  }();
  return data;
}

/// Render a sampled term as a pattern token (the N-Triples forms are
/// exactly what ParsePatternToken accepts).
std::string Tok(const rdf::Term& term) { return term.ToNTriples(); }

/// One generated query: pattern text, filter text, shaping options.
struct GeneratedQuery {
  std::string patterns;
  std::string filter;
  MatchOptions options;  // projection / distinct / limit only
};

GeneratedQuery GenerateQuery(Random& rng, const DiffData& data) {
  GeneratedQuery q;
  const size_t pattern_count = 1 + rng.Uniform(5);
  const bool star = rng.Bernoulli(0.5);

  std::vector<std::string> vars;  // first-use order
  auto use_var = [&](const std::string& name) {
    for (const std::string& v : vars) {
      if (v == name) return "?" + name;
    }
    vars.push_back(name);
    return "?" + name;
  };
  int next_fresh = 0;
  auto fresh_var = [&] { return use_var("v" + std::to_string(next_fresh++)); };

  // Star: all patterns sample triples of one subject and share ?s.
  // Chain: each pattern's subject is the previous pattern's object.
  size_t seed_idx = rng.Uniform(data.triples.size());
  if (star) {
    // Prefer a subject with a few triples so joins are non-trivial.
    for (int tries = 0; tries < 8; ++tries) {
      size_t candidate = rng.Uniform(data.triples.size());
      if (data.by_subject.at(data.triples[candidate].s.lexical()).size() >=
          3) {
        seed_idx = candidate;
        break;
      }
    }
  }
  const SampledTriple* current = &data.triples[seed_idx];
  std::string chain_subject_var;
  // One variable predicate per query keeps every pattern selective
  // enough that the legacy oracle's materialized intermediates stay
  // small (a disconnected wide scan multiplies them).
  bool used_var_predicate = false;

  for (size_t i = 0; i < pattern_count; ++i) {
    const SampledTriple& t = *current;
    std::string s_tok, p_tok, o_tok;

    if (star) {
      s_tok = rng.Bernoulli(0.85) ? use_var("s") : Tok(t.s);
    } else {
      s_tok = i == 0 ? (rng.Bernoulli(0.7) ? fresh_var() : Tok(t.s))
                     : chain_subject_var;
    }

    // Predicates: mostly constants (an unbound-predicate scan joined
    // into a chain is still covered, once per query).
    if (!used_var_predicate && rng.Bernoulli(0.15)) {
      p_tok = fresh_var();
      used_var_predicate = true;
    } else {
      p_tok = Tok(t.p);
    }
    // Rarely poison a predicate to exercise dead-constant plans.
    if (rng.Bernoulli(0.04)) p_tok = "<urn:diff:never_inserted>";

    const uint64_t o_roll = rng.Uniform(10);
    if (o_roll < 4) {
      o_tok = Tok(t.o);
    } else if (o_roll < 8 || vars.empty()) {
      o_tok = fresh_var();
    } else {
      // Reuse an existing variable: same-pattern repeats and
      // cross-pattern value joins both fall out of this.
      o_tok = "?" + vars[rng.Uniform(vars.size())];
    }

    q.patterns += "(" + s_tok + " " + p_tok + " " + o_tok + ") ";

    if (!star && i + 1 < pattern_count) {
      // Walk the chain through this triple's object when possible;
      // otherwise restart the chain anchored to an already-used
      // variable so the next pattern never cross-products.
      auto it = data.by_subject.find(t.o.lexical());
      if (!t.o.is_literal() && it != data.by_subject.end() &&
          o_tok[0] == '?') {
        chain_subject_var = o_tok;
        current = &data.triples[it->second[rng.Uniform(it->second.size())]];
      } else {
        chain_subject_var =
            vars.empty() ? fresh_var() : "?" + vars[rng.Uniform(vars.size())];
        current = &data.triples[rng.Uniform(data.triples.size())];
      }
    }
  }

  if (!vars.empty() && rng.Bernoulli(0.35)) {
    const std::string& var = vars[rng.Uniform(vars.size())];
    const char* op = rng.Bernoulli(0.5) ? "=" : "!=";
    if (vars.size() >= 2 && rng.Bernoulli(0.3)) {
      q.filter = "?" + var + " " + op + " ?" + vars[rng.Uniform(vars.size())];
    } else if (!data.literal_pool.empty()) {
      q.filter = "?" + var + " " + op + " \"" +
                 data.literal_pool[rng.Uniform(data.literal_pool.size())] +
                 "\"";
    }
  }

  if (!vars.empty() && rng.Bernoulli(0.4)) {
    for (const std::string& var : vars) {
      if (rng.Bernoulli(0.5)) q.options.projection.push_back(var);
    }
    if (q.options.projection.empty()) {
      q.options.projection.push_back(vars[rng.Uniform(vars.size())]);
    }
  }
  q.options.distinct = rng.Bernoulli(0.4);
  const size_t limits[] = {0, 1, 3, 10};
  q.options.limit = limits[rng.Uniform(4)];
  return q;
}

Result<MatchResult> RunQuery(const GeneratedQuery& q, bool use_legacy,
                             unsigned threads, size_t chunk_frames,
                             const std::string& model = kModel) {
  MatchOptions options = q.options;
  options.use_legacy = use_legacy;
  options.threads = threads;
  options.chunk_frames = chunk_frames;
  return SdoRdfMatch(&SharedData()->store, nullptr, q.patterns, {model},
                     {}, {}, q.filter, options);
}

/// Assert the compiled executor reproduces the legacy rows exactly —
/// same columns, same rows, same order — at several thread counts and
/// chunk sizes.
void ExpectDifferentialMatch(const GeneratedQuery& q,
                             const std::string& model = kModel) {
  SCOPED_TRACE("query: " + q.patterns + " filter: " + q.filter +
               (q.options.distinct ? " DISTINCT" : "") +
               " limit=" + std::to_string(q.options.limit));
  auto expected = RunQuery(q, /*use_legacy=*/true, 1, 512, model);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  struct Config {
    unsigned threads;
    size_t chunk_frames;
  };
  const Config configs[] = {{1, 512}, {2, 3}, {2, 512}, {8, 1}, {8, 512}};
  for (const Config& config : configs) {
    SCOPED_TRACE("threads=" + std::to_string(config.threads) +
                 " chunk_frames=" + std::to_string(config.chunk_frames));
    auto got = RunQuery(q, /*use_legacy=*/false, config.threads,
                        config.chunk_frames, model);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->columns(), expected->columns());
    ASSERT_EQ(got->row_count(), expected->row_count());
    for (size_t r = 0; r < got->row_count(); ++r) {
      for (size_t c = 0; c < got->columns().size(); ++c) {
        ASSERT_TRUE(got->at(r, c) == expected->at(r, c))
            << "row " << r << " col " << c << ": "
            << got->at(r, c).ToNTriples() << " vs "
            << expected->at(r, c).ToNTriples();
      }
    }
  }
}

TEST(ExecDiffTest, RandomizedQueriesMatchLegacy) {
  const DiffData& data = *SharedData();
  ASSERT_GE(data.triples.size(), 1000u);
  Random rng(20260806);
  for (int i = 0; i < 120; ++i) {
    ExpectDifferentialMatch(GenerateQuery(rng, data));
  }
}

TEST(ExecDiffTest, RepeatedVariableWithinPattern) {
  GeneratedQuery q;
  q.patterns = "(?x ?p ?x)";
  ExpectDifferentialMatch(q);
}

TEST(ExecDiffTest, SelfJoinAcrossPatterns) {
  GeneratedQuery q;
  q.patterns =
      "(?s <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?t) "
      "(?s <http://purl.uniprot.org/core/citation> ?c) (?c ?p ?o)";
  ExpectDifferentialMatch(q);
}

TEST(ExecDiffTest, AllConstantPattern) {
  const DiffData& data = *SharedData();
  ASSERT_FALSE(data.triples.empty());
  const SampledTriple& t = data.triples.front();
  GeneratedQuery q;
  q.patterns = "(" + Tok(t.s) + " " + Tok(t.p) + " " + Tok(t.o) + ")";
  ExpectDifferentialMatch(q);
}

TEST(ExecDiffTest, DeadConstantPlan) {
  GeneratedQuery q;
  q.patterns = "(?s <urn:diff:never_inserted> ?o) (?s ?p ?o2)";
  ExpectDifferentialMatch(q);
}

TEST(ExecDiffTest, LimitPrefixIsIdenticalUnderParallelism) {
  GeneratedQuery q;
  q.patterns =
      "(?s <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
      "<http://purl.uniprot.org/core/Protein>) (?s ?p ?o)";
  q.options.limit = 7;
  ExpectDifferentialMatch(q);
}

TEST(ExecDiffTest, DistinctProjectionUnderParallelism) {
  GeneratedQuery q;
  q.patterns =
      "(?s <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ?t) (?s ?p ?o)";
  q.options.projection = {"t", "p"};
  q.options.distinct = true;
  ExpectDifferentialMatch(q);
}

TEST(ExecDiffTest, FilterWithUnboundVariable) {
  // ?zzz never occurs in the query: comparisons against it are false on
  // both executors.
  GeneratedQuery q;
  q.patterns = "(?s <http://purl.uniprot.org/core/mnemonic> ?n)";
  q.filter = "?zzz = \"anything\"";
  ExpectDifferentialMatch(q);
}

// ---- Compressed-scan differentials ---------------------------------------
//
// The quad caches store postings delta-varint-compressed and mark
// deletions as tombstones (see rdf/codec.h, link_store.h). These tests
// pit that path — posting cursors, SpMap probes, galloping
// intersections, tombstone filters — against oracles that never touch
// it: a linear scan of the uncompressed rdf_link$ rows, and the legacy
// materializing executor.

/// Id-level quad, ordered so result multisets can be compared.
using IdQuadTuple = std::array<rdf::ValueId, 4>;

/// Every live quad of `model_id`, read from the rdf_link$ table rows
/// (not the compressed cache).
std::vector<IdQuadTuple> TableScanQuads(rdf::RdfStore* store,
                                        rdf::ModelId model_id) {
  std::vector<IdQuadTuple> quads;
  store->links().ScanModel(model_id, [&](const rdf::LinkRow& row) {
    quads.push_back({row.start_node_id, row.p_value_id, row.end_node_id,
                     row.canon_end_node_id});
    return true;
  });
  return quads;
}

/// Run one (s?, p?, canon_o?) probe through both paths and compare the
/// result multisets.
void ExpectProbeMatchesOracle(rdf::RdfStore* store, rdf::ModelId model_id,
                              const std::vector<IdQuadTuple>& oracle,
                              std::optional<rdf::ValueId> s,
                              std::optional<rdf::ValueId> p,
                              std::optional<rdf::ValueId> canon_o) {
  SCOPED_TRACE("probe s=" + (s ? std::to_string(*s) : "*") +
               " p=" + (p ? std::to_string(*p) : "*") +
               " o=" + (canon_o ? std::to_string(*canon_o) : "*"));
  std::vector<IdQuadTuple> expected;
  for (const IdQuadTuple& q : oracle) {
    if (s.has_value() && q[0] != *s) continue;
    if (p.has_value() && q[1] != *p) continue;
    if (canon_o.has_value() && q[3] != *canon_o) continue;
    expected.push_back(q);
  }
  std::vector<IdQuadTuple> got;
  store->MatchEachIds(model_id, s, p, canon_o,
                      [&](rdf::ValueId qs, rdf::ValueId qp, rdf::ValueId qo,
                          rdf::ValueId qc) {
                        got.push_back({qs, qp, qo, qc});
                        return true;
                      });
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got, expected);
}

TEST(ExecDiffTest, CompressedLeafScanMatchesTableScanOracle) {
  DiffData& data = *SharedData();
  auto model_id = data.store.GetModelId(kModel);
  ASSERT_TRUE(model_id.ok()) << model_id.status().ToString();
  const std::vector<IdQuadTuple> oracle =
      TableScanQuads(&data.store, *model_id);
  ASSERT_GE(oracle.size(), 1000u);

  Random rng(20260808);
  for (int probe = 0; probe < 400; ++probe) {
    const IdQuadTuple& pick = oracle[rng.Uniform(oracle.size())];
    std::optional<rdf::ValueId> s, p, canon_o;
    if (rng.Bernoulli(0.5)) s = pick[0];
    if (rng.Bernoulli(0.5)) p = pick[1];
    if (rng.Bernoulli(0.5)) {
      // Mostly a canon that pairs with the picked s/p, sometimes one
      // from an unrelated quad so empty intersections are covered.
      canon_o = rng.Bernoulli(0.75)
                    ? pick[3]
                    : oracle[rng.Uniform(oracle.size())][3];
    }
    // Occasionally probe an id that was never interned.
    if (rng.Bernoulli(0.05)) s = rdf::ValueId{1} << 40;
    ExpectProbeMatchesOracle(&data.store, *model_id, oracle, s, p, canon_o);
  }
}

TEST(ExecDiffTest, TombstonedQuadsVanishFromCompressedScans) {
  // A dedicated model (the shared kModel sample must stay intact):
  // insert, delete a random third, and every probe shape must agree
  // with the post-delete table rows — tombstoned cache quads must not
  // leak out of any posting or SpMap path.
  DiffData& data = *SharedData();
  const char kTombModel[] = "diff_tomb";
  auto created =
      data.store.CreateRdfModel(kTombModel, "diff_tomb_app", "triple");
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  struct Spo {
    std::string s, p, o;
  };
  std::vector<Spo> inserted;
  Random rng(20260809);
  for (int i = 0; i < 300; ++i) {
    Spo t{"<urn:tomb:s" + std::to_string(i % 40) + ">",
          "<urn:tomb:p" + std::to_string(i % 7) + ">",
          "<urn:tomb:o" + std::to_string(i % 90) + ">"};
    auto ins = data.store.InsertTriple(kTombModel, t.s, t.p, t.o);
    ASSERT_TRUE(ins.ok()) << ins.status().ToString();
    inserted.push_back(std::move(t));
  }
  for (const Spo& t : inserted) {
    if (!rng.Bernoulli(0.33)) continue;
    auto st = data.store.DeleteTriple(kTombModel, t.s, t.p, t.o);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  auto model_id = data.store.GetModelId(kTombModel);
  ASSERT_TRUE(model_id.ok()) << model_id.status().ToString();
  const std::vector<IdQuadTuple> oracle =
      TableScanQuads(&data.store, *model_id);
  ASSERT_FALSE(oracle.empty());
  // Deletes must actually have landed, or the oracle proves nothing.
  ASSERT_LT(oracle.size(), 300u - 40u);

  for (int probe = 0; probe < 200; ++probe) {
    const IdQuadTuple& pick = oracle[rng.Uniform(oracle.size())];
    std::optional<rdf::ValueId> s, p, canon_o;
    if (rng.Bernoulli(0.5)) s = pick[0];
    if (rng.Bernoulli(0.5)) p = pick[1];
    if (rng.Bernoulli(0.5)) canon_o = pick[3];
    ExpectProbeMatchesOracle(&data.store, *model_id, oracle, s, p, canon_o);
  }
  // The full unconstrained scan must also skip tombstones.
  ExpectProbeMatchesOracle(&data.store, *model_id, oracle, std::nullopt,
                           std::nullopt, std::nullopt);
}

TEST(ExecDiffTest, GallopingIntersectionMatchesLegacy) {
  // Postings sized past the executor's galloping threshold (driven
  // list > 4096 and the longer side > 8x sparser), with partial
  // overlap so SkipTo actually skips blocks. The legacy materializing
  // executor is the oracle.
  DiffData& data = *SharedData();
  const char kGallopModel[] = "diff_gallop";
  auto created =
      data.store.CreateRdfModel(kGallopModel, "diff_gallop_app", "triple");
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  // Hub subject s0: 4100 triples to the hub object (distinct
  // predicates) plus 4100 to private objects; the hub also referenced
  // by 62000 other subjects. by_s[s0] = 8200 (driven), by_canon[hub] =
  // 66100 (galloped: 66100/8 > 8200), overlap = 4100.
  std::vector<rdf::NTriple> triples;
  triples.reserve(70200);
  auto uri_triple = [](std::string s, std::string p, std::string o) {
    rdf::NTriple t;
    t.subject = rdf::Term::Uri(std::move(s));
    t.predicate = rdf::Term::Uri(std::move(p));
    t.object = rdf::Term::Uri(std::move(o));
    return t;
  };
  for (int i = 0; i < 4100; ++i) {
    triples.push_back(
        uri_triple("urn:g:s0", "urn:g:p" + std::to_string(i), "urn:g:hub"));
    triples.push_back(uri_triple("urn:g:s0", "urn:g:q" + std::to_string(i),
                                 "urn:g:o" + std::to_string(i)));
  }
  for (int i = 0; i < 62000; ++i) {
    triples.push_back(uri_triple("urn:g:s" + std::to_string(i + 1),
                                 "urn:g:ref", "urn:g:hub"));
  }
  auto loaded = rdf::BulkLoad(&data.store, kGallopModel, triples);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // (s, ?, o): PostingsS(s0) drives a gallop over PostingsCanon(hub).
  GeneratedQuery so;
  so.patterns = "(<urn:g:s0> ?p <urn:g:hub>)";
  ExpectDifferentialMatch(so, kGallopModel);

  // A miss: same shape against an object s0 never points at.
  GeneratedQuery miss;
  miss.patterns = "(<urn:g:s0> ?p <urn:g:o77>)";
  ExpectDifferentialMatch(miss, kGallopModel);

  // (The ExpectDifferentialMatch configs above already run the gallop
  // leaf under every parallel thread/chunk combination; a join through
  // the hub would explode the legacy oracle's materialized
  // intermediate — 4100 x 62000 rows — so it is deliberately absent.)

  // Same shapes at the id level against the table-scan oracle.
  auto model_id = data.store.GetModelId(kGallopModel);
  ASSERT_TRUE(model_id.ok()) << model_id.status().ToString();
  const std::vector<IdQuadTuple> oracle =
      TableScanQuads(&data.store, *model_id);
  ASSERT_EQ(oracle.size(), 70200u);
  auto s0 = data.store.LookupValue(rdf::Term::Uri("urn:g:s0"));
  auto hub = data.store.LookupValue(rdf::Term::Uri("urn:g:hub"));
  auto ref = data.store.LookupValue(rdf::Term::Uri("urn:g:ref"));
  ASSERT_TRUE(s0 && hub && ref);
  ExpectProbeMatchesOracle(&data.store, *model_id, oracle, *s0, std::nullopt,
                           *hub);
  ExpectProbeMatchesOracle(&data.store, *model_id, oracle, std::nullopt,
                           *ref, *hub);
}

}  // namespace
}  // namespace rdfdb::query
