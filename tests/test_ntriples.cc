#include "rdf/ntriples.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace rdfdb::rdf {
namespace {

TEST(NTriplesLineTest, BasicUriTriple) {
  auto parsed = ParseNTriplesLine(
      "<http://s> <http://p> <http://o> .");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->has_value());
  const NTriple& t = **parsed;
  EXPECT_EQ(t.subject.lexical(), "http://s");
  EXPECT_EQ(t.predicate.lexical(), "http://p");
  EXPECT_EQ(t.object.lexical(), "http://o");
}

TEST(NTriplesLineTest, BlankAndCommentLinesSkipped) {
  auto blank = ParseNTriplesLine("");
  ASSERT_TRUE(blank.ok());
  EXPECT_FALSE(blank->has_value());
  auto spaces = ParseNTriplesLine("   \t ");
  ASSERT_TRUE(spaces.ok());
  EXPECT_FALSE(spaces->has_value());
  auto comment = ParseNTriplesLine("# a comment <x> <y> <z> .");
  ASSERT_TRUE(comment.ok());
  EXPECT_FALSE(comment->has_value());
}

TEST(NTriplesLineTest, BlankNodes) {
  auto parsed = ParseNTriplesLine("_:a <http://p> _:b .");
  ASSERT_TRUE(parsed.ok());
  const NTriple& t = **parsed;
  EXPECT_TRUE(t.subject.is_blank());
  EXPECT_EQ(t.subject.lexical(), "a");
  EXPECT_TRUE(t.object.is_blank());
  EXPECT_EQ(t.object.lexical(), "b");
}

TEST(NTriplesLineTest, PlainLiteralObject) {
  auto parsed = ParseNTriplesLine("<http://s> <http://p> \"hello world\" .");
  ASSERT_TRUE(parsed.ok());
  EXPECT_STREQ((*parsed)->object.TypeCode(), "PL");
  EXPECT_EQ((*parsed)->object.lexical(), "hello world");
}

TEST(NTriplesLineTest, LanguageTaggedLiteral) {
  auto parsed = ParseNTriplesLine("<http://s> <http://p> \"chat\"@fr .");
  ASSERT_TRUE(parsed.ok());
  EXPECT_STREQ((*parsed)->object.TypeCode(), "PL@");
  EXPECT_EQ((*parsed)->object.language(), "fr");
}

TEST(NTriplesLineTest, TypedLiteral) {
  auto parsed = ParseNTriplesLine(
      "<http://s> <http://p> "
      "\"25\"^^<http://www.w3.org/2001/XMLSchema#int> .");
  ASSERT_TRUE(parsed.ok());
  EXPECT_STREQ((*parsed)->object.TypeCode(), "TL");
  EXPECT_EQ((*parsed)->object.datatype(),
            "http://www.w3.org/2001/XMLSchema#int");
}

TEST(NTriplesLineTest, EscapesInLiterals) {
  auto parsed = ParseNTriplesLine(
      "<http://s> <http://p> \"line1\\nline2 \\\"q\\\" \\\\\" .");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->object.lexical(), "line1\nline2 \"q\" \\");
}

TEST(NTriplesLineTest, LiteralContainingDotAndSpaces) {
  auto parsed = ParseNTriplesLine(
      "<http://s> <http://p> \"v. 2. etc\" .");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->object.lexical(), "v. 2. etc");
}

TEST(NTriplesLineTest, MalformedLines) {
  const char* cases[] = {
      "<http://s> <http://p> <http://o>",          // no terminator
      "<http://s> <http://p> .",                    // missing object
      "<http://s> .",                               // missing pred/obj
      "\"lit\" <http://p> <http://o> .",            // literal subject
      "<http://s> _:b <http://o> .",                // blank predicate
      "<http://s> \"lit\" <http://o> .",            // literal predicate
      "<http://s> <http://p> \"unterminated .",     // bad literal
      "<http://s> <http://p> <http://o> . extra",   // trailing junk
      "<http://s <http://p> <http://o> .",          // unterminated uri
      "<http://s> <http://p> \"x\"^^notauri .",     // bad datatype
  };
  for (const char* line : cases) {
    auto parsed = ParseNTriplesLine(line);
    EXPECT_FALSE(parsed.ok()) << line;
  }
}

TEST(NTriplesDocTest, ParsesMultipleLines) {
  std::string doc =
      "# header\n"
      "<http://s1> <http://p> <http://o1> .\n"
      "\n"
      "<http://s2> <http://p> \"v\" .\n";
  auto parsed = ParseNTriplesDocument(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 2u);
}

TEST(NTriplesDocTest, ReportsLineNumberOnError) {
  std::string doc =
      "<http://s1> <http://p> <http://o1> .\n"
      "garbage here\n";
  auto parsed = ParseNTriplesDocument(doc);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesRoundTripTest, SerializeThenParse) {
  const NTriple cases[] = {
      {Term::Uri("http://s"), Term::Uri("http://p"), Term::Uri("http://o")},
      {Term::BlankNode("b1"), Term::Uri("http://p"),
       Term::PlainLiteral("with \"quotes\" and\nnewline")},
      {Term::Uri("http://s"), Term::Uri("http://p"),
       Term::PlainLiteralLang("salut", "fr")},
      {Term::Uri("http://s"), Term::Uri("http://p"),
       Term::TypedLiteral("3.14",
                          "http://www.w3.org/2001/XMLSchema#decimal")},
  };
  for (const NTriple& t : cases) {
    std::string line = ToNTriplesLine(t);
    auto parsed = ParseNTriplesLine(line);
    ASSERT_TRUE(parsed.ok()) << line;
    ASSERT_TRUE(parsed->has_value());
    EXPECT_EQ(**parsed, t) << line;
  }
}

TEST(NTriplesFileTest, WriteAndReadBack) {
  std::string path = ::testing::TempDir() + "/rdfdb_ntriples_test.nt";
  std::vector<NTriple> triples = {
      {Term::Uri("http://a"), Term::Uri("http://p"), Term::Uri("http://b")},
      {Term::Uri("http://a"), Term::Uri("http://q"),
       Term::PlainLiteral("text")},
  };
  ASSERT_TRUE(WriteNTriplesFile(path, triples).ok());
  auto back = ParseNTriplesFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, triples);
  std::remove(path.c_str());
}

TEST(NTriplesFileTest, MissingFileIsIOError) {
  EXPECT_TRUE(ParseNTriplesFile("/nonexistent/x.nt").status().IsIOError());
}

}  // namespace
}  // namespace rdfdb::rdf
