#include "rdf/term.h"

#include <gtest/gtest.h>

#include "rdf/vocab.h"

namespace rdfdb::rdf {
namespace {

TEST(TermTest, UriBasics) {
  Term t = Term::Uri("http://www.us.gov#files");
  EXPECT_TRUE(t.is_uri());
  EXPECT_FALSE(t.is_blank());
  EXPECT_FALSE(t.is_literal());
  EXPECT_STREQ(t.TypeCode(), "UR");
  EXPECT_EQ(t.ToNTriples(), "<http://www.us.gov#files>");
  EXPECT_EQ(t.ToDisplayString(), "http://www.us.gov#files");
}

TEST(TermTest, BlankNodeBasics) {
  Term t = Term::BlankNode("anyname001");
  EXPECT_TRUE(t.is_blank());
  EXPECT_STREQ(t.TypeCode(), "BN");
  EXPECT_EQ(t.ToNTriples(), "_:anyname001");
  EXPECT_EQ(t.ToDisplayString(), "_:anyname001");
}

TEST(TermTest, PlainLiteral) {
  Term t = Term::PlainLiteral("bombing");
  EXPECT_TRUE(t.is_literal());
  EXPECT_STREQ(t.TypeCode(), "PL");
  EXPECT_EQ(t.ToNTriples(), "\"bombing\"");
  EXPECT_EQ(t.ToDisplayString(), "bombing");
}

TEST(TermTest, LanguageTaggedLiteral) {
  Term t = Term::PlainLiteralLang("chat", "fr");
  EXPECT_STREQ(t.TypeCode(), "PL@");
  EXPECT_EQ(t.language(), "fr");
  EXPECT_EQ(t.ToNTriples(), "\"chat\"@fr");
}

TEST(TermTest, EmptyLanguageFallsBackToPlain) {
  Term t = Term::PlainLiteralLang("x", "");
  EXPECT_STREQ(t.TypeCode(), "PL");
}

TEST(TermTest, TypedLiteral) {
  Term t = Term::TypedLiteral("25", std::string(kXsdInt));
  EXPECT_STREQ(t.TypeCode(), "TL");
  EXPECT_TRUE(t.is_typed_literal());
  EXPECT_EQ(t.datatype(), kXsdInt);
  EXPECT_EQ(t.ToNTriples(),
            "\"25\"^^<http://www.w3.org/2001/XMLSchema#int>");
}

TEST(TermTest, LongLiteralThreshold) {
  // "Long-literals are text values that exceed 4000 characters."
  std::string at_threshold(kLongLiteralThreshold, 'x');
  std::string over_threshold(kLongLiteralThreshold + 1, 'x');
  EXPECT_STREQ(Term::PlainLiteral(at_threshold).TypeCode(), "PL");
  EXPECT_STREQ(Term::PlainLiteral(over_threshold).TypeCode(), "PLL");
  EXPECT_STREQ(Term::TypedLiteral(over_threshold,
                                  std::string(kXsdString))
                   .TypeCode(),
               "TLL");
  EXPECT_TRUE(Term::PlainLiteral(over_threshold).is_long_literal());
}

TEST(TermTest, EscapingInNTriples) {
  Term t = Term::PlainLiteral("line1\nline2\t\"quoted\"\\slash");
  EXPECT_EQ(t.ToNTriples(),
            "\"line1\\nline2\\t\\\"quoted\\\"\\\\slash\"");
}

TEST(TermTest, EqualityAndHash) {
  EXPECT_EQ(Term::Uri("a"), Term::Uri("a"));
  EXPECT_NE(Term::Uri("a"), Term::Uri("b"));
  EXPECT_NE(Term::Uri("a"), Term::PlainLiteral("a"));
  EXPECT_NE(Term::PlainLiteral("a"), Term::PlainLiteralLang("a", "en"));
  EXPECT_NE(Term::TypedLiteral("a", "t1"), Term::TypedLiteral("a", "t2"));
  EXPECT_EQ(Term::Uri("a").Hash(), Term::Uri("a").Hash());
  EXPECT_NE(Term::Uri("a").Hash(), Term::PlainLiteral("a").Hash());
}

TEST(ParseApiTermTest, PrefixedNameIsUri) {
  auto t = ParseApiTerm("gov:files");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_uri());
  EXPECT_EQ(t->lexical(), "gov:files");
}

TEST(ParseApiTermTest, FullUri) {
  auto t = ParseApiTerm("http://www.us.gov#files");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_uri());
}

TEST(ParseApiTermTest, UrnIsUri) {
  auto t = ParseApiTerm("urn:lsid:uniprot.org:uniprot:P93259");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_uri());
}

TEST(ParseApiTermTest, AngleBracketUri) {
  auto t = ParseApiTerm("<http://example.org/x>");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_uri());
  EXPECT_EQ(t->lexical(), "http://example.org/x");
}

TEST(ParseApiTermTest, BareWordIsPlainLiteral) {
  // The paper's example inserts the object 'bombing' unquoted.
  auto t = ParseApiTerm("bombing");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_literal());
  EXPECT_EQ(t->lexical(), "bombing");
}

TEST(ParseApiTermTest, DateLikeStringIsLiteral) {
  auto t = ParseApiTerm("June-20-2000");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_literal());
}

TEST(ParseApiTermTest, BlankNode) {
  auto t = ParseApiTerm("_:b1");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_blank());
  EXPECT_EQ(t->lexical(), "b1");
  EXPECT_FALSE(ParseApiTerm("_:").ok());
}

TEST(ParseApiTermTest, QuotedLiteralForms) {
  auto plain = ParseApiTerm("\"hello world\"");
  ASSERT_TRUE(plain.ok());
  EXPECT_STREQ(plain->TypeCode(), "PL");
  EXPECT_EQ(plain->lexical(), "hello world");

  auto lang = ParseApiTerm("\"chat\"@fr");
  ASSERT_TRUE(lang.ok());
  EXPECT_STREQ(lang->TypeCode(), "PL@");
  EXPECT_EQ(lang->language(), "fr");

  auto typed =
      ParseApiTerm("\"25\"^^<http://www.w3.org/2001/XMLSchema#int>");
  ASSERT_TRUE(typed.ok());
  EXPECT_STREQ(typed->TypeCode(), "TL");
  EXPECT_EQ(typed->datatype(), kXsdInt);

  // Well-known prefixes expand so canonicalization applies uniformly.
  auto typed_bare = ParseApiTerm("\"25\"^^xsd:int");
  ASSERT_TRUE(typed_bare.ok());
  EXPECT_EQ(typed_bare->datatype(), kXsdInt);
  auto custom_bare = ParseApiTerm("\"x\"^^my:type");
  ASSERT_TRUE(custom_bare.ok());
  EXPECT_EQ(custom_bare->datatype(), "my:type");
}

TEST(ParseApiTermTest, EscapedQuotedLiteral) {
  auto t = ParseApiTerm("\"a\\\"b\\nc\"");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->lexical(), "a\"b\nc");
}

TEST(ParseApiTermTest, Malformed) {
  EXPECT_FALSE(ParseApiTerm("").ok());
  EXPECT_FALSE(ParseApiTerm("   ").ok());
  EXPECT_FALSE(ParseApiTerm("\"unterminated").ok());
  EXPECT_FALSE(ParseApiTerm("\"x\"@").ok());
  EXPECT_FALSE(ParseApiTerm("\"x\"^^").ok());
  EXPECT_FALSE(ParseApiTerm("\"x\"junk").ok());
  EXPECT_FALSE(ParseApiTerm("<>").ok());
}

TEST(ParseApiTermTest, TrimsWhitespace) {
  auto t = ParseApiTerm("  gov:files  ");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->lexical(), "gov:files");
}

TEST(ParseApiSubjectTest, RejectsLiterals) {
  EXPECT_TRUE(ParseApiSubject("gov:files").ok());
  EXPECT_TRUE(ParseApiSubject("_:b").ok());
  EXPECT_FALSE(ParseApiSubject("\"literal\"").ok());
  EXPECT_FALSE(ParseApiSubject("bareword").ok());
}

TEST(ParseApiPredicateTest, RequiresUri) {
  EXPECT_TRUE(ParseApiPredicate("gov:terrorSuspect").ok());
  EXPECT_FALSE(ParseApiPredicate("_:b").ok());
  EXPECT_FALSE(ParseApiPredicate("\"lit\"").ok());
}

TEST(VocabTest, ContainerMembershipProperty) {
  EXPECT_TRUE(IsContainerMembershipProperty(std::string(kRdfNs) + "_1"));
  EXPECT_TRUE(IsContainerMembershipProperty(std::string(kRdfNs) + "_42"));
  EXPECT_FALSE(IsContainerMembershipProperty(std::string(kRdfNs) + "_"));
  EXPECT_FALSE(IsContainerMembershipProperty(std::string(kRdfNs) + "_1a"));
  EXPECT_FALSE(IsContainerMembershipProperty(std::string(kRdfNs) + "type"));
  EXPECT_FALSE(IsContainerMembershipProperty("http://other#_1"));
}

}  // namespace
}  // namespace rdfdb::rdf
