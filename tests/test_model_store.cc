#include "rdf/model_store.h"

#include <gtest/gtest.h>

#include "rdf/link_store.h"
#include "rdf/value_store.h"

namespace rdfdb::rdf {
namespace {

class ModelStoreTest : public ::testing::Test {
 protected:
  ModelStoreTest() : values_(&db_), links_(&db_, &net_), models_(&db_) {}

  Result<ModelInfo> Create(const std::string& name,
                           const std::string& owner = "") {
    return models_.CreateModel(name, name + "data", "triple", owner,
                               &links_.table(), /*model_column=*/9);
  }

  storage::Database db_{"ORADB"};
  ndm::LogicalNetwork net_;
  ValueStore values_;
  LinkStore links_;
  ModelStore models_;
};

TEST_F(ModelStoreTest, CreateAssignsIdsAndRegistersView) {
  auto cia = Create("cia");
  ASSERT_TRUE(cia.ok());
  EXPECT_GT(cia->model_id, 0);
  EXPECT_EQ(cia->app_table, "ciadata");
  EXPECT_EQ(cia->app_column, "triple");
  // "A view of the rdf_link$ table ... is also created (rdfm_model_name)."
  EXPECT_NE(db_.GetView("MDSYS", "RDFM_CIA"), nullptr);
  auto dhs = Create("dhs");
  ASSERT_TRUE(dhs.ok());
  EXPECT_NE(dhs->model_id, cia->model_id);
}

TEST_F(ModelStoreTest, DuplicateNameRejected) {
  ASSERT_TRUE(Create("cia").ok());
  EXPECT_TRUE(Create("cia").status().IsAlreadyExists());
  EXPECT_TRUE(Create("CIA").status().IsAlreadyExists());  // case-insensitive
}

TEST_F(ModelStoreTest, EmptyNameRejected) {
  EXPECT_TRUE(Create("").status().IsInvalidArgument());
}

TEST_F(ModelStoreTest, LookupByNameAndId) {
  auto created = Create("fbi");
  ASSERT_TRUE(created.ok());
  auto id = models_.GetModelId("fbi");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, created->model_id);
  EXPECT_EQ(*models_.GetModelId("FBI"), created->model_id);
  auto info = models_.GetModelById(created->model_id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->model_name, "fbi");
  EXPECT_TRUE(models_.GetModelId("nope").status().IsNotFound());
  EXPECT_TRUE(models_.GetModelById(777).status().IsNotFound());
}

TEST_F(ModelStoreTest, ViewShowsOnlyModelRows) {
  auto cia = Create("cia");
  auto dhs = Create("dhs");
  ValueId s = *values_.LookupOrInsert(Term::Uri("s"));
  ValueId p = *values_.LookupOrInsert(Term::Uri("p"));
  ValueId o = *values_.LookupOrInsert(Term::Uri("o"));
  (void)links_.Insert(cia->model_id, s, p, o, o, "STANDARD",
                      TripleContext::kDirect, false);
  (void)links_.Insert(dhs->model_id, s, p, o, o, "STANDARD",
                      TripleContext::kDirect, false);
  (void)links_.Insert(dhs->model_id, o, p, s, s, "STANDARD",
                      TripleContext::kDirect, false);
  EXPECT_EQ(db_.GetView("MDSYS", "RDFM_CIA")->row_count(), 1u);
  EXPECT_EQ(db_.GetView("MDSYS", "RDFM_DHS")->row_count(), 2u);
}

TEST_F(ModelStoreTest, ViewOwnership) {
  ASSERT_TRUE(Create("cia", "cia_user").ok());
  storage::View* view = db_.GetView("MDSYS", "RDFM_CIA");
  ASSERT_NE(view, nullptr);
  EXPECT_TRUE(view->CanSelect("cia_user"));
  EXPECT_FALSE(view->CanSelect("dhs_user"));
  view->GrantSelect("dhs_user");
  EXPECT_TRUE(view->CanSelect("dhs_user"));
}

TEST_F(ModelStoreTest, DropRemovesRegistryAndView) {
  ASSERT_TRUE(Create("temp").ok());
  ASSERT_TRUE(models_.DropModel("temp").ok());
  EXPECT_TRUE(models_.GetModelId("temp").status().IsNotFound());
  EXPECT_EQ(db_.GetView("MDSYS", "RDFM_TEMP"), nullptr);
  EXPECT_TRUE(models_.DropModel("temp").IsNotFound());
  // Name can be reused after drop.
  EXPECT_TRUE(Create("temp").ok());
}

TEST_F(ModelStoreTest, ModelNamesSorted) {
  ASSERT_TRUE(Create("fbi").ok());
  ASSERT_TRUE(Create("cia").ok());
  ASSERT_TRUE(Create("dhs").ok());
  EXPECT_EQ(models_.ModelNames(),
            (std::vector<std::string>{"cia", "dhs", "fbi"}));
}

TEST(ModelStoreNaming, ViewNameFor) {
  EXPECT_EQ(ModelStore::ViewNameFor("cia"), "RDFM_CIA");
  EXPECT_EQ(ModelStore::ViewNameFor("MiXeD"), "RDFM_MIXED");
}

}  // namespace
}  // namespace rdfdb::rdf
