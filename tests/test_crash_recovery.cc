// Randomized crash-recovery torture harness (the tentpole's acceptance
// test): run a scripted workload through a FaultInjectingEnv, crash at
// hundreds of distinct byte offsets and operation indices, reopen the
// store from the surviving files with a clean Env, and verify that the
// recovered triple set is exactly the reference state after some
// prefix of the workload — and, at SyncMode::kEveryRecord, that no
// acknowledged mutation was lost even when everything unsynced is
// dropped at the crash.
//
// The seed is overridable: RDFDB_TORTURE_SEED=12345 ./test_crash_recovery

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "rdf/redo_log.h"
#include "storage/env.h"

namespace rdfdb::rdf {
namespace {

uint64_t TortureSeed() {
  if (const char* s = std::getenv("RDFDB_TORTURE_SEED")) {
    return static_cast<uint64_t>(std::strtoull(s, nullptr, 10));
  }
  return 20260806;
}

// --- scripted workload --------------------------------------------------

struct Op {
  enum Kind {
    kCreateModel,
    kDropModel,
    kInsert,
    kDelete,
    kReify,
    kAssertAbout,
    kAssertImplied,
    kCheckpoint,
  };
  Kind kind;
  std::string model, a, b, s, p, o;
};

/// Deterministic workload: two models, mixed mutations, one model
/// drop/recreate, two checkpoints. Ops reference a small closed vocab
/// so deletes/reifications usually hit existing triples.
std::vector<Op> MakeWorkload(uint64_t seed, size_t n_ops) {
  Random rng(seed);
  std::vector<std::string> models = {"alpha", "beta"};
  auto subj = [&] { return "ex:s" + std::to_string(rng.Uniform(8)); };
  auto prop = [&] { return "ex:p" + std::to_string(rng.Uniform(4)); };
  auto obj = [&] {
    if (rng.Uniform(4) == 0) {
      return "\"v" + std::to_string(rng.Uniform(16)) + "\"";
    }
    return "ex:o" + std::to_string(rng.Uniform(10));
  };

  std::vector<Op> ops;
  ops.push_back({Op::kCreateModel, models[0], "t0", "c0", "", "", ""});
  ops.push_back({Op::kCreateModel, models[1], "t1", "c1", "", "", ""});
  while (ops.size() < n_ops) {
    const std::string model = models[rng.Uniform(2)];
    uint32_t dice = rng.Uniform(100);
    if (ops.size() == n_ops / 3 || ops.size() == (2 * n_ops) / 3) {
      ops.push_back({Op::kCheckpoint, "", "", "", "", "", ""});
    } else if (ops.size() == n_ops / 2) {
      // Drop and recreate the second model mid-stream.
      ops.push_back({Op::kDropModel, models[1], "", "", "", "", ""});
      ops.push_back({Op::kCreateModel, models[1], "t1", "c1", "", "", ""});
    } else if (dice < 55) {
      ops.push_back({Op::kInsert, model, "", "", subj(), prop(), obj()});
    } else if (dice < 70) {
      ops.push_back({Op::kDelete, model, "", "", subj(), prop(), obj()});
    } else if (dice < 82) {
      ops.push_back({Op::kReify, model, "", "", subj(), prop(), obj()});
    } else if (dice < 92) {
      ops.push_back({Op::kAssertAbout, model, "ex:agent", "ex:said",
                     subj(), prop(), obj()});
    } else {
      ops.push_back({Op::kAssertImplied, model, "ex:agent", "ex:claims",
                     subj(), prop(), obj()});
    }
  }
  return ops;
}

/// Apply one op through the logged store. Semantic failures (delete of
/// a missing triple, reify of a missing triple) are expected — only
/// successful ops reach the log. Checkpoint failure under an armed
/// fault is a crash like any other.
Status ApplyLogged(LoggedRdfStore* db, const Op& op) {
  switch (op.kind) {
    case Op::kCreateModel:
      return db->CreateRdfModel(op.model, op.a, op.b).status();
    case Op::kDropModel:
      return db->DropRdfModel(op.model);
    case Op::kInsert:
      return db->InsertTriple(op.model, op.s, op.p, op.o).status();
    case Op::kDelete:
      return db->DeleteTriple(op.model, op.s, op.p, op.o);
    case Op::kReify: {
      auto id = db->store().GetTripleId(op.model, op.s, op.p, op.o);
      if (!id.ok()) return id.status();
      return db->ReifyTriple(op.model, *id).status();
    }
    case Op::kAssertAbout: {
      auto id = db->store().GetTripleId(op.model, op.s, op.p, op.o);
      if (!id.ok()) return id.status();
      return db->AssertAboutTriple(op.model, op.a, op.b, *id).status();
    }
    case Op::kAssertImplied:
      return db->AssertImplied(op.model, op.a, op.b, op.s, op.p, op.o)
          .status();
    case Op::kCheckpoint:
      return db->Checkpoint();
  }
  return Status::InvalidArgument("unknown op");
}

/// The same op against the plain in-memory reference store (checkpoint
/// is a logical no-op). Mirrors ApplyLogged's semantics exactly.
void ApplyReference(RdfStore* store, const Op& op) {
  switch (op.kind) {
    case Op::kCreateModel:
      (void)store->CreateRdfModel(op.model, op.a, op.b);
      break;
    case Op::kDropModel:
      (void)store->DropRdfModel(op.model);
      break;
    case Op::kInsert:
      (void)store->InsertTriple(op.model, op.s, op.p, op.o);
      break;
    case Op::kDelete:
      (void)store->DeleteTriple(op.model, op.s, op.p, op.o);
      break;
    case Op::kReify: {
      auto id = store->GetTripleId(op.model, op.s, op.p, op.o);
      if (id.ok()) (void)store->ReifyTriple(op.model, *id);
      break;
    }
    case Op::kAssertAbout: {
      auto id = store->GetTripleId(op.model, op.s, op.p, op.o);
      if (id.ok()) (void)store->AssertAboutTriple(op.model, op.a, op.b, *id);
      break;
    }
    case Op::kAssertImplied:
      (void)store->AssertImplied(op.model, op.a, op.b, op.s, op.p, op.o);
      break;
    case Op::kCheckpoint:
      break;
  }
}

/// Canonical textual fingerprint of the store's logical state: every
/// model's triples (resolved to display text + context), sorted.
std::string DumpStore(const RdfStore& store) {
  std::vector<std::string> lines;
  for (const std::string& model : store.ModelNames()) {
    auto model_id = store.GetModelId(model);
    if (!model_id.ok()) continue;
    lines.push_back("model " + model);
    store.links().ScanModel(*model_id, [&](const LinkRow& row) {
      auto triple = store.ResolveTriple(row.link_id);
      if (triple.ok()) {
        lines.push_back(model + "|" + triple->subject + "|" +
                        triple->property + "|" + triple->object + "|" +
                        std::to_string(static_cast<int>(row.context)));
      }
      return true;
    });
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

// --- harness ------------------------------------------------------------

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    seed_ = TortureSeed();
    ops_ = MakeWorkload(seed_, 90);
    // Reference prefix dumps: dumps_[k] = state after the first k ops.
    RdfStore reference;
    dumps_.push_back(DumpStore(reference));
    for (const Op& op : ops_) {
      ApplyReference(&reference, op);
      dumps_.push_back(DumpStore(reference));
    }
  }

  std::string BasePath(size_t run) const {
    return ::testing::TempDir() + "/rdfdb_torture_" +
           std::to_string(seed_) + "_" + std::to_string(run);
  }

  static void RemoveStoreFiles(const std::string& base) {
    auto rm = [](const std::string& p) { std::remove(p.c_str()); };
    rm(base);
    rm(base + ".tmp");
    rm(base + ".log");
    rm(LoggedRdfStore::ManifestPath(base));
    rm(LoggedRdfStore::ManifestPath(base) + ".tmp");
    for (uint64_t gen = 1; gen <= 8; ++gen) {
      rm(LoggedRdfStore::GenerationFileName(base, gen));
      rm(LoggedRdfStore::GenerationFileName(base, gen) + ".tmp");
    }
  }

  /// Run the workload against `base` through `env` until an op fails
  /// (the simulated process death) or the script ends. Returns the
  /// number of acknowledged (OK) mutating ops; semantic failures with
  /// the env still alive don't stop the run and aren't acked.
  size_t RunWorkload(const std::string& base, storage::FaultInjectingEnv* env,
                     SyncMode sync_mode) {
    LoggedStoreOptions options;
    options.sync_mode = sync_mode;
    options.env = env;
    auto db = LoggedRdfStore::Open(base, base + ".log", options);
    if (!db.ok()) return 0;  // crashed during open
    size_t acked = 0;
    for (const Op& op : ops_) {
      Status status = ApplyLogged(db->get(), op);
      if (status.ok()) {
        ++acked;
      } else if (env->crashed()) {
        break;  // the process died here
      }
      // else: semantic failure (e.g. delete of absent triple) — the
      // reference made the same non-change; keep going.
    }
    return acked;
  }

  /// Recover from the on-disk state with a clean env and return the
  /// index of the *largest* reference prefix it matches (-1 = none).
  int RecoverAndMatch(const std::string& base, std::string* dump_out,
                      bool* torn_out = nullptr) {
    auto recovered = LoggedRdfStore::Open(base, base + ".log");
    EXPECT_TRUE(recovered.ok())
        << "recovery failed: " << recovered.status().ToString();
    if (!recovered.ok()) return -1;
    EXPECT_TRUE((*recovered)->store().CheckConsistency().ok());
    if (torn_out != nullptr) {
      *torn_out = (*recovered)->recovery_stats().torn_tail;
    }
    std::string dump = DumpStore((*recovered)->store());
    if (dump_out != nullptr) *dump_out = dump;
    for (int k = static_cast<int>(dumps_.size()) - 1; k >= 0; --k) {
      if (dumps_[static_cast<size_t>(k)] == dump) return k;
    }
    return -1;
  }

  uint64_t seed_ = 0;
  std::vector<Op> ops_;
  std::vector<std::string> dumps_;
};

TEST_F(CrashRecoveryTest, SurvivesCrashAtEveryInjectionPoint) {
  // Profile pass: how many bytes / mutating ops does the full workload
  // produce? (No fault armed.)
  uint64_t total_bytes, total_ops;
  {
    const std::string base = BasePath(0);
    RemoveStoreFiles(base);
    storage::FaultInjectingEnv env;
    size_t acked = RunWorkload(base, &env, SyncMode::kEveryRecord);
    EXPECT_GT(acked, ops_.size() / 2);
    total_bytes = env.bytes_appended();
    total_ops = env.mutating_ops();
    // Sanity: the clean run recovers to exactly the final state.
    EXPECT_EQ(RecoverAndMatch(base, nullptr),
              static_cast<int>(ops_.size()));
    RemoveStoreFiles(base);
  }
  ASSERT_GT(total_bytes, 0u);
  ASSERT_GT(total_ops, 0u);

  // Injection points: ~160 byte offsets + ~60 op indices, all distinct.
  constexpr size_t kBytePoints = 160;
  constexpr size_t kOpPoints = 60;
  std::set<std::pair<int, uint64_t>> points;  // (kind, value)
  for (size_t i = 0; i < kBytePoints; ++i) {
    points.insert({0, 1 + (total_bytes * i) / kBytePoints});
  }
  for (size_t i = 0; i < kOpPoints; ++i) {
    points.insert({1, 1 + (total_ops * i) / kOpPoints});
  }
  ASSERT_GE(points.size(), 200u) << "workload too small to place the "
                                    "required distinct injection points";

  size_t run = 1, torn_recoveries = 0;
  for (const auto& [kind, value] : points) {
    const std::string base = BasePath(run);
    RemoveStoreFiles(base);
    storage::FaultInjectingEnv env;
    // Alternate the page-cache-loss model so both "torn bytes survive"
    // and "unsynced bytes vanish" crashes are covered.
    const bool drop_unsynced = (run % 2 == 0);
    env.set_drop_unsynced_on_crash(drop_unsynced);
    if (kind == 0) {
      env.CrashAfterBytes(value);
    } else {
      env.CrashAfterOps(value);
    }

    size_t acked = RunWorkload(base, &env, SyncMode::kEveryRecord);

    std::string dump;
    bool torn = false;
    int matched = RecoverAndMatch(base, &dump, &torn);
    if (torn) ++torn_recoveries;
    ASSERT_GE(matched, 0)
        << "crash point " << (kind == 0 ? "bytes=" : "ops=") << value
        << " (seed " << seed_ << "): recovered state matches no "
        << "reference prefix\nrecovered:\n"
        << dump;
    // kEveryRecord: an OK return means the record was fdatasync'd, so
    // even with every unsynced byte dropped no acked op may be lost.
    // (`matched` may exceed `acked`: semantic-failure ops don't change
    // state, and a crash mid-ack can leave an un-acked op durable.)
    EXPECT_GE(matched, static_cast<int>(acked))
        << "crash point " << (kind == 0 ? "bytes=" : "ops=") << value
        << " (seed " << seed_ << ", drop_unsynced=" << drop_unsynced
        << "): lost acked mutations (acked " << acked << ", recovered "
        << "prefix " << matched << ")";

    RemoveStoreFiles(base);
    ++run;
  }
  // The byte-offset sweep lands mid-record constantly (without
  // drop-unsynced a torn prefix stays on disk); if no run ever saw a
  // torn tail the injection isn't exercising what it claims to.
  EXPECT_GT(torn_recoveries, 0u);
  RecordProperty("torn_recoveries", static_cast<int>(torn_recoveries));
}

TEST_F(CrashRecoveryTest, SyncModeNoneStillRecoversToSomePrefix) {
  // At kNone an OK return promises nothing durable — but recovery must
  // still land on *some* consistent reference prefix (never a corrupt
  // or torn-in-the-middle state), even when unsynced bytes vanish.
  uint64_t total_ops;
  {
    const std::string base = BasePath(9000);
    RemoveStoreFiles(base);
    storage::FaultInjectingEnv env;
    (void)RunWorkload(base, &env, SyncMode::kNone);
    total_ops = env.mutating_ops();
    RemoveStoreFiles(base);
  }
  ASSERT_GT(total_ops, 0u);
  constexpr size_t kPoints = 20;
  for (size_t i = 0; i < kPoints; ++i) {
    const std::string base = BasePath(9001 + i);
    RemoveStoreFiles(base);
    storage::FaultInjectingEnv env;
    env.set_drop_unsynced_on_crash(true);
    env.CrashAfterOps(1 + (total_ops * i) / kPoints);
    size_t acked = RunWorkload(base, &env, SyncMode::kNone);
    (void)acked;  // explicitly NOT guaranteed durable at kNone
    int matched = RecoverAndMatch(base, nullptr);
    ASSERT_GE(matched, 0) << "kNone crash point " << i << " (seed "
                          << seed_ << ")";
    RemoveStoreFiles(base);
  }
}

}  // namespace
}  // namespace rdfdb::rdf
