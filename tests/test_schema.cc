#include "storage/schema.h"

#include <gtest/gtest.h>

namespace rdfdb::storage {
namespace {

Schema MakeSchema() {
  return Schema({
      ColumnDef{"ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"NAME", ValueType::kString, /*nullable=*/true},
      ColumnDef{"SCORE", ValueType::kDouble, /*nullable=*/true},
      ColumnDef{"BODY", ValueType::kClob, /*nullable=*/true},
  });
}

TEST(SchemaTest, ColumnLookup) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.num_columns(), 4u);
  EXPECT_EQ(s.ColumnIndex("ID"), 0);
  EXPECT_EQ(s.ColumnIndex("BODY"), 3);
  EXPECT_EQ(s.ColumnIndex("NOPE"), -1);
  EXPECT_EQ(s.column(1).name, "NAME");
}

TEST(SchemaTest, ValidRowPasses) {
  Schema s = MakeSchema();
  Row row{Value::Int64(1), Value::String("a"), Value::Double(0.5),
          Value::Clob("body")};
  EXPECT_TRUE(s.ValidateRow(row).ok());
}

TEST(SchemaTest, ArityMismatchFails) {
  Schema s = MakeSchema();
  EXPECT_TRUE(s.ValidateRow({Value::Int64(1)}).IsInvalidArgument());
  EXPECT_TRUE(s.ValidateRow({}).IsInvalidArgument());
}

TEST(SchemaTest, NullInNotNullColumnFails) {
  Schema s = MakeSchema();
  Row row{Value::Null(), Value::Null(), Value::Null(), Value::Null()};
  Status st = s.ValidateRow(row);
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("ID"), std::string::npos);
}

TEST(SchemaTest, NullInNullableColumnsPasses) {
  Schema s = MakeSchema();
  Row row{Value::Int64(1), Value::Null(), Value::Null(), Value::Null()};
  EXPECT_TRUE(s.ValidateRow(row).ok());
}

TEST(SchemaTest, TypeMismatchFails) {
  Schema s = MakeSchema();
  Row row{Value::String("oops"), Value::Null(), Value::Null(), Value::Null()};
  EXPECT_TRUE(s.ValidateRow(row).IsInvalidArgument());
}

TEST(SchemaTest, WideningCoercionsAllowed) {
  Schema s = MakeSchema();
  // Int into double column; string into clob column.
  Row row{Value::Int64(1), Value::Null(), Value::Int64(3),
          Value::String("short text")};
  EXPECT_TRUE(s.ValidateRow(row).ok());
}

TEST(SchemaTest, NarrowingCoercionsRejected) {
  Schema s = MakeSchema();
  // Double into int column.
  Row bad_int{Value::Double(1.5), Value::Null(), Value::Null(),
              Value::Null()};
  EXPECT_TRUE(s.ValidateRow(bad_int).IsInvalidArgument());
  // Clob into string column.
  Row bad_str{Value::Int64(1), Value::Clob("x"), Value::Null(),
              Value::Null()};
  EXPECT_TRUE(s.ValidateRow(bad_str).IsInvalidArgument());
}

TEST(SchemaTest, EmptySchema) {
  Schema s;
  EXPECT_EQ(s.num_columns(), 0u);
  EXPECT_TRUE(s.ValidateRow({}).ok());
}

}  // namespace
}  // namespace rdfdb::storage
