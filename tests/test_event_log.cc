#include "obs/event_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "rdf/bulk_load.h"
#include "rdf/rdf_store.h"

namespace rdfdb::obs {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(EventLogTest, EventsDrainInAppendOrderWithContiguousSeq) {
  std::ostringstream sink;
  EventLog::Options options;
  options.sink = &sink;
  auto log = EventLog::Open(std::move(options));
  ASSERT_TRUE(log.ok());

  for (int i = 0; i < 10; ++i) {
    (*log)->Append("test", "tick", {EventField::Num("i", i)});
  }
  (*log)->Flush();

  std::vector<std::string> lines = Lines(sink.str());
  ASSERT_EQ(lines.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NE(lines[i].find("\"seq\":" + std::to_string(i)),
              std::string::npos)
        << lines[i];
    EXPECT_NE(lines[i].find("\"i\":" + std::to_string(i)), std::string::npos)
        << lines[i];
    EXPECT_NE(lines[i].find("\"cat\":\"test\""), std::string::npos);
    EXPECT_NE(lines[i].find("\"event\":\"tick\""), std::string::npos);
  }
  EXPECT_EQ((*log)->appended(), 10u);
  EXPECT_EQ((*log)->dropped(), 0u);
  EXPECT_EQ((*log)->written(), 10u);
}

TEST(EventLogTest, FieldsRenderNumbersUnquotedAndStringsEscaped) {
  std::ostringstream sink;
  EventLog::Options options;
  options.sink = &sink;
  auto log = EventLog::Open(std::move(options));
  ASSERT_TRUE(log.ok());
  (*log)->Append("test", "mixed",
                 {EventField::Num("n", -7),
                  EventField::Str("s", "a \"quoted\"\nvalue")});
  (*log)->Flush();
  const std::string line = sink.str();
  EXPECT_NE(line.find("\"n\":-7"), std::string::npos) << line;
  EXPECT_NE(line.find("\"s\":\"a \\\"quoted\\\"\\nvalue\""),
            std::string::npos)
      << line;
}

// Overload: a stalled drainer (simulated by flooding far beyond
// capacity from inside a single append burst) must drop NEW events and
// count them, never block or corrupt the buffered prefix.
TEST(EventLogTest, OverloadDropsNewEventsAndCountsThem) {
  std::ostringstream sink;
  EventLog::Options options;
  options.sink = &sink;
  options.capacity = 8;
  auto log = EventLog::Open(std::move(options));
  ASSERT_TRUE(log.ok());

  constexpr uint64_t kBurst = 10000;
  for (uint64_t i = 0; i < kBurst; ++i) {
    (*log)->Append("test", "burst", {EventField::Num("i", static_cast<int64_t>(i))});
  }
  (*log)->Flush();

  // appended counts every Append call; dropped is the subset that never
  // reached the ring, so written + dropped == appended.
  const uint64_t appended = (*log)->appended();
  const uint64_t dropped = (*log)->dropped();
  const uint64_t written = (*log)->written();
  EXPECT_EQ(appended, kBurst);
  EXPECT_EQ(written + dropped, appended);
  // With a ring of 8 against a 10k burst, some drops are certain.
  EXPECT_GT(dropped, 0u);

  // The written prefix is in seq order with gaps only where drops
  // happened: seq values strictly increase.
  std::vector<std::string> lines = Lines(sink.str());
  ASSERT_EQ(lines.size(), written);
  int64_t last_seq = -1;
  for (const std::string& line : lines) {
    auto pos = line.find("\"seq\":");
    ASSERT_NE(pos, std::string::npos);
    int64_t seq = std::strtoll(line.c_str() + pos + 6, nullptr, 10);
    EXPECT_GT(seq, last_seq);
    last_seq = seq;
  }
}

// The TSan target: concurrent producers against the drainer. Every
// appended event must surface exactly once, and the per-log seq must be
// unique across threads.
TEST(EventLogTest, ConcurrentWritersProduceExactlyOnceDelivery) {
  std::ostringstream sink;
  EventLog::Options options;
  options.sink = &sink;
  options.capacity = 1 << 14;  // ample: no drops expected
  auto log = EventLog::Open(std::move(options));
  ASSERT_TRUE(log.ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        (*log)->Append("test", "mt",
                       {EventField::Num("thread", t),
                        EventField::Num("i", i)});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  (*log)->Flush();

  EXPECT_EQ((*log)->appended(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ((*log)->written() + (*log)->dropped(), (*log)->appended());
  std::vector<std::string> lines = Lines(sink.str());
  EXPECT_EQ(lines.size(), (*log)->written());

  std::set<int64_t> seqs;
  for (const std::string& line : lines) {
    auto pos = line.find("\"seq\":");
    ASSERT_NE(pos, std::string::npos);
    EXPECT_TRUE(
        seqs.insert(std::strtoll(line.c_str() + pos + 6, nullptr, 10))
            .second)
        << "duplicate seq in " << line;
  }
}

TEST(EventLogTest, FileSinkAppendsJsonl) {
  const std::string path = ::testing::TempDir() + "/event_log_test.jsonl";
  std::remove(path.c_str());
  {
    EventLog::Options options;
    options.path = path;
    auto log = EventLog::Open(std::move(options));
    ASSERT_TRUE(log.ok());
    (*log)->Append("test", "file", {EventField::Str("k", "v")});
  }  // destructor drains + closes
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"event\":\"file\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(EventLogTest, LogErrorEventIsNullSafeAndStructured) {
  LogErrorEvent(nullptr, "Nowhere", Status::NotFound("x"));  // must not crash

  std::ostringstream sink;
  EventLog::Options options;
  options.sink = &sink;
  auto log = EventLog::Open(std::move(options));
  ASSERT_TRUE(log.ok());
  LogErrorEvent(log->get(), "BulkLoad", Status::InvalidArgument("bad line"));
  (*log)->Flush();
  const std::string line = sink.str();
  EXPECT_NE(line.find("\"cat\":\"error\""), std::string::npos) << line;
  EXPECT_NE(line.find("BulkLoad"), std::string::npos);
  EXPECT_NE(line.find("bad line"), std::string::npos);
}

// End-to-end through the store: lifecycle, DDL, bulk-load chunk and
// done events arrive in causal order.
TEST(EventLogTest, StoreEmitsLifecycleModelAndBulkLoadEvents) {
  std::ostringstream sink;
  EventLog::Options options;
  options.sink = &sink;
  auto log = EventLog::Open(std::move(options));
  ASSERT_TRUE(log.ok());
  {
    rdf::RdfStore store;
    store.set_event_log(log->get());
    ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
    std::vector<rdf::NTriple> triples;
    for (int i = 0; i < 50; ++i) {
      triples.push_back({rdf::Term::Uri("urn:s" + std::to_string(i)),
                         rdf::Term::Uri("urn:p"),
                         rdf::Term::PlainLiteral("v")});
    }
    ASSERT_TRUE(rdf::BulkLoad(&store, "m", triples).ok());
    EXPECT_FALSE(store.CreateRdfModel("m", "mdata", "triple").ok());
  }  // store close event
  (*log)->Flush();

  const std::string text = sink.str();
  const auto attach = text.find("\"event\":\"attach\"");
  const auto create = text.find("\"event\":\"create\"");
  const auto chunk = text.find("\"event\":\"chunk\"");
  const auto done = text.find("\"event\":\"done\"");
  const auto error = text.find("\"cat\":\"error\"");
  const auto close = text.find("\"event\":\"close\"");
  ASSERT_NE(attach, std::string::npos);
  ASSERT_NE(create, std::string::npos);
  ASSERT_NE(chunk, std::string::npos);
  ASSERT_NE(done, std::string::npos);
  ASSERT_NE(error, std::string::npos);  // duplicate CreateRdfModel
  ASSERT_NE(close, std::string::npos);
  EXPECT_LT(attach, create);
  EXPECT_LT(create, chunk);
  EXPECT_LT(chunk, done);
  EXPECT_LT(done, error);
  EXPECT_LT(error, close);
  EXPECT_NE(text.find("\"new_links\":50"), std::string::npos) << text;
}

}  // namespace
}  // namespace rdfdb::obs
