#include "ndm/network.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace rdfdb::ndm {
namespace {

TEST(NetworkTest, AddNodeIdempotent) {
  LogicalNetwork net;
  net.AddNode(1);
  net.AddNode(1);
  EXPECT_EQ(net.node_count(), 1u);
  EXPECT_TRUE(net.HasNode(1));
  EXPECT_FALSE(net.HasNode(2));
}

TEST(NetworkTest, AddLinkCreatesEndpoints) {
  LogicalNetwork net;
  ASSERT_TRUE(net.AddLink({100, 1, 2, 1.0, 0}).ok());
  EXPECT_TRUE(net.HasNode(1));
  EXPECT_TRUE(net.HasNode(2));
  EXPECT_TRUE(net.HasLink(100));
  EXPECT_EQ(net.link_count(), 1u);
  const Link* link = net.GetLink(100);
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->start, 1);
  EXPECT_EQ(link->end, 2);
}

TEST(NetworkTest, DuplicateLinkIdRejected) {
  LogicalNetwork net;
  ASSERT_TRUE(net.AddLink({100, 1, 2}).ok());
  EXPECT_TRUE(net.AddLink({100, 3, 4}).IsAlreadyExists());
}

TEST(NetworkTest, ParallelLinksAllowed) {
  // "A new link is always created whenever a new triple is inserted."
  LogicalNetwork net;
  ASSERT_TRUE(net.AddLink({1, 10, 20}).ok());
  ASSERT_TRUE(net.AddLink({2, 10, 20}).ok());
  EXPECT_EQ(net.OutDegree(10), 2u);
  EXPECT_EQ(net.InDegree(20), 2u);
  // Successors deduplicates.
  EXPECT_EQ(net.Successors(10), std::vector<NodeId>{20});
}

TEST(NetworkTest, DegreesAndAdjacency) {
  LogicalNetwork net;
  ASSERT_TRUE(net.AddLink({1, 1, 2}).ok());
  ASSERT_TRUE(net.AddLink({2, 1, 3}).ok());
  ASSERT_TRUE(net.AddLink({3, 4, 1}).ok());
  EXPECT_EQ(net.OutDegree(1), 2u);
  EXPECT_EQ(net.InDegree(1), 1u);
  EXPECT_EQ(net.OutDegree(99), 0u);  // unknown node
  auto succ = net.Successors(1);
  std::sort(succ.begin(), succ.end());
  EXPECT_EQ(succ, (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(net.Predecessors(1), std::vector<NodeId>{4});
  EXPECT_TRUE(net.OutLinks(99).empty());
}

TEST(NetworkTest, RemoveLinkKeepsConnectedNodes) {
  // "The nodes attached to this link are not removed if there are other
  // links connected to them."
  LogicalNetwork net;
  ASSERT_TRUE(net.AddLink({1, 1, 2}).ok());
  ASSERT_TRUE(net.AddLink({2, 1, 3}).ok());
  ASSERT_TRUE(net.RemoveLink(1).ok());
  EXPECT_FALSE(net.HasLink(1));
  EXPECT_TRUE(net.HasNode(1));  // still has link 2
  EXPECT_TRUE(net.HasNode(2));  // node removal is explicit
  EXPECT_TRUE(net.RemoveNodeIfIsolated(2));
  EXPECT_FALSE(net.RemoveNodeIfIsolated(1));  // not isolated
  EXPECT_FALSE(net.RemoveNodeIfIsolated(42));  // unknown
}

TEST(NetworkTest, RemoveMissingLink) {
  LogicalNetwork net;
  EXPECT_TRUE(net.RemoveLink(7).IsNotFound());
}

TEST(NetworkTest, NodesAndLinksEnumerate) {
  LogicalNetwork net;
  ASSERT_TRUE(net.AddLink({1, 1, 2}).ok());
  ASSERT_TRUE(net.AddLink({2, 2, 3}).ok());
  auto nodes = net.Nodes();
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(nodes, (std::vector<NodeId>{1, 2, 3}));
  auto links = net.Links();
  std::sort(links.begin(), links.end());
  EXPECT_EQ(links, (std::vector<LinkId>{1, 2}));
}

TEST(NetworkTest, LinkLabelAndCostStored) {
  LogicalNetwork net;
  ASSERT_TRUE(net.AddLink({5, 1, 2, 2.5, 77}).ok());
  const Link* link = net.GetLink(5);
  EXPECT_DOUBLE_EQ(link->cost, 2.5);
  EXPECT_EQ(link->label, 77);
}

TEST(NetworkTest, SelfLoop) {
  LogicalNetwork net;
  ASSERT_TRUE(net.AddLink({1, 7, 7}).ok());
  EXPECT_EQ(net.OutDegree(7), 1u);
  EXPECT_EQ(net.InDegree(7), 1u);
  ASSERT_TRUE(net.RemoveLink(1).ok());
  EXPECT_TRUE(net.RemoveNodeIfIsolated(7));
}

}  // namespace
}  // namespace rdfdb::ndm
