#include "rdf/redo_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/crc32c.h"

namespace rdfdb::rdf {
namespace {

class RedoLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    snapshot_path_ = ::testing::TempDir() + "/rdfdb_redo_snap.bin";
    log_path_ = ::testing::TempDir() + "/rdfdb_redo.log";
    RemoveStoreFiles();
  }

  void TearDown() override { RemoveStoreFiles(); }

  // The store roots several files at snapshot_path_ (manifest +
  // generation snapshots); stale ones leak state across test processes
  // sharing TempDir.
  void RemoveStoreFiles() {
    std::remove(snapshot_path_.c_str());
    std::remove(log_path_.c_str());
    std::remove(LoggedRdfStore::ManifestPath(snapshot_path_).c_str());
    for (uint64_t gen = 1; gen <= 16; ++gen) {
      std::remove(
          LoggedRdfStore::GenerationFileName(snapshot_path_, gen).c_str());
    }
  }

  /// A framing-valid log line (correct CRC) with the given seq and
  /// already-escaped body.
  static std::string FramedRecord(uint64_t seq, const std::string& body) {
    char crc[16];
    std::snprintf(crc, sizeof(crc), "%08x", Crc32c(body));
    return std::to_string(seq) + "\t" + crc + "\t" + body + "\n";
  }

  std::string snapshot_path_;
  std::string log_path_;
};

TEST_F(RedoLogTest, CrashRecoveryFromLogOnly) {
  {
    auto db = LoggedRdfStore::Open(snapshot_path_, log_path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRdfModel("cia", "ciadata", "triple").ok());
    ASSERT_TRUE((*db)
                    ->InsertTriple("cia", "gov:files",
                                   "gov:terrorSuspect", "id:JohnDoe")
                    .ok());
    ASSERT_TRUE((*db)
                    ->InsertTriple("cia", "gov:files",
                                   "gov:terrorSuspect", "id:JaneDoe")
                    .ok());
    // "Crash": drop the in-memory store without checkpointing.
  }
  auto recovered = LoggedRdfStore::Open(snapshot_path_, log_path_);
  ASSERT_TRUE(recovered.ok());
  RdfStore& store = (*recovered)->store();
  EXPECT_TRUE(*store.IsTriple("cia", "gov:files", "gov:terrorSuspect",
                              "id:JohnDoe"));
  EXPECT_TRUE(*store.IsTriple("cia", "gov:files", "gov:terrorSuspect",
                              "id:JaneDoe"));
  EXPECT_EQ(store.links().TotalTripleCount(), 2u);
  EXPECT_TRUE(store.CheckConsistency().ok());
}

TEST_F(RedoLogTest, ReificationAndAssertionsReplay) {
  LinkId original_base = 0;
  {
    auto db = LoggedRdfStore::Open(snapshot_path_, log_path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRdfModel("cia", "ciadata", "triple").ok());
    auto base = (*db)->InsertTriple("cia", "gov:files",
                                    "gov:terrorSuspect", "id:JohnDoe");
    ASSERT_TRUE(base.ok());
    original_base = base->rdf_t_id();
    ASSERT_TRUE((*db)->ReifyTriple("cia", base->rdf_t_id()).ok());
    ASSERT_TRUE((*db)
                    ->AssertAboutTriple("cia", "gov:MI5", "gov:source",
                                        base->rdf_t_id())
                    .ok());
    ASSERT_TRUE((*db)
                    ->AssertImplied("cia", "gov:Interpol", "gov:source",
                                    "gov:files", "gov:terrorSuspect",
                                    "id:JohnDoeJr")
                    .ok());
  }
  auto recovered = LoggedRdfStore::Open(snapshot_path_, log_path_);
  ASSERT_TRUE(recovered.ok());
  RdfStore& store = (*recovered)->store();
  EXPECT_TRUE(*store.IsReified("cia", "gov:files", "gov:terrorSuspect",
                               "id:JohnDoe"));
  EXPECT_TRUE(*store.IsReified("cia", "gov:files", "gov:terrorSuspect",
                               "id:JohnDoeJr"));
  // Implied context preserved through replay.
  auto implied_id = store.GetTripleId("cia", "gov:files",
                                      "gov:terrorSuspect", "id:JohnDoeJr");
  ASSERT_TRUE(implied_id.ok());
  EXPECT_EQ(store.links().Get(*implied_id)->context,
            TripleContext::kImplied);
  // Same logical state: 1 fact + 2 reifs + 2 assertions + 1 implied = 6.
  EXPECT_EQ(store.links().TotalTripleCount(), 6u);
  (void)original_base;
}

TEST_F(RedoLogTest, DeletesReplay) {
  {
    auto db = LoggedRdfStore::Open(snapshot_path_, log_path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRdfModel("m", "mdata", "triple").ok());
    ASSERT_TRUE((*db)->InsertTriple("m", "gov:a", "gov:p", "gov:b").ok());
    ASSERT_TRUE((*db)->InsertTriple("m", "gov:c", "gov:p", "gov:d").ok());
    ASSERT_TRUE((*db)->DeleteTriple("m", "gov:a", "gov:p", "gov:b").ok());
  }
  auto recovered = LoggedRdfStore::Open(snapshot_path_, log_path_);
  ASSERT_TRUE(recovered.ok());
  RdfStore& store = (*recovered)->store();
  EXPECT_FALSE(*store.IsTriple("m", "gov:a", "gov:p", "gov:b"));
  EXPECT_TRUE(*store.IsTriple("m", "gov:c", "gov:p", "gov:d"));
}

TEST_F(RedoLogTest, TypedLiteralsAndBlanksSurviveReplay) {
  {
    auto db = LoggedRdfStore::Open(snapshot_path_, log_path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRdfModel("m", "mdata", "triple").ok());
    ASSERT_TRUE(
        (*db)->InsertTriple("m", "gov:x", "gov:age", "\"+025\"^^xsd:int")
            .ok());
    ASSERT_TRUE((*db)
                    ->InsertTriple("m", "_:b1", "gov:label",
                                   "\"tab\\there\"@en")
                    .ok());
    // Reify a triple with a blank subject (exercises the original-label
    // recovery path in logical logging).
    auto base = (*db)->store().GetTripleId("m", "_:b1", "gov:label",
                                           "\"tab\\there\"@en");
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE((*db)->ReifyTriple("m", *base).ok());
  }
  auto recovered = LoggedRdfStore::Open(snapshot_path_, log_path_);
  ASSERT_TRUE(recovered.ok());
  RdfStore& store = (*recovered)->store();
  EXPECT_TRUE(*store.IsTriple("m", "gov:x", "gov:age",
                              "\"+025\"^^xsd:int"));
  // Canonicalization still applied after replay: query the canon form.
  auto id = store.GetTripleId("m", "gov:x", "gov:age",
                              "\"+025\"^^xsd:int");
  ASSERT_TRUE(id.ok());
  auto row = store.links().Get(*id);
  EXPECT_NE(row->end_node_id, row->canon_end_node_id);
  EXPECT_TRUE(*store.IsReified("m", "_:b1", "gov:label",
                               "\"tab\\there\"@en"));
}

TEST_F(RedoLogTest, CheckpointTruncatesLogAndKeepsState) {
  {
    auto db = LoggedRdfStore::Open(snapshot_path_, log_path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRdfModel("m", "mdata", "triple").ok());
    ASSERT_TRUE((*db)->InsertTriple("m", "gov:a", "gov:p", "gov:b").ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    // Post-checkpoint mutation lands in the fresh log.
    ASSERT_TRUE((*db)->InsertTriple("m", "gov:c", "gov:p", "gov:d").ok());
  }
  // Log contains only the post-checkpoint record.
  std::ifstream log(log_path_);
  std::string line;
  size_t lines = 0;
  while (std::getline(log, line)) {
    if (!line.empty()) ++lines;
  }
  EXPECT_EQ(lines, 1u);

  auto recovered = LoggedRdfStore::Open(snapshot_path_, log_path_);
  ASSERT_TRUE(recovered.ok());
  RdfStore& store = (*recovered)->store();
  EXPECT_TRUE(*store.IsTriple("m", "gov:a", "gov:p", "gov:b"));
  EXPECT_TRUE(*store.IsTriple("m", "gov:c", "gov:p", "gov:d"));
  EXPECT_TRUE(store.CheckConsistency().ok());
}

TEST_F(RedoLogTest, ModelDropReplays) {
  {
    auto db = LoggedRdfStore::Open(snapshot_path_, log_path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRdfModel("temp", "t", "triple").ok());
    ASSERT_TRUE((*db)->InsertTriple("temp", "gov:a", "gov:p", "gov:b")
                    .ok());
    ASSERT_TRUE((*db)->DropRdfModel("temp").ok());
    ASSERT_TRUE((*db)->CreateRdfModel("keep", "k", "triple").ok());
  }
  auto recovered = LoggedRdfStore::Open(snapshot_path_, log_path_);
  ASSERT_TRUE(recovered.ok());
  RdfStore& store = (*recovered)->store();
  EXPECT_TRUE(store.GetModelId("temp").status().IsNotFound());
  EXPECT_TRUE(store.GetModelId("keep").ok());
  EXPECT_EQ(store.links().TotalTripleCount(), 0u);
}

TEST_F(RedoLogTest, FailedOperationsAreNotLogged) {
  {
    auto db = LoggedRdfStore::Open(snapshot_path_, log_path_);
    ASSERT_TRUE(db.ok());
    // Inserting into a missing model fails and must leave no record.
    EXPECT_FALSE(
        (*db)->InsertTriple("ghost", "gov:a", "gov:p", "gov:b").ok());
    EXPECT_FALSE((*db)->DeleteTriple("ghost", "a", "b", "c").ok());
  }
  std::ifstream log(log_path_);
  std::string contents((std::istreambuf_iterator<char>(log)),
                       std::istreambuf_iterator<char>());
  EXPECT_TRUE(contents.empty());
  // And recovery from the empty log succeeds.
  auto recovered = LoggedRdfStore::Open(snapshot_path_, log_path_);
  ASSERT_TRUE(recovered.ok());
}

TEST_F(RedoLogTest, CorruptLogRejected) {
  // Mid-log damage (a later record follows the garbage) is always hard
  // Corruption — the torn-tail tolerance covers only the final record.
  {
    std::ofstream log(log_path_);
    log << "Z\tgarbage\trecord\n";
    log << FramedRecord(2, "X\tm");
  }
  EXPECT_TRUE(LoggedRdfStore::Open(snapshot_path_, log_path_)
                  .status()
                  .IsCorruption());
}

TEST_F(RedoLogTest, TruncatedFieldCountRejected) {
  // CRC-valid but semantically malformed (wrong arity) — never
  // tolerated, even as the final record.
  {
    std::ofstream log(log_path_);
    log << FramedRecord(1, "I\tmodel\tsubject");  // I needs 4 fields
  }
  RdfStore store;
  EXPECT_TRUE(ReplayRedoLog(log_path_, &store).status().IsCorruption());
}

TEST_F(RedoLogTest, TornFinalRecordToleratedAndTruncated) {
  {
    auto db = LoggedRdfStore::Open(snapshot_path_, log_path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRdfModel("m", "mdata", "triple").ok());
    ASSERT_TRUE((*db)->InsertTriple("m", "gov:a", "gov:p", "gov:b").ok());
  }
  // Simulate a crash mid-append: a partial record at the tail.
  std::uintmax_t clean_size;
  {
    std::ifstream log(log_path_, std::ios::binary | std::ios::ate);
    clean_size = static_cast<std::uintmax_t>(log.tellg());
    std::ofstream append(log_path_, std::ios::app);
    append << "3\tdeadbe";  // torn: no CRC, no body, no newline
  }
  auto recovered = LoggedRdfStore::Open(snapshot_path_, log_path_);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE((*recovered)->recovery_stats().torn_tail);
  EXPECT_EQ((*recovered)->recovery_stats().records, 2u);
  EXPECT_TRUE(*(*recovered)->store().IsTriple("m", "gov:a", "gov:p",
                                              "gov:b"));
  // The torn bytes were truncated away at the last valid boundary.
  std::ifstream log(log_path_, std::ios::binary | std::ios::ate);
  EXPECT_EQ(static_cast<std::uintmax_t>(log.tellg()), clean_size);
  // ... so a second recovery is clean.
  recovered = LoggedRdfStore::Open(snapshot_path_, log_path_);
  ASSERT_TRUE(recovered.ok());
  EXPECT_FALSE((*recovered)->recovery_stats().torn_tail);
}

TEST_F(RedoLogTest, SeqGapRejected) {
  {
    std::ofstream log(log_path_);
    log << FramedRecord(1, "C\tm\tt\tc\t");
    log << FramedRecord(3, "X\tm");  // 2 is missing
  }
  EXPECT_TRUE(LoggedRdfStore::Open(snapshot_path_, log_path_)
                  .status()
                  .IsCorruption());
}

TEST_F(RedoLogTest, PoisonedLogFailsFast) {
  auto db = LoggedRdfStore::Open(snapshot_path_, log_path_);
  ASSERT_TRUE(db.ok());
  storage::FaultInjectingEnv env;
  RedoLogOptions opts;
  opts.env = &env;
  auto log = RedoLog::Open(log_path_ + ".poison", opts);
  ASSERT_TRUE(log.ok());
  env.CrashAfterBytes(5);  // first append tears mid-record
  Status first = (*log)->LogDropModel("some_model_name");
  EXPECT_FALSE(first.ok());
  EXPECT_FALSE((*log)->poisoned().ok());
  // Every later append fails fast with the original error, even though
  // the env would now accept... nothing, it is frozen; but poisoning is
  // checked before any I/O is attempted.
  Status second = (*log)->LogDropModel("x");
  EXPECT_EQ(second.message(), first.message());
  std::remove((log_path_ + ".poison").c_str());
}

TEST_F(RedoLogTest, MissingLogIsEmpty) {
  RdfStore store;
  auto stats = ReplayRedoLog("/nonexistent/never.log", &store);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records, 0u);
}

TEST_F(RedoLogTest, EscapingRoundTrips) {
  {
    auto db = LoggedRdfStore::Open(snapshot_path_, log_path_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRdfModel("m", "mdata", "triple").ok());
    // Literal with tab, newline and backslash.
    ASSERT_TRUE((*db)
                    ->InsertTriple("m", "gov:doc", "gov:body",
                                   "\"line1\\nline2\\ttabbed\"")
                    .ok());
  }
  auto recovered = LoggedRdfStore::Open(snapshot_path_, log_path_);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(*(*recovered)->store().IsTriple(
      "m", "gov:doc", "gov:body", "\"line1\\nline2\\ttabbed\""));
}

}  // namespace
}  // namespace rdfdb::rdf
