#include "query/sparql_pattern.h"

#include <gtest/gtest.h>

#include "rdf/vocab.h"

namespace rdfdb::query {
namespace {

AliasList GovAliases() {
  return {{"gov", "http://www.us.gov#"}, {"id", "http://www.us.id#"}};
}

TEST(PatternParseTest, SinglePatternWithVariable) {
  auto patterns =
      ParsePatterns("(gov:files gov:terrorSuspect ?name)", GovAliases());
  ASSERT_TRUE(patterns.ok());
  ASSERT_EQ(patterns->size(), 1u);
  const TriplePattern& p = (*patterns)[0];
  EXPECT_FALSE(p.subject.is_variable);
  EXPECT_EQ(p.subject.term.lexical(), "http://www.us.gov#files");
  EXPECT_EQ(p.predicate.term.lexical(), "http://www.us.gov#terrorSuspect");
  ASSERT_TRUE(p.object.is_variable);
  EXPECT_EQ(p.object.variable, "name");
  EXPECT_EQ(p.Variables(), std::vector<std::string>{"name"});
}

TEST(PatternParseTest, MultiplePatterns) {
  auto patterns = ParsePatterns(
      "(?x gov:terrorAction \"bombing\") (?x gov:knows ?y)", GovAliases());
  ASSERT_TRUE(patterns.ok());
  EXPECT_EQ(patterns->size(), 2u);
  EXPECT_TRUE((*patterns)[0].subject.is_variable);
  EXPECT_EQ((*patterns)[0].object.term.lexical(), "bombing");
  EXPECT_TRUE((*patterns)[0].object.term.is_literal());
}

TEST(PatternParseTest, BuiltinAliasesAlwaysAvailable) {
  auto patterns = ParsePatterns("(?x rdf:type rdfs:Class)", {});
  ASSERT_TRUE(patterns.ok());
  EXPECT_EQ((*patterns)[0].predicate.term.lexical(),
            std::string(rdf::kRdfType));
  EXPECT_EQ((*patterns)[0].object.term.lexical(),
            std::string(rdf::kRdfsNs) + "Class");
}

TEST(PatternParseTest, UserAliasOverridesBuiltin) {
  AliasList aliases = {{"rdf", "http://custom#"}};
  auto patterns = ParsePatterns("(?x rdf:thing ?y)", aliases);
  ASSERT_TRUE(patterns.ok());
  EXPECT_EQ((*patterns)[0].predicate.term.lexical(), "http://custom#thing");
}

TEST(PatternParseTest, UnknownPrefixTreatedAsUri) {
  auto patterns = ParsePatterns("(urn:a urn:b urn:c)", {});
  ASSERT_TRUE(patterns.ok());
  EXPECT_EQ((*patterns)[0].subject.term.lexical(), "urn:a");
  EXPECT_TRUE((*patterns)[0].subject.term.is_uri());
}

TEST(PatternParseTest, AngleBracketUriBypassesAliases) {
  auto patterns = ParsePatterns("(<rdf:notalias> gov:p ?x)", GovAliases());
  ASSERT_TRUE(patterns.ok());
  EXPECT_EQ((*patterns)[0].subject.term.lexical(), "rdf:notalias");
}

TEST(PatternParseTest, QuotedLiteralWithSpaces) {
  auto patterns =
      ParsePatterns("(?x gov:label \"two words\")", GovAliases());
  ASSERT_TRUE(patterns.ok());
  EXPECT_EQ((*patterns)[0].object.term.lexical(), "two words");
}

TEST(PatternParseTest, TypedAndLangLiterals) {
  auto typed = ParsePatterns(
      "(?x gov:age \"25\"^^<http://www.w3.org/2001/XMLSchema#int>)",
      GovAliases());
  ASSERT_TRUE(typed.ok());
  EXPECT_STREQ((*typed)[0].object.term.TypeCode(), "TL");
  auto lang = ParsePatterns("(?x gov:label \"chat\"@fr)", GovAliases());
  ASSERT_TRUE(lang.ok());
  EXPECT_STREQ((*lang)[0].object.term.TypeCode(), "PL@");
}

TEST(PatternParseTest, Malformed) {
  const char* cases[] = {
      "",                       // no patterns
      "no parens here",         // missing '('
      "(?x gov:p",              // unbalanced
      "(?x gov:p ?y ?z)",       // four terms
      "(?x gov:p)",             // two terms
      "(? gov:p ?y)",           // empty variable name
      "(\"lit\" gov:p ?y)",     // literal subject
      "(?x \"lit\" ?y)",        // literal predicate
      "(?x _:b ?y)",            // blank predicate
  };
  for (const char* query : cases) {
    EXPECT_FALSE(ParsePatterns(query, GovAliases()).ok()) << query;
  }
}

TEST(PatternParseTest, RepeatedVariable) {
  auto patterns = ParsePatterns("(?x gov:knows ?x)", GovAliases());
  ASSERT_TRUE(patterns.ok());
  EXPECT_EQ((*patterns)[0].Variables(),
            (std::vector<std::string>{"x", "x"}));
}

TEST(PatternTokenTest, VariableToken) {
  auto node = ParsePatternToken("?abc", AliasList{});
  ASSERT_TRUE(node.ok());
  EXPECT_TRUE(node->is_variable);
  EXPECT_EQ(node->variable, "abc");
}

TEST(PatternTokenTest, BareLiteralToken) {
  auto node = ParsePatternToken("bombing", AliasList{});
  ASSERT_TRUE(node.ok());
  EXPECT_TRUE(node->term.is_literal());
}

TEST(BuiltinAliasesTest, ContainsRdfRdfsXsd) {
  AliasList builtin = BuiltinAliases();
  ASSERT_EQ(builtin.size(), 3u);
  EXPECT_EQ(builtin[0].prefix, "rdf");
  EXPECT_EQ(builtin[1].prefix, "rdfs");
  EXPECT_EQ(builtin[2].prefix, "xsd");
}

}  // namespace
}  // namespace rdfdb::query
