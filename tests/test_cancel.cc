// Cooperative cancellation: CancelToken semantics, the compiled
// executor's row-loop checkpoints (sequential and parallel), the match
// layer's deadline propagation, and bulk-load chunk-boundary checks.
//
// The load-bearing assertion is the checkpoint-interval contract: once
// a token fires, each executing thread stops within
// kCancelCheckIntervalRows further rows. The test pins it
// deterministically by cancelling the token from inside the row
// callback and counting the rows delivered afterwards.

#include "common/cancel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "query/exec.h"
#include "query/match.h"
#include "query/rules_index.h"
#include "rdf/bulk_load.h"
#include "rdf/ntriples.h"
#include "rdf/rdf_store.h"

namespace rdfdb {
namespace {

using query::CompiledPlan;
using query::CompilePatterns;
using query::ExecOptions;
using query::ExecutePlan;
using query::kCancelCheckIntervalRows;
using query::MatchOptions;
using query::ModelSource;
using query::ParsePatterns;
using query::SdoRdfMatch;

TEST(CancelTokenTest, DefaultTokenNeverFires) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.Expired());
  EXPECT_TRUE(token.StatusIfDone().ok());
}

TEST(CancelTokenTest, CancelIsSticky) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.Expired());
  EXPECT_TRUE(token.StatusIfDone().IsCancelled());
}

TEST(CancelTokenTest, PastDeadlineExpires) {
  CancelToken token;
  token.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  EXPECT_TRUE(token.Expired());
  EXPECT_TRUE(token.StatusIfDone().IsDeadlineExceeded());
}

TEST(CancelTokenTest, FutureDeadlineDoesNotExpireYet) {
  CancelToken token;
  token.SetDeadlineAfterMs(60'000);
  EXPECT_FALSE(token.Expired());
  EXPECT_TRUE(token.StatusIfDone().ok());
  EXPECT_GT(token.Remaining().count(), 0);
}

TEST(CancelTokenTest, ExplicitCancelWinsOverExpiredDeadline) {
  // A request abandoned by its client *and* past its deadline reports
  // Cancelled: the more specific verdict for accounting.
  CancelToken token;
  token.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  token.Cancel();
  EXPECT_TRUE(token.StatusIfDone().IsCancelled());
}

class ExecCancelTest : public ::testing::Test {
 protected:
  // A two-pattern join whose cross product is far larger than one
  // checkpoint interval: `rows` subjects share one predicate, so
  // (?a <p> ?x) (?b <p> ?y) yields rows^2 result frames.
  void Load(size_t rows) {
    ASSERT_TRUE(store_.CreateRdfModel("m", "m_app", "triple").ok());
    std::vector<rdf::NTriple> statements;
    statements.reserve(rows);
    for (size_t i = 0; i < rows; ++i) {
      rdf::NTriple t;
      t.subject = rdf::Term::Uri("http://t.example/s" + std::to_string(i));
      t.predicate = rdf::Term::Uri("http://t.example/p");
      t.object = rdf::Term::PlainLiteral("v" + std::to_string(i));
      statements.push_back(std::move(t));
    }
    ASSERT_TRUE(rdf::BulkLoad(&store_, "m", statements).ok());
    auto model_id = store_.GetModelId("m");
    ASSERT_TRUE(model_id.ok());
    model_id_ = *model_id;
  }

  rdf::RdfStore store_;
  rdf::ModelId model_id_ = 0;
};

TEST_F(ExecCancelTest, CancelMidJoinStopsWithinOneCheckpointInterval) {
  Load(256);  // 256^2 = 65536 frames if run to completion
  ModelSource source(&store_, {model_id_});
  auto patterns = ParsePatterns(
      "(?a <http://t.example/p> ?x) (?b <http://t.example/p> ?y)", {});
  ASSERT_TRUE(patterns.ok());
  CompiledPlan plan =
      CompilePatterns(store_, *patterns, nullptr, source,
                      /*reorder_patterns=*/false, /*trace=*/nullptr);

  CancelToken token;
  size_t emitted = 0;
  size_t emitted_after_cancel = 0;
  constexpr size_t kCancelAtRow = 100;
  ExecOptions options;
  options.cancel = &token;
  Status status = ExecutePlan(
      store_, plan, source,
      [&](const rdf::ValueId*) {
        ++emitted;
        if (emitted == kCancelAtRow) token.Cancel();
        if (emitted > kCancelAtRow) ++emitted_after_cancel;
        return true;
      },
      options);

  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
  EXPECT_GE(emitted, kCancelAtRow);       // genuinely cancelled mid-join
  EXPECT_LT(emitted, size_t{256} * 256);  // and stopped early
  // The contract: at most one checkpoint interval of further rows per
  // executing thread (sequential run: one thread). Emitted frames are a
  // subset of scanned rows, so the emitted overshoot is bounded by the
  // scanned overshoot.
  EXPECT_LE(emitted_after_cancel, kCancelCheckIntervalRows);
}

TEST_F(ExecCancelTest, ParallelCancelStopsEveryWorker) {
  Load(512);  // 512^2 = 262144 frames if run to completion
  ModelSource source(&store_, {model_id_});
  auto patterns = ParsePatterns(
      "(?a <http://t.example/p> ?x) (?b <http://t.example/p> ?y)", {});
  ASSERT_TRUE(patterns.ok());
  CompiledPlan plan =
      CompilePatterns(store_, *patterns, nullptr, source,
                      /*reorder_patterns=*/false, /*trace=*/nullptr);

  CancelToken token;
  std::atomic<size_t> emitted{0};
  ExecOptions options;
  options.threads = 4;
  options.chunk_frames = 64;
  options.cancel = &token;
  Status status = ExecutePlan(
      store_, plan, source,
      [&](const rdf::ValueId*) {
        if (emitted.fetch_add(1, std::memory_order_relaxed) + 1 == 100) {
          token.Cancel();
        }
        return true;
      },
      options);

  EXPECT_TRUE(status.IsCancelled()) << status.ToString();
  // Workers stop at their checkpoints and the consumer checks the
  // token between chunks, so post-cancel delivery is bounded by the
  // rows of the chunk being consumed when the token fired (64 outer
  // frames x 512 inner matches), not by the produced-ahead window.
  EXPECT_LE(emitted.load(), size_t{64} * 512);
}

TEST_F(ExecCancelTest, ParallelRowsMatchSequentialPrefix) {
  // Σ identity behind partial-progress stats: the parallel executor
  // emits rows in the exact sequential order, so rows delivered before
  // a cancellation are a prefix of the sequential run's rows. Verified
  // here by comparing full runs (same rows, same order, same count) —
  // the property the 504 partial results inherit.
  Load(128);
  MatchOptions sequential;
  sequential.threads = 1;
  auto seq = SdoRdfMatch(&store_, nullptr,
                         "(?a <http://t.example/p> ?x) "
                         "(?b <http://t.example/p> ?y)",
                         {"m"}, {}, {}, "", sequential);
  ASSERT_TRUE(seq.ok());

  MatchOptions parallel = sequential;
  parallel.threads = 4;
  parallel.chunk_frames = 32;
  auto par = SdoRdfMatch(&store_, nullptr,
                         "(?a <http://t.example/p> ?x) "
                         "(?b <http://t.example/p> ?y)",
                         {"m"}, {}, {}, "", parallel);
  ASSERT_TRUE(par.ok());

  ASSERT_EQ(seq->row_count(), par->row_count());
  ASSERT_EQ(seq->row_count(), size_t{128} * 128);
  for (size_t r = 0; r < seq->row_count(); r += 977) {  // spot-check stride
    for (size_t c = 0; c < seq->columns().size(); ++c) {
      ASSERT_EQ(seq->at(r, c).ToNTriples(), par->at(r, c).ToNTriples());
    }
  }
}

TEST_F(ExecCancelTest, PreExpiredTokenFailsBeforeAnyScan) {
  Load(64);
  CancelToken token;
  token.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  obs::QueryTrace trace;
  MatchOptions options;
  options.trace = &trace;
  options.cancel = &token;
  auto result = SdoRdfMatch(&store_, nullptr, "(?s ?p ?o)", {"m"}, {}, {},
                            "", options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
  size_t scanned = 0;
  for (const auto& p : trace.patterns) scanned += p.rows_scanned;
  EXPECT_EQ(scanned, 0u);  // refused at the ExecutePlan entry check
}

TEST_F(ExecCancelTest, DeadlineMidMatchReturnsPartialTrace) {
  Load(512);
  CancelToken token;
  token.SetDeadlineAfterMs(3);  // far less than the 262k-frame join
  obs::QueryTrace trace;
  MatchOptions options;
  options.trace = &trace;
  options.cancel = &token;
  auto result = SdoRdfMatch(&store_, nullptr,
                            "(?a <http://t.example/p> ?x) "
                            "(?b <http://t.example/p> ?y)",
                            {"m"}, {}, {}, "", options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded())
      << result.status().ToString();
  // Partial-progress counters stay well-formed: per-pattern emitted
  // never exceeds scanned, and the join stopped short of completion.
  size_t scanned = 0;
  for (const auto& p : trace.patterns) {
    EXPECT_LE(p.rows_emitted, p.rows_scanned);
    scanned += p.rows_scanned;
  }
  EXPECT_LT(scanned, size_t{512} + 512 * 512);
}

TEST_F(ExecCancelTest, LegacyExecutorHonoursToken) {
  Load(256);
  CancelToken token;
  token.Cancel();
  MatchOptions options;
  options.use_legacy = true;
  options.cancel = &token;
  auto result = SdoRdfMatch(&store_, nullptr,
                            "(?a <http://t.example/p> ?x) "
                            "(?b <http://t.example/p> ?y)",
                            {"m"}, {}, {}, "", options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
}

TEST(BulkLoadCancelTest, PreCancelledTokenInsertsNothing) {
  rdf::RdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "m_app", "triple").ok());
  std::vector<rdf::NTriple> statements;
  for (size_t i = 0; i < 2000; ++i) {
    rdf::NTriple t;
    t.subject = rdf::Term::Uri("http://t.example/s" + std::to_string(i));
    t.predicate = rdf::Term::Uri("http://t.example/p");
    t.object = rdf::Term::PlainLiteral("v");
    statements.push_back(std::move(t));
  }
  CancelToken token;
  token.Cancel();
  rdf::BulkLoadOptions options;
  options.threads = 1;
  options.batch_size = 256;
  options.cancel = &token;
  auto result = rdf::BulkLoad(&store, "m", statements, nullptr, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
  // The token is checked before each chunk's mutations: nothing landed.
  auto rows = query::SdoRdfMatch(&store, nullptr, "(?s ?p ?o)", {"m"}, {},
                                 {}, "");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->row_count(), 0u);
}

TEST(BulkLoadCancelTest, MidLoadCancelKeepsConsumedChunksConsistent) {
  rdf::RdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "m_app", "triple").ok());
  std::vector<rdf::NTriple> statements;
  for (size_t i = 0; i < 50'000; ++i) {
    rdf::NTriple t;
    t.subject = rdf::Term::Uri("http://t.example/s" + std::to_string(i));
    t.predicate = rdf::Term::Uri("http://t.example/p");
    t.object = rdf::Term::PlainLiteral("v" + std::to_string(i));
    statements.push_back(std::move(t));
  }
  CancelToken token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.Cancel();
  });
  rdf::BulkLoadOptions options;
  options.batch_size = 512;
  options.cancel = &token;
  auto result = rdf::BulkLoad(&store, "m", statements, nullptr, options);
  canceller.join();
  // Depending on machine speed the load may finish first; either way
  // the store must answer queries over whatever chunks were consumed.
  if (!result.ok()) {
    EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  }
  auto rows = query::SdoRdfMatch(&store, nullptr,
                                 "(?s <http://t.example/p> ?o)", {"m"}, {},
                                 {}, "");
  ASSERT_TRUE(rows.ok());
  EXPECT_LE(rows->row_count(), statements.size());
  if (result.ok()) {
    EXPECT_EQ(rows->row_count(), statements.size());
  }
}

}  // namespace
}  // namespace rdfdb
