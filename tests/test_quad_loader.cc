#include "rdf/quad_loader.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "rdf/reification.h"
#include "rdf/vocab.h"

namespace rdfdb::rdf {
namespace {

Term U(const std::string& uri) { return Term::Uri(uri); }

/// The classic reification quad for <s, p, o> via reifier R.
std::vector<NTriple> Quad(const Term& r, const Term& s, const Term& p,
                          const Term& o) {
  return {
      {r, U(std::string(kRdfType)), U(std::string(kRdfStatement))},
      {r, U(std::string(kRdfSubject)), s},
      {r, U(std::string(kRdfPredicate)), p},
      {r, U(std::string(kRdfObject)), o},
  };
}

class QuadLoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.CreateRdfModel("m", "mdata", "triple").ok());
  }

  RdfStore store_;
};

TEST_F(QuadLoaderTest, CompleteQuadBecomesStreamlinedForm) {
  Term r = U("http://ex/reif1");
  std::vector<NTriple> input =
      Quad(r, U("http://ex/s"), U("http://ex/p"), U("http://ex/o"));

  QuadLoader loader(&store_, {});
  auto stats = loader.Load("m", input);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->input_triples, 4u);
  EXPECT_EQ(stats->complete_quads, 1u);
  EXPECT_EQ(stats->incomplete_quads, 0u);

  // Stored: base triple + ONE reification triple (not four).
  ModelId model = *store_.GetModelId("m");
  EXPECT_EQ(store_.links().TripleCount(model), 2u);
  EXPECT_TRUE(*store_.IsReified("m", "http://ex/s", "http://ex/p",
                                "http://ex/o"));
  // The base triple is implied, not a fact.
  auto s_id = store_.values().Lookup(U("http://ex/s"));
  auto p_id = store_.values().Lookup(U("http://ex/p"));
  auto o_id = store_.values().Lookup(U("http://ex/o"));
  auto row = store_.links().Find(model, *s_id, *p_id, *o_id);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->context, TripleContext::kImplied);
}

TEST_F(QuadLoaderTest, AssertionsRewrittenToDBUri) {
  Term r = U("http://ex/reif1");
  std::vector<NTriple> input =
      Quad(r, U("http://ex/s"), U("http://ex/p"), U("http://ex/o"));
  // "MI5 said R" — the assertion references the reifier.
  input.push_back({U("http://ex/MI5"), U("http://ex/said"), r});

  QuadLoader loader(&store_, {});
  auto stats = loader.Load("m", input);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->assertions_rewritten, 1u);

  // The stored assertion's object is the DBUri of the base triple.
  ModelId model = *store_.GetModelId("m");
  auto mi5 = store_.values().Lookup(U("http://ex/MI5"));
  ASSERT_TRUE(mi5.has_value());
  auto hits = store_.links().Match(model, *mi5, std::nullopt, std::nullopt);
  ASSERT_EQ(hits.size(), 1u);
  auto object_term = store_.TermForValueId(hits[0].end_node_id);
  EXPECT_TRUE(IsReificationUri(object_term->lexical()));
  EXPECT_TRUE(hits[0].reif_link);
}

TEST_F(QuadLoaderTest, ReifierInSubjectPositionAlsoRewritten) {
  Term r = U("http://ex/reif1");
  std::vector<NTriple> input =
      Quad(r, U("http://ex/s"), U("http://ex/p"), U("http://ex/o"));
  input.push_back({r, U("http://ex/confidence"),
                   Term::PlainLiteral("0.9")});

  QuadLoader loader(&store_, {});
  auto stats = loader.Load("m", input);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->assertions_rewritten, 1u);
  // No triple remains whose subject is the original reifier URI.
  EXPECT_FALSE(store_.values().Lookup(r).has_value());
}

TEST_F(QuadLoaderTest, IncompleteQuadDeletedByDefault) {
  Term r = U("http://ex/partial");
  std::vector<NTriple> input = {
      {r, U(std::string(kRdfType)), U(std::string(kRdfStatement))},
      {r, U(std::string(kRdfSubject)), U("http://ex/s")},
      // rdf:predicate and rdf:object missing.
  };
  QuadLoader loader(&store_, {});
  auto stats = loader.Load("m", input);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->incomplete_quads, 1u);
  EXPECT_EQ(stats->incomplete_triples, 2u);
  EXPECT_EQ(stats->complete_quads, 0u);
  ModelId model = *store_.GetModelId("m");
  EXPECT_EQ(store_.links().TripleCount(model), 0u);
}

TEST_F(QuadLoaderTest, IncompleteQuadEmittedToFile) {
  std::string path = ::testing::TempDir() + "/rdfdb_incomplete.nt";
  Term r = U("http://ex/partial");
  std::vector<NTriple> input = {
      {r, U(std::string(kRdfType)), U(std::string(kRdfStatement))},
  };
  QuadLoaderOptions options;
  options.incomplete_policy = IncompleteQuadPolicy::kEmitToFile;
  options.incomplete_output_path = path;
  QuadLoader loader(&store_, options);
  auto stats = loader.Load("m", input);
  ASSERT_TRUE(stats.ok());
  auto spilled = ParseNTriplesFile(path);
  ASSERT_TRUE(spilled.ok());
  EXPECT_EQ(spilled->size(), 1u);
  EXPECT_EQ((*spilled)[0].subject, r);
  std::remove(path.c_str());
}

TEST_F(QuadLoaderTest, EmitToFileWithoutPathFails) {
  Term r = U("http://ex/partial");
  std::vector<NTriple> input = {
      {r, U(std::string(kRdfType)), U(std::string(kRdfStatement))},
  };
  QuadLoaderOptions options;
  options.incomplete_policy = IncompleteQuadPolicy::kEmitToFile;
  QuadLoader loader(&store_, options);
  EXPECT_TRUE(loader.Load("m", input).status().IsInvalidArgument());
}

TEST_F(QuadLoaderTest, IncompleteQuadInsertedAsTriples) {
  Term r = U("http://ex/partial");
  std::vector<NTriple> input = {
      {r, U(std::string(kRdfSubject)), U("http://ex/s")},
  };
  QuadLoaderOptions options;
  options.incomplete_policy = IncompleteQuadPolicy::kInsertAsTriples;
  QuadLoader loader(&store_, options);
  auto stats = loader.Load("m", input);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->plain_triples, 1u);
  EXPECT_TRUE(*store_.IsTriple("m", "http://ex/partial",
                               std::string(kRdfSubject), "http://ex/s"));
}

TEST_F(QuadLoaderTest, AmbiguousQuadIsIncomplete) {
  Term r = U("http://ex/ambiguous");
  std::vector<NTriple> input =
      Quad(r, U("http://ex/s"), U("http://ex/p"), U("http://ex/o"));
  // Second conflicting rdf:subject.
  input.push_back({r, U(std::string(kRdfSubject)), U("http://ex/s2")});
  QuadLoader loader(&store_, {});
  auto stats = loader.Load("m", input);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->complete_quads, 0u);
  EXPECT_EQ(stats->incomplete_quads, 1u);
}

TEST_F(QuadLoaderTest, StoreReplacedUrisOption) {
  Term r = U("http://ex/reif1");
  std::vector<NTriple> input =
      Quad(r, U("http://ex/s"), U("http://ex/p"), U("http://ex/o"));
  QuadLoaderOptions options;
  options.store_replaced_uris = true;
  QuadLoader loader(&store_, options);
  ASSERT_TRUE(loader.Load("m", input).ok());
  // <DBUri, ora:replacesResource, R> is recorded.
  ModelId model = *store_.GetModelId("m");
  auto pred = store_.values().Lookup(U(kReplacesResourceUri));
  ASSERT_TRUE(pred.has_value());
  auto hits = store_.links().Match(model, std::nullopt, *pred, std::nullopt);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(store_.TermForValueId(hits[0].end_node_id)->lexical(),
            "http://ex/reif1");
}

TEST_F(QuadLoaderTest, BlankNodeReifier) {
  Term r = Term::BlankNode("stmt1");
  std::vector<NTriple> input =
      Quad(r, U("http://ex/s"), U("http://ex/p"), U("http://ex/o"));
  input.push_back({U("http://ex/N"), U("http://ex/said"), r});
  QuadLoader loader(&store_, {});
  auto stats = loader.Load("m", input);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->complete_quads, 1u);
  EXPECT_EQ(stats->assertions_rewritten, 1u);
}

TEST_F(QuadLoaderTest, MixedQuadAndPlainTriples) {
  Term r = U("http://ex/reif1");
  std::vector<NTriple> input =
      Quad(r, U("http://ex/s"), U("http://ex/p"), U("http://ex/o"));
  input.push_back(
      {U("http://ex/a"), U("http://ex/b"), U("http://ex/c")});
  input.push_back(
      {U("http://ex/a"), U("http://ex/b"), Term::PlainLiteral("v")});
  QuadLoader loader(&store_, {});
  auto stats = loader.Load("m", input);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->plain_triples, 2u);
  ModelId model = *store_.GetModelId("m");
  // base + reif + 2 plain = 4 rows.
  EXPECT_EQ(store_.links().TripleCount(model), 4u);
}

TEST_F(QuadLoaderTest, LoadFileEndToEnd) {
  std::string path = ::testing::TempDir() + "/rdfdb_quadload.nt";
  Term r = U("http://ex/reif1");
  std::vector<NTriple> input =
      Quad(r, U("http://ex/s"), U("http://ex/p"), U("http://ex/o"));
  ASSERT_TRUE(WriteNTriplesFile(path, input).ok());
  QuadLoader loader(&store_, {});
  auto stats = loader.LoadFile("m", path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->complete_quads, 1u);
  std::remove(path.c_str());
}

TEST_F(QuadLoaderTest, UnknownModelFails) {
  QuadLoader loader(&store_, {});
  EXPECT_TRUE(loader.Load("ghost", {}).status().IsNotFound());
}

}  // namespace
}  // namespace rdfdb::rdf
