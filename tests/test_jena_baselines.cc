#include <gtest/gtest.h>

#include "baseline/jena1_store.h"
#include "baseline/jena2_store.h"
#include "baseline/property_table.h"
#include "rdf/vocab.h"

namespace rdfdb::baseline {
namespace {

using rdf::NTriple;
using rdf::Term;

Term U(const std::string& uri) { return Term::Uri(uri); }

NTriple T(const std::string& s, const std::string& p,
          const std::string& o) {
  return NTriple{U(s), U(p), U(o)};
}

// ---------------- Jena1 (normalized) ----------------

class Jena1Test : public ::testing::Test {
 protected:
  storage::Database db_{"ORADB"};
  Jena1Store store_{&db_, "J1"};
};

TEST_F(Jena1Test, AddAndFindBySubject) {
  ASSERT_TRUE(store_.Add(T("http://s", "http://p", "http://o1")).ok());
  ASSERT_TRUE(store_.Add(T("http://s", "http://p", "http://o2")).ok());
  ASSERT_TRUE(store_.Add(T("http://t", "http://p", "http://o1")).ok());
  auto hits = store_.Find(U("http://s"), std::nullopt, std::nullopt);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
  EXPECT_EQ(store_.statement_count(), 3u);
}

TEST_F(Jena1Test, DuplicateAddIsIdempotent) {
  ASSERT_TRUE(store_.Add(T("http://s", "http://p", "http://o")).ok());
  ASSERT_TRUE(store_.Add(T("http://s", "http://p", "http://o")).ok());
  EXPECT_EQ(store_.statement_count(), 1u);
}

TEST_F(Jena1Test, NormalizationStoresValuesOnce) {
  // Resources are interned: same URI reused across statements.
  ASSERT_TRUE(store_.Add(T("http://s", "http://p", "http://o1")).ok());
  size_t bytes_one = store_.ApproxBytes();
  ASSERT_TRUE(store_.Add(T("http://s", "http://p", "http://o2")).ok());
  size_t delta = store_.ApproxBytes() - bytes_one;
  // The second statement only adds one new resource + one statement row,
  // far less than storing all three texts again.
  EXPECT_LT(delta, bytes_one);
}

TEST_F(Jena1Test, FindFullyUnbound) {
  ASSERT_TRUE(store_.Add(T("http://a", "http://p", "http://b")).ok());
  ASSERT_TRUE(store_.Add(T("http://c", "http://q", "http://d")).ok());
  auto all = store_.Find(std::nullopt, std::nullopt, std::nullopt);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
}

TEST_F(Jena1Test, FindDistinguishesLiteralsFromResources) {
  ASSERT_TRUE(store_.Add({U("http://s"), U("http://p"),
                          Term::PlainLiteral("http://o")})
                  .ok());
  ASSERT_TRUE(store_.Add(T("http://s", "http://p", "http://o")).ok());
  EXPECT_EQ(store_.statement_count(), 2u);
  auto uri_hits =
      store_.Find(std::nullopt, std::nullopt, U("http://o"));
  ASSERT_TRUE(uri_hits.ok());
  ASSERT_EQ(uri_hits->size(), 1u);
  EXPECT_TRUE((*uri_hits)[0].object.is_uri());
  auto lit_hits = store_.Find(std::nullopt, std::nullopt,
                              Term::PlainLiteral("http://o"));
  ASSERT_TRUE(lit_hits.ok());
  ASSERT_EQ(lit_hits->size(), 1u);
  EXPECT_TRUE((*lit_hits)[0].object.is_literal());
}

TEST_F(Jena1Test, FindUnknownConstantIsEmpty) {
  auto hits = store_.Find(U("http://never"), std::nullopt, std::nullopt);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

TEST_F(Jena1Test, RoundTripsTermKinds) {
  NTriple typed{U("http://s"), U("http://p"),
                Term::TypedLiteral("5", "http://www.w3.org/2001/"
                                        "XMLSchema#int")};
  NTriple lang{U("http://s"), U("http://p"),
               Term::PlainLiteralLang("hej", "sv")};
  NTriple blank{Term::BlankNode("b1"), U("http://p"), U("http://o")};
  for (const NTriple& t : {typed, lang, blank}) {
    ASSERT_TRUE(store_.Add(t).ok());
  }
  auto hits = store_.Find(std::nullopt, U("http://p"), std::nullopt);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 3u);
  bool saw_typed = false, saw_lang = false, saw_blank = false;
  for (const NTriple& t : *hits) {
    if (t.object.is_typed_literal()) saw_typed = true;
    if (!t.object.language().empty()) saw_lang = true;
    if (t.subject.is_blank()) saw_blank = true;
  }
  EXPECT_TRUE(saw_typed && saw_lang && saw_blank);
}

// ---------------- Jena2 (denormalized) ----------------

class Jena2Test : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(store_.CreateModel("m").ok()); }

  storage::Database db_{"ORADB"};
  Jena2Store store_{&db_};
};

TEST_F(Jena2Test, ModelManagement) {
  EXPECT_TRUE(store_.CreateModel("m").IsAlreadyExists());
  EXPECT_TRUE(store_.Add("ghost", T("http://a", "http://b", "http://c"))
                  .IsNotFound());
  EXPECT_TRUE(store_.StatementCount("ghost").status().IsNotFound());
}

TEST_F(Jena2Test, AddAndListStatements) {
  ASSERT_TRUE(store_.Add("m", T("http://s", "http://p", "http://o1")).ok());
  ASSERT_TRUE(store_.Add("m", T("http://s", "http://p", "http://o2")).ok());
  ASSERT_TRUE(store_.Add("m", T("http://t", "http://q", "http://o1")).ok());
  auto by_subject =
      store_.ListStatements("m", U("http://s"), std::nullopt, std::nullopt);
  ASSERT_TRUE(by_subject.ok());
  EXPECT_EQ(by_subject->size(), 2u);
  auto by_object =
      store_.ListStatements("m", std::nullopt, std::nullopt, U("http://o1"));
  ASSERT_TRUE(by_object.ok());
  EXPECT_EQ(by_object->size(), 2u);
  auto by_pred =
      store_.ListStatements("m", std::nullopt, U("http://q"), std::nullopt);
  ASSERT_TRUE(by_pred.ok());
  EXPECT_EQ(by_pred->size(), 1u);
  auto all =
      store_.ListStatements("m", std::nullopt, std::nullopt, std::nullopt);
  EXPECT_EQ(all->size(), 3u);
}

TEST_F(Jena2Test, DuplicateAddIsIdempotent) {
  ASSERT_TRUE(store_.Add("m", T("http://s", "http://p", "http://o")).ok());
  ASSERT_TRUE(store_.Add("m", T("http://s", "http://p", "http://o")).ok());
  EXPECT_EQ(*store_.StatementCount("m"), 1u);
}

TEST_F(Jena2Test, ModelsAreSeparateTables) {
  ASSERT_TRUE(store_.CreateModel("m2").ok());
  ASSERT_TRUE(store_.Add("m", T("http://s", "http://p", "http://o")).ok());
  EXPECT_EQ(*store_.StatementCount("m"), 1u);
  EXPECT_EQ(*store_.StatementCount("m2"), 0u);
}

TEST_F(Jena2Test, AddReifiedAndIsReified) {
  NTriple stmt = T("http://s", "http://p", "http://o");
  EXPECT_FALSE(*store_.IsReified("m", stmt));
  ASSERT_TRUE(store_.AddReified("m", "urn:reif:1", stmt).ok());
  EXPECT_TRUE(*store_.IsReified("m", stmt));
  EXPECT_EQ(*store_.ReifiedCount("m"), 1u);
  EXPECT_TRUE(store_.AddReified("m", "urn:reif:1", stmt).IsAlreadyExists());
}

TEST_F(Jena2Test, ReificationVocabularyFoldsIntoPropertyClassRow) {
  // Jena2 folds the four quad statements into one row.
  Term r = U("http://reif/1");
  NTriple stmt = T("http://s", "http://p", "http://o");
  ASSERT_TRUE(store_.Add("m", {r, U(std::string(rdf::kRdfSubject)),
                               stmt.subject})
                  .ok());
  EXPECT_FALSE(*store_.IsReified("m", stmt));  // incomplete row
  ASSERT_TRUE(store_.Add("m", {r, U(std::string(rdf::kRdfPredicate)),
                               stmt.predicate})
                  .ok());
  ASSERT_TRUE(store_.Add("m", {r, U(std::string(rdf::kRdfObject)),
                               stmt.object})
                  .ok());
  EXPECT_FALSE(*store_.IsReified("m", stmt));  // rdf:type still missing
  ASSERT_TRUE(store_.Add("m", {r, U(std::string(rdf::kRdfType)),
                               U(std::string(rdf::kRdfStatement))})
                  .ok());
  EXPECT_TRUE(*store_.IsReified("m", stmt));
  // None of those landed in the asserted table.
  EXPECT_EQ(*store_.StatementCount("m"), 0u);
  EXPECT_EQ(*store_.ReifiedCount("m"), 1u);
}

TEST_F(Jena2Test, IsReifiedFalseForDifferentStatement) {
  ASSERT_TRUE(
      store_.AddReified("m", "urn:reif:1", T("http://s", "http://p",
                                             "http://o"))
          .ok());
  EXPECT_FALSE(*store_.IsReified("m", T("http://s", "http://p",
                                        "http://other")));
}

TEST_F(Jena2Test, DenormalizedStorageDuplicatesText) {
  // Jena2 "consumes more storage space than Jena1": adding the same
  // subject text in many rows grows bytes linearly.
  std::string long_subject(500, 's');
  size_t before = *store_.ApproxBytes("m");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store_.Add("m", T("http://" + long_subject, "http://p",
                                  "http://o" + std::to_string(i)))
                    .ok());
  }
  size_t delta = *store_.ApproxBytes("m") - before;
  EXPECT_GT(delta, 10u * 500u);  // subject text stored in every row
}

TEST_F(Jena2Test, PropertyTableRouting) {
  ASSERT_TRUE(store_.CreateModel("dc", {{"http://purl.org/dc/title",
                                         "http://purl.org/dc/publisher"}})
                  .ok());
  ASSERT_TRUE(store_.Add("dc", {U("http://doc1"),
                                U("http://purl.org/dc/title"),
                                Term::PlainLiteral("Title 1")})
                  .ok());
  ASSERT_TRUE(store_.Add("dc", {U("http://doc1"),
                                U("http://purl.org/dc/publisher"),
                                Term::PlainLiteral("ACM")})
                  .ok());
  ASSERT_TRUE(store_.Add("dc", T("http://doc1", "http://other",
                                 "http://x"))
                  .ok());
  // Property-table predicates do not land in the asserted table.
  EXPECT_EQ(*store_.StatementCount("dc"), 1u);
  const auto& tables = store_.property_tables("dc");
  ASSERT_EQ(tables.size(), 1u);
  auto row = tables[0]->GetRow(U("http://doc1"));
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->size(), 2u);
  EXPECT_EQ(row->at("http://purl.org/dc/title").lexical(), "Title 1");
}

// ---------------- Property tables ----------------

TEST(PropertyTableTest, PutGetAndOverwrite) {
  storage::Database db("ORADB");
  PropertyTable table(&db, "PT", "T", {"http://p1", "http://p2"});
  EXPECT_TRUE(table.Handles("http://p1"));
  EXPECT_FALSE(table.Handles("http://p3"));
  ASSERT_TRUE(table.Put(U("http://s"), "http://p1",
                        Term::PlainLiteral("v1"))
                  .ok());
  auto got = table.Get(U("http://s"), "http://p1");
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got->has_value());
  EXPECT_EQ((*got)->lexical(), "v1");
  // Overwrite (single-valued semantics).
  ASSERT_TRUE(table.Put(U("http://s"), "http://p1",
                        Term::PlainLiteral("v2"))
                  .ok());
  EXPECT_EQ((*table.Get(U("http://s"), "http://p1"))->lexical(), "v2");
  EXPECT_EQ(table.row_count(), 1u);
  // Unset predicate on existing subject.
  auto missing = table.Get(U("http://s"), "http://p2");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->has_value());
  // Unknown subject.
  auto unknown = table.Get(U("http://ghost"), "http://p1");
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(unknown->has_value());
  // Unconfigured predicate errors.
  EXPECT_TRUE(table.Put(U("http://s"), "http://p9",
                        Term::PlainLiteral("x"))
                  .IsInvalidArgument());
  EXPECT_TRUE(
      table.Get(U("http://s"), "http://p9").status().IsInvalidArgument());
}

TEST(PropertyTableTest, GetRowEmptyForUnknownSubject) {
  storage::Database db("ORADB");
  PropertyTable table(&db, "PT", "T", {"http://p1"});
  auto row = table.GetRow(U("http://ghost"));
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(row->empty());
}

}  // namespace
}  // namespace rdfdb::baseline
