#include "rdf/concurrent_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace rdfdb::rdf {
namespace {

TEST(ConcurrentStoreTest, BasicOperationsWork) {
  ConcurrentRdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  auto triple = store.InsertTriple("m", "gov:a", "gov:p", "gov:b");
  ASSERT_TRUE(triple.ok());
  EXPECT_TRUE(*store.IsTriple("m", "gov:a", "gov:p", "gov:b"));
  auto id = store.GetTripleId("m", "gov:a", "gov:p", "gov:b");
  ASSERT_TRUE(id.ok());
  auto resolved = store.ResolveTriple(*id);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->subject, "gov:a");
  ASSERT_TRUE(store.ReifyTriple("m", *id).ok());
  EXPECT_TRUE(*store.IsReified("m", "gov:a", "gov:p", "gov:b"));
  ASSERT_TRUE(store.DeleteTriple("m", "gov:a", "gov:p", "gov:b").ok());
  EXPECT_FALSE(*store.IsTriple("m", "gov:a", "gov:p", "gov:b"));
}

TEST(ConcurrentStoreTest, LockEscapeHatches) {
  ConcurrentRdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  Status inserted = store.WithWriteLock([](RdfStore& s) {
    return s.InsertTriple("m", "gov:a", "gov:p", "gov:b").status();
  });
  ASSERT_TRUE(inserted.ok());
  size_t count = store.WithReadLock([](const RdfStore& s) {
    return s.links().TotalTripleCount();
  });
  EXPECT_EQ(count, 1u);
}

TEST(ConcurrentStoreTest, ConcurrentReadersSeeConsistentState) {
  ConcurrentRdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store
                    .InsertTriple("m", "gov:s" + std::to_string(i),
                                  "gov:p", "gov:o")
                    .ok());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&store, &failures] {
      for (int i = 0; i < 200; ++i) {
        auto exists = store.IsTriple("m", "gov:s" + std::to_string(i % 50),
                                     "gov:p", "gov:o");
        if (!exists.ok() || !*exists) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : readers) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrentStoreTest, WriterAndReadersInterleave) {
  ConcurrentRdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  // Anchor triple the readers always check.
  ASSERT_TRUE(
      store.InsertTriple("m", "gov:anchor", "gov:p", "gov:o").ok());

  // Readers are iteration-bounded (spinning readers on a single core
  // would starve the writer through the rwlock's reader preference).
  std::atomic<int> reader_failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 150; ++i) {
        auto anchor =
            store.IsTriple("m", "gov:anchor", "gov:p", "gov:o");
        if (!anchor.ok() || !*anchor) reader_failures.fetch_add(1);
        auto stats = store.GetModelStats("m");
        if (!stats.ok() || stats->triples == 0) {
          reader_failures.fetch_add(1);
        }
        std::this_thread::yield();
      }
    });
  }

  std::thread writer([&] {
    for (int i = 0; i < 300; ++i) {
      std::string subject = "gov:w" + std::to_string(i);
      auto inserted = store.InsertTriple("m", subject, "gov:p", "gov:o");
      if (!inserted.ok()) reader_failures.fetch_add(1);
      if (i % 3 == 0) {
        if (!store.DeleteTriple("m", subject, "gov:p", "gov:o").ok()) {
          reader_failures.fetch_add(1);
        }
      }
    }
  });

  writer.join();
  for (std::thread& thread : readers) thread.join();
  EXPECT_EQ(reader_failures.load(), 0);

  // Post-condition: 1 anchor + 300 writes - 100 deletes.
  size_t count = store.WithReadLock([](const RdfStore& s) {
    return s.links().TotalTripleCount();
  });
  EXPECT_EQ(count, 201u);
  Status consistent = store.WithReadLock(
      [](const RdfStore& s) { return s.CheckConsistency(); });
  EXPECT_TRUE(consistent.ok()) << consistent.ToString();
}

TEST(ConcurrentStoreTest, ConcurrentIsReifiedWarmup) {
  // First IsReified call warms the vocabulary-id cache under the
  // exclusive lock; hammer it from several threads at once.
  ConcurrentRdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "mdata", "triple").ok());
  auto triple = store.InsertTriple("m", "gov:a", "gov:p", "gov:b");
  ASSERT_TRUE(triple.ok());
  ASSERT_TRUE(store.ReifyTriple("m", triple->rdf_t_id()).ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        auto reified = store.IsReified("m", "gov:a", "gov:p", "gov:b");
        if (!reified.ok() || !*reified) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace rdfdb::rdf
