#include "rdf/canonical.h"

#include <gtest/gtest.h>

#include "rdf/vocab.h"

namespace rdfdb::rdf {
namespace {

struct CanonCase {
  const char* datatype;
  const char* input;
  const char* expected;
};

class CanonicalFormTest : public ::testing::TestWithParam<CanonCase> {};

TEST_P(CanonicalFormTest, ProducesCanonicalLexicalForm) {
  const CanonCase& c = GetParam();
  Term canon = CanonicalForm(Term::TypedLiteral(c.input, c.datatype));
  EXPECT_EQ(canon.lexical(), c.expected)
      << c.input << " ^^ " << c.datatype;
}

INSTANTIATE_TEST_SUITE_P(
    Integers, CanonicalFormTest,
    ::testing::Values(
        CanonCase{"http://www.w3.org/2001/XMLSchema#int", "+025", "25"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#int", "25", "25"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#int", "-07", "-7"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#int", "0", "0"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#int", "-0", "0"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#int", "000", "0"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#integer", " 42 ", "42"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#long", "0009", "9"}));

INSTANTIATE_TEST_SUITE_P(
    Decimals, CanonicalFormTest,
    ::testing::Values(
        CanonCase{"http://www.w3.org/2001/XMLSchema#decimal", "1.50", "1.5"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#decimal", "3.000", "3"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#decimal", "03.10",
                  "3.1"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#decimal", "-0.50",
                  "-0.5"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#decimal", "-0.0", "0"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#decimal", ".5", "0.5"}));

INSTANTIATE_TEST_SUITE_P(
    Booleans, CanonicalFormTest,
    ::testing::Values(
        CanonCase{"http://www.w3.org/2001/XMLSchema#boolean", "1", "true"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#boolean", "0", "false"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#boolean", "true",
                  "true"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#boolean", "false",
                  "false"}));

INSTANTIATE_TEST_SUITE_P(
    Doubles, CanonicalFormTest,
    ::testing::Values(
        CanonCase{"http://www.w3.org/2001/XMLSchema#double", "1.0", "1"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#double", "2.50", "2.5"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#double", "1e2",
                  "1e+02"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#double", "100",
                  "1e+02"},
        CanonCase{"http://www.w3.org/2001/XMLSchema#float", "0.5", "0.5"}));

TEST(CanonicalFormEdgeTest, EquivalentFormsConverge) {
  // The purpose of CANON_END_NODE_ID: different lexical forms of the
  // same value must canonicalize identically.
  Term a = CanonicalForm(Term::TypedLiteral("+025", std::string(kXsdInt)));
  Term b = CanonicalForm(Term::TypedLiteral("25", std::string(kXsdInt)));
  EXPECT_EQ(a, b);
}

TEST(CanonicalFormEdgeTest, XsdStringBecomesPlainLiteral) {
  Term canon =
      CanonicalForm(Term::TypedLiteral("abc", std::string(kXsdString)));
  EXPECT_STREQ(canon.TypeCode(), "PL");
  EXPECT_EQ(canon.lexical(), "abc");
}

TEST(CanonicalFormEdgeTest, InvalidLexicalFormsUnchanged) {
  Term bad_int = Term::TypedLiteral("notanumber", std::string(kXsdInt));
  EXPECT_EQ(CanonicalForm(bad_int), bad_int);
  Term bad_bool = Term::TypedLiteral("maybe", std::string(kXsdBoolean));
  EXPECT_EQ(CanonicalForm(bad_bool), bad_bool);
  Term bad_dec = Term::TypedLiteral("1.2.3", std::string(kXsdDecimal));
  EXPECT_EQ(CanonicalForm(bad_dec), bad_dec);
  Term sign_only = Term::TypedLiteral("-", std::string(kXsdInt));
  EXPECT_EQ(CanonicalForm(sign_only), sign_only);
}

TEST(CanonicalFormEdgeTest, NonLiteralsUnchanged) {
  Term uri = Term::Uri("http://x");
  EXPECT_EQ(CanonicalForm(uri), uri);
  Term blank = Term::BlankNode("b");
  EXPECT_EQ(CanonicalForm(blank), blank);
  Term plain = Term::PlainLiteral("+025");  // no datatype -> untouched
  EXPECT_EQ(CanonicalForm(plain), plain);
  Term lang = Term::PlainLiteralLang("x", "en");
  EXPECT_EQ(CanonicalForm(lang), lang);
}

TEST(CanonicalFormEdgeTest, UnknownDatatypeUnchanged) {
  Term custom = Term::TypedLiteral("+025", "http://example.org/myType");
  EXPECT_EQ(CanonicalForm(custom), custom);
}

TEST(CanonicalFormEdgeTest, DatatypePreserved) {
  Term canon = CanonicalForm(Term::TypedLiteral("+1", std::string(kXsdInt)));
  EXPECT_EQ(canon.datatype(), kXsdInt);
  EXPECT_STREQ(canon.TypeCode(), "TL");
}

TEST(IsCanonicalizableDatatypeTest, KnownTypes) {
  EXPECT_TRUE(IsCanonicalizableDatatype(std::string(kXsdInt)));
  EXPECT_TRUE(IsCanonicalizableDatatype(std::string(kXsdInteger)));
  EXPECT_TRUE(IsCanonicalizableDatatype(std::string(kXsdDecimal)));
  EXPECT_TRUE(IsCanonicalizableDatatype(std::string(kXsdDouble)));
  EXPECT_TRUE(IsCanonicalizableDatatype(std::string(kXsdBoolean)));
  EXPECT_TRUE(IsCanonicalizableDatatype(std::string(kXsdString)));
  EXPECT_FALSE(IsCanonicalizableDatatype("http://example.org/custom"));
  EXPECT_FALSE(IsCanonicalizableDatatype(std::string(kXsdDate)));
}

TEST(CanonicalFormEdgeTest, DoubleRoundTripsShortestForm) {
  // The canonical double form must parse back to the same value.
  Term canon = CanonicalForm(
      Term::TypedLiteral("0.30000000000000004", std::string(kXsdDouble)));
  EXPECT_EQ(canon.lexical(), "0.30000000000000004");
}

}  // namespace
}  // namespace rdfdb::rdf
