#include "ndm/analysis.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace rdfdb::ndm {
namespace {

/// Diamond with a costly direct edge:
///   1 -> 2 (1), 2 -> 4 (1), 1 -> 3 (2), 3 -> 4 (2), 1 -> 4 (5)
LogicalNetwork Diamond() {
  LogicalNetwork net;
  EXPECT_TRUE(net.AddLink({1, 1, 2, 1.0}).ok());
  EXPECT_TRUE(net.AddLink({2, 2, 4, 1.0}).ok());
  EXPECT_TRUE(net.AddLink({3, 1, 3, 2.0}).ok());
  EXPECT_TRUE(net.AddLink({4, 3, 4, 2.0}).ok());
  EXPECT_TRUE(net.AddLink({5, 1, 4, 5.0}).ok());
  return net;
}

TEST(ShortestPathTest, PicksCheapestRoute) {
  LogicalNetwork net = Diamond();
  PathResult path = ShortestPath(net, 1, 4);
  ASSERT_TRUE(path.found);
  EXPECT_DOUBLE_EQ(path.cost, 2.0);
  EXPECT_EQ(path.nodes, (std::vector<NodeId>{1, 2, 4}));
  EXPECT_EQ(path.links, (std::vector<LinkId>{1, 2}));
}

TEST(ShortestPathTest, SourceEqualsTarget) {
  LogicalNetwork net = Diamond();
  PathResult path = ShortestPath(net, 1, 1);
  ASSERT_TRUE(path.found);
  EXPECT_DOUBLE_EQ(path.cost, 0.0);
  EXPECT_EQ(path.nodes, std::vector<NodeId>{1});
  EXPECT_TRUE(path.links.empty());
}

TEST(ShortestPathTest, RespectsDirection) {
  LogicalNetwork net = Diamond();
  EXPECT_FALSE(ShortestPath(net, 4, 1).found);
  PathResult back = ShortestPath(net, 4, 1, Direction::kIncoming);
  ASSERT_TRUE(back.found);
  EXPECT_DOUBLE_EQ(back.cost, 2.0);
  PathResult both = ShortestPath(net, 4, 1, Direction::kBoth);
  EXPECT_TRUE(both.found);
}

TEST(ShortestPathTest, UnknownNodes) {
  LogicalNetwork net = Diamond();
  EXPECT_FALSE(ShortestPath(net, 1, 99).found);
  EXPECT_FALSE(ShortestPath(net, 99, 1).found);
}

TEST(ShortestPathTest, DisconnectedTarget) {
  LogicalNetwork net = Diamond();
  net.AddNode(50);
  EXPECT_FALSE(ShortestPath(net, 1, 50).found);
}

TEST(ShortestPathByHopsTest, MinimizesLinkCount) {
  LogicalNetwork net = Diamond();
  PathResult path = ShortestPathByHops(net, 1, 4);
  ASSERT_TRUE(path.found);
  EXPECT_DOUBLE_EQ(path.cost, 1.0);  // the direct (expensive) edge
  EXPECT_EQ(path.links, std::vector<LinkId>{5});
}

TEST(WithinCostTest, BoundsExploration) {
  LogicalNetwork net = Diamond();
  auto costs = WithinCost(net, 1, 2.0);
  EXPECT_EQ(costs.size(), 4u);  // 1@0, 2@1, 3@2, 4@2
  EXPECT_DOUBLE_EQ(costs.at(1), 0.0);
  EXPECT_DOUBLE_EQ(costs.at(2), 1.0);
  EXPECT_DOUBLE_EQ(costs.at(3), 2.0);
  EXPECT_DOUBLE_EQ(costs.at(4), 2.0);
  auto tight = WithinCost(net, 1, 0.5);
  EXPECT_EQ(tight.size(), 1u);
}

TEST(WithinCostTest, IncomingDirection) {
  LogicalNetwork net = Diamond();
  auto costs = WithinCost(net, 4, 2.0, Direction::kIncoming);
  // Reaching 4 backwards within cost 2: 4@0, 2@1, 3@2, 1@2 (via 2).
  EXPECT_EQ(costs.size(), 4u);
  EXPECT_DOUBLE_EQ(costs.at(2), 1.0);
  EXPECT_DOUBLE_EQ(costs.at(1), 2.0);
}

TEST(NearestNeighborsTest, OrderedByCost) {
  LogicalNetwork net = Diamond();
  auto nn = NearestNeighbors(net, 1, 2);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].first, 2);
  EXPECT_DOUBLE_EQ(nn[0].second, 1.0);
  // 3 and 4 are both at cost 2; node id breaks the tie.
  EXPECT_EQ(nn[1].first, 3);
}

TEST(NearestNeighborsTest, KLargerThanReachable) {
  LogicalNetwork net = Diamond();
  auto nn = NearestNeighbors(net, 1, 100);
  EXPECT_EQ(nn.size(), 3u);  // excludes the source
}

TEST(ReachableTest, Directed) {
  LogicalNetwork net = Diamond();
  EXPECT_TRUE(Reachable(net, 1, 4));
  EXPECT_FALSE(Reachable(net, 4, 1));
  EXPECT_TRUE(Reachable(net, 4, 1, Direction::kBoth));
  EXPECT_TRUE(Reachable(net, 2, 2));
  EXPECT_FALSE(Reachable(net, 1, 99));
}

TEST(ConnectedComponentsTest, CountsWeakComponents) {
  LogicalNetwork net = Diamond();
  EXPECT_TRUE(net.AddLink({10, 20, 21}).ok());
  net.AddNode(30);
  EXPECT_EQ(ConnectedComponentCount(net), 3u);
  auto comp = ConnectedComponents(net);
  EXPECT_EQ(comp.at(1), comp.at(4));
  EXPECT_EQ(comp.at(20), comp.at(21));
  EXPECT_NE(comp.at(1), comp.at(20));
  EXPECT_NE(comp.at(30), comp.at(20));
}

TEST(SpanningForestTest, DiamondTreeCost) {
  LogicalNetwork net = Diamond();
  auto forest = MinimumCostSpanningForest(net);
  EXPECT_EQ(forest.size(), 3u);  // 4 nodes -> 3 edges
  // Cheapest connection: 1-2 (1), 2-4 (1), 1-3 (2) = 4.
  EXPECT_DOUBLE_EQ(SpanningForestCost(net), 4.0);
}

TEST(SpanningForestTest, ForestAcrossComponents) {
  LogicalNetwork net;
  EXPECT_TRUE(net.AddLink({1, 1, 2, 1.0}).ok());
  EXPECT_TRUE(net.AddLink({2, 3, 4, 2.0}).ok());
  auto forest = MinimumCostSpanningForest(net);
  EXPECT_EQ(forest.size(), 2u);
  EXPECT_DOUBLE_EQ(SpanningForestCost(net), 3.0);
}

TEST(BreadthFirstOrderTest, DeterministicOrder) {
  LogicalNetwork net = Diamond();
  auto order = BreadthFirstOrder(net, 1);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1);
  // Level 1 sorted: 2, 3, 4 (4 via the direct link).
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
  EXPECT_EQ(order[3], 4);
  EXPECT_TRUE(BreadthFirstOrder(net, 99).empty());
}

TEST(SubnetworkTest, InducedSubgraphKeepsInternalLinksOnly) {
  LogicalNetwork net = Diamond();
  LogicalNetwork sub = ExtractSubnetwork(net, {1, 2, 4});
  EXPECT_EQ(sub.node_count(), 3u);
  // Links 1 (1->2), 2 (2->4), 5 (1->4) are internal; 3 and 4 touch node 3.
  EXPECT_EQ(sub.link_count(), 3u);
  EXPECT_TRUE(sub.HasLink(1));
  EXPECT_TRUE(sub.HasLink(2));
  EXPECT_TRUE(sub.HasLink(5));
  EXPECT_FALSE(sub.HasLink(3));
  EXPECT_FALSE(sub.HasNode(3));
  // Analysis runs on the extract: costs unchanged for internal paths.
  PathResult path = ShortestPath(sub, 1, 4);
  ASSERT_TRUE(path.found);
  EXPECT_DOUBLE_EQ(path.cost, 2.0);
}

TEST(SubnetworkTest, UnknownNodesIgnored) {
  LogicalNetwork net = Diamond();
  LogicalNetwork sub = ExtractSubnetwork(net, {1, 99});
  EXPECT_EQ(sub.node_count(), 1u);
  EXPECT_EQ(sub.link_count(), 0u);
}

TEST(SubnetworkTest, NeighborhoodSubnetwork) {
  LogicalNetwork net = Diamond();
  // Within cost 1 of node 1 (undirected): nodes 1, 2.
  LogicalNetwork hood = NeighborhoodSubnetwork(net, 1, 1.0);
  EXPECT_EQ(hood.node_count(), 2u);
  EXPECT_TRUE(hood.HasNode(1));
  EXPECT_TRUE(hood.HasNode(2));
  EXPECT_EQ(hood.link_count(), 1u);
}

// Property check over random graphs: Dijkstra's cost never exceeds the
// hop-path cost-sum, within-cost results agree with full Dijkstra, and
// every shortest path's links actually connect source to target.
class RandomGraphTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphTest, ShortestPathInvariants) {
  rdfdb::Random rng(GetParam());
  LogicalNetwork net;
  const int kNodes = 40;
  for (int i = 0; i < 120; ++i) {
    NodeId a = static_cast<NodeId>(rng.Uniform(kNodes));
    NodeId b = static_cast<NodeId>(rng.Uniform(kNodes));
    (void)net.AddLink({i, a, b,
                       1.0 + static_cast<double>(rng.Uniform(9))});
  }
  auto all_costs = WithinCost(net, 0, 1e18);
  for (const auto& [node, cost] : all_costs) {
    PathResult path = ShortestPath(net, 0, node);
    ASSERT_TRUE(path.found);
    EXPECT_DOUBLE_EQ(path.cost, cost);
    // Path is structurally valid.
    ASSERT_EQ(path.links.size() + 1, path.nodes.size());
    double sum = 0;
    for (size_t i = 0; i < path.links.size(); ++i) {
      const Link* link = net.GetLink(path.links[i]);
      ASSERT_NE(link, nullptr);
      EXPECT_EQ(link->start, path.nodes[i]);
      EXPECT_EQ(link->end, path.nodes[i + 1]);
      sum += link->cost;
    }
    EXPECT_DOUBLE_EQ(sum, path.cost);
    // Hop-optimal path exists whenever a cost-optimal one does.
    EXPECT_TRUE(ShortestPathByHops(net, 0, node).found);
  }
}

TEST_P(RandomGraphTest, ComponentsPartitionNodes) {
  rdfdb::Random rng(GetParam() + 1000);
  LogicalNetwork net;
  for (int i = 0; i < 60; ++i) {
    (void)net.AddLink({i, static_cast<NodeId>(rng.Uniform(50)),
                       static_cast<NodeId>(rng.Uniform(50))});
  }
  auto comp = ConnectedComponents(net);
  EXPECT_EQ(comp.size(), net.node_count());
  // Reachability (undirected) implies same component.
  auto nodes = net.Nodes();
  for (size_t i = 0; i < nodes.size(); i += 7) {
    for (size_t j = 0; j < nodes.size(); j += 11) {
      bool connected = Reachable(net, nodes[i], nodes[j], Direction::kBoth);
      EXPECT_EQ(connected, comp.at(nodes[i]) == comp.at(nodes[j]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace rdfdb::ndm
