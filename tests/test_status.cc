#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace rdfdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument},
      {Status::NotFound("m"), StatusCode::kNotFound},
      {Status::AlreadyExists("m"), StatusCode::kAlreadyExists},
      {Status::OutOfRange("m"), StatusCode::kOutOfRange},
      {Status::Corruption("m"), StatusCode::kCorruption},
      {Status::NotSupported("m"), StatusCode::kNotSupported},
      {Status::IOError("m"), StatusCode::kIOError},
      {Status::Internal("m"), StatusCode::kInternal},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "m");
  }
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsInvalidArgument());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("missing row").ToString(),
            "NotFound: missing row");
  EXPECT_EQ(Status::InvalidArgument("bad").ToString(),
            "InvalidArgument: bad");
}

TEST(StatusTest, CopySharesRepresentation) {
  Status a = Status::Corruption("boom");
  Status b = a;
  EXPECT_EQ(b.code(), StatusCode::kCorruption);
  EXPECT_EQ(b.message(), "boom");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  RDFDB_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(Chain(5).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("must be positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value(), 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
  EXPECT_EQ(r.value_or(42), 42);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  EXPECT_EQ(ParsePositive(3).value_or(42), 3);
}

Result<int> Doubled(int x) {
  RDFDB_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  ASSERT_TRUE(Doubled(4).ok());
  EXPECT_EQ(*Doubled(4), 8);
  EXPECT_TRUE(Doubled(0).status().IsOutOfRange());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 9);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace rdfdb
