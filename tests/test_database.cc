#include "storage/database.h"

#include <gtest/gtest.h>

namespace rdfdb::storage {
namespace {

Schema OneCol() {
  return Schema({ColumnDef{"ID", ValueType::kInt64, false}});
}

TEST(DatabaseTest, CreateAndGetTable) {
  Database db("TESTDB");
  EXPECT_EQ(db.name(), "TESTDB");
  auto table = db.CreateTable("APP", "DATA", OneCol());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(db.GetTable("APP", "DATA"), *table);
  EXPECT_EQ(db.GetTable("APP", "MISSING"), nullptr);
}

TEST(DatabaseTest, NamesAreCaseInsensitive) {
  Database db;
  ASSERT_TRUE(db.CreateTable("app", "data", OneCol()).ok());
  EXPECT_NE(db.GetTable("APP", "DATA"), nullptr);
  EXPECT_NE(db.GetTable("App", "Data"), nullptr);
  EXPECT_TRUE(db.CreateTable("APP", "DATA", OneCol())
                  .status()
                  .IsAlreadyExists());
}

TEST(DatabaseTest, SchemaSeparatesNamespaces) {
  Database db;
  ASSERT_TRUE(db.CreateTable("A", "T", OneCol()).ok());
  ASSERT_TRUE(db.CreateTable("B", "T", OneCol()).ok());
  EXPECT_NE(db.GetTable("A", "T"), db.GetTable("B", "T"));
}

TEST(DatabaseTest, DropTable) {
  Database db;
  ASSERT_TRUE(db.CreateTable("A", "T", OneCol()).ok());
  ASSERT_TRUE(db.DropTable("A", "T").ok());
  EXPECT_EQ(db.GetTable("A", "T"), nullptr);
  EXPECT_TRUE(db.DropTable("A", "T").IsNotFound());
}

TEST(DatabaseTest, DropTableCascadesViews) {
  Database db;
  Table* table = *db.CreateTable("A", "T", OneCol());
  ASSERT_TRUE(db.CreateView("A", "V", table, True()).ok());
  ASSERT_TRUE(db.DropTable("A", "T").ok());
  EXPECT_EQ(db.GetView("A", "V"), nullptr);
}

TEST(DatabaseTest, TableNamesSorted) {
  Database db;
  ASSERT_TRUE(db.CreateTable("B", "T2", OneCol()).ok());
  ASSERT_TRUE(db.CreateTable("A", "T1", OneCol()).ok());
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"A.T1", "B.T2"}));
}

TEST(DatabaseTest, Views) {
  Database db;
  Table* table = *db.CreateTable("A", "T", OneCol());
  (void)*table->Insert({Value::Int64(1)});
  (void)*table->Insert({Value::Int64(2)});
  auto view = db.CreateView("A", "EVENS", table, Eq(0, Value::Int64(2)));
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->row_count(), 1u);
  EXPECT_EQ(db.GetView("A", "EVENS"), *view);
  EXPECT_TRUE(db.CreateView("A", "EVENS", table, True())
                  .status()
                  .IsAlreadyExists());
  ASSERT_TRUE(db.DropView("A", "EVENS").ok());
  EXPECT_TRUE(db.DropView("A", "EVENS").IsNotFound());
}

TEST(DatabaseTest, ViewAccessControl) {
  Database db;
  Table* table = *db.CreateTable("A", "T", OneCol());
  View* view = *db.CreateView("A", "V", table, True(), "alice");
  EXPECT_TRUE(view->CanSelect("alice"));
  EXPECT_FALSE(view->CanSelect("bob"));
  view->GrantSelect("bob");
  EXPECT_TRUE(view->CanSelect("bob"));
  EXPECT_FALSE(view->CanSelect("carol"));
}

TEST(DatabaseTest, ViewWithoutOwnerIsPublic) {
  Database db;
  Table* table = *db.CreateTable("A", "T", OneCol());
  View* view = *db.CreateView("A", "V", table, True());
  EXPECT_TRUE(view->CanSelect("anyone"));
}

TEST(DatabaseTest, Sequences) {
  Database db;
  auto seq = db.CreateSequence("A", "S", 100);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ((*seq)->Next(), 100);
  EXPECT_EQ((*seq)->Next(), 101);
  EXPECT_EQ((*seq)->Peek(), 102);
  EXPECT_EQ(db.GetSequence("A", "S"), *seq);
  EXPECT_EQ(db.GetSequence("A", "MISSING"), nullptr);
  EXPECT_TRUE(db.CreateSequence("A", "S").status().IsAlreadyExists());
  (*seq)->Reset(5);
  EXPECT_EQ((*seq)->Next(), 5);
}

TEST(DatabaseTest, ApproxTotalBytesSumsTables) {
  Database db;
  Table* table = *db.CreateTable("A", "T", OneCol());
  size_t before = db.ApproxTotalBytes();
  for (int i = 0; i < 100; ++i) (void)*table->Insert({Value::Int64(i)});
  EXPECT_GT(db.ApproxTotalBytes(), before);
}

TEST(ViewTest, ScanFiltersRows) {
  Database db;
  Table* table = *db.CreateTable("A", "T", OneCol());
  for (int i = 0; i < 10; ++i) (void)*table->Insert({Value::Int64(i)});
  View* view = *db.CreateView("A", "BIG", table,
                              Compare(0, CompareOp::kGe, Value::Int64(7)));
  size_t count = 0;
  view->Scan([&](RowId, const Row& row) {
    EXPECT_GE(row[0].as_int64(), 7);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 3u);
}

}  // namespace
}  // namespace rdfdb::storage
