#include "rdf/value_store.h"

#include <gtest/gtest.h>

#include <set>

#include "rdf/vocab.h"

namespace rdfdb::rdf {
namespace {

class ValueStoreTest : public ::testing::Test {
 protected:
  storage::Database db_{"ORADB"};
  ValueStore store_{&db_};
};

TEST_F(ValueStoreTest, InsertAssignsIdAndDeduplicates) {
  // "Each text entry is uniquely stored."
  auto id1 = store_.LookupOrInsert(Term::Uri("http://a"));
  ASSERT_TRUE(id1.ok());
  auto id2 = store_.LookupOrInsert(Term::Uri("http://a"));
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*id1, *id2);
  EXPECT_EQ(store_.value_count(), 1u);
  auto id3 = store_.LookupOrInsert(Term::Uri("http://b"));
  EXPECT_NE(*id1, *id3);
  EXPECT_EQ(store_.value_count(), 2u);
}

TEST_F(ValueStoreTest, LookupWithoutInsert) {
  EXPECT_FALSE(store_.Lookup(Term::Uri("http://missing")).has_value());
  auto id = store_.LookupOrInsert(Term::Uri("http://there"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(store_.Lookup(Term::Uri("http://there")).value(), *id);
}

TEST_F(ValueStoreTest, DistinguishesKindsWithSameLexical) {
  auto uri = store_.LookupOrInsert(Term::Uri("x"));
  auto plain = store_.LookupOrInsert(Term::PlainLiteral("x"));
  auto lang = store_.LookupOrInsert(Term::PlainLiteralLang("x", "en"));
  auto lang2 = store_.LookupOrInsert(Term::PlainLiteralLang("x", "de"));
  auto typed = store_.LookupOrInsert(
      Term::TypedLiteral("x", std::string(kXsdString)));
  std::set<ValueId> ids{*uri, *plain, *lang, *lang2, *typed};
  EXPECT_EQ(ids.size(), 5u);
}

TEST_F(ValueStoreTest, RoundTripsAllTermKinds) {
  const Term terms[] = {
      Term::Uri("http://example.org/x"),
      Term::PlainLiteral("plain text"),
      Term::PlainLiteralLang("bonjour", "fr"),
      Term::TypedLiteral("25", std::string(kXsdInt)),
  };
  for (const Term& term : terms) {
    auto id = store_.LookupOrInsert(term);
    ASSERT_TRUE(id.ok());
    auto back = store_.GetTerm(*id);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, term) << term.ToNTriples();
  }
}

TEST_F(ValueStoreTest, LongLiteralSpillsToLongValue) {
  std::string big(kLongLiteralThreshold + 500, 'y');
  Term term = Term::PlainLiteral(big);
  auto id = store_.LookupOrInsert(term);
  ASSERT_TRUE(id.ok());
  auto back = store_.GetTerm(*id);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->lexical(), big);
  EXPECT_STREQ(back->TypeCode(), "PLL");
  auto text = store_.GetText(*id);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, big);
  // Dedup works through the fingerprint.
  auto again = store_.LookupOrInsert(Term::PlainLiteral(big));
  EXPECT_EQ(*again, *id);
}

TEST_F(ValueStoreTest, TypedLongLiteral) {
  std::string big(kLongLiteralThreshold + 1, 'z');
  Term term = Term::TypedLiteral(big, std::string(kXsdString));
  auto id = store_.LookupOrInsert(term);
  ASSERT_TRUE(id.ok());
  auto code = store_.GetTypeCode(*id);
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(*code, "TLL");
}

TEST_F(ValueStoreTest, BlankNodesRejectedFromGlobalPath) {
  EXPECT_TRUE(store_.LookupOrInsert(Term::BlankNode("b"))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ValueStoreTest, BlankNodesAreModelScoped) {
  auto m1 = store_.LookupOrInsertBlank(1, "node1");
  ASSERT_TRUE(m1.ok());
  auto m1_again = store_.LookupOrInsertBlank(1, "node1");
  ASSERT_TRUE(m1_again.ok());
  EXPECT_EQ(*m1, *m1_again);  // stable within a model
  auto m2 = store_.LookupOrInsertBlank(2, "node1");
  ASSERT_TRUE(m2.ok());
  EXPECT_NE(*m1, *m2);  // same label, different model -> different node
}

TEST_F(ValueStoreTest, BlankLookupWithoutInsert) {
  EXPECT_FALSE(store_.LookupBlank(1, "ghost").has_value());
  auto id = store_.LookupOrInsertBlank(1, "ghost");
  EXPECT_EQ(store_.LookupBlank(1, "ghost").value(), *id);
  EXPECT_FALSE(store_.LookupBlank(2, "ghost").has_value());
}

TEST_F(ValueStoreTest, BlankNodeRoundTripsAsBlank) {
  auto id = store_.LookupOrInsertBlank(7, "ann1");
  auto back = store_.GetTerm(*id);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->is_blank());
  auto code = store_.GetTypeCode(*id);
  EXPECT_EQ(*code, "BN");
}

TEST_F(ValueStoreTest, GetTermUnknownIdFails) {
  EXPECT_TRUE(store_.GetTerm(999999).status().IsNotFound());
  EXPECT_TRUE(store_.GetText(999999).status().IsNotFound());
  EXPECT_TRUE(store_.GetTypeCode(999999).status().IsNotFound());
}

TEST_F(ValueStoreTest, TypeCodesMatchPaperTable) {
  struct Case {
    Term term;
    const char* code;
  };
  std::string big(kLongLiteralThreshold + 1, 'q');
  const Case cases[] = {
      {Term::Uri("u"), "UR"},
      {Term::PlainLiteral("p"), "PL"},
      {Term::PlainLiteralLang("p", "en"), "PL@"},
      {Term::TypedLiteral("1", std::string(kXsdInt)), "TL"},
      {Term::PlainLiteral(big), "PLL"},
      {Term::TypedLiteral(big, std::string(kXsdString)), "TLL"},
  };
  for (const Case& c : cases) {
    auto id = store_.LookupOrInsert(c.term);
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*store_.GetTypeCode(*id), c.code);
  }
}

TEST_F(ValueStoreTest, ReattachesToExistingTables) {
  auto id = store_.LookupOrInsert(Term::Uri("http://persist"));
  ASSERT_TRUE(id.ok());
  ValueStore second(&db_);  // same database: must see the same rows
  EXPECT_EQ(second.Lookup(Term::Uri("http://persist")).value(), *id);
}

}  // namespace
}  // namespace rdfdb::rdf
