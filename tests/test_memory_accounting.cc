#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "rdf/rdf_store.h"
#include "rdf/snapshot_store.h"

namespace rdfdb::rdf {
namespace {

Status InsertN(RdfStore* store, const std::string& model, int count,
               int offset = 0) {
  for (int i = 0; i < count; ++i) {
    auto inserted = store->InsertTriple(
        model, "<urn:s" + std::to_string(offset + i) + ">",
        "<urn:p" + std::to_string(i % 7) + ">",
        "\"value-" + std::to_string(offset + i) + "\"");
    if (!inserted.ok()) return inserted.status();
  }
  return Status::OK();
}

TEST(MemoryAccountingTest, BreakdownGrowsWithInserts) {
  RdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "m_app", "triple").ok());
  const RdfStore::MemoryBreakdown empty = store.MemoryUsage();

  ASSERT_TRUE(InsertN(&store, "m", 1000).ok());
  const RdfStore::MemoryBreakdown loaded = store.MemoryUsage();

  // 1000 distinct subjects/objects: the lexical store and the link
  // table must both visibly grow.
  EXPECT_GT(loaded.value_store_bytes, empty.value_store_bytes);
  EXPECT_GT(loaded.link_table_bytes, empty.link_table_bytes);
  EXPECT_GT(loaded.StoreTotal(), empty.StoreTotal());

  // Sanity scale: 1000 short triples live in kilobytes-to-megabytes,
  // not bytes and not gigabytes.
  EXPECT_GT(loaded.StoreTotal(), 10u * 1024u);
  EXPECT_LT(loaded.StoreTotal(), 1u << 30);

  // The estimate has to be in the neighborhood of what the allocator
  // ledger says the whole process holds: the store cannot claim more
  // than everything allocated.
  EXPECT_LE(loaded.StoreTotal(), loaded.tracked_heap_bytes);
}

TEST(MemoryAccountingTest, GaugesAreSetByUpdateMemoryGauges) {
  RdfStore store;
  ASSERT_TRUE(store.CreateRdfModel("m", "m_app", "triple").ok());
  ASSERT_TRUE(InsertN(&store, "m", 200).ok());
  store.UpdateMemoryGauges();

  const obs::MetricsRegistry& reg = store.metrics_registry();
  const obs::Gauge* value_bytes = reg.FindGauge("rdfdb_mem_value_store_bytes");
  const obs::Gauge* link_bytes = reg.FindGauge("rdfdb_mem_link_table_bytes");
  const obs::Gauge* heap_bytes = reg.FindGauge("rdfdb_mem_tracked_heap_bytes");
  ASSERT_NE(value_bytes, nullptr);
  ASSERT_NE(link_bytes, nullptr);
  ASSERT_NE(heap_bytes, nullptr);
  EXPECT_GT(value_bytes->Value(), 0);
  EXPECT_GT(link_bytes->Value(), 0);
  EXPECT_GT(heap_bytes->Value(), 0);

  const RdfStore::MemoryBreakdown breakdown = store.MemoryUsage();
  EXPECT_EQ(value_bytes->Value(),
            static_cast<int64_t>(breakdown.value_store_bytes));
  EXPECT_EQ(link_bytes->Value(),
            static_cast<int64_t>(breakdown.link_table_bytes));
}

TEST(MemoryAccountingTest, SnapshotStoreBreakdownIncludesDictionary) {
  SnapshotRdfStore store;
  ASSERT_TRUE(store
                  .Apply([](RdfStore& live) {
                    RDFDB_RETURN_NOT_OK(
                        live.CreateRdfModel("m", "m_app", "triple").status());
                    return InsertN(&live, "m", 500);
                  })
                  .ok());
  const RdfStore::MemoryBreakdown breakdown = store.MemoryUsage();
  EXPECT_GT(breakdown.value_store_bytes, 0u);
  EXPECT_GT(breakdown.link_table_bytes, 0u);
  EXPECT_GT(breakdown.term_dict_bytes, 0u);
  EXPECT_GT(breakdown.StoreTotal(), breakdown.term_dict_bytes);
}

TEST(MemoryAccountingTest, RetiredBytesAppearWhileASnapshotPinsAndClear) {
  SnapshotRdfStore store;
  ASSERT_TRUE(store
                  .Apply([](RdfStore& live) {
                    RDFDB_RETURN_NOT_OK(
                        live.CreateRdfModel("m", "m_app", "triple").status());
                    return InsertN(&live, "m", 300);
                  })
                  .ok());
  {
    // Pin the current version, then publish past it: the displaced
    // version cannot be reclaimed while this snapshot lives, and its
    // exclusive bytes show up in the breakdown.
    auto snapshot = store.Snapshot();
    ASSERT_TRUE(store
                    .Apply([](RdfStore& live) {
                      return InsertN(&live, "m", 300, /*offset=*/1000);
                    })
                    .ok());
    EXPECT_GE(store.RetiredOutstanding(), 1u);
    EXPECT_GT(store.RetiredBytes(), 0u);
    EXPECT_GE(store.OldestRetireAgeSeconds(), 0.0);
    EXPECT_GT(store.MemoryUsage().retired_version_bytes, 0u);
  }
  // Snapshot released: the next publish sweeps, retention drains.
  ASSERT_TRUE(store
                  .Apply([](RdfStore& live) {
                    return InsertN(&live, "m", 1, /*offset=*/5000);
                  })
                  .ok());
  EXPECT_EQ(store.RetiredBytes(), 0u);
  EXPECT_EQ(store.OldestRetireAgeSeconds(), 0.0);
}

TEST(MemoryAccountingTest, RetentionWatchdogEmitsStallEvent) {
  std::ostringstream sink;
  obs::EventLog::Options options;
  options.sink = &sink;
  auto log = obs::EventLog::Open(std::move(options));
  ASSERT_TRUE(log.ok());

  SnapshotRdfStore store;
  store.SetObservability(log->get(), nullptr, nullptr);
  // Any retention at all trips the watchdog with a (near-)zero
  // threshold.
  store.set_retention_warn_seconds(1e-9);
  ASSERT_TRUE(store
                  .Apply([](RdfStore& live) {
                    RDFDB_RETURN_NOT_OK(
                        live.CreateRdfModel("m", "m_app", "triple").status());
                    return InsertN(&live, "m", 50);
                  })
                  .ok());

  auto snapshot = store.Snapshot();  // pins the current version
  ASSERT_TRUE(store
                  .Apply([](RdfStore& live) {
                    return InsertN(&live, "m", 50, /*offset=*/100);
                  })
                  .ok());
  // The gauge-refresh path also runs the watchdog.
  store.UpdateMemoryGauges();
  (*log)->Flush();

  EXPECT_NE(sink.str().find("retention_stall"), std::string::npos)
      << sink.str();
  EXPECT_NE(sink.str().find("\"cat\":\"epoch\""), std::string::npos);

  const obs::Gauge* age = store.metrics_registry().FindGauge(
      "rdfdb_version_retention_age_seconds");
  ASSERT_NE(age, nullptr);
  EXPECT_GE(age->Value(), 0);
}

TEST(MemoryAccountingTest, WatchdogDisabledEmitsNothing) {
  std::ostringstream sink;
  obs::EventLog::Options options;
  options.sink = &sink;
  auto log = obs::EventLog::Open(std::move(options));
  ASSERT_TRUE(log.ok());

  SnapshotRdfStore store;
  store.SetObservability(log->get(), nullptr, nullptr);
  store.set_retention_warn_seconds(0.0);  // disabled
  ASSERT_TRUE(store
                  .Apply([](RdfStore& live) {
                    RDFDB_RETURN_NOT_OK(
                        live.CreateRdfModel("m", "m_app", "triple").status());
                    return InsertN(&live, "m", 50);
                  })
                  .ok());
  auto snapshot = store.Snapshot();
  ASSERT_TRUE(store
                  .Apply([](RdfStore& live) {
                    return InsertN(&live, "m", 50, /*offset=*/100);
                  })
                  .ok());
  store.UpdateMemoryGauges();
  (*log)->Flush();
  EXPECT_EQ(sink.str().find("retention_stall"), std::string::npos)
      << sink.str();
}

}  // namespace
}  // namespace rdfdb::rdf
