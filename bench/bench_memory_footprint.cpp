// Memory-footprint benchmark: bytes/triple for the store's in-memory
// representation (ROADMAP item 2, ISSUE 8 headline).
//
// Loads the synthetic UniProt dataset at one or more sizes through the
// pipelined bulk loader, then reports the store's MemoryUsage()
// breakdown normalized to bytes per loaded triple, plus load
// throughput. An A/B section rebuilds the PRE-compression containers
// (raw std::string dictionary copies, vector<uint32_t> posting lists
// inside unordered_maps, and the six generic rdf_link$ hash indexes
// keyed by ValueKey copies) from the loaded store and measures their
// true heap cost through the allocator hooks, so the "uncompressed"
// column is the real legacy layout, not an estimate.
//
// Usage:
//   bench_memory_footprint [--triples=N[,N...]] [--json=PATH] [--smoke]
//
//   --triples   comma-separated sizes (default: 100000, plus 1000000
//               when RDFDB_BENCH_LARGE=1 is set)
//   --json      write a BENCH_memory_footprint.json artifact
//   --smoke     CI gate: exit non-zero unless compressed bytes/triple
//               < uncompressed bytes/triple at every size
//
// Not a google-benchmark binary on purpose: each measurement is one
// full load (seconds at 1M), and the interesting output is a table of
// byte counters, not a latency distribution.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.h"
#include "gen/uniprot_gen.h"
#include "obs/resource_tracker.h"
#include "rdf/bulk_load.h"
#include "rdf/legacy_layout.h"
#include "rdf/rdf_store.h"

namespace {

using rdfdb::gen::GenerateUniProt;
using rdfdb::gen::UniProtOptions;
using rdfdb::rdf::BulkLoad;
using rdfdb::rdf::BulkLoadStats;
using rdfdb::rdf::RdfStore;

struct SizeResult {
  size_t target = 0;          // requested triple count
  size_t triples = 0;         // rdf_link$ rows actually created
  RdfStore::MemoryBreakdown mem;
  uint64_t legacy_bytes = 0;  // heap cost of the pre-compression layout
  uint64_t legacy_dict_bytes = 0;
  uint64_t legacy_postings_bytes = 0;
  uint64_t legacy_index_bytes = 0;
  double load_seconds = 0.0;
  double triples_per_sec = 0.0;

  double BytesPerTriple() const {
    return triples == 0 ? 0.0
                        : static_cast<double>(mem.StoreTotal()) /
                              static_cast<double>(triples);
  }
  // The compressed layout replaces exactly what the legacy replica
  // rebuilds: dictionary strings + postings + link indexes. Compare
  // those components, not the whole store, so table rows / Value
  // variants common to both layouts don't dilute the ratio.
  uint64_t CompressedComparableBytes() const {
    return mem.quad_cache_bytes + mem.term_dict_bytes;
  }
};

std::vector<size_t> ParseSizes(const char* arg) {
  std::vector<size_t> sizes;
  const char* p = arg;
  while (*p != '\0') {
    char* end = nullptr;
    unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p) break;
    sizes.push_back(static_cast<size_t>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return sizes;
}

bool RunSize(size_t target, SizeResult* out) {
  out->target = target;
  UniProtOptions options;
  options.target_triples = target;
  auto dataset = GenerateUniProt(options);

  auto store = std::make_unique<RdfStore>();
  auto model = store->CreateRdfModel("uniprot", "uniprot_app", "triple");
  if (!model.ok()) {
    std::fprintf(stderr, "CreateRdfModel failed: %s\n",
                 model.status().ToString().c_str());
    return false;
  }

  auto model_id = store->GetModelId("uniprot");
  if (!model_id.ok()) {
    std::fprintf(stderr, "GetModelId failed: %s\n",
                 model_id.status().ToString().c_str());
    return false;
  }

  rdfdb::Timer timer;
  auto stats = BulkLoad(store.get(), "uniprot", dataset.triples);
  if (!stats.ok()) {
    std::fprintf(stderr, "BulkLoad failed: %s\n",
                 stats.status().ToString().c_str());
    return false;
  }
  // Reify the dataset's reified fraction so the footprint includes the
  // streamlined reification rows the paper's workload carries (~5%).
  for (const auto& reified : dataset.reified) {
    auto base = store->InsertParsedTriple(*model_id, reified.base.subject,
                                          reified.base.predicate,
                                          reified.base.object);
    if (!base.ok()) continue;
    auto reif = store->ReifyTriple("uniprot", base->rdf_t_id());
    if (!reif.ok()) {
      std::fprintf(stderr, "ReifyTriple failed: %s\n",
                   reif.status().ToString().c_str());
      return false;
    }
  }
  out->load_seconds =
      static_cast<double>(timer.ElapsedNanos()) / 1e9;

  auto model_stats = store->GetModelStats("uniprot");
  out->triples = model_stats.ok() ? model_stats->triples : stats->new_links;
  out->triples_per_sec =
      out->load_seconds > 0.0
          ? static_cast<double>(out->triples) / out->load_seconds
          : 0.0;
  out->mem = store->MemoryUsage();

  // Rebuild the pre-compression containers from the live store and
  // price them with the allocator hooks.
  rdfdb::rdf::LegacyLayoutCost legacy =
      rdfdb::rdf::MeasureLegacyLayout(*store);
  out->legacy_bytes = legacy.total_bytes;
  out->legacy_dict_bytes = legacy.dict_bytes;
  out->legacy_postings_bytes = legacy.postings_bytes;
  out->legacy_index_bytes = legacy.index_bytes;
  return true;
}

void PrintResult(const SizeResult& r) {
  std::printf("== %zu triples (requested %zu) ==\n", r.triples, r.target);
  std::printf("  load: %.2fs  (%.0f triples/s)\n", r.load_seconds,
              r.triples_per_sec);
  std::printf("  value_store_bytes:      %12zu\n", r.mem.value_store_bytes);
  std::printf("  link_table_bytes:       %12zu\n", r.mem.link_table_bytes);
  std::printf("  quad_cache_bytes:       %12zu\n", r.mem.quad_cache_bytes);
  std::printf("  term_dict_bytes:        %12zu\n", r.mem.term_dict_bytes);
  std::printf("  store_total:            %12zu  (%.1f bytes/triple)\n",
              r.mem.StoreTotal(), r.BytesPerTriple());
  std::printf("  tracked_heap_bytes:     %12zu\n", r.mem.tracked_heap_bytes);
  double triples = r.triples == 0 ? 1.0 : static_cast<double>(r.triples);
  std::printf(
      "  legacy (uncompressed) layout, rebuilt + heap-measured:\n"
      "    dict strings:         %12" PRIu64 "  (%.1f B/triple)\n"
      "    postings:             %12" PRIu64 "  (%.1f B/triple)\n"
      "    link hash indexes:    %12" PRIu64 "  (%.1f B/triple)\n"
      "    total:                %12" PRIu64 "  (%.1f B/triple)\n",
      r.legacy_dict_bytes, r.legacy_dict_bytes / triples,
      r.legacy_postings_bytes, r.legacy_postings_bytes / triples,
      r.legacy_index_bytes, r.legacy_index_bytes / triples,
      r.legacy_bytes, r.legacy_bytes / triples);
  std::printf(
      "  compressed comparable (quad cache + term dict): %" PRIu64
      "  (%.1f B/triple)  ratio %.2fx\n",
      r.CompressedComparableBytes(),
      r.CompressedComparableBytes() / triples,
      r.CompressedComparableBytes() > 0
          ? static_cast<double>(r.legacy_bytes) /
                static_cast<double>(r.CompressedComparableBytes())
          : 0.0);
}

bool WriteJson(const std::string& path, const std::vector<SizeResult>& all) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"memory_footprint\",\n  \"sizes\": [\n");
  for (size_t i = 0; i < all.size(); ++i) {
    const SizeResult& r = all[i];
    std::fprintf(
        f,
        "    {\"triples\": %zu, \"bytes_per_triple\": %.2f,\n"
        "     \"store_total_bytes\": %zu,\n"
        "     \"value_store_bytes\": %zu, \"link_table_bytes\": %zu,\n"
        "     \"quad_cache_bytes\": %zu, \"term_dict_bytes\": %zu,\n"
        "     \"compressed_comparable_bytes\": %" PRIu64 ",\n"
        "     \"legacy_total_bytes\": %" PRIu64 ",\n"
        "     \"legacy_dict_bytes\": %" PRIu64 ",\n"
        "     \"legacy_postings_bytes\": %" PRIu64 ",\n"
        "     \"legacy_index_bytes\": %" PRIu64 ",\n"
        "     \"load_seconds\": %.3f, \"triples_per_sec\": %.0f}%s\n",
        r.triples, r.BytesPerTriple(), r.mem.StoreTotal(),
        r.mem.value_store_bytes, r.mem.link_table_bytes,
        r.mem.quad_cache_bytes, r.mem.term_dict_bytes,
        r.CompressedComparableBytes(), r.legacy_bytes, r.legacy_dict_bytes,
        r.legacy_postings_bytes, r.legacy_index_bytes, r.load_seconds,
        r.triples_per_sec, i + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> sizes;
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--triples=", 10) == 0) {
      sizes = ParseSizes(arg + 10);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path = arg + 7;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--triples=N[,N...]] [--json=PATH] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }
  if (sizes.empty()) {
    if (smoke) {
      sizes = {100000};
    } else {
      sizes = {100000};
      if (std::getenv("RDFDB_BENCH_LARGE") != nullptr)
        sizes.push_back(1000000);
    }
  }

  std::vector<SizeResult> all;
  for (size_t target : sizes) {
    SizeResult r;
    if (!RunSize(target, &r)) return 1;
    PrintResult(r);
    all.push_back(r);
  }

  if (!json_path.empty() && !WriteJson(json_path, all)) return 1;

  if (smoke) {
    for (const SizeResult& r : all) {
      if (r.CompressedComparableBytes() >= r.legacy_bytes) {
        std::fprintf(stderr,
                     "SMOKE FAIL at %zu triples: compressed comparable "
                     "bytes (%" PRIu64 ") >= legacy layout bytes (%" PRIu64
                     ")\n",
                     r.triples, r.CompressedComparableBytes(),
                     r.legacy_bytes);
        return 1;
      }
    }
    std::printf("SMOKE OK: compressed layout smaller than legacy layout "
                "at every size\n");
  }
  return 0;
}
