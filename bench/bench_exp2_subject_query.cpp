// Experiment II (§7.1.4, Table 1, Figure 10): Jena2 vs. the RDF storage
// objects on the subject query
//
//   SELECT u.triple.GET_TRIPLE() FROM uniprot u
//   WHERE u.triple.GET_SUBJECT() = 'urn:lsid:uniprot.org:uniprot:P93259'
//
// vs. Jena2's m.listStatements(subject, null, null). The paper's Table 1
// reports both systems at ~0.03-0.04 s with 24 rows returned, flat in
// dataset size. The reproduced shape: both systems answer through one
// index lookup, comparable to each other and flat from 10 k to 5 M.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace rdfdb::bench {
namespace {

void BM_Table1_RdfObjects_SubjectQuery(benchmark::State& state) {
  const OracleSystem& sys = OracleSystem::For(state.range(0));
  size_t rows = 0;
  for (auto _ : state) {
    std::vector<rdf::SdoRdfTripleS> hits =
        sys.table->FindBySubject(gen::kProbeSubject);
    // GET_TRIPLE() on every hit, as the paper's SELECT does.
    for (const rdf::SdoRdfTripleS& triple : hits) {
      auto full = triple.GetTriple();
      benchmark::DoNotOptimize(full);
    }
    rows = hits.size();
    benchmark::DoNotOptimize(hits);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["triples"] = static_cast<double>(
      sys.store->links().TotalTripleCount());
}
BENCHMARK(BM_Table1_RdfObjects_SubjectQuery)->Apply(ApplyBenchSizes);

void BM_Table1_Jena2_SubjectQuery(benchmark::State& state) {
  const JenaSystem& sys = JenaSystem::For(state.range(0));
  size_t rows = 0;
  for (auto _ : state) {
    auto hits = sys.store->ListStatements(
        "uniprot", rdf::Term::Uri(gen::kProbeSubject), std::nullopt,
        std::nullopt);
    if (!hits.ok()) state.SkipWithError("listStatements failed");
    rows = hits->size();
    benchmark::DoNotOptimize(*hits);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Table1_Jena2_SubjectQuery)->Apply(ApplyBenchSizes);

void BM_Table1_Jena1_SubjectQuery(benchmark::State& state) {
  // §3.1 context: Jena1's normalized layout pays a three-way join on
  // find operations (and "the single statement table did not scale for
  // large datasets") — included to show the design space Jena2 and the
  // RDF object type both improved on.
  Jena1System& sys = Jena1System::For(state.range(0));
  size_t rows = 0;
  for (auto _ : state) {
    auto hits = sys.store->Find(rdf::Term::Uri(gen::kProbeSubject),
                                std::nullopt, std::nullopt);
    if (!hits.ok()) state.SkipWithError("find failed");
    rows = hits->size();
    benchmark::DoNotOptimize(*hits);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Table1_Jena1_SubjectQuery)->Apply(ApplyBenchSizes);

}  // namespace
}  // namespace rdfdb::bench

BENCHMARK_MAIN();
