// Sync-mode A/B: insert throughput through LoggedRdfStore at each
// redo-log durability level (kNone / kBatch / kEveryRecord), plus the
// recovery-replay cost of the log those inserts produced. Feeds the
// EXPERIMENTS.md "Redo-log sync modes" table.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "rdf/redo_log.h"

namespace rdfdb::bench {
namespace {

using rdf::LoggedRdfStore;
using rdf::LoggedStoreOptions;
using rdf::SyncMode;

std::string BasePath() { return "/tmp/rdfdb_bench_sync"; }

void RemoveStoreFiles(const std::string& base) {
  auto rm = [](const std::string& p) { std::remove(p.c_str()); };
  rm(base);
  rm(base + ".log");
  rm(LoggedRdfStore::ManifestPath(base));
  for (uint64_t gen = 1; gen <= 4; ++gen) {
    rm(LoggedRdfStore::GenerationFileName(base, gen));
  }
}

SyncMode ModeFor(int64_t arg) {
  switch (arg) {
    case 0:
      return SyncMode::kNone;
    case 1:
      return SyncMode::kBatch;
    default:
      return SyncMode::kEveryRecord;
  }
}

void BM_LoggedInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  LoggedStoreOptions options;
  options.sync_mode = ModeFor(state.range(1));
  size_t inserted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string base = BasePath();
    RemoveStoreFiles(base);
    auto db = LoggedRdfStore::Open(base, base + ".log", options);
    if (!db.ok()) {
      state.SkipWithError(db.status().ToString().c_str());
      return;
    }
    if (!(*db)->CreateRdfModel("bench", "bdata", "triple").ok()) {
      state.SkipWithError("CreateRdfModel failed");
      return;
    }
    state.ResumeTiming();
    for (int64_t i = 0; i < n; ++i) {
      auto triple = (*db)->InsertTriple(
          "bench", "ex:s" + std::to_string(i % 997),
          "ex:p" + std::to_string(i % 13), "ex:o" + std::to_string(i));
      if (!triple.ok()) {
        state.SkipWithError(triple.status().ToString().c_str());
        return;
      }
      ++inserted;
    }
    state.PauseTiming();
    RemoveStoreFiles(BasePath());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(inserted));
}
BENCHMARK(BM_LoggedInsert)
    ->ArgNames({"inserts", "mode"})
    ->Args({5000, 0})   // kNone
    ->Args({5000, 1})   // kBatch (64-record batches)
    ->Args({5000, 2})   // kEveryRecord
    ->Unit(benchmark::kMillisecond);

void BM_RecoveryReplay(benchmark::State& state) {
  const int64_t n = state.range(0);
  const std::string base = BasePath() + "_replay";
  RemoveStoreFiles(base);
  {
    LoggedStoreOptions options;
    options.sync_mode = SyncMode::kNone;  // build the log fast
    auto db = LoggedRdfStore::Open(base, base + ".log", options);
    if (!db.ok()) {
      state.SkipWithError(db.status().ToString().c_str());
      return;
    }
    (void)(*db)->CreateRdfModel("bench", "bdata", "triple");
    for (int64_t i = 0; i < n; ++i) {
      (void)(*db)->InsertTriple("bench", "ex:s" + std::to_string(i % 997),
                                "ex:p" + std::to_string(i % 13),
                                "ex:o" + std::to_string(i));
    }
  }
  for (auto _ : state) {
    auto recovered = LoggedRdfStore::Open(base, base + ".log");
    if (!recovered.ok()) {
      state.SkipWithError(recovered.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(
        (*recovered)->store().links().TotalTripleCount());
  }
  state.SetItemsProcessed(state.iterations() * n);
  RemoveStoreFiles(base);
}
BENCHMARK(BM_RecoveryReplay)
    ->ArgNames({"records"})
    ->Arg(5000)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rdfdb::bench

BENCHMARK_MAIN();
