// Experiment III (§7.1.5, Table 2, Figure 11): reification lookups.
//
//   SDO_RDF.IS_REIFIED('uniprot', P93259, rdfs:seeAlso, SM00101)
//
// vs. Jena2's m.isReified(stmt), with a true-result probe and a
// false-result probe, across the dataset series. The paper's Table 2
// reports <= 0.01 s on both systems, flat in dataset size (659 reified
// statements at 10 k up to 247 002 at 5 M). Reproduced shape: both are
// constant-time point lookups; the streamlined DBUri representation
// answers from a single row, as does Jena2's property-class table.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "rdf/vocab.h"

namespace rdfdb::bench {
namespace {

void RunOracleIsReified(benchmark::State& state, const char* target,
                        bool expected) {
  const OracleSystem& sys = OracleSystem::For(state.range(0));
  for (auto _ : state) {
    auto reified = sys.store->IsReified("uniprot", gen::kProbeSubject,
                                        std::string(rdf::kRdfsSeeAlso),
                                        target);
    if (!reified.ok() || *reified != expected) {
      state.SkipWithError("IS_REIFIED returned the wrong answer");
    }
    benchmark::DoNotOptimize(reified);
  }
  state.counters["reified_stmts"] =
      static_cast<double>(DatasetFor(state.range(0)).reified_count());
  state.counters["result"] = expected ? 1 : 0;
}

void BM_Table2_RdfObjects_IsReified_True(benchmark::State& state) {
  RunOracleIsReified(state, gen::kProbeReifiedTarget, true);
}
BENCHMARK(BM_Table2_RdfObjects_IsReified_True)->Apply(ApplyBenchSizes);

void BM_Table2_RdfObjects_IsReified_False(benchmark::State& state) {
  RunOracleIsReified(state, gen::kProbeUnreifiedTarget, false);
}
BENCHMARK(BM_Table2_RdfObjects_IsReified_False)->Apply(ApplyBenchSizes);

void RunJenaIsReified(benchmark::State& state, const rdf::NTriple& probe,
                      bool expected) {
  const JenaSystem& sys = JenaSystem::For(state.range(0));
  for (auto _ : state) {
    auto reified = sys.store->IsReified("uniprot", probe);
    if (!reified.ok() || *reified != expected) {
      state.SkipWithError("isReified returned the wrong answer");
    }
    benchmark::DoNotOptimize(reified);
  }
  state.counters["result"] = expected ? 1 : 0;
}

void BM_Table2_Jena2_IsReified_True(benchmark::State& state) {
  RunJenaIsReified(state, DatasetFor(state.range(0)).reified_probe, true);
}
BENCHMARK(BM_Table2_Jena2_IsReified_True)->Apply(ApplyBenchSizes);

void BM_Table2_Jena2_IsReified_False(benchmark::State& state) {
  RunJenaIsReified(state, DatasetFor(state.range(0)).unreified_probe,
                   false);
}
BENCHMARK(BM_Table2_Jena2_IsReified_False)->Apply(ApplyBenchSizes);

}  // namespace
}  // namespace rdfdb::bench

BENCHMARK_MAIN();
