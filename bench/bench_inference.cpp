// Figure 8: inference over the Intelligence Community applications with
// SDO_RDF_MATCH — rulebase intel_rb + RDFS over the cia/dhs/fbi models,
// joined to the ic.address table.
//
// Two measured paths:
//   * with a pre-computed rules index (CREATE_RULES_INDEX), and
//   * computing entailment on the fly per query (the ablation for the
//     design decision "a rules index pre-computes triples").

#include <benchmark/benchmark.h>

#include <memory>

#include "gen/ic_dataset.h"
#include "query/match.h"

namespace rdfdb::bench {
namespace {

using gen::IcScenario;
using query::InferenceEngine;
using query::Rule;
using query::SdoRdfMatch;

struct IcSystem {
  std::unique_ptr<rdf::RdfStore> store;
  std::unique_ptr<InferenceEngine> engine;
  IcScenario scenario;
  bool index_built = false;

  static IcSystem& Get() {
    static IcSystem sys = [] {
      IcSystem s;
      s.store = std::make_unique<rdf::RdfStore>();
      auto scenario = gen::BuildIcScenario(s.store.get());
      if (!scenario.ok()) std::abort();
      s.scenario = *scenario;
      s.engine = std::make_unique<InferenceEngine>(s.store.get());
      if (!s.engine->CreateRulebase("intel_rb").ok()) std::abort();
      Rule rule;
      rule.name = "intel_rule";
      rule.antecedent = "(?x gov:terrorAction \"bombing\")";
      rule.consequent = "(gov:files gov:terrorSuspect ?x)";
      rule.aliases = s.scenario.aliases;
      if (!s.engine->InsertRule("intel_rb", rule).ok()) std::abort();
      return s;
    }();
    return sys;
  }
};

const std::vector<std::string> kModels = {"cia", "dhs", "fbi"};
const std::vector<std::string> kRulebases = {"RDFS", "intel_rb"};

void BM_Fig8_CreateRulesIndex(benchmark::State& state) {
  IcSystem& sys = IcSystem::Get();
  size_t inferred = 0;
  int round = 0;
  for (auto _ : state) {
    std::string name = "rix_bench_" + std::to_string(round++);
    auto index = sys.engine->CreateRulesIndex(name, kModels, kRulebases);
    if (!index.ok()) state.SkipWithError("CreateRulesIndex failed");
    inferred = (*index)->inferred_count();
    state.PauseTiming();
    (void)sys.engine->DropRulesIndex(name);
    state.ResumeTiming();
  }
  state.counters["inferred"] = static_cast<double>(inferred);
}
BENCHMARK(BM_Fig8_CreateRulesIndex)->Unit(benchmark::kMicrosecond);

void BM_Fig8_MatchWithRulesIndex(benchmark::State& state) {
  IcSystem& sys = IcSystem::Get();
  if (!sys.index_built) {
    auto index =
        sys.engine->CreateRulesIndex("rdfs_rix_intel", kModels, kRulebases);
    if (!index.ok()) {
      state.SkipWithError("index build failed");
      return;
    }
    sys.index_built = true;
  }
  size_t rows = 0;
  for (auto _ : state) {
    auto result = SdoRdfMatch(sys.store.get(), sys.engine.get(),
                              "(gov:files gov:terrorSuspect ?name)",
                              kModels, kRulebases, sys.scenario.aliases, "");
    if (!result.ok()) state.SkipWithError("match failed");
    rows = result->row_count();
    benchmark::DoNotOptimize(*result);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig8_MatchWithRulesIndex)->Unit(benchmark::kMicrosecond);

void BM_Fig8_MatchOnTheFlyInference(benchmark::State& state) {
  // Same query but forcing per-query entailment: request a rulebase
  // combination no index covers (intel_rb only).
  IcSystem& sys = IcSystem::Get();
  size_t rows = 0;
  for (auto _ : state) {
    auto result = SdoRdfMatch(sys.store.get(), sys.engine.get(),
                              "(gov:files gov:terrorSuspect ?name)",
                              kModels, {"intel_rb"}, sys.scenario.aliases,
                              "");
    if (!result.ok()) state.SkipWithError("match failed");
    rows = result->row_count();
    benchmark::DoNotOptimize(*result);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig8_MatchOnTheFlyInference)->Unit(benchmark::kMicrosecond);

void BM_Fig8_FullQueryWithAddressJoin(benchmark::State& state) {
  // The complete Figure 8 SELECT: match + join to ic.address.
  IcSystem& sys = IcSystem::Get();
  if (!sys.index_built) {
    auto index =
        sys.engine->CreateRulesIndex("rdfs_rix_intel", kModels, kRulebases);
    if (!index.ok()) {
      state.SkipWithError("index build failed");
      return;
    }
    sys.index_built = true;
  }
  const storage::Index* addr_index =
      sys.scenario.address_table->GetIndex("addr_name_idx");
  size_t joined = 0;
  for (auto _ : state) {
    auto result = SdoRdfMatch(sys.store.get(), sys.engine.get(),
                              "(gov:files gov:terrorSuspect ?name)",
                              kModels, kRulebases, sys.scenario.aliases, "");
    if (!result.ok()) state.SkipWithError("match failed");
    joined = 0;
    for (size_t i = 0; i < result->row_count(); ++i) {
      auto rows = addr_index->Find(
          {storage::Value::String(result->Get(i, "name"))});
      for (storage::RowId rid : rows) {
        const storage::Row* row = sys.scenario.address_table->Get(rid);
        benchmark::DoNotOptimize(row);
        ++joined;
      }
    }
  }
  state.counters["watch_list"] = static_cast<double>(joined);
}
BENCHMARK(BM_Fig8_FullQueryWithAddressJoin)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rdfdb::bench

BENCHMARK_MAIN();
