// Shared infrastructure for the benchmark harness.
//
// Each bench binary regenerates one table/figure from the paper's §7.
// Systems under test are loaded once per (system, size) and cached for
// the lifetime of the binary. Dataset sizes follow the paper's series
// (10 k / 100 k / 1 M / 5 M); the two largest are opt-in via
// RDFDB_BENCH_LARGE=1 to keep default runs laptop-friendly.

#ifndef RDFDB_BENCH_BENCH_COMMON_H_
#define RDFDB_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "baseline/jena2_store.h"
#include "common/timer.h"
#include "gen/uniprot_gen.h"
#include "gen/workload.h"
#include "rdf/app_table.h"
#include "rdf/rdf_store.h"

namespace rdfdb::bench {

/// Paper dataset series: 10 k, 100 k always; 1 M with
/// RDFDB_BENCH_LARGE=1; the paper's full 5 M point with
/// RDFDB_BENCH_XLARGE=1 (several GB of RAM).
inline const std::vector<int64_t>& BenchSizes() {
  static const std::vector<int64_t> kSizes = [] {
    std::vector<int64_t> sizes{10000, 100000};
    if (std::getenv("RDFDB_BENCH_LARGE") != nullptr) {
      sizes.push_back(1000000);
    }
    if (std::getenv("RDFDB_BENCH_XLARGE") != nullptr) {
      sizes.push_back(5000000);
    }
    return sizes;
  }();
  return kSizes;
}

/// ->Apply(ApplyBenchSizes) registers the size series as Arg()s.
inline void ApplyBenchSizes(benchmark::internal::Benchmark* bench) {
  for (int64_t size : BenchSizes()) bench->Arg(size);
}

/// Manual-timing helper for ->UseManualTime() benchmarks that must
/// exclude per-iteration setup from the measurement. Standardises on
/// Timer::ElapsedNanos, the unit the obs latency histograms use, so
/// bench numbers and in-store metrics are directly comparable.
class ManualTimer {
 public:
  void Start() { timer_.Restart(); }

  /// End the timed section and report it as this iteration's time.
  void StopAndReport(benchmark::State& state) {
    state.SetIterationTime(static_cast<double>(timer_.ElapsedNanos()) *
                           1e-9);
  }

 private:
  Timer timer_;
};

/// Generated dataset cache (shared across systems for a given size).
inline const gen::UniProtDataset& DatasetFor(int64_t size) {
  static std::map<int64_t, std::unique_ptr<gen::UniProtDataset>> cache;
  auto it = cache.find(size);
  if (it == cache.end()) {
    gen::UniProtOptions options;
    options.target_triples = static_cast<size_t>(size);
    it = cache
             .emplace(size, std::make_unique<gen::UniProtDataset>(
                                gen::GenerateUniProt(options)))
             .first;
  }
  return *it->second;
}

/// The RDF-object-store system under test: central store + application
/// table (with the §7.2 subject function-based index).
struct OracleSystem {
  std::unique_ptr<rdf::RdfStore> store;
  std::unique_ptr<rdf::ApplicationTable> table;
  gen::OracleLoadResult load;

  static OracleSystem& For(int64_t size) {
    static std::map<int64_t, std::unique_ptr<OracleSystem>> cache;
    auto it = cache.find(size);
    if (it == cache.end()) {
      auto sys = std::make_unique<OracleSystem>();
      sys->store = std::make_unique<rdf::RdfStore>();
      auto load = gen::LoadUniProtIntoOracle(
          sys->store.get(), "uniprot", "uniprot_app", DatasetFor(size));
      if (!load.ok()) {
        std::fprintf(stderr, "oracle load failed: %s\n",
                     load.status().ToString().c_str());
        std::abort();
      }
      sys->load = *load;
      auto table = rdf::ApplicationTable::Attach(sys->store.get(), "UP",
                                                 "uniprot_app");
      sys->table =
          std::make_unique<rdf::ApplicationTable>(std::move(table).value());
      it = cache.emplace(size, std::move(sys)).first;
    }
    return *it->second;
  }
};

/// The Jena2-style comparator loaded with the same dataset.
struct JenaSystem {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<baseline::Jena2Store> store;

  static JenaSystem& For(int64_t size) {
    static std::map<int64_t, std::unique_ptr<JenaSystem>> cache;
    auto it = cache.find(size);
    if (it == cache.end()) {
      auto sys = std::make_unique<JenaSystem>();
      sys->db = std::make_unique<storage::Database>("JENADB");
      sys->store = std::make_unique<baseline::Jena2Store>(sys->db.get());
      Status st = gen::LoadUniProtIntoJena2(sys->store.get(), "uniprot",
                                            DatasetFor(size));
      if (!st.ok()) {
        std::fprintf(stderr, "jena2 load failed: %s\n",
                     st.ToString().c_str());
        std::abort();
      }
      it = cache.emplace(size, std::move(sys)).first;
    }
    return *it->second;
  }
};

/// The Jena1-style normalized comparator (3-way join on find, §3.1).
struct Jena1System {
  std::unique_ptr<storage::Database> db;
  std::unique_ptr<baseline::Jena1Store> store;

  static Jena1System& For(int64_t size) {
    static std::map<int64_t, std::unique_ptr<Jena1System>> cache;
    auto it = cache.find(size);
    if (it == cache.end()) {
      auto sys = std::make_unique<Jena1System>();
      sys->db = std::make_unique<storage::Database>("J1DB");
      sys->store =
          std::make_unique<baseline::Jena1Store>(sys->db.get(), "J1");
      Status st = gen::LoadUniProtIntoJena1(sys->store.get(),
                                            DatasetFor(size));
      if (!st.ok()) {
        std::fprintf(stderr, "jena1 load failed: %s\n",
                     st.ToString().c_str());
        std::abort();
      }
      it = cache.emplace(size, std::move(sys)).first;
    }
    return *it->second;
  }
};

}  // namespace rdfdb::bench

#endif  // RDFDB_BENCH_BENCH_COMMON_H_
