// Experiment I (§7.1.3, Figure 9): flat storage tables vs. member
// functions.
//
// Query A (member functions):
//   SELECT u.triple.GET_TRIPLE() FROM uniprot u
//   WHERE u.triple.GET_SUBJECT() = :subject
//
// Query B (direct storage tables): the 3-way self-join of rdf_value$
// (subject, predicate, object texts) with rdf_link$.
//
// The paper: "In all the tested cases, the member functions performed
// either similarly or slightly better as the number of rows returned
// increased." Reproduced shape: comparable times, with the member
// functions ahead on large result sets because the object path resolves
// exactly the referenced values instead of joining three times.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace rdfdb::bench {
namespace {

void BM_Fig9_MemberFunctions(benchmark::State& state) {
  const OracleSystem& sys = OracleSystem::For(state.range(0));
  size_t rows = 0;
  for (auto _ : state) {
    std::vector<rdf::SdoRdfTripleS> hits =
        sys.table->FindBySubject(gen::kProbeSubject);
    for (const rdf::SdoRdfTripleS& triple : hits) {
      auto full = triple.GetTriple();
      benchmark::DoNotOptimize(full);
    }
    rows = hits.size();
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig9_MemberFunctions)->Apply(ApplyBenchSizes);

void BM_Fig9_DirectStorageTables(benchmark::State& state) {
  // Figure 9's second query: resolve the subject text through
  // rdf_value$ (join 1), probe rdf_link$ by START_NODE_ID (join 2), then
  // resolve the predicate and object texts through rdf_value$ again
  // (join 3), fetching GETURL()-style display strings.
  const OracleSystem& sys = OracleSystem::For(state.range(0));
  const rdf::RdfStore& store = *sys.store;
  rdf::ModelId model = sys.load.model.model_id;
  size_t rows = 0;
  for (auto _ : state) {
    auto subject_id =
        store.values().Lookup(rdf::Term::Uri(gen::kProbeSubject));
    if (!subject_id.has_value()) {
      state.SkipWithError("probe subject missing");
      break;
    }
    size_t n = 0;
    for (const rdf::LinkRow& row :
         store.links().Match(model, *subject_id, std::nullopt,
                             std::nullopt)) {
      auto s = store.values().GetText(row.start_node_id);
      auto p = store.values().GetText(row.p_value_id);
      auto o = store.values().GetText(row.end_node_id);
      benchmark::DoNotOptimize(s);
      benchmark::DoNotOptimize(p);
      benchmark::DoNotOptimize(o);
      ++n;
    }
    rows = n;
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig9_DirectStorageTables)->Apply(ApplyBenchSizes);

// Wide-result variant: query on a shared predicate value so the row
// count grows with dataset size — this is where the paper saw the
// member functions pull ahead "as the number of rows returned
// increased".
void BM_Fig9_MemberFunctions_WideResult(benchmark::State& state) {
  OracleSystem& sys = OracleSystem::For(state.range(0));
  // Index created lazily per system; AlreadyExists on re-entry is fine.
  (void)sys.table->CreatePropertyIndex();
  size_t rows = 0;
  for (auto _ : state) {
    std::vector<rdf::SdoRdfTripleS> hits =
        sys.table->FindByProperty(gen::kUpMnemonic);
    for (const rdf::SdoRdfTripleS& triple : hits) {
      auto full = triple.GetTriple();
      benchmark::DoNotOptimize(full);
    }
    rows = hits.size();
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig9_MemberFunctions_WideResult)->Apply(ApplyBenchSizes);

void BM_Fig9_DirectStorageTables_WideResult(benchmark::State& state) {
  const OracleSystem& sys = OracleSystem::For(state.range(0));
  const rdf::RdfStore& store = *sys.store;
  rdf::ModelId model = sys.load.model.model_id;
  size_t rows = 0;
  for (auto _ : state) {
    auto pred_id = store.values().Lookup(rdf::Term::Uri(gen::kUpMnemonic));
    if (!pred_id.has_value()) {
      state.SkipWithError("predicate missing");
      break;
    }
    size_t n = 0;
    for (const rdf::LinkRow& row :
         store.links().Match(model, std::nullopt, *pred_id,
                             std::nullopt)) {
      auto s = store.values().GetText(row.start_node_id);
      auto p = store.values().GetText(row.p_value_id);
      auto o = store.values().GetText(row.end_node_id);
      benchmark::DoNotOptimize(s);
      benchmark::DoNotOptimize(p);
      benchmark::DoNotOptimize(o);
      ++n;
    }
    rows = n;
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig9_DirectStorageTables_WideResult)->Apply(ApplyBenchSizes);

}  // namespace
}  // namespace rdfdb::bench

BENCHMARK_MAIN();
