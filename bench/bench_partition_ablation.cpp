// §4 ablation: "The rdf_link$ table is partitioned by graphs for
// improved query performance."
//
// We place many models in the central schema and run a whole-model scan
// on one of them, with MODEL_ID partitioning (partition pruning, the
// shipped design) vs. an unpartitioned copy of rdf_link$ (full scan +
// filter).

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_common.h"

namespace rdfdb::bench {
namespace {

constexpr int kModels = 8;

/// Copies of rdf_link$'s rows in a partitioned and an unpartitioned
/// table, 8 models of equal size.
struct PartitionFixture {
  std::unique_ptr<rdf::RdfStore> store;
  std::unique_ptr<storage::Database> plain_db;
  storage::Table* unpartitioned = nullptr;
  std::vector<rdf::ModelId> model_ids;

  static PartitionFixture& For(int64_t per_model_triples) {
    static std::map<int64_t, std::unique_ptr<PartitionFixture>> cache;
    auto it = cache.find(per_model_triples);
    if (it != cache.end()) return *it->second;

    auto fx = std::make_unique<PartitionFixture>();
    fx->store = std::make_unique<rdf::RdfStore>();
    gen::UniProtOptions options;
    options.target_triples = static_cast<size_t>(per_model_triples);
    for (int m = 0; m < kModels; ++m) {
      options.seed = 100 + m;
      gen::UniProtDataset dataset = gen::GenerateUniProt(options);
      std::string name = "model" + std::to_string(m);
      auto model = fx->store->CreateRdfModel(name, name + "_app", "triple");
      if (!model.ok()) std::abort();
      fx->model_ids.push_back(model->model_id);
      for (const rdf::NTriple& t : dataset.triples) {
        if (!fx->store
                 ->InsertParsedTriple(model->model_id, t.subject,
                                      t.predicate, t.object)
                 .ok()) {
          std::abort();
        }
      }
    }

    // Unpartitioned copy of rdf_link$ (same schema, no partition column,
    // no indexes — the access path under ablation is the partition).
    fx->plain_db = std::make_unique<storage::Database>("PLAIN");
    const storage::Table* src_ptr =
        fx->store->database().GetTable("MDSYS", "RDF_LINK$");
    if (src_ptr == nullptr) std::abort();
    const storage::Table& src = *src_ptr;
    auto copy = fx->plain_db->CreateTable(
        "PLAIN", "RDF_LINK_FLAT",
        storage::Schema(src.schema().columns()));
    if (!copy.ok()) std::abort();
    fx->unpartitioned = *copy;
    src.Scan([&](storage::RowId, const storage::Row& row) {
      return fx->unpartitioned->Insert(row).ok();
    });

    auto [pos, inserted] =
        cache.emplace(per_model_triples, std::move(fx));
    (void)inserted;
    return *pos->second;
  }
};

void BM_Sec4_ModelScan_Partitioned(benchmark::State& state) {
  PartitionFixture& fx = PartitionFixture::For(state.range(0));
  rdf::ModelId target = fx.model_ids[kModels / 2];
  constexpr size_t kModelIdColumn = 9;
  const storage::Table& table = fx.store->links().table();
  size_t rows = 0;
  for (auto _ : state) {
    size_t n = 0;
    // Same per-row work as the unpartitioned variant (read MODEL_ID,
    // count); the only difference is partition pruning.
    table.ScanPartition(storage::Value::Int64(target),
                        [&](storage::RowId, const storage::Row& row) {
                          if (row[kModelIdColumn].as_int64() == target) {
                            ++n;
                          }
                          return true;
                        });
    rows = n;
    benchmark::DoNotOptimize(n);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Sec4_ModelScan_Partitioned)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_Sec4_ModelScan_Unpartitioned(benchmark::State& state) {
  PartitionFixture& fx = PartitionFixture::For(state.range(0));
  rdf::ModelId target = fx.model_ids[kModels / 2];
  constexpr size_t kModelIdColumn = 9;
  size_t rows = 0;
  for (auto _ : state) {
    size_t n = 0;
    fx.unpartitioned->Scan([&](storage::RowId, const storage::Row& row) {
      if (row[kModelIdColumn].as_int64() == target) ++n;
      return true;
    });
    rows = n;
    benchmark::DoNotOptimize(n);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Sec4_ModelScan_Unpartitioned)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rdfdb::bench

BENCHMARK_MAIN();
