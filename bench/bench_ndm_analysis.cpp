// §1/§4 claim: "The RDF object type is built on top of NDM ... allowing
// RDF data to be managed as objects and analyzed as networks. All the
// NDM functionality is exposed to RDF data."
//
// This bench exercises the NDM analysis suite directly on the logical
// network that rdf_link$ defines over a loaded UniProt model: shortest
// paths, within-cost neighbourhoods, k-nearest-neighbours, reachability
// and connected components.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "ndm/analysis.h"

namespace rdfdb::bench {
namespace {

rdf::ValueId ProbeNode(const OracleSystem& sys) {
  auto id = sys.store->values().Lookup(rdf::Term::Uri(gen::kProbeSubject));
  return id.value_or(0);
}

void BM_NDM_ShortestPath(benchmark::State& state) {
  OracleSystem& sys = OracleSystem::For(state.range(0));
  rdf::ValueId source = ProbeNode(sys);
  auto target = sys.store->values().Lookup(
      rdf::Term::Uri(gen::kProbeReifiedTarget));
  if (!target.has_value()) {
    state.SkipWithError("probe target missing");
    return;
  }
  for (auto _ : state) {
    ndm::PathResult path =
        ndm::ShortestPath(sys.store->network(), source, *target);
    if (!path.found) state.SkipWithError("path not found");
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_NDM_ShortestPath)->Arg(10000)->Arg(100000);

void BM_NDM_ShortestPath_TwoHopsUndirected(benchmark::State& state) {
  // Probe protein -> shared cross-reference <- another protein: a path
  // that only exists when links are traversed in both directions.
  OracleSystem& sys = OracleSystem::For(state.range(0));
  rdf::ValueId source = ProbeNode(sys);
  auto target = sys.store->values().Lookup(
      rdf::Term::Uri("urn:lsid:uniprot.org:uniprot:P00001"));
  if (!target.has_value()) {
    state.SkipWithError("second protein missing");
    return;
  }
  size_t hops = 0;
  for (auto _ : state) {
    ndm::PathResult path = ndm::ShortestPathByHops(
        sys.store->network(), source, *target, ndm::Direction::kBoth);
    hops = path.found ? path.links.size() : 0;
    benchmark::DoNotOptimize(path);
  }
  state.counters["hops"] = static_cast<double>(hops);
}
BENCHMARK(BM_NDM_ShortestPath_TwoHopsUndirected)->Arg(10000)->Arg(100000);

void BM_NDM_WithinCost(benchmark::State& state) {
  OracleSystem& sys = OracleSystem::For(state.range(0));
  rdf::ValueId source = ProbeNode(sys);
  size_t reached = 0;
  for (auto _ : state) {
    auto costs = ndm::WithinCost(sys.store->network(), source,
                                 /*max_cost=*/2.0, ndm::Direction::kBoth);
    reached = costs.size();
    benchmark::DoNotOptimize(costs);
  }
  state.counters["reached"] = static_cast<double>(reached);
}
BENCHMARK(BM_NDM_WithinCost)->Arg(10000)->Arg(100000);

void BM_NDM_NearestNeighbors(benchmark::State& state) {
  OracleSystem& sys = OracleSystem::For(state.range(0));
  rdf::ValueId source = ProbeNode(sys);
  for (auto _ : state) {
    auto nn = ndm::NearestNeighbors(sys.store->network(), source, 10,
                                    ndm::Direction::kBoth);
    benchmark::DoNotOptimize(nn);
  }
}
BENCHMARK(BM_NDM_NearestNeighbors)->Arg(10000);

void BM_NDM_Reachability(benchmark::State& state) {
  OracleSystem& sys = OracleSystem::For(state.range(0));
  rdf::ValueId source = ProbeNode(sys);
  auto target = sys.store->values().Lookup(
      rdf::Term::Uri("urn:lsid:uniprot.org:uniprot:P00001"));
  if (!target.has_value()) {
    state.SkipWithError("second protein missing");
    return;
  }
  for (auto _ : state) {
    bool reachable = ndm::Reachable(sys.store->network(), source, *target,
                                    ndm::Direction::kBoth);
    benchmark::DoNotOptimize(reachable);
  }
}
BENCHMARK(BM_NDM_Reachability)->Arg(10000)->Arg(100000);

void BM_NDM_ConnectedComponents(benchmark::State& state) {
  OracleSystem& sys = OracleSystem::For(state.range(0));
  size_t components = 0;
  for (auto _ : state) {
    components = ndm::ConnectedComponentCount(sys.store->network());
    benchmark::DoNotOptimize(components);
  }
  state.counters["components"] = static_cast<double>(components);
  state.counters["nodes"] =
      static_cast<double>(sys.store->network().node_count());
  state.counters["links"] =
      static_cast<double>(sys.store->network().link_count());
}
BENCHMARK(BM_NDM_ConnectedComponents)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rdfdb::bench

BENCHMARK_MAIN();
