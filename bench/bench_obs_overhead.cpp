// Overhead of the always-on observability layer (DESIGN.md §10):
// identical workloads with every facility detached (Off — the default
// shipping configuration) and attached (On — event log draining to a
// discard sink, slow-query log at a realistic 50 ms threshold, span
// timeline). Both variants live in one binary so an interleaved run
// (--benchmark_repetitions=N --benchmark_enable_random_interleaving)
// sees the same thermal/scheduling drift; the budget is < 3 % (the Off
// hooks are single pointer branches, so Off-vs-parent is not even
// measurable — On-vs-Off is the honest comparison).
//
// Workloads: the pipelined bulk load (event-log chunk events + worker
// spans on the hot path) and the Chain3 join (query span, slow-query
// gating, per-chunk exec spans in the parallel variant).
//
// Flight-recorder A/B (the PR that added the history ring): the same
// Chain3 join with no recorder, the default 1 s sampler, and an
// aggressive 100 ms sampler — each tick snapshots the registry,
// reduces it into the ring, and re-serializes the ring into the mmap'd
// crash black box, so the measured delta is the full always-on cost.
// The active-op guards inside SdoRdfMatch are unconditional and fire
// in every mode, so they cancel out of the comparison.
//
// Besides the google-benchmark registrations, a custom main (modeled
// on bench_concurrent_read) runs the recorder A/B as a self-contained
// harness: `--smoke [--json]` interleaves short reps of the three
// modes, prints the BENCH_obs_overhead.json document, and exits
// nonzero if the 1 s-sampling overhead exceeds the 3 % budget — the CI
// gate.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "obs/slow_query_log.h"
#include "obs/span_timeline.h"
#include "query/match.h"
#include "rdf/bulk_load.h"

namespace rdfdb::bench {
namespace {

/// Shared attached-mode facilities (the event log's drainer thread and
/// sink live for the whole binary, as they would in a server).
struct ObsKit {
  std::ostringstream discard;
  std::unique_ptr<obs::EventLog> events;
  obs::SlowQueryLog slow_queries{/*threshold_ns=*/50'000'000};
  obs::Timeline timeline;

  static ObsKit& Get() {
    static ObsKit kit;
    if (kit.events == nullptr) {
      obs::EventLog::Options options;
      options.sink = &kit.discard;
      auto log = obs::EventLog::Open(std::move(options));
      if (!log.ok()) std::abort();
      kit.events = std::move(*log);
    }
    return kit;
  }
};

void Attach(rdf::RdfStore* store) {
  ObsKit& kit = ObsKit::Get();
  kit.timeline.Clear();
  kit.discard.str("");
  store->set_event_log(kit.events.get());
  store->set_slow_query_log(&kit.slow_queries);
  store->set_timeline(&kit.timeline);
}

// ---------------------------------------------------------------------------
// Bulk load: fresh store per iteration, obs attached or not.

void RunLoadBench(benchmark::State& state, bool attached) {
  const gen::UniProtDataset& data = DatasetFor(state.range(0));
  rdf::BulkLoadOptions options;
  options.threads = 2;
  for (auto _ : state) {
    state.PauseTiming();
    auto store = std::make_unique<rdf::RdfStore>();
    if (!store->CreateRdfModel("uniprot", "uniprot_app", "triple").ok()) {
      std::abort();
    }
    if (attached) Attach(store.get());
    state.ResumeTiming();
    auto stats = rdf::BulkLoad(store.get(), "uniprot", data.triples,
                               nullptr, options);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(stats->new_links);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.triple_count()));
  state.counters["triples_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * data.triple_count()),
      benchmark::Counter::kIsRate);
}

void BM_BulkLoad_ObsOff(benchmark::State& state) {
  RunLoadBench(state, /*attached=*/false);
}
BENCHMARK(BM_BulkLoad_ObsOff)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

void BM_BulkLoad_ObsOn(benchmark::State& state) {
  RunLoadBench(state, /*attached=*/true);
}
BENCHMARK(BM_BulkLoad_ObsOn)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Chain3 join over the social graph of bench_query_plan, through the
// full SDO_RDF_MATCH path (where the query span, slow-query gating and
// metrics hooks live).

struct JoinSystem {
  std::unique_ptr<rdf::RdfStore> store;

  static JoinSystem& For(int64_t triples) {
    static std::map<int64_t, std::unique_ptr<JoinSystem>> cache;
    auto it = cache.find(triples);
    if (it == cache.end()) {
      auto sys = std::make_unique<JoinSystem>();
      sys->store = std::make_unique<rdf::RdfStore>();
      if (!sys->store->CreateRdfModel("social", "social_app", "triple")
               .ok()) {
        std::abort();
      }
      const int64_t n = triples / 5;
      for (int64_t i = 0; i < n; ++i) {
        const std::string e = "urn:join:e" + std::to_string(i);
        auto insert = [&](const char* p, const std::string& o) {
          if (!sys->store->InsertTriple("social", e, p, o).ok()) {
            std::abort();
          }
        };
        insert("urn:join:type",
               "urn:join:Person_" + std::to_string(i % 100));
        insert("urn:join:name", "\"name_" + std::to_string(i) + "\"");
        insert("urn:join:city", "\"city_" + std::to_string(i % 50) + "\"");
        insert("urn:join:email",
               "\"e" + std::to_string(i) + "@example.org\"");
        insert("urn:join:knows",
               "urn:join:e" + std::to_string((7 * i + 13) % n));
      }
      it = cache.emplace(triples, std::move(sys)).first;
    }
    return *it->second;
  }
};

const char* kChain3 =
    "(?a <urn:join:knows> ?b) (?b <urn:join:knows> ?c) "
    "(?c <urn:join:city> ?d)";

void RunChain3Bench(benchmark::State& state, bool attached,
                    unsigned threads) {
  JoinSystem& sys = JoinSystem::For(state.range(0));
  if (attached) {
    Attach(sys.store.get());
  } else {
    sys.store->set_event_log(nullptr);
    sys.store->set_slow_query_log(nullptr);
    sys.store->set_timeline(nullptr);
  }
  query::MatchOptions options;
  options.threads = threads;
  size_t rows = 0;
  for (auto _ : state) {
    // Keep the attached-mode span buffer in steady state (a server
    // would export and clear; an unbounded buffer would eventually hit
    // capacity and stop paying the record cost).
    if (attached) ObsKit::Get().timeline.Clear();
    auto result = query::SdoRdfMatch(sys.store.get(), nullptr, kChain3,
                                     {"social"}, {}, {}, "", options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    rows = result->row_count();
    benchmark::DoNotOptimize(rows);
  }
  sys.store->set_event_log(nullptr);
  sys.store->set_slow_query_log(nullptr);
  sys.store->set_timeline(nullptr);
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_Chain3_ObsOff(benchmark::State& state) {
  RunChain3Bench(state, /*attached=*/false, /*threads=*/1);
}
BENCHMARK(BM_Chain3_ObsOff)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

void BM_Chain3_ObsOn(benchmark::State& state) {
  RunChain3Bench(state, /*attached=*/true, /*threads=*/1);
}
BENCHMARK(BM_Chain3_ObsOn)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

void BM_Chain3Par2_ObsOff(benchmark::State& state) {
  RunChain3Bench(state, /*attached=*/false, /*threads=*/2);
}
BENCHMARK(BM_Chain3Par2_ObsOff)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

void BM_Chain3Par2_ObsOn(benchmark::State& state) {
  RunChain3Bench(state, /*attached=*/true, /*threads=*/2);
}
BENCHMARK(BM_Chain3Par2_ObsOn)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Sampling-profiler overhead on the same Chain3 join (other facilities
// detached, so the delta isolates SIGPROF delivery + ring writes):
// profiler off, the 19 Hz always-on rate, and a 100 Hz capture window
// (the /profilez default). The signal interrupts the measured threads
// themselves, so the whole cost — handler plus preemption — lands
// inside the timed region.

void RunChain3ProfiledBench(benchmark::State& state, int hz) {
  JoinSystem& sys = JoinSystem::For(state.range(0));
  query::MatchOptions options;
  if (hz > 0) {
    obs::ResetProfile();
    const bool started = hz == obs::kAlwaysOnHz ? obs::StartAlwaysOn()
                                                : obs::StartProfiler(hz);
    if (!started) {
      state.SkipWithError("profiler already running");
      return;
    }
  }
  size_t rows = 0;
  for (auto _ : state) {
    auto result = query::SdoRdfMatch(sys.store.get(), nullptr, kChain3,
                                     {"social"}, {}, {}, "", options);
    if (!result.ok()) {
      if (hz > 0) obs::StopProfiler();
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    rows = result->row_count();
    benchmark::DoNotOptimize(rows);
  }
  if (hz > 0) {
    obs::StopProfiler();
    state.counters["samples"] =
        static_cast<double>(obs::ProfilerSampleCount());
    obs::ResetProfile();
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_Chain3_ProfilerOff(benchmark::State& state) {
  RunChain3ProfiledBench(state, /*hz=*/0);
}
BENCHMARK(BM_Chain3_ProfilerOff)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

void BM_Chain3_ProfilerAlwaysOn19Hz(benchmark::State& state) {
  RunChain3ProfiledBench(state, obs::kAlwaysOnHz);
}
BENCHMARK(BM_Chain3_ProfilerAlwaysOn19Hz)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

void BM_Chain3_Profiler100Hz(benchmark::State& state) {
  RunChain3ProfiledBench(state, /*hz=*/100);
}
BENCHMARK(BM_Chain3_Profiler100Hz)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Flight-recorder overhead on the same Chain3 join (other facilities
// detached): no recorder, the default 1 s sampler, and 100 ms. The
// sampler runs on its own thread, so the cost visible to the workload
// is registry snapshot contention (relaxed counter loads) plus the
// black-box mirror's msync — both off the query thread, which is why
// the budget holds even at 100 ms.

constexpr const char* kBenchBlackBoxPath = "/tmp/rdfdb_bench_obs_bb.bin";

std::unique_ptr<obs::FlightRecorder> StartBenchRecorder(
    rdf::RdfStore* store, int64_t interval_ms) {
  obs::FlightRecorder::Options options;
  options.registry = &store->metrics_registry();
  options.sample_interval_ms = interval_ms;
  options.black_box_path = kBenchBlackBoxPath;
  auto recorder = obs::FlightRecorder::Start(std::move(options));
  if (!recorder.ok()) return nullptr;
  return std::move(*recorder);
}

void RunChain3RecorderBench(benchmark::State& state, int64_t interval_ms) {
  JoinSystem& sys = JoinSystem::For(state.range(0));
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (interval_ms > 0) {
    recorder = StartBenchRecorder(sys.store.get(), interval_ms);
    if (recorder == nullptr) {
      state.SkipWithError("FlightRecorder::Start failed");
      return;
    }
  }
  query::MatchOptions options;
  size_t rows = 0;
  for (auto _ : state) {
    auto result = query::SdoRdfMatch(sys.store.get(), nullptr, kChain3,
                                     {"social"}, {}, {}, "", options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    rows = result->row_count();
    benchmark::DoNotOptimize(rows);
  }
  if (recorder != nullptr) {
    state.counters["samples"] = static_cast<double>(recorder->samples());
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_Chain3_RecorderOff(benchmark::State& state) {
  RunChain3RecorderBench(state, /*interval_ms=*/0);
}
BENCHMARK(BM_Chain3_RecorderOff)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

void BM_Chain3_Recorder1s(benchmark::State& state) {
  RunChain3RecorderBench(state, /*interval_ms=*/1000);
}
BENCHMARK(BM_Chain3_Recorder1s)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

void BM_Chain3_Recorder100ms(benchmark::State& state) {
  RunChain3RecorderBench(state, /*interval_ms=*/100);
}
BENCHMARK(BM_Chain3_Recorder100ms)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Self-contained recorder A/B harness (the CI gate). CI boxes here are
// often single-core and shared, and drift by ±5 % on a seconds
// timescale — more than the 3 % budget being verified — so the harness
// is built for noise robustness rather than raw precision:
//
//   * short slices (~0.5 s) grouped into rounds that measure all three
//     modes back to back in rotated order, so each round yields a
//     paired on/off ratio in which low-frequency drift cancels;
//   * two estimators: the median of per-round paired overheads, and
//     the overhead of best-slice throughputs (max q/s over rounds —
//     the classic min-time estimator, robust to one-sided scheduling
//     noise because a systematic cost also suppresses the best slice);
//   * the gate takes the smaller of the two. A real regression well
//     past the budget (say sync work landing on the query path) moves
//     every slice of every round and trips both; a noisy run trips
//     neither.

struct RecorderHarnessConfig {
  int64_t triples = 100'000;
  double seconds_per_slice = 1.5;
  int rounds = 6;
  double budget_pct = 3.0;
  bool json = false;
};

struct RecorderModeStats {
  std::vector<double> qps;  // one entry per round
  uint64_t queries = 0;
  uint64_t samples = 0;
};

double Median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  if (n == 0) return 0;
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2;
}

double Max(const std::vector<double>& values) {
  return values.empty() ? 0
                        : *std::max_element(values.begin(), values.end());
}

/// Per-round paired overheads of `on` vs `off` (percent, positive =
/// slower), then the median.
double MedianPairedOverheadPct(const std::vector<double>& off,
                               const std::vector<double>& on) {
  std::vector<double> per_round;
  for (size_t i = 0; i < off.size() && i < on.size(); ++i) {
    if (off[i] > 0) per_round.push_back((1.0 - on[i] / off[i]) * 100.0);
  }
  return Median(std::move(per_round));
}

double BestSliceOverheadPct(const std::vector<double>& off,
                            const std::vector<double>& on) {
  const double off_best = Max(off);
  return off_best > 0 ? (1.0 - Max(on) / off_best) * 100.0 : 0;
}

/// Runs Chain3 queries back-to-back for `seconds` of wall clock and
/// returns queries/sec (aborts on query failure: the harness is a
/// gate, a broken query must fail loudly).
double MeasureChain3Qps(rdf::RdfStore* store, double seconds,
                        uint64_t* queries_out) {
  query::MatchOptions options;
  const auto start = std::chrono::steady_clock::now();
  uint64_t queries = 0;
  double elapsed = 0;
  do {
    auto result = query::SdoRdfMatch(store, nullptr, kChain3, {"social"},
                                     {}, {}, "", options);
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->row_count());
    ++queries;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  } while (elapsed < seconds);
  *queries_out = queries;
  return static_cast<double>(queries) / elapsed;
}

int RunRecorderHarness(const RecorderHarnessConfig& config) {
  std::fprintf(stderr, "building social graph (%lld triples)...\n",
               static_cast<long long>(config.triples));
  JoinSystem& sys = JoinSystem::For(config.triples);
  uint64_t warmup_queries = 0;
  MeasureChain3Qps(sys.store.get(), 0.3, &warmup_queries);

  struct Mode {
    const char* name;
    int64_t interval_ms;
  };
  constexpr Mode kModes[] = {
      {"recorder_off", 0}, {"recorder_1s", 1000}, {"recorder_100ms", 100}};
  constexpr int kModeCount = 3;
  RecorderModeStats stats[kModeCount];

  for (int round = 0; round < config.rounds; ++round) {
    for (int slot = 0; slot < kModeCount; ++slot) {
      const int m = (slot + round) % kModeCount;
      std::unique_ptr<obs::FlightRecorder> recorder;
      if (kModes[m].interval_ms > 0) {
        recorder = StartBenchRecorder(sys.store.get(), kModes[m].interval_ms);
        if (recorder == nullptr) {
          std::fprintf(stderr, "FlightRecorder::Start failed\n");
          return 2;
        }
      }
      uint64_t queries = 0;
      const double qps = MeasureChain3Qps(sys.store.get(),
                                          config.seconds_per_slice, &queries);
      stats[m].qps.push_back(qps);
      stats[m].queries += queries;
      if (recorder != nullptr) stats[m].samples += recorder->samples();
      std::fprintf(stderr, "round %d %-15s %9.1f queries/s (%llu queries)\n",
                   round, kModes[m].name, qps,
                   static_cast<unsigned long long>(queries));
    }
  }
  std::remove(kBenchBlackBoxPath);

  const double paired_1s =
      MedianPairedOverheadPct(stats[0].qps, stats[1].qps);
  const double paired_100ms =
      MedianPairedOverheadPct(stats[0].qps, stats[2].qps);
  const double best_1s = BestSliceOverheadPct(stats[0].qps, stats[1].qps);
  const double best_100ms = BestSliceOverheadPct(stats[0].qps, stats[2].qps);
  // Gate on the robust (smaller) estimate of the default configuration.
  const double overhead_1s_pct = std::min(paired_1s, best_1s);
  const double overhead_100ms_pct = std::min(paired_100ms, best_100ms);
  const bool pass = overhead_1s_pct <= config.budget_pct;

  if (config.json) {
    std::printf("{\n");
    std::printf("  \"benchmark\": \"obs_overhead_recorder\",\n");
    std::printf("  \"triples\": %lld,\n",
                static_cast<long long>(config.triples));
    std::printf("  \"seconds_per_slice\": %.2f,\n", config.seconds_per_slice);
    std::printf("  \"rounds\": %d,\n", config.rounds);
    std::printf("  \"budget_pct\": %.2f,\n", config.budget_pct);
    std::printf("  \"results\": [\n");
    for (int m = 0; m < kModeCount; ++m) {
      std::printf(
          "    {\"mode\": \"%s\", \"median_qps\": %.1f, \"best_qps\": %.1f, "
          "\"queries\": %llu, \"recorder_samples\": %llu}%s\n",
          kModes[m].name, Median(stats[m].qps), Max(stats[m].qps),
          static_cast<unsigned long long>(stats[m].queries),
          static_cast<unsigned long long>(stats[m].samples),
          m + 1 < kModeCount ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"overhead_1s_paired_pct\": %.3f,\n", paired_1s);
    std::printf("  \"overhead_1s_best_pct\": %.3f,\n", best_1s);
    std::printf("  \"overhead_1s_pct\": %.3f,\n", overhead_1s_pct);
    std::printf("  \"overhead_100ms_paired_pct\": %.3f,\n", paired_100ms);
    std::printf("  \"overhead_100ms_best_pct\": %.3f,\n", best_100ms);
    std::printf("  \"overhead_100ms_pct\": %.3f,\n", overhead_100ms_pct);
    std::printf("  \"pass\": %s\n", pass ? "true" : "false");
    std::printf("}\n");
  } else {
    std::printf("%-15s %12s %10s %10s %8s\n", "mode", "median q/s",
                "best q/s", "queries", "samples");
    for (int m = 0; m < kModeCount; ++m) {
      std::printf("%-15s %12.1f %10.1f %10llu %8llu\n", kModes[m].name,
                  Median(stats[m].qps), Max(stats[m].qps),
                  static_cast<unsigned long long>(stats[m].queries),
                  static_cast<unsigned long long>(stats[m].samples));
    }
    std::printf("overhead (paired/best): 1s %+.3f%%/%+.3f%%, "
                "100ms %+.3f%%/%+.3f%% (budget %.1f%%)\n",
                paired_1s, best_1s, paired_100ms, best_100ms,
                config.budget_pct);
    std::printf("%s\n",
                pass ? "PASS" : "FAIL: 1s-sampling overhead over budget");
  }
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace rdfdb::bench

// Custom main: with no arguments (or only --benchmark_* flags) this is
// a normal google-benchmark binary; any harness flag switches to the
// recorder A/B gate described above.
int main(int argc, char** argv) {
  using rdfdb::bench::RecorderHarnessConfig;
  bool harness = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) != 0) {
      harness = true;
      break;
    }
  }
  if (!harness) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }

  RecorderHarnessConfig config;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> double {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return std::atof(argv[++i]);
    };
    if (std::strcmp(argv[i], "--smoke") == 0) {
      // CI smoke: small graph, ~30 s of measurement. Slices must be
      // longer than the 1 s sampling interval or the 1 s mode never
      // ticks inside its timed window; 1.2 s gives it exactly its
      // real duty cycle (one tick per slice).
      config.triples = 20'000;
      config.seconds_per_slice = 1.2;
      config.rounds = 8;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      config.json = true;
    } else if (std::strcmp(argv[i], "--triples") == 0) {
      config.triples = static_cast<int64_t>(next());
    } else if (std::strcmp(argv[i], "--seconds") == 0) {
      config.seconds_per_slice = next();
    } else if (std::strcmp(argv[i], "--rounds") == 0) {
      config.rounds = static_cast<int>(next());
    } else if (std::strcmp(argv[i], "--budget-pct") == 0) {
      config.budget_pct = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return rdfdb::bench::RunRecorderHarness(config);
}
