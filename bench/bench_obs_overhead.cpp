// Overhead of the always-on observability layer (DESIGN.md §10):
// identical workloads with every facility detached (Off — the default
// shipping configuration) and attached (On — event log draining to a
// discard sink, slow-query log at a realistic 50 ms threshold, span
// timeline). Both variants live in one binary so an interleaved run
// (--benchmark_repetitions=N --benchmark_enable_random_interleaving)
// sees the same thermal/scheduling drift; the budget is < 3 % (the Off
// hooks are single pointer branches, so Off-vs-parent is not even
// measurable — On-vs-Off is the honest comparison).
//
// Workloads: the pipelined bulk load (event-log chunk events + worker
// spans on the hot path) and the Chain3 join (query span, slow-query
// gating, per-chunk exec spans in the parallel variant).

#include <memory>
#include <sstream>
#include <string>

#include "bench/bench_common.h"
#include "obs/event_log.h"
#include "obs/profiler.h"
#include "obs/slow_query_log.h"
#include "obs/span_timeline.h"
#include "query/match.h"
#include "rdf/bulk_load.h"

namespace rdfdb::bench {
namespace {

/// Shared attached-mode facilities (the event log's drainer thread and
/// sink live for the whole binary, as they would in a server).
struct ObsKit {
  std::ostringstream discard;
  std::unique_ptr<obs::EventLog> events;
  obs::SlowQueryLog slow_queries{/*threshold_ns=*/50'000'000};
  obs::Timeline timeline;

  static ObsKit& Get() {
    static ObsKit kit;
    if (kit.events == nullptr) {
      obs::EventLog::Options options;
      options.sink = &kit.discard;
      auto log = obs::EventLog::Open(std::move(options));
      if (!log.ok()) std::abort();
      kit.events = std::move(*log);
    }
    return kit;
  }
};

void Attach(rdf::RdfStore* store) {
  ObsKit& kit = ObsKit::Get();
  kit.timeline.Clear();
  kit.discard.str("");
  store->set_event_log(kit.events.get());
  store->set_slow_query_log(&kit.slow_queries);
  store->set_timeline(&kit.timeline);
}

// ---------------------------------------------------------------------------
// Bulk load: fresh store per iteration, obs attached or not.

void RunLoadBench(benchmark::State& state, bool attached) {
  const gen::UniProtDataset& data = DatasetFor(state.range(0));
  rdf::BulkLoadOptions options;
  options.threads = 2;
  for (auto _ : state) {
    state.PauseTiming();
    auto store = std::make_unique<rdf::RdfStore>();
    if (!store->CreateRdfModel("uniprot", "uniprot_app", "triple").ok()) {
      std::abort();
    }
    if (attached) Attach(store.get());
    state.ResumeTiming();
    auto stats = rdf::BulkLoad(store.get(), "uniprot", data.triples,
                               nullptr, options);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(stats->new_links);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.triple_count()));
  state.counters["triples_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * data.triple_count()),
      benchmark::Counter::kIsRate);
}

void BM_BulkLoad_ObsOff(benchmark::State& state) {
  RunLoadBench(state, /*attached=*/false);
}
BENCHMARK(BM_BulkLoad_ObsOff)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

void BM_BulkLoad_ObsOn(benchmark::State& state) {
  RunLoadBench(state, /*attached=*/true);
}
BENCHMARK(BM_BulkLoad_ObsOn)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Chain3 join over the social graph of bench_query_plan, through the
// full SDO_RDF_MATCH path (where the query span, slow-query gating and
// metrics hooks live).

struct JoinSystem {
  std::unique_ptr<rdf::RdfStore> store;

  static JoinSystem& For(int64_t triples) {
    static std::map<int64_t, std::unique_ptr<JoinSystem>> cache;
    auto it = cache.find(triples);
    if (it == cache.end()) {
      auto sys = std::make_unique<JoinSystem>();
      sys->store = std::make_unique<rdf::RdfStore>();
      if (!sys->store->CreateRdfModel("social", "social_app", "triple")
               .ok()) {
        std::abort();
      }
      const int64_t n = triples / 5;
      for (int64_t i = 0; i < n; ++i) {
        const std::string e = "urn:join:e" + std::to_string(i);
        auto insert = [&](const char* p, const std::string& o) {
          if (!sys->store->InsertTriple("social", e, p, o).ok()) {
            std::abort();
          }
        };
        insert("urn:join:type",
               "urn:join:Person_" + std::to_string(i % 100));
        insert("urn:join:name", "\"name_" + std::to_string(i) + "\"");
        insert("urn:join:city", "\"city_" + std::to_string(i % 50) + "\"");
        insert("urn:join:email",
               "\"e" + std::to_string(i) + "@example.org\"");
        insert("urn:join:knows",
               "urn:join:e" + std::to_string((7 * i + 13) % n));
      }
      it = cache.emplace(triples, std::move(sys)).first;
    }
    return *it->second;
  }
};

const char* kChain3 =
    "(?a <urn:join:knows> ?b) (?b <urn:join:knows> ?c) "
    "(?c <urn:join:city> ?d)";

void RunChain3Bench(benchmark::State& state, bool attached,
                    unsigned threads) {
  JoinSystem& sys = JoinSystem::For(state.range(0));
  if (attached) {
    Attach(sys.store.get());
  } else {
    sys.store->set_event_log(nullptr);
    sys.store->set_slow_query_log(nullptr);
    sys.store->set_timeline(nullptr);
  }
  query::MatchOptions options;
  options.threads = threads;
  size_t rows = 0;
  for (auto _ : state) {
    // Keep the attached-mode span buffer in steady state (a server
    // would export and clear; an unbounded buffer would eventually hit
    // capacity and stop paying the record cost).
    if (attached) ObsKit::Get().timeline.Clear();
    auto result = query::SdoRdfMatch(sys.store.get(), nullptr, kChain3,
                                     {"social"}, {}, {}, "", options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    rows = result->row_count();
    benchmark::DoNotOptimize(rows);
  }
  sys.store->set_event_log(nullptr);
  sys.store->set_slow_query_log(nullptr);
  sys.store->set_timeline(nullptr);
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_Chain3_ObsOff(benchmark::State& state) {
  RunChain3Bench(state, /*attached=*/false, /*threads=*/1);
}
BENCHMARK(BM_Chain3_ObsOff)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

void BM_Chain3_ObsOn(benchmark::State& state) {
  RunChain3Bench(state, /*attached=*/true, /*threads=*/1);
}
BENCHMARK(BM_Chain3_ObsOn)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

void BM_Chain3Par2_ObsOff(benchmark::State& state) {
  RunChain3Bench(state, /*attached=*/false, /*threads=*/2);
}
BENCHMARK(BM_Chain3Par2_ObsOff)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

void BM_Chain3Par2_ObsOn(benchmark::State& state) {
  RunChain3Bench(state, /*attached=*/true, /*threads=*/2);
}
BENCHMARK(BM_Chain3Par2_ObsOn)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Sampling-profiler overhead on the same Chain3 join (other facilities
// detached, so the delta isolates SIGPROF delivery + ring writes):
// profiler off, the 19 Hz always-on rate, and a 100 Hz capture window
// (the /profilez default). The signal interrupts the measured threads
// themselves, so the whole cost — handler plus preemption — lands
// inside the timed region.

void RunChain3ProfiledBench(benchmark::State& state, int hz) {
  JoinSystem& sys = JoinSystem::For(state.range(0));
  query::MatchOptions options;
  if (hz > 0) {
    obs::ResetProfile();
    const bool started = hz == obs::kAlwaysOnHz ? obs::StartAlwaysOn()
                                                : obs::StartProfiler(hz);
    if (!started) {
      state.SkipWithError("profiler already running");
      return;
    }
  }
  size_t rows = 0;
  for (auto _ : state) {
    auto result = query::SdoRdfMatch(sys.store.get(), nullptr, kChain3,
                                     {"social"}, {}, {}, "", options);
    if (!result.ok()) {
      if (hz > 0) obs::StopProfiler();
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    rows = result->row_count();
    benchmark::DoNotOptimize(rows);
  }
  if (hz > 0) {
    obs::StopProfiler();
    state.counters["samples"] =
        static_cast<double>(obs::ProfilerSampleCount());
    obs::ResetProfile();
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_Chain3_ProfilerOff(benchmark::State& state) {
  RunChain3ProfiledBench(state, /*hz=*/0);
}
BENCHMARK(BM_Chain3_ProfilerOff)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

void BM_Chain3_ProfilerAlwaysOn19Hz(benchmark::State& state) {
  RunChain3ProfiledBench(state, obs::kAlwaysOnHz);
}
BENCHMARK(BM_Chain3_ProfilerAlwaysOn19Hz)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

void BM_Chain3_Profiler100Hz(benchmark::State& state) {
  RunChain3ProfiledBench(state, /*hz=*/100);
}
BENCHMARK(BM_Chain3_Profiler100Hz)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rdfdb::bench

BENCHMARK_MAIN();
