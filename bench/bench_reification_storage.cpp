// §7.3: "Reification in Oracle requires only 25% of the storage required
// by naive implementations, which store the entire reification quad."
//
// This bench regenerates that comparison: it reifies the dataset's
// reified statements (a) with the streamlined single-triple DBUri scheme
// and (b) with the classic four-triple quad, reporting row counts,
// bytes, and the storage ratio. It also measures the per-reification
// insert cost of each scheme.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_common.h"
#include "rdf/vocab.h"

namespace rdfdb::bench {
namespace {

/// Build a fresh store pre-loaded with the base triples only.
std::unique_ptr<rdf::RdfStore> FreshStore(const gen::UniProtDataset& dataset,
                                          rdf::ModelId* model_out) {
  auto store = std::make_unique<rdf::RdfStore>();
  auto model = store->CreateRdfModel("uniprot", "app", "triple");
  if (!model.ok()) std::abort();
  for (const rdf::NTriple& t : dataset.triples) {
    auto insert = store->InsertParsedTriple(model->model_id, t.subject,
                                            t.predicate, t.object);
    if (!insert.ok()) std::abort();
  }
  *model_out = model->model_id;
  return store;
}

/// Reify one statement the naive way: the full four-triple quad.
Status ReifyAsQuad(rdf::RdfStore* store, rdf::ModelId model,
                   const rdf::NTriple& base, size_t quad_no) {
  rdf::Term reifier =
      rdf::Term::Uri("urn:reif:q" + std::to_string(quad_no));
  rdf::Term type = rdf::Term::Uri(std::string(rdf::kRdfType));
  rdf::Term statement = rdf::Term::Uri(std::string(rdf::kRdfStatement));
  RDFDB_RETURN_NOT_OK(
      store->InsertParsedTriple(model, reifier, type, statement).status());
  RDFDB_RETURN_NOT_OK(
      store
          ->InsertParsedTriple(model, reifier,
                               rdf::Term::Uri(std::string(rdf::kRdfSubject)),
                               base.subject)
          .status());
  RDFDB_RETURN_NOT_OK(
      store
          ->InsertParsedTriple(
              model, reifier,
              rdf::Term::Uri(std::string(rdf::kRdfPredicate)),
              base.predicate)
          .status());
  RDFDB_RETURN_NOT_OK(
      store
          ->InsertParsedTriple(model, reifier,
                               rdf::Term::Uri(std::string(rdf::kRdfObject)),
                               base.object)
          .status());
  return Status::OK();
}

void BM_Sec73_StreamlinedReification(benchmark::State& state) {
  const gen::UniProtDataset& dataset = DatasetFor(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    rdf::ModelId model = 0;
    auto store = FreshStore(dataset, &model);
    size_t rows_before = store->links().TotalTripleCount();
    size_t bytes_before = store->database().ApproxTotalBytes();
    state.ResumeTiming();

    for (const gen::ReifiedStatement& r : dataset.reified) {
      auto base = store->InsertParsedTriple(model, r.base.subject,
                                            r.base.predicate, r.base.object);
      auto already = store->IsLinkReified(model, base->rdf_t_id());
      if (!already.ok()) state.SkipWithError("IsLinkReified failed");
      if (!*already) {
        auto reif = store->ReifyTriple("uniprot", base->rdf_t_id());
        if (!reif.ok()) state.SkipWithError("ReifyTriple failed");
      }
    }

    state.counters["reif_rows"] = static_cast<double>(
        store->links().TotalTripleCount() - rows_before);
    state.counters["reif_bytes"] = static_cast<double>(
        store->database().ApproxTotalBytes() - bytes_before);
  }
  state.counters["reified_stmts"] =
      static_cast<double>(dataset.reified_count());
}
BENCHMARK(BM_Sec73_StreamlinedReification)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

void BM_Sec73_NaiveQuadReification(benchmark::State& state) {
  const gen::UniProtDataset& dataset = DatasetFor(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    rdf::ModelId model = 0;
    auto store = FreshStore(dataset, &model);
    size_t rows_before = store->links().TotalTripleCount();
    size_t bytes_before = store->database().ApproxTotalBytes();
    state.ResumeTiming();

    size_t quad_no = 0;
    for (const gen::ReifiedStatement& r : dataset.reified) {
      Status st = ReifyAsQuad(store.get(), model, r.base, quad_no++);
      if (!st.ok()) state.SkipWithError("quad insert failed");
    }

    state.counters["reif_rows"] = static_cast<double>(
        store->links().TotalTripleCount() - rows_before);
    state.counters["reif_bytes"] = static_cast<double>(
        store->database().ApproxTotalBytes() - bytes_before);
  }
  state.counters["reified_stmts"] =
      static_cast<double>(dataset.reified_count());
}
BENCHMARK(BM_Sec73_NaiveQuadReification)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Query-time effect of the representation: IS_REIFIED through the
// streamlined single-row form vs. scanning for a complete quad.
void BM_Sec73_IsReified_Streamlined(benchmark::State& state) {
  OracleSystem& sys = OracleSystem::For(state.range(0));
  for (auto _ : state) {
    auto reified = sys.store->IsReified("uniprot", gen::kProbeSubject,
                                        std::string(rdf::kRdfsSeeAlso),
                                        gen::kProbeReifiedTarget);
    benchmark::DoNotOptimize(reified);
  }
}
BENCHMARK(BM_Sec73_IsReified_Streamlined)->Arg(10000)->Arg(100000);

void BM_Sec73_IsReified_QuadScan(benchmark::State& state) {
  // Quad-based IS_REIFIED: find candidate reifiers via the rdf:subject
  // triples, then verify rdf:predicate / rdf:object / rdf:type rows —
  // four index probes and an intersection instead of one point lookup.
  const gen::UniProtDataset& dataset = DatasetFor(state.range(0));
  static std::map<int64_t, std::pair<std::unique_ptr<rdf::RdfStore>,
                                     rdf::ModelId>>
      cache;
  auto it = cache.find(state.range(0));
  if (it == cache.end()) {
    rdf::ModelId model = 0;
    auto store = FreshStore(dataset, &model);
    size_t quad_no = 0;
    for (const gen::ReifiedStatement& r : dataset.reified) {
      if (!ReifyAsQuad(store.get(), model, r.base, quad_no++).ok()) {
        state.SkipWithError("quad load failed");
        return;
      }
    }
    it = cache
             .emplace(state.range(0),
                      std::make_pair(std::move(store), model))
             .first;
  }
  rdf::RdfStore& store = *it->second.first;
  rdf::ModelId model = it->second.second;

  bool answer = false;
  for (auto _ : state) {
    answer = false;
    // A quad-based IS_REIFIED must resolve the probe terms and the
    // reification vocabulary per call, just as the streamlined
    // IS_REIFIED resolves its inputs per call.
    auto subj = store.values().Lookup(rdf::Term::Uri(gen::kProbeSubject));
    auto pred = store.values().Lookup(
        rdf::Term::Uri(std::string(rdf::kRdfsSeeAlso)));
    auto obj =
        store.values().Lookup(rdf::Term::Uri(gen::kProbeReifiedTarget));
    auto rdf_subject = store.values().Lookup(
        rdf::Term::Uri(std::string(rdf::kRdfSubject)));
    auto rdf_predicate = store.values().Lookup(
        rdf::Term::Uri(std::string(rdf::kRdfPredicate)));
    auto rdf_object = store.values().Lookup(
        rdf::Term::Uri(std::string(rdf::kRdfObject)));
    auto rdf_type = store.values().Lookup(
        rdf::Term::Uri(std::string(rdf::kRdfType)));
    auto rdf_statement = store.values().Lookup(
        rdf::Term::Uri(std::string(rdf::kRdfStatement)));
    if (!subj || !pred || !obj || !rdf_subject || !rdf_predicate ||
        !rdf_object || !rdf_type || !rdf_statement) {
      state.SkipWithError("vocabulary missing");
      break;
    }
    // Candidates: reifiers whose rdf:subject is the probe subject.
    for (const rdf::LinkRow& cand :
         store.links().Match(model, std::nullopt, *rdf_subject, *subj)) {
      rdf::ValueId reifier = cand.start_node_id;
      bool has_pred =
          store.links().Find(model, reifier, *rdf_predicate, *pred)
              .has_value();
      bool has_obj =
          store.links().Find(model, reifier, *rdf_object, *obj)
              .has_value();
      bool has_type =
          store.links()
              .Find(model, reifier, *rdf_type, *rdf_statement)
              .has_value();
      if (has_pred && has_obj && has_type) {
        answer = true;
        break;
      }
    }
    benchmark::DoNotOptimize(answer);
  }
  if (!answer) state.SkipWithError("quad IS_REIFIED returned false");
}
BENCHMARK(BM_Sec73_IsReified_QuadScan)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace rdfdb::bench

BENCHMARK_MAIN();
