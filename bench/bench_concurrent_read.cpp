// Reader throughput under write load: the lock-free snapshot read path
// (SnapshotRdfStore) against the shared_mutex facade
// (ConcurrentRdfStore), while a writer bulk-loads a UniProt-shaped
// dataset into a separate model.
//
// For each system the harness measures reader point-read latency
// (IS_TRIPLE on a pre-loaded probe model) twice: once with the writer
// idle (the baseline) and once during the bulk load. The snapshot store
// publishes one version per load chunk, so its readers keep running on
// the previous version while a chunk loads; the facade's readers block
// behind the writer's exclusive lock for every chunk. Numbers land in
// EXPERIMENTS.md (BENCH_concurrent_read.json).
//
// Not a google-benchmark binary: the workload is multi-role (N readers
// + 1 writer with phase-coupled lifetimes), so the harness drives its
// own threads and reports p50/p95/p99 directly.
//
//   bench_concurrent_read [--readers N] [--triples M] [--chunk K]
//                         [--idle-ms MS] [--smoke] [--json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "gen/uniprot_gen.h"
#include "rdf/bulk_load.h"
#include "rdf/concurrent_store.h"
#include "rdf/snapshot_store.h"

namespace rdfdb::bench {
namespace {

struct Config {
  int readers = 8;
  size_t triples = 1000000;  ///< bulk-load size
  size_t chunk = 65536;      ///< statements per publish (snapshot store)
  int idle_ms = 2000;        ///< idle-writer measurement window
  size_t probes = 10000;     ///< pre-loaded probe triples readers hit
  bool json = false;
};

struct PhaseResult {
  std::string system;  ///< "snapshot" | "locked"
  std::string phase;   ///< "idle" | "bulkload"
  size_t ops = 0;
  double wall_s = 0;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  uint64_t p99_ns = 0;

  double ops_per_sec() const { return wall_s > 0 ? ops / wall_s : 0; }
};

uint64_t Percentile(std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(q * (sorted.size() - 1));
  return sorted[idx];
}

/// Run `readers` threads of back-to-back point reads until `stop` goes
/// true, each timing every op. `read` is one probe (index -> ok).
template <typename ReadFn>
PhaseResult RunReaders(const Config& config, const std::string& system,
                       const std::string& phase, std::atomic<bool>& stop,
                       const ReadFn& read) {
  std::vector<std::vector<uint64_t>> latencies(config.readers);
  std::vector<std::thread> threads;
  Timer wall;
  for (int t = 0; t < config.readers; ++t) {
    threads.emplace_back([&, t] {
      std::vector<uint64_t>& mine = latencies[t];
      mine.reserve(1 << 16);
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        Timer op;
        bool ok = read(i++);
        mine.push_back(op.ElapsedNanos());
        if (!ok) {
          std::fprintf(stderr, "%s/%s: probe read failed\n", system.c_str(),
                       phase.c_str());
          std::abort();
        }
        // Outside the timed op: on few-core hosts, readers that never
        // yield starve the writer (and, for the locked store, starve it
        // through the rwlock's reader preference), so neither phase
        // would ever finish. Both systems pay the same yield.
        std::this_thread::yield();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  PhaseResult result;
  result.system = system;
  result.phase = phase;
  result.wall_s = static_cast<double>(wall.ElapsedNanos()) * 1e-9;
  std::vector<uint64_t> merged;
  for (const auto& vec : latencies) {
    merged.insert(merged.end(), vec.begin(), vec.end());
  }
  result.ops = merged.size();
  std::sort(merged.begin(), merged.end());
  result.p50_ns = Percentile(merged, 0.50);
  result.p95_ns = Percentile(merged, 0.95);
  result.p99_ns = Percentile(merged, 0.99);
  return result;
}

/// Probe model: plain URI triples the readers look up by string.
Status LoadProbes(rdf::RdfStore* store, size_t count) {
  RDFDB_RETURN_NOT_OK(
      store->CreateRdfModel("probe", "probe_app", "triple").status());
  std::vector<rdf::NTriple> statements;
  statements.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    rdf::NTriple t;
    t.subject = rdf::Term::Uri("bench:s" + std::to_string(i));
    t.predicate = rdf::Term::Uri("bench:p");
    t.object = rdf::Term::Uri("bench:o" + std::to_string(i % 97));
    statements.push_back(std::move(t));
  }
  return rdf::BulkLoad(store, "probe", statements).status();
}

std::string ProbeSubject(const Config& config, size_t i) {
  return "bench:s" + std::to_string(i % config.probes);
}
std::string ProbeObject(const Config& config, size_t i) {
  return "bench:o" + std::to_string((i % config.probes) % 97);
}

/// Bulk-load chunks (shared by both systems so the write work is
/// identical).
std::vector<std::vector<rdf::NTriple>> MakeChunks(
    const std::vector<rdf::NTriple>& statements, size_t chunk) {
  std::vector<std::vector<rdf::NTriple>> chunks;
  for (size_t begin = 0; begin < statements.size(); begin += chunk) {
    size_t end = std::min(begin + chunk, statements.size());
    chunks.emplace_back(statements.begin() + begin, statements.begin() + end);
  }
  return chunks;
}

struct SystemRun {
  PhaseResult idle;
  PhaseResult loaded;
  double writer_wall_s = 0;
};

SystemRun RunSnapshot(const Config& config,
                      const std::vector<std::vector<rdf::NTriple>>& chunks) {
  rdf::SnapshotRdfStore store;
  Status loaded = store.Apply(
      [&](rdf::RdfStore& live) { return LoadProbes(&live, config.probes); });
  if (!loaded.ok()) {
    std::fprintf(stderr, "probe load failed: %s\n",
                 loaded.ToString().c_str());
    std::abort();
  }
  auto read = [&](size_t i) {
    auto snap = store.Snapshot();
    auto r = snap->IsTriple("probe", ProbeSubject(config, i), "bench:p",
                            ProbeObject(config, i));
    return r.ok() && *r;
  };

  SystemRun run;
  {
    std::atomic<bool> stop{false};
    std::thread timer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(config.idle_ms));
      stop.store(true, std::memory_order_release);
    });
    run.idle = RunReaders(config, "snapshot", "idle", stop, read);
    timer.join();
  }
  {
    std::atomic<bool> stop{false};
    Timer writer_wall;
    std::thread writer([&] {
      Status created = store.CreateRdfModel("bulk", "bulk_app", "triple")
                           .status();
      if (created.ok()) {
        for (const auto& chunk : chunks) {
          Status st = store.Apply([&](rdf::RdfStore& live) {
            return rdf::BulkLoad(&live, "bulk", chunk).status();
          });
          if (!st.ok()) {
            std::fprintf(stderr, "bulk load failed: %s\n",
                         st.ToString().c_str());
            std::abort();
          }
        }
      }
      run.writer_wall_s =
          static_cast<double>(writer_wall.ElapsedNanos()) * 1e-9;
      stop.store(true, std::memory_order_release);
    });
    run.loaded = RunReaders(config, "snapshot", "bulkload", stop, read);
    writer.join();
  }
  return run;
}

SystemRun RunLocked(const Config& config,
                    const std::vector<std::vector<rdf::NTriple>>& chunks) {
  rdf::ConcurrentRdfStore store;
  Status loaded = store.WithWriteLock(
      [&](rdf::RdfStore& live) { return LoadProbes(&live, config.probes); });
  if (!loaded.ok()) {
    std::fprintf(stderr, "probe load failed: %s\n",
                 loaded.ToString().c_str());
    std::abort();
  }
  auto read = [&](size_t i) {
    auto r = store.IsTriple("probe", ProbeSubject(config, i), "bench:p",
                            ProbeObject(config, i));
    return r.ok() && *r;
  };

  SystemRun run;
  {
    std::atomic<bool> stop{false};
    std::thread timer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(config.idle_ms));
      stop.store(true, std::memory_order_release);
    });
    run.idle = RunReaders(config, "locked", "idle", stop, read);
    timer.join();
  }
  {
    std::atomic<bool> stop{false};
    Timer writer_wall;
    std::thread writer([&] {
      Status created =
          store.CreateRdfModel("bulk", "bulk_app", "triple").status();
      if (created.ok()) {
        // Same chunking as the snapshot store: the exclusive lock is
        // taken per chunk, so readers get the same theoretical gaps to
        // slip through.
        for (const auto& chunk : chunks) {
          Status st = store.WithWriteLock([&](rdf::RdfStore& live) {
            return rdf::BulkLoad(&live, "bulk", chunk).status();
          });
          if (!st.ok()) {
            std::fprintf(stderr, "bulk load failed: %s\n",
                         st.ToString().c_str());
            std::abort();
          }
        }
      }
      run.writer_wall_s =
          static_cast<double>(writer_wall.ElapsedNanos()) * 1e-9;
      stop.store(true, std::memory_order_release);
    });
    run.loaded = RunReaders(config, "locked", "bulkload", stop, read);
    writer.join();
  }
  return run;
}

void PrintHuman(const PhaseResult& r) {
  std::printf("%-9s %-9s %10zu ops  %12.0f ops/s  p50 %8llu ns  "
              "p95 %8llu ns  p99 %8llu ns\n",
              r.system.c_str(), r.phase.c_str(), r.ops, r.ops_per_sec(),
              static_cast<unsigned long long>(r.p50_ns),
              static_cast<unsigned long long>(r.p95_ns),
              static_cast<unsigned long long>(r.p99_ns));
}

void PrintJsonResult(const PhaseResult& r, bool last) {
  std::printf("    {\"system\": \"%s\", \"phase\": \"%s\", \"ops\": %zu, "
              "\"ops_per_sec\": %.0f, \"p50_ns\": %llu, \"p95_ns\": %llu, "
              "\"p99_ns\": %llu}%s\n",
              r.system.c_str(), r.phase.c_str(), r.ops, r.ops_per_sec(),
              static_cast<unsigned long long>(r.p50_ns),
              static_cast<unsigned long long>(r.p95_ns),
              static_cast<unsigned long long>(r.p99_ns), last ? "" : ",");
}

}  // namespace
}  // namespace rdfdb::bench

int main(int argc, char** argv) {
  using namespace rdfdb::bench;
  Config config;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> long long {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return std::atoll(argv[++i]);
    };
    if (std::strcmp(argv[i], "--readers") == 0) {
      config.readers = static_cast<int>(next());
    } else if (std::strcmp(argv[i], "--triples") == 0) {
      config.triples = static_cast<size_t>(next());
    } else if (std::strcmp(argv[i], "--chunk") == 0) {
      config.chunk = static_cast<size_t>(next());
    } else if (std::strcmp(argv[i], "--idle-ms") == 0) {
      config.idle_ms = static_cast<int>(next());
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      // CI smoke: small enough to finish in seconds, still exercising
      // both systems and both phases end to end.
      config.triples = 20000;
      config.chunk = 4096;
      config.idle_ms = 200;
      config.probes = 2000;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      config.json = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      std::exit(2);
    }
  }

  rdfdb::gen::UniProtOptions gen_options;
  gen_options.target_triples = config.triples;
  rdfdb::gen::UniProtDataset dataset =
      rdfdb::gen::GenerateUniProt(gen_options);
  auto chunks = MakeChunks(dataset.triples, config.chunk);

  std::fprintf(stderr, "running snapshot store phases...\n");
  SystemRun snapshot = RunSnapshot(config, chunks);
  std::fprintf(stderr, "running locked store phases...\n");
  SystemRun locked = RunLocked(config, chunks);

  double snap_ratio = snapshot.idle.ops_per_sec() > 0
                          ? snapshot.loaded.ops_per_sec() /
                                snapshot.idle.ops_per_sec()
                          : 0;
  double locked_ratio =
      locked.idle.ops_per_sec() > 0
          ? locked.loaded.ops_per_sec() / locked.idle.ops_per_sec()
          : 0;

  if (config.json) {
    std::printf("{\n");
    std::printf("  \"benchmark\": \"concurrent_read\",\n");
    std::printf("  \"readers\": %d,\n", config.readers);
    std::printf("  \"bulk_triples\": %zu,\n", dataset.triples.size());
    std::printf("  \"chunk\": %zu,\n", config.chunk);
    std::printf("  \"results\": [\n");
    PrintJsonResult(snapshot.idle, false);
    PrintJsonResult(snapshot.loaded, false);
    PrintJsonResult(locked.idle, false);
    PrintJsonResult(locked.loaded, true);
    std::printf("  ],\n");
    std::printf("  \"snapshot_writer_wall_s\": %.3f,\n",
                snapshot.writer_wall_s);
    std::printf("  \"locked_writer_wall_s\": %.3f,\n", locked.writer_wall_s);
    std::printf("  \"snapshot_loaded_vs_idle\": %.4f,\n", snap_ratio);
    std::printf("  \"locked_loaded_vs_idle\": %.4f\n", locked_ratio);
    std::printf("}\n");
  } else {
    std::printf("readers=%d bulk_triples=%zu chunk=%zu\n", config.readers,
                dataset.triples.size(), config.chunk);
    PrintHuman(snapshot.idle);
    PrintHuman(snapshot.loaded);
    PrintHuman(locked.idle);
    PrintHuman(locked.loaded);
    std::printf("snapshot writer wall: %.3f s   locked writer wall: %.3f s\n",
                snapshot.writer_wall_s, locked.writer_wall_s);
    std::printf("reader throughput under load vs idle: snapshot %.1f%%, "
                "locked %.1f%%\n",
                100 * snap_ratio, 100 * locked_ratio);
  }
  return 0;
}
