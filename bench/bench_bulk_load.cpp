// Load-throughput benchmark: the sequential per-statement loader
// (the paper's §7.3 "read everything, then insert" path) against the
// chunked/batched pipeline, in triples/sec. Run with
// --benchmark_format=json to record machine-readable numbers for
// EXPERIMENTS.md. Each iteration loads into a fresh store so the two
// paths do identical work.

#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "rdf/bulk_load.h"

namespace rdfdb::bench {
namespace {

std::unique_ptr<rdf::RdfStore> FreshStore() {
  auto store = std::make_unique<rdf::RdfStore>();
  auto model = store->CreateRdfModel("uniprot", "uniprot_app", "triple");
  if (!model.ok()) {
    std::fprintf(stderr, "model create failed: %s\n",
                 model.status().ToString().c_str());
    std::abort();
  }
  return store;
}

void ReportLoad(benchmark::State& state, size_t triples_per_iter) {
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() *
                                               triples_per_iter));
  state.counters["triples"] = static_cast<double>(triples_per_iter);
  state.counters["triples_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations() * triples_per_iter),
      benchmark::Counter::kIsRate);
}

void BM_LoadSequential(benchmark::State& state) {
  const gen::UniProtDataset& data = DatasetFor(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto store = FreshStore();
    state.ResumeTiming();
    auto stats = rdf::BulkLoadSequential(store.get(), "uniprot",
                                         data.triples);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(stats->new_links);
  }
  ReportLoad(state, data.triple_count());
}
BENCHMARK(BM_LoadSequential)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

void BM_LoadPipelined(benchmark::State& state) {
  const gen::UniProtDataset& data = DatasetFor(state.range(0));
  rdf::BulkLoadOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    auto store = FreshStore();
    state.ResumeTiming();
    auto stats = rdf::BulkLoad(store.get(), "uniprot", data.triples,
                               nullptr, options);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(stats->new_links);
  }
  ReportLoad(state, data.triple_count());
}
BENCHMARK(BM_LoadPipelined)
    ->ArgNames({"triples", "threads"})
    ->Apply([](benchmark::internal::Benchmark* bench) {
      for (int64_t size : BenchSizes()) {
        for (int64_t threads : {1, 2, 4}) {
          bench->Args({size, threads});
        }
      }
    })
    ->Unit(benchmark::kMillisecond);

// File path: N-Triples text → store, which adds parsing to the timed
// region (this is where the chunked parallel parse shows up).
void BM_LoadFileSequential(benchmark::State& state) {
  const gen::UniProtDataset& data = DatasetFor(state.range(0));
  const std::string path =
      "/tmp/rdfdb_bench_" + std::to_string(state.range(0)) + ".nt";
  Status write = rdf::WriteNTriplesFile(path, data.triples);
  if (!write.ok()) {
    state.SkipWithError(write.ToString().c_str());
    return;
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto store = FreshStore();
    state.ResumeTiming();
    auto parsed = rdf::ParseNTriplesFile(path);
    if (!parsed.ok()) {
      state.SkipWithError(parsed.status().ToString().c_str());
      return;
    }
    auto stats = rdf::BulkLoadSequential(store.get(), "uniprot", *parsed);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(stats->new_links);
  }
  ReportLoad(state, data.triple_count());
}
BENCHMARK(BM_LoadFileSequential)->Apply(ApplyBenchSizes)
    ->Unit(benchmark::kMillisecond);

void BM_LoadFilePipelined(benchmark::State& state) {
  const gen::UniProtDataset& data = DatasetFor(state.range(0));
  const std::string path =
      "/tmp/rdfdb_bench_" + std::to_string(state.range(0)) + ".nt";
  Status write = rdf::WriteNTriplesFile(path, data.triples);
  if (!write.ok()) {
    state.SkipWithError(write.ToString().c_str());
    return;
  }
  rdf::BulkLoadOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    state.PauseTiming();
    auto store = FreshStore();
    state.ResumeTiming();
    auto stats = rdf::BulkLoadFile(store.get(), "uniprot", path, nullptr,
                                   options);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(stats->new_links);
  }
  ReportLoad(state, data.triple_count());
}
BENCHMARK(BM_LoadFilePipelined)
    ->ArgNames({"triples", "threads"})
    ->Apply([](benchmark::internal::Benchmark* bench) {
      for (int64_t size : BenchSizes()) {
        for (int64_t threads : {1, 2, 4}) {
          bench->Args({size, threads});
        }
      }
    })
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rdfdb::bench

BENCHMARK_MAIN();
