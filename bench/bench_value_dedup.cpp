// §4 ablation: central value deduplication.
//
// "A key feature of RDF storage in Oracle is that nodes are stored only
// once — regardless of the number of times they participate in triples."
// Jena2 instead stores text inline in every statement row (§3.1), which
// "consumes more storage space than Jena1".
//
// This bench loads the same dataset into (a) the central-schema RDF
// object store and (b) the denormalized Jena2-style store, and reports
// bytes and insert throughput for each.

#include <benchmark/benchmark.h>

#include "baseline/jena1_store.h"
#include "bench/bench_common.h"

namespace rdfdb::bench {
namespace {

/// Total text bytes held by the central rdf_value$ dictionary (each
/// distinct value stored once — the paper's dedup claim).
size_t CentralTextBytes(const rdf::RdfStore& store) {
  size_t bytes = 0;
  store.values().table().Scan(
      [&](storage::RowId, const storage::Row& row) {
        bytes += row[1].as_string().size();          // VALUE_NAME
        if (!row[5].is_null()) bytes += row[5].as_clob().size();
        return true;
      });
  return bytes;
}

/// Total text bytes in a Jena2 asserted-statement table (every row
/// repeats its three texts).
size_t Jena2TextBytes(const storage::Database& db) {
  const storage::Table* table = db.GetTable("JENA2_UNIPROT", "ASSERTED");
  if (table == nullptr) return 0;
  size_t bytes = 0;
  table->Scan([&](storage::RowId, const storage::Row& row) {
    bytes += row[0].as_string().size() + row[1].as_string().size() +
             row[2].as_string().size();
    return true;
  });
  return bytes;
}

void BM_Sec4_CentralSchemaLoad(benchmark::State& state) {
  const gen::UniProtDataset& dataset = DatasetFor(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto store = std::make_unique<rdf::RdfStore>();
    auto model = store->CreateRdfModel("uniprot", "app", "triple");
    if (!model.ok()) {
      state.SkipWithError("model create failed");
      break;
    }
    state.ResumeTiming();

    for (const rdf::NTriple& t : dataset.triples) {
      auto insert = store->InsertParsedTriple(model->model_id, t.subject,
                                              t.predicate, t.object);
      benchmark::DoNotOptimize(insert);
    }

    state.counters["bytes"] = static_cast<double>(
        store->database().ApproxTotalBytes());
    state.counters["text_bytes"] =
        static_cast<double>(CentralTextBytes(*store));
    state.counters["distinct_values"] =
        static_cast<double>(store->values().value_count());
  }
  state.counters["triples"] = static_cast<double>(dataset.triple_count());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.triple_count()));
}
BENCHMARK(BM_Sec4_CentralSchemaLoad)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_Sec4_DenormalizedJena2Load(benchmark::State& state) {
  const gen::UniProtDataset& dataset = DatasetFor(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto db = std::make_unique<storage::Database>("JENADB");
    auto store = std::make_unique<baseline::Jena2Store>(db.get());
    if (!store->CreateModel("uniprot").ok()) {
      state.SkipWithError("model create failed");
      break;
    }
    state.ResumeTiming();

    for (const rdf::NTriple& t : dataset.triples) {
      Status st = store->Add("uniprot", t);
      benchmark::DoNotOptimize(st);
    }

    state.counters["bytes"] =
        static_cast<double>(*store->ApproxBytes("uniprot"));
    state.counters["text_bytes"] =
        static_cast<double>(Jena2TextBytes(*db));
  }
  state.counters["triples"] = static_cast<double>(dataset.triple_count());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.triple_count()));
}
BENCHMARK(BM_Sec4_DenormalizedJena2Load)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_Sec4_NormalizedJena1Load(benchmark::State& state) {
  // Jena1's normalized design: values stored once, like the central
  // schema, but find() pays a 3-way join (see bench_exp1).
  const gen::UniProtDataset& dataset = DatasetFor(state.range(0));
  int generation = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto db = std::make_unique<storage::Database>("J1DB");
    auto store = std::make_unique<baseline::Jena1Store>(
        db.get(), "J1G" + std::to_string(generation++));
    state.ResumeTiming();

    for (const rdf::NTriple& t : dataset.triples) {
      Status st = store->Add(t);
      benchmark::DoNotOptimize(st);
    }

    state.counters["bytes"] = static_cast<double>(store->ApproxBytes());
  }
  state.counters["triples"] = static_cast<double>(dataset.triple_count());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.triple_count()));
}
BENCHMARK(BM_Sec4_NormalizedJena1Load)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rdfdb::bench

BENCHMARK_MAIN();
