// §7.2 ablation: "indexes were required on the application tables" —
// the subject query with the function-based index
// (CREATE INDEX ... ON t (triple.GET_SUBJECT())) vs. the un-indexed
// plan, which evaluates the member function per row in a full scan.
//
// Reproduced shape: the indexed plan is flat in dataset size; the
// un-indexed plan grows linearly and is orders of magnitude slower at
// 100 k+ rows — which is why §7.2 calls the indexes "required".

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace rdfdb::bench {
namespace {

void BM_Sec72_SubjectQuery_WithFunctionBasedIndex(benchmark::State& state) {
  OracleSystem& sys = OracleSystem::For(state.range(0));
  // The loader created the subject index; assert it is present.
  if (!sys.table->HasSubjectIndex()) {
    state.SkipWithError("subject index missing");
    return;
  }
  size_t rows = 0;
  for (auto _ : state) {
    auto hits = sys.table->FindBySubject(gen::kProbeSubject);
    benchmark::DoNotOptimize(hits);
    rows = hits.size();
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Sec72_SubjectQuery_WithFunctionBasedIndex)
    ->Apply(ApplyBenchSizes);

void BM_Sec72_SubjectQuery_NoIndex_FullScan(benchmark::State& state) {
  // A separate store loaded without the index so the cached indexed
  // system is untouched.
  static std::map<int64_t, std::unique_ptr<rdf::RdfStore>> stores;
  static std::map<int64_t, std::unique_ptr<rdf::ApplicationTable>> tables;
  int64_t size = state.range(0);
  if (stores.find(size) == stores.end()) {
    auto store = std::make_unique<rdf::RdfStore>();
    gen::OracleLoadOptions options;
    options.create_subject_index = false;
    auto load = gen::LoadUniProtIntoOracle(store.get(), "uniprot", "app",
                                           DatasetFor(size), options);
    if (!load.ok()) {
      state.SkipWithError("load failed");
      return;
    }
    auto table = rdf::ApplicationTable::Attach(store.get(), "UP", "app");
    tables.emplace(size, std::make_unique<rdf::ApplicationTable>(
                             std::move(table).value()));
    stores.emplace(size, std::move(store));
  }
  rdf::ApplicationTable& table = *tables[size];
  size_t rows = 0;
  for (auto _ : state) {
    auto hits = table.FindBySubject(gen::kProbeSubject);
    benchmark::DoNotOptimize(hits);
    rows = hits.size();
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Sec72_SubjectQuery_NoIndex_FullScan)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rdfdb::bench

BENCHMARK_MAIN();
