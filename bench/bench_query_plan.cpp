// Query-executor benchmarks.
//
// Part 1 — planner ablation (§8's "innovative ways to accelerate data
// retrieval"): the query is written selective-pattern-LAST:
//   (?x rdf:type up:Protein) (?x rdfs:seeAlso ?ref)
//   (?x up:mnemonic "PROBE_HUMAN")
// Without the planner, execution starts from the rdf:type pattern
// (every protein) and joins thousands of intermediate bindings; with
// it, execution starts from the unique mnemonic and touches one
// protein.
//
// Part 2 — join executor A/B (BM_Join_*): chain and star shapes of
// 2/3/5 patterns over a synthetic social graph, comparing the legacy
// materializing join against the compiled streaming executor,
// sequentially and with 2/4 worker threads. Run with
// --benchmark_filter=Join --benchmark_repetitions=N to get interleaved
// medians; --benchmark_out=BENCH_query_join.json for the committed
// artifact.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_common.h"
#include "query/exec.h"
#include "query/rules_index.h"
#include "rdf/vocab.h"

namespace rdfdb::bench {
namespace {

using query::CompiledPlan;
using query::CompilePatterns;
using query::EvalOptions;
using query::EvalPatterns;
using query::ExecOptions;
using query::ExecutePlan;
using query::IdBindings;
using query::ModelSource;
using query::ParsePatterns;
using query::TriplePattern;

const char* kQuery =
    "(?x rdf:type <http://purl.uniprot.org/core/Protein>) "
    "(?x rdfs:seeAlso ?ref) "
    "(?x <http://purl.uniprot.org/core/mnemonic> \"PROBE_HUMAN\")";

void RunPlanBench(benchmark::State& state, bool reorder) {
  OracleSystem& sys = OracleSystem::For(state.range(0));
  auto patterns = ParsePatterns(kQuery, {});
  if (!patterns.ok()) {
    state.SkipWithError("pattern parse failed");
    return;
  }
  ModelSource source(sys.store.get(), {sys.load.model.model_id});
  EvalOptions options;
  options.reorder_patterns = reorder;
  size_t solutions = 0;
  for (auto _ : state) {
    size_t n = 0;
    Status st = EvalPatterns(*sys.store, *patterns, nullptr, source,
                             [&](const IdBindings&) {
                               ++n;
                               return true;
                             },
                             options);
    if (!st.ok()) state.SkipWithError("eval failed");
    solutions = n;
    benchmark::DoNotOptimize(n);
  }
  state.counters["solutions"] = static_cast<double>(solutions);
}

void BM_Plan_WithReordering(benchmark::State& state) {
  RunPlanBench(state, /*reorder=*/true);
}
BENCHMARK(BM_Plan_WithReordering)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_Plan_WrittenOrder(benchmark::State& state) {
  RunPlanBench(state, /*reorder=*/false);
}
BENCHMARK(BM_Plan_WrittenOrder)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Join executor A/B.

/// Synthetic social graph sized to a triple budget: N = triples/5
/// entities, each with type (100 classes), name, city (50 values),
/// email, and one knows edge e_i -> e_{(7i+13) mod N} — so chain
/// queries walk long unanchored paths (out-degree 1, every entity a
/// subject) and star queries fan out from a selective type class.
struct JoinSystem {
  std::unique_ptr<rdf::RdfStore> store;
  rdf::ModelId model = 0;

  static JoinSystem& For(int64_t triples) {
    static std::map<int64_t, std::unique_ptr<JoinSystem>> cache;
    auto it = cache.find(triples);
    if (it == cache.end()) {
      auto sys = std::make_unique<JoinSystem>();
      sys->store = std::make_unique<rdf::RdfStore>();
      auto model = sys->store->CreateRdfModel("social", "social_app",
                                              "triple");
      if (!model.ok()) std::abort();
      sys->model = model->model_id;
      const int64_t n = triples / 5;
      for (int64_t i = 0; i < n; ++i) {
        const std::string e = "urn:join:e" + std::to_string(i);
        auto insert = [&](const char* p, const std::string& o) {
          if (!sys->store->InsertTriple("social", e, p, o).ok()) {
            std::abort();
          }
        };
        insert("urn:join:type",
               "urn:join:Person_" + std::to_string(i % 100));
        insert("urn:join:name", "\"name_" + std::to_string(i) + "\"");
        insert("urn:join:city", "\"city_" + std::to_string(i % 50) + "\"");
        insert("urn:join:email",
               "\"e" + std::to_string(i) + "@example.org\"");
        insert("urn:join:knows",
               "urn:join:e" + std::to_string((7 * i + 13) % n));
      }
      it = cache.emplace(triples, std::move(sys)).first;
    }
    return *it->second;
  }
};

const char* kChain2 =
    "(?a <urn:join:knows> ?b) (?b <urn:join:city> ?c)";
const char* kChain3 =
    "(?a <urn:join:knows> ?b) (?b <urn:join:knows> ?c) "
    "(?c <urn:join:city> ?d)";
const char* kChain5 =
    "(?a <urn:join:knows> ?b) (?b <urn:join:knows> ?c) "
    "(?c <urn:join:knows> ?d) (?d <urn:join:knows> ?e) "
    "(?e <urn:join:city> ?f)";
const char* kStar3 =
    "(?p <urn:join:type> <urn:join:Person_7>) (?p <urn:join:city> ?c) "
    "(?p <urn:join:email> ?e)";
const char* kStar5 =
    "(?p <urn:join:type> <urn:join:Person_7>) (?p <urn:join:name> ?n) "
    "(?p <urn:join:city> ?c) (?p <urn:join:email> ?e) "
    "(?p <urn:join:knows> ?f)";

enum class ExecKind { kLegacy, kCompiled, kPar2, kPar4 };

void RunJoinBench(benchmark::State& state, const char* query,
                  ExecKind kind) {
  JoinSystem& sys = JoinSystem::For(state.range(0));
  auto patterns = ParsePatterns(query, {});
  if (!patterns.ok()) {
    state.SkipWithError("pattern parse failed");
    return;
  }
  ModelSource source(sys.store.get(), {sys.model});
  size_t solutions = 0;
  for (auto _ : state) {
    size_t n = 0;
    Status st;
    if (kind == ExecKind::kLegacy) {
      EvalOptions options;
      options.use_legacy = true;
      st = EvalPatterns(*sys.store, *patterns, nullptr, source,
                        [&](const IdBindings&) {
                          ++n;
                          return true;
                        },
                        options);
    } else {
      // Compile per iteration, as SdoRdfMatch does per query.
      CompiledPlan plan = CompilePatterns(*sys.store, *patterns, nullptr,
                                          source, /*reorder_patterns=*/true,
                                          nullptr);
      ExecOptions options;
      options.threads = kind == ExecKind::kPar2   ? 2u
                        : kind == ExecKind::kPar4 ? 4u
                                                  : 1u;
      st = ExecutePlan(*sys.store, plan, source,
                       [&](const rdf::ValueId*) {
                         ++n;
                         return true;
                       },
                       options);
    }
    if (!st.ok()) state.SkipWithError("eval failed");
    solutions = n;
    benchmark::DoNotOptimize(n);
  }
  state.counters["solutions"] = static_cast<double>(solutions);
}

#define RDFDB_JOIN_BENCH(shape, query)                                       \
  void BM_Join_##shape##_Legacy(benchmark::State& state) {                   \
    RunJoinBench(state, query, ExecKind::kLegacy);                           \
  }                                                                          \
  BENCHMARK(BM_Join_##shape##_Legacy)                                        \
      ->Apply(ApplyBenchSizes)                                               \
      ->Unit(benchmark::kMillisecond);                                       \
  void BM_Join_##shape##_Compiled(benchmark::State& state) {                 \
    RunJoinBench(state, query, ExecKind::kCompiled);                         \
  }                                                                          \
  BENCHMARK(BM_Join_##shape##_Compiled)                                      \
      ->Apply(ApplyBenchSizes)                                               \
      ->Unit(benchmark::kMillisecond);                                       \
  void BM_Join_##shape##_Par2(benchmark::State& state) {                     \
    RunJoinBench(state, query, ExecKind::kPar2);                             \
  }                                                                          \
  BENCHMARK(BM_Join_##shape##_Par2)                                          \
      ->Apply(ApplyBenchSizes)                                               \
      ->Unit(benchmark::kMillisecond);                                       \
  void BM_Join_##shape##_Par4(benchmark::State& state) {                     \
    RunJoinBench(state, query, ExecKind::kPar4);                             \
  }                                                                          \
  BENCHMARK(BM_Join_##shape##_Par4)                                          \
      ->Apply(ApplyBenchSizes)                                               \
      ->Unit(benchmark::kMillisecond);

RDFDB_JOIN_BENCH(Chain2, kChain2)
RDFDB_JOIN_BENCH(Chain3, kChain3)
RDFDB_JOIN_BENCH(Chain5, kChain5)
RDFDB_JOIN_BENCH(Star3, kStar3)
RDFDB_JOIN_BENCH(Star5, kStar5)

#undef RDFDB_JOIN_BENCH

}  // namespace
}  // namespace rdfdb::bench

BENCHMARK_MAIN();
