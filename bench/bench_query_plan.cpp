// Ablation: selectivity-based pattern reordering in SDO_RDF_MATCH's
// join executor (§8's "innovative ways to accelerate data retrieval").
//
// The query is written selective-pattern-LAST:
//   (?x rdf:type up:Protein) (?x rdfs:seeAlso ?ref)
//   (?x up:mnemonic "PROBE_HUMAN")
// Without the planner, execution starts from the rdf:type pattern
// (every protein) and joins thousands of intermediate bindings; with
// it, execution starts from the unique mnemonic and touches one
// protein.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "query/rules_index.h"
#include "rdf/vocab.h"

namespace rdfdb::bench {
namespace {

using query::EvalOptions;
using query::EvalPatterns;
using query::IdBindings;
using query::ModelSource;
using query::ParsePatterns;
using query::TriplePattern;

const char* kQuery =
    "(?x rdf:type <http://purl.uniprot.org/core/Protein>) "
    "(?x rdfs:seeAlso ?ref) "
    "(?x <http://purl.uniprot.org/core/mnemonic> \"PROBE_HUMAN\")";

void RunPlanBench(benchmark::State& state, bool reorder) {
  OracleSystem& sys = OracleSystem::For(state.range(0));
  auto patterns = ParsePatterns(kQuery, {});
  if (!patterns.ok()) {
    state.SkipWithError("pattern parse failed");
    return;
  }
  ModelSource source(sys.store.get(), {sys.load.model.model_id});
  EvalOptions options;
  options.reorder_patterns = reorder;
  size_t solutions = 0;
  for (auto _ : state) {
    size_t n = 0;
    Status st = EvalPatterns(*sys.store, *patterns, nullptr, source,
                             [&](const IdBindings&) {
                               ++n;
                               return true;
                             },
                             options);
    if (!st.ok()) state.SkipWithError("eval failed");
    solutions = n;
    benchmark::DoNotOptimize(n);
  }
  state.counters["solutions"] = static_cast<double>(solutions);
}

void BM_Plan_WithReordering(benchmark::State& state) {
  RunPlanBench(state, /*reorder=*/true);
}
BENCHMARK(BM_Plan_WithReordering)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_Plan_WrittenOrder(benchmark::State& state) {
  RunPlanBench(state, /*reorder=*/false);
}
BENCHMARK(BM_Plan_WrittenOrder)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rdfdb::bench

BENCHMARK_MAIN();
