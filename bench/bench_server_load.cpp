// Saturation behavior of rdfdb_serve: closed-loop offered load at
// 1x/2x/4x the server's worker parallelism, with admission control on
// (bounded queue, overload shed as 503) versus off (effectively
// unbounded queue, every connection admitted).
//
// The headline claim (EXPERIMENTS.md, BENCH_server_load.json): with
// shedding on, the p99 latency of *served* requests stays bounded as
// offered load grows — the queue caps how much waiting any admitted
// request can inherit, and the 503 count absorbs the excess. With the
// queue unbounded, every connection is admitted and served-request p99
// grows with offered load (each admitted request waits behind an
// ever-longer backlog).
//
// Not a google-benchmark binary: the workload is a client/server pair
// with its own closed-loop generator (server/loadgen.h), so the harness
// drives real sockets and reports the generator's tallies directly.
//
//   bench_server_load [--workers N] [--triples M] [--duration-ms MS]
//                     [--base-concurrency C] [--smoke] [--json]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "rdf/bulk_load.h"
#include "rdf/ntriples.h"
#include "rdf/snapshot_store.h"
#include "rdf/term.h"
#include "server/http.h"
#include "server/loadgen.h"
#include "server/server.h"

namespace rdfdb::bench {
namespace {

struct Config {
  unsigned workers = 4;
  size_t triples = 20000;
  int duration_ms = 3000;
  /// 1x offered load; 2x/4x multiply it. Defaults to 2 closed-loop
  /// clients per worker — past saturation for a CPU-bound query mix.
  unsigned base_concurrency = 8;
  bool json = false;
};

struct RunResult {
  std::string mode;  ///< "shed" | "queue"
  unsigned multiplier = 1;
  unsigned concurrency = 0;
  server::LoadGenStats stats;
};

RunResult RunOne(rdf::SnapshotRdfStore* store, const Config& config,
                 const std::string& mode, unsigned multiplier) {
  server::RdfServerOptions options;
  options.port = 0;
  options.workers = config.workers;
  // "shed": the queue is one connection per worker — refusal is the
  // overload response. "queue": admit everything (the pre-admission-
  // control behavior this PR replaces), bounded only by a cap far above
  // what the run can enqueue.
  options.queue_capacity =
      mode == "shed" ? config.workers : size_t{1} << 20;
  // Generous deadlines so queued requests run to completion: the
  // contrast under test is waiting time, not deadline enforcement.
  options.max_deadline_ms = 60'000;
  options.default_deadline_ms = 30'000;
  server::RdfServer server(store, options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start: %s\n", started.ToString().c_str());
    std::exit(1);
  }

  server::LoadGenOptions load;
  load.port = server.port();
  load.concurrency = config.base_concurrency * multiplier;
  load.duration_ms = config.duration_ms;
  load.deadline_ms = 0;  // rely on the generous server default
  load.io_timeout_ms = 60'000;
  load.query_target =
      "/query?q=" + server::PercentEncode("(?s <http://b.example/p> ?o)") +
      "&model=m&limit=2000";
  auto stats = server::RunLoadGen(load);
  server.Shutdown();
  if (!stats.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", stats.status().ToString().c_str());
    std::exit(1);
  }

  RunResult result;
  result.mode = mode;
  result.multiplier = multiplier;
  result.concurrency = load.concurrency;
  result.stats = *stats;
  return result;
}

}  // namespace
}  // namespace rdfdb::bench

int main(int argc, char** argv) {
  using rdfdb::bench::Config;
  using rdfdb::bench::RunOne;
  using rdfdb::bench::RunResult;

  Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      config.workers = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--triples") == 0 && i + 1 < argc) {
      config.triples = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      config.duration_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--base-concurrency") == 0 &&
               i + 1 < argc) {
      config.base_concurrency = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      config.triples = 5000;
      config.duration_ms = 800;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      config.json = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  rdfdb::rdf::SnapshotRdfStore store;
  if (!store.CreateRdfModel("m", "m_app", "triple").ok()) return 1;
  std::vector<rdfdb::rdf::NTriple> statements;
  statements.reserve(config.triples);
  for (size_t i = 0; i < config.triples; ++i) {
    rdfdb::rdf::NTriple t;
    t.subject =
        rdfdb::rdf::Term::Uri("http://b.example/s" + std::to_string(i));
    t.predicate = rdfdb::rdf::Term::Uri("http://b.example/p");
    t.object = rdfdb::rdf::Term::PlainLiteral("v" + std::to_string(i));
    statements.push_back(std::move(t));
  }
  rdfdb::Status loaded =
      store.Apply([&](rdfdb::rdf::RdfStore& live) {
        return rdfdb::rdf::BulkLoad(&live, "m", statements).status();
      });
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.ToString().c_str());
    return 1;
  }

  std::vector<RunResult> results;
  for (const char* mode : {"shed", "queue"}) {
    for (unsigned multiplier : {1u, 2u, 4u}) {
      results.push_back(RunOne(&store, config, mode, multiplier));
      const RunResult& r = results.back();
      if (!config.json) {
        std::printf("%-6s %ux (conc=%u): %s\n", r.mode.c_str(),
                    r.multiplier, r.concurrency,
                    r.stats.ToString().c_str());
        std::fflush(stdout);
      }
    }
  }

  if (config.json) {
    std::printf("{\n  \"benchmark\": \"server_load\",\n");
    std::printf("  \"workers\": %u,\n  \"triples\": %zu,\n", config.workers,
                config.triples);
    std::printf("  \"duration_ms\": %d,\n  \"results\": [\n",
                config.duration_ms);
    for (size_t i = 0; i < results.size(); ++i) {
      const RunResult& r = results[i];
      std::printf(
          "    {\"mode\": \"%s\", \"multiplier\": %u, \"concurrency\": %u, "
          "\"stats\": %s}%s\n",
          r.mode.c_str(), r.multiplier, r.concurrency,
          r.stats.ToJson().c_str(), i + 1 < results.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  }

  // Self-check for the CI smoke run: with shedding on, overload must
  // produce clean 503s rather than latency collapse, and served-request
  // p99 at 4x must stay within an order of magnitude of 1x. With the
  // queue unbounded no connection may be shed.
  const RunResult& shed1 = results[0];
  const RunResult& shed4 = results[2];
  const RunResult& queue4 = results[5];
  if (shed4.stats.shed == 0) {
    std::fprintf(stderr, "FAIL: no shedding at 4x offered load\n");
    return 1;
  }
  if (queue4.stats.shed != 0) {
    std::fprintf(stderr, "FAIL: unbounded queue still shed connections\n");
    return 1;
  }
  if (shed1.stats.p99_ns > 0 &&
      shed4.stats.p99_ns > 10 * shed1.stats.p99_ns) {
    std::fprintf(stderr,
                 "FAIL: shedding did not bound p99 (1x=%lldns 4x=%lldns)\n",
                 static_cast<long long>(shed1.stats.p99_ns),
                 static_cast<long long>(shed4.stats.p99_ns));
    return 1;
  }
  return 0;
}
