// Monotonic stopwatch used by examples and ad-hoc measurement paths.
// (The benchmark harness uses google-benchmark's own timing.)

#ifndef RDFDB_COMMON_TIMER_H_
#define RDFDB_COMMON_TIMER_H_

#include <chrono>

namespace rdfdb {

/// Wall-clock stopwatch with microsecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Reset the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed microseconds since construction or last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

  /// Elapsed nanoseconds since construction or last Restart(). This is
  /// the unit the observability layer (obs::ScopedSpan, latency
  /// histograms) and the manual-timing bench helpers standardise on.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rdfdb

#endif  // RDFDB_COMMON_TIMER_H_
