#include "common/crc32c.h"

#include <array>
#include <cstring>

namespace rdfdb {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  const Tables& tb = tables();
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  uint32_t c = ~crc;
  while (n >= 8) {
    uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    c ^= lo;
    c = tb.t[7][c & 0xFF] ^ tb.t[6][(c >> 8) & 0xFF] ^
        tb.t[5][(c >> 16) & 0xFF] ^ tb.t[4][c >> 24] ^
        tb.t[3][hi & 0xFF] ^ tb.t[2][(hi >> 8) & 0xFF] ^
        tb.t[1][(hi >> 16) & 0xFF] ^ tb.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = tb.t[0][(c ^ *p) & 0xFF] ^ (c >> 8);
    ++p;
    --n;
  }
  return ~c;
}

}  // namespace rdfdb
