#include "common/status.h"

namespace rdfdb {

namespace {

const std::string& EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

}  // namespace

const std::string& Status::message() const {
  return rep_ ? rep_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code());
  out += ": ";
  out += rep_->message;
  return out;
}

}  // namespace rdfdb
