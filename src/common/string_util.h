// Small string helpers shared across modules.

#ifndef RDFDB_COMMON_STRING_UTIL_H_
#define RDFDB_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rdfdb {

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Copy of `s` with leading/trailing ASCII whitespace removed.
std::string Trim(std::string_view s);

/// Split on `sep`; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// Split on runs of ASCII whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Join `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-case copy.
std::string ToLower(std::string_view s);

/// ASCII upper-case copy.
std::string ToUpper(std::string_view s);

/// Parse a signed decimal integer; returns false on any non-numeric input.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parse a floating-point number; returns false on any non-numeric input.
bool ParseDouble(std::string_view s, double* out);

}  // namespace rdfdb

#endif  // RDFDB_COMMON_STRING_UTIL_H_
