#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace rdfdb {

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  if (*begin == '+') ++begin;  // std::from_chars rejects a leading '+'
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* endptr = nullptr;
  *out = std::strtod(buf.c_str(), &endptr);
  return endptr == buf.c_str() + buf.size();
}

}  // namespace rdfdb
