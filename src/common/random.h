// Deterministic pseudo-random generator used by the synthetic dataset
// generators. Seeded explicitly so every experiment is reproducible.

#ifndef RDFDB_COMMON_RANDOM_H_
#define RDFDB_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace rdfdb {

/// xoshiro256** generator with SplitMix64 seeding. Not cryptographic;
/// chosen for speed and reproducibility across platforms.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Zipfian-ish skewed pick in [0, n): rank r chosen with weight 1/(r+1).
  /// Used to give generated RDF data a realistic value-reuse profile.
  uint64_t Skewed(uint64_t n);

  /// Random lowercase ASCII identifier of length `len`.
  std::string Identifier(size_t len);

 private:
  uint64_t s_[4];
};

}  // namespace rdfdb

#endif  // RDFDB_COMMON_RANDOM_H_
