// Result<T>: value-or-Status return type (Arrow's arrow::Result idiom).

#ifndef RDFDB_COMMON_RESULT_H_
#define RDFDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace rdfdb {

/// Holds either a T (success) or a non-OK Status (failure).
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_t;`
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: `return Status::NotFound(...);`
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result must not be built from an OK Status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the held value. Caller must have checked ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Evaluate `rexpr` (a Result<T>); on error return its Status, otherwise
/// bind the value to `lhs`.
#define RDFDB_ASSIGN_OR_RETURN(lhs, rexpr)              \
  RDFDB_ASSIGN_OR_RETURN_IMPL_(                         \
      RDFDB_CONCAT_(_result_tmp_, __LINE__), lhs, rexpr)

#define RDFDB_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr)   \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define RDFDB_CONCAT_(a, b) RDFDB_CONCAT_IMPL_(a, b)
#define RDFDB_CONCAT_IMPL_(a, b) a##b

}  // namespace rdfdb

#endif  // RDFDB_COMMON_RESULT_H_
