// Status: error-signalling return type used across all rdfdb public APIs.
//
// Follows the RocksDB/Arrow idiom: functions that can fail return a Status
// (or a Result<T>, see result.h) instead of throwing. A Status is cheap to
// copy in the OK case (no allocation).

#ifndef RDFDB_COMMON_STATUS_H_
#define RDFDB_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace rdfdb {

/// Error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kNotSupported,
  kIOError,
  kInternal,
  kDeadlineExceeded,  ///< a per-request deadline expired mid-operation
  kCancelled,         ///< the caller abandoned the operation
};

/// Return-value error type. `Status::OK()` signals success; every other
/// factory carries a code and a human-readable message.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// Message attached at construction; empty for OK.
  const std::string& message() const;

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  std::shared_ptr<const Rep> rep_;  // null == OK
};

/// Propagate a non-OK Status to the caller.
#define RDFDB_RETURN_NOT_OK(expr)          \
  do {                                     \
    ::rdfdb::Status _st = (expr);          \
    if (!_st.ok()) return _st;             \
  } while (0)

}  // namespace rdfdb

#endif  // RDFDB_COMMON_STATUS_H_
