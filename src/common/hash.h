// Hashing helpers: FNV-1a for strings, hash combining for composite keys.

#ifndef RDFDB_COMMON_HASH_H_
#define RDFDB_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace rdfdb {

/// 64-bit FNV-1a over a byte string.
inline uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// boost::hash_combine-style mixing.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace rdfdb

#endif  // RDFDB_COMMON_HASH_H_
