// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78):
// the checksum guarding snapshot payloads, redo-log records, and the
// checkpoint manifest. Software slice-by-8 implementation — no SSE4.2
// dependency, identical output on every platform.

#ifndef RDFDB_COMMON_CRC32C_H_
#define RDFDB_COMMON_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace rdfdb {

/// Extend `crc` (a previous Crc32c result, or 0 for a fresh stream)
/// with `data`. Crc32c(a+b) == Crc32cExtend(Crc32c(a), b).
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

/// One-shot CRC32C of `data`.
inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data);
}

}  // namespace rdfdb

#endif  // RDFDB_COMMON_CRC32C_H_
