#include "common/random.h"

#include <cmath>

namespace rdfdb {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t bound) {
  // Reject to avoid modulo bias (negligible for our bounds, but cheap).
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Random::Skewed(uint64_t n) {
  if (n <= 1) return 0;
  // Inverse-CDF sample of weight 1/(r+1) over [0, n): harmonic tail.
  double u = NextDouble();
  double hn = std::log(static_cast<double>(n)) + 0.5772156649;  // ~H_n
  double target = u * hn;
  double r = std::exp(target) - 1.0;
  if (r < 0) r = 0;
  uint64_t rank = static_cast<uint64_t>(r);
  return rank < n ? rank : n - 1;
}

std::string Random::Identifier(size_t len) {
  static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz";
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) out.push_back(kAlpha[Uniform(26)]);
  return out;
}

}  // namespace rdfdb
