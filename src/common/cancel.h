// Cooperative cancellation: a deadline plus an explicit cancel flag,
// shared between a request owner (the network front-end, a tool's
// signal handler) and the long-running work it spawned (the compiled
// query executor, the bulk-load pipeline).
//
// The owner arms the token with a deadline (and may later Cancel() it,
// e.g. when the client hangs up); the worker calls Expired() at its
// checkpoints — executor row-loop countdowns, bulk-load chunk
// boundaries — and unwinds with StatusIfDone() when the token fires.
// Expired() is two relaxed atomic loads on the not-cancelled,
// no-deadline path and one extra clock read when a deadline is armed,
// so checkpoints can afford to call it every few thousand rows.
//
// A token is single-owner, multi-observer: any number of threads may
// call Expired()/StatusIfDone() concurrently with one thread calling
// Cancel()/set_deadline(). Deadlines use the steady clock (wall-clock
// jumps must not fire request deadlines).

#ifndef RDFDB_COMMON_CANCEL_H_
#define RDFDB_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace rdfdb {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arm (or move) the deadline. Publishes with release so an observer
  /// that sees the new deadline also sees everything written before it.
  void set_deadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_release);
  }

  /// Arm the deadline `ms` milliseconds from now (<= 0 disarms).
  void SetDeadlineAfterMs(int64_t ms) {
    if (ms <= 0) {
      deadline_ns_.store(0, std::memory_order_release);
    } else {
      set_deadline(Clock::now() + std::chrono::milliseconds(ms));
    }
  }

  /// Explicit cancellation (client hung up, server draining). Sticky.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// True once Cancel() was called (deadline expiry does not set this).
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Nanoseconds-since-clock-epoch of the armed deadline; 0 = none.
  int64_t deadline_ns() const {
    return deadline_ns_.load(std::memory_order_acquire);
  }

  /// True when the token has fired: explicitly cancelled, or the armed
  /// deadline has passed. This is the checkpoint call.
  bool Expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d != 0 && Clock::now().time_since_epoch().count() >= d;
  }

  /// Remaining time before the deadline (0 when expired; a very large
  /// value when no deadline is armed).
  std::chrono::nanoseconds Remaining() const {
    const int64_t d = deadline_ns_.load(std::memory_order_acquire);
    if (d == 0) return std::chrono::nanoseconds::max();
    const int64_t now = Clock::now().time_since_epoch().count();
    return std::chrono::nanoseconds(d > now ? d - now : 0);
  }

  /// OK while the token has not fired; Cancelled / DeadlineExceeded
  /// once it has (explicit cancellation wins when both apply — the
  /// client is gone, so there is no one to tell about the deadline).
  Status StatusIfDone() const {
    if (cancelled()) return Status::Cancelled("operation cancelled");
    if (Expired()) {
      return Status::DeadlineExceeded("deadline exceeded");
    }
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};  // steady-clock ns; 0 = unarmed
};

}  // namespace rdfdb

#endif  // RDFDB_COMMON_CANCEL_H_
