#include "ndm/analysis.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>

namespace rdfdb::ndm {

namespace {

/// (neighbor node, via link, link cost) triples adjacent to `node` in the
/// requested direction.
void ForEachNeighbor(
    const LogicalNetwork& net, NodeId node, Direction direction,
    const std::function<void(NodeId, LinkId, double)>& fn) {
  if (direction == Direction::kOutgoing || direction == Direction::kBoth) {
    for (LinkId lid : net.OutLinks(node)) {
      const Link* link = net.GetLink(lid);
      fn(link->end, lid, link->cost);
    }
  }
  if (direction == Direction::kIncoming || direction == Direction::kBoth) {
    for (LinkId lid : net.InLinks(node)) {
      const Link* link = net.GetLink(lid);
      fn(link->start, lid, link->cost);
    }
  }
}

struct DijkstraState {
  std::unordered_map<NodeId, double> dist;
  std::unordered_map<NodeId, NodeId> prev_node;
  std::unordered_map<NodeId, LinkId> prev_link;
};

/// Run Dijkstra from `source`; stops early when `target` is settled (pass
/// nullptr to explore everything up to `max_cost`).
DijkstraState RunDijkstra(const LogicalNetwork& net, NodeId source,
                          const NodeId* target, double max_cost,
                          Direction direction) {
  DijkstraState state;
  if (!net.HasNode(source)) return state;
  using Entry = std::pair<double, NodeId>;  // (dist, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  state.dist[source] = 0.0;
  heap.emplace(0.0, source);
  std::unordered_set<NodeId> settled;

  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (settled.count(u)) continue;
    settled.insert(u);
    if (target != nullptr && u == *target) break;
    ForEachNeighbor(net, u, direction, [&](NodeId v, LinkId lid, double w) {
      double nd = d + w;
      if (nd > max_cost) return;
      auto it = state.dist.find(v);
      if (it == state.dist.end() || nd < it->second) {
        state.dist[v] = nd;
        state.prev_node[v] = u;
        state.prev_link[v] = lid;
        heap.emplace(nd, v);
      }
    });
  }
  return state;
}

PathResult ExtractPath(const DijkstraState& state, NodeId source,
                       NodeId target) {
  PathResult result;
  auto dit = state.dist.find(target);
  if (dit == state.dist.end()) return result;
  result.found = true;
  result.cost = dit->second;
  NodeId cur = target;
  while (cur != source) {
    result.nodes.push_back(cur);
    result.links.push_back(state.prev_link.at(cur));
    cur = state.prev_node.at(cur);
  }
  result.nodes.push_back(source);
  std::reverse(result.nodes.begin(), result.nodes.end());
  std::reverse(result.links.begin(), result.links.end());
  return result;
}

}  // namespace

PathResult ShortestPath(const LogicalNetwork& net, NodeId source,
                        NodeId target, Direction direction) {
  if (!net.HasNode(source) || !net.HasNode(target)) return {};
  DijkstraState state =
      RunDijkstra(net, source, &target,
                  std::numeric_limits<double>::infinity(), direction);
  return ExtractPath(state, source, target);
}

PathResult ShortestPathByHops(const LogicalNetwork& net, NodeId source,
                              NodeId target, Direction direction) {
  PathResult result;
  if (!net.HasNode(source) || !net.HasNode(target)) return result;
  std::unordered_map<NodeId, NodeId> prev_node;
  std::unordered_map<NodeId, LinkId> prev_link;
  std::unordered_set<NodeId> visited{source};
  std::deque<NodeId> frontier{source};
  bool found = source == target;

  while (!frontier.empty() && !found) {
    NodeId u = frontier.front();
    frontier.pop_front();
    ForEachNeighbor(net, u, direction, [&](NodeId v, LinkId lid, double) {
      if (found || visited.count(v)) return;
      visited.insert(v);
      prev_node[v] = u;
      prev_link[v] = lid;
      if (v == target) {
        found = true;
        return;
      }
      frontier.push_back(v);
    });
  }
  if (!found) return result;

  result.found = true;
  NodeId cur = target;
  while (cur != source) {
    result.nodes.push_back(cur);
    result.links.push_back(prev_link.at(cur));
    cur = prev_node.at(cur);
  }
  result.nodes.push_back(source);
  std::reverse(result.nodes.begin(), result.nodes.end());
  std::reverse(result.links.begin(), result.links.end());
  result.cost = static_cast<double>(result.links.size());
  return result;
}

std::unordered_map<NodeId, double> WithinCost(const LogicalNetwork& net,
                                              NodeId source, double max_cost,
                                              Direction direction) {
  DijkstraState state =
      RunDijkstra(net, source, nullptr, max_cost, direction);
  return std::move(state.dist);
}

std::vector<std::pair<NodeId, double>> NearestNeighbors(
    const LogicalNetwork& net, NodeId source, size_t k,
    Direction direction) {
  DijkstraState state =
      RunDijkstra(net, source, nullptr,
                  std::numeric_limits<double>::infinity(), direction);
  std::vector<std::pair<NodeId, double>> out;
  out.reserve(state.dist.size());
  for (const auto& [node, cost] : state.dist) {
    if (node != source) out.emplace_back(node, cost);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second < b.second;
    return a.first < b.first;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

bool Reachable(const LogicalNetwork& net, NodeId source, NodeId target,
               Direction direction) {
  if (!net.HasNode(source) || !net.HasNode(target)) return false;
  if (source == target) return true;
  std::unordered_set<NodeId> visited{source};
  std::deque<NodeId> frontier{source};
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop_front();
    bool hit = false;
    ForEachNeighbor(net, u, direction, [&](NodeId v, LinkId, double) {
      if (hit || visited.count(v)) return;
      visited.insert(v);
      if (v == target) {
        hit = true;
        return;
      }
      frontier.push_back(v);
    });
    if (hit) return true;
  }
  return false;
}

std::unordered_map<NodeId, int> ConnectedComponents(
    const LogicalNetwork& net) {
  std::unordered_map<NodeId, int> component;
  int next_id = 0;
  for (NodeId start : net.Nodes()) {
    if (component.count(start)) continue;
    int id = next_id++;
    std::deque<NodeId> frontier{start};
    component[start] = id;
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop_front();
      ForEachNeighbor(net, u, Direction::kBoth,
                      [&](NodeId v, LinkId, double) {
                        if (component.count(v)) return;
                        component[v] = id;
                        frontier.push_back(v);
                      });
    }
  }
  return component;
}

size_t ConnectedComponentCount(const LogicalNetwork& net) {
  auto component = ConnectedComponents(net);
  int max_id = -1;
  for (const auto& [node, id] : component) max_id = std::max(max_id, id);
  return static_cast<size_t>(max_id + 1);
}

std::vector<LinkId> MinimumCostSpanningForest(const LogicalNetwork& net) {
  std::vector<LinkId> chosen;
  std::unordered_set<NodeId> in_tree;
  using Entry = std::pair<double, std::pair<LinkId, NodeId>>;
  for (NodeId root : net.Nodes()) {
    if (in_tree.count(root)) continue;
    in_tree.insert(root);
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    auto push_edges = [&](NodeId u) {
      ForEachNeighbor(net, u, Direction::kBoth,
                      [&](NodeId v, LinkId lid, double w) {
                        if (!in_tree.count(v)) {
                          heap.emplace(w, std::make_pair(lid, v));
                        }
                      });
    };
    push_edges(root);
    while (!heap.empty()) {
      auto [w, entry] = heap.top();
      heap.pop();
      auto [lid, v] = entry;
      if (in_tree.count(v)) continue;
      in_tree.insert(v);
      chosen.push_back(lid);
      push_edges(v);
    }
  }
  return chosen;
}

double SpanningForestCost(const LogicalNetwork& net) {
  double total = 0.0;
  for (LinkId lid : MinimumCostSpanningForest(net)) {
    total += net.GetLink(lid)->cost;
  }
  return total;
}

LogicalNetwork ExtractSubnetwork(const LogicalNetwork& net,
                                 const std::vector<NodeId>& nodes) {
  LogicalNetwork sub(net.name() + "_sub");
  std::unordered_set<NodeId> keep(nodes.begin(), nodes.end());
  for (NodeId node : nodes) {
    if (net.HasNode(node)) sub.AddNode(node);
  }
  for (NodeId node : nodes) {
    for (LinkId lid : net.OutLinks(node)) {
      const Link* link = net.GetLink(lid);
      if (keep.count(link->end) > 0 && !sub.HasLink(lid)) {
        (void)sub.AddLink(*link);
      }
    }
  }
  return sub;
}

LogicalNetwork NeighborhoodSubnetwork(const LogicalNetwork& net,
                                      NodeId source, double max_cost,
                                      Direction direction) {
  auto costs = WithinCost(net, source, max_cost, direction);
  std::vector<NodeId> nodes;
  nodes.reserve(costs.size());
  for (const auto& [node, cost] : costs) nodes.push_back(node);
  return ExtractSubnetwork(net, nodes);
}

std::vector<NodeId> BreadthFirstOrder(const LogicalNetwork& net,
                                      NodeId source, Direction direction) {
  std::vector<NodeId> order;
  if (!net.HasNode(source)) return order;
  std::unordered_set<NodeId> visited{source};
  std::deque<NodeId> frontier{source};
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop_front();
    order.push_back(u);
    // Collect then sort for deterministic order across hash-map layouts.
    std::vector<NodeId> next;
    ForEachNeighbor(net, u, direction, [&](NodeId v, LinkId, double) {
      if (!visited.count(v)) {
        visited.insert(v);
        next.push_back(v);
      }
    });
    std::sort(next.begin(), next.end());
    for (NodeId v : next) frontier.push_back(v);
  }
  return order;
}

}  // namespace rdfdb::ndm
