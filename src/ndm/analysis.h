// NDM network-analysis functions.
//
// These are the analyses Oracle's Network Data Model exposes; the paper's
// point is that, because RDF triples *are* NDM links, "all the NDM
// functionality is exposed to RDF data". The RDF layer hands its logical
// network to these functions directly.

#ifndef RDFDB_NDM_ANALYSIS_H_
#define RDFDB_NDM_ANALYSIS_H_

#include <unordered_map>
#include <vector>

#include "ndm/network.h"

namespace rdfdb::ndm {

/// Result of a path search.
struct PathResult {
  bool found = false;
  double cost = 0.0;
  std::vector<NodeId> nodes;  ///< source..target, inclusive
  std::vector<LinkId> links;  ///< links taken, size == nodes.size()-1
};

/// Traversal direction for searches over a directed network.
enum class Direction {
  kOutgoing,   ///< follow links start -> end
  kIncoming,   ///< follow links end -> start
  kBoth,       ///< treat links as undirected
};

/// Dijkstra shortest path by link cost. Costs must be non-negative.
PathResult ShortestPath(const LogicalNetwork& net, NodeId source,
                        NodeId target,
                        Direction direction = Direction::kOutgoing);

/// Minimum-hop path (BFS, ignores costs).
PathResult ShortestPathByHops(const LogicalNetwork& net, NodeId source,
                              NodeId target,
                              Direction direction = Direction::kOutgoing);

/// All nodes reachable within `max_cost` of `source`, with their costs
/// (includes `source` at cost 0).
std::unordered_map<NodeId, double> WithinCost(
    const LogicalNetwork& net, NodeId source, double max_cost,
    Direction direction = Direction::kOutgoing);

/// The `k` nearest nodes to `source` by path cost, ascending (excludes
/// `source` itself).
std::vector<std::pair<NodeId, double>> NearestNeighbors(
    const LogicalNetwork& net, NodeId source, size_t k,
    Direction direction = Direction::kOutgoing);

/// True if `target` is reachable from `source`.
bool Reachable(const LogicalNetwork& net, NodeId source, NodeId target,
               Direction direction = Direction::kOutgoing);

/// Weakly-connected components: component id per node (ids are dense,
/// starting at 0). Nodes in the same component share an id.
std::unordered_map<NodeId, int> ConnectedComponents(
    const LogicalNetwork& net);

/// Number of weakly-connected components.
size_t ConnectedComponentCount(const LogicalNetwork& net);

/// Minimum-cost spanning forest over the undirected view (Prim per
/// component). Returns chosen link ids.
std::vector<LinkId> MinimumCostSpanningForest(const LogicalNetwork& net);

/// Sum of costs of the links returned by MinimumCostSpanningForest.
double SpanningForestCost(const LogicalNetwork& net);

/// Nodes in BFS order from `source`.
std::vector<NodeId> BreadthFirstOrder(const LogicalNetwork& net,
                                      NodeId source,
                                      Direction direction =
                                          Direction::kOutgoing);

/// Extract the induced subnetwork over `nodes`: all listed nodes plus
/// every link with both endpoints in the set. (NDM's sub-network
/// extraction for focused analysis.)
LogicalNetwork ExtractSubnetwork(const LogicalNetwork& net,
                                 const std::vector<NodeId>& nodes);

/// The neighbourhood subnetwork within `max_cost` of `source`
/// (convenience: WithinCost + ExtractSubnetwork).
LogicalNetwork NeighborhoodSubnetwork(const LogicalNetwork& net,
                                      NodeId source, double max_cost,
                                      Direction direction =
                                          Direction::kBoth);

}  // namespace rdfdb::ndm

#endif  // RDFDB_NDM_ANALYSIS_H_
