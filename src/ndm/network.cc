#include "ndm/network.h"

#include <algorithm>

namespace rdfdb::ndm {

namespace {
const std::vector<LinkId>& EmptyLinks() {
  static const std::vector<LinkId> kEmpty;
  return kEmpty;
}
}  // namespace

LogicalNetwork::LogicalNetwork(std::string name) : name_(std::move(name)) {}

void LogicalNetwork::AddNode(NodeId node) { nodes_.try_emplace(node); }

Status LogicalNetwork::AddLink(const Link& link) {
  if (links_.count(link.id) > 0) {
    return Status::AlreadyExists("link " + std::to_string(link.id));
  }
  AddNode(link.start);
  AddNode(link.end);
  links_.emplace(link.id, link);
  nodes_[link.start].out.push_back(link.id);
  nodes_[link.end].in.push_back(link.id);
  return Status::OK();
}

void LogicalNetwork::ReserveAdditional(size_t extra_nodes,
                                       size_t extra_links) {
  nodes_.reserve(nodes_.size() + extra_nodes);
  links_.reserve(links_.size() + extra_links);
}

Status LogicalNetwork::AddLinksBulk(const std::vector<Link>& links) {
  ReserveAdditional(2 * links.size(), links.size());
  for (const Link& link : links) {
    RDFDB_RETURN_NOT_OK(AddLink(link));
  }
  return Status::OK();
}

Status LogicalNetwork::RemoveLink(LinkId link) {
  auto it = links_.find(link);
  if (it == links_.end()) {
    return Status::NotFound("link " + std::to_string(link));
  }
  const Link& rec = it->second;
  auto& out = nodes_[rec.start].out;
  out.erase(std::find(out.begin(), out.end(), link));
  auto& in = nodes_[rec.end].in;
  in.erase(std::find(in.begin(), in.end(), link));
  links_.erase(it);
  return Status::OK();
}

bool LogicalNetwork::RemoveNodeIfIsolated(NodeId node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return false;
  if (!it->second.out.empty() || !it->second.in.empty()) return false;
  nodes_.erase(it);
  return true;
}

bool LogicalNetwork::HasNode(NodeId node) const {
  return nodes_.count(node) > 0;
}

bool LogicalNetwork::HasLink(LinkId link) const {
  return links_.count(link) > 0;
}

const Link* LogicalNetwork::GetLink(LinkId link) const {
  auto it = links_.find(link);
  return it == links_.end() ? nullptr : &it->second;
}

size_t LogicalNetwork::OutDegree(NodeId node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? 0 : it->second.out.size();
}

size_t LogicalNetwork::InDegree(NodeId node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? 0 : it->second.in.size();
}

const std::vector<LinkId>& LogicalNetwork::OutLinks(NodeId node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? EmptyLinks() : it->second.out;
}

const std::vector<LinkId>& LogicalNetwork::InLinks(NodeId node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? EmptyLinks() : it->second.in;
}

std::vector<NodeId> LogicalNetwork::Successors(NodeId node) const {
  std::vector<NodeId> out;
  for (LinkId link : OutLinks(node)) {
    NodeId target = links_.at(link).end;
    if (std::find(out.begin(), out.end(), target) == out.end()) {
      out.push_back(target);
    }
  }
  return out;
}

std::vector<NodeId> LogicalNetwork::Predecessors(NodeId node) const {
  std::vector<NodeId> out;
  for (LinkId link : InLinks(node)) {
    NodeId source = links_.at(link).start;
    if (std::find(out.begin(), out.end(), source) == out.end()) {
      out.push_back(source);
    }
  }
  return out;
}

std::vector<NodeId> LogicalNetwork::Nodes() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& [id, rec] : nodes_) out.push_back(id);
  return out;
}

std::vector<LinkId> LogicalNetwork::Links() const {
  std::vector<LinkId> out;
  out.reserve(links_.size());
  for (const auto& [id, rec] : links_) out.push_back(id);
  return out;
}

}  // namespace rdfdb::ndm
