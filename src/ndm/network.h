// Network Data Model: directed logical networks.
//
// The paper builds its RDF store on Oracle Spatial's Network Data Model
// (NDM): "RDF graphs are modeled as a directed logical network in NDM",
// with triples' subjects/objects as nodes and predicates as links. This
// module is our NDM — an in-memory directed multigraph keyed by the same
// node/link identifiers stored in the node$/link$ tables, plus the
// analysis functions NDM exposes (see analysis.h).

#ifndef RDFDB_NDM_NETWORK_H_
#define RDFDB_NDM_NETWORK_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace rdfdb::ndm {

/// Node identifier (the RDF layer uses rdf_value$ VALUE_IDs).
using NodeId = int64_t;

/// Link identifier (the RDF layer uses rdf_link$ LINK_IDs).
using LinkId = int64_t;

/// One directed link.
struct Link {
  LinkId id = 0;
  NodeId start = 0;
  NodeId end = 0;
  double cost = 1.0;
  /// Free-form link classification; the RDF layer stores the predicate's
  /// VALUE_ID here so network traversals can filter by property.
  int64_t label = 0;
};

/// Directed logical network (multigraph: parallel links allowed — the RDF
/// store creates "a new link whenever a new triple is inserted").
class LogicalNetwork {
 public:
  explicit LogicalNetwork(std::string name = "rdf_network");

  const std::string& name() const { return name_; }

  // ---- Mutation -------------------------------------------------------

  /// Add a node; idempotent.
  void AddNode(NodeId node);

  /// Add a directed link. Endpoints are added implicitly. Fails with
  /// AlreadyExists if the link id is taken.
  Status AddLink(const Link& link);

  /// Pre-size the node/link maps for an upcoming bulk registration of up
  /// to `extra_nodes` new nodes and `extra_links` new links.
  void ReserveAdditional(size_t extra_nodes, size_t extra_links);

  /// Bulk AddLink: reserves capacity, then registers every link in order
  /// (endpoints created implicitly). Fails on the first duplicate link
  /// id, leaving the earlier links of the batch registered.
  Status AddLinksBulk(const std::vector<Link>& links);

  /// Remove a link. The endpoints stay ("nodes attached to this link are
  /// not removed if there are other links connected to them" — callers
  /// remove orphaned nodes explicitly via RemoveNodeIfIsolated).
  Status RemoveLink(LinkId link);

  /// Remove `node` if it has no in- or out-links; returns true if removed.
  bool RemoveNodeIfIsolated(NodeId node);

  // ---- Introspection --------------------------------------------------

  bool HasNode(NodeId node) const;
  bool HasLink(LinkId link) const;
  const Link* GetLink(LinkId link) const;

  size_t node_count() const { return nodes_.size(); }
  size_t link_count() const { return links_.size(); }

  size_t OutDegree(NodeId node) const;
  size_t InDegree(NodeId node) const;

  /// Out-links leaving `node` (empty for unknown nodes).
  const std::vector<LinkId>& OutLinks(NodeId node) const;

  /// In-links arriving at `node` (empty for unknown nodes).
  const std::vector<LinkId>& InLinks(NodeId node) const;

  /// Distinct successor nodes of `node`.
  std::vector<NodeId> Successors(NodeId node) const;

  /// Distinct predecessor nodes of `node`.
  std::vector<NodeId> Predecessors(NodeId node) const;

  /// All node ids (unordered).
  std::vector<NodeId> Nodes() const;

  /// All link ids (unordered).
  std::vector<LinkId> Links() const;

 private:
  struct NodeRec {
    std::vector<LinkId> out;
    std::vector<LinkId> in;
  };

  std::string name_;
  std::unordered_map<NodeId, NodeRec> nodes_;
  std::unordered_map<LinkId, Link> links_;
};

}  // namespace rdfdb::ndm

#endif  // RDFDB_NDM_NETWORK_H_
