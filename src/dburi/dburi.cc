#include "dburi/dburi.h"

#include "common/string_util.h"

namespace rdfdb::dburi {

std::string DBUri::ToString() const {
  std::string out = "/" + db + "/" + schema + "/" + table;
  if (!key_column.empty()) {
    out += "/ROW[" + key_column + "=" + key_value + "]";
    if (!target_column.empty()) out += "/" + target_column;
  }
  return out;
}

DBUri DBUri::ForRow(std::string db, std::string schema, std::string table,
                    std::string key_column, std::string key_value) {
  DBUri uri;
  uri.db = std::move(db);
  uri.schema = std::move(schema);
  uri.table = std::move(table);
  uri.key_column = std::move(key_column);
  uri.key_value = std::move(key_value);
  return uri;
}

Result<DBUri> Parse(const std::string& text) {
  if (text.empty() || text[0] != '/') {
    return Status::InvalidArgument("DBUri must start with '/': " + text);
  }
  std::vector<std::string> parts = Split(text.substr(1), '/');
  if (parts.size() < 3) {
    return Status::InvalidArgument(
        "DBUri needs at least /db/schema/table: " + text);
  }
  DBUri uri;
  uri.db = parts[0];
  uri.schema = parts[1];
  uri.table = parts[2];
  if (uri.db.empty() || uri.schema.empty() || uri.table.empty()) {
    return Status::InvalidArgument("DBUri has empty component: " + text);
  }
  if (parts.size() == 3) return uri;

  const std::string& row_part = parts[3];
  if (!StartsWith(row_part, "ROW[") || !EndsWith(row_part, "]")) {
    return Status::InvalidArgument("expected ROW[col=val] segment: " + text);
  }
  std::string predicate = row_part.substr(4, row_part.size() - 5);
  size_t eq = predicate.find('=');
  if (eq == std::string::npos || eq == 0 || eq == predicate.size() - 1) {
    return Status::InvalidArgument("malformed ROW predicate: " + text);
  }
  uri.key_column = predicate.substr(0, eq);
  uri.key_value = predicate.substr(eq + 1);

  if (parts.size() == 5) {
    if (parts[4].empty()) {
      return Status::InvalidArgument("empty column selector: " + text);
    }
    uri.target_column = parts[4];
  } else if (parts.size() > 5) {
    return Status::InvalidArgument("too many segments: " + text);
  }
  return uri;
}

bool IsDBUri(const std::string& text) {
  auto parsed = Parse(text);
  return parsed.ok();
}

Result<storage::RowId> Resolver::ResolveRow(const DBUri& uri) const {
  if (ToUpper(uri.db) != ToUpper(db_->name())) {
    return Status::InvalidArgument("DBUri addresses database " + uri.db +
                                   ", resolver is bound to " + db_->name());
  }
  if (!uri.addresses_row()) {
    return Status::InvalidArgument("DBUri does not address a row: " +
                                   uri.ToString());
  }
  const storage::Table* table = db_->GetTable(uri.schema, uri.table);
  if (table == nullptr) {
    return Status::NotFound("table " + uri.schema + "." + uri.table);
  }
  int col = table->schema().ColumnIndex(uri.key_column);
  if (col < 0) {
    return Status::NotFound("column " + uri.key_column + " in " + uri.table);
  }

  // Typed comparison: try numeric first so LINK_ID=2051 matches an INT64
  // cell, falling back to text equality.
  storage::Value key;
  int64_t as_int;
  double as_double;
  if (ParseInt64(uri.key_value, &as_int)) {
    key = storage::Value::Int64(as_int);
  } else if (ParseDouble(uri.key_value, &as_double)) {
    key = storage::Value::Double(as_double);
  } else {
    key = storage::Value::String(uri.key_value);
  }

  // Prefer an index on the key column when one exists.
  for (const std::string& index_name : table->IndexNames()) {
    const storage::Index* index = table->GetIndex(index_name);
    if (index->extractor().description() ==
        "columns(" + std::to_string(col) + ")") {
      std::vector<storage::RowId> ids = index->Find({key});
      if (ids.empty()) {
        return Status::NotFound("no row with " + uri.key_column + "=" +
                                uri.key_value);
      }
      return ids.front();
    }
  }

  storage::RowId found = -1;
  table->Scan([&](storage::RowId id, const storage::Row& row) {
    if (row[static_cast<size_t>(col)] == key) {
      found = id;
      return false;
    }
    return true;
  });
  if (found < 0) {
    return Status::NotFound("no row with " + uri.key_column + "=" +
                            uri.key_value);
  }
  return found;
}

Result<storage::Row> Resolver::FetchRow(const DBUri& uri) const {
  RDFDB_ASSIGN_OR_RETURN(storage::RowId id, ResolveRow(uri));
  const storage::Table* table = db_->GetTable(uri.schema, uri.table);
  const storage::Row* row = table->Get(id);
  if (row == nullptr) return Status::NotFound("row vanished");
  return *row;
}

Result<std::string> Resolver::FetchText(const DBUri& uri) const {
  if (uri.target_column.empty()) {
    return Status::InvalidArgument("DBUri does not address a column: " +
                                   uri.ToString());
  }
  const storage::Table* table = db_->GetTable(uri.schema, uri.table);
  if (table == nullptr) {
    return Status::NotFound("table " + uri.schema + "." + uri.table);
  }
  int col = table->schema().ColumnIndex(uri.target_column);
  if (col < 0) {
    return Status::NotFound("column " + uri.target_column + " in " +
                            uri.table);
  }
  RDFDB_ASSIGN_OR_RETURN(storage::Row row, FetchRow(uri));
  return row[static_cast<size_t>(col)].ToString();
}

}  // namespace rdfdb::dburi
