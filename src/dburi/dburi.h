// DBUri: intra-database URIs, our stand-in for Oracle XML DB's DBUriType.
//
// The paper reifies a triple by generating the resource
//   /ORADB/MDSYS/RDF_LINK$/ROW[LINK_ID=2051]
// — "a URI that points to a set of rows, a single row, or a single column
// in a database". This module provides that: a parsed representation, a
// canonical textual form, and a resolver that dereferences the URI against
// a storage::Database.

#ifndef RDFDB_DBURI_DBURI_H_
#define RDFDB_DBURI_DBURI_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/database.h"

namespace rdfdb::dburi {

/// Parsed DBUri. Forms supported:
///   /<db>/<schema>/<table>                          — whole table
///   /<db>/<schema>/<table>/ROW[<col>=<val>]         — one row
///   /<db>/<schema>/<table>/ROW[<col>=<val>]/<col2>  — one column of a row
struct DBUri {
  std::string db;         ///< database name, e.g. "ORADB"
  std::string schema;     ///< e.g. "MDSYS"
  std::string table;      ///< e.g. "RDF_LINK$"
  std::string key_column; ///< predicate column, empty for whole-table form
  std::string key_value;  ///< predicate value text
  std::string target_column;  ///< optional trailing column selector

  bool addresses_row() const { return !key_column.empty(); }

  /// Canonical textual form (round-trips through Parse).
  std::string ToString() const;

  /// Build the row-addressing form used for reification.
  static DBUri ForRow(std::string db, std::string schema, std::string table,
                      std::string key_column, std::string key_value);
};

/// Parse the textual form. Returns InvalidArgument on malformed input.
Result<DBUri> Parse(const std::string& text);

/// True if `text` looks like a DBUri (starts with "/<db>/" and names at
/// least a schema and table). Cheap syntactic test used by the RDF layer
/// to recognize reification resources.
bool IsDBUri(const std::string& text);

/// Dereferences DBUris against a Database.
class Resolver {
 public:
  explicit Resolver(const storage::Database* db) : db_(db) {}

  /// Resolve a row-addressing URI to its row id. NotFound if the table or
  /// row does not exist; InvalidArgument if the URI form or database name
  /// does not match.
  Result<storage::RowId> ResolveRow(const DBUri& uri) const;

  /// Resolve and fetch the row's cells.
  Result<storage::Row> FetchRow(const DBUri& uri) const;

  /// Resolve a column-addressing URI to the cell's text.
  Result<std::string> FetchText(const DBUri& uri) const;

 private:
  const storage::Database* db_;
};

}  // namespace rdfdb::dburi

#endif  // RDFDB_DBURI_DBURI_H_
