// The paper's Intelligence Community scenario (Figures 2, 6, 7, 8):
// CIA / DHS / FBI models in one central schema, plus the ic.address
// table joined against SDO_RDF_MATCH output.

#ifndef RDFDB_GEN_IC_DATASET_H_
#define RDFDB_GEN_IC_DATASET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/sparql_pattern.h"
#include "rdf/app_table.h"
#include "rdf/rdf_store.h"

namespace rdfdb::gen {

/// Namespaces used by the scenario. (The paper abbreviates gov: and id:
/// "for simplicity" but notes full namespaces must be used on insert.)
inline constexpr const char* kGovNs = "http://www.us.gov#";
inline constexpr const char* kIdNs = "http://www.us.id#";

/// Built scenario handles.
struct IcScenario {
  std::vector<std::string> model_names;  ///< {"cia", "dhs", "fbi"}
  query::AliasList aliases;              ///< gov: and id:
  storage::Table* address_table = nullptr;  ///< IC.ADDRESS (NAME, ADDRESS)
  /// LINK_ID of the CIA's <gov:files, gov:terrorSuspect, id:JohnDoe>
  /// triple (the paper's running reification example, RDF_T_ID 2051).
  rdf::LinkId john_doe_link_id = 0;
};

/// Create the three models, their application tables (ciadata / dhsdata /
/// fbidata), insert the Figure 2 triples, and build IC.ADDRESS.
Result<IcScenario> BuildIcScenario(rdf::RdfStore* store);

}  // namespace rdfdb::gen

#endif  // RDFDB_GEN_IC_DATASET_H_
