#include "gen/workload.h"

#include "rdf/vocab.h"

namespace rdfdb::gen {

namespace {
using rdf::ApplicationTable;
using rdf::SdoRdfTripleS;
}  // namespace

Result<OracleLoadResult> LoadUniProtIntoOracle(
    rdf::RdfStore* store, const std::string& model_name,
    const std::string& app_table, const UniProtDataset& dataset,
    const OracleLoadOptions& options) {
  OracleLoadResult result;
  RDFDB_ASSIGN_OR_RETURN(
      ApplicationTable table,
      ApplicationTable::Create(store, "UP", app_table));
  RDFDB_ASSIGN_OR_RETURN(
      result.model,
      store->CreateRdfModel(model_name, app_table, "triple", "UP"));

  int64_t next_id = 1;
  for (const rdf::NTriple& t : dataset.triples) {
    RDFDB_ASSIGN_OR_RETURN(
        SdoRdfTripleS triple,
        store->InsertParsedTriple(result.model.model_id, t.subject,
                                  t.predicate, t.object));
    RDFDB_RETURN_NOT_OK(table.Insert(next_id++, triple));
    ++result.base_triples;
  }

  for (const ReifiedStatement& r : dataset.reified) {
    // The base triple already exists (Direct); the assertion constructor
    // reifies it (if needed) and stores the curator assertion.
    RDFDB_ASSIGN_OR_RETURN(
        SdoRdfTripleS base,
        store->InsertParsedTriple(result.model.model_id, r.base.subject,
                                  r.base.predicate, r.base.object));
    RDFDB_ASSIGN_OR_RETURN(
        SdoRdfTripleS assertion,
        store->AssertAboutTriple(model_name, r.curator_uri, kUpCuratedBy,
                                 base.rdf_t_id()));
    RDFDB_RETURN_NOT_OK(table.Insert(next_id++, assertion));
    ++result.reified;
  }

  if (options.create_subject_index) {
    RDFDB_RETURN_NOT_OK(table.CreateSubjectIndex());
  }
  if (options.create_property_index) {
    RDFDB_RETURN_NOT_OK(table.CreatePropertyIndex());
  }
  if (options.create_object_index) {
    RDFDB_RETURN_NOT_OK(table.CreateObjectIndex());
  }
  result.app_rows = table.row_count();
  return result;
}

Status LoadUniProtIntoJena2(baseline::Jena2Store* jena,
                            const std::string& model_name,
                            const UniProtDataset& dataset) {
  RDFDB_RETURN_NOT_OK(jena->CreateModel(model_name));
  for (const rdf::NTriple& t : dataset.triples) {
    RDFDB_RETURN_NOT_OK(jena->Add(model_name, t));
  }
  size_t reif_id = 1;
  for (const ReifiedStatement& r : dataset.reified) {
    std::string stmt_uri =
        "<urn:reif:stmt" + std::to_string(reif_id++) + ">";
    Status st = jena->AddReified(model_name, stmt_uri, r.base);
    if (!st.ok() && !st.IsAlreadyExists()) return st;
    rdf::NTriple assertion{rdf::Term::Uri(r.curator_uri),
                           rdf::Term::Uri(kUpCuratedBy),
                           rdf::Term::Uri(stmt_uri.substr(
                               1, stmt_uri.size() - 2))};
    RDFDB_RETURN_NOT_OK(jena->Add(model_name, assertion));
  }
  return Status::OK();
}

Status LoadUniProtIntoJena1(baseline::Jena1Store* jena,
                            const UniProtDataset& dataset) {
  for (const rdf::NTriple& t : dataset.triples) {
    RDFDB_RETURN_NOT_OK(jena->Add(t));
  }
  size_t reif_id = 1;
  for (const ReifiedStatement& r : dataset.reified) {
    rdf::Term reifier =
        rdf::Term::Uri("urn:reif:stmt" + std::to_string(reif_id++));
    rdf::Term type = rdf::Term::Uri(std::string(rdf::kRdfType));
    rdf::Term statement = rdf::Term::Uri(std::string(rdf::kRdfStatement));
    RDFDB_RETURN_NOT_OK(jena->Add({reifier, type, statement}));
    RDFDB_RETURN_NOT_OK(jena->Add(
        {reifier, rdf::Term::Uri(std::string(rdf::kRdfSubject)),
         r.base.subject}));
    RDFDB_RETURN_NOT_OK(jena->Add(
        {reifier, rdf::Term::Uri(std::string(rdf::kRdfPredicate)),
         r.base.predicate}));
    RDFDB_RETURN_NOT_OK(jena->Add(
        {reifier, rdf::Term::Uri(std::string(rdf::kRdfObject)),
         r.base.object}));
    RDFDB_RETURN_NOT_OK(jena->Add({rdf::Term::Uri(r.curator_uri),
                                   rdf::Term::Uri(kUpCuratedBy), reifier}));
  }
  return Status::OK();
}

}  // namespace rdfdb::gen
