// Synthetic UniProt-like RDF dataset generator.
//
// The paper evaluates on UniProt (Universal Protein Resource) RDF dumps
// of 10 k / 100 k / 1 M / 5 M triples with ~4.9 % reified statements
// (247 002 of 5 M) and a probe subject returning 24 rows
// (urn:lsid:uniprot.org:uniprot:P93259). We do not have the 2005 dump, so
// this generator synthesizes data with the same shape: protein records
// keyed by urn:lsid accession URIs, rdfs:seeAlso cross-references into
// shared smart/pfam/prosite pools, typed and language-tagged literals,
// blank-node annotations, rdf:Bag keyword containers, and a configurable
// reified fraction — including the paper's exact true/false probe
// statements.

#ifndef RDFDB_GEN_UNIPROT_GEN_H_
#define RDFDB_GEN_UNIPROT_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/ntriples.h"

namespace rdfdb::gen {

/// UniProt vocabulary used by the generator.
inline constexpr const char* kUpNs = "http://purl.uniprot.org/core/";
inline constexpr const char* kUpProtein =
    "http://purl.uniprot.org/core/Protein";
inline constexpr const char* kUpMnemonic =
    "http://purl.uniprot.org/core/mnemonic";
inline constexpr const char* kUpOrganism =
    "http://purl.uniprot.org/core/organism";
inline constexpr const char* kUpCreated =
    "http://purl.uniprot.org/core/created";
inline constexpr const char* kUpSequenceLength =
    "http://purl.uniprot.org/core/sequenceLength";
inline constexpr const char* kUpCitation =
    "http://purl.uniprot.org/core/citation";
inline constexpr const char* kUpAnnotation =
    "http://purl.uniprot.org/core/annotation";
inline constexpr const char* kUpAnnotationClass =
    "http://purl.uniprot.org/core/Annotation";
inline constexpr const char* kUpKeywords =
    "http://purl.uniprot.org/core/keywords";
inline constexpr const char* kUpCuratedBy =
    "http://purl.uniprot.org/core/curatedBy";

/// The paper's probe subject and reified cross-reference (Figures 10/11).
inline constexpr const char* kProbeSubject =
    "urn:lsid:uniprot.org:uniprot:P93259";
inline constexpr const char* kProbeReifiedTarget =
    "urn:lsid:uniprot.org:smart:SM00101";
inline constexpr const char* kProbeUnreifiedTarget =
    "urn:lsid:uniprot.org:pfam:PF99999";

/// Generator parameters.
struct UniProtOptions {
  size_t target_triples = 10000;   ///< approximate base-triple count
  double reified_fraction = 0.05;  ///< fraction of statements reified
  uint64_t seed = 42;              ///< RNG seed (fully deterministic)
};

/// One statement that gets reified, plus the curator who asserts it
/// (<curator, up:curatedBy, reified-statement>).
struct ReifiedStatement {
  rdf::NTriple base;
  std::string curator_uri;
};

/// Generated dataset.
struct UniProtDataset {
  std::vector<rdf::NTriple> triples;      ///< base statements (facts)
  std::vector<ReifiedStatement> reified;  ///< statements to reify
  std::string probe_subject;              ///< returns exactly 24 rows
  rdf::NTriple reified_probe;             ///< IS_REIFIED -> true
  rdf::NTriple unreified_probe;           ///< IS_REIFIED -> false

  size_t triple_count() const { return triples.size(); }
  size_t reified_count() const { return reified.size(); }
};

/// Generate a dataset. Deterministic for a given options struct.
UniProtDataset GenerateUniProt(const UniProtOptions& options);

}  // namespace rdfdb::gen

#endif  // RDFDB_GEN_UNIPROT_GEN_H_
