// Workload loaders: push a generated UniProt dataset into the systems
// under test (the RDF object store with its application table, and the
// Jena2 baseline), mirroring §7.1's experimental setup.

#ifndef RDFDB_GEN_WORKLOAD_H_
#define RDFDB_GEN_WORKLOAD_H_

#include <memory>
#include <string>

#include "baseline/jena1_store.h"
#include "baseline/jena2_store.h"
#include "common/result.h"
#include "gen/uniprot_gen.h"
#include "rdf/app_table.h"
#include "rdf/rdf_store.h"

namespace rdfdb::gen {

/// Loading options for the RDF object store.
struct OracleLoadOptions {
  bool create_subject_index = true;   ///< §7.2's up*_sub_fbidx
  bool create_property_index = false;
  bool create_object_index = false;
};

/// Outcome of loading into the RDF object store.
struct OracleLoadResult {
  rdf::ModelInfo model;
  size_t app_rows = 0;       ///< rows in the application table
  size_t base_triples = 0;   ///< direct statements inserted
  size_t reified = 0;        ///< streamlined reifications performed
};

/// Create `app_table` + model `model_name`, insert every dataset triple
/// through the SDO_RDF_TRIPLE_S constructor path, reify the dataset's
/// reified statements with the streamlined representation, and assert
/// <curator, up:curatedBy, statement> for each.
Result<OracleLoadResult> LoadUniProtIntoOracle(
    rdf::RdfStore* store, const std::string& model_name,
    const std::string& app_table, const UniProtDataset& dataset,
    const OracleLoadOptions& options = {});

/// Create Jena2 model `model_name` and load the dataset: plain adds, one
/// complete property-class row per reified statement, and the curator
/// assertions.
Status LoadUniProtIntoJena2(baseline::Jena2Store* jena,
                            const std::string& model_name,
                            const UniProtDataset& dataset);

/// Load the dataset into a Jena1-style normalized store. Jena1 has no
/// reification optimization, so each reified statement is stored as the
/// full four-triple quad plus the curator assertion (§3.1).
Status LoadUniProtIntoJena1(baseline::Jena1Store* jena,
                            const UniProtDataset& dataset);

}  // namespace rdfdb::gen

#endif  // RDFDB_GEN_WORKLOAD_H_
