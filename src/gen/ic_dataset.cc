#include "gen/ic_dataset.h"

namespace rdfdb::gen {

namespace {

using rdf::ApplicationTable;
using rdf::RdfStore;
using rdf::SdoRdfTripleS;

std::string Gov(const std::string& local) { return kGovNs + local; }
std::string Id(const std::string& local) { return kIdNs + local; }

}  // namespace

Result<IcScenario> BuildIcScenario(RdfStore* store) {
  IcScenario scenario;
  scenario.model_names = {"cia", "dhs", "fbi"};
  scenario.aliases = {{"gov", kGovNs}, {"id", kIdNs}};

  struct Spec {
    const char* model;
    const char* table;
  };
  const Spec specs[] = {{"cia", "ciadata"},
                        {"dhs", "dhsdata"},
                        {"fbi", "fbidata"}};
  for (const Spec& spec : specs) {
    RDFDB_ASSIGN_OR_RETURN(
        ApplicationTable table,
        ApplicationTable::Create(store, "IC", spec.table));
    (void)table;
    RDFDB_ASSIGN_OR_RETURN(
        rdf::ModelInfo model,
        store->CreateRdfModel(spec.model, spec.table, "triple", "IC"));
    (void)model;
  }

  auto insert = [&](const char* model, const char* table, int64_t id,
                    const std::string& s, const std::string& p,
                    const std::string& o) -> Result<SdoRdfTripleS> {
    RDFDB_ASSIGN_OR_RETURN(SdoRdfTripleS triple,
                           store->InsertTriple(model, s, p, o));
    RDFDB_ASSIGN_OR_RETURN(ApplicationTable app,
                           ApplicationTable::Attach(store, "IC", table));
    RDFDB_RETURN_NOT_OK(app.Insert(id, triple));
    return triple;
  };

  // Figure 2's data.
  RDFDB_ASSIGN_OR_RETURN(
      SdoRdfTripleS john,
      insert("cia", "ciadata", 1, Gov("files"), Gov("terrorSuspect"),
             Id("JohnDoe")));
  scenario.john_doe_link_id = john.rdf_t_id();
  RDFDB_ASSIGN_OR_RETURN(
      SdoRdfTripleS jane,
      insert("cia", "ciadata", 2, Gov("files"), Gov("terrorSuspect"),
             Id("JaneDoe")));
  (void)jane;

  RDFDB_ASSIGN_OR_RETURN(
      SdoRdfTripleS jim,
      insert("dhs", "dhsdata", 1, Id("JimDoe"), Gov("terrorAction"),
             "bombing"));
  (void)jim;
  RDFDB_ASSIGN_OR_RETURN(
      SdoRdfTripleS dhs_john,
      insert("dhs", "dhsdata", 2, Gov("files"), Gov("terrorSuspect"),
             Id("JohnDoe")));
  (void)dhs_john;

  RDFDB_ASSIGN_OR_RETURN(
      SdoRdfTripleS entered,
      insert("fbi", "fbidata", 1, Id("JohnDoe"), Gov("enteredCountry"),
             "June-20-2000"));
  (void)entered;
  RDFDB_ASSIGN_OR_RETURN(
      SdoRdfTripleS fbi_john,
      insert("fbi", "fbidata", 2, Gov("files"), Gov("terrorSuspect"),
             Id("JohnDoe")));
  (void)fbi_john;

  // IC.ADDRESS: the relational table Figure 8 joins against.
  auto address = store->database().CreateTable(
      "IC", "ADDRESS",
      storage::Schema({
          {"NAME", storage::ValueType::kString, false},
          {"ADDRESS", storage::ValueType::kString, false},
      }));
  if (!address.ok()) return address.status();
  scenario.address_table = *address;
  RDFDB_RETURN_NOT_OK((*address)
                          ->CreateIndex("addr_name_idx",
                                        storage::IndexKind::kHash,
                                        storage::KeyExtractor::Columns({0}),
                                        /*unique=*/true)
                          );
  const std::pair<const char*, const char*> rows[] = {
      {"JohnDoe", "Brooklyn, NY"},
      {"JaneDoe", "Brooklyn, NY"},
      {"JimDoe", "Trenton, NJ"},
  };
  for (const auto& [name, addr] : rows) {
    auto ins = (*address)
                   ->Insert({storage::Value::String(Id(name)),
                             storage::Value::String(addr)});
    if (!ins.ok()) return ins.status();
  }
  return scenario;
}

}  // namespace rdfdb::gen
