#include "gen/uniprot_gen.h"

#include <cstdio>

#include "common/random.h"
#include "rdf/vocab.h"

namespace rdfdb::gen {

namespace {

using rdf::NTriple;
using rdf::Term;

std::string Accession(size_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "P%05zu", i % 100000);
  std::string suffix = i >= 100000 ? std::to_string(i / 100000) : "";
  return std::string("urn:lsid:uniprot.org:uniprot:") + buf + suffix;
}

std::string CrossRef(Random* rng) {
  static const char* kFamilies[] = {"smart:SM", "pfam:PF", "prosite:PS"};
  const char* family = kFamilies[rng->Uniform(3)];
  // Skewed pool of ~5000 targets: popular domains are referenced by many
  // proteins, matching real cross-reference reuse.
  uint64_t id = rng->Skewed(5000);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%05llu",
                static_cast<unsigned long long>(id));
  return "urn:lsid:uniprot.org:" + std::string(family) + buf;
}

std::string Citation(Random* rng) {
  return "urn:lsid:uniprot.org:citations:" +
         std::to_string(1000000 + rng->Skewed(20000));
}

std::string Keyword(Random* rng) {
  return "http://purl.uniprot.org/keywords/" +
         std::to_string(rng->Skewed(400));
}

std::string Curator(Random* rng) {
  return "http://purl.uniprot.org/curators/C" +
         std::to_string(rng->Uniform(50));
}

NTriple Make(Term s, const char* p, Term o) {
  return NTriple{std::move(s), Term::Uri(p), std::move(o)};
}

}  // namespace

UniProtDataset GenerateUniProt(const UniProtOptions& options) {
  UniProtDataset dataset;
  Random rng(options.seed);
  dataset.probe_subject = kProbeSubject;

  std::vector<NTriple> see_also_pool;  // candidates for reification

  // --- The probe protein: exactly 24 statements, fixed content ---------
  {
    Term s = Term::Uri(kProbeSubject);
    auto& t = dataset.triples;
    t.push_back(Make(s, std::string(rdf::kRdfType).c_str(),
                     Term::Uri(kUpProtein)));
    t.push_back(Make(s, kUpMnemonic, Term::PlainLiteral("PROBE_HUMAN")));
    t.push_back(Make(s, std::string(rdf::kRdfsLabel).c_str(),
                     Term::PlainLiteralLang("Probe protein", "en")));
    t.push_back(Make(s, kUpOrganism,
                     Term::TypedLiteral("9606", std::string(rdf::kXsdInt))));
    t.push_back(Make(s, kUpCreated,
                     Term::TypedLiteral("2005-03-01",
                                        std::string(rdf::kXsdDate))));
    t.push_back(Make(
        s, kUpSequenceLength,
        Term::TypedLiteral("472", std::string(rdf::kXsdInt))));
    // The reified probe statement (Figure 11's true case).
    dataset.reified_probe =
        Make(s, std::string(rdf::kRdfsSeeAlso).c_str(),
             Term::Uri(kProbeReifiedTarget));
    t.push_back(dataset.reified_probe);
    dataset.reified.push_back(
        ReifiedStatement{dataset.reified_probe, Curator(&rng)});
    // The false-probe statement: present but never reified.
    dataset.unreified_probe =
        Make(s, std::string(rdf::kRdfsSeeAlso).c_str(),
             Term::Uri(kProbeUnreifiedTarget));
    t.push_back(dataset.unreified_probe);
    // Fill the remaining 16 statements with fixed cross-references and
    // citations so the subject query returns exactly 24 rows.
    for (int i = 0; i < 10; ++i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "PS%05d", 10000 + i);
      t.push_back(Make(s, std::string(rdf::kRdfsSeeAlso).c_str(),
                       Term::Uri("urn:lsid:uniprot.org:prosite:" +
                                 std::string(buf))));
    }
    for (int i = 0; i < 6; ++i) {
      t.push_back(Make(s, kUpCitation,
                       Term::Uri("urn:lsid:uniprot.org:citations:" +
                                 std::to_string(7000000 + i))));
    }
  }
  const size_t probe_triples = dataset.triples.size();  // == 24

  // --- Bulk proteins -----------------------------------------------------
  size_t protein_index = 1;
  while (dataset.triples.size() < options.target_triples) {
    Term s = Term::Uri(Accession(protein_index));
    auto& t = dataset.triples;

    t.push_back(Make(s, std::string(rdf::kRdfType).c_str(),
                     Term::Uri(kUpProtein)));
    t.push_back(Make(s, kUpMnemonic,
                     Term::PlainLiteral(
                         "Q" + std::to_string(protein_index) + "_" +
                         rng.Identifier(5))));
    t.push_back(Make(s, std::string(rdf::kRdfsLabel).c_str(),
                     Term::PlainLiteralLang(
                         "Protein " + std::to_string(protein_index), "en")));
    t.push_back(Make(
        s, kUpOrganism,
        Term::TypedLiteral(std::to_string(9000 + rng.Skewed(2000)),
                           std::string(rdf::kXsdInt))));
    t.push_back(Make(
        s, kUpSequenceLength,
        Term::TypedLiteral(std::to_string(rng.UniformRange(40, 4000)),
                           std::string(rdf::kXsdInt))));

    // Cross-references; each is a reification candidate.
    size_t num_refs = 2 + rng.Uniform(6);
    for (size_t r = 0; r < num_refs; ++r) {
      NTriple ref = Make(s, std::string(rdf::kRdfsSeeAlso).c_str(),
                         Term::Uri(CrossRef(&rng)));
      t.push_back(ref);
      see_also_pool.push_back(std::move(ref));
    }

    // Citations from a shared pool (value reuse across proteins).
    size_t num_cites = 1 + rng.Uniform(3);
    for (size_t c = 0; c < num_cites; ++c) {
      t.push_back(Make(s, kUpCitation, Term::Uri(Citation(&rng))));
    }

    // One blank-node annotation per protein.
    Term ann = Term::BlankNode("ann" + std::to_string(protein_index));
    t.push_back(Make(s, kUpAnnotation, ann));
    t.push_back(Make(ann, std::string(rdf::kRdfType).c_str(),
                     Term::Uri(kUpAnnotationClass)));
    t.push_back(Make(
        ann, "http://www.w3.org/2000/01/rdf-schema#comment",
        Term::PlainLiteral("annotation " + rng.Identifier(12))));

    // Keyword container (rdf:Bag with rdf:_n membership properties).
    if (rng.Bernoulli(0.5)) {
      Term bag = Term::BlankNode("kw" + std::to_string(protein_index));
      t.push_back(Make(s, kUpKeywords, bag));
      t.push_back(Make(bag, std::string(rdf::kRdfType).c_str(),
                       Term::Uri(std::string(rdf::kRdfBag))));
      size_t members = 1 + rng.Uniform(3);
      for (size_t m = 1; m <= members; ++m) {
        std::string member_prop =
            std::string(rdf::kRdfNs) + "_" + std::to_string(m);
        t.push_back(Make(bag, member_prop.c_str(),
                         Term::Uri(Keyword(&rng))));
      }
    }
    ++protein_index;
  }

  // --- Reified statements -------------------------------------------------
  // Target count scales with the base size (the paper: 659 of 10 k,
  // 247 002 of 5 M). One probe reification already exists.
  size_t target_reified = static_cast<size_t>(
      options.reified_fraction *
      static_cast<double>(dataset.triples.size()));
  if (target_reified > 0) --target_reified;  // account for the probe
  if (target_reified > see_also_pool.size()) {
    target_reified = see_also_pool.size();
  }
  for (size_t i = 0; i < target_reified; ++i) {
    // Evenly-spaced distinct picks so reified statements spread across
    // proteins rather than clustering at the front.
    size_t idx = i * see_also_pool.size() / target_reified;
    dataset.reified.push_back(
        ReifiedStatement{see_also_pool[idx], Curator(&rng)});
  }

  (void)probe_triples;
  return dataset;
}

}  // namespace rdfdb::gen
