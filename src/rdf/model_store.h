// ModelStore: binding over the central-schema rdf_model$ table.
//
// A model (RDF graph) registers the owning application table and triple
// column, receives a MODEL_ID that logically partitions rdf_link$, and
// gets a per-model view rdfm_<model_name> "accessible only to the owner
// of the model and users with SELECT privileges on the model".

#ifndef RDFDB_RDF_MODEL_STORE_H_
#define RDFDB_RDF_MODEL_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/database.h"

namespace rdfdb::rdf {

/// MODEL_ID type.
using ModelId = int64_t;

/// Registered model metadata.
struct ModelInfo {
  ModelId model_id = 0;
  std::string model_name;
  std::string app_table;    ///< user application table name
  std::string app_column;   ///< SDO_RDF_TRIPLE_S column in that table
  std::string owner;        ///< creating user
};

/// Model registry over MDSYS.RDF_MODEL$.
class ModelStore {
 public:
  explicit ModelStore(storage::Database* db);

  /// Create a model and its rdfm_<name> view over rdf_link$.
  /// `link_table` is the rdf_link$ table the view filters;
  /// `model_column` is its MODEL_ID column position.
  Result<ModelInfo> CreateModel(const std::string& model_name,
                                const std::string& app_table,
                                const std::string& app_column,
                                const std::string& owner,
                                const storage::Table* link_table,
                                size_t model_column);

  /// Model id by (case-insensitive) name.
  Result<ModelId> GetModelId(const std::string& model_name) const;

  /// Full metadata by name.
  Result<ModelInfo> GetModel(const std::string& model_name) const;

  /// Metadata by id.
  Result<ModelInfo> GetModelById(ModelId model_id) const;

  /// Remove the registry row and the per-model view. (Triples are
  /// removed by the RdfStore, which owns the LinkStore.)
  Status DropModel(const std::string& model_name);

  /// Names of all models, sorted.
  std::vector<std::string> ModelNames() const;

  /// Per-model view name: "rdfm_" + lower(model_name).
  static std::string ViewNameFor(const std::string& model_name);

 private:
  storage::Database* db_;
  storage::Table* models_;  // MDSYS.RDF_MODEL$
  storage::Sequence* model_seq_;
};

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_MODEL_STORE_H_
