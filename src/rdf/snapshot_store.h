// SnapshotRdfStore: lock-free snapshot reads over the RDF store.
//
// The ConcurrentRdfStore facade serializes every read against every
// write with one shared_mutex, so a bulk load stalls all readers for
// its whole duration. This store removes the reader-side lock
// entirely: the (single, internally serialized) writer batches
// mutations against the live RdfStore and, at each publish boundary,
// snapshots the store's read state into an immutable StoreVersion —
// the copy-on-write per-model quad caches, a model-name map, the
// lock-free term dictionary view, and the pre-resolved reification
// vocabulary ids — and swaps it in behind one atomic pointer.
//
// Readers pin an epoch (one CAS on an idle per-reader slot), load the
// current version pointer, and run every lookup — IS_TRIPLE,
// IS_REIFIED, GET_TRIPLE_ID, stats, and full SDO_RDF_MATCH through the
// compiled executor's leaf scans — against that frozen object with
// zero locks and zero per-row atomics. Superseded versions go onto an
// epoch-stamped retire list and are freed once the oldest pinned
// reader has moved past them (rdf/epoch.h has the full memory-ordering
// argument).
//
// Consistency: writers serialize among themselves on writer_mu_; a
// publish happens inside the same critical section as the mutations it
// covers, so a Snapshot() taken after a mutation call returns always
// sees that mutation (read-your-writes), and every snapshot is a
// point-in-time transaction-consistent view (never a partial batch).

#ifndef RDFDB_RDF_SNAPSHOT_STORE_H_
#define RDFDB_RDF_SNAPSHOT_STORE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/epoch.h"
#include "rdf/rdf_store.h"
#include "rdf/store_view.h"
#include "rdf/term_dict.h"

namespace rdfdb::rdf {

class SnapshotRdfStore;

/// One immutable published version of the store's read state. All
/// methods are const, touch no locks and no shared mutable state, and
/// mirror the corresponding RdfStore reads exactly (same results, same
/// error texts) — the differential tests rely on that.
class StoreVersion : public StoreView {
 public:
  StoreVersion(const StoreVersion&) = delete;
  StoreVersion& operator=(const StoreVersion&) = delete;

  // ---- StoreView --------------------------------------------------------

  Result<ModelId> GetModelId(const std::string& model_name) const override;
  std::optional<ValueId> LookupValue(const Term& term) const override;
  Result<Term> TermForValueId(ValueId value_id) const override;
  LinkStore::LeafScan Leaf(ModelId model_id) const override;
  void MatchEachIds(ModelId model_id, std::optional<ValueId> s,
                    std::optional<ValueId> p, std::optional<ValueId> canon_o,
                    const std::function<bool(ValueId, ValueId, ValueId,
                                             ValueId)>& fn) const override;
  obs::StoreMetrics* metrics() const override { return metrics_; }
  obs::SlowQueryLog* slow_query_log() const override {
    return slow_query_log_;
  }
  obs::Timeline* timeline() const override { return timeline_; }

  // ---- Point reads (RdfStore read-API mirrors) --------------------------

  Result<bool> IsTriple(const std::string& model_name,
                        const std::string& subject,
                        const std::string& property,
                        const std::string& object) const;

  Result<bool> IsReified(const std::string& model_name,
                         const std::string& subject,
                         const std::string& property,
                         const std::string& object) const;

  Result<LinkId> GetTripleId(const std::string& model_name,
                             const std::string& subject,
                             const std::string& property,
                             const std::string& object) const;

  Result<bool> IsLinkReified(ModelId model_id, LinkId link_id) const;

  Result<RdfStore::ModelStats> GetModelStats(
      const std::string& model_name,
      const RdfStore::ModelStatsOptions& options = {}) const;

  Result<SdoRdfTriple> ResolveTriple(LinkId rdf_t_id) const;

  /// Names of all models, sorted.
  const std::vector<std::string>& ModelNames() const { return model_names_; }

  /// Triples in one model (0 when the model is unknown or empty).
  size_t TripleCount(ModelId model_id) const;

  /// Live triples across all models (tombstoned quads excluded).
  size_t TotalTripleCount() const;

  /// Publish sequence number (1 = the initial empty version).
  uint64_t sequence() const { return seq_; }

 private:
  friend class SnapshotRdfStore;
  StoreVersion() = default;

  const LinkStore::ModelIdCache* CacheFor(ModelId model_id) const {
    auto it = caches_.find(model_id);
    return it == caches_.end() ? nullptr : it->second.get();
  }

  /// LookupTerm mirror: blank nodes resolve through the model-scoped
  /// blank table.
  std::optional<ValueId> LookupTermId(ModelId model_id,
                                      const Term& term) const;

  std::unordered_map<int64_t, std::shared_ptr<const LinkStore::ModelIdCache>>
      caches_;
  std::unordered_map<std::string, ModelId> models_by_lower_name_;
  std::vector<std::string> model_names_;  ///< sorted, original case
  const TermDict* dict_ = nullptr;        ///< owned by the SnapshotRdfStore
  std::optional<ValueId> reif_type_id_;   ///< rdf:type, if interned
  std::optional<ValueId> reif_stmt_id_;   ///< rdf:Statement, if interned
  std::string db_name_;
  obs::StoreMetrics* metrics_ = nullptr;
  obs::SlowQueryLog* slow_query_log_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
  uint64_t seq_ = 0;
};

/// MVCC-lite store: one internally-serialized writer, lock-free
/// snapshot readers. Safe to call from any thread.
class SnapshotRdfStore {
 public:
  /// Publishes an initial (empty) version so Snapshot() never observes
  /// a null pointer.
  SnapshotRdfStore();

  SnapshotRdfStore(const SnapshotRdfStore&) = delete;
  SnapshotRdfStore& operator=(const SnapshotRdfStore&) = delete;

  /// A pinned snapshot: keeps one published version (and its epoch
  /// slot) alive for the pin's lifetime. Cheap to take; hold only for
  /// the duration of a read, since a long-lived pin delays version
  /// reclamation (visible as rdfdb_oldest_pinned_epoch_lag).
  class ReadPin {
   public:
    ReadPin(ReadPin&&) noexcept = default;
    ReadPin& operator=(ReadPin&&) noexcept = default;
    ReadPin(const ReadPin&) = delete;
    ReadPin& operator=(const ReadPin&) = delete;

    const StoreVersion& view() const { return *version_; }
    const StoreVersion* operator->() const { return version_; }
    const StoreVersion& operator*() const { return *version_; }

   private:
    friend class SnapshotRdfStore;
    ReadPin(EpochGc::Pin pin, const StoreVersion* version)
        : pin_(std::move(pin)), version_(version) {}
    EpochGc::Pin pin_;
    const StoreVersion* version_;
  };

  /// Pin the current version. Lock-free (one CAS, no mutex, no
  /// reference-count contention).
  ReadPin Snapshot() const {
    // Pin first, then load: the version read here cannot be retired
    // before the pin's epoch, so it stays alive while pinned.
    EpochGc::Pin pin = gc_.Enter();
    const StoreVersion* version = current_.load(std::memory_order_acquire);
    return ReadPin(std::move(pin), version);
  }

  // ---- Mutations (writer lock; each publishes a new version) ------------

  Result<ModelInfo> CreateRdfModel(const std::string& model_name,
                                   const std::string& app_table,
                                   const std::string& app_column,
                                   const std::string& owner = "");
  Status DropRdfModel(const std::string& model_name);
  Result<SdoRdfTripleS> InsertTriple(const std::string& model_name,
                                     const std::string& subject,
                                     const std::string& property,
                                     const std::string& object);
  Status DeleteTriple(const std::string& model_name,
                      const std::string& subject,
                      const std::string& property,
                      const std::string& object);
  Result<SdoRdfTripleS> ReifyTriple(const std::string& model_name,
                                    LinkId rdf_t_id);
  Result<SdoRdfTripleS> AssertAboutTriple(const std::string& model_name,
                                          const std::string& subject,
                                          const std::string& property,
                                          LinkId rdf_t_id);
  Result<SdoRdfTripleS> AssertImplied(const std::string& model_name,
                                      const std::string& reif_sub,
                                      const std::string& reif_prop,
                                      const std::string& subject,
                                      const std::string& property,
                                      const std::string& object);

  /// Run a batch of mutations against the live store under the writer
  /// lock, then publish ONE version covering all of them — the bulk
  /// load path (publishing per-chunk instead of per-triple). `fn` takes
  /// `RdfStore&` and returns void or Status; a publish still happens if
  /// it fails partway, so readers converge on whatever state it left.
  template <typename Fn>
  Status Apply(Fn&& fn) {
    std::lock_guard<std::mutex> lock(writer_mu_);
    Status status = Status::OK();
    if constexpr (std::is_void_v<decltype(fn(std::declval<RdfStore&>()))>) {
      fn(store_);
    } else {
      status = fn(store_);
    }
    Status published = PublishLocked();
    return status.ok() ? published : status;
  }

  // ---- Convenience pinned reads -----------------------------------------
  //
  // One-shot reads that pin, read, and unpin. Loops should take one
  // Snapshot() and issue every probe against it instead.

  Result<bool> IsTriple(const std::string& model_name,
                        const std::string& subject,
                        const std::string& property,
                        const std::string& object) const {
    return Snapshot()->IsTriple(model_name, subject, property, object);
  }
  Result<bool> IsReified(const std::string& model_name,
                         const std::string& subject,
                         const std::string& property,
                         const std::string& object) const {
    return Snapshot()->IsReified(model_name, subject, property, object);
  }
  Result<LinkId> GetTripleId(const std::string& model_name,
                             const std::string& subject,
                             const std::string& property,
                             const std::string& object) const {
    return Snapshot()->GetTripleId(model_name, subject, property, object);
  }
  Result<ModelId> GetModelId(const std::string& model_name) const {
    return Snapshot()->GetModelId(model_name);
  }
  Result<RdfStore::ModelStats> GetModelStats(
      const std::string& model_name,
      const RdfStore::ModelStatsOptions& options = {}) const {
    return Snapshot()->GetModelStats(model_name, options);
  }
  Result<SdoRdfTriple> ResolveTriple(LinkId rdf_t_id) const {
    return Snapshot()->ResolveTriple(rdf_t_id);
  }

  // ---- Observability / introspection ------------------------------------

  obs::MetricsRegistry& metrics_registry() const {
    return store_.metrics_registry();
  }

  /// Attach the always-on facilities under the writer lock; they are
  /// propagated into the next published version (any null detaches).
  void SetObservability(obs::EventLog* event_log,
                        obs::SlowQueryLog* slow_query_log,
                        obs::Timeline* timeline);

  /// Versions published so far (>= 1: the constructor publishes).
  uint64_t PublishedVersions() const {
    std::lock_guard<std::mutex> lock(writer_mu_);
    return seq_counter_;
  }
  /// Superseded versions still pinned by some reader.
  size_t RetiredOutstanding() const { return gc_.RetiredOutstanding(); }
  uint64_t CurrentEpoch() const { return gc_.CurrentEpoch(); }
  uint64_t OldestPinLag() const { return gc_.OldestPinLag(); }

  /// Estimated exclusive bytes held by retired-but-pinned versions.
  size_t RetiredBytes() const { return gc_.RetiredBytes(); }
  /// Seconds the oldest retired version has been blocked from
  /// reclamation (0 = nothing retained).
  double OldestRetireAgeSeconds() const {
    return gc_.OldestRetireAgeSeconds();
  }

  /// Full footprint: the live store's breakdown plus the term
  /// dictionary and retired-version retention. Takes the writer lock.
  RdfStore::MemoryBreakdown MemoryUsage() const;

  /// MemoryUsage() pushed into the mem_* gauges, plus a refresh of the
  /// retention-age gauge and the epoch-stall watchdog check. This is
  /// the stats server's refresh hook target.
  void UpdateMemoryGauges() const;

  /// Seconds a retired version may stay blocked before the watchdog
  /// emits a "epoch_stall" warning event (<= 0 disables; default 5).
  /// Warnings are re-armed only after the stall clears or another
  /// threshold's worth of seconds passes.
  void set_retention_warn_seconds(double seconds) {
    std::lock_guard<std::mutex> lock(writer_mu_);
    retention_warn_seconds_ = seconds;
  }

 private:
  /// Snapshot the live store's read state into a fresh StoreVersion,
  /// swap it in, retire the displaced one, and sweep.
  Status PublishLocked();

  /// Refresh the retention-age gauge; emit the epoch-stall warning
  /// event when the configured threshold is exceeded. Caller holds
  /// writer_mu_.
  void CheckRetentionLocked() const;

  // Declaration order is the destruction contract (reverse): the
  // current version and the retire list die before the dictionary and
  // the live store they point into.
  RdfStore store_;
  TermDict dict_;
  mutable EpochGc gc_;
  std::shared_ptr<const StoreVersion> current_sp_;
  std::atomic<const StoreVersion*> current_{nullptr};
  mutable std::mutex writer_mu_;
  uint64_t seq_counter_ = 0;  ///< under writer_mu_
  double retention_warn_seconds_ = 5.0;            ///< under writer_mu_
  mutable std::chrono::steady_clock::time_point
      last_stall_warn_{};  ///< under writer_mu_
};

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_SNAPSHOT_STORE_H_
