#include "rdf/legacy_layout.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/resource_tracker.h"
#include "storage/table.h"
#include "storage/value.h"

namespace rdfdb::rdf {
namespace {

using storage::Row;
using storage::RowId;
using storage::Value;
using storage::ValueKey;
using storage::ValueKeyEq;
using storage::ValueKeyHash;

// rdf_link$ column order (mirrors link_store.cc).
constexpr size_t kLinkId = 0;
constexpr size_t kStartNodeId = 1;
constexpr size_t kPValueId = 2;
constexpr size_t kEndNodeId = 3;
constexpr size_t kCanonEndNodeId = 4;
constexpr size_t kModelId = 9;

// rdf_value$ column order (mirrors value_store.cc).
constexpr size_t kValueId = 0;
constexpr size_t kValueName = 1;
constexpr size_t kValueType = 2;
constexpr size_t kLiteralType = 3;
constexpr size_t kLanguageType = 4;

using HashIndexReplica =
    std::unordered_map<ValueKey, std::vector<RowId>, ValueKeyHash,
                       ValueKeyEq>;

void IndexInsert(HashIndexReplica* idx, ValueKey key, RowId row) {
  (*idx)[std::move(key)].push_back(row);
}

}  // namespace

LegacyLayoutCost MeasureLegacyLayout(const RdfStore& store) {
  LegacyLayoutCost cost;

  // -- Dictionary: one std::string per lexical form + the two generic
  //    rdf_value$ hash indexes with ValueKey-copy keys.
  {
    uint64_t before = obs::TrackedHeapBytes();
    {
      std::vector<std::string> lexical;
      HashIndexReplica id_index;
      HashIndexReplica name_index;
      const storage::Table& values = store.values().table();
      lexical.reserve(values.row_count());
      values.Scan([&](RowId row_id, const Row& row) {
        lexical.push_back(row[kValueName].as_string());
        IndexInsert(&id_index, ValueKey{row[kValueId]}, row_id);
        IndexInsert(&name_index,
                    ValueKey{row[kValueName], row[kValueType],
                             row[kLiteralType], row[kLanguageType]},
                    row_id);
        return true;
      });
      cost.dict_bytes = obs::TrackedHeapBytes() - before;
    }
    (void)before;
  }

  // -- Posting lists: the PR 3..7 quad-cache maps, uncompressed.
  {
    uint64_t before = obs::TrackedHeapBytes();
    {
      struct ModelPostings {
        std::unordered_map<int64_t, std::vector<uint32_t>> by_s;
        std::unordered_map<int64_t, std::vector<uint32_t>> by_canon;
        std::unordered_map<int64_t, std::vector<uint32_t>> by_p;
        std::unordered_map<int64_t, uint32_t> by_link;
        uint32_t next_index = 0;
      };
      std::unordered_map<int64_t, ModelPostings> models;
      const storage::Table& links = store.links().table();
      links.Scan([&](RowId, const Row& row) {
        ModelPostings& m = models[row[kModelId].as_int64()];
        uint32_t idx = m.next_index++;
        m.by_s[row[kStartNodeId].as_int64()].push_back(idx);
        m.by_canon[row[kCanonEndNodeId].as_int64()].push_back(idx);
        m.by_p[row[kPValueId].as_int64()].push_back(idx);
        m.by_link[row[kLinkId].as_int64()] = idx;
        return true;
      });
      cost.postings_bytes = obs::TrackedHeapBytes() - before;
    }
  }

  // -- The six generic rdf_link$ hash indexes.
  {
    uint64_t before = obs::TrackedHeapBytes();
    {
      HashIndexReplica link_id_idx, spo_idx, subject_idx, predicate_idx,
          object_idx, spo_canon_idx;
      const storage::Table& links = store.links().table();
      links.Scan([&](RowId row_id, const Row& row) {
        IndexInsert(&link_id_idx, ValueKey{row[kLinkId]}, row_id);
        IndexInsert(&spo_idx,
                    ValueKey{row[kModelId], row[kStartNodeId],
                             row[kPValueId], row[kEndNodeId]},
                    row_id);
        IndexInsert(&subject_idx, ValueKey{row[kModelId], row[kStartNodeId]},
                    row_id);
        IndexInsert(&predicate_idx, ValueKey{row[kModelId], row[kPValueId]},
                    row_id);
        IndexInsert(&object_idx,
                    ValueKey{row[kModelId], row[kCanonEndNodeId]}, row_id);
        IndexInsert(&spo_canon_idx,
                    ValueKey{row[kModelId], row[kStartNodeId],
                             row[kPValueId], row[kCanonEndNodeId]},
                    row_id);
        return true;
      });
      cost.index_bytes = obs::TrackedHeapBytes() - before;
    }
  }

  cost.total_bytes = cost.dict_bytes + cost.postings_bytes + cost.index_bytes;
  return cost;
}

}  // namespace rdfdb::rdf
