#include "rdf/value_store.h"

#include <cinttypes>
#include <cstdio>

#include "common/hash.h"
#include "obs/store_metrics.h"

namespace rdfdb::rdf {

namespace {

using storage::ColumnDef;
using storage::IndexKind;
using storage::KeyExtractor;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueKey;
using storage::ValueType;

// rdf_value$ column positions.
constexpr size_t kValueId = 0;
constexpr size_t kValueName = 1;
constexpr size_t kValueType = 2;
constexpr size_t kLiteralType = 3;
constexpr size_t kLanguageType = 4;
constexpr size_t kLongValue = 5;

// rdf_blank_node$ column positions.
constexpr size_t kBnModelId = 0;
constexpr size_t kBnLabel = 1;
constexpr size_t kBnValueId = 2;

Schema ValueSchema() {
  return Schema({
      ColumnDef{"VALUE_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"VALUE_NAME", ValueType::kString, /*nullable=*/false},
      ColumnDef{"VALUE_TYPE", ValueType::kString, /*nullable=*/false},
      ColumnDef{"LITERAL_TYPE", ValueType::kString, /*nullable=*/true},
      ColumnDef{"LANGUAGE_TYPE", ValueType::kString, /*nullable=*/true},
      ColumnDef{"LONG_VALUE", ValueType::kClob, /*nullable=*/true},
  });
}

Schema BlankNodeSchema() {
  return Schema({
      ColumnDef{"MODEL_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"NODE_LABEL", ValueType::kString, /*nullable=*/false},
      ColumnDef{"VALUE_ID", ValueType::kInt64, /*nullable=*/false},
  });
}

}  // namespace

ValueStore::ValueStore(storage::Database* db) : db_(db) {
  values_ = db_->GetTable("MDSYS", "RDF_VALUE$");
  if (values_ == nullptr) {
    values_ = *db_->CreateTable("MDSYS", "RDF_VALUE$", ValueSchema());
  }
  blank_nodes_ = db_->GetTable("MDSYS", "RDF_BLANK_NODE$");
  if (blank_nodes_ == nullptr) {
    blank_nodes_ =
        *db_->CreateTable("MDSYS", "RDF_BLANK_NODE$", BlankNodeSchema());
  }
  value_seq_ = db_->GetSequence("MDSYS", "RDF_VALUE_SEQ");
  if (value_seq_ == nullptr) {
    value_seq_ = *db_->CreateSequence("MDSYS", "RDF_VALUE_SEQ", 1000);
  }
  // No storage-layer indexes on rdf_value$: the id → row vector and the
  // fingerprint map below answer both lookups at a fraction of the
  // memory (the old 4-column hash index copied every lexical form into
  // its ValueKey entries).
  if (blank_nodes_->GetIndex("rdf_bn_idx") == nullptr) {
    (void)blank_nodes_->CreateIndex("rdf_bn_idx", IndexKind::kHash,
                                    KeyExtractor::Columns({kBnModelId,
                                                           kBnLabel}),
                                    /*unique=*/true);
  }
  if (blank_nodes_->GetIndex("rdf_bn_value_idx") == nullptr) {
    (void)blank_nodes_->CreateIndex("rdf_bn_value_idx", IndexKind::kHash,
                                    KeyExtractor::Columns({kBnValueId}),
                                    /*unique=*/true);
  }

  // Reattach: rebuild the lookup structures from existing rows.
  RebuildLookups();
}

uint64_t ValueStore::Fingerprint(const std::string& name,
                                 const char* type_code,
                                 const std::string& datatype,
                                 const std::string& language) {
  uint64_t h = Fnv1a64(name);
  h = HashCombine(h, Fnv1a64(type_code));
  h = HashCombine(h, Fnv1a64(datatype));
  h = HashCombine(h, Fnv1a64(language));
  // Full-avalanche finalizer: linear probing clusters badly otherwise.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

uint64_t ValueStore::FingerprintRow(const storage::Row& row) {
  static const std::string kEmpty;
  return Fingerprint(
      row[kValueName].as_string(), row[kValueType].as_string().c_str(),
      row[kLiteralType].is_null() ? kEmpty : row[kLiteralType].as_string(),
      row[kLanguageType].is_null() ? kEmpty
                                   : row[kLanguageType].as_string());
}

void ValueStore::FpInsert(uint64_t fp, storage::RowId row_id) {
  if (fp_slots_.empty() || (fp_used_ + 1) * 10 >= fp_slots_.size() * 7) {
    std::vector<FpSlot> old = std::move(fp_slots_);
    size_t capacity = 1024;
    while (capacity < 2 * (fp_used_ + 8)) capacity <<= 1;
    fp_slots_.assign(capacity, FpSlot{});
    fp_mask_ = capacity - 1;
    for (const FpSlot& slot : old) {
      if (slot.row < 0) continue;
      size_t i = static_cast<size_t>(slot.fp) & fp_mask_;
      while (fp_slots_[i].row >= 0) i = (i + 1) & fp_mask_;
      fp_slots_[i] = slot;
    }
  }
  size_t i = static_cast<size_t>(fp) & fp_mask_;
  while (fp_slots_[i].row >= 0) i = (i + 1) & fp_mask_;
  fp_slots_[i] = FpSlot{fp, row_id};
  ++fp_used_;
}

void ValueStore::RegisterRow(storage::RowId row_id,
                             const storage::Row& row) {
  const ValueId id = row[kValueId].as_int64();
  if (base_id_ < 0) base_id_ = id;
  if (id < base_id_) {
    // Out-of-order id below the current base (only possible when rows
    // are replayed behind our back in unusual order): re-base.
    const int64_t shift = base_id_ - id;
    id_to_row_.insert(id_to_row_.begin(), static_cast<size_t>(shift), -1);
    base_id_ = id;
  }
  const uint64_t off = static_cast<uint64_t>(id - base_id_);
  if (off >= id_to_row_.size()) id_to_row_.resize(off + 1, -1);
  id_to_row_[off] = row_id;
  FpInsert(FingerprintRow(row), row_id);
}

void ValueStore::RebuildLookups() {
  base_id_ = -1;
  id_to_row_.clear();
  fp_slots_.clear();
  fp_used_ = 0;
  fp_mask_ = 0;
  values_->Scan([&](storage::RowId row_id, const Row& row) {
    RegisterRow(row_id, row);
    return true;
  });
}

std::string ValueStore::ValueNameFor(const Term& term) {
  if (term.is_long_literal()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "longlit:%016" PRIx64,
                  Fnv1a64(term.lexical()));
    return buf;
  }
  return term.lexical();
}

namespace {

/// Exact dedup-key comparison against a stored row (fingerprint hits
/// are verified here, so collisions cannot alias two terms).
bool RowMatchesKey(const Row& row, const std::string& name,
                   const char* type_code, const std::string& datatype,
                   const std::string& language) {
  if (row[kValueName].as_string() != name) return false;
  if (row[kValueType].as_string() != type_code) return false;
  if (datatype.empty()) {
    if (!row[kLiteralType].is_null()) return false;
  } else if (row[kLiteralType].is_null() ||
             row[kLiteralType].as_string() != datatype) {
    return false;
  }
  if (language.empty()) {
    if (!row[kLanguageType].is_null()) return false;
  } else if (row[kLanguageType].is_null() ||
             row[kLanguageType].as_string() != language) {
    return false;
  }
  return true;
}

}  // namespace

Result<ValueId> ValueStore::LookupOrInsert(const Term& term) {
  if (term.is_blank()) {
    return Status::InvalidArgument(
        "blank nodes are model-scoped; use LookupOrInsertBlank");
  }
  std::optional<ValueId> existing = Lookup(term);
  if (existing.has_value()) return *existing;

  if (metrics_ != nullptr) metrics_->value_inserts->Inc();
  ValueId id = value_seq_->Next();
  Row row(6);
  row[kValueId] = Value::Int64(id);
  row[kValueName] = Value::String(ValueNameFor(term));
  row[kValueType] = Value::String(term.TypeCode());
  row[kLiteralType] = term.datatype().empty()
                          ? Value::Null()
                          : Value::String(term.datatype());
  row[kLanguageType] = term.language().empty()
                           ? Value::Null()
                           : Value::String(term.language());
  row[kLongValue] = term.is_long_literal() ? Value::Clob(term.lexical())
                                           : Value::Null();
  auto insert = values_->Insert(std::move(row));
  if (!insert.ok()) return insert.status();
  RegisterRow(*insert, *values_->Get(*insert));
  return id;
}

Result<std::vector<ValueId>> ValueStore::LookupOrInsertBatch(
    int64_t model_id, const std::vector<const Term*>& terms,
    InternCache* cache) {
  std::vector<ValueId> out;
  out.reserve(terms.size());
  if (metrics_ != nullptr) metrics_->value_batch_terms->Inc(terms.size());
  for (const Term* term : terms) {
    auto it = cache->find(*term);
    if (it != cache->end()) {
      if (metrics_ != nullptr) metrics_->value_intern_cache_hits->Inc();
      out.push_back(it->second);
      continue;
    }
    Result<ValueId> id = term->is_blank()
                             ? LookupOrInsertBlank(model_id, term->lexical())
                             : LookupOrInsert(*term);
    RDFDB_RETURN_NOT_OK(id.status());
    cache->emplace(*term, *id);
    out.push_back(*id);
  }
  return out;
}

std::optional<ValueId> ValueStore::Lookup(const Term& term) const {
  if (metrics_ != nullptr) metrics_->value_lookups->Inc();
  if (fp_slots_.empty()) return std::nullopt;
  const std::string name = ValueNameFor(term);
  const uint64_t fp =
      Fingerprint(name, term.TypeCode(), term.datatype(), term.language());
  for (size_t i = static_cast<size_t>(fp) & fp_mask_;;
       i = (i + 1) & fp_mask_) {
    const FpSlot& slot = fp_slots_[i];
    if (slot.row < 0) return std::nullopt;
    if (slot.fp != fp) continue;
    const Row* row = values_->Get(slot.row);
    if (!RowMatchesKey(*row, name, term.TypeCode(), term.datatype(),
                       term.language())) {
      continue;
    }
    if (term.is_long_literal()) {
      // Long literals are keyed by a 64-bit name fingerprint; verify
      // the full text so a (vanishingly unlikely) collision cannot
      // alias two different literals.
      if (row->at(kLongValue).is_null() ||
          row->at(kLongValue).as_clob() != term.lexical()) {
        return std::nullopt;
      }
    }
    if (metrics_ != nullptr) metrics_->value_lookup_hits->Inc();
    return row->at(kValueId).as_int64();
  }
}

Result<ValueId> ValueStore::LookupOrInsertBlank(int64_t model_id,
                                                const std::string& label) {
  std::optional<ValueId> existing = LookupBlank(model_id, label);
  if (existing.has_value()) return *existing;

  if (metrics_ != nullptr) metrics_->value_inserts->Inc();
  // Allocate the VALUE_ID first and derive a globally-unique internal
  // name from it so blank nodes from different models never unify in
  // rdf_value$.
  ValueId id = value_seq_->Next();
  std::string internal = "_:m" + std::to_string(model_id) + "x" + label;
  Row row(6);
  row[kValueId] = Value::Int64(id);
  row[kValueName] = Value::String(internal);
  row[kValueType] = Value::String("BN");
  row[kLiteralType] = Value::Null();
  row[kLanguageType] = Value::Null();
  row[kLongValue] = Value::Null();
  auto insert = values_->Insert(std::move(row));
  if (!insert.ok()) return insert.status();
  RegisterRow(*insert, *values_->Get(*insert));

  Row mapping(3);
  mapping[kBnModelId] = Value::Int64(model_id);
  mapping[kBnLabel] = Value::String(label);
  mapping[kBnValueId] = Value::Int64(id);
  auto bn_insert = blank_nodes_->Insert(std::move(mapping));
  if (!bn_insert.ok()) return bn_insert.status();
  return id;
}

std::optional<ValueId> ValueStore::LookupBlank(
    int64_t model_id, const std::string& label) const {
  if (metrics_ != nullptr) metrics_->value_lookups->Inc();
  const storage::Index* index = blank_nodes_->GetIndex("rdf_bn_idx");
  std::vector<storage::RowId> ids = index->Find(
      ValueKey{Value::Int64(model_id), Value::String(label)});
  if (ids.empty()) return std::nullopt;
  if (metrics_ != nullptr) metrics_->value_lookup_hits->Inc();
  const Row* row = blank_nodes_->Get(ids.front());
  return row->at(kBnValueId).as_int64();
}

std::optional<std::pair<int64_t, std::string>> ValueStore::LookupBlankLabel(
    ValueId value_id) const {
  const storage::Index* index = blank_nodes_->GetIndex("rdf_bn_value_idx");
  std::vector<storage::RowId> ids =
      index->Find(ValueKey{Value::Int64(value_id)});
  if (ids.empty()) return std::nullopt;
  const Row* row = blank_nodes_->Get(ids.front());
  return std::make_pair(row->at(kBnModelId).as_int64(),
                        row->at(kBnLabel).as_string());
}

Result<Term> ValueStore::GetTerm(ValueId value_id) const {
  const int64_t rid = RowForId(value_id);
  if (rid < 0) {
    return Status::NotFound("VALUE_ID " + std::to_string(value_id));
  }
  const Row* row = values_->Get(rid);
  const std::string& type_code = row->at(kValueType).as_string();
  const std::string& name = row->at(kValueName).as_string();
  if (type_code == "UR") return Term::Uri(name);
  if (type_code == "BN") {
    // Internal names begin "_:"; strip it for the label.
    return Term::BlankNode(name.substr(2));
  }
  std::string text = row->at(kLongValue).is_null()
                         ? name
                         : row->at(kLongValue).as_clob();
  if (type_code == "PL" || type_code == "PLL") {
    std::string lang = row->at(kLanguageType).is_null()
                           ? ""
                           : row->at(kLanguageType).as_string();
    return lang.empty() ? Term::PlainLiteral(std::move(text))
                        : Term::PlainLiteralLang(std::move(text),
                                                 std::move(lang));
  }
  if (type_code == "PL@") {
    return Term::PlainLiteralLang(std::move(text),
                                  row->at(kLanguageType).as_string());
  }
  if (type_code == "TL" || type_code == "TLL") {
    return Term::TypedLiteral(std::move(text),
                              row->at(kLiteralType).as_string());
  }
  return Status::Corruption("unknown VALUE_TYPE " + type_code);
}

Result<std::string> ValueStore::GetText(ValueId value_id) const {
  RDFDB_ASSIGN_OR_RETURN(Term term, GetTerm(value_id));
  return term.ToDisplayString();
}

Result<std::string> ValueStore::GetTypeCode(ValueId value_id) const {
  const int64_t rid = RowForId(value_id);
  if (rid < 0) {
    return Status::NotFound("VALUE_ID " + std::to_string(value_id));
  }
  return values_->Get(rid)->at(kValueType).as_string();
}

size_t ValueStore::value_count() const { return values_->row_count(); }

}  // namespace rdfdb::rdf
