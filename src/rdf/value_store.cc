#include "rdf/value_store.h"

#include <cinttypes>
#include <cstdio>

#include "common/hash.h"
#include "obs/store_metrics.h"

namespace rdfdb::rdf {

namespace {

using storage::ColumnDef;
using storage::IndexKind;
using storage::KeyExtractor;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueKey;
using storage::ValueType;

// rdf_value$ column positions.
constexpr size_t kValueId = 0;
constexpr size_t kValueName = 1;
constexpr size_t kValueType = 2;
constexpr size_t kLiteralType = 3;
constexpr size_t kLanguageType = 4;
constexpr size_t kLongValue = 5;

// rdf_blank_node$ column positions.
constexpr size_t kBnModelId = 0;
constexpr size_t kBnLabel = 1;
constexpr size_t kBnValueId = 2;

Schema ValueSchema() {
  return Schema({
      ColumnDef{"VALUE_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"VALUE_NAME", ValueType::kString, /*nullable=*/false},
      ColumnDef{"VALUE_TYPE", ValueType::kString, /*nullable=*/false},
      ColumnDef{"LITERAL_TYPE", ValueType::kString, /*nullable=*/true},
      ColumnDef{"LANGUAGE_TYPE", ValueType::kString, /*nullable=*/true},
      ColumnDef{"LONG_VALUE", ValueType::kClob, /*nullable=*/true},
  });
}

Schema BlankNodeSchema() {
  return Schema({
      ColumnDef{"MODEL_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"NODE_LABEL", ValueType::kString, /*nullable=*/false},
      ColumnDef{"VALUE_ID", ValueType::kInt64, /*nullable=*/false},
  });
}

}  // namespace

ValueStore::ValueStore(storage::Database* db) : db_(db) {
  values_ = db_->GetTable("MDSYS", "RDF_VALUE$");
  if (values_ == nullptr) {
    values_ = *db_->CreateTable("MDSYS", "RDF_VALUE$", ValueSchema());
  }
  blank_nodes_ = db_->GetTable("MDSYS", "RDF_BLANK_NODE$");
  if (blank_nodes_ == nullptr) {
    blank_nodes_ =
        *db_->CreateTable("MDSYS", "RDF_BLANK_NODE$", BlankNodeSchema());
  }
  value_seq_ = db_->GetSequence("MDSYS", "RDF_VALUE_SEQ");
  if (value_seq_ == nullptr) {
    value_seq_ = *db_->CreateSequence("MDSYS", "RDF_VALUE_SEQ", 1000);
  }
  if (values_->GetIndex(kIdIndex) == nullptr) {
    (void)values_->CreateIndex(kIdIndex, IndexKind::kHash,
                               KeyExtractor::Columns({kValueId}),
                               /*unique=*/true);
  }
  if (values_->GetIndex(kNameIndex) == nullptr) {
    (void)values_->CreateIndex(
        kNameIndex, IndexKind::kHash,
        KeyExtractor::Columns(
            {kValueName, kValueType, kLiteralType, kLanguageType}),
        /*unique=*/true);
  }
  if (blank_nodes_->GetIndex("rdf_bn_idx") == nullptr) {
    (void)blank_nodes_->CreateIndex("rdf_bn_idx", IndexKind::kHash,
                                    KeyExtractor::Columns({kBnModelId,
                                                           kBnLabel}),
                                    /*unique=*/true);
  }
  if (blank_nodes_->GetIndex("rdf_bn_value_idx") == nullptr) {
    (void)blank_nodes_->CreateIndex("rdf_bn_value_idx", IndexKind::kHash,
                                    KeyExtractor::Columns({kBnValueId}),
                                    /*unique=*/true);
  }
}

std::string ValueStore::ValueNameFor(const Term& term) {
  if (term.is_long_literal()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "longlit:%016" PRIx64,
                  Fnv1a64(term.lexical()));
    return buf;
  }
  return term.lexical();
}

storage::ValueKey ValueStore::DedupKey(const Term& term) {
  return ValueKey{
      Value::String(ValueNameFor(term)),
      Value::String(term.TypeCode()),
      term.datatype().empty() ? Value::Null()
                              : Value::String(term.datatype()),
      term.language().empty() ? Value::Null()
                              : Value::String(term.language()),
  };
}

Result<ValueId> ValueStore::LookupOrInsert(const Term& term) {
  if (term.is_blank()) {
    return Status::InvalidArgument(
        "blank nodes are model-scoped; use LookupOrInsertBlank");
  }
  std::optional<ValueId> existing = Lookup(term);
  if (existing.has_value()) return *existing;

  if (metrics_ != nullptr) metrics_->value_inserts->Inc();
  ValueId id = value_seq_->Next();
  Row row(6);
  row[kValueId] = Value::Int64(id);
  row[kValueName] = Value::String(ValueNameFor(term));
  row[kValueType] = Value::String(term.TypeCode());
  row[kLiteralType] = term.datatype().empty()
                          ? Value::Null()
                          : Value::String(term.datatype());
  row[kLanguageType] = term.language().empty()
                           ? Value::Null()
                           : Value::String(term.language());
  row[kLongValue] = term.is_long_literal() ? Value::Clob(term.lexical())
                                           : Value::Null();
  auto insert = values_->Insert(std::move(row));
  if (!insert.ok()) return insert.status();
  return id;
}

Result<std::vector<ValueId>> ValueStore::LookupOrInsertBatch(
    int64_t model_id, const std::vector<const Term*>& terms,
    InternCache* cache) {
  std::vector<ValueId> out;
  out.reserve(terms.size());
  if (metrics_ != nullptr) metrics_->value_batch_terms->Inc(terms.size());
  for (const Term* term : terms) {
    auto it = cache->find(*term);
    if (it != cache->end()) {
      if (metrics_ != nullptr) metrics_->value_intern_cache_hits->Inc();
      out.push_back(it->second);
      continue;
    }
    Result<ValueId> id = term->is_blank()
                             ? LookupOrInsertBlank(model_id, term->lexical())
                             : LookupOrInsert(*term);
    RDFDB_RETURN_NOT_OK(id.status());
    cache->emplace(*term, *id);
    out.push_back(*id);
  }
  return out;
}

std::optional<ValueId> ValueStore::Lookup(const Term& term) const {
  if (metrics_ != nullptr) metrics_->value_lookups->Inc();
  const storage::Index* index = values_->GetIndex(kNameIndex);
  std::vector<storage::RowId> ids = index->Find(DedupKey(term));
  if (ids.empty()) return std::nullopt;
  const Row* row = values_->Get(ids.front());
  if (term.is_long_literal()) {
    // Long literals are keyed by a 64-bit fingerprint; verify the full
    // text so a (vanishingly unlikely) collision cannot alias two
    // different literals.
    if (row->at(kLongValue).is_null() ||
        row->at(kLongValue).as_clob() != term.lexical()) {
      return std::nullopt;
    }
  }
  if (metrics_ != nullptr) metrics_->value_lookup_hits->Inc();
  return row->at(kValueId).as_int64();
}

Result<ValueId> ValueStore::LookupOrInsertBlank(int64_t model_id,
                                                const std::string& label) {
  std::optional<ValueId> existing = LookupBlank(model_id, label);
  if (existing.has_value()) return *existing;

  if (metrics_ != nullptr) metrics_->value_inserts->Inc();
  // Allocate the VALUE_ID first and derive a globally-unique internal
  // name from it so blank nodes from different models never unify in
  // rdf_value$.
  ValueId id = value_seq_->Next();
  std::string internal = "_:m" + std::to_string(model_id) + "x" + label;
  Row row(6);
  row[kValueId] = Value::Int64(id);
  row[kValueName] = Value::String(internal);
  row[kValueType] = Value::String("BN");
  row[kLiteralType] = Value::Null();
  row[kLanguageType] = Value::Null();
  row[kLongValue] = Value::Null();
  auto insert = values_->Insert(std::move(row));
  if (!insert.ok()) return insert.status();

  Row mapping(3);
  mapping[kBnModelId] = Value::Int64(model_id);
  mapping[kBnLabel] = Value::String(label);
  mapping[kBnValueId] = Value::Int64(id);
  auto bn_insert = blank_nodes_->Insert(std::move(mapping));
  if (!bn_insert.ok()) return bn_insert.status();
  return id;
}

std::optional<ValueId> ValueStore::LookupBlank(
    int64_t model_id, const std::string& label) const {
  if (metrics_ != nullptr) metrics_->value_lookups->Inc();
  const storage::Index* index = blank_nodes_->GetIndex("rdf_bn_idx");
  std::vector<storage::RowId> ids = index->Find(
      ValueKey{Value::Int64(model_id), Value::String(label)});
  if (ids.empty()) return std::nullopt;
  if (metrics_ != nullptr) metrics_->value_lookup_hits->Inc();
  const Row* row = blank_nodes_->Get(ids.front());
  return row->at(kBnValueId).as_int64();
}

std::optional<std::pair<int64_t, std::string>> ValueStore::LookupBlankLabel(
    ValueId value_id) const {
  const storage::Index* index = blank_nodes_->GetIndex("rdf_bn_value_idx");
  std::vector<storage::RowId> ids =
      index->Find(ValueKey{Value::Int64(value_id)});
  if (ids.empty()) return std::nullopt;
  const Row* row = blank_nodes_->Get(ids.front());
  return std::make_pair(row->at(kBnModelId).as_int64(),
                        row->at(kBnLabel).as_string());
}

Result<Term> ValueStore::GetTerm(ValueId value_id) const {
  const storage::Index* index = values_->GetIndex(kIdIndex);
  std::vector<storage::RowId> ids =
      index->Find(ValueKey{Value::Int64(value_id)});
  if (ids.empty()) {
    return Status::NotFound("VALUE_ID " + std::to_string(value_id));
  }
  const Row* row = values_->Get(ids.front());
  const std::string& type_code = row->at(kValueType).as_string();
  const std::string& name = row->at(kValueName).as_string();
  if (type_code == "UR") return Term::Uri(name);
  if (type_code == "BN") {
    // Internal names begin "_:"; strip it for the label.
    return Term::BlankNode(name.substr(2));
  }
  std::string text = row->at(kLongValue).is_null()
                         ? name
                         : row->at(kLongValue).as_clob();
  if (type_code == "PL" || type_code == "PLL") {
    std::string lang = row->at(kLanguageType).is_null()
                           ? ""
                           : row->at(kLanguageType).as_string();
    return lang.empty() ? Term::PlainLiteral(std::move(text))
                        : Term::PlainLiteralLang(std::move(text),
                                                 std::move(lang));
  }
  if (type_code == "PL@") {
    return Term::PlainLiteralLang(std::move(text),
                                  row->at(kLanguageType).as_string());
  }
  if (type_code == "TL" || type_code == "TLL") {
    return Term::TypedLiteral(std::move(text),
                              row->at(kLiteralType).as_string());
  }
  return Status::Corruption("unknown VALUE_TYPE " + type_code);
}

Result<std::string> ValueStore::GetText(ValueId value_id) const {
  RDFDB_ASSIGN_OR_RETURN(Term term, GetTerm(value_id));
  return term.ToDisplayString();
}

Result<std::string> ValueStore::GetTypeCode(ValueId value_id) const {
  const storage::Index* index = values_->GetIndex(kIdIndex);
  std::vector<storage::RowId> ids =
      index->Find(ValueKey{Value::Int64(value_id)});
  if (ids.empty()) {
    return Status::NotFound("VALUE_ID " + std::to_string(value_id));
  }
  return values_->Get(ids.front())->at(kValueType).as_string();
}

size_t ValueStore::value_count() const { return values_->row_count(); }

}  // namespace rdfdb::rdf
