// ValueStore: binding over the central-schema rdf_value$ table.
//
// "The rdf_value$ table stores the text values (i.e. URIs, blank nodes,
// and literals) for a triple. Each text entry is uniquely stored." This
// class owns lookup-or-insert deduplication, long-literal spill into
// LONG_VALUE, and the model-scoped blank-node mapping (rdf_blank_node$).

#ifndef RDFDB_RDF_VALUE_STORE_H_
#define RDFDB_RDF_VALUE_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/term.h"
#include "storage/database.h"

namespace rdfdb::obs {
struct StoreMetrics;
}  // namespace rdfdb::obs

namespace rdfdb::rdf {

/// VALUE_ID type (rdf_value$ primary key).
using ValueId = int64_t;

/// Central deduplicated term dictionary.
class ValueStore {
 public:
  /// Memo of already-resolved terms, carried across LookupOrInsertBatch
  /// calls by the bulk loader so each distinct term pays the rdf_value$
  /// index probe (and its DedupKey construction) only once per load.
  /// Blank-node entries are model-scoped: never share a cache across
  /// models.
  struct TermHash {
    size_t operator()(const Term& term) const {
      return static_cast<size_t>(term.Hash());
    }
  };
  using InternCache = std::unordered_map<Term, ValueId, TermHash>;
  /// Creates (or reattaches to) MDSYS.RDF_VALUE$, MDSYS.RDF_BLANK_NODE$
  /// and their sequences/indexes inside `db`.
  explicit ValueStore(storage::Database* db);

  /// Find the VALUE_ID for `term`, inserting a new row if absent.
  /// Blank nodes must go through LookupOrInsertBlank (they are
  /// model-scoped).
  Result<ValueId> LookupOrInsert(const Term& term);

  /// Find without inserting; nullopt if the term has never been stored.
  std::optional<ValueId> Lookup(const Term& term) const;

  /// Batched two-phase intern for the bulk loader: resolves every term in
  /// `terms` (in order) to its VALUE_ID, consulting and filling `cache`.
  /// New terms hit rdf_value$ in first-occurrence order, so VALUE_ID
  /// assignment is identical to a sequential LookupOrInsert /
  /// LookupOrInsertBlank walk over the same sequence. Blank nodes are
  /// scoped to `model_id`.
  Result<std::vector<ValueId>> LookupOrInsertBatch(
      int64_t model_id, const std::vector<const Term*>& terms,
      InternCache* cache);

  /// Model-scoped blank node: the same label in different models maps to
  /// different VALUE_IDs; within one model the mapping is stable.
  Result<ValueId> LookupOrInsertBlank(int64_t model_id,
                                      const std::string& label);
  std::optional<ValueId> LookupBlank(int64_t model_id,
                                     const std::string& label) const;

  /// Reverse mapping: the (model_id, original label) under which a blank
  /// node VALUE_ID was created (used by logical logging).
  std::optional<std::pair<int64_t, std::string>> LookupBlankLabel(
      ValueId value_id) const;

  /// Reconstruct the Term stored under `value_id`.
  Result<Term> GetTerm(ValueId value_id) const;

  /// Full text of the value (reads LONG_VALUE for long literals). This is
  /// the paper's VALUE_NAME.GETURL()-style accessor.
  Result<std::string> GetText(ValueId value_id) const;

  /// VALUE_TYPE code of the stored value ("UR", "BN", "PL", ...).
  Result<std::string> GetTypeCode(ValueId value_id) const;

  /// Number of distinct values stored.
  size_t value_count() const;

  /// Approximate heap bytes held by rdf_value$ + rdf_blank_node$ (row
  /// data plus indexes) and the store's own lookup structures. Feeds
  /// RdfStore::MemoryUsage().
  size_t ApproxBytes() const {
    return values_->ApproxTotalBytes() + blank_nodes_->ApproxTotalBytes() +
           id_to_row_.capacity() * sizeof(int64_t) +
           fp_slots_.capacity() * sizeof(FpSlot);
  }

  /// Underlying table (benchmarks join against it directly, as the
  /// paper's Experiment I does).
  const storage::Table& table() const { return *values_; }
  storage::Table* mutable_table() { return values_; }

  /// Rebuild the VALUE_ID → row vector and the fingerprint dedup map
  /// from the rdf_value$ rows. Maintained in lockstep by the insert
  /// paths; this is for callers that populate the table behind the
  /// store's back (snapshot restore copies raw rows to preserve
  /// VALUE_IDs). The constructor runs it for reattach.
  void RebuildLookups();

  /// Attach the owning store's metric handles. Null (the default, and
  /// the state of standalone test instances) disables instrumentation.
  void set_metrics(obs::StoreMetrics* metrics) { metrics_ = metrics; }

 private:
  /// VALUE_NAME cell for a term — long literals store a fingerprint here
  /// and spill full text into LONG_VALUE.
  static std::string ValueNameFor(const Term& term);

  /// One slot of the fingerprint dedup map: 64-bit hash of the
  /// (VALUE_NAME, VALUE_TYPE, LITERAL_TYPE, LANGUAGE_TYPE) dedup key
  /// plus the row it names. The map replaces the old 4-column hash
  /// index, whose entries each carried a full copy of the lexical form
  /// in a ValueKey; hits are verified against the row, so a fingerprint
  /// collision costs an extra compare, never a wrong answer.
  struct FpSlot {
    uint64_t fp = 0;
    int64_t row = -1;  ///< RowId; -1 = empty slot
  };

  /// Fingerprint of a term's dedup key / of a stored row's key columns.
  /// The two must agree for every term: Lookup hashes the term,
  /// RegisterRow hashes the row it would have written.
  static uint64_t Fingerprint(const std::string& name,
                              const char* type_code,
                              const std::string& datatype,
                              const std::string& language);
  static uint64_t FingerprintRow(const storage::Row& row);

  /// Track a newly visible rdf_value$ row in both lookup structures.
  void RegisterRow(storage::RowId row_id, const storage::Row& row);
  void FpInsert(uint64_t fp, storage::RowId row_id);

  /// Table RowId stored under VALUE_ID, or -1.
  int64_t RowForId(ValueId value_id) const {
    if (base_id_ < 0 || value_id < base_id_) return -1;
    const uint64_t off = static_cast<uint64_t>(value_id - base_id_);
    return off < id_to_row_.size() ? id_to_row_[off] : -1;
  }

  storage::Database* db_;
  storage::Table* values_;        // MDSYS.RDF_VALUE$
  storage::Table* blank_nodes_;   // MDSYS.RDF_BLANK_NODE$
  storage::Sequence* value_seq_;
  obs::StoreMetrics* metrics_ = nullptr;

  /// VALUE_ID → RowId, dense (ids come off an ascending sequence).
  int64_t base_id_ = -1;
  std::vector<int64_t> id_to_row_;
  /// Open-addressing fingerprint → RowId map (duplicate fingerprints
  /// occupy separate slots; rdf_value$ rows are never deleted, so no
  /// tombstones).
  std::vector<FpSlot> fp_slots_;
  size_t fp_used_ = 0;
  size_t fp_mask_ = 0;
};

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_VALUE_STORE_H_
