#include "rdf/bulk_load.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "common/timer.h"
#include "obs/active_ops.h"
#include "obs/resource_tracker.h"
#include "obs/store_metrics.h"
#include "rdf/canonical.h"
#include "rdf/link_store.h"
#include "rdf/reification.h"

namespace rdfdb::rdf {

namespace {

constexpr unsigned kMaxAutoThreads = 8;

unsigned EffectiveThreads(const BulkLoadOptions& options) {
  if (options.threads != 0) return options.threads;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return std::min(hw, kMaxAutoThreads);
}

/// One statement with the CPU-side per-statement work already done
/// (canonicalization, predicate classification, reification detection)
/// so the storage thread only interns and inserts. The term pointers
/// borrow from the chunk's parsed statements (or the caller's vector),
/// which stay alive and unmoved until the chunk is consumed.
struct PreparedTriple {
  const Term* s = nullptr;
  const Term* p = nullptr;
  const Term* o = nullptr;
  Term canon;             ///< valid only when has_canon
  bool has_canon = false;
  std::string link_type;
  bool reif_link = false;
};

/// Unit of hand-off from a parse/prepare worker to the storage thread.
struct PreparedChunk {
  std::vector<NTriple> owned;  ///< file loads: the chunk's parsed statements
  std::vector<PreparedTriple> prepared;
};

/// Same validation as RdfStore::InsertParsedTriple, plus the pure parts
/// of InsertTerms.
Status PrepareStatement(const NTriple& t, PreparedTriple* out) {
  if (!t.subject.is_uri() && !t.subject.is_blank()) {
    return Status::InvalidArgument("subject must be a URI or blank node");
  }
  if (!t.predicate.is_uri()) {
    return Status::InvalidArgument("predicate must be a URI");
  }
  out->s = &t.subject;
  out->p = &t.predicate;
  out->o = &t.object;
  Term canon = CanonicalForm(t.object);
  if (canon != t.object) {
    out->canon = std::move(canon);
    out->has_canon = true;
  }
  out->link_type = ClassifyPredicate(t.predicate.lexical());
  out->reif_link =
      (t.subject.is_uri() && IsReificationUri(t.subject.lexical())) ||
      (t.object.is_uri() && IsReificationUri(t.object.lexical()));
  return Status::OK();
}

Status PrepareAll(const std::vector<NTriple>& statements,
                  std::vector<PreparedTriple>* prepared) {
  prepared->resize(statements.size());
  for (size_t i = 0; i < statements.size(); ++i) {
    RDFDB_RETURN_NOT_OK(PrepareStatement(statements[i], &(*prepared)[i]));
  }
  return Status::OK();
}

/// Serial phase, run on the calling thread in chunk order: batched
/// intern, batched link insert, stats and application-table rows. The
/// intern order per statement (s, p, o, then canonical object only when
/// it differs) matches InsertTerms, so VALUE_ID assignment is identical
/// to the sequential loader.
Status ProcessChunk(RdfStore* store, ModelId model_id,
                    const std::vector<PreparedTriple>& prepared,
                    ValueStore::InternCache* cache, ApplicationTable* table,
                    int64_t* next_app_id, BulkLoadStats* stats) {
  obs::StoreMetrics* metrics = store->metrics();
  obs::Timeline* timeline = store->timeline();
  // Lane 0 = the consumer (calling) thread; parse spans sit on worker
  // lanes, so the export shows hand-off skew directly.
  obs::TimelineScope consume_span(
      timeline, "chunk_consume", "bulkload", /*lane=*/0,
      timeline != nullptr ? "chunk=" + std::to_string(stats->chunks)
                          : std::string());
  // Attribute the storage thread's CPU and heap traffic for this chunk
  // (intern + insert + app-table rows); parse workers open their own
  // scopes in the produce lambdas.
  obs::ResourceScope chunk_scope("bulkload_chunk");
  std::vector<const Term*> terms;
  terms.reserve(prepared.size() * 4);
  for (const PreparedTriple& pt : prepared) {
    terms.push_back(pt.s);
    terms.push_back(pt.p);
    terms.push_back(pt.o);
    if (pt.has_canon) terms.push_back(&pt.canon);
  }
  std::vector<ValueId> ids;
  {
    obs::ScopedLatency span(metrics->bulkload_intern_ns, &stats->intern_ns);
    RDFDB_ASSIGN_OR_RETURN(
        ids, store->values().LookupOrInsertBatch(model_id, terms, cache));
  }

  std::vector<LinkBatchEntry> entries(prepared.size());
  size_t k = 0;
  for (size_t i = 0; i < prepared.size(); ++i) {
    const PreparedTriple& pt = prepared[i];
    LinkBatchEntry& e = entries[i];
    e.s = ids[k++];
    e.p = ids[k++];
    e.o = ids[k++];
    e.canon_o = pt.has_canon ? ids[k++] : e.o;
    e.link_type = pt.link_type;
    e.context = TripleContext::kDirect;
    e.reif_link = pt.reif_link;
  }
  std::vector<LinkInsertOutcome> outcomes;
  {
    obs::ScopedLatency span(metrics->bulkload_insert_ns, &stats->insert_ns);
    RDFDB_ASSIGN_OR_RETURN(outcomes,
                           store->links().InsertBatch(model_id, entries));
  }
  ++stats->chunks;
  metrics->bulkload_chunks->Inc();
  metrics->bulkload_statements->Inc(outcomes.size());

  size_t chunk_new_links = 0;
  for (const LinkInsertOutcome& outcome : outcomes) {
    ++stats->statements;
    if (outcome.inserted) {
      ++stats->new_links;
      ++chunk_new_links;
    } else {
      ++stats->reused_links;
    }
    if (table != nullptr) {
      SdoRdfTripleS triple(store, outcome.row.link_id, outcome.row.model_id,
                           outcome.row.start_node_id, outcome.row.p_value_id,
                           outcome.row.end_node_id);
      RDFDB_RETURN_NOT_OK(table->Insert((*next_app_id)++, triple));
      ++stats->app_rows;
    }
  }
  if (obs::EventLog* elog = store->event_log()) {
    elog->Append(
        "bulkload", "chunk",
        {obs::EventField::Num("chunk",
                              static_cast<int64_t>(stats->chunks - 1)),
         obs::EventField::Num("statements",
                              static_cast<int64_t>(outcomes.size())),
         obs::EventField::Num("new_links",
                              static_cast<int64_t>(chunk_new_links))});
  }
  const obs::ResourceUsage usage = chunk_scope.Usage();
  stats->cpu_ns += usage.cpu_ns;
  stats->alloc_bytes += usage.bytes_allocated;
  return Status::OK();
}

/// Run `produce(k, worker)` for chunk indices [0, chunk_count) on
/// worker threads and feed each result to `consume` strictly in index
/// order on the calling thread. `worker` is the 1-based index of the
/// pool thread running the call (0 when everything runs inline) — the
/// span-timeline lane id. Workers observe a bounded window ahead of the
/// consumer so a fast parser cannot buffer the whole input. With one
/// thread (or one chunk) everything runs inline. `max_depth` (optional)
/// receives the high-water mark of produced-but-unconsumed chunks —
/// the pipeline's effective queue depth.
template <typename Produce, typename Consume>
Status RunOrderedPipeline(size_t chunk_count, unsigned threads,
                          Produce produce, Consume consume,
                          size_t* max_depth = nullptr) {
  if (threads <= 1 || chunk_count <= 1) {
    if (max_depth != nullptr) *max_depth = chunk_count > 0 ? 1 : 0;
    for (size_t k = 0; k < chunk_count; ++k) {
      Result<PreparedChunk> chunk = produce(k, /*worker=*/0u);
      RDFDB_RETURN_NOT_OK(chunk.status());
      RDFDB_RETURN_NOT_OK(consume(std::move(*chunk)));
    }
    return Status::OK();
  }

  const unsigned workers =
      static_cast<unsigned>(std::min<size_t>(threads, chunk_count));
  const size_t window = 2 * static_cast<size_t>(workers) + 2;
  std::vector<std::optional<Result<PreparedChunk>>> slots(chunk_count);
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<size_t> next_chunk{0};
  size_t consumed = 0;       // guarded by mu
  size_t produced = 0;       // guarded by mu
  size_t depth_hw = 0;       // guarded by mu
  bool cancelled = false;    // guarded by mu

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (;;) {
        size_t k = next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (k >= chunk_count) return;
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return cancelled || k < consumed + window; });
          if (cancelled) return;
        }
        Result<PreparedChunk> result = produce(k, w + 1);
        {
          std::lock_guard<std::mutex> lock(mu);
          slots[k] = std::move(result);
          ++produced;
          depth_hw = std::max(depth_hw, produced - consumed);
        }
        cv.notify_all();
      }
    });
  }

  Status status = Status::OK();
  for (size_t k = 0; k < chunk_count; ++k) {
    std::optional<Result<PreparedChunk>> chunk;
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return slots[k].has_value(); });
      chunk = std::move(slots[k]);
      slots[k].reset();
      consumed = k + 1;
    }
    cv.notify_all();
    if (chunk->ok()) {
      status = consume(std::move(**chunk));
    } else {
      status = chunk->status();
    }
    if (!status.ok()) break;
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    cancelled = true;
    if (max_depth != nullptr) *max_depth = depth_hw;
  }
  cv.notify_all();
  for (std::thread& t : pool) t.join();
  return status;
}

}  // namespace

std::string BulkLoadStats::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "bulk load: %zu statement(s), %zu new link(s), %zu reused, "
                "%zu app row(s); %zu chunk(s), queue depth %zu; "
                "parse=%.1fms intern=%.1fms insert=%.1fms total=%.1fms; "
                "cpu=%.1fms alloc=%.1fMB",
                statements, new_links, reused_links, app_rows, chunks,
                max_queue_depth, static_cast<double>(parse_ns) / 1e6,
                static_cast<double>(intern_ns) / 1e6,
                static_cast<double>(insert_ns) / 1e6,
                static_cast<double>(total_ns) / 1e6,
                static_cast<double>(cpu_ns) / 1e6,
                static_cast<double>(alloc_bytes) / 1e6);
  return buf;
}

Result<BulkLoadStats> BulkLoadSequential(RdfStore* store,
                                         const std::string& model_name,
                                         const std::vector<NTriple>& statements,
                                         ApplicationTable* table) {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, store->GetModelId(model_name));
  Timer total;
  BulkLoadStats stats;
  int64_t next_id =
      table != nullptr ? static_cast<int64_t>(table->row_count()) + 1 : 0;
  for (const NTriple& t : statements) {
    size_t links_before = store->links().TotalTripleCount();
    RDFDB_ASSIGN_OR_RETURN(
        SdoRdfTripleS triple,
        store->InsertParsedTriple(model_id, t.subject, t.predicate,
                                  t.object));
    ++stats.statements;
    if (store->links().TotalTripleCount() > links_before) {
      ++stats.new_links;
    } else {
      ++stats.reused_links;
    }
    if (table != nullptr) {
      RDFDB_RETURN_NOT_OK(table->Insert(next_id++, triple));
      ++stats.app_rows;
    }
  }
  stats.total_ns = total.ElapsedNanos();
  store->metrics()->bulkload_statements->Inc(stats.statements);
  return stats;
}

Result<BulkLoadStats> BulkLoad(RdfStore* store,
                               const std::string& model_name,
                               const std::vector<NTriple>& statements,
                               ApplicationTable* table,
                               const BulkLoadOptions& options) {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, store->GetModelId(model_name));
  obs::ActiveOpGuard active_op(
      obs::OpKind::kBulkLoad,
      model_name + " (" + std::to_string(statements.size()) + " stmts)");
  Timer total;
  const size_t batch = std::max<size_t>(1, options.batch_size);
  const size_t chunk_count = (statements.size() + batch - 1) / batch;

  BulkLoadStats stats;
  int64_t next_app_id =
      table != nullptr ? static_cast<int64_t>(table->row_count()) + 1 : 0;
  ValueStore::InternCache cache;
  // Parse time is summed across workers through an atomic; per-chunk
  // times go straight to the (thread-safe) histogram. CPU/alloc deltas
  // of the parse workers accumulate the same way.
  std::atomic<int64_t> parse_ns{0};
  std::atomic<int64_t> parse_cpu_ns{0};
  std::atomic<uint64_t> parse_alloc_bytes{0};
  obs::StoreMetrics* metrics = store->metrics();

  obs::Timeline* timeline = store->timeline();

  Status status = RunOrderedPipeline(
      chunk_count, EffectiveThreads(options),
      [&](size_t k, unsigned worker) -> Result<PreparedChunk> {
        obs::TimelineScope parse_span(
            timeline, "chunk_prepare", "bulkload", worker,
            timeline != nullptr ? "chunk=" + std::to_string(k)
                                : std::string());
        Timer chunk_timer;
        obs::ResourceScope parse_scope("bulkload_parse");
        const size_t begin = k * batch;
        const size_t end = std::min(statements.size(), begin + batch);
        PreparedChunk chunk;
        chunk.prepared.resize(end - begin);
        for (size_t i = begin; i < end; ++i) {
          RDFDB_RETURN_NOT_OK(
              PrepareStatement(statements[i], &chunk.prepared[i - begin]));
        }
        const int64_t ns = chunk_timer.ElapsedNanos();
        parse_ns.fetch_add(ns, std::memory_order_relaxed);
        const obs::ResourceUsage usage = parse_scope.Usage();
        parse_cpu_ns.fetch_add(usage.cpu_ns, std::memory_order_relaxed);
        parse_alloc_bytes.fetch_add(usage.bytes_allocated,
                                    std::memory_order_relaxed);
        metrics->bulkload_parse_ns->Observe(static_cast<uint64_t>(ns));
        return chunk;
      },
      [&](PreparedChunk&& chunk) {
        // Chunk-boundary cancellation checkpoint: the token is only
        // consulted before a chunk's store mutations begin, so a fired
        // token never leaves a chunk half-inserted.
        if (options.cancel != nullptr && options.cancel->Expired()) {
          return options.cancel->StatusIfDone();
        }
        return ProcessChunk(store, model_id, chunk.prepared, &cache, table,
                            &next_app_id, &stats);
      },
      &stats.max_queue_depth);
  if (!status.ok()) {
    obs::LogErrorEvent(store->event_log(), "BulkLoad", status);
    return status;
  }
  stats.parse_ns = parse_ns.load(std::memory_order_relaxed);
  stats.cpu_ns += parse_cpu_ns.load(std::memory_order_relaxed);
  stats.alloc_bytes += parse_alloc_bytes.load(std::memory_order_relaxed);
  stats.total_ns = total.ElapsedNanos();
  metrics->bulkload_queue_depth->SetMax(
      static_cast<int64_t>(stats.max_queue_depth));
  if (obs::EventLog* elog = store->event_log()) {
    elog->Append(
        "bulkload", "done",
        {obs::EventField::Str("model", model_name),
         obs::EventField::Num("statements",
                              static_cast<int64_t>(stats.statements)),
         obs::EventField::Num("new_links",
                              static_cast<int64_t>(stats.new_links)),
         obs::EventField::Num("chunks", static_cast<int64_t>(stats.chunks)),
         obs::EventField::Num("elapsed_us", stats.total_ns / 1000)});
  }
  return stats;
}

Result<BulkLoadStats> BulkLoadFile(RdfStore* store,
                                   const std::string& model_name,
                                   const std::string& path,
                                   ApplicationTable* table,
                                   const BulkLoadOptions& options) {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, store->GetModelId(model_name));
  Timer total;
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = std::move(buffer).str();

  const size_t batch = std::max<size_t>(1, options.batch_size);
  const std::vector<NTriplesChunkSpec> specs =
      SplitNTriplesChunks(text, batch);

  BulkLoadStats stats;
  int64_t next_app_id =
      table != nullptr ? static_cast<int64_t>(table->row_count()) + 1 : 0;
  ValueStore::InternCache cache;
  std::atomic<int64_t> parse_ns{0};
  std::atomic<int64_t> parse_cpu_ns{0};
  std::atomic<uint64_t> parse_alloc_bytes{0};
  obs::StoreMetrics* metrics = store->metrics();

  obs::Timeline* timeline = store->timeline();

  Status status = RunOrderedPipeline(
      specs.size(), EffectiveThreads(options),
      [&](size_t k, unsigned worker) -> Result<PreparedChunk> {
        obs::TimelineScope parse_span(
            timeline, "chunk_parse", "bulkload", worker,
            timeline != nullptr ? "chunk=" + std::to_string(k)
                                : std::string());
        Timer chunk_timer;
        obs::ResourceScope parse_scope("bulkload_parse");
        const NTriplesChunkSpec& spec = specs[k];
        PreparedChunk chunk;
        RDFDB_ASSIGN_OR_RETURN(
            chunk.owned,
            ParseNTriplesChunk(
                std::string_view(text).substr(spec.begin,
                                              spec.end - spec.begin),
                spec.first_line));
        RDFDB_RETURN_NOT_OK(PrepareAll(chunk.owned, &chunk.prepared));
        const int64_t ns = chunk_timer.ElapsedNanos();
        parse_ns.fetch_add(ns, std::memory_order_relaxed);
        const obs::ResourceUsage usage = parse_scope.Usage();
        parse_cpu_ns.fetch_add(usage.cpu_ns, std::memory_order_relaxed);
        parse_alloc_bytes.fetch_add(usage.bytes_allocated,
                                    std::memory_order_relaxed);
        metrics->bulkload_parse_ns->Observe(static_cast<uint64_t>(ns));
        return chunk;
      },
      [&](PreparedChunk&& chunk) {
        // Chunk-boundary cancellation checkpoint: the token is only
        // consulted before a chunk's store mutations begin, so a fired
        // token never leaves a chunk half-inserted.
        if (options.cancel != nullptr && options.cancel->Expired()) {
          return options.cancel->StatusIfDone();
        }
        return ProcessChunk(store, model_id, chunk.prepared, &cache, table,
                            &next_app_id, &stats);
      },
      &stats.max_queue_depth);
  if (!status.ok()) {
    obs::LogErrorEvent(store->event_log(), "BulkLoadFile", status);
    return status;
  }
  stats.parse_ns = parse_ns.load(std::memory_order_relaxed);
  stats.cpu_ns += parse_cpu_ns.load(std::memory_order_relaxed);
  stats.alloc_bytes += parse_alloc_bytes.load(std::memory_order_relaxed);
  stats.total_ns = total.ElapsedNanos();
  metrics->bulkload_queue_depth->SetMax(
      static_cast<int64_t>(stats.max_queue_depth));
  if (obs::EventLog* elog = store->event_log()) {
    elog->Append(
        "bulkload", "done",
        {obs::EventField::Str("model", model_name),
         obs::EventField::Str("path", path),
         obs::EventField::Num("statements",
                              static_cast<int64_t>(stats.statements)),
         obs::EventField::Num("new_links",
                              static_cast<int64_t>(stats.new_links)),
         obs::EventField::Num("chunks", static_cast<int64_t>(stats.chunks)),
         obs::EventField::Num("elapsed_us", stats.total_ns / 1000)});
  }
  return stats;
}

Result<std::vector<NTriple>> ExportModel(const RdfStore& store,
                                         const std::string& model_name) {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, store.GetModelId(model_name));
  std::vector<NTriple> out;
  Status status = Status::OK();
  store.links().ScanModel(model_id, [&](const LinkRow& row) {
    auto s = store.TermForValueId(row.start_node_id);
    auto p = store.TermForValueId(row.p_value_id);
    auto o = store.TermForValueId(row.end_node_id);
    if (!s.ok() || !p.ok() || !o.ok()) {
      status = Status::Corruption("dangling VALUE_ID in model " +
                                  model_name);
      return false;
    }
    out.push_back(NTriple{std::move(s).value(), std::move(p).value(),
                          std::move(o).value()});
    return true;
  });
  RDFDB_RETURN_NOT_OK(status);
  return out;
}

Status ExportModelToFile(const RdfStore& store,
                         const std::string& model_name,
                         const std::string& path) {
  RDFDB_ASSIGN_OR_RETURN(std::vector<NTriple> statements,
                         ExportModel(store, model_name));
  return WriteNTriplesFile(path, statements);
}

}  // namespace rdfdb::rdf
