#include "rdf/bulk_load.h"

namespace rdfdb::rdf {

Result<BulkLoadStats> BulkLoad(RdfStore* store,
                               const std::string& model_name,
                               const std::vector<NTriple>& statements,
                               ApplicationTable* table) {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, store->GetModelId(model_name));
  BulkLoadStats stats;
  int64_t next_id =
      table != nullptr ? static_cast<int64_t>(table->row_count()) + 1 : 0;
  for (const NTriple& t : statements) {
    size_t links_before = store->links().TotalTripleCount();
    RDFDB_ASSIGN_OR_RETURN(
        SdoRdfTripleS triple,
        store->InsertParsedTriple(model_id, t.subject, t.predicate,
                                  t.object));
    ++stats.statements;
    if (store->links().TotalTripleCount() > links_before) {
      ++stats.new_links;
    } else {
      ++stats.reused_links;
    }
    if (table != nullptr) {
      RDFDB_RETURN_NOT_OK(table->Insert(next_id++, triple));
      ++stats.app_rows;
    }
  }
  return stats;
}

Result<BulkLoadStats> BulkLoadFile(RdfStore* store,
                                   const std::string& model_name,
                                   const std::string& path,
                                   ApplicationTable* table) {
  RDFDB_ASSIGN_OR_RETURN(std::vector<NTriple> statements,
                         ParseNTriplesFile(path));
  return BulkLoad(store, model_name, statements, table);
}

Result<std::vector<NTriple>> ExportModel(const RdfStore& store,
                                         const std::string& model_name) {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, store.GetModelId(model_name));
  std::vector<NTriple> out;
  Status status = Status::OK();
  store.links().ScanModel(model_id, [&](const LinkRow& row) {
    auto s = store.TermForValueId(row.start_node_id);
    auto p = store.TermForValueId(row.p_value_id);
    auto o = store.TermForValueId(row.end_node_id);
    if (!s.ok() || !p.ok() || !o.ok()) {
      status = Status::Corruption("dangling VALUE_ID in model " +
                                  model_name);
      return false;
    }
    out.push_back(NTriple{std::move(s).value(), std::move(p).value(),
                          std::move(o).value()});
    return true;
  });
  RDFDB_RETURN_NOT_OK(status);
  return out;
}

Status ExportModelToFile(const RdfStore& store,
                         const std::string& model_name,
                         const std::string& path) {
  RDFDB_ASSIGN_OR_RETURN(std::vector<NTriple> statements,
                         ExportModel(store, model_name));
  return WriteNTriplesFile(path, statements);
}

}  // namespace rdfdb::rdf
