// LinkStore: binding over the central-schema rdf_link$ table.
//
// "The rdf_link$ table is dual-purposed: it stores the triples for all the
// RDF graphs in the database, and it defines the logical network seen by
// NDM." This class maintains the table rows, the companion rdf_node$
// rows, and the in-memory NDM LogicalNetwork, keeping all three in sync.
// The table is partitioned by MODEL_ID, as in the paper.

#ifndef RDFDB_RDF_LINK_STORE_H_
#define RDFDB_RDF_LINK_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ndm/network.h"
#include "rdf/value_store.h"
#include "storage/database.h"

namespace rdfdb::rdf {

/// LINK_ID type (rdf_link$ primary key; also the triple id rdf_t_id).
using LinkId = int64_t;

/// Statement context: directly asserted fact vs. implied (entered only as
/// the base of a reification).
enum class TripleContext : char {
  kDirect = 'D',
  kImplied = 'I',
};

/// Materialized rdf_link$ row.
struct LinkRow {
  LinkId link_id = 0;
  ValueId start_node_id = 0;       ///< subject VALUE_ID
  ValueId p_value_id = 0;          ///< predicate VALUE_ID
  ValueId end_node_id = 0;         ///< object VALUE_ID
  ValueId canon_end_node_id = 0;   ///< canonical-object VALUE_ID
  std::string link_type;           ///< STANDARD / RDF_TYPE / RDF_MEMBER / RDF_*
  int64_t cost = 1;                ///< app-table reference count
  TripleContext context = TripleContext::kDirect;
  bool reif_link = false;          ///< any position references a reified triple
  int64_t model_id = 0;
};

/// Outcome of an insert: the (possibly pre-existing) link and whether a
/// new row was created.
struct LinkInsertOutcome {
  LinkRow row;
  bool inserted = false;
};

/// One statement of a batched link insert (already-interned VALUE_IDs).
struct LinkBatchEntry {
  ValueId s = 0;
  ValueId p = 0;
  ValueId o = 0;
  ValueId canon_o = 0;
  std::string link_type;
  TripleContext context = TripleContext::kDirect;
  bool reif_link = false;
};

/// Classify a predicate URI into the paper's LINK_TYPE codes.
std::string ClassifyPredicate(const std::string& predicate_uri);

/// Triple storage over rdf_link$ + rdf_node$ + the NDM network.
class LinkStore {
 public:
  /// Creates (or reattaches to) MDSYS.RDF_LINK$ / MDSYS.RDF_NODE$ inside
  /// `db` and binds the NDM network `net`.
  LinkStore(storage::Database* db, ndm::LogicalNetwork* net);

  /// Insert a triple into a model. If the identical (s, p, o) triple
  /// already exists in the model, no new row is created: COST is
  /// incremented ("the triple is only stored once ... but may exist in
  /// several rows in a user's application table"), an Implied row is
  /// upgraded to Direct when `context` is Direct, and REIF_LINK is OR-ed.
  Result<LinkInsertOutcome> Insert(int64_t model_id, ValueId s, ValueId p,
                                   ValueId o, ValueId canon_o,
                                   const std::string& link_type,
                                   TripleContext context, bool reif_link);

  /// Batched Insert for the bulk loader: semantically identical to
  /// calling Insert() once per entry in order (same LINK_ID assignment,
  /// same final COST / CONTEXT-upgrade / REIF_LINK state), but duplicate
  /// detection probes the SPO index once per distinct (s, p, o), repeated
  /// statements fold into a single UPDATE, new rows go through the
  /// table's staged append path with a pre-reserved LINK_ID range, and
  /// NDM nodes/links are registered in bulk. Outcome i reports whether
  /// entry i was the batch's first sighting of a brand-new triple.
  Result<std::vector<LinkInsertOutcome>> InsertBatch(
      int64_t model_id, const std::vector<LinkBatchEntry>& entries);

  /// Exact lookup of a triple in a model.
  std::optional<LinkRow> Find(int64_t model_id, ValueId s, ValueId p,
                              ValueId o) const;

  /// Fetch by LINK_ID.
  Result<LinkRow> Get(LinkId link_id) const;

  /// Pattern match within one model. Unbound positions are nullopt. The
  /// object position matches on CANON_END_NODE_ID (query semantics), so
  /// callers pass the canonical object's VALUE_ID.
  std::vector<LinkRow> Match(int64_t model_id, std::optional<ValueId> s,
                             std::optional<ValueId> p,
                             std::optional<ValueId> canon_o) const;

  /// Streaming variant of Match: visits each hit without materializing a
  /// vector; return false from `fn` to stop early (used by the query
  /// planner's bounded cardinality probes).
  void MatchEach(int64_t model_id, std::optional<ValueId> s,
                 std::optional<ValueId> p, std::optional<ValueId> canon_o,
                 const std::function<bool(const LinkRow&)>& fn) const;

  /// Drop one application-table reference: decrements COST and removes
  /// the row (plus the NDM link, plus now-orphaned nodes and rdf_node$
  /// rows) when the count reaches zero. `force` removes regardless of
  /// COST.
  Status Delete(int64_t model_id, ValueId s, ValueId p, ValueId o,
                bool force = false);

  /// Remove every triple of a model (model drop).
  Status DeleteModel(int64_t model_id);

  /// Number of triples in one model.
  size_t TripleCount(int64_t model_id) const;

  /// Number of triples across all models.
  size_t TotalTripleCount() const { return links_->row_count(); }

  /// Visit every link row of a model.
  void ScanModel(int64_t model_id,
                 const std::function<bool(const LinkRow&)>& fn) const;

  /// Underlying table (Experiment I's direct-join query reads it).
  const storage::Table& table() const { return *links_; }

  static constexpr const char* kLinkIdIndex = "rdf_link_id_idx";
  static constexpr const char* kSpoIndex = "rdf_link_spo_idx";
  static constexpr const char* kSubjectIndex = "rdf_link_s_idx";
  static constexpr const char* kPredicateIndex = "rdf_link_p_idx";
  static constexpr const char* kObjectIndex = "rdf_link_o_idx";

  /// Attach the owning store's metric handles. Null (the default, and
  /// the state of standalone test instances) disables instrumentation.
  void set_metrics(obs::StoreMetrics* metrics) { metrics_ = metrics; }

 private:
  LinkRow RowToLink(const storage::Row& row) const;
  storage::Row LinkToRow(const LinkRow& link) const;
  void RemoveFromNetwork(const LinkRow& link);
  void EnsureNode(ValueId node);
  void DropNodeIfOrphaned(ValueId node);

  storage::Database* db_;
  ndm::LogicalNetwork* net_;
  storage::Table* links_;   // MDSYS.RDF_LINK$
  storage::Table* nodes_;   // MDSYS.RDF_NODE$
  storage::Sequence* link_seq_;
  obs::StoreMetrics* metrics_ = nullptr;
};

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_LINK_STORE_H_
