// LinkStore: binding over the central-schema rdf_link$ table.
//
// "The rdf_link$ table is dual-purposed: it stores the triples for all the
// RDF graphs in the database, and it defines the logical network seen by
// NDM." This class maintains the table rows, the companion rdf_node$
// rows, and the in-memory NDM LogicalNetwork, keeping all three in sync.
// The table is partitioned by MODEL_ID, as in the paper.

#ifndef RDFDB_RDF_LINK_STORE_H_
#define RDFDB_RDF_LINK_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "ndm/network.h"
#include "rdf/codec.h"
#include "rdf/value_store.h"
#include "storage/database.h"

namespace rdfdb::rdf {

/// LINK_ID type (rdf_link$ primary key; also the triple id rdf_t_id).
using LinkId = int64_t;

/// Statement context: directly asserted fact vs. implied (entered only as
/// the base of a reification).
enum class TripleContext : char {
  kDirect = 'D',
  kImplied = 'I',
};

/// Materialized rdf_link$ row.
struct LinkRow {
  LinkId link_id = 0;
  ValueId start_node_id = 0;       ///< subject VALUE_ID
  ValueId p_value_id = 0;          ///< predicate VALUE_ID
  ValueId end_node_id = 0;         ///< object VALUE_ID
  ValueId canon_end_node_id = 0;   ///< canonical-object VALUE_ID
  std::string link_type;           ///< STANDARD / RDF_TYPE / RDF_MEMBER / RDF_*
  int64_t cost = 1;                ///< app-table reference count
  TripleContext context = TripleContext::kDirect;
  bool reif_link = false;          ///< any position references a reified triple
  int64_t model_id = 0;
};

/// Outcome of an insert: the (possibly pre-existing) link and whether a
/// new row was created.
struct LinkInsertOutcome {
  LinkRow row;
  bool inserted = false;
};

/// One statement of a batched link insert (already-interned VALUE_IDs).
struct LinkBatchEntry {
  ValueId s = 0;
  ValueId p = 0;
  ValueId o = 0;
  ValueId canon_o = 0;
  std::string link_type;
  TripleContext context = TripleContext::kDirect;
  bool reif_link = false;
};

/// Classify a predicate URI into the paper's LINK_TYPE codes.
std::string ClassifyPredicate(const std::string& predicate_uri);

/// Triple storage over rdf_link$ + rdf_node$ + the NDM network.
class LinkStore {
 public:
  /// Creates (or reattaches to) MDSYS.RDF_LINK$ / MDSYS.RDF_NODE$ inside
  /// `db` and binds the NDM network `net`.
  LinkStore(storage::Database* db, ndm::LogicalNetwork* net);

  /// Insert a triple into a model. If the identical (s, p, o) triple
  /// already exists in the model, no new row is created: COST is
  /// incremented ("the triple is only stored once ... but may exist in
  /// several rows in a user's application table"), an Implied row is
  /// upgraded to Direct when `context` is Direct, and REIF_LINK is OR-ed.
  Result<LinkInsertOutcome> Insert(int64_t model_id, ValueId s, ValueId p,
                                   ValueId o, ValueId canon_o,
                                   const std::string& link_type,
                                   TripleContext context, bool reif_link);

  /// Batched Insert for the bulk loader: semantically identical to
  /// calling Insert() once per entry in order (same LINK_ID assignment,
  /// same final COST / CONTEXT-upgrade / REIF_LINK state), but duplicate
  /// detection probes the SPO index once per distinct (s, p, o), repeated
  /// statements fold into a single UPDATE, new rows go through the
  /// table's staged append path with a pre-reserved LINK_ID range, and
  /// NDM nodes/links are registered in bulk. Outcome i reports whether
  /// entry i was the batch's first sighting of a brand-new triple.
  Result<std::vector<LinkInsertOutcome>> InsertBatch(
      int64_t model_id, const std::vector<LinkBatchEntry>& entries);

  /// Exact lookup of a triple in a model.
  std::optional<LinkRow> Find(int64_t model_id, ValueId s, ValueId p,
                              ValueId o) const;

  /// Fetch by LINK_ID.
  Result<LinkRow> Get(LinkId link_id) const;

  /// Pattern match within one model. Unbound positions are nullopt. The
  /// object position matches on CANON_END_NODE_ID (query semantics), so
  /// callers pass the canonical object's VALUE_ID.
  std::vector<LinkRow> Match(int64_t model_id, std::optional<ValueId> s,
                             std::optional<ValueId> p,
                             std::optional<ValueId> canon_o) const;

  /// Streaming variant of Match: visits each hit without materializing a
  /// vector; return false from `fn` to stop early (used by the query
  /// planner's bounded cardinality probes). All three positions bound is
  /// a point lookup on the (model, s, p, canon_o) index instead of a
  /// posting scan.
  void MatchEach(int64_t model_id, std::optional<ValueId> s,
                 std::optional<ValueId> p, std::optional<ValueId> canon_o,
                 const std::function<bool(const LinkRow&)>& fn) const;

  /// Id-only streaming match for the join executor's hot loop: same
  /// semantics as MatchEach, but served from the id-native quad cache —
  /// no ValueKey construction per probe, no row fetch or Value decode
  /// per posting, and no LinkRow (whose LINK_TYPE/CONTEXT string
  /// columns the executor never reads). A probe with both subject and
  /// predicate bound — the inner loop of chain joins — hits a dedicated
  /// (s, p) posting list with no residual filtering at all.
  void MatchEachIds(
      int64_t model_id, std::optional<ValueId> s, std::optional<ValueId> p,
      std::optional<ValueId> canon_o,
      const std::function<bool(ValueId s, ValueId p, ValueId o,
                               ValueId canon_o)>& fn) const;

  /// Rebuild the id-native quad cache from the rdf_link$ rows. The
  /// cache is maintained in lockstep by Insert/InsertBatch/Delete/
  /// DeleteModel; this is for callers that populate the table behind
  /// the store's back (snapshot restore copies raw rows to preserve
  /// LINK_IDs). The constructor runs it for reattach.
  void RebuildCache();

  /// Drop one application-table reference: decrements COST and removes
  /// the row (plus the NDM link, plus now-orphaned nodes and rdf_node$
  /// rows) when the count reaches zero. `force` removes regardless of
  /// COST.
  Status Delete(int64_t model_id, ValueId s, ValueId p, ValueId o,
                bool force = false);

  /// Remove every triple of a model (model drop).
  Status DeleteModel(int64_t model_id);

  /// Number of triples in one model.
  size_t TripleCount(int64_t model_id) const;

  /// Number of triples across all models.
  size_t TotalTripleCount() const { return links_->row_count(); }

  /// Visit every link row of a model.
  void ScanModel(int64_t model_id,
                 const std::function<bool(const LinkRow&)>& fn) const;

  /// Underlying table (Experiment I's direct-join query reads it).
  const storage::Table& table() const { return *links_; }

  /// Attach the owning store's metric handles. Null (the default, and
  /// the state of standalone test instances) disables instrumentation.
  void set_metrics(obs::StoreMetrics* metrics) { metrics_ = metrics; }

  /// One rdf_link$ row's VALUE_ID columns, as cached for query scans.
  struct IdQuad {
    ValueId s, p, o, canon_o;
    LinkId link_id;
  };

  /// Flat open-addressing (subject, predicate) → rows map with the
  /// single-row answer inlined in the slot: the overwhelmingly common
  /// probe shape in chain and star joins (one matching row) is answered
  /// from one slot load, with no posting-list or quad-array
  /// indirection. Multi-row groups spill to an overflow posting list in
  /// creation order. Deletes tombstone the slot; rehashing drops
  /// tombstones.
  class SpMap {
   public:
    struct Hit {
      const uint32_t* list = nullptr;  ///< row indexes when n > 1
      uint32_t n = 0;                  ///< match count (0 = miss)
      uint32_t head = 0;               ///< single row's quad index
      ValueId o = 0;                   ///< single row's object
      ValueId canon_o = 0;             ///< single row's canonical object
    };

    Hit Probe(ValueId s, ValueId p) const {
      if (slots_.empty()) return Hit{};
      for (size_t i = IndexFor(s, p);; i = (i + 1) & mask_) {
        const Slot& slot = slots_[i];
        if (slot.s == kEmpty) return Hit{};
        if (slot.s != s || slot.p != p) continue;  // incl. tombstones
        Hit hit;
        if (slot.overflow < 0) {
          hit.n = 1;
          hit.head = slot.head;
          hit.o = slot.o;
          hit.canon_o = slot.canon_o;
        } else {
          const std::vector<uint32_t>& rows = overflow_[slot.overflow];
          hit.list = rows.data();
          hit.n = static_cast<uint32_t>(rows.size());
        }
        return hit;
      }
    }

    void Insert(ValueId s, ValueId p, uint32_t idx, ValueId o,
                ValueId canon_o);

    /// Approximate heap bytes: slot array + overflow posting lists.
    size_t ApproxBytes() const {
      size_t n = slots_.capacity() * sizeof(Slot) +
                 overflow_.capacity() * sizeof(std::vector<uint32_t>) +
                 free_overflow_.capacity() * sizeof(int32_t);
      for (const std::vector<uint32_t>& rows : overflow_) {
        n += rows.capacity() * sizeof(uint32_t);
      }
      return n;
    }
    /// Remove row `idx`; `quads` re-derives the inline payload when an
    /// overflow list collapses back to a single row.
    void Erase(ValueId s, ValueId p, uint32_t idx,
               const std::vector<IdQuad>& quads);

   private:
    static constexpr ValueId kEmpty = -1;
    static constexpr ValueId kGone = -2;  ///< tombstone
    struct Slot {
      ValueId s = kEmpty;
      ValueId p = 0;
      uint32_t head = 0;
      int32_t overflow = -1;
      ValueId o = 0;
      ValueId canon_o = 0;
    };

    size_t IndexFor(ValueId s, ValueId p) const {
      uint64_t h = HashCombine(static_cast<uint64_t>(s),
                               static_cast<uint64_t>(p));
      // Full-avalanche finalizer: linear probing clusters badly on
      // HashCombine alone when ids are near-sequential.
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      return static_cast<size_t>(h) & mask_;
    }
    Slot& SlotFor(ValueId s, ValueId p);
    void Grow();

    std::vector<Slot> slots_;
    std::vector<std::vector<uint32_t>> overflow_;
    std::vector<int32_t> free_overflow_;
    size_t used_ = 0;  ///< full + tombstoned slots
    size_t mask_ = 0;
  };

  /// Posting map: one delta+varint compressed list of quad indexes per
  /// key. Lists are append-only ascending; deletions tombstone the
  /// referenced quad instead of editing the list (see DESIGN.md §14).
  using PostingMap = std::unordered_map<ValueId, codec::PostingList>;

  /// Per-model id-native postings backing MatchEachIds and the
  /// executors' leaf scans: quads in creation order plus compressed
  /// posting lists by subject, canonical object, and predicate (quad
  /// indexes, delta+varint with a skip table for galloping), an exact
  /// (subject, predicate) hash, and a sorted LINK_ID → quad index
  /// vector. Scans decode cursors instead of walking flat int arrays.
  /// Maintained by every mutation path in lockstep with the table (and
  /// rebuilt from it on reattach), so reads need no locking beyond
  /// what the table itself requires.
  ///
  /// Deletes tombstone: the quad's ids are overwritten with -1 (no
  /// query carries a negative id, so residual filters skip dead quads
  /// for free) and stale posting entries are tolerated by every scan.
  /// Compact() renumbers once dead quads outnumber live ones.
  ///
  /// Instances are held by shared_ptr and copied-on-write: the store
  /// clones a model's cache before the first mutation that follows a
  /// ShareCaches() call, so published snapshots keep reading the old
  /// object while the store mutates the clone.
  struct ModelIdCache {
    std::vector<IdQuad> quads;       ///< creation order; dead = all -1
    std::vector<uint32_t> row_ids;   ///< parallel: rdf_link$ RowId per quad
    PostingMap by_s;
    SpMap by_sp;
    PostingMap by_canon;
    PostingMap by_p;
    /// LINK_ID → quad index, sorted by LINK_ID (link ids ascend in
    /// creation order). Tombstoned entries keep the key with
    /// kDeadIdx as the value so the vector stays sorted.
    std::vector<std::pair<LinkId, uint32_t>> by_link;
    size_t implied_count = 0;  ///< rows with CONTEXT == Implied
    size_t dead_count = 0;     ///< tombstoned quads awaiting Compact()
    /// Heap bytes of the three posting maps' list payloads (vector
    /// capacities), maintained incrementally by Append/Compact so
    /// ApproxBytes stays cheap on the publish path.
    size_t posting_heap_bytes = 0;

    static constexpr uint32_t kDeadIdx = 0xffffffffu;
    static bool Dead(const IdQuad& q) { return q.link_id < 0; }
    size_t live_count() const { return quads.size() - dead_count; }

    /// Append a new quad (all posting structures updated).
    void Append(const IdQuad& quad, uint32_t row_id, bool implied);
    /// Tombstone quad `idx` (caller resolved it via IndexOfLink).
    void Tombstone(uint32_t idx, bool implied);
    /// Quad index for LINK_ID, or -1 when absent/tombstoned.
    int64_t IndexOfLink(LinkId link_id) const;
    /// Renumber live quads and rebuild every posting structure.
    void Compact();
    bool ShouldCompact() const {
      return dead_count > 4096 && dead_count * 2 > quads.size();
    }
    /// Re-derive posting_heap_bytes exactly (used after a COW clone,
    /// whose copied vectors have fresh capacities).
    void RecomputePostingBytes();

    /// Approximate heap bytes owned by this cache object, from real
    /// container geometry: vector capacities, hash bucket arrays, and
    /// per-node allocator overhead — no flat per-entry constants.
    /// Drives the quad-cache memory gauge and the exclusive-footprint
    /// estimate stamped onto retired StoreVersions. O(1)-ish — the
    /// publish path calls it once per mutation.
    size_t ApproxBytes() const {
      return sizeof(ModelIdCache) + quads.capacity() * sizeof(IdQuad) +
             row_ids.capacity() * sizeof(uint32_t) + by_sp.ApproxBytes() +
             by_link.capacity() * sizeof(std::pair<LinkId, uint32_t>) +
             posting_heap_bytes + MapNodeBytes(by_s) +
             MapNodeBytes(by_canon) + MapNodeBytes(by_p);
    }

    /// Exact (s, p, lexical-object) probe — the identity Insert/Delete
    /// and IS_TRIPLE use. Returns the quad index or -1.
    int64_t FindSpoIdx(ValueId s, ValueId p, ValueId o) const {
      SpMap::Hit hit = by_sp.Probe(s, p);
      if (hit.n == 0) return -1;
      if (hit.n == 1) return hit.o == o ? static_cast<int64_t>(hit.head) : -1;
      for (uint32_t i = 0; i < hit.n; ++i) {
        if (quads[hit.list[i]].o == o) {
          return static_cast<int64_t>(hit.list[i]);
        }
      }
      return -1;
    }
    const IdQuad* FindSpo(ValueId s, ValueId p, ValueId o) const {
      int64_t idx = FindSpoIdx(s, p, o);
      return idx < 0 ? nullptr : &quads[static_cast<uint32_t>(idx)];
    }

   private:
    /// Hash-map node accounting: bucket array + one node per key
    /// (payload + ~two pointers of allocator overhead). List payload
    /// bytes live in posting_heap_bytes.
    static size_t MapNodeBytes(const PostingMap& postings) {
      return postings.bucket_count() * sizeof(void*) +
             postings.size() *
                 (sizeof(std::pair<const ValueId, codec::PostingList>) +
                  2 * sizeof(void*));
    }
    /// Append `idx` to postings[key], keeping posting_heap_bytes exact.
    void PostingAppend(PostingMap* postings, ValueId key, uint32_t idx);
  };

  /// Id-only match kernel over one cache: index choice (sp probe →
  /// postings → full scan), residual filtering, and scan accounting.
  /// Shared by the store's MatchEachIds and by published StoreVersions,
  /// which run it against their pinned cache objects.
  static void MatchCache(
      const ModelIdCache& cache, std::optional<ValueId> s,
      std::optional<ValueId> p, std::optional<ValueId> canon_o,
      const std::function<bool(ValueId s, ValueId p, ValueId o,
                               ValueId canon_o)>& fn,
      obs::Counter* scans);

  /// Shared read-only handles on every model's current cache — the raw
  /// material of a published snapshot. Cheap (one shared_ptr copy per
  /// model); subsequent store mutations copy-on-write and leave the
  /// returned objects untouched.
  std::unordered_map<int64_t, std::shared_ptr<const ModelIdCache>>
  ShareCaches() const {
    std::unordered_map<int64_t, std::shared_ptr<const ModelIdCache>> out;
    out.reserve(id_cache_.size());
    for (const auto& [model_id, cache] : id_cache_) {
      out.emplace(model_id, cache);
    }
    return out;
  }

  /// Borrowed read-only view of one model's quad cache for the compiled
  /// executor's leaf scans: direct posting access with no virtual
  /// dispatch or per-row callback. Invalidated by any mutation of the
  /// store, so hold one only for the duration of a query.
  class LeafScan {
   public:
    LeafScan() = default;
    /// View over an externally-owned cache (a published StoreVersion's
    /// pinned object); `scans` may be null to disable accounting.
    LeafScan(const ModelIdCache* cache, obs::Counter* scans)
        : cache_(cache), scans_(scans) {}
    bool valid() const { return cache_ != nullptr; }
    const IdQuad* quads() const { return cache_->quads.data(); }
    uint32_t quad_count() const {
      return static_cast<uint32_t>(cache_->quads.size());
    }
    SpMap::Hit ProbeSp(ValueId s, ValueId p) const {
      return cache_->by_sp.Probe(s, p);
    }
    /// Compressed posting lists (quad indexes; may reference
    /// tombstoned quads — check IdQuad::link_id or rely on residual
    /// filters, which never match a dead quad's -1 ids).
    const codec::PostingList* PostingsS(ValueId s) const {
      return FindPostings(cache_->by_s, s);
    }
    const codec::PostingList* PostingsCanon(ValueId canon_o) const {
      return FindPostings(cache_->by_canon, canon_o);
    }
    const codec::PostingList* PostingsP(ValueId p) const {
      return FindPostings(cache_->by_p, p);
    }
    /// Mirror MatchEachIds' store-level scan accounting.
    void CountScanned(size_t n) const {
      if (scans_ != nullptr && n > 0) scans_->Inc(n);
    }

   private:
    friend class LinkStore;
    static const codec::PostingList* FindPostings(const PostingMap& postings,
                                                  ValueId key) {
      auto it = postings.find(key);
      return it == postings.end() ? nullptr : &it->second;
    }
    const ModelIdCache* cache_ = nullptr;
    obs::Counter* scans_ = nullptr;
  };

  /// Leaf-scan view of `model_id`; invalid when the model has no rows.
  LeafScan Leaf(int64_t model_id) const;

  /// Approximate heap bytes across every model's current quad cache.
  size_t CacheBytes() const {
    size_t n = 0;
    for (const auto& [model_id, cache] : id_cache_) {
      (void)model_id;
      n += cache->ApproxBytes();
    }
    return n;
  }

  /// Approximate heap bytes of the rdf_link$ + rdf_node$ rows and their
  /// storage-layer indexes.
  size_t TableBytes() const {
    return links_->ApproxTotalBytes() + nodes_->ApproxTotalBytes();
  }

 private:
  /// Cache-driven match yielding quad indexes: access-path choice
  /// (SpMap probe → posting cursor → full scan), dead-quad skipping,
  /// residual filtering, and scan accounting. MatchCache and MatchRows
  /// are both built on it.
  static void MatchCacheIndexes(
      const ModelIdCache& cache, std::optional<ValueId> s,
      std::optional<ValueId> p, std::optional<ValueId> canon_o,
      const std::function<bool(uint32_t idx)>& fn, obs::Counter* scans);

  /// Row-level match kernel for callers that need full rdf_link$ rows
  /// (MatchEach): cache-driven candidates, rows fetched by the cache's
  /// RowId column.
  void MatchRows(int64_t model_id, std::optional<ValueId> s,
                 std::optional<ValueId> p, std::optional<ValueId> canon_o,
                 const std::function<bool(const storage::Row&)>& fn) const;

  /// Mutable handle on one model's cache, cloning it first when a
  /// published snapshot still shares the current object (copy-on-write;
  /// only the serialized writer manipulates these shared_ptrs).
  ModelIdCache& MutableCache(int64_t model_id);

  void CacheInsert(int64_t model_id, const IdQuad& quad,
                   storage::RowId row_id, bool implied);
  void CacheErase(int64_t model_id, LinkId link_id, bool implied);
  /// An existing row's CONTEXT flipped Implied → Direct.
  void CacheContextUpgrade(int64_t model_id);

  LinkRow RowToLink(const storage::Row& row) const;
  storage::Row LinkToRow(const LinkRow& link) const;
  void RemoveFromNetwork(const LinkRow& link);
  void EnsureNode(ValueId node);
  void DropNodeIfOrphaned(ValueId node);

  storage::Database* db_;
  ndm::LogicalNetwork* net_;
  storage::Table* links_;   // MDSYS.RDF_LINK$
  storage::Table* nodes_;   // MDSYS.RDF_NODE$
  storage::Sequence* link_seq_;
  std::unordered_map<int64_t, std::shared_ptr<ModelIdCache>> id_cache_;
  obs::StoreMetrics* metrics_ = nullptr;
};

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_LINK_STORE_H_
