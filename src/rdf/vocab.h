// W3C RDF / RDFS / XSD vocabulary constants used across the RDF layer.

#ifndef RDFDB_RDF_VOCAB_H_
#define RDFDB_RDF_VOCAB_H_

#include <string_view>

namespace rdfdb::rdf {

inline constexpr std::string_view kRdfNs =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
inline constexpr std::string_view kRdfsNs =
    "http://www.w3.org/2000/01/rdf-schema#";
inline constexpr std::string_view kXsdNs =
    "http://www.w3.org/2001/XMLSchema#";

// RDF core.
inline constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr std::string_view kRdfStatement =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#Statement";
inline constexpr std::string_view kRdfSubject =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#subject";
inline constexpr std::string_view kRdfPredicate =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#predicate";
inline constexpr std::string_view kRdfObject =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#object";
inline constexpr std::string_view kRdfBag =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#Bag";
inline constexpr std::string_view kRdfSeq =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#Seq";
inline constexpr std::string_view kRdfAlt =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#Alt";
inline constexpr std::string_view kRdfLi =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#li";
inline constexpr std::string_view kRdfProperty =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property";

// RDFS.
inline constexpr std::string_view kRdfsSubClassOf =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr std::string_view kRdfsSubPropertyOf =
    "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
inline constexpr std::string_view kRdfsDomain =
    "http://www.w3.org/2000/01/rdf-schema#domain";
inline constexpr std::string_view kRdfsRange =
    "http://www.w3.org/2000/01/rdf-schema#range";
inline constexpr std::string_view kRdfsResource =
    "http://www.w3.org/2000/01/rdf-schema#Resource";
inline constexpr std::string_view kRdfsClass =
    "http://www.w3.org/2000/01/rdf-schema#Class";
inline constexpr std::string_view kRdfsLiteral =
    "http://www.w3.org/2000/01/rdf-schema#Literal";
inline constexpr std::string_view kRdfsSeeAlso =
    "http://www.w3.org/2000/01/rdf-schema#seeAlso";
inline constexpr std::string_view kRdfsLabel =
    "http://www.w3.org/2000/01/rdf-schema#label";
inline constexpr std::string_view kRdfsMember =
    "http://www.w3.org/2000/01/rdf-schema#member";
inline constexpr std::string_view kRdfsContainerMembershipProperty =
    "http://www.w3.org/2000/01/rdf-schema#ContainerMembershipProperty";

// XSD datatypes.
inline constexpr std::string_view kXsdString =
    "http://www.w3.org/2001/XMLSchema#string";
inline constexpr std::string_view kXsdInt =
    "http://www.w3.org/2001/XMLSchema#int";
inline constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr std::string_view kXsdLong =
    "http://www.w3.org/2001/XMLSchema#long";
inline constexpr std::string_view kXsdShort =
    "http://www.w3.org/2001/XMLSchema#short";
inline constexpr std::string_view kXsdByte =
    "http://www.w3.org/2001/XMLSchema#byte";
inline constexpr std::string_view kXsdDecimal =
    "http://www.w3.org/2001/XMLSchema#decimal";
inline constexpr std::string_view kXsdDouble =
    "http://www.w3.org/2001/XMLSchema#double";
inline constexpr std::string_view kXsdFloat =
    "http://www.w3.org/2001/XMLSchema#float";
inline constexpr std::string_view kXsdBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";
inline constexpr std::string_view kXsdDate =
    "http://www.w3.org/2001/XMLSchema#date";
inline constexpr std::string_view kXsdDateTime =
    "http://www.w3.org/2001/XMLSchema#dateTime";

/// True for rdf:_1, rdf:_2, ... (container membership properties).
bool IsContainerMembershipProperty(std::string_view uri);

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_VOCAB_H_
