// The paper's two RDF object types:
//
//   SDO_RDF_TRIPLE    — the triple *view*: subject / property / object text
//   SDO_RDF_TRIPLE_S  — the triple *storage* object: only IDs pointing at
//                       the one-copy triple in the central schema, plus
//                       member functions that resolve text on demand.

#ifndef RDFDB_RDF_TRIPLE_H_
#define RDFDB_RDF_TRIPLE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "rdf/link_store.h"
#include "rdf/model_store.h"
#include "rdf/value_store.h"

namespace rdfdb::rdf {

class RdfStore;

/// SDO_RDF_TRIPLE: resolved triple text.
struct SdoRdfTriple {
  std::string subject;
  std::string property;
  std::string object;

  /// "(<s>, <p>, <o>)" — the printed output of GET_TRIPLE().
  std::string ToString() const {
    return "(" + subject + ", " + property + ", " + object + ")";
  }

  bool operator==(const SdoRdfTriple& other) const {
    return subject == other.subject && property == other.property &&
           object == other.object;
  }
};

/// SDO_RDF_TRIPLE_S: the persistent object stored in application tables.
/// It "contains only IDs that point to the triple maintained in the
/// central schema".
class SdoRdfTripleS {
 public:
  SdoRdfTripleS() = default;
  SdoRdfTripleS(const RdfStore* store, LinkId rdf_t_id, ModelId rdf_m_id,
                ValueId rdf_s_id, ValueId rdf_p_id, ValueId rdf_o_id)
      : store_(store),
        rdf_t_id_(rdf_t_id),
        rdf_m_id_(rdf_m_id),
        rdf_s_id_(rdf_s_id),
        rdf_p_id_(rdf_p_id),
        rdf_o_id_(rdf_o_id) {}

  /// LINK_ID of the triple in rdf_link$.
  LinkId rdf_t_id() const { return rdf_t_id_; }
  /// MODEL_ID of the owning graph.
  ModelId rdf_m_id() const { return rdf_m_id_; }
  /// VALUE_ID of the subject.
  ValueId rdf_s_id() const { return rdf_s_id_; }
  /// VALUE_ID of the predicate.
  ValueId rdf_p_id() const { return rdf_p_id_; }
  /// VALUE_ID of the object.
  ValueId rdf_o_id() const { return rdf_o_id_; }

  /// GET_TRIPLE(): resolve all three texts from the central schema.
  Result<SdoRdfTriple> GetTriple() const;

  /// GET_SUBJECT(): subject text.
  Result<std::string> GetSubject() const;

  /// GET_PROPERTY(): predicate text.
  Result<std::string> GetProperty() const;

  /// GET_OBJECT(): object text. Returned as a full (possibly long)
  /// string — the paper returns a CLOB "since the returned object may be
  /// a long literal".
  Result<std::string> GetObject() const;

  bool valid() const { return store_ != nullptr; }

 private:
  const RdfStore* store_ = nullptr;
  LinkId rdf_t_id_ = 0;
  ModelId rdf_m_id_ = 0;
  ValueId rdf_s_id_ = 0;
  ValueId rdf_p_id_ = 0;
  ValueId rdf_o_id_ = 0;
};

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_TRIPLE_H_
