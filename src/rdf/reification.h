// Streamlined reification support.
//
// The paper replaces the four-triple reification quad with a single
// triple <DBUri(link), rdf:type, rdf:Statement>, where the DBUri
// "/ORADB/MDSYS/RDF_LINK$/ROW[LINK_ID=n]" addresses the reified triple's
// row directly. This header holds the URI construction/recognition
// helpers shared by RdfStore and the quad loader.

#ifndef RDFDB_RDF_REIFICATION_H_
#define RDFDB_RDF_REIFICATION_H_

#include <optional>
#include <string>

#include "common/result.h"
#include "rdf/link_store.h"

namespace rdfdb::rdf {

/// Canonical DBUri text for a triple's rdf_link$ row:
/// "/<db>/MDSYS/RDF_LINK$/ROW[LINK_ID=<link_id>]".
std::string DBUriForLink(LinkId link_id, const std::string& db_name = "ORADB");

/// If `uri` is a reification DBUri addressing rdf_link$ by LINK_ID,
/// return that LINK_ID; otherwise nullopt.
std::optional<LinkId> LinkIdFromDBUri(const std::string& uri);

/// True if `uri` is a reification DBUri (syntactic test only).
bool IsReificationUri(const std::string& uri);

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_REIFICATION_H_
