#include "rdf/app_table.h"

namespace rdfdb::rdf {

namespace {

using storage::ColumnDef;
using storage::IndexKind;
using storage::KeyExtractor;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueKey;
using storage::ValueType;

constexpr size_t kId = 0;
constexpr size_t kTId = 1;
constexpr size_t kMId = 2;
constexpr size_t kSId = 3;
constexpr size_t kPId = 4;
constexpr size_t kOId = 5;

constexpr const char* kSubjectIndexName = "app_sub_fbidx";
constexpr const char* kPropertyIndexName = "app_prop_fbidx";
constexpr const char* kObjectIndexName = "app_obj_fbidx";

Schema AppSchema() {
  return Schema({
      ColumnDef{"ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"RDF_T_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"RDF_M_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"RDF_S_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"RDF_P_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"RDF_O_ID", ValueType::kInt64, /*nullable=*/false},
  });
}

}  // namespace

ApplicationTable::ApplicationTable(RdfStore* store, storage::Table* table,
                                   std::string schema, std::string table_name)
    : store_(store),
      table_(table),
      schema_(std::move(schema)),
      table_name_(std::move(table_name)) {}

Result<ApplicationTable> ApplicationTable::Create(
    RdfStore* store, const std::string& schema,
    const std::string& table_name) {
  auto table =
      store->database().CreateTable(schema, table_name, AppSchema());
  if (!table.ok()) return table.status();
  return ApplicationTable(store, *table, schema, table_name);
}

Result<ApplicationTable> ApplicationTable::Attach(
    RdfStore* store, const std::string& schema,
    const std::string& table_name) {
  storage::Table* table = store->database().GetTable(schema, table_name);
  if (table == nullptr) {
    return Status::NotFound("table " + schema + "." + table_name);
  }
  return ApplicationTable(store, table, schema, table_name);
}

Status ApplicationTable::Insert(int64_t id, const SdoRdfTripleS& triple) {
  Row row(6);
  row[kId] = Value::Int64(id);
  row[kTId] = Value::Int64(triple.rdf_t_id());
  row[kMId] = Value::Int64(triple.rdf_m_id());
  row[kSId] = Value::Int64(triple.rdf_s_id());
  row[kPId] = Value::Int64(triple.rdf_p_id());
  row[kOId] = Value::Int64(triple.rdf_o_id());
  auto insert = table_->Insert(std::move(row));
  if (!insert.ok()) return insert.status();
  return Status::OK();
}

size_t ApplicationTable::row_count() const { return table_->row_count(); }

SdoRdfTripleS ApplicationTable::RowToTriple(const Row& row) const {
  return SdoRdfTripleS(store_, row[kTId].as_int64(), row[kMId].as_int64(),
                       row[kSId].as_int64(), row[kPId].as_int64(),
                       row[kOId].as_int64());
}

storage::KeyExtractor ApplicationTable::TextExtractor(
    size_t id_column, std::string description) const {
  const RdfStore* store = store_;
  return KeyExtractor::Function(
      [store, id_column](const Row& row) -> ValueKey {
        auto text = store->TextForValueId(row[id_column].as_int64());
        if (!text.ok()) return ValueKey{Value::Null()};
        return ValueKey{Value::String(std::move(text).value())};
      },
      std::move(description));
}

Status ApplicationTable::CreateSubjectIndex() {
  return table_->CreateIndex(kSubjectIndexName, IndexKind::kHash,
                             TextExtractor(kSId, "triple.GET_SUBJECT()"),
                             /*unique=*/false);
}

Status ApplicationTable::CreatePropertyIndex() {
  return table_->CreateIndex(kPropertyIndexName, IndexKind::kHash,
                             TextExtractor(kPId, "triple.GET_PROPERTY()"),
                             /*unique=*/false);
}

Status ApplicationTable::CreateObjectIndex() {
  return table_->CreateIndex(
      kObjectIndexName, IndexKind::kHash,
      TextExtractor(kOId, "TO_CHAR(triple.GET_OBJECT())"),
      /*unique=*/false);
}

Status ApplicationTable::DropSubjectIndex() {
  return table_->DropIndex(kSubjectIndexName);
}

Status ApplicationTable::DropPropertyIndex() {
  return table_->DropIndex(kPropertyIndexName);
}

Status ApplicationTable::DropObjectIndex() {
  return table_->DropIndex(kObjectIndexName);
}

bool ApplicationTable::HasSubjectIndex() const {
  return table_->GetIndex(kSubjectIndexName) != nullptr;
}

std::vector<SdoRdfTripleS> ApplicationTable::FindByText(
    const std::string& index_name, size_t id_column,
    const std::string& text) const {
  std::vector<SdoRdfTripleS> out;
  const storage::Index* index = table_->GetIndex(index_name);
  if (index != nullptr) {
    for (storage::RowId rid : index->Find(ValueKey{Value::String(text)})) {
      out.push_back(RowToTriple(*table_->Get(rid)));
    }
    return out;
  }
  // Un-indexed plan: evaluate the member function per row (full scan).
  table_->Scan([&](storage::RowId, const Row& row) {
    auto resolved = store_->TextForValueId(row[id_column].as_int64());
    if (resolved.ok() && *resolved == text) {
      out.push_back(RowToTriple(row));
    }
    return true;
  });
  return out;
}

std::vector<SdoRdfTripleS> ApplicationTable::FindBySubject(
    const std::string& text) const {
  return FindByText(kSubjectIndexName, kSId, text);
}

std::vector<SdoRdfTripleS> ApplicationTable::FindByProperty(
    const std::string& text) const {
  return FindByText(kPropertyIndexName, kPId, text);
}

std::vector<SdoRdfTripleS> ApplicationTable::FindByObject(
    const std::string& text) const {
  return FindByText(kObjectIndexName, kOId, text);
}

void ApplicationTable::Scan(
    const std::function<bool(int64_t, const SdoRdfTripleS&)>& fn) const {
  table_->Scan([&](storage::RowId, const Row& row) {
    return fn(row[kId].as_int64(), RowToTriple(row));
  });
}

}  // namespace rdfdb::rdf
