#include "rdf/snapshot_store.h"

#include <unordered_set>

#include "common/string_util.h"
#include "common/timer.h"
#include "obs/resource_tracker.h"
#include "obs/store_metrics.h"
#include "rdf/reification.h"
#include "rdf/vocab.h"

namespace rdfdb::rdf {

// ---- StoreVersion ---------------------------------------------------------

Result<ModelId> StoreVersion::GetModelId(
    const std::string& model_name) const {
  auto it = models_by_lower_name_.find(ToLower(model_name));
  if (it == models_by_lower_name_.end()) {
    return Status::NotFound("model " + model_name);
  }
  return it->second;
}

std::optional<ValueId> StoreVersion::LookupValue(const Term& term) const {
  return dict_->Lookup(term);
}

Result<Term> StoreVersion::TermForValueId(ValueId value_id) const {
  return dict_->TermForValueId(value_id);
}

LinkStore::LeafScan StoreVersion::Leaf(ModelId model_id) const {
  const LinkStore::ModelIdCache* cache = CacheFor(model_id);
  if (cache == nullptr) return LinkStore::LeafScan();
  return LinkStore::LeafScan(
      cache, metrics_ != nullptr ? metrics_->link_rows_scanned : nullptr);
}

void StoreVersion::MatchEachIds(
    ModelId model_id, std::optional<ValueId> s, std::optional<ValueId> p,
    std::optional<ValueId> canon_o,
    const std::function<bool(ValueId, ValueId, ValueId, ValueId)>& fn)
    const {
  const LinkStore::ModelIdCache* cache = CacheFor(model_id);
  if (cache == nullptr) return;
  LinkStore::MatchCache(
      *cache, s, p, canon_o, fn,
      metrics_ != nullptr ? metrics_->link_rows_scanned : nullptr);
}

std::optional<ValueId> StoreVersion::LookupTermId(ModelId model_id,
                                                  const Term& term) const {
  if (term.is_blank()) return dict_->LookupBlank(model_id, term.lexical());
  return dict_->Lookup(term);
}

Result<bool> StoreVersion::IsTriple(const std::string& model_name,
                                    const std::string& subject,
                                    const std::string& property,
                                    const std::string& object) const {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, GetModelId(model_name));
  RDFDB_ASSIGN_OR_RETURN(Term s, ParseApiSubject(subject));
  RDFDB_ASSIGN_OR_RETURN(Term p, ParseApiPredicate(property));
  RDFDB_ASSIGN_OR_RETURN(Term o, ParseApiTerm(object));
  std::optional<ValueId> s_id = LookupTermId(model_id, s);
  std::optional<ValueId> p_id = LookupTermId(model_id, p);
  std::optional<ValueId> o_id = LookupTermId(model_id, o);
  if (!s_id || !p_id || !o_id) return false;
  const LinkStore::ModelIdCache* cache = CacheFor(model_id);
  if (cache == nullptr) return false;
  return cache->FindSpo(*s_id, *p_id, *o_id) != nullptr;
}

Result<bool> StoreVersion::IsReified(const std::string& model_name,
                                     const std::string& subject,
                                     const std::string& property,
                                     const std::string& object) const {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, GetModelId(model_name));
  RDFDB_ASSIGN_OR_RETURN(Term s, ParseApiSubject(subject));
  RDFDB_ASSIGN_OR_RETURN(Term p, ParseApiPredicate(property));
  RDFDB_ASSIGN_OR_RETURN(Term o, ParseApiTerm(object));
  std::optional<ValueId> s_id = LookupTermId(model_id, s);
  std::optional<ValueId> p_id = LookupTermId(model_id, p);
  std::optional<ValueId> o_id = LookupTermId(model_id, o);
  if (!s_id || !p_id || !o_id) return false;
  const LinkStore::ModelIdCache* cache = CacheFor(model_id);
  if (cache == nullptr) return false;
  const LinkStore::IdQuad* quad = cache->FindSpo(*s_id, *p_id, *o_id);
  if (quad == nullptr) return false;
  return IsLinkReified(model_id, quad->link_id);
}

Result<LinkId> StoreVersion::GetTripleId(const std::string& model_name,
                                         const std::string& subject,
                                         const std::string& property,
                                         const std::string& object) const {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, GetModelId(model_name));
  RDFDB_ASSIGN_OR_RETURN(Term s, ParseApiSubject(subject));
  RDFDB_ASSIGN_OR_RETURN(Term p, ParseApiPredicate(property));
  RDFDB_ASSIGN_OR_RETURN(Term o, ParseApiTerm(object));
  std::optional<ValueId> s_id = LookupTermId(model_id, s);
  std::optional<ValueId> p_id = LookupTermId(model_id, p);
  std::optional<ValueId> o_id = LookupTermId(model_id, o);
  const LinkStore::ModelIdCache* cache = CacheFor(model_id);
  const LinkStore::IdQuad* quad =
      (s_id && p_id && o_id && cache != nullptr)
          ? cache->FindSpo(*s_id, *p_id, *o_id)
          : nullptr;
  if (quad == nullptr) {
    return Status::NotFound("triple not found in model " + model_name);
  }
  return quad->link_id;
}

Result<bool> StoreVersion::IsLinkReified(ModelId model_id,
                                         LinkId link_id) const {
  if (metrics_ != nullptr) {
    metrics_->reif_checks->Inc();
    metrics_->reif_dburi_resolutions->Inc();
  }
  // The vocabulary ids were resolved once at publish time; the only
  // per-call dictionary probe is the DBUri itself.
  if (!reif_type_id_.has_value() || !reif_stmt_id_.has_value()) return false;
  std::optional<ValueId> r_id =
      dict_->Lookup(Term::Uri(DBUriForLink(link_id, db_name_)));
  if (!r_id.has_value()) return false;
  const LinkStore::ModelIdCache* cache = CacheFor(model_id);
  if (cache == nullptr) return false;
  // rdf:Statement is a URI, so its lexical object equals its canonical
  // object and the (s, p, o) identity probe answers the query form.
  return cache->FindSpo(*r_id, *reif_type_id_, *reif_stmt_id_) != nullptr;
}

Result<RdfStore::ModelStats> StoreVersion::GetModelStats(
    const std::string& model_name,
    const RdfStore::ModelStatsOptions& options) const {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, GetModelId(model_name));
  RdfStore::ModelStats stats;
  const LinkStore::ModelIdCache* cache = CacheFor(model_id);
  if (cache == nullptr) return stats;  // registered but empty model

  stats.triples = cache->live_count();
  stats.implied_statements = cache->implied_count;
  if (reif_type_id_.has_value() && reif_stmt_id_.has_value()) {
    LinkStore::MatchCache(
        *cache, std::nullopt, *reif_type_id_, *reif_stmt_id_,
        [&](ValueId, ValueId, ValueId, ValueId) {
          ++stats.reified_statements;
          return true;
        },
        metrics_ != nullptr ? metrics_->link_rows_scanned : nullptr);
  }

  if (options.distinct_counts) {
    std::unordered_set<ValueId> subjects, predicates, objects;
    for (const LinkStore::IdQuad& quad : cache->quads) {
      if (LinkStore::ModelIdCache::Dead(quad)) continue;
      subjects.insert(quad.s);
      predicates.insert(quad.p);
      objects.insert(quad.o);
    }
    stats.distinct_subjects = subjects.size();
    stats.distinct_predicates = predicates.size();
    stats.distinct_objects = objects.size();
  }
  return stats;
}

Result<SdoRdfTriple> StoreVersion::ResolveTriple(LinkId rdf_t_id) const {
  for (const auto& [model_id, cache] : caches_) {
    int64_t idx = cache->IndexOfLink(rdf_t_id);
    if (idx < 0) continue;
    const LinkStore::IdQuad& quad = cache->quads[static_cast<uint32_t>(idx)];
    SdoRdfTriple triple;
    RDFDB_ASSIGN_OR_RETURN(Term s, dict_->TermForValueId(quad.s));
    RDFDB_ASSIGN_OR_RETURN(Term p, dict_->TermForValueId(quad.p));
    RDFDB_ASSIGN_OR_RETURN(Term o, dict_->TermForValueId(quad.o));
    triple.subject = s.ToDisplayString();
    triple.property = p.ToDisplayString();
    triple.object = o.ToDisplayString();
    return triple;
  }
  return Status::NotFound("LINK_ID " + std::to_string(rdf_t_id));
}

size_t StoreVersion::TripleCount(ModelId model_id) const {
  const LinkStore::ModelIdCache* cache = CacheFor(model_id);
  return cache == nullptr ? 0 : cache->live_count();
}

size_t StoreVersion::TotalTripleCount() const {
  size_t n = 0;
  for (const auto& [model_id, cache] : caches_) n += cache->live_count();
  return n;
}

// ---- SnapshotRdfStore -----------------------------------------------------

SnapshotRdfStore::SnapshotRdfStore() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  // An empty store cannot fail to snapshot.
  Status status = PublishLocked();
  (void)status;
}

Result<ModelInfo> SnapshotRdfStore::CreateRdfModel(
    const std::string& model_name, const std::string& app_table,
    const std::string& app_column, const std::string& owner) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  Result<ModelInfo> result =
      store_.CreateRdfModel(model_name, app_table, app_column, owner);
  RDFDB_RETURN_NOT_OK(PublishLocked());
  return result;
}

Status SnapshotRdfStore::DropRdfModel(const std::string& model_name) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  Status status = store_.DropRdfModel(model_name);
  RDFDB_RETURN_NOT_OK(PublishLocked());
  return status;
}

Result<SdoRdfTripleS> SnapshotRdfStore::InsertTriple(
    const std::string& model_name, const std::string& subject,
    const std::string& property, const std::string& object) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  Result<SdoRdfTripleS> result =
      store_.InsertTriple(model_name, subject, property, object);
  RDFDB_RETURN_NOT_OK(PublishLocked());
  return result;
}

Status SnapshotRdfStore::DeleteTriple(const std::string& model_name,
                                      const std::string& subject,
                                      const std::string& property,
                                      const std::string& object) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  Status status = store_.DeleteTriple(model_name, subject, property, object);
  RDFDB_RETURN_NOT_OK(PublishLocked());
  return status;
}

Result<SdoRdfTripleS> SnapshotRdfStore::ReifyTriple(
    const std::string& model_name, LinkId rdf_t_id) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  Result<SdoRdfTripleS> result = store_.ReifyTriple(model_name, rdf_t_id);
  RDFDB_RETURN_NOT_OK(PublishLocked());
  return result;
}

Result<SdoRdfTripleS> SnapshotRdfStore::AssertAboutTriple(
    const std::string& model_name, const std::string& subject,
    const std::string& property, LinkId rdf_t_id) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  Result<SdoRdfTripleS> result =
      store_.AssertAboutTriple(model_name, subject, property, rdf_t_id);
  RDFDB_RETURN_NOT_OK(PublishLocked());
  return result;
}

Result<SdoRdfTripleS> SnapshotRdfStore::AssertImplied(
    const std::string& model_name, const std::string& reif_sub,
    const std::string& reif_prop, const std::string& subject,
    const std::string& property, const std::string& object) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  Result<SdoRdfTripleS> result = store_.AssertImplied(
      model_name, reif_sub, reif_prop, subject, property, object);
  RDFDB_RETURN_NOT_OK(PublishLocked());
  return result;
}

void SnapshotRdfStore::SetObservability(obs::EventLog* event_log,
                                        obs::SlowQueryLog* slow_query_log,
                                        obs::Timeline* timeline) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  store_.set_event_log(event_log);
  store_.set_slow_query_log(slow_query_log);
  store_.set_timeline(timeline);
  // Re-publish so readers pick up the new attachments.
  Status status = PublishLocked();
  (void)status;
}

Status SnapshotRdfStore::PublishLocked() {
  Timer timer;
  obs::ResourceScope publish_scope("publish");
  // Absorb rdf_value$ rows appended since the previous publish. The
  // dictionary is monotonic and its tables are published with release
  // stores, so readers on older versions stay safe.
  RDFDB_RETURN_NOT_OK(dict_.Ingest(store_.values()));

  std::shared_ptr<StoreVersion> version(new StoreVersion());
  version->caches_ = store_.links().ShareCaches();
  for (const std::string& name : store_.ModelNames()) {
    Result<ModelId> model_id = store_.GetModelId(name);
    if (!model_id.ok()) continue;  // racing drop is impossible; belt-and-braces
    version->models_by_lower_name_.emplace(ToLower(name), *model_id);
    version->model_names_.push_back(name);
  }
  version->dict_ = &dict_;
  version->reif_type_id_ = dict_.Lookup(Term::Uri(std::string(kRdfType)));
  version->reif_stmt_id_ =
      dict_.Lookup(Term::Uri(std::string(kRdfStatement)));
  version->db_name_ = store_.database().name();
  version->metrics_ = store_.metrics();
  version->slow_query_log_ = store_.slow_query_log();
  version->timeline_ = store_.timeline();
  version->seq_ = ++seq_counter_;

  // Publish protocol (see rdf/epoch.h): release-store the pointer,
  // then seq_cst-advance the epoch, then retire the displaced version
  // at the new epoch.
  current_.store(version.get(), std::memory_order_release);
  std::shared_ptr<const StoreVersion> displaced = std::move(current_sp_);
  current_sp_ = std::move(version);
  const uint64_t retire_epoch = gc_.Advance();
  if (displaced != nullptr) {
    // Exclusive footprint of the displaced version: the quad caches it
    // holds that the new version no longer shares (i.e. the pre-CoW
    // copies of whatever this publish mutated). Shared caches cost
    // nothing extra to retain, so they are not charged.
    size_t exclusive_bytes = 0;
    for (const auto& [model_id, cache] : displaced->caches_) {
      auto it = current_sp_->caches_.find(model_id);
      if (it == current_sp_->caches_.end() ||
          it->second.get() != cache.get()) {
        exclusive_bytes += cache->ApproxBytes();
      }
    }
    gc_.Retire(std::shared_ptr<const void>(displaced), retire_epoch,
               exclusive_bytes);
  }
  gc_.Sweep();

  obs::StoreMetrics* metrics = store_.metrics();
  metrics->versions_published->Inc();
  metrics->publish_ns->Observe(timer.ElapsedNanos());
  metrics->retired_versions->Set(
      static_cast<int64_t>(gc_.RetiredOutstanding()));
  metrics->epoch_lag->Set(static_cast<int64_t>(gc_.OldestPinLag()));
  metrics->mem_retired_version_bytes->Set(
      static_cast<int64_t>(gc_.RetiredBytes()));
  CheckRetentionLocked();
  return Status::OK();
}

void SnapshotRdfStore::CheckRetentionLocked() const {
  const double age = gc_.OldestRetireAgeSeconds();
  store_.metrics()->retention_age_seconds->Set(static_cast<int64_t>(age));
  if (retention_warn_seconds_ <= 0.0 || age < retention_warn_seconds_) {
    return;
  }
  obs::EventLog* log = store_.event_log();
  if (log == nullptr) return;
  // Re-warn at most once per threshold interval while the stall lasts.
  const auto now = std::chrono::steady_clock::now();
  if (last_stall_warn_.time_since_epoch().count() != 0 &&
      std::chrono::duration<double>(now - last_stall_warn_).count() <
          retention_warn_seconds_) {
    return;
  }
  last_stall_warn_ = now;
  log->Append(
      "epoch", "retention_stall",
      {obs::EventField::Num("age_seconds", static_cast<int64_t>(age)),
       obs::EventField::Num(
           "retired_versions",
           static_cast<int64_t>(gc_.RetiredOutstanding())),
       obs::EventField::Num("retired_bytes",
                            static_cast<int64_t>(gc_.RetiredBytes())),
       obs::EventField::Num("epoch_lag",
                            static_cast<int64_t>(gc_.OldestPinLag()))});
}

RdfStore::MemoryBreakdown SnapshotRdfStore::MemoryUsage() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  RdfStore::MemoryBreakdown breakdown = store_.MemoryUsage();
  breakdown.term_dict_bytes = dict_.ApproxBytes();
  breakdown.retired_version_bytes = gc_.RetiredBytes();
  return breakdown;
}

void SnapshotRdfStore::UpdateMemoryGauges() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  store_.UpdateMemoryGauges();
  obs::StoreMetrics* metrics = store_.metrics();
  metrics->mem_term_dict_bytes->Set(
      static_cast<int64_t>(dict_.ApproxBytes()));
  metrics->mem_retired_version_bytes->Set(
      static_cast<int64_t>(gc_.RetiredBytes()));
  metrics->retired_versions->Set(
      static_cast<int64_t>(gc_.RetiredOutstanding()));
  metrics->epoch_lag->Set(static_cast<int64_t>(gc_.OldestPinLag()));
  CheckRetentionLocked();
}

}  // namespace rdfdb::rdf
