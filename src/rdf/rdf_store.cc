#include "rdf/rdf_store.h"

#include <algorithm>
#include <unordered_set>

#include "common/timer.h"
#include "obs/active_ops.h"
#include "obs/resource_tracker.h"
#include "rdf/canonical.h"
#include "rdf/reification.h"
#include "rdf/vocab.h"
#include "storage/snapshot.h"

namespace rdfdb::rdf {

RdfStore::RdfStore()
    : db_(std::make_unique<storage::Database>("ORADB")),
      network_(std::make_unique<ndm::LogicalNetwork>("rdf_network")) {
  registry_ = std::make_unique<obs::MetricsRegistry>();
  metrics_ = std::make_unique<obs::StoreMetrics>(registry_.get());
  values_ = std::make_unique<ValueStore>(db_.get());
  values_->set_metrics(metrics_.get());
  links_ = std::make_unique<LinkStore>(db_.get(), network_.get());
  links_->set_metrics(metrics_.get());
  models_ = std::make_unique<ModelStore>(db_.get());
}

RdfStore::~RdfStore() {
  if (event_log_ != nullptr) {
    event_log_->Append(
        "store", "close",
        {obs::EventField::Num("links",
                              static_cast<int64_t>(network_->link_count())),
         obs::EventField::Num("nodes",
                              static_cast<int64_t>(network_->node_count()))});
  }
}

void RdfStore::set_event_log(obs::EventLog* log) {
  event_log_ = log;
  if (event_log_ != nullptr) {
    // Lifecycle marker: the counts let a log reader anchor every later
    // event against the store state at attach time.
    event_log_->Append(
        "store", "attach",
        {obs::EventField::Num("links",
                              static_cast<int64_t>(network_->link_count())),
         obs::EventField::Num("nodes",
                              static_cast<int64_t>(network_->node_count())),
         obs::EventField::Num("models",
                              static_cast<int64_t>(ModelNames().size()))});
  }
}

Result<ModelInfo> RdfStore::CreateRdfModel(const std::string& model_name,
                                           const std::string& app_table,
                                           const std::string& app_column,
                                           const std::string& owner) {
  // MODEL_ID column position in rdf_link$ is 9 (see link_store.cc).
  Result<ModelInfo> info =
      models_->CreateModel(model_name, app_table, app_column, owner,
                           &links_->table(), /*model_column=*/9);
  if (event_log_ != nullptr) {
    if (info.ok()) {
      event_log_->Append(
          "model", "create",
          {obs::EventField::Str("model", model_name),
           obs::EventField::Num("model_id", info->model_id),
           obs::EventField::Str("app_table", app_table)});
    } else {
      obs::LogErrorEvent(event_log_, "CreateRdfModel", info.status());
    }
  }
  return info;
}

Status RdfStore::DropRdfModel(const std::string& model_name) {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, GetModelId(model_name));
  RDFDB_RETURN_NOT_OK(links_->DeleteModel(model_id));
  Status status = models_->DropModel(model_name);
  if (event_log_ != nullptr) {
    if (status.ok()) {
      event_log_->Append("model", "drop",
                         {obs::EventField::Str("model", model_name),
                          obs::EventField::Num("model_id", model_id)});
    } else {
      obs::LogErrorEvent(event_log_, "DropRdfModel", status);
    }
  }
  return status;
}

Result<ModelId> RdfStore::GetModelId(const std::string& model_name) const {
  return models_->GetModelId(model_name);
}

std::vector<std::string> RdfStore::ModelNames() const {
  return models_->ModelNames();
}

Status RdfStore::GrantSelectOnModel(const std::string& model_name,
                                    const std::string& user) {
  RDFDB_ASSIGN_OR_RETURN(ModelId id, GetModelId(model_name));
  (void)id;
  storage::View* view =
      db_->GetView("MDSYS", ModelStore::ViewNameFor(model_name));
  if (view == nullptr) {
    return Status::Internal("model view missing for " + model_name);
  }
  view->GrantSelect(user);
  return Status::OK();
}

Result<bool> RdfStore::CanSelectModel(const std::string& model_name,
                                      const std::string& user) const {
  RDFDB_ASSIGN_OR_RETURN(ModelId id, GetModelId(model_name));
  (void)id;
  const storage::View* view = static_cast<const storage::Database&>(*db_)
                                  .GetView("MDSYS",
                                           ModelStore::ViewNameFor(
                                               model_name));
  if (view == nullptr) {
    return Status::Internal("model view missing for " + model_name);
  }
  return view->CanSelect(user);
}

Result<ValueId> RdfStore::InternTerm(ModelId model_id, const Term& term) {
  if (term.is_blank()) {
    return values_->LookupOrInsertBlank(model_id, term.lexical());
  }
  return values_->LookupOrInsert(term);
}

std::optional<ValueId> RdfStore::LookupTerm(ModelId model_id,
                                            const Term& term) const {
  if (term.is_blank()) return values_->LookupBlank(model_id, term.lexical());
  return values_->Lookup(term);
}

SdoRdfTripleS RdfStore::MakeHandle(const LinkRow& row) const {
  return SdoRdfTripleS(this, row.link_id, row.model_id, row.start_node_id,
                       row.p_value_id, row.end_node_id);
}

Result<SdoRdfTripleS> RdfStore::InsertTerms(ModelId model_id,
                                            const Term& subject,
                                            const Term& property,
                                            const Term& object,
                                            TripleContext context) {
  RDFDB_ASSIGN_OR_RETURN(ValueId s_id, InternTerm(model_id, subject));
  RDFDB_ASSIGN_OR_RETURN(ValueId p_id, InternTerm(model_id, property));
  RDFDB_ASSIGN_OR_RETURN(ValueId o_id, InternTerm(model_id, object));

  Term canon = CanonicalForm(object);
  ValueId canon_id = o_id;
  if (canon != object) {
    RDFDB_ASSIGN_OR_RETURN(canon_id, InternTerm(model_id, canon));
  }

  // REIF_LINK is Y when any position "references a reified triple",
  // i.e. carries a reification DBUri.
  bool reif_link = (subject.is_uri() && IsReificationUri(subject.lexical())) ||
                   (object.is_uri() && IsReificationUri(object.lexical()));

  std::string link_type = ClassifyPredicate(property.lexical());
  RDFDB_ASSIGN_OR_RETURN(
      LinkInsertOutcome outcome,
      links_->Insert(model_id, s_id, p_id, o_id, canon_id, link_type,
                     context, reif_link));
  return MakeHandle(outcome.row);
}

Result<SdoRdfTripleS> RdfStore::InsertParsedTriple(ModelId model_id,
                                                   const Term& subject,
                                                   const Term& property,
                                                   const Term& object,
                                                   TripleContext context) {
  if (!subject.is_uri() && !subject.is_blank()) {
    return Status::InvalidArgument("subject must be a URI or blank node");
  }
  if (!property.is_uri()) {
    return Status::InvalidArgument("predicate must be a URI");
  }
  return InsertTerms(model_id, subject, property, object, context);
}

Result<SdoRdfTripleS> RdfStore::InsertTriple(const std::string& model_name,
                                             const std::string& subject,
                                             const std::string& property,
                                             const std::string& object) {
  // "When a user attempts to insert a triple, a check is first made to
  // ensure that the RDF graph exists."
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, GetModelId(model_name));
  RDFDB_ASSIGN_OR_RETURN(Term s, ParseApiSubject(subject));
  RDFDB_ASSIGN_OR_RETURN(Term p, ParseApiPredicate(property));
  RDFDB_ASSIGN_OR_RETURN(Term o, ParseApiTerm(object));
  return InsertTerms(model_id, s, p, o, TripleContext::kDirect);
}

Result<SdoRdfTripleS> RdfStore::ReifyTriple(const std::string& model_name,
                                            LinkId rdf_t_id) {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, GetModelId(model_name));
  // The reified triple must exist.
  RDFDB_ASSIGN_OR_RETURN(LinkRow base, links_->Get(rdf_t_id));
  (void)base;
  Term resource = Term::Uri(DBUriForLink(rdf_t_id, db_->name()));
  Term type = Term::Uri(std::string(kRdfType));
  Term statement = Term::Uri(std::string(kRdfStatement));
  return InsertTerms(model_id, resource, type, statement,
                     TripleContext::kDirect);
}

Result<bool> RdfStore::IsLinkReified(ModelId model_id, LinkId link_id) const {
  metrics_->reif_checks->Inc();
  metrics_->reif_dburi_resolutions->Inc();
  Term resource = Term::Uri(DBUriForLink(link_id, db_->name()));
  std::optional<ValueId> r_id = values_->Lookup(resource);
  if (!r_id.has_value()) return false;
  // Strictly read-only: no mutable caching of the rdf:type /
  // rdf:Statement ids here — each is a single hash-index probe, and a
  // const read path lets concurrent facades serve IS_REIFIED without a
  // first-call lock upgrade. Snapshot versions pre-resolve both ids at
  // publish time instead.
  std::optional<ValueId> type_id =
      values_->Lookup(Term::Uri(std::string(kRdfType)));
  if (!type_id.has_value()) return false;
  std::optional<ValueId> stmt_id =
      values_->Lookup(Term::Uri(std::string(kRdfStatement)));
  if (!stmt_id.has_value()) return false;
  return links_->Find(model_id, *r_id, *type_id, *stmt_id).has_value();
}

Result<SdoRdfTripleS> RdfStore::AssertAboutTriple(
    const std::string& model_name, const std::string& subject,
    const std::string& property, LinkId rdf_t_id) {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, GetModelId(model_name));
  RDFDB_ASSIGN_OR_RETURN(bool reified, IsLinkReified(model_id, rdf_t_id));
  if (!reified) {
    // "... which calls the reification constructor (if the triple was not
    // previously reified)".
    RDFDB_ASSIGN_OR_RETURN(SdoRdfTripleS reif,
                           ReifyTriple(model_name, rdf_t_id));
    (void)reif;
  }
  RDFDB_ASSIGN_OR_RETURN(Term s, ParseApiSubject(subject));
  RDFDB_ASSIGN_OR_RETURN(Term p, ParseApiPredicate(property));
  Term o = Term::Uri(DBUriForLink(rdf_t_id, db_->name()));
  return InsertTerms(model_id, s, p, o, TripleContext::kDirect);
}

Result<SdoRdfTripleS> RdfStore::AssertImplied(const std::string& model_name,
                                              const std::string& reif_sub,
                                              const std::string& reif_prop,
                                              const std::string& subject,
                                              const std::string& property,
                                              const std::string& object) {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, GetModelId(model_name));
  RDFDB_ASSIGN_OR_RETURN(Term s, ParseApiSubject(subject));
  RDFDB_ASSIGN_OR_RETURN(Term p, ParseApiPredicate(property));
  RDFDB_ASSIGN_OR_RETURN(Term o, ParseApiTerm(object));
  // "It first inserts the base triple (subject, property, object)" — as
  // an implied statement; if it already exists as a fact it stays Direct.
  RDFDB_ASSIGN_OR_RETURN(
      SdoRdfTripleS base,
      InsertTerms(model_id, s, p, o, TripleContext::kImplied));
  return AssertAboutTriple(model_name, reif_sub, reif_prop, base.rdf_t_id());
}

Result<bool> RdfStore::IsTriple(const std::string& model_name,
                                const std::string& subject,
                                const std::string& property,
                                const std::string& object) const {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, GetModelId(model_name));
  RDFDB_ASSIGN_OR_RETURN(Term s, ParseApiSubject(subject));
  RDFDB_ASSIGN_OR_RETURN(Term p, ParseApiPredicate(property));
  RDFDB_ASSIGN_OR_RETURN(Term o, ParseApiTerm(object));
  std::optional<ValueId> s_id = LookupTerm(model_id, s);
  std::optional<ValueId> p_id = LookupTerm(model_id, p);
  std::optional<ValueId> o_id = LookupTerm(model_id, o);
  if (!s_id || !p_id || !o_id) return false;
  return links_->Find(model_id, *s_id, *p_id, *o_id).has_value();
}

Result<bool> RdfStore::IsReified(const std::string& model_name,
                                 const std::string& subject,
                                 const std::string& property,
                                 const std::string& object) const {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, GetModelId(model_name));
  RDFDB_ASSIGN_OR_RETURN(Term s, ParseApiSubject(subject));
  RDFDB_ASSIGN_OR_RETURN(Term p, ParseApiPredicate(property));
  RDFDB_ASSIGN_OR_RETURN(Term o, ParseApiTerm(object));
  std::optional<ValueId> s_id = LookupTerm(model_id, s);
  std::optional<ValueId> p_id = LookupTerm(model_id, p);
  std::optional<ValueId> o_id = LookupTerm(model_id, o);
  if (!s_id || !p_id || !o_id) return false;
  std::optional<LinkRow> link = links_->Find(model_id, *s_id, *p_id, *o_id);
  if (!link.has_value()) return false;
  // "To determine if a triple is reified in a specified graph, a search
  // is done for its DBUriType" — one more point lookup.
  return IsLinkReified(model_id, link->link_id);
}

Result<LinkId> RdfStore::GetTripleId(const std::string& model_name,
                                     const std::string& subject,
                                     const std::string& property,
                                     const std::string& object) const {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, GetModelId(model_name));
  RDFDB_ASSIGN_OR_RETURN(Term s, ParseApiSubject(subject));
  RDFDB_ASSIGN_OR_RETURN(Term p, ParseApiPredicate(property));
  RDFDB_ASSIGN_OR_RETURN(Term o, ParseApiTerm(object));
  std::optional<ValueId> s_id = LookupTerm(model_id, s);
  std::optional<ValueId> p_id = LookupTerm(model_id, p);
  std::optional<ValueId> o_id = LookupTerm(model_id, o);
  if (!s_id || !p_id || !o_id) {
    return Status::NotFound("triple not found in model " + model_name);
  }
  std::optional<LinkRow> row = links_->Find(model_id, *s_id, *p_id, *o_id);
  if (!row.has_value()) {
    return Status::NotFound("triple not found in model " + model_name);
  }
  return row->link_id;
}

Result<RdfStore::ModelStats> RdfStore::GetModelStats(
    const std::string& model_name) const {
  return GetModelStats(model_name, ModelStatsOptions{});
}

Result<RdfStore::ModelStats> RdfStore::GetModelStats(
    const std::string& model_name, const ModelStatsOptions& options) const {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, GetModelId(model_name));
  ModelStats stats;

  // The cheap counters never require a scan with per-row bookkeeping:
  // the triple count is the maintained partition row counter, and the
  // reified-statement count is one object-index probe for
  // <?, rdf:type, rdf:Statement> (rdf:Statement is a URI, so canonical
  // object equals stored object).
  stats.triples = links_->TripleCount(model_id);
  std::optional<ValueId> type_id =
      values_->Lookup(Term::Uri(std::string(kRdfType)));
  std::optional<ValueId> stmt_id =
      values_->Lookup(Term::Uri(std::string(kRdfStatement)));
  if (type_id && stmt_id) {
    links_->MatchEach(model_id, std::nullopt, *type_id, *stmt_id,
                      [&](const LinkRow&) {
                        ++stats.reified_statements;
                        return true;
                      });
  }

  if (options.distinct_counts) {
    std::unordered_set<ValueId> subjects, predicates, objects;
    links_->ScanModel(model_id, [&](const LinkRow& row) {
      subjects.insert(row.start_node_id);
      predicates.insert(row.p_value_id);
      objects.insert(row.end_node_id);
      if (row.context == TripleContext::kImplied) ++stats.implied_statements;
      return true;
    });
    stats.distinct_subjects = subjects.size();
    stats.distinct_predicates = predicates.size();
    stats.distinct_objects = objects.size();
  } else {
    links_->ScanModel(model_id, [&](const LinkRow& row) {
      if (row.context == TripleContext::kImplied) ++stats.implied_statements;
      return true;
    });
  }
  return stats;
}

Status RdfStore::CheckConsistency() const {
  const storage::Table* link_table = db_->GetTable("MDSYS", "RDF_LINK$");
  const storage::Table* node_table = db_->GetTable("MDSYS", "RDF_NODE$");

  if (network_->link_count() != link_table->row_count()) {
    return Status::Corruption(
        "network has " + std::to_string(network_->link_count()) +
        " links, rdf_link$ has " + std::to_string(link_table->row_count()));
  }
  if (network_->node_count() != node_table->row_count()) {
    return Status::Corruption(
        "network has " + std::to_string(network_->node_count()) +
        " nodes, rdf_node$ has " + std::to_string(node_table->row_count()));
  }

  // Every link row must be mirrored in the network with matching
  // endpoints, and every endpoint must resolve in rdf_value$.
  Status status = Status::OK();
  link_table->Scan([&](storage::RowId, const storage::Row& row) {
    int64_t link_id = row[0].as_int64();
    const ndm::Link* link = network_->GetLink(link_id);
    if (link == nullptr) {
      status = Status::Corruption("LINK_ID " + std::to_string(link_id) +
                                  " missing from the network");
      return false;
    }
    if (link->start != row[1].as_int64() || link->end != row[3].as_int64()) {
      status = Status::Corruption("LINK_ID " + std::to_string(link_id) +
                                  " endpoints disagree with rdf_link$");
      return false;
    }
    for (size_t col : {1u, 2u, 3u, 4u}) {
      if (!values_->GetTerm(row[col].as_int64()).ok()) {
        status = Status::Corruption(
            "LINK_ID " + std::to_string(link_id) +
            " references missing VALUE_ID " +
            std::to_string(row[col].as_int64()));
        return false;
      }
    }
    return true;
  });
  RDFDB_RETURN_NOT_OK(status);

  // No orphaned nodes: every network node has at least one link.
  for (ndm::NodeId node : network_->Nodes()) {
    if (network_->OutDegree(node) == 0 && network_->InDegree(node) == 0) {
      return Status::Corruption("orphaned node " + std::to_string(node));
    }
  }
  return Status::OK();
}

Status RdfStore::DeleteTriple(const std::string& model_name,
                              const std::string& subject,
                              const std::string& property,
                              const std::string& object) {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, GetModelId(model_name));
  RDFDB_ASSIGN_OR_RETURN(Term s, ParseApiSubject(subject));
  RDFDB_ASSIGN_OR_RETURN(Term p, ParseApiPredicate(property));
  RDFDB_ASSIGN_OR_RETURN(Term o, ParseApiTerm(object));
  std::optional<ValueId> s_id = LookupTerm(model_id, s);
  std::optional<ValueId> p_id = LookupTerm(model_id, p);
  std::optional<ValueId> o_id = LookupTerm(model_id, o);
  if (!s_id || !p_id || !o_id) {
    return Status::NotFound("triple not found in model " + model_name);
  }
  return links_->Delete(model_id, *s_id, *p_id, *o_id);
}

Result<SdoRdfTriple> RdfStore::ResolveTriple(LinkId rdf_t_id) const {
  RDFDB_ASSIGN_OR_RETURN(LinkRow link, links_->Get(rdf_t_id));
  SdoRdfTriple triple;
  RDFDB_ASSIGN_OR_RETURN(triple.subject,
                         values_->GetText(link.start_node_id));
  RDFDB_ASSIGN_OR_RETURN(triple.property, values_->GetText(link.p_value_id));
  RDFDB_ASSIGN_OR_RETURN(triple.object, values_->GetText(link.end_node_id));
  return triple;
}

Result<std::string> RdfStore::ResolveSubject(LinkId rdf_t_id) const {
  RDFDB_ASSIGN_OR_RETURN(LinkRow link, links_->Get(rdf_t_id));
  return values_->GetText(link.start_node_id);
}

Result<std::string> RdfStore::ResolveProperty(LinkId rdf_t_id) const {
  RDFDB_ASSIGN_OR_RETURN(LinkRow link, links_->Get(rdf_t_id));
  return values_->GetText(link.p_value_id);
}

Result<std::string> RdfStore::ResolveObject(LinkId rdf_t_id) const {
  RDFDB_ASSIGN_OR_RETURN(LinkRow link, links_->Get(rdf_t_id));
  return values_->GetText(link.end_node_id);
}

Result<Term> RdfStore::TermForValueId(ValueId value_id) const {
  return values_->GetTerm(value_id);
}

Result<std::string> RdfStore::TextForValueId(ValueId value_id) const {
  return values_->GetText(value_id);
}

RdfStore::MemoryBreakdown RdfStore::MemoryUsage() const {
  MemoryBreakdown breakdown;
  breakdown.value_store_bytes = values_->ApproxBytes();
  breakdown.link_table_bytes = links_->TableBytes();
  breakdown.quad_cache_bytes = links_->CacheBytes();
  breakdown.tracked_heap_bytes = obs::TrackedHeapBytes();
  return breakdown;
}

void RdfStore::UpdateMemoryGauges() const {
  const MemoryBreakdown breakdown = MemoryUsage();
  metrics_->mem_value_store_bytes->Set(
      static_cast<int64_t>(breakdown.value_store_bytes));
  metrics_->mem_link_table_bytes->Set(
      static_cast<int64_t>(breakdown.link_table_bytes));
  metrics_->mem_quad_cache_bytes->Set(
      static_cast<int64_t>(breakdown.quad_cache_bytes));
  metrics_->mem_tracked_heap_bytes->Set(
      static_cast<int64_t>(breakdown.tracked_heap_bytes));
  metrics_->active_operations->Set(
      static_cast<int64_t>(obs::ActiveOpCount()));
}

Status RdfStore::Save(const std::string& path, storage::Env* env) const {
  Timer save_timer;
  obs::ScopedLatency span(metrics_->snapshot_save_ns);
  metrics_->snapshot_saves->Inc();
  Status status = storage::SaveSnapshotToFile(*db_, path, env, timeline_);
  if (event_log_ != nullptr) {
    if (status.ok()) {
      event_log_->Append(
          "snapshot", "save",
          {obs::EventField::Str("path", path),
           obs::EventField::Num("links",
                                static_cast<int64_t>(network_->link_count())),
           obs::EventField::Num("elapsed_us",
                                save_timer.ElapsedNanos() / 1000)});
    } else {
      obs::LogErrorEvent(event_log_, "Save", status);
    }
  }
  return status;
}

Result<std::unique_ptr<RdfStore>> RdfStore::Open(const std::string& path,
                                                 storage::Env* env) {
  Timer open_timer;
  // Load the snapshot into a scratch database first, then replay rows
  // through a fresh store so indexes, the NDM network and sequences are
  // all rebuilt consistently.
  auto store = std::make_unique<RdfStore>();
  storage::Database scratch("ORADB");
  RDFDB_RETURN_NOT_OK(storage::LoadSnapshotFromFile(path, &scratch, env));

  auto copy_rows = [&](const char* table_name) -> Status {
    const storage::Table* src = scratch.GetTable("MDSYS", table_name);
    if (src == nullptr) {
      return Status::Corruption(std::string("snapshot missing MDSYS.") +
                                table_name);
    }
    storage::Table* dst = store->db_->GetTable("MDSYS", table_name);
    Status status = Status::OK();
    src->Scan([&](storage::RowId, const storage::Row& row) {
      auto insert = dst->Insert(row);
      if (!insert.ok()) {
        status = insert.status();
        return false;
      }
      return true;
    });
    return status;
  };

  RDFDB_RETURN_NOT_OK(copy_rows("RDF_VALUE$"));
  RDFDB_RETURN_NOT_OK(copy_rows("RDF_BLANK_NODE$"));
  RDFDB_RETURN_NOT_OK(copy_rows("RDF_MODEL$"));
  RDFDB_RETURN_NOT_OK(copy_rows("RDF_NODE$"));

  // Links must go through the link store so the NDM network is rebuilt,
  // but raw row copy preserves LINK_IDs; replay rows and links together.
  {
    const storage::Table* src = scratch.GetTable("MDSYS", "RDF_LINK$");
    if (src == nullptr) {
      return Status::Corruption("snapshot missing MDSYS.RDF_LINK$");
    }
    storage::Table* dst = store->db_->GetTable("MDSYS", "RDF_LINK$");
    Status status = Status::OK();
    src->Scan([&](storage::RowId, const storage::Row& row) {
      auto insert = dst->Insert(row);
      if (!insert.ok()) {
        status = insert.status();
        return false;
      }
      int64_t link_id = row[0].as_int64();
      int64_t s = row[1].as_int64();
      int64_t p = row[2].as_int64();
      int64_t o = row[3].as_int64();
      store->network_->AddNode(s);
      store->network_->AddNode(o);
      status = store->network_->AddLink(ndm::Link{link_id, s, o, 1.0, p});
      return status.ok();
    });
    RDFDB_RETURN_NOT_OK(status);
  }

  // The raw row copies above bypassed ValueStore::LookupOrInsert and
  // LinkStore::Insert, so the value-store lookup structures and the
  // id-native quad cache (which serve every dictionary probe and
  // pattern scan) are still empty.
  store->values_->RebuildLookups();
  store->links_->RebuildCache();

  // Re-seed sequences past the highest stored ids.
  auto reseed = [&](const char* table_name, size_t id_col,
                    const char* seq_name) {
    const storage::Table* table =
        store->db_->GetTable("MDSYS", table_name);
    int64_t max_id = 0;
    table->Scan([&](storage::RowId, const storage::Row& row) {
      max_id = std::max(max_id, row[id_col].as_int64());
      return true;
    });
    storage::Sequence* seq = store->db_->GetSequence("MDSYS", seq_name);
    if (seq->Peek() <= max_id) seq->Reset(max_id + 1);
  };
  reseed("RDF_VALUE$", 0, "RDF_VALUE_SEQ");
  reseed("RDF_LINK$", 0, "RDF_LINK_SEQ");
  reseed("RDF_MODEL$", 0, "RDF_MODEL_SEQ");

  // Recreate per-model views.
  {
    const storage::Table* model_table =
        store->db_->GetTable("MDSYS", "RDF_MODEL$");
    Status status = Status::OK();
    model_table->Scan([&](storage::RowId, const storage::Row& row) {
      int64_t model_id = row[0].as_int64();
      const std::string& model_name = row[1].as_string();
      std::string owner = row[4].is_null() ? "" : row[4].as_string();
      auto view = store->db_->CreateView(
          "MDSYS", ModelStore::ViewNameFor(model_name),
          &store->links_->table(),
          storage::Eq(/*MODEL_ID column=*/9,
                      storage::Value::Int64(model_id)),
          owner);
      if (!view.ok()) {
        status = view.status();
        return false;
      }
      return true;
    });
    RDFDB_RETURN_NOT_OK(status);
  }

  store->metrics_->snapshot_loads->Inc();
  store->metrics_->snapshot_load_ns->Observe(
      static_cast<uint64_t>(open_timer.ElapsedNanos()));
  return store;
}

}  // namespace rdfdb::rdf
