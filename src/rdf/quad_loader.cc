#include "rdf/quad_loader.h"

#include <map>
#include <optional>
#include <unordered_map>

#include "rdf/reification.h"
#include "rdf/vocab.h"

namespace rdfdb::rdf {

namespace {

/// Key for grouping quad components by reifying resource. Blank nodes and
/// URIs both occur as reifiers; the N-Triples rendering is a stable key.
std::string ReifierKey(const Term& term) { return term.ToNTriples(); }

/// Components collected for one candidate reifying resource.
struct QuadParts {
  Term reifier;
  bool has_type = false;
  std::optional<Term> subject;
  std::optional<Term> predicate;
  std::optional<Term> object;
  bool ambiguous = false;  ///< a component occurred twice with different values
  std::vector<NTriple> source_triples;

  bool complete() const {
    return has_type && subject.has_value() && predicate.has_value() &&
           object.has_value() && !ambiguous;
  }
};

/// Which reification-vocabulary component (if any) a statement encodes.
enum class QuadComponent { kNone, kType, kSubject, kPredicate, kObject };

QuadComponent ClassifyQuadTriple(const NTriple& t) {
  if (!t.predicate.is_uri()) return QuadComponent::kNone;
  const std::string& p = t.predicate.lexical();
  if (p == kRdfType && t.object.is_uri() &&
      t.object.lexical() == kRdfStatement) {
    return QuadComponent::kType;
  }
  if (p == kRdfSubject) return QuadComponent::kSubject;
  if (p == kRdfPredicate) return QuadComponent::kPredicate;
  if (p == kRdfObject) return QuadComponent::kObject;
  return QuadComponent::kNone;
}

void RecordComponent(QuadParts* parts, QuadComponent which,
                     const NTriple& t) {
  parts->source_triples.push_back(t);
  auto set = [&](std::optional<Term>* slot) {
    if (slot->has_value()) {
      if (**slot != t.object) parts->ambiguous = true;
    } else {
      *slot = t.object;
    }
  };
  switch (which) {
    case QuadComponent::kType:
      parts->has_type = true;
      break;
    case QuadComponent::kSubject:
      set(&parts->subject);
      break;
    case QuadComponent::kPredicate:
      set(&parts->predicate);
      break;
    case QuadComponent::kObject:
      set(&parts->object);
      break;
    case QuadComponent::kNone:
      break;
  }
}

}  // namespace

Result<QuadLoadStats> QuadLoader::Load(const std::string& model_name,
                                       const std::vector<NTriple>& triples) {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, store_->GetModelId(model_name));
  QuadLoadStats stats;
  stats.input_triples = triples.size();

  // Pass 1: group reification-vocabulary statements by reifying resource.
  // std::map keeps processing order deterministic across runs.
  std::map<std::string, QuadParts> candidates;
  std::vector<NTriple> others;
  for (const NTriple& t : triples) {
    QuadComponent which = ClassifyQuadTriple(t);
    if (which == QuadComponent::kNone) {
      others.push_back(t);
      continue;
    }
    QuadParts& parts = candidates[ReifierKey(t.subject)];
    parts.reifier = t.subject;
    RecordComponent(&parts, which, t);
  }

  // Pass 2: convert complete quads; apply the policy to partial ones.
  std::unordered_map<std::string, Term> replacement;  // R key -> DBUri term
  std::vector<NTriple> incomplete_spill;
  for (auto& [key, parts] : candidates) {
    if (!parts.complete()) {
      ++stats.incomplete_quads;
      stats.incomplete_triples += parts.source_triples.size();
      switch (options_.incomplete_policy) {
        case IncompleteQuadPolicy::kDelete:
          break;  // dropped
        case IncompleteQuadPolicy::kEmitToFile:
          incomplete_spill.insert(incomplete_spill.end(),
                                  parts.source_triples.begin(),
                                  parts.source_triples.end());
          break;
        case IncompleteQuadPolicy::kInsertAsTriples:
          for (const NTriple& t : parts.source_triples) {
            RDFDB_ASSIGN_OR_RETURN(
                SdoRdfTripleS ignored,
                store_->InsertParsedTriple(model_id, t.subject, t.predicate,
                                           t.object));
            (void)ignored;
            ++stats.plain_triples;
          }
          break;
      }
      continue;
    }

    // Insert the base triple as an implied statement (it was "entered
    // into the database as the base triple of reification statements
    // only"), then store the one streamlined reification triple.
    RDFDB_ASSIGN_OR_RETURN(
        SdoRdfTripleS base,
        store_->InsertParsedTriple(model_id, *parts.subject,
                                   *parts.predicate, *parts.object,
                                   TripleContext::kImplied));
    RDFDB_ASSIGN_OR_RETURN(bool already,
                           store_->IsLinkReified(model_id, base.rdf_t_id()));
    if (!already) {
      RDFDB_ASSIGN_OR_RETURN(SdoRdfTripleS reif,
                             store_->ReifyTriple(model_name, base.rdf_t_id()));
      (void)reif;
    }
    ++stats.complete_quads;

    Term db_uri = Term::Uri(DBUriForLink(base.rdf_t_id()));
    replacement.emplace(key, db_uri);

    if (options_.store_replaced_uris) {
      RDFDB_ASSIGN_OR_RETURN(
          SdoRdfTripleS record,
          store_->InsertParsedTriple(model_id, db_uri,
                                     Term::Uri(kReplacesResourceUri),
                                     parts.reifier));
      (void)record;
    }
  }

  if (options_.incomplete_policy == IncompleteQuadPolicy::kEmitToFile &&
      !incomplete_spill.empty()) {
    if (options_.incomplete_output_path.empty()) {
      return Status::InvalidArgument(
          "kEmitToFile requires incomplete_output_path");
    }
    RDFDB_RETURN_NOT_OK(WriteNTriplesFile(options_.incomplete_output_path,
                                          incomplete_spill));
  }

  // Pass 3: everything else, with reifying resources rewritten to their
  // DBUris so assertions attach to the streamlined statement.
  for (const NTriple& t : others) {
    Term subject = t.subject;
    Term object = t.object;
    bool rewritten = false;
    auto sub_it = replacement.find(ReifierKey(subject));
    if (sub_it != replacement.end()) {
      subject = sub_it->second;
      rewritten = true;
    }
    auto obj_it = replacement.find(ReifierKey(object));
    if (obj_it != replacement.end()) {
      object = obj_it->second;
      rewritten = true;
    }
    RDFDB_ASSIGN_OR_RETURN(
        SdoRdfTripleS ignored,
        store_->InsertParsedTriple(model_id, subject, t.predicate, object));
    (void)ignored;
    if (rewritten) {
      ++stats.assertions_rewritten;
    } else {
      ++stats.plain_triples;
    }
  }
  return stats;
}

Result<QuadLoadStats> QuadLoader::LoadFile(const std::string& model_name,
                                           const std::string& path) {
  RDFDB_ASSIGN_OR_RETURN(std::vector<NTriple> triples,
                         ParseNTriplesFile(path));
  return Load(model_name, triples);
}

}  // namespace rdfdb::rdf
