// Bulk loading of parsed statements into a model (+ optionally its
// application table), the library-level equivalent of the paper's batch
// load path for large datasets (§7.3 notes the loader reads "the entire
// input file ... before inserting triples into the database").
//
// Two implementations share one contract:
//
//   BulkLoadSequential — the literal path: one InsertParsedTriple per
//     statement, in input order.
//   BulkLoad / BulkLoadFile — the pipelined path: the input is split
//     into chunks; worker threads parse and prepare chunk k+1 (term
//     canonicalization, predicate classification, reification
//     detection) while the single storage thread interns and inserts
//     chunk k through the batched ValueStore / LinkStore / Table
//     entry points.
//
// The pipelined loader is bit-identical to the sequential one: because
// every store mutation happens on the consuming thread in input order,
// VALUE_ID / LINK_ID assignment, COST increments, Implied→Direct
// upgrades and model-scoped blank node mapping all come out the same.

#ifndef RDFDB_RDF_BULK_LOAD_H_
#define RDFDB_RDF_BULK_LOAD_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "common/status.h"
#include "rdf/app_table.h"
#include "rdf/ntriples.h"
#include "rdf/rdf_store.h"

namespace rdfdb::rdf {

/// Counters reported by a bulk load. The pipeline fields (chunks,
/// queue depth, stage times) are filled by BulkLoad/BulkLoadFile; the
/// sequential loader reports only total_ns of them. All stage times are
/// also observed into the store's metrics registry per chunk.
struct BulkLoadStats {
  size_t statements = 0;      ///< statements processed
  size_t new_links = 0;       ///< new rdf_link$ rows created
  size_t reused_links = 0;    ///< duplicates that only bumped COST
  size_t app_rows = 0;        ///< rows appended to the application table
  size_t chunks = 0;          ///< pipeline chunks consumed
  size_t max_queue_depth = 0; ///< high-water produced-but-unconsumed chunks
  int64_t parse_ns = 0;       ///< summed worker parse/prepare time
                              ///< (can exceed wall time with >1 worker)
  int64_t intern_ns = 0;      ///< batched rdf_value$ intern time
  int64_t insert_ns = 0;      ///< batched rdf_link$ insert time
  int64_t total_ns = 0;       ///< wall time of the whole load
  int64_t cpu_ns = 0;         ///< CPU time across all pipeline threads
                              ///< (parse workers + the storage thread)
  uint64_t alloc_bytes = 0;   ///< heap bytes allocated by the pipeline

  /// One-line human-readable rendering.
  std::string ToString() const;
};

/// Tuning knobs for the pipelined loader.
struct BulkLoadOptions {
  /// Parse/prepare worker threads. 0 = auto (hardware concurrency,
  /// capped at 8). 1 runs the whole pipeline inline on the calling
  /// thread — still batched, just with no thread hand-off.
  unsigned threads = 0;
  /// Statements (for in-memory loads) or input lines (for file loads)
  /// per pipeline chunk.
  size_t batch_size = 4096;
  /// Cooperative cancellation token, checked on the storage thread at
  /// every chunk boundary (before the chunk's store mutations begin).
  /// A fired token fails the load with DeadlineExceeded/Cancelled;
  /// chunks already consumed remain inserted — the caller decides
  /// whether to drop the partially-loaded model. Null disables the
  /// path.
  const CancelToken* cancel = nullptr;
};

/// Load statements into `model_name`. When `table` is non-null every
/// statement also gets an application-table row (ids continue from the
/// current row count). Produces exactly the same store state and stats
/// as BulkLoadSequential for the same input.
Result<BulkLoadStats> BulkLoad(RdfStore* store,
                               const std::string& model_name,
                               const std::vector<NTriple>& statements,
                               ApplicationTable* table = nullptr,
                               const BulkLoadOptions& options = {});

/// Load an N-Triples file through the chunked pipeline: the file is
/// split at line boundaries, chunks parse on worker threads, and the
/// calling thread inserts them in order (chunk k+1 parses while chunk k
/// interns/inserts). Malformed lines fail the load with their absolute
/// line number regardless of which chunk they land in.
Result<BulkLoadStats> BulkLoadFile(RdfStore* store,
                                   const std::string& model_name,
                                   const std::string& path,
                                   ApplicationTable* table = nullptr,
                                   const BulkLoadOptions& options = {});

/// Reference implementation: one InsertParsedTriple per statement, in
/// input order. Kept as the baseline the pipelined loader is measured
/// against (bench_bulk_load) and verified identical to
/// (test_bulk_load).
Result<BulkLoadStats> BulkLoadSequential(RdfStore* store,
                                         const std::string& model_name,
                                         const std::vector<NTriple>& statements,
                                         ApplicationTable* table = nullptr);

/// Export every triple of a model as N-Triples statements (the inverse
/// of BulkLoad; reification DBUris export as plain URIs).
Result<std::vector<NTriple>> ExportModel(const RdfStore& store,
                                         const std::string& model_name);

/// Export a model to an N-Triples file.
Status ExportModelToFile(const RdfStore& store,
                         const std::string& model_name,
                         const std::string& path);

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_BULK_LOAD_H_
