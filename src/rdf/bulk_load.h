// Bulk loading of parsed statements into a model (+ optionally its
// application table), the library-level equivalent of the paper's batch
// load path for large datasets (§7.3 notes the loader reads "the entire
// input file ... before inserting triples into the database").

#ifndef RDFDB_RDF_BULK_LOAD_H_
#define RDFDB_RDF_BULK_LOAD_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/app_table.h"
#include "rdf/ntriples.h"
#include "rdf/rdf_store.h"

namespace rdfdb::rdf {

/// Counters reported by a bulk load.
struct BulkLoadStats {
  size_t statements = 0;      ///< statements processed
  size_t new_links = 0;       ///< new rdf_link$ rows created
  size_t reused_links = 0;    ///< duplicates that only bumped COST
  size_t app_rows = 0;        ///< rows appended to the application table
};

/// Load statements into `model_name`. When `table` is non-null every
/// statement also gets an application-table row (ids continue from the
/// current row count).
Result<BulkLoadStats> BulkLoad(RdfStore* store,
                               const std::string& model_name,
                               const std::vector<NTriple>& statements,
                               ApplicationTable* table = nullptr);

/// Parse an N-Triples file and BulkLoad it.
Result<BulkLoadStats> BulkLoadFile(RdfStore* store,
                                   const std::string& model_name,
                                   const std::string& path,
                                   ApplicationTable* table = nullptr);

/// Export every triple of a model as N-Triples statements (the inverse
/// of BulkLoad; reification DBUris export as plain URIs).
Result<std::vector<NTriple>> ExportModel(const RdfStore& store,
                                         const std::string& model_name);

/// Export a model to an N-Triples file.
Status ExportModelToFile(const RdfStore& store,
                         const std::string& model_name,
                         const std::string& path);

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_BULK_LOAD_H_
