// Epoch-based reclamation for atomically published store versions.
//
// The snapshot store publishes immutable StoreVersion objects behind an
// atomic pointer. Readers pin the current epoch in a per-reader slot,
// run entirely against the pinned version (no locks, no per-row
// atomics), and unpin. The single writer advances the global epoch at
// each publish, moves the displaced version onto a retire list stamped
// with the new epoch, and frees retired objects once the minimum pinned
// epoch has moved past their retire stamp — i.e. once no reader can
// still hold a pointer into them.
//
// Memory-ordering contract (the whole safety argument):
//   * Publish order is: plain-build version → release-store the version
//     pointer → seq_cst fetch_add of the global epoch (yielding e_new)
//     → retire the old version at e_new.
//   * A reader whose slot holds epoch >= e_new necessarily read the
//     fetch_add's result; the seq_cst RMW synchronizes-with that load,
//     so the reader observes the new version pointer (or a newer one)
//     and never touches the retired object. Hence an entry retired at
//     e_new is free as soon as min_pinned >= e_new (or no reader is
//     pinned at all).
//   * Pin re-validates: after claiming a slot with epoch e, the reader
//     re-loads the global epoch; on mismatch it re-stamps the slot and
//     loops. A transiently stale slot value only makes the writer's
//     watermark conservative (delays freeing), never unsafe.

#ifndef RDFDB_RDF_EPOCH_H_
#define RDFDB_RDF_EPOCH_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace rdfdb::rdf {

/// Epoch-based garbage collector. One writer (externally serialized)
/// calls Advance/Retire/Sweep; any number of readers call Enter.
class EpochGc {
 public:
  EpochGc() = default;
  EpochGc(const EpochGc&) = delete;
  EpochGc& operator=(const EpochGc&) = delete;

  /// RAII epoch pin. Movable; releases its slot on destruction.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept : gc_(other.gc_), slot_(other.slot_) {
      other.gc_ = nullptr;
    }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Release();
        gc_ = other.gc_;
        slot_ = other.slot_;
        other.gc_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    /// Drop the pin early (idempotent).
    void Release() {
      if (gc_ != nullptr) {
        gc_->slots_[slot_].epoch.store(0, std::memory_order_release);
        gc_ = nullptr;
      }
    }

    bool pinned() const { return gc_ != nullptr; }

   private:
    friend class EpochGc;
    Pin(const EpochGc* gc, size_t slot) : gc_(gc), slot_(slot) {}
    const EpochGc* gc_ = nullptr;
    size_t slot_ = 0;
  };

  /// Pin the current epoch. Lock-free: claims an idle slot with a CAS
  /// and re-validates against the global epoch. Const so that read-side
  /// surfaces stay const; the slot array is mutable state by design.
  Pin Enter() const;

  /// Writer: bump the global epoch; returns the new value. Serialized
  /// externally (one writer at a time).
  uint64_t Advance() { return epoch_.fetch_add(1, std::memory_order_seq_cst) + 1; }

  /// Writer: queue `obj` for release once every reader pinned before
  /// `retire_epoch` has unpinned. The type-erased shared_ptr keeps the
  /// object (and everything it transitively owns) alive until then.
  /// `bytes` is the caller-estimated exclusive footprint of the retired
  /// object (memory accounting; RetiredBytes sums it), and each entry
  /// is stamped with its retire time so the epoch-stall watchdog can
  /// report how long reclamation has been blocked.
  void Retire(std::shared_ptr<const void> obj, uint64_t retire_epoch,
              size_t bytes = 0);

  /// Writer: drop every retired entry whose stamp is covered by the
  /// current minimum pinned epoch.
  void Sweep();

  /// Smallest epoch currently pinned by any reader; 0 when none is.
  uint64_t MinPinned() const;

  uint64_t CurrentEpoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// Retired-but-not-yet-freed entries (introspection / metrics).
  size_t RetiredOutstanding() const;

  /// Sum of the byte estimates passed to Retire for entries still held.
  size_t RetiredBytes() const;

  /// Seconds since the oldest still-held retired entry was retired — how
  /// long a pinned reader has been blocking reclamation. 0 when the
  /// retire list is empty.
  double OldestRetireAgeSeconds() const;

  /// CurrentEpoch() - MinPinned() when a reader is pinned, else 0 — how
  /// far the oldest reader lags behind the published frontier.
  uint64_t OldestPinLag() const;

 private:
  // More slots than any sane reader-thread count; cache-line padded so
  // concurrent pins never false-share.
  static constexpr size_t kSlots = 128;
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{0};  // 0 = idle
  };

  struct RetiredEntry {
    std::shared_ptr<const void> obj;
    uint64_t epoch = 0;
    size_t bytes = 0;
    std::chrono::steady_clock::time_point retired_at;
  };

  mutable Slot slots_[kSlots];
  std::atomic<uint64_t> epoch_{1};
  mutable std::mutex retire_mu_;  // writer-side only; never on read path
  std::vector<RetiredEntry> retired_;
};

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_EPOCH_H_
