// Rebuilds the pre-compression in-memory layout from a live store and
// prices it with the allocator hooks, so bench_memory_footprint's
// "uncompressed" column is the real legacy container cost measured on
// this allocator, not a hand-derived estimate.
//
// The legacy layout (as of PR 7) that the compressed layout replaces:
//   * term dictionary entries holding every lexical form as an
//     individually-allocated std::string (TermDict pre-front-coding),
//     plus rdf_value$'s two generic hash indexes keyed by ValueKey
//     copies (id index + 4-column name index);
//   * per-model quad-cache posting lists as
//     unordered_map<ValueId, vector<uint32_t>> for by_s/by_canon/by_p
//     and unordered_map<LinkId, uint32_t> for by_link;
//   * six generic rdf_link$ hash indexes
//     (link_id / spo / subject / predicate / object / spo_canon), each
//     an unordered_map<ValueKey, vector<RowId>> whose keys copy the
//     row's Values.
//
// MeasureLegacyLayout builds all of it from the current table contents,
// reads the TrackedHeapBytes delta, and throws the replica away.

#ifndef RDFDB_RDF_LEGACY_LAYOUT_H_
#define RDFDB_RDF_LEGACY_LAYOUT_H_

#include <cstdint>

#include "rdf/rdf_store.h"

namespace rdfdb::rdf {

/// Heap cost of the rebuilt legacy containers (allocator-hook deltas).
struct LegacyLayoutCost {
  uint64_t dict_bytes = 0;      ///< string-per-entry dictionary + value indexes
  uint64_t postings_bytes = 0;  ///< uncompressed per-model posting maps
  uint64_t index_bytes = 0;     ///< the six generic rdf_link$ hash indexes
  uint64_t total_bytes = 0;     ///< sum of the above
};

/// Build the legacy replica from `store`'s current contents, measure
/// it, free it. Single-threaded; call from the writer's context.
LegacyLayoutCost MeasureLegacyLayout(const RdfStore& store);

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_LEGACY_LAYOUT_H_
