#include "rdf/model_store.h"

#include <algorithm>

#include "common/string_util.h"
#include "storage/predicate.h"

namespace rdfdb::rdf {

namespace {

using storage::ColumnDef;
using storage::IndexKind;
using storage::KeyExtractor;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueKey;
using storage::ValueType;

constexpr size_t kModelId = 0;
constexpr size_t kModelName = 1;
constexpr size_t kAppTable = 2;
constexpr size_t kAppColumn = 3;
constexpr size_t kOwner = 4;

Schema ModelSchema() {
  return Schema({
      ColumnDef{"MODEL_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"MODEL_NAME", ValueType::kString, /*nullable=*/false},
      ColumnDef{"APP_TABLE", ValueType::kString, /*nullable=*/false},
      ColumnDef{"APP_COLUMN", ValueType::kString, /*nullable=*/false},
      ColumnDef{"OWNER", ValueType::kString, /*nullable=*/true},
  });
}

ModelInfo RowToInfo(const Row& row) {
  ModelInfo info;
  info.model_id = row[kModelId].as_int64();
  info.model_name = row[kModelName].as_string();
  info.app_table = row[kAppTable].as_string();
  info.app_column = row[kAppColumn].as_string();
  info.owner = row[kOwner].is_null() ? "" : row[kOwner].as_string();
  return info;
}

}  // namespace

ModelStore::ModelStore(storage::Database* db) : db_(db) {
  models_ = db_->GetTable("MDSYS", "RDF_MODEL$");
  if (models_ == nullptr) {
    models_ = *db_->CreateTable("MDSYS", "RDF_MODEL$", ModelSchema());
  }
  model_seq_ = db_->GetSequence("MDSYS", "RDF_MODEL_SEQ");
  if (model_seq_ == nullptr) {
    model_seq_ = *db_->CreateSequence("MDSYS", "RDF_MODEL_SEQ", 1);
  }
  if (models_->GetIndex("rdf_model_name_idx") == nullptr) {
    (void)models_->CreateIndex(
        "rdf_model_name_idx", IndexKind::kHash,
        KeyExtractor::Function(
            [](const Row& row) {
              return ValueKey{
                  Value::String(ToLower(row[kModelName].as_string()))};
            },
            "lower(MODEL_NAME)"),
        /*unique=*/true);
  }
  if (models_->GetIndex("rdf_model_id_idx") == nullptr) {
    (void)models_->CreateIndex("rdf_model_id_idx", IndexKind::kHash,
                               KeyExtractor::Columns({kModelId}),
                               /*unique=*/true);
  }
}

std::string ModelStore::ViewNameFor(const std::string& model_name) {
  return "RDFM_" + ToUpper(model_name);
}

Result<ModelInfo> ModelStore::CreateModel(const std::string& model_name,
                                          const std::string& app_table,
                                          const std::string& app_column,
                                          const std::string& owner,
                                          const storage::Table* link_table,
                                          size_t model_column) {
  if (model_name.empty()) {
    return Status::InvalidArgument("model name must not be empty");
  }
  if (GetModelId(model_name).ok()) {
    return Status::AlreadyExists("model " + model_name);
  }
  ModelInfo info;
  info.model_id = model_seq_->Next();
  info.model_name = model_name;
  info.app_table = app_table;
  info.app_column = app_column;
  info.owner = owner;

  Row row(5);
  row[kModelId] = Value::Int64(info.model_id);
  row[kModelName] = Value::String(model_name);
  row[kAppTable] = Value::String(app_table);
  row[kAppColumn] = Value::String(app_column);
  row[kOwner] = owner.empty() ? Value::Null() : Value::String(owner);
  auto insert = models_->Insert(std::move(row));
  if (!insert.ok()) return insert.status();

  // "When a graph or model is created, a view of the rdf_link$ table that
  // contains only data for the model is also created (rdfm_model_name)."
  auto view = db_->CreateView(
      "MDSYS", ViewNameFor(model_name), link_table,
      storage::Eq(model_column, Value::Int64(info.model_id)), owner);
  if (!view.ok()) return view.status();
  return info;
}

Result<ModelId> ModelStore::GetModelId(const std::string& model_name) const {
  RDFDB_ASSIGN_OR_RETURN(ModelInfo info, GetModel(model_name));
  return info.model_id;
}

Result<ModelInfo> ModelStore::GetModel(const std::string& model_name) const {
  const storage::Index* index = models_->GetIndex("rdf_model_name_idx");
  std::vector<storage::RowId> ids =
      index->Find(ValueKey{Value::String(ToLower(model_name))});
  if (ids.empty()) return Status::NotFound("model " + model_name);
  return RowToInfo(*models_->Get(ids.front()));
}

Result<ModelInfo> ModelStore::GetModelById(ModelId model_id) const {
  const storage::Index* index = models_->GetIndex("rdf_model_id_idx");
  std::vector<storage::RowId> ids =
      index->Find(ValueKey{Value::Int64(model_id)});
  if (ids.empty()) {
    return Status::NotFound("MODEL_ID " + std::to_string(model_id));
  }
  return RowToInfo(*models_->Get(ids.front()));
}

Status ModelStore::DropModel(const std::string& model_name) {
  const storage::Index* index = models_->GetIndex("rdf_model_name_idx");
  std::vector<storage::RowId> ids =
      index->Find(ValueKey{Value::String(ToLower(model_name))});
  if (ids.empty()) return Status::NotFound("model " + model_name);
  RDFDB_RETURN_NOT_OK(models_->Delete(ids.front()));
  return db_->DropView("MDSYS", ViewNameFor(model_name));
}

std::vector<std::string> ModelStore::ModelNames() const {
  std::vector<std::string> names;
  models_->Scan([&](storage::RowId, const Row& row) {
    names.push_back(row[kModelName].as_string());
    return true;
  });
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace rdfdb::rdf
