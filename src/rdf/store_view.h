// StoreView: the read-side surface the query executor runs against.
//
// Two implementations exist: the live RdfStore (reads see the writer's
// current state; callers provide their own locking, e.g. the legacy
// ConcurrentRdfStore facade) and a published StoreVersion (an immutable
// snapshot pinned through SnapshotRdfStore — lock-free reads). The
// compiled executor, the legacy join, and SDO_RDF_MATCH are written
// against this interface so a query is oblivious to which one it runs
// on.

#ifndef RDFDB_RDF_STORE_VIEW_H_
#define RDFDB_RDF_STORE_VIEW_H_

#include <functional>
#include <optional>
#include <string>

#include "common/result.h"
#include "rdf/link_store.h"
#include "rdf/model_store.h"
#include "rdf/term.h"
#include "rdf/value_store.h"

namespace rdfdb::obs {
struct StoreMetrics;
class SlowQueryLog;
class Timeline;
}  // namespace rdfdb::obs

namespace rdfdb::rdf {

/// Read-only store surface: model-name resolution, term interning
/// lookups, and the id-native triple match/scan entry points.
class StoreView {
 public:
  virtual ~StoreView() = default;

  /// MODEL_ID for a model name (case-insensitive); NotFound if absent.
  virtual Result<ModelId> GetModelId(const std::string& model_name) const = 0;

  /// VALUE_ID of an interned term; nullopt if never stored. Blank nodes
  /// are model-scoped and not resolvable here (callers pre-filter).
  virtual std::optional<ValueId> LookupValue(const Term& term) const = 0;

  /// Reconstruct the term stored under `value_id`.
  virtual Result<Term> TermForValueId(ValueId value_id) const = 0;

  /// Leaf-scan view of one model's quad cache; invalid when the model
  /// has no rows.
  virtual LinkStore::LeafScan Leaf(ModelId model_id) const = 0;

  /// Id-native streaming triple match (object position is canonical).
  virtual void MatchEachIds(
      ModelId model_id, std::optional<ValueId> s, std::optional<ValueId> p,
      std::optional<ValueId> canon_o,
      const std::function<bool(ValueId s, ValueId p, ValueId o,
                               ValueId canon_o)>& fn) const = 0;

  /// Observability attachments; null when disabled.
  virtual obs::StoreMetrics* metrics() const { return nullptr; }
  virtual obs::SlowQueryLog* slow_query_log() const { return nullptr; }
  virtual obs::Timeline* timeline() const { return nullptr; }
};

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_STORE_VIEW_H_
