#include "rdf/term_dict.h"

#include <algorithm>

#include "common/hash.h"
#include "storage/table.h"

namespace rdfdb::rdf {

namespace {

// rdf_value$ column positions (mirrors value_store.cc).
constexpr size_t kValueId = 0;
constexpr size_t kValueName = 1;
constexpr size_t kValueType = 2;
constexpr size_t kLiteralType = 3;
constexpr size_t kLanguageType = 4;
constexpr size_t kLongValue = 5;

}  // namespace

TermDict::HashTable::HashTable(size_t capacity)
    : slots(capacity), mask(capacity - 1) {}

TermDict::TermDict() {
  term_table_.store(new HashTable(1024), std::memory_order_relaxed);
  id_table_.store(new HashTable(1024), std::memory_order_relaxed);
  bn_table_.store(new HashTable(256), std::memory_order_relaxed);
}

TermDict::~TermDict() {
  delete term_table_.load(std::memory_order_relaxed);
  delete id_table_.load(std::memory_order_relaxed);
  delete bn_table_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kMaxChunks; ++i) {
    Chunk* chunk = chunks_[i].load(std::memory_order_relaxed);
    if (chunk == nullptr) break;
    delete chunk;
  }
}

uint64_t TermDict::BlankKey(int64_t model_id, const std::string& label) {
  return Mix(HashCombine(static_cast<uint64_t>(model_id), Fnv1a64(label)));
}

uint64_t TermDict::KeyFor(TableKind kind, const Entry& entry) const {
  switch (kind) {
    case TableKind::kId:
      return Mix(static_cast<uint64_t>(entry.id));
    case TableKind::kBlank:
      return BlankKey(entry.bn_model, entry.bn_label);
    case TableKind::kTerm:
      return Mix(entry.term_hash);
  }
  return 0;
}

Term TermDict::MaterializeTerm(const Entry& entry) const {
  std::string text = entry.pack->Get(entry.pack_slot);
  switch (entry.kind) {
    case TermKind::kUri:
      return Term::Uri(std::move(text));
    case TermKind::kBlankNode:
      return Term::BlankNode(std::move(text));
    case TermKind::kTypedLiteral:
    case TermKind::kTypedLongLiteral:
      return Term::TypedLiteral(std::move(text), entry.datatype);
    case TermKind::kPlainLiteralLang:
      return Term::PlainLiteralLang(std::move(text), entry.language);
    case TermKind::kPlainLiteral:
    case TermKind::kPlainLongLiteral:
      // Long plain literals may carry a language tag (type code PLL);
      // re-run the factory the ingest path used.
      return entry.language.empty()
                 ? Term::PlainLiteral(std::move(text))
                 : Term::PlainLiteralLang(std::move(text), entry.language);
  }
  return Term();
}

size_t TermDict::AppendEntry(Entry entry) {
  entry_string_bytes_ += entry.language.capacity() +
                         entry.datatype.capacity() +
                         entry.bn_label.capacity();
  const size_t index = count_.load(std::memory_order_relaxed);
  const size_t chunk_i = index >> kChunkShift;
  Chunk* chunk = chunks_[chunk_i].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    chunks_[chunk_i].store(chunk, std::memory_order_release);
  }
  (*chunk)[index & (kChunkSize - 1)] = std::move(entry);
  // Readers only reach an entry through a table slot, which is
  // release-stored after this; the count is informational.
  count_.store(index + 1, std::memory_order_release);
  return index;
}

void TermDict::TableInsert(std::atomic<HashTable*>* table_ptr,
                           TableKind kind, size_t entry_index) {
  HashTable* table = table_ptr->load(std::memory_order_relaxed);
  if ((table->count + 1) * 10 >= (table->mask + 1) * 7) {
    // Build the doubled table offline (plain stores — the release
    // publish of the pointer orders them), publish it, and park the
    // superseded one so in-flight readers stay valid.
    auto grown = std::make_unique<HashTable>(2 * (table->mask + 1));
    for (size_t i = 0; i <= table->mask; ++i) {
      const uint64_t v = table->slots[i].load(std::memory_order_relaxed);
      if (v == 0) continue;
      const uint64_t key = KeyFor(kind, EntryAt(v - 1));
      size_t j = key & grown->mask;
      while (grown->slots[j].load(std::memory_order_relaxed) != 0) {
        j = (j + 1) & grown->mask;
      }
      grown->slots[j].store(v, std::memory_order_relaxed);
    }
    grown->count = table->count;
    HashTable* published = grown.release();
    table_ptr->store(published, std::memory_order_release);
    graveyard_.emplace_back(table);
    table = published;
  }

  const uint64_t key = KeyFor(kind, EntryAt(entry_index));
  for (size_t i = key & table->mask;; i = (i + 1) & table->mask) {
    if (table->slots[i].load(std::memory_order_relaxed) != 0) continue;
    // Entry contents were written before this release-store; a reader
    // that acquire-loads the slot sees them complete.
    table->slots[i].store(static_cast<uint64_t>(entry_index) + 1,
                          std::memory_order_release);
    table->count += 1;
    return;
  }
}

Status TermDict::Ingest(const ValueStore& values) {
  const storage::Table& table = values.table();
  const size_t total = table.row_count();  // append-only: rows are dense
  if (total == ingested_rows_) return Status::OK();

  // Pass 1: build each new row's full Term (hash, factory fields) and
  // collect its lexical text for the batch's front-coded pack.
  const size_t batch = total - ingested_rows_;
  std::vector<Entry> entries;
  std::vector<std::string> texts;
  entries.reserve(batch);
  texts.reserve(batch);
  for (size_t r = ingested_rows_; r < total; ++r) {
    const storage::Row* row = table.Get(static_cast<storage::RowId>(r));
    if (row == nullptr) {
      return Status::Corruption("rdf_value$ row " + std::to_string(r) +
                                " missing during dictionary ingest");
    }
    Entry entry;
    entry.id = row->at(kValueId).as_int64();
    const std::string& type_code = row->at(kValueType).as_string();
    const std::string& name = row->at(kValueName).as_string();
    Term term;
    if (type_code == "UR") {
      term = Term::Uri(name);
    } else if (type_code == "BN") {
      term = Term::BlankNode(name.substr(2));
      entry.is_blank = true;
      auto scope = values.LookupBlankLabel(entry.id);
      if (!scope.has_value()) {
        return Status::Corruption("blank node VALUE_ID " +
                                  std::to_string(entry.id) +
                                  " has no rdf_blank_node$ mapping");
      }
      entry.bn_model = scope->first;
      entry.bn_label = scope->second;
    } else {
      std::string text = row->at(kLongValue).is_null()
                             ? name
                             : row->at(kLongValue).as_clob();
      if (type_code == "PL" || type_code == "PLL") {
        std::string lang = row->at(kLanguageType).is_null()
                               ? ""
                               : row->at(kLanguageType).as_string();
        term = lang.empty()
                   ? Term::PlainLiteral(std::move(text))
                   : Term::PlainLiteralLang(std::move(text),
                                            std::move(lang));
      } else if (type_code == "PL@") {
        term = Term::PlainLiteralLang(std::move(text),
                                      row->at(kLanguageType).as_string());
      } else if (type_code == "TL" || type_code == "TLL") {
        term = Term::TypedLiteral(std::move(text),
                                  row->at(kLiteralType).as_string());
      } else {
        return Status::Corruption("unknown VALUE_TYPE " + type_code);
      }
    }
    entry.term_hash = term.Hash();
    entry.kind = term.kind();
    entry.datatype = term.datatype();
    entry.language = term.language();
    texts.push_back(term.lexical());
    entries.push_back(std::move(entry));
  }

  // Pass 2: pack the batch's lexical forms, sorted so shared prefixes
  // (URI namespaces, id runs) actually neighbor each other. The pack
  // is complete — and its address final — before any entry referencing
  // it is published through a table slot.
  std::vector<uint32_t> order(batch);
  for (uint32_t i = 0; i < batch; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return texts[a] < texts[b];
  });
  codec::FrontCodedPackBuilder builder;
  for (uint32_t i : order) {
    entries[i].pack_slot = builder.Add(texts[i]);
  }
  auto pack = std::make_unique<codec::FrontCodedPack>(builder.Build());
  pack_bytes_ += pack->ApproxBytes();
  const codec::FrontCodedPack* pack_ptr = pack.get();
  packs_.push_back(std::move(pack));

  // Pass 3: publish entries in row order (VALUE_ID order), exactly as
  // the one-at-a-time ingest did.
  for (Entry& entry : entries) {
    entry.pack = pack_ptr;
    const bool is_blank = entry.is_blank;
    const size_t index = AppendEntry(std::move(entry));
    TableInsert(&id_table_, TableKind::kId, index);
    if (is_blank) {
      TableInsert(&bn_table_, TableKind::kBlank, index);
    } else {
      TableInsert(&term_table_, TableKind::kTerm, index);
    }
  }
  ingested_rows_ = total;
  return Status::OK();
}

size_t TermDict::ApproxBytes() const {
  const size_t count = count_.load(std::memory_order_acquire);
  const size_t chunks = (count + kChunkSize - 1) >> kChunkShift;
  size_t n = chunks * sizeof(Chunk) + entry_string_bytes_ + pack_bytes_ +
             packs_.capacity() * sizeof(packs_[0]);
  auto table_bytes = [](const HashTable* table) {
    return table == nullptr
               ? size_t{0}
               : sizeof(HashTable) +
                     table->slots.size() * sizeof(std::atomic<uint64_t>);
  };
  n += table_bytes(term_table_.load(std::memory_order_acquire));
  n += table_bytes(id_table_.load(std::memory_order_acquire));
  n += table_bytes(bn_table_.load(std::memory_order_acquire));
  for (const auto& parked : graveyard_) n += table_bytes(parked.get());
  return n;
}

std::optional<ValueId> TermDict::Lookup(const Term& term) const {
  if (term.is_blank()) return std::nullopt;
  const HashTable* table = term_table_.load(std::memory_order_acquire);
  const uint64_t hash = term.Hash();
  const uint64_t key = Mix(hash);
  for (size_t i = key & table->mask;; i = (i + 1) & table->mask) {
    const uint64_t v = table->slots[i].load(std::memory_order_acquire);
    if (v == 0) return std::nullopt;
    const Entry& entry = EntryAt(v - 1);
    // Hash-reject before touching the pack: only a (rare) full 64-bit
    // collision pays a front-coded decode without a hit.
    if (!entry.is_blank && entry.term_hash == hash &&
        MaterializeTerm(entry) == term) {
      return entry.id;
    }
  }
}

std::optional<ValueId> TermDict::LookupBlank(
    int64_t model_id, const std::string& label) const {
  const HashTable* table = bn_table_.load(std::memory_order_acquire);
  const uint64_t key = BlankKey(model_id, label);
  for (size_t i = key & table->mask;; i = (i + 1) & table->mask) {
    const uint64_t v = table->slots[i].load(std::memory_order_acquire);
    if (v == 0) return std::nullopt;
    const Entry& entry = EntryAt(v - 1);
    if (entry.is_blank && entry.bn_model == model_id &&
        entry.bn_label == label) {
      return entry.id;
    }
  }
}

Result<Term> TermDict::TermForValueId(ValueId value_id) const {
  const HashTable* table = id_table_.load(std::memory_order_acquire);
  const uint64_t key = Mix(static_cast<uint64_t>(value_id));
  for (size_t i = key & table->mask;; i = (i + 1) & table->mask) {
    const uint64_t v = table->slots[i].load(std::memory_order_acquire);
    if (v == 0) {
      return Status::NotFound("VALUE_ID " + std::to_string(value_id));
    }
    const Entry& entry = EntryAt(v - 1);
    if (entry.id == value_id) return MaterializeTerm(entry);
  }
}

}  // namespace rdfdb::rdf
