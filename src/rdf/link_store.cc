#include "rdf/link_store.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/string_util.h"
#include "obs/store_metrics.h"
#include "rdf/term.h"
#include "rdf/vocab.h"

namespace rdfdb::rdf {

namespace {

using storage::ColumnDef;
using storage::IndexKind;
using storage::KeyExtractor;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueKey;
using storage::ValueType;

// rdf_link$ column positions.
constexpr size_t kLinkId = 0;
constexpr size_t kStartNodeId = 1;
constexpr size_t kPValueId = 2;
constexpr size_t kEndNodeId = 3;
constexpr size_t kCanonEndNodeId = 4;
constexpr size_t kLinkType = 5;
constexpr size_t kCost = 6;
constexpr size_t kContext = 7;
constexpr size_t kReifLink = 8;
constexpr size_t kModelId = 9;

// rdf_node$ column positions.
constexpr size_t kNodeId = 0;
constexpr size_t kNodeActive = 1;

Schema LinkSchema() {
  return Schema({
      ColumnDef{"LINK_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"START_NODE_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"P_VALUE_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"END_NODE_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"CANON_END_NODE_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"LINK_TYPE", ValueType::kString, /*nullable=*/false},
      ColumnDef{"COST", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"CONTEXT", ValueType::kString, /*nullable=*/false},
      ColumnDef{"REIF_LINK", ValueType::kString, /*nullable=*/false},
      ColumnDef{"MODEL_ID", ValueType::kInt64, /*nullable=*/false},
  });
}

Schema NodeSchema() {
  return Schema({
      ColumnDef{"NODE_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"ACTIVE", ValueType::kString, /*nullable=*/false},
  });
}

}  // namespace

std::string ClassifyPredicate(const std::string& predicate_uri) {
  if (predicate_uri == kRdfType) return "RDF_TYPE";
  if (predicate_uri == kRdfLi ||
      IsContainerMembershipProperty(predicate_uri)) {
    return "RDF_MEMBER";
  }
  if (StartsWith(predicate_uri, kRdfNs)) return "RDF_*";
  return "STANDARD";
}

LinkStore::LinkStore(storage::Database* db, ndm::LogicalNetwork* net)
    : db_(db), net_(net) {
  links_ = db_->GetTable("MDSYS", "RDF_LINK$");
  if (links_ == nullptr) {
    links_ = *db_->CreateTable("MDSYS", "RDF_LINK$", LinkSchema());
    (void)links_->SetPartitionColumn(kModelId);
  }
  nodes_ = db_->GetTable("MDSYS", "RDF_NODE$");
  if (nodes_ == nullptr) {
    nodes_ = *db_->CreateTable("MDSYS", "RDF_NODE$", NodeSchema());
  }
  link_seq_ = db_->GetSequence("MDSYS", "RDF_LINK_SEQ");
  if (link_seq_ == nullptr) {
    link_seq_ = *db_->CreateSequence("MDSYS", "RDF_LINK_SEQ", 2000);
  }

  auto ensure_index = [&](const char* name, std::vector<size_t> cols,
                          bool unique) {
    if (links_->GetIndex(name) == nullptr) {
      (void)links_->CreateIndex(name, IndexKind::kHash,
                                KeyExtractor::Columns(std::move(cols)),
                                unique);
    }
  };
  ensure_index(kLinkIdIndex, {kLinkId}, /*unique=*/true);
  ensure_index(kSpoIndex, {kModelId, kStartNodeId, kPValueId, kEndNodeId},
               /*unique=*/true);
  ensure_index(kSubjectIndex, {kModelId, kStartNodeId}, /*unique=*/false);
  ensure_index(kPredicateIndex, {kModelId, kPValueId}, /*unique=*/false);
  ensure_index(kObjectIndex, {kModelId, kCanonEndNodeId}, /*unique=*/false);
  ensure_index(kSpoCanonIndex,
               {kModelId, kStartNodeId, kPValueId, kCanonEndNodeId},
               /*unique=*/false);

  if (nodes_->GetIndex("rdf_node_id_idx") == nullptr) {
    (void)nodes_->CreateIndex("rdf_node_id_idx", IndexKind::kHash,
                              KeyExtractor::Columns({kNodeId}),
                              /*unique=*/true);
  }

  // Reattach: rebuild the id-native quad cache from existing rows.
  RebuildCache();
}

void LinkStore::RebuildCache() {
  id_cache_.clear();
  links_->Scan([&](storage::RowId, const Row& row) {
    CacheInsert(row[kModelId].as_int64(),
                IdQuad{row[kStartNodeId].as_int64(),
                       row[kPValueId].as_int64(),
                       row[kEndNodeId].as_int64(),
                       row[kCanonEndNodeId].as_int64(),
                       row[kLinkId].as_int64()},
                /*implied=*/row[kContext].as_string()[0] ==
                    static_cast<char>(TripleContext::kImplied));
    return true;
  });
}

LinkStore::SpMap::Slot& LinkStore::SpMap::SlotFor(ValueId s, ValueId p) {
  size_t first_gone = SIZE_MAX;
  for (size_t i = IndexFor(s, p);; i = (i + 1) & mask_) {
    Slot& slot = slots_[i];
    if (slot.s == kEmpty) {
      return first_gone != SIZE_MAX ? slots_[first_gone] : slot;
    }
    if (slot.s == kGone) {
      if (first_gone == SIZE_MAX) first_gone = i;
      continue;
    }
    if (slot.s == s && slot.p == p) return slot;
  }
}

void LinkStore::SpMap::Grow() {
  std::vector<Slot> old = std::move(slots_);
  size_t live = 0;
  for (const Slot& slot : old) {
    if (slot.s >= 0) ++live;
  }
  size_t capacity = 64;
  while (capacity < 2 * (live + 8)) capacity <<= 1;
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;
  used_ = live;
  for (const Slot& slot : old) {
    if (slot.s < 0) continue;
    size_t i = IndexFor(slot.s, slot.p);
    while (slots_[i].s != kEmpty) i = (i + 1) & mask_;
    slots_[i] = slot;
  }
}

void LinkStore::SpMap::Insert(ValueId s, ValueId p, uint32_t idx, ValueId o,
                              ValueId canon_o) {
  if (slots_.empty() || (used_ + 1) * 10 >= slots_.size() * 7) Grow();
  Slot& slot = SlotFor(s, p);
  if (slot.s < 0) {
    if (slot.s == kEmpty) ++used_;  // tombstone reuse keeps used_ flat
    slot.s = s;
    slot.p = p;
    slot.head = idx;
    slot.overflow = -1;
    slot.o = o;
    slot.canon_o = canon_o;
    return;
  }
  if (slot.overflow < 0) {
    int32_t ref;
    if (!free_overflow_.empty()) {
      ref = free_overflow_.back();
      free_overflow_.pop_back();
      overflow_[ref] = {slot.head, idx};
    } else {
      ref = static_cast<int32_t>(overflow_.size());
      overflow_.push_back({slot.head, idx});
    }
    slot.overflow = ref;
  } else {
    overflow_[slot.overflow].push_back(idx);
  }
}

void LinkStore::SpMap::Erase(ValueId s, ValueId p, uint32_t idx,
                             const std::vector<IdQuad>& quads) {
  for (size_t i = IndexFor(s, p);; i = (i + 1) & mask_) {
    Slot& slot = slots_[i];
    if (slot.s == kEmpty) return;
    if (slot.s != s || slot.p != p) continue;
    if (slot.overflow < 0) {
      slot.s = kGone;
      return;
    }
    std::vector<uint32_t>& rows = overflow_[slot.overflow];
    rows.erase(std::find(rows.begin(), rows.end(), idx));
    if (rows.size() == 1) {
      const IdQuad& q = quads[rows.front()];
      slot.head = rows.front();
      slot.o = q.o;
      slot.canon_o = q.canon_o;
      free_overflow_.push_back(slot.overflow);
      rows.clear();
      slot.overflow = -1;
    }
    return;
  }
}

void LinkStore::SpMap::Reindex(ValueId s, ValueId p, uint32_t from,
                               uint32_t to) {
  for (size_t i = IndexFor(s, p);; i = (i + 1) & mask_) {
    Slot& slot = slots_[i];
    if (slot.s == kEmpty) return;
    if (slot.s != s || slot.p != p) continue;
    if (slot.overflow < 0) {
      slot.head = to;
    } else {
      std::vector<uint32_t>& rows = overflow_[slot.overflow];
      *std::find(rows.begin(), rows.end(), from) = to;
    }
    return;
  }
}

LinkStore::LeafScan LinkStore::Leaf(int64_t model_id) const {
  LeafScan leaf;
  auto it = id_cache_.find(model_id);
  if (it == id_cache_.end()) return leaf;
  leaf.cache_ = it->second.get();
  leaf.scans_ = metrics_ != nullptr ? metrics_->link_rows_scanned : nullptr;
  return leaf;
}

LinkStore::ModelIdCache& LinkStore::MutableCache(int64_t model_id) {
  std::shared_ptr<ModelIdCache>& slot = id_cache_[model_id];
  if (slot == nullptr) {
    slot = std::make_shared<ModelIdCache>();
  } else if (slot.use_count() > 1) {
    // A published snapshot still reads the current object: mutate a
    // clone instead (only the serialized writer runs here, so the
    // use_count answer is stable).
    slot = std::make_shared<ModelIdCache>(*slot);
  }
  return *slot;
}

void LinkStore::CacheInsert(int64_t model_id, const IdQuad& quad,
                            bool implied) {
  ModelIdCache& cache = MutableCache(model_id);
  const uint32_t idx = static_cast<uint32_t>(cache.quads.size());
  cache.quads.push_back(quad);
  cache.by_s[quad.s].push_back(idx);
  cache.by_sp.Insert(quad.s, quad.p, idx, quad.o, quad.canon_o);
  cache.by_canon[quad.canon_o].push_back(idx);
  cache.by_p[quad.p].push_back(idx);
  cache.by_link.emplace(quad.link_id, idx);
  if (implied) cache.implied_count += 1;
}

void LinkStore::CacheContextUpgrade(int64_t model_id) {
  ModelIdCache& cache = MutableCache(model_id);
  if (cache.implied_count > 0) cache.implied_count -= 1;
}

void LinkStore::CacheErase(int64_t model_id, LinkId link_id, bool implied) {
  auto mit = id_cache_.find(model_id);
  if (mit == id_cache_.end()) return;
  if (mit->second.use_count() > 1) {
    mit->second = std::make_shared<ModelIdCache>(*mit->second);
  }
  ModelIdCache& cache = *mit->second;
  auto lit = cache.by_link.find(link_id);
  if (lit == cache.by_link.end()) return;
  const uint32_t idx = lit->second;
  const uint32_t back = static_cast<uint32_t>(cache.quads.size() - 1);

  auto unpost = [](auto& postings, const auto& key, uint32_t at) {
    auto pit = postings.find(key);
    auto& v = pit->second;
    v.erase(std::find(v.begin(), v.end(), at));
    if (v.empty()) postings.erase(pit);
  };
  // Rewrite the moved quad's index in place, keeping every posting
  // list's creation order intact.
  auto repost = [](auto& postings, const auto& key, uint32_t from,
                   uint32_t to) {
    auto& v = postings.find(key)->second;
    *std::find(v.begin(), v.end(), from) = to;
  };

  {
    const IdQuad& q = cache.quads[idx];
    unpost(cache.by_s, q.s, idx);
    cache.by_sp.Erase(q.s, q.p, idx, cache.quads);
    unpost(cache.by_canon, q.canon_o, idx);
    unpost(cache.by_p, q.p, idx);
  }
  cache.by_link.erase(lit);
  if (implied && cache.implied_count > 0) cache.implied_count -= 1;
  if (idx != back) {
    const IdQuad moved = cache.quads[back];
    repost(cache.by_s, moved.s, back, idx);
    cache.by_sp.Reindex(moved.s, moved.p, back, idx);
    repost(cache.by_canon, moved.canon_o, back, idx);
    repost(cache.by_p, moved.p, back, idx);
    cache.by_link[moved.link_id] = idx;
    cache.quads[idx] = moved;
  }
  cache.quads.pop_back();
  if (cache.quads.empty()) id_cache_.erase(mit);
}

LinkRow LinkStore::RowToLink(const Row& row) const {
  LinkRow link;
  link.link_id = row[kLinkId].as_int64();
  link.start_node_id = row[kStartNodeId].as_int64();
  link.p_value_id = row[kPValueId].as_int64();
  link.end_node_id = row[kEndNodeId].as_int64();
  link.canon_end_node_id = row[kCanonEndNodeId].as_int64();
  link.link_type = row[kLinkType].as_string();
  link.cost = row[kCost].as_int64();
  link.context = static_cast<TripleContext>(row[kContext].as_string()[0]);
  link.reif_link = row[kReifLink].as_string() == "Y";
  link.model_id = row[kModelId].as_int64();
  return link;
}

storage::Row LinkStore::LinkToRow(const LinkRow& link) const {
  Row row(10);
  row[kLinkId] = Value::Int64(link.link_id);
  row[kStartNodeId] = Value::Int64(link.start_node_id);
  row[kPValueId] = Value::Int64(link.p_value_id);
  row[kEndNodeId] = Value::Int64(link.end_node_id);
  row[kCanonEndNodeId] = Value::Int64(link.canon_end_node_id);
  row[kLinkType] = Value::String(link.link_type);
  row[kCost] = Value::Int64(link.cost);
  row[kContext] =
      Value::String(std::string(1, static_cast<char>(link.context)));
  row[kReifLink] = Value::String(link.reif_link ? "Y" : "N");
  row[kModelId] = Value::Int64(link.model_id);
  return row;
}

void LinkStore::EnsureNode(ValueId node) {
  if (net_->HasNode(node)) return;
  net_->AddNode(node);
  Row row(2);
  row[kNodeId] = Value::Int64(node);
  row[kNodeActive] = Value::String("Y");
  (void)nodes_->Insert(std::move(row));
}

void LinkStore::DropNodeIfOrphaned(ValueId node) {
  if (!net_->RemoveNodeIfIsolated(node)) return;
  auto ids = nodes_->FindByIndex("rdf_node_id_idx",
                                 ValueKey{Value::Int64(node)});
  if (ids.ok() && !ids->empty()) {
    (void)nodes_->Delete(ids->front());
  }
}

Result<LinkInsertOutcome> LinkStore::Insert(int64_t model_id, ValueId s,
                                            ValueId p, ValueId o,
                                            ValueId canon_o,
                                            const std::string& link_type,
                                            TripleContext context,
                                            bool reif_link) {
  // Reuse path: "If the triple already exists in the specified graph, the
  // IDs for the previously inserted triple are returned".
  const storage::Index* spo = links_->GetIndex(kSpoIndex);
  std::vector<storage::RowId> existing = spo->Find(
      ValueKey{Value::Int64(model_id), Value::Int64(s), Value::Int64(p),
               Value::Int64(o)});
  if (!existing.empty()) {
    storage::RowId rid = existing.front();
    LinkRow link = RowToLink(*links_->Get(rid));
    link.cost += 1;
    bool upgraded = false;
    if (context == TripleContext::kDirect &&
        link.context == TripleContext::kImplied) {
      // "If the triple is subsequently entered into the database as a
      // fact, the CONTEXT for this triple is changed from I to D."
      link.context = TripleContext::kDirect;
      upgraded = true;
    }
    link.reif_link = link.reif_link || reif_link;
    RDFDB_RETURN_NOT_OK(links_->Update(rid, LinkToRow(link)));
    if (upgraded) CacheContextUpgrade(model_id);
    if (metrics_ != nullptr) metrics_->link_duplicates->Inc();
    return LinkInsertOutcome{link, /*inserted=*/false};
  }

  LinkRow link;
  link.link_id = link_seq_->Next();
  link.start_node_id = s;
  link.p_value_id = p;
  link.end_node_id = o;
  link.canon_end_node_id = canon_o;
  link.link_type = link_type;
  link.cost = 1;
  link.context = context;
  link.reif_link = reif_link;
  link.model_id = model_id;

  auto insert = links_->Insert(LinkToRow(link));
  if (!insert.ok()) return insert.status();
  CacheInsert(model_id, IdQuad{s, p, o, canon_o, link.link_id},
              context == TripleContext::kImplied);

  // Keep the NDM network in sync: "a new link is always created whenever
  // a new triple is inserted"; nodes are reused.
  EnsureNode(s);
  EnsureNode(o);
  RDFDB_RETURN_NOT_OK(net_->AddLink(ndm::Link{
      link.link_id, s, o, /*cost=*/1.0, /*label=*/p}));
  if (metrics_ != nullptr) metrics_->link_inserts->Inc();
  return LinkInsertOutcome{link, /*inserted=*/true};
}

namespace {

struct SpoKey {
  ValueId s, p, o;
  bool operator==(const SpoKey& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
};

struct SpoKeyHash {
  size_t operator()(const SpoKey& k) const {
    uint64_t h = HashCombine(static_cast<uint64_t>(k.s),
                             static_cast<uint64_t>(k.p));
    return static_cast<size_t>(HashCombine(h, static_cast<uint64_t>(k.o)));
  }
};

}  // namespace

Result<std::vector<LinkInsertOutcome>> LinkStore::InsertBatch(
    int64_t model_id, const std::vector<LinkBatchEntry>& entries) {
  // Phase 1: group the batch by (s, p, o) — one SPO probe per distinct
  // triple — and fold duplicate occurrences into per-group aggregates
  // (COST += occurrences, Implied→Direct upgrade, REIF_LINK OR), exactly
  // the state N sequential Insert() calls would leave behind.
  struct Group {
    LinkRow row;
    std::optional<storage::RowId> existing_rid;
    size_t first_entry = 0;
    int64_t occurrences = 0;
    bool is_new = false;
    bool was_implied = false;  ///< existing row's CONTEXT before the fold
  };
  std::unordered_map<SpoKey, size_t, SpoKeyHash> group_of;
  group_of.reserve(entries.size());
  std::vector<Group> groups;
  groups.reserve(entries.size());
  std::vector<size_t> entry_group(entries.size());
  size_t new_groups = 0;

  const storage::Index* spo = links_->GetIndex(kSpoIndex);
  for (size_t i = 0; i < entries.size(); ++i) {
    const LinkBatchEntry& e = entries[i];
    auto [it, first_sighting] =
        group_of.try_emplace(SpoKey{e.s, e.p, e.o}, groups.size());
    if (first_sighting) {
      Group g;
      g.first_entry = i;
      std::vector<storage::RowId> existing = spo->Find(
          ValueKey{Value::Int64(model_id), Value::Int64(e.s),
                   Value::Int64(e.p), Value::Int64(e.o)});
      if (!existing.empty()) {
        g.existing_rid = existing.front();
        g.row = RowToLink(*links_->Get(existing.front()));
        g.was_implied = g.row.context == TripleContext::kImplied;
      } else {
        g.is_new = true;
        ++new_groups;
        g.row.start_node_id = e.s;
        g.row.p_value_id = e.p;
        g.row.end_node_id = e.o;
        g.row.canon_end_node_id = e.canon_o;
        g.row.link_type = e.link_type;
        g.row.cost = 0;  // set from occurrences below
        g.row.context = e.context;
        g.row.reif_link = e.reif_link;
        g.row.model_id = model_id;
      }
      groups.push_back(std::move(g));
    }
    Group& g = groups[it->second];
    ++g.occurrences;
    if (e.context == TripleContext::kDirect &&
        g.row.context == TripleContext::kImplied) {
      g.row.context = TripleContext::kDirect;
    }
    g.row.reif_link = g.row.reif_link || e.reif_link;
    entry_group[i] = it->second;
  }

  // Phase 2: reserve the LINK_ID range and assign in first-occurrence
  // order (identical ids to per-statement Next() calls), apply the folded
  // updates, and append all new rows through the staged batch path.
  LinkId next_id = link_seq_->NextRange(static_cast<int64_t>(new_groups));
  std::vector<Row> new_rows;
  new_rows.reserve(new_groups);
  for (Group& g : groups) {
    if (g.is_new) {
      g.row.link_id = next_id++;
      g.row.cost = g.occurrences;
      new_rows.push_back(LinkToRow(g.row));
    } else {
      g.row.cost += g.occurrences;
      RDFDB_RETURN_NOT_OK(links_->Update(*g.existing_rid, LinkToRow(g.row)));
      if (g.was_implied && g.row.context == TripleContext::kDirect) {
        CacheContextUpgrade(model_id);
      }
    }
  }
  auto staged = links_->InsertBatch(std::move(new_rows));
  if (!staged.ok()) return staged.status();
  for (const Group& g : groups) {
    if (!g.is_new) continue;
    // First-occurrence order: identical cache state to per-statement
    // Insert() calls.
    CacheInsert(model_id,
                IdQuad{g.row.start_node_id, g.row.p_value_id,
                       g.row.end_node_id, g.row.canon_end_node_id,
                       g.row.link_id},
                g.row.context == TripleContext::kImplied);
  }

  // Phase 3: bulk-register the NDM side. Node creation order matches the
  // sequential path (subject then object, per new link, in link order) so
  // rdf_node$ contents are bit-identical.
  net_->ReserveAdditional(2 * new_groups, new_groups);
  std::vector<ndm::Link> ndm_links;
  ndm_links.reserve(new_groups);
  for (const Group& g : groups) {
    if (!g.is_new) continue;
    EnsureNode(g.row.start_node_id);
    EnsureNode(g.row.end_node_id);
    ndm_links.push_back(ndm::Link{g.row.link_id, g.row.start_node_id,
                                  g.row.end_node_id, /*cost=*/1.0,
                                  /*label=*/g.row.p_value_id});
  }
  RDFDB_RETURN_NOT_OK(net_->AddLinksBulk(ndm_links));

  if (metrics_ != nullptr) {
    // Mirror the sequential path: each entry either created a row or
    // folded into an existing one.
    metrics_->link_inserts->Inc(new_groups);
    metrics_->link_duplicates->Inc(entries.size() - new_groups);
  }

  std::vector<LinkInsertOutcome> outcomes;
  outcomes.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    const Group& g = groups[entry_group[i]];
    outcomes.push_back(
        LinkInsertOutcome{g.row, g.is_new && g.first_entry == i});
  }
  return outcomes;
}

std::optional<LinkRow> LinkStore::Find(int64_t model_id, ValueId s, ValueId p,
                                       ValueId o) const {
  const storage::Index* spo = links_->GetIndex(kSpoIndex);
  std::vector<storage::RowId> ids = spo->Find(
      ValueKey{Value::Int64(model_id), Value::Int64(s), Value::Int64(p),
               Value::Int64(o)});
  if (ids.empty()) return std::nullopt;
  return RowToLink(*links_->Get(ids.front()));
}

Result<LinkRow> LinkStore::Get(LinkId link_id) const {
  const storage::Index* index = links_->GetIndex(kLinkIdIndex);
  std::vector<storage::RowId> ids =
      index->Find(ValueKey{Value::Int64(link_id)});
  if (ids.empty()) {
    return Status::NotFound("LINK_ID " + std::to_string(link_id));
  }
  return RowToLink(*links_->Get(ids.front()));
}

std::vector<LinkRow> LinkStore::Match(int64_t model_id,
                                      std::optional<ValueId> s,
                                      std::optional<ValueId> p,
                                      std::optional<ValueId> canon_o) const {
  std::vector<LinkRow> out;
  MatchEach(model_id, s, p, canon_o, [&](const LinkRow& row) {
    out.push_back(row);
    return true;
  });
  return out;
}

void LinkStore::MatchRows(
    int64_t model_id, std::optional<ValueId> s, std::optional<ValueId> p,
    std::optional<ValueId> canon_o,
    const std::function<bool(const Row&)>& fn) const {
  auto emit_if_match = [&](const Row& row) {
    if (metrics_ != nullptr) metrics_->link_rows_scanned->Inc();
    if (s.has_value() && row[kStartNodeId].as_int64() != *s) return true;
    if (p.has_value() && row[kPValueId].as_int64() != *p) return true;
    if (canon_o.has_value() &&
        row[kCanonEndNodeId].as_int64() != *canon_o) {
      return true;
    }
    return fn(row);
  };

  // Choose the most selective available index. All three bound is a
  // point lookup on the canonical SPO index — no residual filter work.
  const storage::Index* index = nullptr;
  ValueKey key;
  if (s.has_value() && p.has_value() && canon_o.has_value()) {
    index = links_->GetIndex(kSpoCanonIndex);
    key = {Value::Int64(model_id), Value::Int64(*s), Value::Int64(*p),
           Value::Int64(*canon_o)};
  } else if (s.has_value()) {
    index = links_->GetIndex(kSubjectIndex);
    key = {Value::Int64(model_id), Value::Int64(*s)};
  } else if (canon_o.has_value()) {
    index = links_->GetIndex(kObjectIndex);
    key = {Value::Int64(model_id), Value::Int64(*canon_o)};
  } else if (p.has_value()) {
    index = links_->GetIndex(kPredicateIndex);
    key = {Value::Int64(model_id), Value::Int64(*p)};
  }

  if (index != nullptr) {
    index->FindEach(key, [&](storage::RowId rid) {
      return emit_if_match(*links_->Get(rid));
    });
    return;
  }

  // Fully unbound: partition scan over the model.
  links_->ScanPartition(Value::Int64(model_id),
                        [&](storage::RowId, const Row& row) {
                          if (row[kModelId].as_int64() != model_id) {
                            return true;
                          }
                          return emit_if_match(row);
                        });
}

void LinkStore::MatchEach(
    int64_t model_id, std::optional<ValueId> s, std::optional<ValueId> p,
    std::optional<ValueId> canon_o,
    const std::function<bool(const LinkRow&)>& fn) const {
  MatchRows(model_id, s, p, canon_o,
            [&](const Row& row) { return fn(RowToLink(row)); });
}

void LinkStore::MatchEachIds(
    int64_t model_id, std::optional<ValueId> s, std::optional<ValueId> p,
    std::optional<ValueId> canon_o,
    const std::function<bool(ValueId, ValueId, ValueId, ValueId)>& fn)
    const {
  auto mit = id_cache_.find(model_id);
  if (mit == id_cache_.end()) return;
  MatchCache(*mit->second, s, p, canon_o, fn,
             metrics_ != nullptr ? metrics_->link_rows_scanned : nullptr);
}

void LinkStore::MatchCache(
    const ModelIdCache& cache, std::optional<ValueId> s,
    std::optional<ValueId> p, std::optional<ValueId> canon_o,
    const std::function<bool(ValueId, ValueId, ValueId, ValueId)>& fn,
    obs::Counter* scans) {
  auto visit = [&](const IdQuad& q) {
    if (scans != nullptr) scans->Inc();
    if (s.has_value() && q.s != *s) return true;
    if (p.has_value() && q.p != *p) return true;
    if (canon_o.has_value() && q.canon_o != *canon_o) return true;
    return fn(q.s, q.p, q.o, q.canon_o);
  };

  // Most selective postings first. An (s, p) probe — the inner loop of
  // chain joins — is answered from one SpMap slot (residual only on
  // canon_o, when all three are bound).
  const std::vector<uint32_t>* postings = nullptr;
  if (s.has_value() && p.has_value()) {
    SpMap::Hit hit = cache.by_sp.Probe(*s, *p);
    if (hit.n == 0) return;
    if (hit.n == 1) {
      if (scans != nullptr) scans->Inc();
      if (canon_o.has_value() && hit.canon_o != *canon_o) return;
      fn(*s, *p, hit.o, hit.canon_o);
      return;
    }
    for (uint32_t i = 0; i < hit.n; ++i) {
      if (!visit(cache.quads[hit.list[i]])) return;
    }
    return;
  }
  if (s.has_value()) {
    auto it = cache.by_s.find(*s);
    if (it == cache.by_s.end()) return;
    postings = &it->second;
  } else if (canon_o.has_value()) {
    auto it = cache.by_canon.find(*canon_o);
    if (it == cache.by_canon.end()) return;
    postings = &it->second;
  } else if (p.has_value()) {
    auto it = cache.by_p.find(*p);
    if (it == cache.by_p.end()) return;
    postings = &it->second;
  }

  if (postings != nullptr) {
    for (uint32_t idx : *postings) {
      if (!visit(cache.quads[idx])) return;
    }
    return;
  }
  for (const IdQuad& q : cache.quads) {
    if (!visit(q)) return;
  }
}

Status LinkStore::Delete(int64_t model_id, ValueId s, ValueId p, ValueId o,
                         bool force) {
  const storage::Index* spo = links_->GetIndex(kSpoIndex);
  std::vector<storage::RowId> ids = spo->Find(
      ValueKey{Value::Int64(model_id), Value::Int64(s), Value::Int64(p),
               Value::Int64(o)});
  if (ids.empty()) {
    return Status::NotFound("triple not found in model " +
                            std::to_string(model_id));
  }
  storage::RowId rid = ids.front();
  LinkRow link = RowToLink(*links_->Get(rid));
  if (metrics_ != nullptr) metrics_->link_deletes->Inc();
  if (!force && link.cost > 1) {
    link.cost -= 1;
    return links_->Update(rid, LinkToRow(link));
  }
  RDFDB_RETURN_NOT_OK(links_->Delete(rid));
  CacheErase(model_id, link.link_id,
             link.context == TripleContext::kImplied);
  RemoveFromNetwork(link);
  return Status::OK();
}

Status LinkStore::DeleteModel(int64_t model_id) {
  id_cache_.erase(model_id);
  std::vector<LinkRow> doomed;
  ScanModel(model_id, [&](const LinkRow& link) {
    doomed.push_back(link);
    return true;
  });
  for (const LinkRow& link : doomed) {
    const storage::Index* index = links_->GetIndex(kLinkIdIndex);
    std::vector<storage::RowId> ids =
        index->Find(ValueKey{Value::Int64(link.link_id)});
    if (!ids.empty()) {
      RDFDB_RETURN_NOT_OK(links_->Delete(ids.front()));
      RemoveFromNetwork(link);
    }
  }
  return Status::OK();
}

void LinkStore::RemoveFromNetwork(const LinkRow& link) {
  // "When a triple is deleted from the database, the corresponding link
  // is removed. However, the nodes attached to this link are not removed
  // if there are other links connected to them."
  (void)net_->RemoveLink(link.link_id);
  DropNodeIfOrphaned(link.start_node_id);
  DropNodeIfOrphaned(link.end_node_id);
}

size_t LinkStore::TripleCount(int64_t model_id) const {
  return links_->PartitionRowCount(Value::Int64(model_id));
}

void LinkStore::ScanModel(
    int64_t model_id, const std::function<bool(const LinkRow&)>& fn) const {
  links_->ScanPartition(Value::Int64(model_id),
                        [&](storage::RowId, const Row& row) {
                          if (row[kModelId].as_int64() != model_id) {
                            return true;
                          }
                          if (metrics_ != nullptr) {
                            metrics_->link_rows_scanned->Inc();
                          }
                          return fn(RowToLink(row));
                        });
}

}  // namespace rdfdb::rdf
