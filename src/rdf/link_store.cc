#include "rdf/link_store.h"

#include <algorithm>
#include <unordered_map>

#include "common/hash.h"
#include "common/string_util.h"
#include "obs/store_metrics.h"
#include "rdf/term.h"
#include "rdf/vocab.h"

namespace rdfdb::rdf {

namespace {

using storage::ColumnDef;
using storage::IndexKind;
using storage::KeyExtractor;
using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueKey;
using storage::ValueType;

// rdf_link$ column positions.
constexpr size_t kLinkId = 0;
constexpr size_t kStartNodeId = 1;
constexpr size_t kPValueId = 2;
constexpr size_t kEndNodeId = 3;
constexpr size_t kCanonEndNodeId = 4;
constexpr size_t kLinkType = 5;
constexpr size_t kCost = 6;
constexpr size_t kContext = 7;
constexpr size_t kReifLink = 8;
constexpr size_t kModelId = 9;

// rdf_node$ column positions.
constexpr size_t kNodeId = 0;
constexpr size_t kNodeActive = 1;

Schema LinkSchema() {
  return Schema({
      ColumnDef{"LINK_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"START_NODE_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"P_VALUE_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"END_NODE_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"CANON_END_NODE_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"LINK_TYPE", ValueType::kString, /*nullable=*/false},
      ColumnDef{"COST", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"CONTEXT", ValueType::kString, /*nullable=*/false},
      ColumnDef{"REIF_LINK", ValueType::kString, /*nullable=*/false},
      ColumnDef{"MODEL_ID", ValueType::kInt64, /*nullable=*/false},
  });
}

Schema NodeSchema() {
  return Schema({
      ColumnDef{"NODE_ID", ValueType::kInt64, /*nullable=*/false},
      ColumnDef{"ACTIVE", ValueType::kString, /*nullable=*/false},
  });
}

}  // namespace

std::string ClassifyPredicate(const std::string& predicate_uri) {
  if (predicate_uri == kRdfType) return "RDF_TYPE";
  if (predicate_uri == kRdfLi ||
      IsContainerMembershipProperty(predicate_uri)) {
    return "RDF_MEMBER";
  }
  if (StartsWith(predicate_uri, kRdfNs)) return "RDF_*";
  return "STANDARD";
}

LinkStore::LinkStore(storage::Database* db, ndm::LogicalNetwork* net)
    : db_(db), net_(net) {
  links_ = db_->GetTable("MDSYS", "RDF_LINK$");
  if (links_ == nullptr) {
    links_ = *db_->CreateTable("MDSYS", "RDF_LINK$", LinkSchema());
    (void)links_->SetPartitionColumn(kModelId);
  }
  nodes_ = db_->GetTable("MDSYS", "RDF_NODE$");
  if (nodes_ == nullptr) {
    nodes_ = *db_->CreateTable("MDSYS", "RDF_NODE$", NodeSchema());
  }
  link_seq_ = db_->GetSequence("MDSYS", "RDF_LINK_SEQ");
  if (link_seq_ == nullptr) {
    link_seq_ = *db_->CreateSequence("MDSYS", "RDF_LINK_SEQ", 2000);
  }

  // No generic hash indexes on rdf_link$: every access path (SPO
  // identity probes, per-position pattern scans, LINK_ID fetches) is
  // served by the id-native quad cache, whose compressed posting
  // lists cost a fraction of ValueKey-keyed index entries. The cache
  // carries the table RowId per quad, so row-level reads stay point
  // lookups.

  if (nodes_->GetIndex("rdf_node_id_idx") == nullptr) {
    (void)nodes_->CreateIndex("rdf_node_id_idx", IndexKind::kHash,
                              KeyExtractor::Columns({kNodeId}),
                              /*unique=*/true);
  }

  // Reattach: rebuild the id-native quad cache from existing rows.
  RebuildCache();
}

void LinkStore::RebuildCache() {
  id_cache_.clear();
  links_->Scan([&](storage::RowId row_id, const Row& row) {
    CacheInsert(row[kModelId].as_int64(),
                IdQuad{row[kStartNodeId].as_int64(),
                       row[kPValueId].as_int64(),
                       row[kEndNodeId].as_int64(),
                       row[kCanonEndNodeId].as_int64(),
                       row[kLinkId].as_int64()},
                row_id,
                /*implied=*/row[kContext].as_string()[0] ==
                    static_cast<char>(TripleContext::kImplied));
    return true;
  });
}

LinkStore::SpMap::Slot& LinkStore::SpMap::SlotFor(ValueId s, ValueId p) {
  size_t first_gone = SIZE_MAX;
  for (size_t i = IndexFor(s, p);; i = (i + 1) & mask_) {
    Slot& slot = slots_[i];
    if (slot.s == kEmpty) {
      return first_gone != SIZE_MAX ? slots_[first_gone] : slot;
    }
    if (slot.s == kGone) {
      if (first_gone == SIZE_MAX) first_gone = i;
      continue;
    }
    if (slot.s == s && slot.p == p) return slot;
  }
}

void LinkStore::SpMap::Grow() {
  std::vector<Slot> old = std::move(slots_);
  size_t live = 0;
  for (const Slot& slot : old) {
    if (slot.s >= 0) ++live;
  }
  size_t capacity = 64;
  while (capacity < 2 * (live + 8)) capacity <<= 1;
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;
  used_ = live;
  for (const Slot& slot : old) {
    if (slot.s < 0) continue;
    size_t i = IndexFor(slot.s, slot.p);
    while (slots_[i].s != kEmpty) i = (i + 1) & mask_;
    slots_[i] = slot;
  }
}

void LinkStore::SpMap::Insert(ValueId s, ValueId p, uint32_t idx, ValueId o,
                              ValueId canon_o) {
  if (slots_.empty() || (used_ + 1) * 10 >= slots_.size() * 7) Grow();
  Slot& slot = SlotFor(s, p);
  if (slot.s < 0) {
    if (slot.s == kEmpty) ++used_;  // tombstone reuse keeps used_ flat
    slot.s = s;
    slot.p = p;
    slot.head = idx;
    slot.overflow = -1;
    slot.o = o;
    slot.canon_o = canon_o;
    return;
  }
  if (slot.overflow < 0) {
    int32_t ref;
    if (!free_overflow_.empty()) {
      ref = free_overflow_.back();
      free_overflow_.pop_back();
      overflow_[ref] = {slot.head, idx};
    } else {
      ref = static_cast<int32_t>(overflow_.size());
      overflow_.push_back({slot.head, idx});
    }
    slot.overflow = ref;
  } else {
    overflow_[slot.overflow].push_back(idx);
  }
}

void LinkStore::SpMap::Erase(ValueId s, ValueId p, uint32_t idx,
                             const std::vector<IdQuad>& quads) {
  for (size_t i = IndexFor(s, p);; i = (i + 1) & mask_) {
    Slot& slot = slots_[i];
    if (slot.s == kEmpty) return;
    if (slot.s != s || slot.p != p) continue;
    if (slot.overflow < 0) {
      slot.s = kGone;
      return;
    }
    std::vector<uint32_t>& rows = overflow_[slot.overflow];
    rows.erase(std::find(rows.begin(), rows.end(), idx));
    if (rows.size() == 1) {
      const IdQuad& q = quads[rows.front()];
      slot.head = rows.front();
      slot.o = q.o;
      slot.canon_o = q.canon_o;
      free_overflow_.push_back(slot.overflow);
      rows.clear();
      slot.overflow = -1;
    }
    return;
  }
}

void LinkStore::ModelIdCache::PostingAppend(PostingMap* postings, ValueId key,
                                            uint32_t idx) {
  codec::PostingList& list = (*postings)[key];
  posting_heap_bytes -= list.ApproxBytes();
  list.Append(idx);
  posting_heap_bytes += list.ApproxBytes();
}

void LinkStore::ModelIdCache::Append(const IdQuad& quad, uint32_t row_id,
                                     bool implied) {
  const uint32_t idx = static_cast<uint32_t>(quads.size());
  quads.push_back(quad);
  row_ids.push_back(row_id);
  PostingAppend(&by_s, quad.s, idx);
  by_sp.Insert(quad.s, quad.p, idx, quad.o, quad.canon_o);
  PostingAppend(&by_canon, quad.canon_o, idx);
  PostingAppend(&by_p, quad.p, idx);
  // Link ids come off an ascending sequence, so creation order is id
  // order and by_link stays sorted with a plain append. A snapshot
  // restore replays rows in id order too; tolerate stragglers anyway.
  if (by_link.empty() || by_link.back().first < quad.link_id) {
    by_link.emplace_back(quad.link_id, idx);
  } else {
    auto it = std::upper_bound(
        by_link.begin(), by_link.end(), quad.link_id,
        [](LinkId id, const auto& e) { return id < e.first; });
    by_link.insert(it, {quad.link_id, idx});
  }
  if (implied) implied_count += 1;
}

int64_t LinkStore::ModelIdCache::IndexOfLink(LinkId link_id) const {
  auto it = std::lower_bound(
      by_link.begin(), by_link.end(), link_id,
      [](const auto& e, LinkId id) { return e.first < id; });
  if (it == by_link.end() || it->first != link_id || it->second == kDeadIdx) {
    return -1;
  }
  return static_cast<int64_t>(it->second);
}

void LinkStore::ModelIdCache::Tombstone(uint32_t idx, bool implied) {
  const IdQuad& q = quads[idx];
  // SpMap entries are exact (Erase edits the overflow list in place),
  // so remove before the quad's fields are wiped — the collapse path
  // reads the surviving sibling's quad.
  by_sp.Erase(q.s, q.p, idx, quads);
  auto it = std::lower_bound(
      by_link.begin(), by_link.end(), q.link_id,
      [](const auto& e, LinkId id) { return e.first < id; });
  if (it != by_link.end() && it->first == q.link_id) it->second = kDeadIdx;
  // Stale posting entries stay behind; a dead quad's -1 ids fail every
  // residual compare, and unfiltered scans check Dead() explicitly.
  quads[idx] = IdQuad{-1, -1, -1, -1, -1};
  dead_count += 1;
  if (implied && implied_count > 0) implied_count -= 1;
}

void LinkStore::ModelIdCache::Compact() {
  std::vector<IdQuad> old_quads = std::move(quads);
  std::vector<uint32_t> old_rows = std::move(row_ids);
  quads.clear();
  row_ids.clear();
  quads.reserve(old_quads.size() - dead_count);
  row_ids.reserve(old_quads.size() - dead_count);
  by_s.clear();
  by_canon.clear();
  by_p.clear();
  by_link.clear();
  by_sp = SpMap();
  posting_heap_bytes = 0;
  dead_count = 0;
  const size_t implied = implied_count;
  implied_count = 0;
  for (size_t i = 0; i < old_quads.size(); ++i) {
    if (Dead(old_quads[i])) continue;
    Append(old_quads[i], old_rows[i], /*implied=*/false);
  }
  implied_count = implied;  // tombstones already adjusted it
}

void LinkStore::ModelIdCache::RecomputePostingBytes() {
  posting_heap_bytes = 0;
  for (const auto* postings : {&by_s, &by_canon, &by_p}) {
    for (const auto& [key, list] : *postings) {
      (void)key;
      posting_heap_bytes += list.ApproxBytes();
    }
  }
}

LinkStore::LeafScan LinkStore::Leaf(int64_t model_id) const {
  LeafScan leaf;
  auto it = id_cache_.find(model_id);
  if (it == id_cache_.end()) return leaf;
  leaf.cache_ = it->second.get();
  leaf.scans_ = metrics_ != nullptr ? metrics_->link_rows_scanned : nullptr;
  return leaf;
}

LinkStore::ModelIdCache& LinkStore::MutableCache(int64_t model_id) {
  std::shared_ptr<ModelIdCache>& slot = id_cache_[model_id];
  if (slot == nullptr) {
    slot = std::make_shared<ModelIdCache>();
  } else if (slot.use_count() > 1) {
    // A published snapshot still reads the current object: mutate a
    // clone instead (only the serialized writer runs here, so the
    // use_count answer is stable). The clone's copied vectors are
    // capacity-tight, so the byte ledger must be re-derived.
    slot = std::make_shared<ModelIdCache>(*slot);
    slot->RecomputePostingBytes();
  }
  return *slot;
}

void LinkStore::CacheInsert(int64_t model_id, const IdQuad& quad,
                            storage::RowId row_id, bool implied) {
  MutableCache(model_id).Append(quad, static_cast<uint32_t>(row_id), implied);
}

void LinkStore::CacheContextUpgrade(int64_t model_id) {
  ModelIdCache& cache = MutableCache(model_id);
  if (cache.implied_count > 0) cache.implied_count -= 1;
}

void LinkStore::CacheErase(int64_t model_id, LinkId link_id, bool implied) {
  auto mit = id_cache_.find(model_id);
  if (mit == id_cache_.end()) return;
  if (mit->second.use_count() > 1) {
    mit->second = std::make_shared<ModelIdCache>(*mit->second);
    mit->second->RecomputePostingBytes();
  }
  ModelIdCache& cache = *mit->second;
  int64_t idx = cache.IndexOfLink(link_id);
  if (idx < 0) return;
  cache.Tombstone(static_cast<uint32_t>(idx), implied);
  if (cache.live_count() == 0) {
    id_cache_.erase(mit);
  } else if (cache.ShouldCompact()) {
    cache.Compact();
  }
}

LinkRow LinkStore::RowToLink(const Row& row) const {
  LinkRow link;
  link.link_id = row[kLinkId].as_int64();
  link.start_node_id = row[kStartNodeId].as_int64();
  link.p_value_id = row[kPValueId].as_int64();
  link.end_node_id = row[kEndNodeId].as_int64();
  link.canon_end_node_id = row[kCanonEndNodeId].as_int64();
  link.link_type = row[kLinkType].as_string();
  link.cost = row[kCost].as_int64();
  link.context = static_cast<TripleContext>(row[kContext].as_string()[0]);
  link.reif_link = row[kReifLink].as_string() == "Y";
  link.model_id = row[kModelId].as_int64();
  return link;
}

storage::Row LinkStore::LinkToRow(const LinkRow& link) const {
  Row row(10);
  row[kLinkId] = Value::Int64(link.link_id);
  row[kStartNodeId] = Value::Int64(link.start_node_id);
  row[kPValueId] = Value::Int64(link.p_value_id);
  row[kEndNodeId] = Value::Int64(link.end_node_id);
  row[kCanonEndNodeId] = Value::Int64(link.canon_end_node_id);
  row[kLinkType] = Value::String(link.link_type);
  row[kCost] = Value::Int64(link.cost);
  row[kContext] =
      Value::String(std::string(1, static_cast<char>(link.context)));
  row[kReifLink] = Value::String(link.reif_link ? "Y" : "N");
  row[kModelId] = Value::Int64(link.model_id);
  return row;
}

void LinkStore::EnsureNode(ValueId node) {
  if (net_->HasNode(node)) return;
  net_->AddNode(node);
  Row row(2);
  row[kNodeId] = Value::Int64(node);
  row[kNodeActive] = Value::String("Y");
  (void)nodes_->Insert(std::move(row));
}

void LinkStore::DropNodeIfOrphaned(ValueId node) {
  if (!net_->RemoveNodeIfIsolated(node)) return;
  auto ids = nodes_->FindByIndex("rdf_node_id_idx",
                                 ValueKey{Value::Int64(node)});
  if (ids.ok() && !ids->empty()) {
    (void)nodes_->Delete(ids->front());
  }
}

Result<LinkInsertOutcome> LinkStore::Insert(int64_t model_id, ValueId s,
                                            ValueId p, ValueId o,
                                            ValueId canon_o,
                                            const std::string& link_type,
                                            TripleContext context,
                                            bool reif_link) {
  // Reuse path: "If the triple already exists in the specified graph, the
  // IDs for the previously inserted triple are returned".
  auto cached = id_cache_.find(model_id);
  int64_t existing_idx =
      cached == id_cache_.end() ? -1 : cached->second->FindSpoIdx(s, p, o);
  if (existing_idx >= 0) {
    storage::RowId rid =
        cached->second->row_ids[static_cast<uint32_t>(existing_idx)];
    LinkRow link = RowToLink(*links_->Get(rid));
    link.cost += 1;
    bool upgraded = false;
    if (context == TripleContext::kDirect &&
        link.context == TripleContext::kImplied) {
      // "If the triple is subsequently entered into the database as a
      // fact, the CONTEXT for this triple is changed from I to D."
      link.context = TripleContext::kDirect;
      upgraded = true;
    }
    link.reif_link = link.reif_link || reif_link;
    RDFDB_RETURN_NOT_OK(links_->Update(rid, LinkToRow(link)));
    if (upgraded) CacheContextUpgrade(model_id);
    if (metrics_ != nullptr) metrics_->link_duplicates->Inc();
    return LinkInsertOutcome{link, /*inserted=*/false};
  }

  LinkRow link;
  link.link_id = link_seq_->Next();
  link.start_node_id = s;
  link.p_value_id = p;
  link.end_node_id = o;
  link.canon_end_node_id = canon_o;
  link.link_type = link_type;
  link.cost = 1;
  link.context = context;
  link.reif_link = reif_link;
  link.model_id = model_id;

  auto insert = links_->Insert(LinkToRow(link));
  if (!insert.ok()) return insert.status();
  CacheInsert(model_id, IdQuad{s, p, o, canon_o, link.link_id}, *insert,
              context == TripleContext::kImplied);

  // Keep the NDM network in sync: "a new link is always created whenever
  // a new triple is inserted"; nodes are reused.
  EnsureNode(s);
  EnsureNode(o);
  RDFDB_RETURN_NOT_OK(net_->AddLink(ndm::Link{
      link.link_id, s, o, /*cost=*/1.0, /*label=*/p}));
  if (metrics_ != nullptr) metrics_->link_inserts->Inc();
  return LinkInsertOutcome{link, /*inserted=*/true};
}

namespace {

struct SpoKey {
  ValueId s, p, o;
  bool operator==(const SpoKey& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
};

struct SpoKeyHash {
  size_t operator()(const SpoKey& k) const {
    uint64_t h = HashCombine(static_cast<uint64_t>(k.s),
                             static_cast<uint64_t>(k.p));
    return static_cast<size_t>(HashCombine(h, static_cast<uint64_t>(k.o)));
  }
};

}  // namespace

Result<std::vector<LinkInsertOutcome>> LinkStore::InsertBatch(
    int64_t model_id, const std::vector<LinkBatchEntry>& entries) {
  // Phase 1: group the batch by (s, p, o) — one SPO probe per distinct
  // triple — and fold duplicate occurrences into per-group aggregates
  // (COST += occurrences, Implied→Direct upgrade, REIF_LINK OR), exactly
  // the state N sequential Insert() calls would leave behind.
  struct Group {
    LinkRow row;
    std::optional<storage::RowId> existing_rid;
    size_t first_entry = 0;
    int64_t occurrences = 0;
    bool is_new = false;
    bool was_implied = false;  ///< existing row's CONTEXT before the fold
  };
  std::unordered_map<SpoKey, size_t, SpoKeyHash> group_of;
  group_of.reserve(entries.size());
  std::vector<Group> groups;
  groups.reserve(entries.size());
  std::vector<size_t> entry_group(entries.size());
  size_t new_groups = 0;

  // No cache mutation happens before phase 2, so one lookup serves the
  // whole probing pass.
  auto cached = id_cache_.find(model_id);
  const ModelIdCache* cache =
      cached == id_cache_.end() ? nullptr : cached->second.get();
  for (size_t i = 0; i < entries.size(); ++i) {
    const LinkBatchEntry& e = entries[i];
    auto [it, first_sighting] =
        group_of.try_emplace(SpoKey{e.s, e.p, e.o}, groups.size());
    if (first_sighting) {
      Group g;
      g.first_entry = i;
      int64_t idx = cache == nullptr ? -1 : cache->FindSpoIdx(e.s, e.p, e.o);
      if (idx >= 0) {
        storage::RowId rid = cache->row_ids[static_cast<uint32_t>(idx)];
        g.existing_rid = rid;
        g.row = RowToLink(*links_->Get(rid));
        g.was_implied = g.row.context == TripleContext::kImplied;
      } else {
        g.is_new = true;
        ++new_groups;
        g.row.start_node_id = e.s;
        g.row.p_value_id = e.p;
        g.row.end_node_id = e.o;
        g.row.canon_end_node_id = e.canon_o;
        g.row.link_type = e.link_type;
        g.row.cost = 0;  // set from occurrences below
        g.row.context = e.context;
        g.row.reif_link = e.reif_link;
        g.row.model_id = model_id;
      }
      groups.push_back(std::move(g));
    }
    Group& g = groups[it->second];
    ++g.occurrences;
    if (e.context == TripleContext::kDirect &&
        g.row.context == TripleContext::kImplied) {
      g.row.context = TripleContext::kDirect;
    }
    g.row.reif_link = g.row.reif_link || e.reif_link;
    entry_group[i] = it->second;
  }

  // Phase 2: reserve the LINK_ID range and assign in first-occurrence
  // order (identical ids to per-statement Next() calls), apply the folded
  // updates, and append all new rows through the staged batch path.
  LinkId next_id = link_seq_->NextRange(static_cast<int64_t>(new_groups));
  std::vector<Row> new_rows;
  new_rows.reserve(new_groups);
  for (Group& g : groups) {
    if (g.is_new) {
      g.row.link_id = next_id++;
      g.row.cost = g.occurrences;
      new_rows.push_back(LinkToRow(g.row));
    } else {
      g.row.cost += g.occurrences;
      RDFDB_RETURN_NOT_OK(links_->Update(*g.existing_rid, LinkToRow(g.row)));
      if (g.was_implied && g.row.context == TripleContext::kDirect) {
        CacheContextUpgrade(model_id);
      }
    }
  }
  auto staged = links_->InsertBatch(std::move(new_rows));
  if (!staged.ok()) return staged.status();
  size_t staged_at = 0;
  for (const Group& g : groups) {
    if (!g.is_new) continue;
    // First-occurrence order: identical cache state to per-statement
    // Insert() calls. Staged row ids come back in input order.
    CacheInsert(model_id,
                IdQuad{g.row.start_node_id, g.row.p_value_id,
                       g.row.end_node_id, g.row.canon_end_node_id,
                       g.row.link_id},
                (*staged)[staged_at++],
                g.row.context == TripleContext::kImplied);
  }

  // Phase 3: bulk-register the NDM side. Node creation order matches the
  // sequential path (subject then object, per new link, in link order) so
  // rdf_node$ contents are bit-identical.
  net_->ReserveAdditional(2 * new_groups, new_groups);
  std::vector<ndm::Link> ndm_links;
  ndm_links.reserve(new_groups);
  for (const Group& g : groups) {
    if (!g.is_new) continue;
    EnsureNode(g.row.start_node_id);
    EnsureNode(g.row.end_node_id);
    ndm_links.push_back(ndm::Link{g.row.link_id, g.row.start_node_id,
                                  g.row.end_node_id, /*cost=*/1.0,
                                  /*label=*/g.row.p_value_id});
  }
  RDFDB_RETURN_NOT_OK(net_->AddLinksBulk(ndm_links));

  if (metrics_ != nullptr) {
    // Mirror the sequential path: each entry either created a row or
    // folded into an existing one.
    metrics_->link_inserts->Inc(new_groups);
    metrics_->link_duplicates->Inc(entries.size() - new_groups);
  }

  std::vector<LinkInsertOutcome> outcomes;
  outcomes.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    const Group& g = groups[entry_group[i]];
    outcomes.push_back(
        LinkInsertOutcome{g.row, g.is_new && g.first_entry == i});
  }
  return outcomes;
}

std::optional<LinkRow> LinkStore::Find(int64_t model_id, ValueId s, ValueId p,
                                       ValueId o) const {
  auto mit = id_cache_.find(model_id);
  if (mit == id_cache_.end()) return std::nullopt;
  int64_t idx = mit->second->FindSpoIdx(s, p, o);
  if (idx < 0) return std::nullopt;
  return RowToLink(
      *links_->Get(mit->second->row_ids[static_cast<uint32_t>(idx)]));
}

Result<LinkRow> LinkStore::Get(LinkId link_id) const {
  // LINK_ID alone does not name a model; probe each model's sorted
  // by_link vector (models are few, probes are O(log n)).
  for (const auto& [model_id, cache] : id_cache_) {
    (void)model_id;
    int64_t idx = cache->IndexOfLink(link_id);
    if (idx >= 0) {
      return RowToLink(
          *links_->Get(cache->row_ids[static_cast<uint32_t>(idx)]));
    }
  }
  return Status::NotFound("LINK_ID " + std::to_string(link_id));
}

std::vector<LinkRow> LinkStore::Match(int64_t model_id,
                                      std::optional<ValueId> s,
                                      std::optional<ValueId> p,
                                      std::optional<ValueId> canon_o) const {
  std::vector<LinkRow> out;
  MatchEach(model_id, s, p, canon_o, [&](const LinkRow& row) {
    out.push_back(row);
    return true;
  });
  return out;
}

void LinkStore::MatchRows(
    int64_t model_id, std::optional<ValueId> s, std::optional<ValueId> p,
    std::optional<ValueId> canon_o,
    const std::function<bool(const Row&)>& fn) const {
  if (!s.has_value() && !p.has_value() && !canon_o.has_value()) {
    // Fully unbound: partition scan over the model, no cache needed.
    links_->ScanPartition(Value::Int64(model_id),
                          [&](storage::RowId, const Row& row) {
                            if (row[kModelId].as_int64() != model_id) {
                              return true;
                            }
                            if (metrics_ != nullptr) {
                              metrics_->link_rows_scanned->Inc();
                            }
                            return fn(row);
                          });
    return;
  }
  auto mit = id_cache_.find(model_id);
  if (mit == id_cache_.end()) return;
  const ModelIdCache& cache = *mit->second;
  MatchCacheIndexes(
      cache, s, p, canon_o,
      [&](uint32_t idx) { return fn(*links_->Get(cache.row_ids[idx])); },
      metrics_ != nullptr ? metrics_->link_rows_scanned : nullptr);
}

void LinkStore::MatchEach(
    int64_t model_id, std::optional<ValueId> s, std::optional<ValueId> p,
    std::optional<ValueId> canon_o,
    const std::function<bool(const LinkRow&)>& fn) const {
  MatchRows(model_id, s, p, canon_o,
            [&](const Row& row) { return fn(RowToLink(row)); });
}

void LinkStore::MatchEachIds(
    int64_t model_id, std::optional<ValueId> s, std::optional<ValueId> p,
    std::optional<ValueId> canon_o,
    const std::function<bool(ValueId, ValueId, ValueId, ValueId)>& fn)
    const {
  auto mit = id_cache_.find(model_id);
  if (mit == id_cache_.end()) return;
  MatchCache(*mit->second, s, p, canon_o, fn,
             metrics_ != nullptr ? metrics_->link_rows_scanned : nullptr);
}

void LinkStore::MatchCache(
    const ModelIdCache& cache, std::optional<ValueId> s,
    std::optional<ValueId> p, std::optional<ValueId> canon_o,
    const std::function<bool(ValueId, ValueId, ValueId, ValueId)>& fn,
    obs::Counter* scans) {
  // Preserve the single-row (s, p) fast path: the answer is inline in
  // the hash slot, no quad array touch.
  if (s.has_value() && p.has_value()) {
    SpMap::Hit hit = cache.by_sp.Probe(*s, *p);
    if (hit.n == 0) return;
    if (hit.n == 1) {
      if (scans != nullptr) scans->Inc();
      if (canon_o.has_value() && hit.canon_o != *canon_o) return;
      fn(*s, *p, hit.o, hit.canon_o);
      return;
    }
  }
  MatchCacheIndexes(cache, s, p, canon_o,
                    [&](uint32_t idx) {
                      const IdQuad& q = cache.quads[idx];
                      return fn(q.s, q.p, q.o, q.canon_o);
                    },
                    scans);
}

void LinkStore::MatchCacheIndexes(
    const ModelIdCache& cache, std::optional<ValueId> s,
    std::optional<ValueId> p, std::optional<ValueId> canon_o,
    const std::function<bool(uint32_t)>& fn, obs::Counter* scans) {
  // Residual filters double as the tombstone guard: a dead quad's ids
  // are all -1 and never match a bound position, so only paths with an
  // unchecked position need the explicit Dead() test.
  auto visit = [&](uint32_t idx) {
    if (scans != nullptr) scans->Inc();
    const IdQuad& q = cache.quads[idx];
    if (ModelIdCache::Dead(q)) return true;
    if (s.has_value() && q.s != *s) return true;
    if (p.has_value() && q.p != *p) return true;
    if (canon_o.has_value() && q.canon_o != *canon_o) return true;
    return fn(idx);
  };

  // Most selective postings first. An (s, p) probe — the inner loop of
  // chain joins — is answered from the SpMap, whose lists are exact
  // (no tombstones).
  if (s.has_value() && p.has_value()) {
    SpMap::Hit hit = cache.by_sp.Probe(*s, *p);
    if (hit.n == 1) {
      if (scans != nullptr) scans->Inc();
      if (canon_o.has_value() && hit.canon_o != *canon_o) return;
      fn(hit.head);
      return;
    }
    for (uint32_t i = 0; i < hit.n; ++i) {
      if (!visit(hit.list[i])) return;
    }
    return;
  }

  const codec::PostingList* postings = nullptr;
  if (s.has_value()) {
    auto it = cache.by_s.find(*s);
    if (it == cache.by_s.end()) return;
    postings = &it->second;
  } else if (canon_o.has_value()) {
    auto it = cache.by_canon.find(*canon_o);
    if (it == cache.by_canon.end()) return;
    postings = &it->second;
  } else if (p.has_value()) {
    auto it = cache.by_p.find(*p);
    if (it == cache.by_p.end()) return;
    postings = &it->second;
  }

  if (postings != nullptr) {
    postings->ForEach(visit);
    return;
  }
  for (uint32_t idx = 0; idx < cache.quads.size(); ++idx) {
    if (!visit(idx)) return;
  }
}

Status LinkStore::Delete(int64_t model_id, ValueId s, ValueId p, ValueId o,
                         bool force) {
  auto mit = id_cache_.find(model_id);
  int64_t idx =
      mit == id_cache_.end() ? -1 : mit->second->FindSpoIdx(s, p, o);
  if (idx < 0) {
    return Status::NotFound("triple not found in model " +
                            std::to_string(model_id));
  }
  storage::RowId rid = mit->second->row_ids[static_cast<uint32_t>(idx)];
  LinkRow link = RowToLink(*links_->Get(rid));
  if (metrics_ != nullptr) metrics_->link_deletes->Inc();
  if (!force && link.cost > 1) {
    link.cost -= 1;
    return links_->Update(rid, LinkToRow(link));
  }
  RDFDB_RETURN_NOT_OK(links_->Delete(rid));
  CacheErase(model_id, link.link_id,
             link.context == TripleContext::kImplied);
  RemoveFromNetwork(link);
  return Status::OK();
}

Status LinkStore::DeleteModel(int64_t model_id) {
  id_cache_.erase(model_id);
  std::vector<std::pair<storage::RowId, LinkRow>> doomed;
  links_->ScanPartition(Value::Int64(model_id),
                        [&](storage::RowId rid, const Row& row) {
                          if (row[kModelId].as_int64() == model_id) {
                            doomed.emplace_back(rid, RowToLink(row));
                          }
                          return true;
                        });
  for (const auto& [rid, link] : doomed) {
    RDFDB_RETURN_NOT_OK(links_->Delete(rid));
    RemoveFromNetwork(link);
  }
  return Status::OK();
}

void LinkStore::RemoveFromNetwork(const LinkRow& link) {
  // "When a triple is deleted from the database, the corresponding link
  // is removed. However, the nodes attached to this link are not removed
  // if there are other links connected to them."
  (void)net_->RemoveLink(link.link_id);
  DropNodeIfOrphaned(link.start_node_id);
  DropNodeIfOrphaned(link.end_node_id);
}

size_t LinkStore::TripleCount(int64_t model_id) const {
  return links_->PartitionRowCount(Value::Int64(model_id));
}

void LinkStore::ScanModel(
    int64_t model_id, const std::function<bool(const LinkRow&)>& fn) const {
  links_->ScanPartition(Value::Int64(model_id),
                        [&](storage::RowId, const Row& row) {
                          if (row[kModelId].as_int64() != model_id) {
                            return true;
                          }
                          if (metrics_ != nullptr) {
                            metrics_->link_rows_scanned->Inc();
                          }
                          return fn(RowToLink(row));
                        });
}

}  // namespace rdfdb::rdf
