#include "rdf/container.h"

#include <algorithm>

#include "common/string_util.h"
#include "rdf/vocab.h"

namespace rdfdb::rdf {

namespace {

std::string MembershipProperty(int index) {
  return std::string(kRdfNs) + "_" + std::to_string(index);
}

/// Parse the index of an rdf:_n property URI; -1 if it is not one.
int MembershipIndex(const std::string& uri) {
  if (!IsContainerMembershipProperty(uri)) return -1;
  int64_t n;
  if (!ParseInt64(uri.substr(kRdfNs.size() + 1), &n)) return -1;
  return static_cast<int>(n);
}

}  // namespace

std::string ContainerClassUri(ContainerKind kind) {
  switch (kind) {
    case ContainerKind::kBag:
      return std::string(kRdfBag);
    case ContainerKind::kSeq:
      return std::string(kRdfSeq);
    case ContainerKind::kAlt:
      return std::string(kRdfAlt);
  }
  return {};
}

Result<Term> CreateContainer(RdfStore* store, const std::string& model_name,
                             ContainerKind kind,
                             const std::string& blank_label,
                             const std::vector<Term>& members) {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, store->GetModelId(model_name));
  Term container = Term::BlankNode(blank_label);
  RDFDB_ASSIGN_OR_RETURN(
      SdoRdfTripleS typed,
      store->InsertParsedTriple(model_id, container,
                                Term::Uri(std::string(kRdfType)),
                                Term::Uri(ContainerClassUri(kind))));
  (void)typed;
  for (size_t i = 0; i < members.size(); ++i) {
    RDFDB_ASSIGN_OR_RETURN(
        SdoRdfTripleS member,
        store->InsertParsedTriple(
            model_id, container,
            Term::Uri(MembershipProperty(static_cast<int>(i) + 1)),
            members[i]));
    (void)member;
  }
  return container;
}

Result<std::optional<ContainerKind>> GetContainerKind(
    const RdfStore& store, const std::string& model_name,
    const Term& container) {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, store.GetModelId(model_name));
  std::optional<ValueId> c_id = store.LookupTerm(model_id, container);
  std::optional<ValueId> type_id =
      store.values().Lookup(Term::Uri(std::string(kRdfType)));
  if (!c_id || !type_id) return std::optional<ContainerKind>{};
  for (const ContainerKind kind :
       {ContainerKind::kBag, ContainerKind::kSeq, ContainerKind::kAlt}) {
    std::optional<ValueId> class_id =
        store.values().Lookup(Term::Uri(ContainerClassUri(kind)));
    if (!class_id) continue;
    if (store.links().Find(model_id, *c_id, *type_id, *class_id)
            .has_value()) {
      return std::optional<ContainerKind>{kind};
    }
  }
  return std::optional<ContainerKind>{};
}

Result<std::vector<Term>> ContainerMembers(const RdfStore& store,
                                           const std::string& model_name,
                                           const Term& container) {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, store.GetModelId(model_name));
  std::optional<ValueId> c_id = store.LookupTerm(model_id, container);
  if (!c_id) return Status::NotFound("container not in model");

  std::vector<std::pair<int, ValueId>> indexed;
  for (const LinkRow& row :
       store.links().Match(model_id, *c_id, std::nullopt, std::nullopt)) {
    auto pred = store.TermForValueId(row.p_value_id);
    if (!pred.ok()) continue;
    int index = MembershipIndex(pred->lexical());
    if (index > 0) indexed.emplace_back(index, row.end_node_id);
  }
  std::sort(indexed.begin(), indexed.end());
  std::vector<Term> members;
  members.reserve(indexed.size());
  for (const auto& [index, value_id] : indexed) {
    RDFDB_ASSIGN_OR_RETURN(Term term, store.TermForValueId(value_id));
    members.push_back(std::move(term));
  }
  return members;
}

Result<int> AppendContainerMember(RdfStore* store,
                                  const std::string& model_name,
                                  const Term& container, const Term& member) {
  RDFDB_ASSIGN_OR_RETURN(ModelId model_id, store->GetModelId(model_name));
  std::optional<ValueId> c_id = store->LookupTerm(model_id, container);
  if (!c_id) return Status::NotFound("container not in model");

  int max_index = 0;
  for (const LinkRow& row :
       store->links().Match(model_id, *c_id, std::nullopt, std::nullopt)) {
    auto pred = store->TermForValueId(row.p_value_id);
    if (!pred.ok()) continue;
    max_index = std::max(max_index, MembershipIndex(pred->lexical()));
  }
  int next = max_index + 1;
  RDFDB_ASSIGN_OR_RETURN(
      SdoRdfTripleS inserted,
      store->InsertParsedTriple(model_id, container,
                                Term::Uri(MembershipProperty(next)),
                                member));
  (void)inserted;
  return next;
}

}  // namespace rdfdb::rdf
