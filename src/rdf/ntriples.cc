#include "rdf/ntriples.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace rdfdb::rdf {

namespace {

/// Cursor over one line (borrowed view — the chunked parse path feeds
/// slices of the whole document buffer through here with no copies).
struct Cursor {
  std::string_view text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t')) {
      ++pos;
    }
  }
  bool Done() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }
};

Result<Term> ParseUriRef(Cursor* c) {
  // <...>
  size_t end = c->text.find('>', c->pos + 1);
  if (end == std::string_view::npos) {
    return Status::InvalidArgument("unterminated URI ref");
  }
  std::string uri(c->text.substr(c->pos + 1, end - c->pos - 1));
  c->pos = end + 1;
  if (uri.empty()) return Status::InvalidArgument("empty URI ref");
  return Term::Uri(std::move(uri));
}

Result<Term> ParseBlank(Cursor* c) {
  // _:label
  size_t start = c->pos + 2;
  size_t end = start;
  while (end < c->text.size() && !std::isspace(static_cast<unsigned char>(
                                     c->text[end]))) {
    if (c->text[end] == '.' && end + 1 >= c->text.size()) break;
    ++end;
  }
  std::string label(c->text.substr(start, end - start));
  if (label.empty()) return Status::InvalidArgument("empty blank label");
  c->pos = end;
  return Term::BlankNode(std::move(label));
}

Result<Term> ParseLiteral(Cursor* c) {
  // "...", optional @lang or ^^<dt>; take up to the closing unescaped
  // quote, then the suffix up to whitespace.
  size_t i = c->pos + 1;
  std::string body;
  bool closed = false;
  while (i < c->text.size()) {
    char ch = c->text[i];
    if (ch == '\\' && i + 1 < c->text.size()) {
      char next = c->text[i + 1];
      switch (next) {
        case 'n':
          body.push_back('\n');
          break;
        case 'r':
          body.push_back('\r');
          break;
        case 't':
          body.push_back('\t');
          break;
        case '\\':
          body.push_back('\\');
          break;
        case '"':
          body.push_back('"');
          break;
        default:
          body.push_back(next);
      }
      i += 2;
      continue;
    }
    if (ch == '"') {
      closed = true;
      ++i;
      break;
    }
    body.push_back(ch);
    ++i;
  }
  if (!closed) return Status::InvalidArgument("unterminated literal");
  c->pos = i;
  if (!c->Done() && c->Peek() == '@') {
    size_t start = c->pos + 1;
    size_t end = start;
    while (end < c->text.size() &&
           !std::isspace(static_cast<unsigned char>(c->text[end])) &&
           c->text[end] != '.') {
      ++end;
    }
    std::string lang(c->text.substr(start, end - start));
    if (lang.empty()) return Status::InvalidArgument("empty language tag");
    c->pos = end;
    return Term::PlainLiteralLang(std::move(body), std::move(lang));
  }
  if (c->pos + 1 < c->text.size() && c->text[c->pos] == '^' &&
      c->text[c->pos + 1] == '^') {
    c->pos += 2;
    if (c->Done() || c->Peek() != '<') {
      return Status::InvalidArgument("datatype must be a URI ref");
    }
    RDFDB_ASSIGN_OR_RETURN(Term dt, ParseUriRef(c));
    return Term::TypedLiteral(std::move(body), dt.lexical());
  }
  return Term::PlainLiteral(std::move(body));
}

Result<Term> ParseNode(Cursor* c, bool allow_literal) {
  c->SkipSpace();
  if (c->Done()) return Status::InvalidArgument("unexpected end of line");
  char ch = c->Peek();
  if (ch == '<') return ParseUriRef(c);
  if (ch == '_' && c->pos + 1 < c->text.size() &&
      c->text[c->pos + 1] == ':') {
    return ParseBlank(c);
  }
  if (ch == '"') {
    if (!allow_literal) {
      return Status::InvalidArgument("literal not allowed here");
    }
    return ParseLiteral(c);
  }
  return Status::InvalidArgument(std::string("unexpected character '") + ch +
                                 "'");
}

/// View-trimmed slice of `s` (same whitespace set as Trim, no copy).
std::string_view TrimView(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Result<std::optional<NTriple>> ParseLineView(std::string_view line) {
  std::string_view trimmed = TrimView(line);
  if (trimmed.empty() || trimmed[0] == '#') {
    return std::optional<NTriple>{};
  }
  Cursor c{trimmed};
  NTriple triple;
  RDFDB_ASSIGN_OR_RETURN(triple.subject,
                         ParseNode(&c, /*allow_literal=*/false));
  if (triple.subject.is_literal()) {
    return Status::InvalidArgument("subject must not be a literal");
  }
  c.SkipSpace();
  RDFDB_ASSIGN_OR_RETURN(triple.predicate,
                         ParseNode(&c, /*allow_literal=*/false));
  if (!triple.predicate.is_uri()) {
    return Status::InvalidArgument("predicate must be a URI");
  }
  c.SkipSpace();
  RDFDB_ASSIGN_OR_RETURN(triple.object, ParseNode(&c, /*allow_literal=*/true));
  c.SkipSpace();
  if (c.Done() || c.Peek() != '.') {
    return Status::InvalidArgument("missing '.' terminator");
  }
  ++c.pos;
  c.SkipSpace();
  if (!c.Done()) {
    return Status::InvalidArgument("trailing content after '.'");
  }
  return std::optional<NTriple>{std::move(triple)};
}

}  // namespace

Result<std::optional<NTriple>> ParseNTriplesLine(const std::string& line) {
  return ParseLineView(line);
}

Result<std::vector<NTriple>> ParseNTriplesChunk(std::string_view text,
                                                size_t first_line) {
  std::vector<NTriple> out;
  size_t line_no = first_line;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) {
      if (pos == text.size()) break;  // no trailing fragment
      eol = text.size();
    }
    auto parsed = ParseLineView(text.substr(pos, eol - pos));
    if (!parsed.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": " + parsed.status().message());
    }
    if (parsed->has_value()) out.push_back(std::move(**parsed));
    ++line_no;
    pos = eol + 1;
  }
  return out;
}

std::vector<NTriplesChunkSpec> SplitNTriplesChunks(std::string_view text,
                                                   size_t max_lines) {
  if (max_lines == 0) max_lines = 1;
  std::vector<NTriplesChunkSpec> chunks;
  size_t pos = 0;
  size_t line = 1;
  while (pos < text.size()) {
    NTriplesChunkSpec spec;
    spec.begin = pos;
    spec.first_line = line;
    size_t lines = 0;
    while (pos < text.size() && lines < max_lines) {
      size_t eol = text.find('\n', pos);
      pos = eol == std::string_view::npos ? text.size() : eol + 1;
      ++lines;
    }
    spec.end = pos;
    line += lines;
    chunks.push_back(spec);
  }
  return chunks;
}

Result<std::vector<NTriple>> ParseNTriplesDocument(const std::string& text) {
  std::vector<NTriple> out;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto parsed = ParseNTriplesLine(line);
    if (!parsed.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": " + parsed.status().message());
    }
    if (parsed->has_value()) out.push_back(std::move(**parsed));
  }
  return out;
}

Result<std::vector<NTriple>> ParseNTriplesFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseNTriplesDocument(buffer.str());
}

std::string ToNTriplesLine(const NTriple& triple) {
  return triple.subject.ToNTriples() + " " + triple.predicate.ToNTriples() +
         " " + triple.object.ToNTriples() + " .";
}

Status WriteNTriplesFile(const std::string& path,
                         const std::vector<NTriple>& triples) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  for (const NTriple& triple : triples) {
    out << ToNTriplesLine(triple) << "\n";
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace rdfdb::rdf
