// Compression codecs for the in-memory store (ROADMAP item 2):
//
//   * PostingList — a delta+varint encoded strictly-ascending uint32
//     sequence with a per-64-value skip table, replacing the raw
//     vector<uint32_t> posting lists in LinkStore::ModelIdCache. A
//     Cursor decodes sequentially; SkipTo gallops over skip entries so
//     intersections decode only the blocks they visit.
//
//   * FrontCodedPack — sorted strings stored in blocks of 16 as one
//     full head string plus (shared-prefix-length, suffix) pairs,
//     replacing the per-entry std::string copies in TermDict. Get()
//     materializes lazily by walking one block (≤ 15 suffix splices).
//
// Both structures are immutable-once-shared: the COW quad-cache
// discipline (LinkStore::MutableCache clones before the first mutation
// after a ShareCaches()) means readers only ever see fully-published
// bytes, so neither structure needs atomics of its own.

#ifndef RDFDB_RDF_CODEC_H_
#define RDFDB_RDF_CODEC_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rdfdb::rdf::codec {

// ---- Varint primitives ----------------------------------------------------

/// LEB128 append (1–5 bytes for uint32).
inline void PutVarint32(std::vector<uint8_t>* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// Unchecked decode: the caller guarantees a complete varint at `p`
/// (all codec bytes are produced by PutVarint32). Returns the byte
/// after the varint.
inline const uint8_t* GetVarint32(const uint8_t* p, uint32_t* v) {
  uint32_t result = *p & 0x7f;
  if ((*p++ & 0x80) != 0) {
    int shift = 7;
    do {
      result |= static_cast<uint32_t>(*p & 0x7f) << shift;
      shift += 7;
    } while ((*p++ & 0x80) != 0);
  }
  *v = result;
  return p;
}

/// Encoded size of `v` in bytes.
inline size_t VarintLength(uint32_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// ---- PostingList ----------------------------------------------------------

/// Delta+varint encoded ascending uint32 sequence. Append-only and
/// strictly ascending (each value must exceed the last); deletions are
/// handled above this layer by tombstoning the referenced quad.
class PostingList {
 public:
  /// Values per skip block. Each block start gets a skip entry
  /// (first value + byte offset), so SkipTo lands inside the right
  /// block and decodes at most kBlockSize-1 deltas.
  static constexpr uint32_t kBlockSize = 64;

  PostingList() = default;

  /// Append `value`; must be strictly greater than back() (or anything
  /// for the first append).
  void Append(uint32_t value) {
    uint32_t delta = count_ == 0 ? value : value - last_;
    if ((count_ % kBlockSize) == 0) {
      size_t at = bytes_.size();
      PutVarint32(&bytes_, delta);
      skip_.push_back(SkipEntry{value, static_cast<uint32_t>(at)});
    } else {
      PutVarint32(&bytes_, delta);
    }
    last_ = value;
    ++count_;
  }

  uint32_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Largest (= most recent) value; undefined when empty.
  uint32_t back() const { return last_; }

  /// Actual heap bytes owned (vector capacities), excluding sizeof(*this).
  size_t ApproxBytes() const {
    return bytes_.capacity() * sizeof(uint8_t) +
           skip_.capacity() * sizeof(SkipEntry);
  }

  /// Encoded payload size (exact, no capacity slack) — what a
  /// capacity-tight copy would occupy.
  size_t EncodedBytes() const {
    return bytes_.size() + skip_.size() * sizeof(SkipEntry);
  }

  /// Decode everything (tests / slow paths).
  std::vector<uint32_t> ToVector() const;

  /// Decode every value in order, calling fn(value) until it returns
  /// false. The whole decode state lives in registers — measurably
  /// faster than driving a Cursor when the full list is visited (the
  /// executor's hot single-list leaf scans).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const uint8_t* p = bytes_.data();
    uint32_t cur = 0;
    for (uint32_t i = 0; i < count_; ++i) {
      uint32_t delta;
      p = GetVarint32(p, &delta);
      cur += delta;  // first delta is the absolute value (cur == 0)
      if (!fn(cur)) return;
    }
  }

  /// Forward decoder. Valid while the list is unmodified (the COW
  /// discipline guarantees this for readers).
  class Cursor {
   public:
    Cursor() = default;
    explicit Cursor(const PostingList& list) : list_(&list) {
      if (list.count_ > 0) {
        pos_ = GetVarint32(list.bytes_.data(), &cur_);
      }
    }

    bool AtEnd() const { return list_ == nullptr || idx_ >= list_->count_; }
    uint32_t Value() const { return cur_; }
    /// Index of the current value within the list (0-based).
    uint32_t Index() const { return idx_; }

    void Next() {
      if (++idx_ >= list_->count_) return;
      uint32_t delta;
      pos_ = GetVarint32(pos_, &delta);
      cur_ += delta;
    }

    /// Advance to the first value >= target (no-op if already there).
    /// Returns false when the list is exhausted. Gallops across skip
    /// blocks: doubling probe from the current block, then a binary
    /// search over the bracketed range, then ≤ kBlockSize-1 decodes.
    bool SkipTo(uint32_t target) {
      if (AtEnd()) return false;
      if (cur_ >= target) return true;
      const auto& skip = list_->skip_;
      size_t block = idx_ / kBlockSize;
      // Gallop: find the last block whose first value <= target.
      size_t step = 1;
      size_t hi = block;
      while (hi + step < skip.size() && skip[hi + step].first <= target) {
        hi += step;
        step <<= 1;
      }
      // Binary-search (hi, min(hi+step, size)) for more blocks <= target.
      size_t lo = hi;
      size_t end = std::min(hi + step, skip.size());
      while (lo + 1 < end) {
        size_t mid = (lo + end) / 2;
        if (skip[mid].first <= target) {
          lo = mid;
        } else {
          end = mid;
        }
      }
      if (lo > block) {
        idx_ = static_cast<uint32_t>(lo) * kBlockSize;
        cur_ = skip[lo].first;
        pos_ = list_->bytes_.data() + skip[lo].offset;
        uint32_t delta;
        pos_ = GetVarint32(pos_, &delta);  // re-decode the block head
      }
      while (cur_ < target) {
        Next();
        if (AtEnd()) return false;
      }
      return true;
    }

   private:
    const PostingList* list_ = nullptr;
    const uint8_t* pos_ = nullptr;
    uint32_t idx_ = 0;
    uint32_t cur_ = 0;
  };

  Cursor NewCursor() const { return Cursor(*this); }

 private:
  struct SkipEntry {
    uint32_t first;   ///< first value of the block
    uint32_t offset;  ///< byte offset of the block's head varint
  };

  std::vector<uint8_t> bytes_;
  std::vector<SkipEntry> skip_;
  uint32_t count_ = 0;
  uint32_t last_ = 0;
};

// ---- Front-coded string blocks --------------------------------------------

/// Immutable pack of front-coded strings. Strings are stored in the
/// order given to the builder (sort first for real compression: the
/// shared prefix is computed against the previous string). Index i in
/// the pack is the order of insertion.
class FrontCodedPack {
 public:
  /// Strings per block: one full head + 15 (prefix-len, suffix) pairs.
  static constexpr uint32_t kBlockSize = 16;

  FrontCodedPack() = default;

  uint32_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Materialize string `idx` (walks its block from the head).
  std::string Get(uint32_t idx) const;

  /// Append string `idx` to `*out` (saves an allocation in loops).
  void AppendTo(uint32_t idx, std::string* out) const;

  /// Actual heap bytes owned (vector capacities).
  size_t ApproxBytes() const {
    return bytes_.capacity() * sizeof(uint8_t) +
           block_offsets_.capacity() * sizeof(uint32_t);
  }

 private:
  friend class FrontCodedPackBuilder;

  // Block layout in bytes_:
  //   head:   varint(len)        + len bytes
  //   member: varint(shared_len) + varint(suffix_len) + suffix bytes
  std::vector<uint8_t> bytes_;
  std::vector<uint32_t> block_offsets_;  ///< byte offset of each block head
  uint32_t count_ = 0;
};

/// Builds a FrontCodedPack incrementally. Add() returns the index the
/// string will have in the finished pack.
class FrontCodedPackBuilder {
 public:
  uint32_t Add(std::string_view s);

  /// Finish: shrinks to fit and returns the pack. The builder is
  /// reset to empty.
  FrontCodedPack Build();

  uint32_t size() const { return pack_.count_; }

 private:
  FrontCodedPack pack_;
  std::string prev_;
};

}  // namespace rdfdb::rdf::codec

#endif  // RDFDB_RDF_CODEC_H_
