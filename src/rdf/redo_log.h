// Logical redo logging for the RDF store.
//
// The storage engine is in-memory with snapshot checkpoints
// (storage/snapshot.h); this module adds the write-ahead piece: an
// append-only, human-readable log of the RDF-level mutations, and a
// replayer that reapplies them to a store. The intended recovery
// protocol is
//
//     load last snapshot  ->  ReplayRedoLog(log since snapshot)
//
// and LoggedRdfStore::Checkpoint() implements "snapshot + truncate".
//
// Records are logical (API strings, not physical ids): LINK_IDs are
// assigned by sequences and would not be stable across replay, so
// reification operations log the base triple's (s, p, o) instead of its
// rdf_t_id.

#ifndef RDFDB_RDF_REDO_LOG_H_
#define RDFDB_RDF_REDO_LOG_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/rdf_store.h"

namespace rdfdb::rdf {

/// Append-only log writer. Each record is one '\n'-terminated line of
/// tab-separated fields; tabs/newlines/backslashes in values are
/// escaped. Records are flushed on every append.
class RedoLog {
 public:
  /// Open (creating or appending to) the log at `path`.
  static Result<std::unique_ptr<RedoLog>> Open(const std::string& path);

  ~RedoLog();
  RedoLog(const RedoLog&) = delete;
  RedoLog& operator=(const RedoLog&) = delete;

  Status LogCreateModel(const std::string& model, const std::string& table,
                        const std::string& column, const std::string& owner);
  Status LogDropModel(const std::string& model);
  Status LogInsert(const std::string& model, const std::string& s,
                   const std::string& p, const std::string& o);
  Status LogDelete(const std::string& model, const std::string& s,
                   const std::string& p, const std::string& o);
  /// Reification of the triple identified by (s, p, o).
  Status LogReify(const std::string& model, const std::string& s,
                  const std::string& p, const std::string& o);
  /// Assertion <as, ap, DBUri(base)> about the base triple (s, p, o);
  /// `implied` distinguishes the six-argument constructor.
  Status LogAssert(const std::string& model, const std::string& as,
                   const std::string& ap, const std::string& s,
                   const std::string& p, const std::string& o,
                   bool implied);

  /// Truncate the log (after a successful checkpoint).
  Status Truncate();

  const std::string& path() const { return path_; }

 private:
  RedoLog(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  Status Append(const std::vector<std::string>& fields);

  std::string path_;
  std::FILE* file_;
};

/// Replay outcome. Also emitted into the store's metrics registry
/// (rdfdb_replay_records_total / rdfdb_replay_ns) by ReplayRedoLog.
struct ReplayStats {
  size_t records = 0;
  size_t models_created = 0;
  size_t models_dropped = 0;
  size_t inserts = 0;
  size_t deletes = 0;
  size_t reifications = 0;
  size_t assertions = 0;
  int64_t replay_ns = 0;  ///< wall time of the whole replay

  /// One-line human-readable rendering.
  std::string ToString() const;
};

/// Re-apply every record in `path` to `store`. Fails with Corruption on
/// malformed records; individual operations that fail (e.g. delete of a
/// vanished triple) fail the replay too — the log is authoritative.
Result<ReplayStats> ReplayRedoLog(const std::string& path, RdfStore* store);

/// RdfStore façade that appends each successful mutation to the redo
/// log (apply-then-log: with an in-memory store the log is the source
/// of truth after a crash, so failed operations must never be logged),
/// plus the checkpoint protocol.
class LoggedRdfStore {
 public:
  /// Open the store at `snapshot_path` (if it exists) and replay
  /// `log_path` on top; subsequent mutations append to the log.
  static Result<std::unique_ptr<LoggedRdfStore>> Open(
      const std::string& snapshot_path, const std::string& log_path);

  RdfStore& store() { return *store_; }
  const RdfStore& store() const { return *store_; }

  Result<ModelInfo> CreateRdfModel(const std::string& model_name,
                                   const std::string& app_table,
                                   const std::string& app_column,
                                   const std::string& owner = "");
  Status DropRdfModel(const std::string& model_name);
  Result<SdoRdfTripleS> InsertTriple(const std::string& model_name,
                                     const std::string& subject,
                                     const std::string& property,
                                     const std::string& object);
  Status DeleteTriple(const std::string& model_name,
                      const std::string& subject,
                      const std::string& property,
                      const std::string& object);
  Result<SdoRdfTripleS> ReifyTriple(const std::string& model_name,
                                    LinkId rdf_t_id);
  Result<SdoRdfTripleS> AssertAboutTriple(const std::string& model_name,
                                          const std::string& subject,
                                          const std::string& property,
                                          LinkId rdf_t_id);
  Result<SdoRdfTripleS> AssertImplied(const std::string& model_name,
                                      const std::string& reif_sub,
                                      const std::string& reif_prop,
                                      const std::string& subject,
                                      const std::string& property,
                                      const std::string& object);

  /// Snapshot the store and truncate the log.
  Status Checkpoint();

 private:
  LoggedRdfStore(std::unique_ptr<RdfStore> store,
                 std::unique_ptr<RedoLog> log, std::string snapshot_path)
      : store_(std::move(store)),
        log_(std::move(log)),
        snapshot_path_(std::move(snapshot_path)) {}

  /// Resolve a LINK_ID back to its triple's API display strings (for
  /// logical logging of reification ops).
  Result<SdoRdfTriple> TripleTextFor(LinkId rdf_t_id) const;

  std::unique_ptr<RdfStore> store_;
  std::unique_ptr<RedoLog> log_;
  std::string snapshot_path_;
};

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_REDO_LOG_H_
