// Logical redo logging + crash-safe checkpointing for the RDF store.
//
// The storage engine is in-memory with snapshot checkpoints
// (storage/snapshot.h); this module adds the write-ahead piece: an
// append-only, checksummed log of the RDF-level mutations, a replayer
// that reapplies them to a store, and the generation-numbered
// checkpoint protocol that ties the two together. Recovery is
//
//     read manifest -> load snapshot generation G -> replay log
//                      records with seq >= manifest.log_start_seq
//
// Record framing (one '\n'-terminated line per record):
//
//     <seq>\t<crc32c-hex>\t<tag>\t<field>...\n
//
// `seq` is a store-lifetime monotonic sequence number (decimal), `crc`
// is CRC32C over everything after the second tab (the escaped body).
// Tabs/newlines/backslashes inside field values are escaped. Replay
// tolerates exactly one *torn final* record — an integrity failure
// (unparseable seq/crc or CRC mismatch) on the last record truncates
// the log at the last valid boundary and counts/logs the event — but
// fails hard with Corruption on mid-log damage, sequence gaps, or any
// CRC-valid record that is semantically malformed.
//
// Records are logical (API strings, not physical ids): LINK_IDs are
// assigned by sequences and would not be stable across replay, so
// reification operations log the base triple's (s, p, o) instead of
// its rdf_t_id.
//
// All I/O goes through storage::Env so the crash torture harness can
// inject faults at any byte (tests/test_crash_recovery.cc).

#ifndef RDFDB_RDF_REDO_LOG_H_
#define RDFDB_RDF_REDO_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/rdf_store.h"
#include "storage/env.h"

namespace rdfdb::rdf {

/// When appended records are pushed to durable storage.
enum class SyncMode {
  kNone,         ///< OS decides (fastest; a crash may lose recent records)
  kBatch,        ///< fdatasync every `batch_sync_every` records
  kEveryRecord,  ///< fdatasync per append: an OK return is durable
};

struct RedoLogOptions {
  SyncMode sync_mode = SyncMode::kEveryRecord;
  /// Filesystem to write through; nullptr = storage::Env::Default().
  storage::Env* env = nullptr;
  /// Sequence number the next appended record carries. Callers recover
  /// it from ReplayStats::last_seq (+1) / the checkpoint manifest.
  uint64_t next_seq = 1;
  /// kBatch: fdatasync after every N appended records.
  size_t batch_sync_every = 64;
};

/// Append-only log writer. After any failed append or sync the log is
/// *poisoned*: the partial tail on disk must not be extended, so every
/// later append fails fast with the original error (which carries the
/// errno text) instead of interleaving records after garbage.
class RedoLog {
 public:
  /// Open (creating or appending to) the log at `path`.
  static Result<std::unique_ptr<RedoLog>> Open(
      const std::string& path, const RedoLogOptions& options = {});

  ~RedoLog() = default;
  RedoLog(const RedoLog&) = delete;
  RedoLog& operator=(const RedoLog&) = delete;

  Status LogCreateModel(const std::string& model, const std::string& table,
                        const std::string& column, const std::string& owner);
  Status LogDropModel(const std::string& model);
  Status LogInsert(const std::string& model, const std::string& s,
                   const std::string& p, const std::string& o);
  Status LogDelete(const std::string& model, const std::string& s,
                   const std::string& p, const std::string& o);
  /// Reification of the triple identified by (s, p, o).
  Status LogReify(const std::string& model, const std::string& s,
                  const std::string& p, const std::string& o);
  /// Assertion <as, ap, DBUri(base)> about the base triple (s, p, o);
  /// `implied` distinguishes the six-argument constructor.
  Status LogAssert(const std::string& model, const std::string& as,
                   const std::string& ap, const std::string& s,
                   const std::string& p, const std::string& o,
                   bool implied);

  /// Force buffered records durable (kBatch callers; no-op work-wise
  /// for kEveryRecord).
  Status Sync();

  /// Truncate the log (after a successful checkpoint). The sequence
  /// counter keeps running — seq is monotonic for the store lifetime.
  Status Truncate();

  const std::string& path() const { return path_; }
  /// Sequence number the next append will carry.
  uint64_t next_seq() const { return next_seq_; }
  /// Non-OK once the log is poisoned by a failed append/sync.
  const Status& poisoned() const { return poisoned_; }

 private:
  RedoLog(std::string path, std::unique_ptr<storage::WritableFile> file,
          const RedoLogOptions& options)
      : path_(std::move(path)),
        file_(std::move(file)),
        env_(options.env != nullptr ? options.env
                                    : storage::Env::Default()),
        sync_mode_(options.sync_mode),
        batch_sync_every_(options.batch_sync_every),
        next_seq_(options.next_seq) {}

  Status Append(const std::vector<std::string>& fields);

  std::string path_;
  std::unique_ptr<storage::WritableFile> file_;
  storage::Env* env_;
  SyncMode sync_mode_;
  size_t batch_sync_every_;
  uint64_t next_seq_;
  size_t unsynced_records_ = 0;
  Status poisoned_;  // non-OK => log is dead
};

struct ReplayOptions {
  /// Records with seq < min_seq are already covered by the snapshot the
  /// caller loaded (the manifest's log_start_seq); they are skipped,
  /// not reapplied.
  uint64_t min_seq = 1;
  /// Filesystem; nullptr = storage::Env::Default().
  storage::Env* env = nullptr;
  /// When false, a torn final record is reported in the stats but the
  /// file is left untouched (rdfdb_fsck's read-only verification).
  bool truncate_torn_tail = true;
};

/// Replay outcome. Also emitted into the store's metrics registry
/// (rdfdb_replay_records_total / rdfdb_replay_ns / torn-tail and
/// stale-skip counters) by ReplayRedoLog.
struct ReplayStats {
  size_t records = 0;  ///< applied records (excludes stale-skipped)
  size_t models_created = 0;
  size_t models_dropped = 0;
  size_t inserts = 0;
  size_t deletes = 0;
  size_t reifications = 0;
  size_t assertions = 0;
  int64_t replay_ns = 0;  ///< wall time of the whole replay

  uint64_t first_seq = 0;  ///< seq of the first record in the file (0 = empty)
  uint64_t last_seq = 0;   ///< seq of the last intact record (0 = empty)
  size_t stale_skipped = 0;   ///< records below min_seq (pre-checkpoint)
  bool torn_tail = false;     ///< a torn final record was dropped
  uint64_t torn_offset = 0;   ///< byte offset the log was truncated at

  /// One-line human-readable rendering.
  std::string ToString() const;
};

/// Re-apply every record in `path` with seq >= opts.min_seq to
/// `store`. Fails with Corruption (annotated with byte offsets) on
/// mid-log damage, seq gaps, or malformed CRC-valid records;
/// individual operations that fail (e.g. delete of a vanished triple)
/// fail the replay too — the log is authoritative. A missing file is
/// an empty log.
Result<ReplayStats> ReplayRedoLog(const std::string& path, RdfStore* store,
                                  const ReplayOptions& opts = {});

/// Integrity-check the log without applying anything (rdfdb_fsck):
/// verifies per-record CRCs and seq continuity, reports a torn tail,
/// never writes. `store` semantics (whether an op would apply) are NOT
/// checked.
Result<ReplayStats> VerifyRedoLog(const std::string& path,
                                  const ReplayOptions& opts = {});

/// The checkpoint manifest: a tiny text file naming the authoritative
/// snapshot generation and the first log seq not covered by it. It is
/// the recovery root — swapped by atomic rename, guarded by CRC32C.
struct CheckpointManifest {
  uint64_t generation = 0;
  std::string snapshot_file;  ///< basename, relative to the manifest dir
  uint64_t log_start_seq = 1;
};

Result<CheckpointManifest> ReadManifest(const std::string& path,
                                        storage::Env* env = nullptr);
Status WriteManifest(const std::string& path, const CheckpointManifest& m,
                     storage::Env* env = nullptr);

struct LoggedStoreOptions {
  SyncMode sync_mode = SyncMode::kEveryRecord;
  /// Filesystem everything (snapshots, log, manifest) goes through;
  /// nullptr = storage::Env::Default().
  storage::Env* env = nullptr;
};

/// RdfStore façade that appends each successful mutation to the redo
/// log (apply-then-log: with an in-memory store the log is the source
/// of truth after a crash, so failed operations must never be logged),
/// plus the crash-safe checkpoint protocol:
///
///   Checkpoint():
///     1. write snapshot generation G+1 to <base>.g<G+1> (atomic:
///        tmp + fsync + rename + dir fsync)
///     2. atomically swap <base>.manifest to point at G+1 with
///        log_start_seq = next unused seq
///     3. truncate the log, delete generation G (both safe to lose:
///        stale records are skipped by seq on replay, stale snapshots
///        are simply never referenced)
///
/// A crash at any point recovers from the previous generation + the
/// full log, or the new generation + the (possibly still un-truncated)
/// log filtered by seq.
class LoggedRdfStore {
 public:
  /// Open the store rooted at `snapshot_path`: read
  /// `<snapshot_path>.manifest` if present (else fall back to a bare
  /// snapshot file at `snapshot_path`, else start empty) and replay
  /// `log_path` on top; subsequent mutations append to the log.
  static Result<std::unique_ptr<LoggedRdfStore>> Open(
      const std::string& snapshot_path, const std::string& log_path,
      const LoggedStoreOptions& options = {});

  RdfStore& store() { return *store_; }
  const RdfStore& store() const { return *store_; }

  Result<ModelInfo> CreateRdfModel(const std::string& model_name,
                                   const std::string& app_table,
                                   const std::string& app_column,
                                   const std::string& owner = "");
  Status DropRdfModel(const std::string& model_name);
  Result<SdoRdfTripleS> InsertTriple(const std::string& model_name,
                                     const std::string& subject,
                                     const std::string& property,
                                     const std::string& object);
  Status DeleteTriple(const std::string& model_name,
                      const std::string& subject,
                      const std::string& property,
                      const std::string& object);
  Result<SdoRdfTripleS> ReifyTriple(const std::string& model_name,
                                    LinkId rdf_t_id);
  Result<SdoRdfTripleS> AssertAboutTriple(const std::string& model_name,
                                          const std::string& subject,
                                          const std::string& property,
                                          LinkId rdf_t_id);
  Result<SdoRdfTripleS> AssertImplied(const std::string& model_name,
                                      const std::string& reif_sub,
                                      const std::string& reif_prop,
                                      const std::string& subject,
                                      const std::string& property,
                                      const std::string& object);

  /// Snapshot the store into the next generation, swap the manifest,
  /// truncate the log (see class comment for the crash analysis).
  Status Checkpoint();

  /// Current snapshot generation (0 = none yet).
  uint64_t generation() const { return generation_; }
  /// Stats from the replay that Open performed.
  const ReplayStats& recovery_stats() const { return recovery_stats_; }

  /// Snapshot file name for generation `gen` of the store rooted at
  /// `snapshot_path` ("<snapshot_path>.g<gen>").
  static std::string GenerationFileName(const std::string& snapshot_path,
                                        uint64_t gen);
  /// Manifest path for the store rooted at `snapshot_path`.
  static std::string ManifestPath(const std::string& snapshot_path);

 private:
  LoggedRdfStore(std::unique_ptr<RdfStore> store,
                 std::unique_ptr<RedoLog> log, std::string snapshot_path,
                 storage::Env* env, uint64_t generation)
      : store_(std::move(store)),
        log_(std::move(log)),
        snapshot_path_(std::move(snapshot_path)),
        env_(env),
        generation_(generation) {}

  /// Resolve a LINK_ID back to its triple's API display strings (for
  /// logical logging of reification ops).
  Result<SdoRdfTriple> TripleTextFor(LinkId rdf_t_id) const;

  std::unique_ptr<RdfStore> store_;
  std::unique_ptr<RedoLog> log_;
  std::string snapshot_path_;
  storage::Env* env_;
  uint64_t generation_;
  ReplayStats recovery_stats_;
};

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_REDO_LOG_H_
