// RdfStore: the library's main entry point — the C++ equivalent of the
// paper's SDO_RDF PL/SQL package plus the SDO_RDF_TRIPLE_S constructors.
//
// One RdfStore is "one universe for all RDF data in the database": all
// models share the central-schema tables, values and nodes are stored
// once, and reasoning can span models (see query/match.h).

#ifndef RDFDB_RDF_RDF_STORE_H_
#define RDFDB_RDF_RDF_STORE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dburi/dburi.h"
#include "ndm/network.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/span_timeline.h"
#include "obs/store_metrics.h"
#include "rdf/link_store.h"
#include "rdf/model_store.h"
#include "rdf/store_view.h"
#include "rdf/term.h"
#include "rdf/triple.h"
#include "rdf/value_store.h"
#include "storage/database.h"

namespace rdfdb::storage {
class Env;
}  // namespace rdfdb::storage

namespace rdfdb::rdf {

/// Central RDF store. Not thread-safe (single-writer embedded model).
/// Implements StoreView so queries run directly against the live state;
/// SnapshotRdfStore publishes immutable StoreVersion views of it for
/// lock-free readers.
class RdfStore : public StoreView {
 public:
  RdfStore();
  ~RdfStore() override;

  RdfStore(const RdfStore&) = delete;
  RdfStore& operator=(const RdfStore&) = delete;

  // ---- Model management (SDO_RDF.CREATE_RDF_MODEL etc.) ---------------

  /// Register a model and create its rdfm_<name> view.
  Result<ModelInfo> CreateRdfModel(const std::string& model_name,
                                   const std::string& app_table,
                                   const std::string& app_column,
                                   const std::string& owner = "");

  /// Drop a model: removes its triples, view, and registry row.
  Status DropRdfModel(const std::string& model_name);

  /// SDO_RDF.GET_MODEL_ID.
  Result<ModelId> GetModelId(const std::string& model_name) const override;

  /// Names of all models.
  std::vector<std::string> ModelNames() const;

  /// Grant SELECT on the model's rdfm_<name> view to `user` ("accessible
  /// only to the owner of the model and users with SELECT privileges").
  Status GrantSelectOnModel(const std::string& model_name,
                            const std::string& user);

  /// Whether `user` may read the model's view.
  Result<bool> CanSelectModel(const std::string& model_name,
                              const std::string& user) const;

  // ---- The SDO_RDF_TRIPLE_S constructors -------------------------------

  /// Constructor (model_name, subject, property, object): parse and store
  /// a direct triple. Term syntax follows ParseApiTerm.
  Result<SdoRdfTripleS> InsertTriple(const std::string& model_name,
                                     const std::string& subject,
                                     const std::string& property,
                                     const std::string& object);

  /// Constructor (model_name, rdf_t_id): the reification constructor —
  /// stores the single streamlined triple
  /// <DBUri(rdf_t_id), rdf:type, rdf:Statement>.
  Result<SdoRdfTripleS> ReifyTriple(const std::string& model_name,
                                    LinkId rdf_t_id);

  /// Constructor (model_name, subject, property, rdf_t_id): assertion
  /// about a (possibly not-yet-reified) triple; reifies it first if
  /// needed, then stores <subject, property, DBUri(rdf_t_id)>.
  Result<SdoRdfTripleS> AssertAboutTriple(const std::string& model_name,
                                          const std::string& subject,
                                          const std::string& property,
                                          LinkId rdf_t_id);

  /// Constructor (model_name, reif_sub, reif_prop, subject, property,
  /// object): assertion about an *implied* statement. Inserts the base
  /// triple with CONTEXT = I if it is new (an existing Direct triple
  /// stays Direct), reifies it, then asserts
  /// <reif_sub, reif_prop, DBUri(base)>.
  Result<SdoRdfTripleS> AssertImplied(const std::string& model_name,
                                      const std::string& reif_sub,
                                      const std::string& reif_prop,
                                      const std::string& subject,
                                      const std::string& property,
                                      const std::string& object);

  // ---- Queries (SDO_RDF package subprograms) ---------------------------

  /// SDO_RDF.IS_TRIPLE: does the exact triple exist in the model?
  Result<bool> IsTriple(const std::string& model_name,
                        const std::string& subject,
                        const std::string& property,
                        const std::string& object) const;

  /// The LINK_ID (rdf_t_id) of an existing triple; NotFound if absent.
  Result<LinkId> GetTripleId(const std::string& model_name,
                             const std::string& subject,
                             const std::string& property,
                             const std::string& object) const;

  /// Per-model statistics (the SDO_RDF package's analysis surface).
  struct ModelStats {
    size_t triples = 0;
    size_t distinct_subjects = 0;
    size_t distinct_predicates = 0;
    size_t distinct_objects = 0;
    size_t reified_statements = 0;  ///< streamlined reification rows
    size_t implied_statements = 0;  ///< CONTEXT = I rows
  };
  struct ModelStatsOptions {
    /// Distinct subject/predicate/object counts require a full model
    /// scan with three hash sets; callers that only want the cheap
    /// counters (triples, reified, implied) turn this off and the scan
    /// carries no per-row set inserts. The triple count always comes
    /// from the partition row counter, never from the scan.
    bool distinct_counts = true;
  };
  Result<ModelStats> GetModelStats(const std::string& model_name) const;
  Result<ModelStats> GetModelStats(const std::string& model_name,
                                   const ModelStatsOptions& options) const;

  /// Invariant check used by tests and tooling: the NDM network, the
  /// rdf_node$ table, and rdf_link$ must agree (every link mirrored,
  /// every node used by some link, no orphans).
  Status CheckConsistency() const;

  /// SDO_RDF.IS_REIFIED: has the triple been reified in the model?
  /// Implemented as a single-row lookup of the streamlined reification
  /// triple (§7.3: "queries ... are based on a single row retrieval").
  Result<bool> IsReified(const std::string& model_name,
                         const std::string& subject,
                         const std::string& property,
                         const std::string& object) const;

  /// Remove one application-table reference to a triple; the row (and
  /// NDM link, and orphaned nodes) disappears when the last reference is
  /// deleted.
  Status DeleteTriple(const std::string& model_name,
                      const std::string& subject,
                      const std::string& property,
                      const std::string& object);

  // ---- Member-function support ----------------------------------------

  /// Resolve the triple texts for a LINK_ID (GET_TRIPLE()).
  Result<SdoRdfTriple> ResolveTriple(LinkId rdf_t_id) const;

  /// Resolve single positions (GET_SUBJECT()/GET_PROPERTY()/GET_OBJECT()).
  Result<std::string> ResolveSubject(LinkId rdf_t_id) const;
  Result<std::string> ResolveProperty(LinkId rdf_t_id) const;
  Result<std::string> ResolveObject(LinkId rdf_t_id) const;

  /// Term / display text for a VALUE_ID.
  Result<Term> TermForValueId(ValueId value_id) const override;
  Result<std::string> TextForValueId(ValueId value_id) const;

  // ---- StoreView (live-state implementation) ---------------------------

  std::optional<ValueId> LookupValue(const Term& term) const override {
    return values_->Lookup(term);
  }
  LinkStore::LeafScan Leaf(ModelId model_id) const override {
    return links_->Leaf(model_id);
  }
  void MatchEachIds(ModelId model_id, std::optional<ValueId> s,
                    std::optional<ValueId> p, std::optional<ValueId> canon_o,
                    const std::function<bool(ValueId, ValueId, ValueId,
                                             ValueId)>& fn) const override {
    links_->MatchEachIds(model_id, s, p, canon_o, fn);
  }

  /// Intern an already-parsed term for `model_id` (blank nodes are
  /// model-scoped). Exposed for the loaders and the query layer.
  Result<ValueId> InternTerm(ModelId model_id, const Term& term);

  /// VALUE_ID lookup without insertion.
  std::optional<ValueId> LookupTerm(ModelId model_id, const Term& term) const;

  /// Insert an already-parsed triple (used by bulk loaders). Returns the
  /// storage object; `context` defaults to Direct.
  Result<SdoRdfTripleS> InsertParsedTriple(
      ModelId model_id, const Term& subject, const Term& property,
      const Term& object, TripleContext context = TripleContext::kDirect);

  /// The reification lookup used by both IsReified and the assertion
  /// constructors: is <DBUri(link), rdf:type, rdf:Statement> present in
  /// the model?
  Result<bool> IsLinkReified(ModelId model_id, LinkId link_id) const;

  // ---- Substrate access -------------------------------------------------

  storage::Database& database() { return *db_; }
  const storage::Database& database() const { return *db_; }
  ValueStore& values() { return *values_; }
  const ValueStore& values() const { return *values_; }
  LinkStore& links() { return *links_; }
  const LinkStore& links() const { return *links_; }
  ModelStore& models() { return *models_; }
  const ModelStore& models() const { return *models_; }

  /// The NDM logical network over all RDF data — "all the NDM
  /// functionality is exposed to RDF data".
  const ndm::LogicalNetwork& network() const { return *network_; }

  /// DBUri resolver bound to this store's database.
  dburi::Resolver resolver() const { return dburi::Resolver(db_.get()); }

  // ---- Observability -----------------------------------------------------

  /// The store's metric instruments. Write operations on the returned
  /// handles are relaxed atomics, so handing out a mutable pointer from
  /// a const store is sound.
  obs::StoreMetrics* metrics() const override { return metrics_.get(); }

  /// Registry backing metrics(); dump with RenderPrometheus()/RenderJson().
  obs::MetricsRegistry& metrics_registry() const { return *registry_; }

  /// Attach/detach the always-on facilities (see DESIGN.md §10). All
  /// three pointers are non-owning, default to null (every emission
  /// site is then a single branch), and must outlive the store while
  /// attached. Not thread-safe with respect to concurrent operations —
  /// attach before sharing the store (ConcurrentRdfStore::
  /// SetObservability does this under its write lock).
  void set_event_log(obs::EventLog* log);
  obs::EventLog* event_log() const { return event_log_; }
  void set_slow_query_log(obs::SlowQueryLog* log) { slow_query_log_ = log; }
  obs::SlowQueryLog* slow_query_log() const override {
    return slow_query_log_;
  }
  void set_timeline(obs::Timeline* timeline) { timeline_ = timeline; }
  obs::Timeline* timeline() const override { return timeline_; }

  // ---- Memory accounting -------------------------------------------------

  /// Approximate heap footprint by subsystem. `term_dict_bytes` and
  /// `retired_version_bytes` stay zero for a plain RdfStore — the
  /// snapshot store's MemoryUsage() fills them in.
  struct MemoryBreakdown {
    size_t value_store_bytes = 0;     ///< rdf_value$/rdf_blank_node$ + indexes
    size_t link_table_bytes = 0;      ///< rdf_link$/rdf_node$ + indexes
    size_t quad_cache_bytes = 0;      ///< per-model id-native quad caches
    size_t term_dict_bytes = 0;       ///< lock-free term dictionary
    size_t retired_version_bytes = 0; ///< exclusive bytes of retired versions
    size_t tracked_heap_bytes = 0;    ///< process-wide live heap (hooks)

    /// Sum of the store-owned components (excludes tracked_heap_bytes,
    /// which is a process-wide gauge, not a store component).
    size_t StoreTotal() const {
      return value_store_bytes + link_table_bytes + quad_cache_bytes +
             term_dict_bytes + retired_version_bytes;
    }
  };

  /// Estimate the current footprint by walking the store's containers.
  /// On-demand gauge refresh, not a hot path; call from the writer's
  /// context (same rule as any mutation).
  MemoryBreakdown MemoryUsage() const;

  /// MemoryUsage() pushed into the registered mem_* gauges.
  void UpdateMemoryGauges() const;

  // ---- Persistence -------------------------------------------------------

  /// Save all central-schema tables to a snapshot file (atomic footered
  /// format; see storage/snapshot.h). `env` == nullptr uses
  /// storage::Env::Default().
  Status Save(const std::string& path,
              storage::Env* env = nullptr) const;

  /// Load a snapshot previously written by Save into a fresh store.
  static Result<std::unique_ptr<RdfStore>> Open(
      const std::string& path, storage::Env* env = nullptr);

 private:
  /// Intern subject/property/object + canonical object; classify; insert.
  Result<SdoRdfTripleS> InsertTerms(ModelId model_id, const Term& subject,
                                    const Term& property, const Term& object,
                                    TripleContext context);

  SdoRdfTripleS MakeHandle(const LinkRow& row) const;

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<ndm::LogicalNetwork> network_;
  // Created before the stores so their set_metrics targets outlive them.
  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<obs::StoreMetrics> metrics_;
  std::unique_ptr<ValueStore> values_;
  std::unique_ptr<LinkStore> links_;
  std::unique_ptr<ModelStore> models_;
  // Always-on facilities; non-owning, null = disabled (one branch per
  // emission site).
  obs::EventLog* event_log_ = nullptr;
  obs::SlowQueryLog* slow_query_log_ = nullptr;
  obs::Timeline* timeline_ = nullptr;
};

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_RDF_STORE_H_
