// Canonicalization of typed literals.
//
// The paper's rdf_link$ table stores CANON_END_NODE_ID — "the VALUE_ID for
// the text value of the canonical form of the object of the triple" — so
// that e.g. "+025"^^xsd:int and "25"^^xsd:int match as the same object.
// This module computes that canonical form.

#ifndef RDFDB_RDF_CANONICAL_H_
#define RDFDB_RDF_CANONICAL_H_

#include "rdf/term.h"

namespace rdfdb::rdf {

/// Canonical form of `term`:
///  * integer XSD types: strip sign/leading zeros ("+025" -> "25")
///  * xsd:decimal: trim trailing fractional zeros ("1.50" -> "1.5",
///    "3.000" -> "3")
///  * xsd:double / xsd:float: shortest round-trip rendering
///  * xsd:boolean: "1"/"0" -> "true"/"false"
///  * xsd:string typed literal -> plain literal with the same text
///  * everything else (URIs, blank nodes, plain literals, unknown
///    datatypes, invalid lexical forms): returned unchanged
Term CanonicalForm(const Term& term);

/// True if `datatype_uri` is one of the XSD numeric/boolean types the
/// canonicalizer understands.
bool IsCanonicalizableDatatype(const std::string& datatype_uri);

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_CANONICAL_H_
