#include "rdf/term.h"

#include <cctype>

#include "common/hash.h"
#include "common/string_util.h"
#include "rdf/vocab.h"

namespace rdfdb::rdf {

bool IsContainerMembershipProperty(std::string_view uri) {
  if (!StartsWith(uri, kRdfNs)) return false;
  std::string_view local = uri.substr(kRdfNs.size());
  if (local.size() < 2 || local[0] != '_') return false;
  for (size_t i = 1; i < local.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(local[i]))) return false;
  }
  return true;
}

Term Term::Uri(std::string uri) {
  Term t;
  t.kind_ = TermKind::kUri;
  t.lexical_ = std::move(uri);
  return t;
}

Term Term::BlankNode(std::string label) {
  Term t;
  t.kind_ = TermKind::kBlankNode;
  t.lexical_ = std::move(label);
  return t;
}

Term Term::PlainLiteral(std::string text) {
  Term t;
  t.kind_ = text.size() > kLongLiteralThreshold
                ? TermKind::kPlainLongLiteral
                : TermKind::kPlainLiteral;
  t.lexical_ = std::move(text);
  return t;
}

Term Term::PlainLiteralLang(std::string text, std::string language) {
  if (language.empty()) return PlainLiteral(std::move(text));
  Term t;
  // Language-tagged long literals keep the PLL code with the tag recorded,
  // matching the paper's "plain long-literal ... with a language
  // specified" wording.
  t.kind_ = text.size() > kLongLiteralThreshold
                ? TermKind::kPlainLongLiteral
                : TermKind::kPlainLiteralLang;
  t.lexical_ = std::move(text);
  t.language_ = std::move(language);
  return t;
}

Term Term::TypedLiteral(std::string text, std::string datatype_uri) {
  Term t;
  t.kind_ = text.size() > kLongLiteralThreshold
                ? TermKind::kTypedLongLiteral
                : TermKind::kTypedLiteral;
  t.lexical_ = std::move(text);
  t.datatype_ = std::move(datatype_uri);
  return t;
}

const char* Term::TypeCode() const {
  switch (kind_) {
    case TermKind::kUri:
      return "UR";
    case TermKind::kBlankNode:
      return "BN";
    case TermKind::kPlainLiteral:
      return "PL";
    case TermKind::kPlainLiteralLang:
      return "PL@";
    case TermKind::kTypedLiteral:
      return "TL";
    case TermKind::kPlainLongLiteral:
      return "PLL";
    case TermKind::kTypedLongLiteral:
      return "TLL";
  }
  return "?";
}

namespace {

std::string EscapeLiteral(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string Term::ToNTriples() const {
  switch (kind_) {
    case TermKind::kUri:
      return "<" + lexical_ + ">";
    case TermKind::kBlankNode:
      return "_:" + lexical_;
    case TermKind::kPlainLiteral:
    case TermKind::kPlainLongLiteral: {
      std::string out = "\"" + EscapeLiteral(lexical_) + "\"";
      if (!language_.empty()) out += "@" + language_;
      return out;
    }
    case TermKind::kPlainLiteralLang:
      return "\"" + EscapeLiteral(lexical_) + "\"@" + language_;
    case TermKind::kTypedLiteral:
    case TermKind::kTypedLongLiteral:
      return "\"" + EscapeLiteral(lexical_) + "\"^^<" + datatype_ + ">";
  }
  return {};
}

std::string Term::ToDisplayString() const {
  switch (kind_) {
    case TermKind::kUri:
      return lexical_;
    case TermKind::kBlankNode:
      return "_:" + lexical_;
    default:
      return lexical_;
  }
}

bool Term::operator==(const Term& other) const {
  return kind_ == other.kind_ && lexical_ == other.lexical_ &&
         language_ == other.language_ && datatype_ == other.datatype_;
}

uint64_t Term::Hash() const {
  uint64_t h = HashCombine(static_cast<uint64_t>(kind_), Fnv1a64(lexical_));
  h = HashCombine(h, Fnv1a64(language_));
  h = HashCombine(h, Fnv1a64(datatype_));
  return h;
}

namespace {

/// Heuristic for "this bare token is a URI": has a scheme-like prefix
/// ("scheme:rest", scheme = alpha followed by alphanumerics/+/-/.), or is
/// wrapped in angle brackets. Matches the paper's usage where 'gov:files'
/// is a URI but 'bombing' is a plain literal.
bool LooksLikeUri(const std::string& s) {
  size_t colon = s.find(':');
  if (colon == std::string::npos || colon == 0) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0]))) return false;
  for (size_t i = 1; i < colon; ++i) {
    char c = s[i];
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '+' &&
        c != '-' && c != '.') {
      return false;
    }
  }
  return true;
}

/// Parse a quoted literal body: "text"(@lang | ^^<dt> | ^^dt)?
Result<Term> ParseQuotedLiteral(const std::string& text) {
  size_t close = std::string::npos;
  for (size_t i = 1; i < text.size(); ++i) {
    if (text[i] == '\\') {
      ++i;  // skip escaped char
      continue;
    }
    if (text[i] == '"') {
      close = i;
      break;
    }
  }
  if (close == std::string::npos) {
    return Status::InvalidArgument("unterminated literal: " + text);
  }
  // Unescape body.
  std::string body;
  body.reserve(close - 1);
  for (size_t i = 1; i < close; ++i) {
    if (text[i] == '\\' && i + 1 < close) {
      char next = text[i + 1];
      switch (next) {
        case 'n':
          body.push_back('\n');
          break;
        case 'r':
          body.push_back('\r');
          break;
        case 't':
          body.push_back('\t');
          break;
        default:
          body.push_back(next);
      }
      ++i;
    } else {
      body.push_back(text[i]);
    }
  }
  std::string suffix = text.substr(close + 1);
  if (suffix.empty()) return Term::PlainLiteral(std::move(body));
  if (suffix[0] == '@') {
    std::string lang = suffix.substr(1);
    if (lang.empty()) {
      return Status::InvalidArgument("empty language tag: " + text);
    }
    return Term::PlainLiteralLang(std::move(body), std::move(lang));
  }
  if (StartsWith(suffix, "^^")) {
    std::string dt = suffix.substr(2);
    if (StartsWith(dt, "<") && EndsWith(dt, ">")) {
      dt = dt.substr(1, dt.size() - 2);
    }
    if (dt.empty()) {
      return Status::InvalidArgument("empty datatype: " + text);
    }
    // Expand the well-known prefixes so "25"^^xsd:int canonicalizes the
    // same way as the full-URI form.
    if (StartsWith(dt, "xsd:")) {
      dt = std::string(kXsdNs) + dt.substr(4);
    } else if (StartsWith(dt, "rdfs:")) {
      dt = std::string(kRdfsNs) + dt.substr(5);
    } else if (StartsWith(dt, "rdf:")) {
      dt = std::string(kRdfNs) + dt.substr(4);
    }
    return Term::TypedLiteral(std::move(body), std::move(dt));
  }
  return Status::InvalidArgument("bad literal suffix: " + text);
}

}  // namespace

Result<Term> ParseApiTerm(const std::string& raw) {
  std::string text = Trim(raw);
  if (text.empty()) {
    return Status::InvalidArgument("empty term");
  }
  if (StartsWith(text, "_:")) {
    std::string label = text.substr(2);
    if (label.empty()) {
      return Status::InvalidArgument("blank node needs a label");
    }
    return Term::BlankNode(std::move(label));
  }
  if (text[0] == '"') return ParseQuotedLiteral(text);
  if (StartsWith(text, "<") && EndsWith(text, ">")) {
    std::string uri = text.substr(1, text.size() - 2);
    if (uri.empty()) return Status::InvalidArgument("empty URI");
    return Term::Uri(std::move(uri));
  }
  if (LooksLikeUri(text)) return Term::Uri(std::move(text));
  // The paper inserts the object 'bombing' unquoted as a literal.
  return Term::PlainLiteral(std::move(text));
}

Result<Term> ParseApiSubject(const std::string& text) {
  RDFDB_ASSIGN_OR_RETURN(Term t, ParseApiTerm(text));
  if (!t.is_uri() && !t.is_blank()) {
    return Status::InvalidArgument(
        "subject must be a URI or blank node, got literal: " + text);
  }
  return t;
}

Result<Term> ParseApiPredicate(const std::string& text) {
  RDFDB_ASSIGN_OR_RETURN(Term t, ParseApiTerm(text));
  if (!t.is_uri()) {
    return Status::InvalidArgument("predicate must be a URI: " + text);
  }
  return t;
}

}  // namespace rdfdb::rdf
