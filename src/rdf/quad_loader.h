// QuadLoader: converts classic four-triple reification quads into the
// paper's streamlined single-triple form.
//
// Mirrors the paper's Java loader API: "A Java API is provided for
// reading reification quads and converting them into reified statements
// ... the user specifies whether incomplete quads should be deleted,
// output to a file or inserted into the database like other triples. The
// user also specifies whether URIs replaced by the DBUriType should be
// stored."

#ifndef RDFDB_RDF_QUAD_LOADER_H_
#define RDFDB_RDF_QUAD_LOADER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/ntriples.h"
#include "rdf/rdf_store.h"

namespace rdfdb::rdf {

/// What to do with reification quads that are missing components.
enum class IncompleteQuadPolicy {
  kDelete,           ///< drop the partial quad's triples
  kEmitToFile,       ///< write them to `incomplete_output_path` as N-Triples
  kInsertAsTriples,  ///< store them like ordinary triples
};

/// Loader configuration.
struct QuadLoaderOptions {
  IncompleteQuadPolicy incomplete_policy = IncompleteQuadPolicy::kDelete;
  std::string incomplete_output_path;  ///< required for kEmitToFile
  /// Keep a record of each reifying resource the loader replaced: stores
  /// <DBUri(base), ora:replacesResource, R>.
  bool store_replaced_uris = false;
};

/// Counters reported by a load.
struct QuadLoadStats {
  size_t input_triples = 0;        ///< statements read
  size_t complete_quads = 0;       ///< quads converted to streamlined form
  size_t incomplete_quads = 0;     ///< quads handled per policy
  size_t incomplete_triples = 0;   ///< triples belonging to those quads
  size_t assertions_rewritten = 0; ///< triples whose R became a DBUri
  size_t plain_triples = 0;        ///< ordinary triples inserted
};

/// URI under which replaced reifying resources are recorded when
/// `store_replaced_uris` is set.
inline constexpr const char* kReplacesResourceUri =
    "http://xmlns.oracle.com/rdf#replacesResource";

/// Quad-to-streamlined-reification converter.
class QuadLoader {
 public:
  QuadLoader(RdfStore* store, QuadLoaderOptions options)
      : store_(store), options_(std::move(options)) {}

  /// Load statements into `model_name`:
  ///  1. finds reifying resources R (subjects of the reification
  ///     vocabulary triples),
  ///  2. converts each *complete* quad into: base triple (CONTEXT=I) +
  ///     the single streamlined reification triple,
  ///  3. rewrites every other statement mentioning R to use the DBUri,
  ///  4. applies the incomplete-quad policy to partial quads,
  ///  5. inserts everything else as ordinary direct triples.
  Result<QuadLoadStats> Load(const std::string& model_name,
                             const std::vector<NTriple>& triples);

  /// Parse an N-Triples file and Load it.
  Result<QuadLoadStats> LoadFile(const std::string& model_name,
                                 const std::string& path);

 private:
  RdfStore* store_;
  QuadLoaderOptions options_;
};

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_QUAD_LOADER_H_
