// N-Triples reader/writer — the line-based interchange format used to
// load RDF datasets (e.g. the UniProt dump) into the store.

#ifndef RDFDB_RDF_NTRIPLES_H_
#define RDFDB_RDF_NTRIPLES_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/term.h"

namespace rdfdb::rdf {

/// One parsed statement.
struct NTriple {
  Term subject;
  Term predicate;
  Term object;

  bool operator==(const NTriple& other) const {
    return subject == other.subject && predicate == other.predicate &&
           object == other.object;
  }
};

/// Parse one line. Returns nullopt for blank lines and comments;
/// InvalidArgument for malformed statements.
Result<std::optional<NTriple>> ParseNTriplesLine(const std::string& line);

/// Parse a whole document (newline-separated). Any malformed line fails
/// the parse with its line number in the message.
Result<std::vector<NTriple>> ParseNTriplesDocument(const std::string& text);

/// Parse a consecutive run of lines — a chunk of a larger document, as
/// produced by SplitNTriplesChunks. Unlike ParseNTriplesDocument this
/// works on a borrowed view with no per-line string copies (the parallel
/// bulk-load parse path). `first_line` is the 1-based document line
/// number of the chunk's first line; malformed lines report absolute
/// document line numbers.
Result<std::vector<NTriple>> ParseNTriplesChunk(std::string_view text,
                                                size_t first_line);

/// One line-aligned chunk of a document: [begin, end) byte offsets plus
/// the 1-based line number of the first line in the chunk.
struct NTriplesChunkSpec {
  size_t begin = 0;
  size_t end = 0;
  size_t first_line = 1;
};

/// Split a document into chunks of at most `max_lines` lines each, always
/// cutting at line boundaries, so chunks can parse independently (and in
/// parallel) while preserving overall statement order on reassembly.
std::vector<NTriplesChunkSpec> SplitNTriplesChunks(std::string_view text,
                                                   size_t max_lines);

/// Parse a file from disk.
Result<std::vector<NTriple>> ParseNTriplesFile(const std::string& path);

/// Serialize one statement, including the trailing " ." terminator.
std::string ToNTriplesLine(const NTriple& triple);

/// Write statements to a file, one per line.
Status WriteNTriplesFile(const std::string& path,
                         const std::vector<NTriple>& triples);

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_NTRIPLES_H_
