// N-Triples reader/writer — the line-based interchange format used to
// load RDF datasets (e.g. the UniProt dump) into the store.

#ifndef RDFDB_RDF_NTRIPLES_H_
#define RDFDB_RDF_NTRIPLES_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/term.h"

namespace rdfdb::rdf {

/// One parsed statement.
struct NTriple {
  Term subject;
  Term predicate;
  Term object;

  bool operator==(const NTriple& other) const {
    return subject == other.subject && predicate == other.predicate &&
           object == other.object;
  }
};

/// Parse one line. Returns nullopt for blank lines and comments;
/// InvalidArgument for malformed statements.
Result<std::optional<NTriple>> ParseNTriplesLine(const std::string& line);

/// Parse a whole document (newline-separated). Any malformed line fails
/// the parse with its line number in the message.
Result<std::vector<NTriple>> ParseNTriplesDocument(const std::string& text);

/// Parse a file from disk.
Result<std::vector<NTriple>> ParseNTriplesFile(const std::string& path);

/// Serialize one statement, including the trailing " ." terminator.
std::string ToNTriplesLine(const NTriple& triple);

/// Write statements to a file, one per line.
Status WriteNTriplesFile(const std::string& path,
                         const std::vector<NTriple>& triples);

}  // namespace rdfdb::rdf

#endif  // RDFDB_RDF_NTRIPLES_H_
